//! Offline stand-in for the `rand` crate (0.8-era API subset).
//!
//! Provides deterministic, seedable pseudo-randomness for the workspace's
//! generators and tests: [`rngs::StdRng`] (a SplitMix64 engine — *not* the
//! cryptographic ChaCha engine of the real crate, which is fine because the
//! workspace only uses it for reproducible test-input generation),
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] ergonomics layer
//! (`gen_bool`, `gen_range`, `gen`).

#![warn(missing_docs)]

use core::ops::Range;

/// Low-level source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates an engine deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws a value uniformly from `[lo, hi)`.
    fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Maps 64 random bits to a float in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ergonomics layer (subset of `rand::Rng`), blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        unit_f64(self.next_u64()) < p
    }

    /// Draws a value uniformly from the half-open `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Draws a uniform `f64` in `[0, 1)`.
    fn gen(&mut self) -> f64 {
        unit_f64(self.next_u64())
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete engines.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 engine standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood) — passes BigCrush, one u64 of
            // state, and ideal for reproducible test fixtures.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
