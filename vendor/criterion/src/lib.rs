//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use — `Criterion`
//! builder knobs, `benchmark_group`/`bench_function`, `Bencher::iter` /
//! `iter_batched`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is deliberately simple: each
//! benchmark runs a calibration pass to size batches, then `sample_size`
//! timed samples, and reports min/mean/max wall-clock time per iteration.
//! There is no statistical outlier analysis, HTML report, or baseline
//! comparison; swap in the real crate for those.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Prevents the optimizer from eliding a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost (mirrors criterion's enum).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs: moderate batches.
    SmallInput,
    /// Large per-iteration inputs: tiny batches.
    LargeInput,
    /// Re-run setup before every iteration.
    PerIteration,
    /// Exactly this many batches per sample.
    NumBatches(u64),
    /// Exactly this many iterations per batch.
    NumIterations(u64),
}

/// Benchmark harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the target total measurement duration per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.to_string();
        run_benchmark(self, &label, f);
        self
    }
}

/// A named collection of benchmarks sharing the parent's configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within this group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(self.criterion, &label, f);
        self
    }

    /// Finishes the group (report flushing is a no-op here).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(c: &Criterion, label: &str, mut f: F) {
    let mut b = Bencher {
        iters_per_sample: 1,
        samples: Vec::with_capacity(c.sample_size),
        sample_size: c.sample_size,
        warm_up_time: c.warm_up_time,
        measurement_time: c.measurement_time,
    };
    f(&mut b);
    if b.samples.is_empty() {
        return;
    }
    let mean = b.samples.iter().sum::<f64>() / b.samples.len() as f64;
    let min = b.samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = b.samples.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{label:<40} time: [{} {} {}]",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max)
    );
}

fn fmt_time(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.2} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos / 1_000_000_000.0)
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<f64>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `routine`, amortizing over automatically sized batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.calibrate(|iters| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            start.elapsed()
        });
    }

    /// Times `routine` on fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let per_batch: u64 = match size {
            BatchSize::PerIteration => 1,
            BatchSize::NumIterations(n) => n.max(1),
            BatchSize::SmallInput => 32,
            BatchSize::LargeInput => 4,
            BatchSize::NumBatches(_) => 16,
        };
        self.calibrate(|iters| {
            let mut elapsed = Duration::ZERO;
            let mut done = 0u64;
            while done < iters {
                let n = per_batch.min(iters - done);
                let inputs: Vec<I> = (0..n).map(|_| setup()).collect();
                let start = Instant::now();
                for input in inputs {
                    black_box(routine(input));
                }
                elapsed += start.elapsed();
                done += n;
            }
            elapsed
        });
    }

    /// Warm-up + batch-size calibration + sampling, shared by both modes.
    fn calibrate<M: FnMut(u64) -> Duration>(&mut self, mut measure: M) {
        // Warm up and estimate per-iteration cost.
        let warm_start = Instant::now();
        let mut iters = 1u64;
        let mut last = Duration::ZERO;
        while warm_start.elapsed() < self.warm_up_time {
            last = measure(iters);
            if last < Duration::from_millis(1) {
                iters = iters.saturating_mul(2);
            } else if warm_start.elapsed() >= self.warm_up_time / 2 {
                break;
            }
        }
        let per_iter = last.as_nanos().max(1) as f64 / iters as f64;
        // Size samples so the whole measurement fits the time budget.
        let budget_per_sample = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        self.iters_per_sample = ((budget_per_sample / per_iter) as u64).clamp(1, 1 << 24);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let elapsed = measure(self.iters_per_sample);
            self.samples
                .push(elapsed.as_nanos() as f64 / self.iters_per_sample as f64);
        }
    }
}

/// Declares a benchmark group: either `criterion_group!(name, target, ...)`
/// or the `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates a `main` that runs the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
