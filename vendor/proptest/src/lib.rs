//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest's API the workspace's property tests
//! use — [`Strategy`](strategy::Strategy) with `prop_map`/`prop_flat_map`,
//! range/tuple/`Just`/collection/bool strategies, the [`proptest!`] test
//! macro with `#![proptest_config(..)]`, and the `prop_assert*` /
//! [`prop_assume!`] macros. Differences from the real crate:
//!
//! * **No shrinking.** A failing case panics with the deterministic seed of
//!   the failing attempt so it can be replayed by rerunning the test.
//! * **Deterministic seeding.** Case seeds derive from the test's module
//!   path and name via FNV-1a, so runs are reproducible across machines —
//!   the paper-reproduction priority here — at the cost of never exploring
//!   new inputs between runs.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Boolean-valued strategies (subset of `proptest::bool`).
pub mod bool {
    use crate::strategy::Weighted;

    /// Strategy producing `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        assert!((0.0..=1.0).contains(&p), "weighted: p not in [0, 1]");
        Weighted { p }
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};

    /// Strategy producing a `Vec` of exactly `len` elements drawn from
    /// `element`. (The real crate accepts a size *range*; the workspace
    /// only uses exact sizes.)
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// FNV-1a hash of a string; seeds per-test RNG streams deterministically.
#[doc(hidden)]
pub fn __fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// Defines property tests. Subset of `proptest::proptest!`: an optional
/// `#![proptest_config(expr)]` header followed by `#[test] fn name(pat in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($params:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let stream = $crate::__fnv1a(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut attempt: u32 = 0;
            // Bound total attempts so pathological prop_assume! filters
            // terminate instead of spinning forever.
            let max_attempts = config.cases.saturating_mul(32).max(64);
            while accepted < config.cases {
                attempt += 1;
                assert!(
                    attempt <= max_attempts,
                    "proptest: too many rejected cases ({} attempts, {} accepted)",
                    attempt, accepted
                );
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(stream, attempt as u64);
                let outcome: $crate::test_runner::TestCaseResult = {
                    $crate::__proptest_bind! { (__rng) $($params)* }
                    let mut __case = move || -> $crate::test_runner::TestCaseResult {
                        $body
                        Ok(())
                    };
                    __case()
                };
                match outcome {
                    Ok(()) => accepted += 1,
                    Err(e) if e.is_rejection() => {}
                    Err(e) => panic!(
                        "proptest case failed (test {}, attempt {}, stream {:#x}): {}",
                        stringify!($name), attempt, stream, e
                    ),
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ( ($rng:ident) $pat:pat in $strat:expr ) => {
        let $pat = $crate::strategy::Strategy::new_value(&($strat), &mut $rng);
    };
    ( ($rng:ident) $pat:pat in $strat:expr, $($rest:tt)* ) => {
        let $pat = $crate::strategy::Strategy::new_value(&($strat), &mut $rng);
        $crate::__proptest_bind! { ($rng) $($rest)* }
    };
}

/// `assert!` that fails the current case instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that fails the current case instead of panicking directly.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($lhs), stringify!($rhs), lhs, rhs
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), lhs, rhs
            )));
        }
    }};
}

/// `assert_ne!` that fails the current case instead of panicking directly.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if lhs == rhs {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                lhs
            )));
        }
    }};
}

/// Discards the current case (does not count toward the case budget) when
/// the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}
