//! Strategies: composable random-value generators.

use crate::test_runner::TestRng;
use rand::Rng as _;

/// A recipe for generating values of `Self::Value` (subset of
/// `proptest::strategy::Strategy`; no shrinking).
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value from the strategy.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to produce a dependent strategy,
    /// then draws from that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// Strategy that always yields a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

/// Strategy returned by [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) len: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        (0..self.len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Strategy returned by [`crate::bool::weighted`].
#[derive(Debug, Clone, Copy)]
pub struct Weighted {
    pub(crate) p: f64,
}

impl Strategy for Weighted {
    type Value = bool;

    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool(self.p)
    }
}
