//! Test-runner plumbing: configuration, case outcomes, and the per-case RNG.

use std::fmt;

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases each test must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config that runs `cases` accepted cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case did not pass: a hard failure or a `prop_assume!`
/// rejection (the latter is retried, not reported).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    rejection: bool,
    message: String,
}

impl TestCaseError {
    /// A hard assertion failure.
    pub fn fail(message: String) -> Self {
        TestCaseError {
            rejection: false,
            message,
        }
    }

    /// A `prop_assume!` rejection.
    pub fn reject(message: &str) -> Self {
        TestCaseError {
            rejection: true,
            message: message.to_string(),
        }
    }

    /// Whether this is a rejection rather than a failure.
    pub fn is_rejection(&self) -> bool {
        self.rejection
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Outcome of a single generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-case RNG: a [`rand::rngs::StdRng`] seeded from the test's stream
/// hash and the attempt index, so every case is independently replayable.
pub struct TestRng {
    inner: rand::rngs::StdRng,
}

impl TestRng {
    /// RNG for attempt `attempt` of the test stream `stream`.
    pub fn for_case(stream: u64, attempt: u64) -> Self {
        use rand::SeedableRng as _;
        let seed = stream
            .rotate_left(17)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(attempt);
        TestRng {
            inner: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }
}

impl rand::RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        rand::RngCore::next_u64(&mut self.inner)
    }
}
