//! A minimal JSON value model and renderer (the `serde_json` role, folded
//! into the offline serde stand-in).
//!
//! Only what the workspace needs: building values and rendering them as
//! spec-compliant JSON text. There is deliberately no parser — consumers
//! of the emitted reports parse them with their own tooling.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. Non-finite values render as `null` (JSON has no
    /// NaN/Infinity literals).
    Number(f64),
    /// A signed integer, rendered exactly (no float round-trip — JSON
    /// numbers are arbitrary-precision).
    Int(i64),
    /// An unsigned integer, rendered exactly.
    UInt(u64),
    /// A string (escaped on rendering).
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved (keys are not deduplicated
    /// — callers are expected to supply distinct keys).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from `(key, value)` pairs.
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }
}

/// Renders any [`crate::Serialize`] type as compact JSON text.
pub fn to_string<T: crate::Serialize + ?Sized>(value: &T) -> String {
    value.to_json().to_string()
}

fn escape_into(out: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(out, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(out, "\\\"")?,
            '\\' => write!(out, "\\\\")?,
            '\n' => write!(out, "\\n")?,
            '\r' => write!(out, "\\r")?,
            '\t' => write!(out, "\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    write!(out, "\"")
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) if !n.is_finite() => write!(f, "null"),
            Value::Number(n) => write!(f, "{n}"),
            Value::Int(n) => write!(f, "{n}"),
            Value::UInt(n) => write!(f, "{n}"),
            Value::String(s) => escape_into(f, s),
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Object(pairs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    escape_into(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(Value::Number(3.5).to_string(), "3.5");
        assert_eq!(Value::Number(10.0).to_string(), "10");
        assert_eq!(Value::Number(f64::NAN).to_string(), "null");
        assert_eq!(
            Value::String("a\"b\\c\n".into()).to_string(),
            r#""a\"b\\c\n""#
        );
    }

    #[test]
    fn integers_render_exactly() {
        // Above 2^53 an f64 round-trip would corrupt the value.
        assert_eq!(Value::UInt(u64::MAX).to_string(), "18446744073709551615");
        assert_eq!(Value::Int(i64::MIN).to_string(), "-9223372036854775808");
    }

    #[test]
    fn renders_containers() {
        let v = Value::object([
            ("xs", Value::Array(vec![Value::Number(1.0), Value::Null])),
            ("s", Value::String("hi".into())),
        ]);
        assert_eq!(v.to_string(), r#"{"xs":[1,null],"s":"hi"}"#);
    }

    #[test]
    fn control_chars_escaped() {
        assert_eq!(Value::String("\u{1}".into()).to_string(), "\"\\u0001\"");
    }
}
