//! Offline stand-in for the `serde` facade.
//!
//! The build environment has no registry access, so this vendor crate
//! provides a pragmatic subset of serde's surface. Unlike the original
//! marker-only stub, [`Serialize`] is now a *real* trait: implementors
//! render themselves into the [`json::Value`] data model, which covers
//! everything the workspace serializes today (the `repro analyze
//! --format json` reports). The `Deserialize` side remains a marker, and
//! the derives from the sibling `serde_derive` stub still expand to
//! nothing — types that want real serialization implement [`Serialize`]
//! by hand. Swap the `vendor/serde*` crates for the real ones once the
//! build environment can reach crates.io.

#![warn(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub mod json;

/// Serialization into the [`json::Value`] data model.
///
/// Offline simplification of serde's `Serialize`: instead of a generic
/// `Serializer` visitor, implementors produce a concrete JSON value tree
/// which [`json::to_string`] renders. The derive macro of the `derive`
/// feature is still a no-op — implement this trait by hand.
pub trait Serialize {
    /// Renders `self` as a JSON value.
    fn to_json(&self) -> json::Value;
}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

impl Serialize for bool {
    fn to_json(&self) -> json::Value {
        json::Value::Bool(*self)
    }
}

impl Serialize for f64 {
    fn to_json(&self) -> json::Value {
        json::Value::Number(*self)
    }
}

macro_rules! uint_serialize {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> json::Value {
                json::Value::UInt(*self as u64)
            }
        }
    )*};
}
uint_serialize!(u8, u16, u32, u64, usize);

macro_rules! int_serialize {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> json::Value {
                json::Value::Int(*self as i64)
            }
        }
    )*};
}
int_serialize!(i8, i16, i32, i64, isize);

impl Serialize for str {
    fn to_json(&self) -> json::Value {
        json::Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_json(&self) -> json::Value {
        json::Value::String(self.clone())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> json::Value {
        match self {
            Some(v) => v.to_json(),
            None => json::Value::Null,
        }
    }
}

impl Serialize for json::Value {
    fn to_json(&self) -> json::Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> json::Value {
        (*self).to_json()
    }
}
