//! Offline stand-in for the `serde` facade.
//!
//! The build environment has no registry access, so this vendor crate
//! provides just enough of serde's surface for the workspace to compile:
//! the two marker traits and (behind the `derive` feature) the no-op
//! derive macros from the sibling `serde_derive` stub. Nothing in the
//! workspace performs actual serialization yet; when it does, replace the
//! `vendor/serde*` crates with the real ones.

#![warn(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
