//! Offline stand-in for `serde_derive`.
//!
//! The workspace only uses serde derives as structural annotations (no code
//! actually serializes anything yet), and the build environment has no
//! registry access, so these derives intentionally expand to nothing. Swap
//! this vendor crate for the real `serde_derive` once the build environment
//! can reach crates.io.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
