//! The differential test wall around the hierarchy simulator.
//!
//! * **Oracle**: a one-cache-level [`MemoryHierarchy`] built from any
//!   [`MachineSpec`] must reproduce the single-cache [`Simulation::run`]
//!   trace *exactly* — same loads, stores, hits, evictions — for every
//!   registry kernel, at several sweep points, under both policies. The
//!   hierarchy engine is per-level stack simulation, so this equality is
//!   structural, and this wall keeps it that way.
//! * **Invariants** (property-based): inclusive traffic is monotone down
//!   the hierarchy, growing a level's capacity never increases its LRU
//!   miss count, and an effectively infinite top level degenerates to
//!   compulsory misses only.
//! * **Errors**: every [`HierarchyError`] variant is constructible and
//!   its Display names the offending level.

use dmc_kernels::catalog::Registry;
use dmc_kernels::random::{random_layered, RandomDagConfig};
use dmc_machine::hierarchy::{HierarchyError, Level, MemoryHierarchy};
use dmc_machine::specs::{ibm_bgq, machine_catalog};
use dmc_sim::simulation::{min_feasible_capacity, CachePolicy, Simulation};
use dmc_sim::{HierarchySimulation, Inclusion};
use proptest::prelude::*;

/// The differential oracle: for every registry kernel at its defaults,
/// a single-cache-level hierarchy of capacity `S` reproduces the plain
/// [`Simulation`] trace at `S` exactly, at three sweep points, under
/// both eviction policies, for every catalog machine's memory size.
#[test]
fn one_level_hierarchy_is_the_single_cache_simulation() {
    let registry = Registry::shared();
    let mut sim = Simulation::new();
    let mut hsim = HierarchySimulation::new();
    for machine in machine_catalog() {
        for name in registry.names() {
            let spec = registry.defaults(name).expect("registered kernel");
            let g = spec.build();
            let req = min_feasible_capacity(&g) as u64;
            for s in [req, 2 * req, 4 * req] {
                let sched = spec.schedule_source(&g, s);
                for policy in [CachePolicy::Lru, CachePolicy::Opt] {
                    let flat = sim
                        .run(&g, &sched.order, policy, s)
                        .expect("feasible by construction");
                    let h = machine.single_level_hierarchy(s);
                    let tiered = hsim
                        .run(&g, &sched.order, policy, &h, Inclusion::Inclusive)
                        .expect("same capacity, same feasibility");
                    assert_eq!(tiered.levels.len(), 1, "{name}: one cache boundary");
                    assert_eq!(
                        tiered.boundary(1).trace,
                        flat,
                        "{name} on {} S={s} {policy:?}: hierarchy diverged from oracle",
                        machine.name
                    );
                }
            }
        }
    }
}

/// An effectively infinite top level sees compulsory traffic only:
/// every input is loaded exactly once and every output stored once.
#[test]
fn infinite_top_level_degenerates_to_compulsory_misses() {
    let registry = Registry::shared();
    let mut hsim = HierarchySimulation::new();
    let h = MemoryHierarchy::new(vec![
        Level::new("cache", 1, u64::MAX / 2),
        Level::new("DRAM", 1, u64::MAX),
    ])
    .expect("valid two-level hierarchy");
    for name in registry.names() {
        let spec = registry.defaults(name).expect("registered kernel");
        let g = spec.build();
        let sched = spec.schedule_source(&g, u64::MAX / 2);
        for policy in [CachePolicy::Lru, CachePolicy::Opt] {
            let t = hsim
                .run(&g, &sched.order, policy, &h, Inclusion::Inclusive)
                .expect("infinite capacity is always feasible");
            let b = &t.boundary(1).trace;
            assert_eq!(
                b.loads as usize,
                g.inputs().len(),
                "{name} {policy:?}: loads beyond the compulsory inputs"
            );
            // Only computed (dirty) outputs are flushed; an output that
            // is also an input stays clean and is never written back.
            let computed_outputs = g
                .vertices()
                .filter(|v| g.outputs().contains(v.index()) && !g.inputs().contains(v.index()))
                .count();
            assert_eq!(
                b.stores as usize, computed_outputs,
                "{name} {policy:?}: stores beyond the final output flush"
            );
            assert_eq!(b.evictions, 0, "{name} {policy:?}: evicted at S = infinity");
        }
    }
}

/// `HierarchyError`: every variant is reachable and its message names
/// the offending level.
#[test]
fn hierarchy_error_variants_are_loud() {
    let cases: Vec<(Vec<Level>, HierarchyError, &str)> = vec![
        (
            vec![Level::new("only", 1, 64)],
            HierarchyError::TooFewLevels,
            "at least two levels",
        ),
        (
            vec![
                Level::new("registers", 2, 64),
                Level::new("DRAM", 4, 1 << 20),
            ],
            HierarchyError::UnitsNotMonotone(2),
            "level 2 has more units than level 1",
        ),
        (
            vec![
                Level::new("registers", 9, 64),
                Level::new("L2", 2, 4096),
                Level::new("DRAM", 1, 1 << 20),
            ],
            HierarchyError::UnitsNotDivisible(1),
            "do not divide",
        ),
        (
            vec![
                Level::new("registers", 0, 64),
                Level::new("DRAM", 1, 1 << 20),
            ],
            HierarchyError::Degenerate(1),
            "zero units or capacity",
        ),
        (
            vec![Level::new("registers", 1, 64), Level::new("DRAM", 1, 0)],
            HierarchyError::Degenerate(2),
            "zero units or capacity",
        ),
    ];
    for (levels, want, needle) in cases {
        let got = MemoryHierarchy::new(levels).expect_err("invalid hierarchy must be rejected");
        assert_eq!(got, want);
        let msg = got.to_string();
        assert!(msg.contains(needle), "{want:?}: {msg:?} lacks {needle:?}");
    }
}

/// A small random layered DAG plus its Kahn order.
fn random_case(
    layers: usize,
    width: usize,
    seed: u64,
) -> (dmc_cdag::graph::Cdag, Vec<dmc_cdag::graph::VertexId>) {
    let g = random_layered(RandomDagConfig {
        layers,
        width,
        deg: 2,
        edge_prob: 0.0,
        seed,
    });
    let order = dmc_cdag::topo::topological_order(&g);
    (g, order)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Inclusive hierarchies with non-decreasing capacities move
    /// monotonically less traffic down the hierarchy: the level-l miss
    /// traffic is at least the level-(l+1) traffic, for both policies.
    #[test]
    fn inclusive_traffic_is_monotone(
        layers in 2usize..6,
        width in 1usize..6,
        seed in 0u64..1000,
        base in 0u64..16,
        step1 in 0u64..32,
        step2 in 0u64..32
    ) {
        let (g, order) = random_case(layers, width, seed);
        let req = min_feasible_capacity(&g) as u64;
        let caps = [req + base, req + base + step1, req + base + step1 + step2];
        let h = MemoryHierarchy::new(vec![
            Level::new("L1", 1, caps[0]),
            Level::new("L2", 1, caps[1]),
            Level::new("L3", 1, caps[2]),
            Level::new("DRAM", 1, u64::MAX),
        ]).expect("valid hierarchy");
        let mut hsim = HierarchySimulation::new();
        for policy in [CachePolicy::Lru, CachePolicy::Opt] {
            let t = hsim.run(&g, &order, policy, &h, Inclusion::Inclusive)
                .expect("caps start at the feasible minimum");
            prop_assert_eq!(t.levels.len(), 3);
            for w in t.levels.windows(2) {
                prop_assert!(
                    w[0].trace.io() >= w[1].trace.io(),
                    "{policy:?}: level {} io {} < level {} io {}",
                    w[0].level, w[0].trace.io(), w[1].level, w[1].trace.io()
                );
            }
        }
    }

    /// LRU is a stack algorithm: growing one level's capacity never
    /// increases that level's miss traffic (no Belady anomaly).
    #[test]
    fn growing_a_level_never_hurts_under_lru(
        layers in 2usize..6,
        width in 1usize..6,
        seed in 0u64..1000,
        slack in 0u64..16,
        growth in 1u64..64
    ) {
        let (g, order) = random_case(layers, width, seed);
        let req = min_feasible_capacity(&g) as u64;
        let small = req + slack;
        let mk = |s1: u64| MemoryHierarchy::new(vec![
            Level::new("L1", 1, s1),
            Level::new("DRAM", 1, u64::MAX),
        ]).expect("valid hierarchy");
        let mut hsim = HierarchySimulation::new();
        let before = hsim
            .run(&g, &order, CachePolicy::Lru, &mk(small), Inclusion::Inclusive)
            .expect("feasible")
            .boundary(1).trace;
        let after = hsim
            .run(&g, &order, CachePolicy::Lru, &mk(small + growth), Inclusion::Inclusive)
            .expect("feasible")
            .boundary(1).trace;
        prop_assert!(
            after.io() <= before.io(),
            "S {} -> {}: io {} -> {}", small, small + growth, before.io(), after.io()
        );
    }

    /// The one-level oracle holds on arbitrary random DAGs too, not just
    /// the curated kernels: machine-derived single-level hierarchies and
    /// the flat simulator agree trace-for-trace.
    #[test]
    fn oracle_holds_on_random_dags(
        layers in 2usize..6,
        width in 1usize..6,
        seed in 0u64..1000,
        slack in 0u64..24
    ) {
        let (g, order) = random_case(layers, width, seed);
        let s = min_feasible_capacity(&g) as u64 + slack;
        let h = ibm_bgq().single_level_hierarchy(s);
        let mut sim = Simulation::new();
        let mut hsim = HierarchySimulation::new();
        for policy in [CachePolicy::Lru, CachePolicy::Opt] {
            let flat = sim.run(&g, &order, policy, s).expect("feasible");
            let tiered = hsim.run(&g, &order, policy, &h, Inclusion::Inclusive)
                .expect("feasible");
            prop_assert_eq!(&tiered.boundary(1).trace, &flat);
        }
    }
}
