//! Word-granularity LRU cache.
//!
//! Implemented as a hash map into an intrusive doubly-linked list over a
//! slab, so `touch`/`insert`/`evict` are all O(1). Addresses are abstract
//! `u64` word ids (one CDAG value = one word).
//!
//! # Determinism
//!
//! Every observable decision is defined by the recency list alone, never
//! by `HashMap` iteration order (which varies per instance and per
//! process):
//!
//! * **Eviction tie-break:** the victim is always the unique list tail —
//!   the entry whose last [`LruCache::touch`]/[`LruCache::insert`] is
//!   oldest. Recency is a strict total order (every operation moves
//!   exactly one entry to the head), so two entries never tie and the
//!   victim never depends on hash order.
//! * **Flush order:** [`LruCache::flush_dirty`] walks the recency list
//!   from most- to least-recently-used and reports dirty addresses in
//!   that order.
//!
//! Identical operation sequences therefore produce identical eviction and
//! flush sequences on any instance, in any process — the property the
//! simulator's reproducible-trace guarantee rests on (regression-tested
//! below).

use std::collections::HashMap;

const NIL: u32 = u32::MAX;

#[derive(Clone, Copy)]
struct Node {
    addr: u64,
    prev: u32,
    next: u32,
    dirty: bool,
}

/// A fixed-capacity LRU set of words with dirty bits.
///
/// ```
/// use dmc_sim::LruCache;
///
/// let mut c = LruCache::new(2);
/// c.insert(1, false);
/// c.insert(2, true);
/// assert!(c.touch(1)); // 1 becomes MRU, 2 is now the unique LRU victim
/// assert_eq!(c.insert(3, false), Some((2, true)));
/// assert_eq!(c.flush_dirty(), Vec::<u64>::new()); // 3 and 1 are clean
/// ```
pub struct LruCache {
    capacity: usize,
    // Lookup-only index into the slab: every observable order (eviction,
    // flush) comes from the recency list per the module's determinism
    // contract, regression-tested by
    // `eviction_and_flush_are_instance_independent`.
    // dmc-lint: allow(d1) -- O(1) address index; no iteration order escapes (see module docs)
    map: HashMap<u64, u32>,
    slab: Vec<Node>,
    free: Vec<u32>,
    head: u32, // most recently used
    tail: u32, // least recently used
}

impl LruCache {
    /// Creates an empty cache holding up to `capacity` words.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        LruCache {
            capacity,
            // dmc-lint: allow(d1) -- constructs the waived lookup-only index above
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            slab: Vec::with_capacity(capacity.min(1 << 20)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Word capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `true` if `addr` is resident (does not touch recency).
    pub fn contains(&self, addr: u64) -> bool {
        self.map.contains_key(&addr)
    }

    fn unlink(&mut self, idx: u32) {
        let (p, n) = (self.slab[idx as usize].prev, self.slab[idx as usize].next);
        if p != NIL {
            self.slab[p as usize].next = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.slab[n as usize].prev = p;
        } else {
            self.tail = p;
        }
    }

    fn push_front(&mut self, idx: u32) {
        self.slab[idx as usize].prev = NIL;
        self.slab[idx as usize].next = self.head;
        if self.head != NIL {
            self.slab[self.head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Marks `addr` most-recently-used; returns `true` on hit.
    pub fn touch(&mut self, addr: u64) -> bool {
        match self.map.get(&addr).copied() {
            Some(idx) => {
                self.unlink(idx);
                self.push_front(idx);
                true
            }
            None => false,
        }
    }

    /// Inserts `addr` (MRU position) with the given dirty bit, evicting the
    /// LRU entry if full. Returns the evicted `(addr, dirty)` if any.
    /// Inserting an already-resident address refreshes recency and ORs the
    /// dirty bit.
    ///
    /// The victim is always the unique recency-list tail (see the module
    /// docs on determinism): recency is a strict total order, so eviction
    /// never consults — and can never leak — hash-map iteration order.
    pub fn insert(&mut self, addr: u64, dirty: bool) -> Option<(u64, bool)> {
        if let Some(&idx) = self.map.get(&addr) {
            self.slab[idx as usize].dirty |= dirty;
            self.unlink(idx);
            self.push_front(idx);
            return None;
        }
        let evicted = if self.map.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            let node = self.slab[victim as usize];
            self.unlink(victim);
            self.map.remove(&node.addr);
            self.free.push(victim);
            Some((node.addr, node.dirty))
        } else {
            None
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i as usize] = Node {
                    addr,
                    prev: NIL,
                    next: NIL,
                    dirty,
                };
                i
            }
            None => {
                self.slab.push(Node {
                    addr,
                    prev: NIL,
                    next: NIL,
                    dirty,
                });
                (self.slab.len() - 1) as u32
            }
        };
        self.map.insert(addr, idx);
        self.push_front(idx);
        evicted
    }

    /// Marks a resident address dirty; no-op when absent.
    pub fn mark_dirty(&mut self, addr: u64) {
        if let Some(&idx) = self.map.get(&addr) {
            self.slab[idx as usize].dirty = true;
        }
    }

    /// Removes `addr` if resident; returns its dirty bit.
    pub fn remove(&mut self, addr: u64) -> Option<bool> {
        let idx = self.map.remove(&addr)?;
        let dirty = self.slab[idx as usize].dirty;
        self.unlink(idx);
        self.free.push(idx);
        Some(dirty)
    }

    /// Drains all entries, returning the dirty ones in most- to
    /// least-recently-used order (used at simulation end to flush
    /// write-backs; the order is part of the determinism contract — see
    /// the module docs).
    pub fn flush_dirty(&mut self) -> Vec<u64> {
        let mut dirty = Vec::new();
        let mut cur = self.head;
        while cur != NIL {
            let n = &self.slab[cur as usize];
            if n.dirty {
                dirty.push(n.addr);
            }
            cur = n.next;
        }
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_eviction_order() {
        let mut c = LruCache::new(2);
        assert!(!c.touch(1));
        assert_eq!(c.insert(1, false), None);
        assert_eq!(c.insert(2, false), None);
        assert!(c.touch(1)); // 1 now MRU, 2 is LRU
        let ev = c.insert(3, false);
        assert_eq!(ev, Some((2, false)));
        assert!(c.contains(1) && c.contains(3) && !c.contains(2));
    }

    #[test]
    fn dirty_bits_travel_with_eviction() {
        let mut c = LruCache::new(1);
        c.insert(7, true);
        let ev = c.insert(8, false);
        assert_eq!(ev, Some((7, true)));
    }

    #[test]
    fn reinsert_ors_dirty_and_refreshes() {
        let mut c = LruCache::new(2);
        c.insert(1, false);
        c.insert(2, false);
        c.insert(1, true); // refresh, now dirty; 2 is LRU
        let ev = c.insert(3, false);
        assert_eq!(ev, Some((2, false)));
        let ev = c.insert(4, false);
        assert_eq!(ev, Some((1, true)));
    }

    #[test]
    fn mark_dirty_and_remove() {
        let mut c = LruCache::new(4);
        c.insert(5, false);
        c.mark_dirty(5);
        assert_eq!(c.remove(5), Some(true));
        assert_eq!(c.remove(5), None);
        assert!(c.is_empty());
    }

    #[test]
    fn flush_returns_only_dirty() {
        let mut c = LruCache::new(4);
        c.insert(1, true);
        c.insert(2, false);
        c.insert(3, true);
        let mut d = c.flush_dirty();
        d.sort_unstable();
        assert_eq!(d, vec![1, 3]);
        assert!(c.is_empty());
    }

    /// The determinism contract: two independent instances (each with its
    /// own randomly seeded `HashMap` state) driven by the same operation
    /// sequence produce identical eviction and flush sequences — the
    /// victim is defined by the recency list, never by hash order.
    #[test]
    fn eviction_and_flush_are_instance_independent() {
        let ops: Vec<(u64, bool)> = (0..400u64).map(|i| (i * 7919 % 23, i % 3 == 0)).collect();
        let run = |cache: &mut LruCache| {
            let mut evicted = Vec::new();
            for &(addr, dirty) in &ops {
                if addr % 4 == 0 {
                    cache.touch(addr);
                }
                if let Some(ev) = cache.insert(addr, dirty) {
                    evicted.push(ev);
                }
            }
            (evicted, cache.flush_dirty())
        };
        let baseline = run(&mut LruCache::new(7));
        for _ in 0..4 {
            assert_eq!(run(&mut LruCache::new(7)), baseline);
        }
        // A cache that already saw unrelated traffic and was drained
        // behaves identically too.
        let mut drained = LruCache::new(7);
        drained.insert(99, true);
        drained.flush_dirty();
        assert_eq!(run(&mut drained), baseline);
    }

    #[test]
    fn flush_order_is_mru_first() {
        let mut c = LruCache::new(4);
        c.insert(1, true);
        c.insert(2, true);
        c.insert(3, true);
        c.touch(1); // recency now 1, 3, 2
        assert_eq!(c.flush_dirty(), vec![1, 3, 2]);
    }

    #[test]
    fn slab_reuse_after_heavy_churn() {
        let mut c = LruCache::new(8);
        for i in 0..10_000u64 {
            c.insert(i, i % 3 == 0);
        }
        assert_eq!(c.len(), 8);
        // Slab stays bounded (free-list reuse).
        assert!(c.slab.len() <= 16);
    }
}
