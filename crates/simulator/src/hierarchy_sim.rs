//! Machine-hierarchy simulation — the P-RBW machine model of Section 5.
//!
//! The single-cache [`Simulation`] of the
//! red-blue-white game measures traffic across *one* fast/slow boundary.
//! Real machines (the paper's Table 1) are `(N_l, S_l)` *hierarchies*:
//! `N_1` register files over a shared LLC over node DRAM. This module
//! runs one schedule through every boundary of a
//! [`MemoryHierarchy`] at once:
//!
//! 1. [`effective_capacities`] converts the hierarchy into one aggregate
//!    word capacity per *cache* level (the topmost level is the backing
//!    store and is never simulated). Inclusive hierarchies use `N_l·S_l`
//!    per level; exclusive hierarchies the cumulative sum `Σ_{k≤l}
//!    N_k·S_k`, since a value evicted from a faster level may still live
//!    in the slower one.
//! 2. [`HierarchySimulation`] replays the schedule once per boundary
//!    with a reset-and-reuse [`Simulation`] arena at that effective capacity. Both LRU and Belady's OPT are
//!    *stack algorithms* (Mattson's inclusion property): the contents of
//!    a cache of capacity `C` are a superset of any smaller cache on the
//!    same reference stream, so the traffic that crosses boundary `l` of
//!    an inclusive hierarchy is exactly the miss traffic of a standalone
//!    cache of the level's aggregate capacity. Write-back accounting
//!    falls out of the same identity: a dirty (unsaved live) value
//!    evicted at level `l` is the `stores` column of that level's
//!    [`Trace`] — the words written *into* level `l+1`.
//! 3. [`split_round_robin`] adds the parallel dimension: a deterministic
//!    P-processor schedule (round-robin over the Kahn wavefronts of the
//!    DAG, barrier between wavefronts) whose cross-processor word count
//!    is comparable against the Lemma-2 parallel wavefront bound.
//!
//! The 1-level special case is pinned by a differential oracle test: a
//! hierarchy built by
//! [`MachineSpec::single_level_hierarchy`](dmc_machine::MachineSpec::single_level_hierarchy)
//! must reproduce the single-cache `Simulation::run` trace *exactly*.

use crate::simulation::{CachePolicy, SimError, Simulation, Trace};
use dmc_cdag::topo::levels as kahn_levels;
use dmc_cdag::{Cdag, VertexId};
use dmc_machine::MemoryHierarchy;

/// Whether slower levels replicate the contents of faster ones.
///
/// Determines the aggregate capacity backing each boundary in
/// [`effective_capacities`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inclusion {
    /// Level `l+1` holds a superset of level `l` (the common case; the
    /// BG/Q L2 is inclusive). Boundary `l` sees capacity `N_l · S_l`.
    Inclusive,
    /// Levels hold disjoint contents; a victim of level `l` may still be
    /// resident in `l+1`. Boundary `l` sees capacity `Σ_{k≤l} N_k · S_k`.
    Exclusive,
}

impl std::fmt::Display for Inclusion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Inclusion::Inclusive => write!(f, "inclusive"),
            Inclusion::Exclusive => write!(f, "exclusive"),
        }
    }
}

/// The aggregate word capacity backing each *cache* boundary of `h`.
///
/// Returns one `(level name, effective words)` pair per level `1..L`
/// (1-based, fastest first); the topmost level `L` is the backing store
/// of the simulation and gets no entry. Arithmetic saturates so
/// `u64::MAX` sentinel capacities stay infinite.
///
/// ```
/// use dmc_machine::MemoryHierarchy;
/// use dmc_sim::hierarchy_sim::{effective_capacities, Inclusion};
///
/// let h = MemoryHierarchy::cluster(1, 4, 64, 4_000_000, 2_000_000_000);
/// let caps = effective_capacities(&h, Inclusion::Inclusive);
/// assert_eq!(caps.len(), 2); // registers, LLC — DRAM is the backing store
/// assert_eq!(caps[0], ("registers".to_string(), 4 * 64));
/// assert_eq!(caps[1], ("L2".to_string(), 4_000_000));
/// ```
pub fn effective_capacities(h: &MemoryHierarchy, inclusion: Inclusion) -> Vec<(String, u64)> {
    let mut out = Vec::with_capacity(h.num_levels().saturating_sub(1));
    let mut cumulative: u64 = 0;
    for l in 1..h.num_levels() {
        let level = h.level(l);
        let aggregate = (level.units as u64).saturating_mul(level.capacity_words);
        cumulative = cumulative.saturating_add(aggregate);
        let effective = match inclusion {
            Inclusion::Inclusive => aggregate,
            Inclusion::Exclusive => cumulative,
        };
        out.push((level.name.clone(), effective));
    }
    out
}

/// Traffic observed at one hierarchy boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelTrace {
    /// 1-based level index (1 = fastest).
    pub level: usize,
    /// Level name from the [`MemoryHierarchy`].
    pub name: String,
    /// Units `N_l` at this level.
    pub units: usize,
    /// Per-unit capacity `S_l` in words.
    pub capacity_words: u64,
    /// Aggregate capacity the boundary was simulated at (see
    /// [`effective_capacities`]).
    pub effective_words: u64,
    /// Traffic across the boundary between this level and level `l+1`:
    /// `loads` are misses serviced from below, `stores` the write-back of
    /// dirty victims into level `l+1`, `hits` and `evictions` the
    /// internal bookkeeping of the level itself.
    pub trace: Trace,
}

/// Per-boundary traffic of one schedule through a full hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyTrace {
    /// One entry per cache boundary, fastest first.
    pub levels: Vec<LevelTrace>,
}

impl HierarchyTrace {
    /// Total words moved across every boundary — the hierarchy-wide cost
    /// a multi-level roofline compares against.
    pub fn total_io(&self) -> u64 {
        self.levels.iter().map(|l| l.trace.io()).sum()
    }

    /// The trace at 1-based boundary `l`; panics if out of range like a
    /// slice index would.
    pub fn boundary(&self, l: usize) -> &LevelTrace {
        &self.levels[l - 1]
    }
}

/// A [`Simulation`] failure lifted to a hierarchy level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchySimError {
    /// 1-based level whose simulation failed.
    pub level: usize,
    /// Name of that level.
    pub name: String,
    /// The underlying single-cache failure.
    pub source: SimError,
}

impl std::fmt::Display for HierarchySimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hierarchy level {} ({}): {}",
            self.level, self.name, self.source
        )
    }
}

impl std::error::Error for HierarchySimError {}

/// Reset-and-reuse engine that measures a schedule's traffic at every
/// boundary of a [`MemoryHierarchy`].
///
/// Holds one [`Simulation`] arena per boundary so repeated runs (sweeps,
/// policy comparisons) reuse their allocations, mirroring the arena
/// discipline of the single-cache engine.
///
/// ```
/// use dmc_cdag::topo::topological_order;
/// use dmc_kernels::chains::chain;
/// use dmc_machine::MemoryHierarchy;
/// use dmc_sim::hierarchy_sim::{HierarchySimulation, Inclusion};
/// use dmc_sim::simulation::CachePolicy;
///
/// // A 10-vertex chain through 4 registers → 16-word LLC → DRAM: the
/// // rolling value stays register-resident, so both boundaries see just
/// // the compulsory input load and the final output store.
/// let g = chain(10);
/// let order = topological_order(&g);
/// let h = MemoryHierarchy::cluster(1, 2, 2, 16, 1 << 30);
/// let mut sim = HierarchySimulation::new();
/// let ht = sim
///     .run(&g, &order, CachePolicy::Lru, &h, Inclusion::Inclusive)
///     .unwrap();
/// assert_eq!(ht.levels.len(), 2);
/// for lt in &ht.levels {
///     assert_eq!((lt.trace.loads, lt.trace.stores), (1, 1));
/// }
/// // Inclusive traffic is monotone: deeper boundaries see no more misses.
/// assert!(ht.boundary(1).trace.loads >= ht.boundary(2).trace.loads);
/// ```
#[derive(Debug, Default)]
pub struct HierarchySimulation {
    arenas: Vec<Simulation>,
}

impl HierarchySimulation {
    /// Creates an engine with no retained arenas.
    pub fn new() -> Self {
        HierarchySimulation::default()
    }

    /// Runs `schedule` on `g` through every cache boundary of `h`,
    /// returning the per-boundary [`Trace`] vector (fastest first).
    ///
    /// Each boundary is simulated at its [`effective_capacities`] entry;
    /// errors carry the failing level. A boundary whose effective
    /// capacity is below the schedule's feasible minimum surfaces as
    /// [`SimError::BudgetTooSmall`] at that level.
    pub fn run(
        &mut self,
        g: &Cdag,
        schedule: &[VertexId],
        policy: CachePolicy,
        h: &MemoryHierarchy,
        inclusion: Inclusion,
    ) -> Result<HierarchyTrace, HierarchySimError> {
        let caps = effective_capacities(h, inclusion);
        if self.arenas.len() < caps.len() {
            self.arenas.resize_with(caps.len(), Simulation::new);
        }
        let mut out = Vec::with_capacity(caps.len());
        for (i, (name, effective)) in caps.iter().enumerate() {
            let level = i + 1;
            let trace = self.arenas[i]
                .run(g, schedule, policy, *effective)
                .map_err(|source| HierarchySimError {
                    level,
                    name: name.clone(),
                    source,
                })?;
            out.push(LevelTrace {
                level,
                name: name.clone(),
                units: h.units(level),
                capacity_words: h.capacity(level),
                effective_words: *effective,
                trace,
            });
        }
        Ok(HierarchyTrace { levels: out })
    }
}

/// A deterministic P-processor split of a DAG schedule.
///
/// Built by [`split_round_robin`]: vertices are taken wavefront by
/// wavefront (Kahn depth levels, an implicit barrier between them) and
/// dealt round-robin to processors within each wavefront. Every field is
/// a pure function of the graph, so the split is bit-identical across
/// runs and thread counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelSplit {
    /// Number of processors the schedule was dealt across.
    pub procs: usize,
    /// The flattened level-order schedule — a valid topological order,
    /// suitable for [`Simulation::run`].
    pub order: Vec<VertexId>,
    /// `owner[v]` = processor that executes (or, for an input, first
    /// reads) vertex `v`.
    pub owner: Vec<u32>,
    /// Number of wavefronts, i.e. barrier-separated supersteps.
    pub supersteps: usize,
    /// Non-input vertices executed by each processor.
    pub per_proc_computes: Vec<u64>,
    /// Distinct `(value, remote consumer-processor)` pairs: the words
    /// that must cross the network under an owner-computes rule, the
    /// measured side of the Lemma-2 horizontal comparison.
    pub remote_reads: u64,
}

/// Splits `g` across `procs` processors: round-robin within each Kahn
/// wavefront, barrier between wavefronts.
///
/// Vertices in one wavefront share a depth, so no edge connects them and
/// the deal order is irrelevant to correctness; the flattened order is
/// always a valid topological order. `procs` is clamped to at least 1.
///
/// ```
/// use dmc_cdag::topo::is_valid_topological_order;
/// use dmc_kernels::chains::chain;
/// use dmc_sim::hierarchy_sim::split_round_robin;
///
/// let g = chain(6);
/// let split = split_round_robin(&g, 4);
/// assert!(is_valid_topological_order(&g, &split.order));
/// // A chain has no parallelism: every wavefront holds one vertex, so
/// // processor 0 does all the work and every handoff stays local.
/// assert_eq!(split.supersteps, g.num_vertices());
/// assert_eq!(split.remote_reads, 0);
/// ```
pub fn split_round_robin(g: &Cdag, procs: usize) -> ParallelSplit {
    let procs = procs.max(1);
    let wavefronts = kahn_levels(g);
    let n = g.num_vertices();
    let mut order = Vec::with_capacity(n);
    let mut owner = vec![0u32; n];
    let mut per_proc_computes = vec![0u64; procs];
    for wave in &wavefronts {
        for (k, &v) in wave.iter().enumerate() {
            let p = k % procs;
            owner[v.0 as usize] = p as u32;
            if !g.is_input(v) {
                per_proc_computes[p] += 1;
            }
            order.push(v);
        }
    }
    // Count distinct (value, remote consumer-owner) pairs: each value is
    // sent at most once to each processor that reads it remotely.
    let mut remote_reads = 0u64;
    let mut consumer_owners: Vec<u32> = Vec::new();
    for u in g.vertices() {
        consumer_owners.clear();
        consumer_owners.extend(g.successors(u).iter().map(|&c| owner[c.0 as usize]));
        consumer_owners.sort_unstable();
        consumer_owners.dedup();
        let home = owner[u.0 as usize];
        remote_reads += consumer_owners.iter().filter(|&&p| p != home).count() as u64;
    }
    ParallelSplit {
        procs,
        order,
        owner,
        supersteps: wavefronts.len(),
        per_proc_computes,
        remote_reads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmc_cdag::topo::{is_valid_topological_order, topological_order};
    use dmc_kernels::chains::chain;
    use dmc_kernels::grid::Stencil;
    use dmc_kernels::jacobi::jacobi_cdag;
    use dmc_machine::specs;

    #[test]
    fn effective_capacities_inclusive_vs_exclusive() {
        let h = MemoryHierarchy::cluster(1, 4, 8, 100, 1 << 40);
        let inc = effective_capacities(&h, Inclusion::Inclusive);
        let exc = effective_capacities(&h, Inclusion::Exclusive);
        assert_eq!(inc, [("registers".into(), 32), ("L2".into(), 100)]);
        assert_eq!(exc, [("registers".into(), 32), ("L2".into(), 132)]);
    }

    #[test]
    fn effective_capacities_saturate_on_sentinel() {
        let h = MemoryHierarchy::two_level(u64::MAX);
        let inc = effective_capacities(&h, Inclusion::Inclusive);
        assert_eq!(inc.len(), 1);
        assert_eq!(inc[0].1, u64::MAX);
        let exc = effective_capacities(&h, Inclusion::Exclusive);
        assert_eq!(exc[0].1, u64::MAX);
    }

    fn jacobi_1d(n: usize, t: usize) -> Cdag {
        jacobi_cdag(n, 1, t, Stencil::VonNeumann).cdag
    }

    #[test]
    fn single_level_hierarchy_matches_single_cache_sim() {
        // The differential oracle in miniature (the registry-wide version
        // lives in tests/hierarchy_sim.rs): boundary 1 of a 1-cache-level
        // hierarchy is exactly the standalone simulation.
        let g = jacobi_1d(16, 4);
        let order = topological_order(&g);
        let m = specs::ibm_bgq();
        for policy in [CachePolicy::Lru, CachePolicy::Opt] {
            for s in [8u64, 16, 64] {
                let h = m.single_level_hierarchy(s);
                let mut hier = HierarchySimulation::new();
                let ht = hier
                    .run(&g, &order, policy, &h, Inclusion::Inclusive)
                    .unwrap();
                let mut flat = Simulation::new();
                let t = flat.run(&g, &order, policy, s).unwrap();
                assert_eq!(ht.levels.len(), 1);
                assert_eq!(ht.boundary(1).trace, t, "policy {policy} s {s}");
            }
        }
    }

    #[test]
    fn budget_too_small_names_the_level() {
        let g = jacobi_1d(16, 2);
        let order = topological_order(&g);
        // Registers of 1 word each can never hold a stencil point's
        // operands; the error must blame level 1 by name.
        let h = MemoryHierarchy::cluster(1, 1, 1, 1 << 20, 1 << 40);
        let mut hier = HierarchySimulation::new();
        let err = hier
            .run(&g, &order, CachePolicy::Lru, &h, Inclusion::Inclusive)
            .unwrap_err();
        assert_eq!(err.level, 1);
        assert_eq!(err.name, "registers");
        assert!(matches!(err.source, SimError::BudgetTooSmall { .. }));
        assert!(err.to_string().contains("level 1 (registers)"));
    }

    #[test]
    fn inclusive_traffic_is_monotone_down_the_hierarchy() {
        let g = jacobi_1d(32, 8);
        let order = topological_order(&g);
        let h = MemoryHierarchy::cluster(1, 4, 8, 64, 1 << 40);
        let mut hier = HierarchySimulation::new();
        for policy in [CachePolicy::Lru, CachePolicy::Opt] {
            let ht = hier
                .run(&g, &order, policy, &h, Inclusion::Inclusive)
                .unwrap();
            for w in ht.levels.windows(2) {
                assert!(
                    w[0].trace.loads >= w[1].trace.loads,
                    "{policy}: loads not monotone: {:?}",
                    ht.levels
                );
                assert!(w[0].trace.io() >= w[1].trace.io());
            }
        }
    }

    #[test]
    fn arenas_are_reused_across_runs() {
        let g = chain(12);
        let order = topological_order(&g);
        let h = MemoryHierarchy::cluster(1, 2, 2, 8, 1 << 30);
        let mut hier = HierarchySimulation::new();
        let a = hier
            .run(&g, &order, CachePolicy::Lru, &h, Inclusion::Inclusive)
            .unwrap();
        let b = hier
            .run(&g, &order, CachePolicy::Lru, &h, Inclusion::Inclusive)
            .unwrap();
        assert_eq!(a, b, "reset-and-reuse must not leak state between runs");
    }

    #[test]
    fn round_robin_split_is_deterministic_and_balanced() {
        let g = jacobi_1d(16, 4);
        let a = split_round_robin(&g, 4);
        let b = split_round_robin(&g, 4);
        assert_eq!(a, b);
        assert!(is_valid_topological_order(&g, &a.order));
        assert_eq!(a.per_proc_computes.len(), 4);
        let total: u64 = a.per_proc_computes.iter().sum();
        assert_eq!(total, g.num_compute_vertices() as u64);
        // Round-robin within a 16-wide wavefront keeps the imbalance
        // within one vertex per superstep.
        let max = a.per_proc_computes.iter().max().copied().unwrap_or(0);
        let min = a.per_proc_computes.iter().min().copied().unwrap_or(0);
        assert!(max - min <= a.supersteps as u64);
    }

    #[test]
    fn one_processor_split_has_no_remote_traffic() {
        let g = jacobi_1d(16, 4);
        let s = split_round_robin(&g, 1);
        assert_eq!(s.procs, 1);
        assert_eq!(s.remote_reads, 0);
        assert!(s.owner.iter().all(|&p| p == 0));
    }

    #[test]
    fn remote_reads_count_distinct_value_processor_pairs() {
        // Fan-out: one input feeding 4 compute vertices in one wavefront,
        // dealt to 2 processors. The input (wavefront 0) lives on proc 0;
        // consumers land on procs {0, 1, 0, 1}, so exactly one remote
        // (value, proc) pair exists no matter how many consumers proc 1
        // got.
        let mut b = dmc_cdag::CdagBuilder::new();
        let x = b.add_input("x");
        for i in 0..4 {
            let v = b.add_op(format!("c{i}"), &[x]);
            b.tag_output(v);
        }
        let g = b.build_valid("fan-out");
        let s = split_round_robin(&g, 2);
        assert_eq!(s.supersteps, 2);
        assert_eq!(s.remote_reads, 1);
    }

    #[test]
    fn split_order_grows_no_vertices() {
        let g = jacobi_1d(8, 3);
        for p in [1, 2, 3, 7] {
            let s = split_round_robin(&g, p);
            assert_eq!(s.order.len(), g.num_vertices());
        }
    }
}
