//! Schedule and ownership builders.
//!
//! The simulator measures a *specific* execution; these helpers build the
//! executions the experiments compare:
//!
//! * plain topological and level-by-level (BFS-by-depth) schedules,
//! * the skewed parallelogram tiling for 1-D Jacobi that keeps a tile of
//!   the space-time trapezoid in cache — the schedule whose I/O matches
//!   the `n·T/(S)`-shape lower bound of Theorem 10,
//! * striped and block ownership maps for parallel runs.

use dmc_cdag::topo::{levels, topological_order};
use dmc_cdag::{Cdag, VertexId};
use dmc_kernels::jacobi::JacobiCdag;

/// The default schedule: Kahn topological order.
pub fn plain(g: &Cdag) -> Vec<VertexId> {
    topological_order(g)
}

/// Level-by-level schedule (all of depth 0, then depth 1, …) — for
/// stencils this is the untiled "sweep the whole grid each step" order
/// with working set `n^d`.
pub fn by_level(g: &Cdag) -> Vec<VertexId> {
    levels(g).into_iter().flatten().collect()
}

/// Skewed (slope −1) parallelogram tiling for a 1-D Jacobi CDAG: tiles of
/// `tile_width` points sweep left to right; within a tile all `T` time
/// steps are executed before moving on, shifting one cell left per step so
/// every dependence points into the current or an earlier tile.
///
/// Working set per tile is `O(tile_width + T)`, so with
/// `tile_width ≈ S` the DRAM traffic drops from `Θ(n·T)` (untiled,
/// `n ≫ S`) to `Θ(n·T/S + n)` — the shape Theorem 10 proves optimal.
pub fn tiled_jacobi_1d(j: &JacobiCdag, tile_width: usize) -> Vec<VertexId> {
    assert_eq!(j.grid.d, 1, "this tiling is for 1-D Jacobi");
    // The cell order (and its validity argument) lives in
    // `dmc_kernels::jacobi::skewed_cells_1d`, shared with the catalog's
    // schedule hook; here the cells map through the built ids.
    dmc_kernels::jacobi::skewed_cells_1d(j.grid.n, j.timesteps, tile_width)
        .into_iter()
        .map(|(t, i)| j.ids[t][i])
        .collect()
}

/// Skewed parallelogram tiling for a 2-D Jacobi CDAG (Moore or Von
/// Neumann stencil): cell `(t, i, j)` belongs to tile
/// `(⌊(i+t)/w⌋, ⌊(j+t)/w⌋)`; tiles are emitted in lexicographic order,
/// times ascending within a tile.
///
/// Validity: a dependence of `(t, i, j)` lies at `(t−1, i′, j′)` with
/// `i′ ≤ i+1, j′ ≤ j+1`, so its tile indices satisfy
/// `k₁′ = ⌊(i′+t−1)/w⌋ ≤ ⌊(i+t)/w⌋ = k₁` and likewise `k₂′ ≤ k₂` — it is
/// emitted in an earlier tile, or in the same tile at an earlier time.
pub fn tiled_jacobi_2d(j: &JacobiCdag, tile_width: usize) -> Vec<VertexId> {
    assert_eq!(j.grid.d, 2, "this tiling is for 2-D Jacobi");
    // Shared cell order — see `dmc_kernels::jacobi::skewed_cells_2d`.
    dmc_kernels::jacobi::skewed_cells_2d(j.grid.n, j.timesteps, tile_width)
        .into_iter()
        .map(|(t, linear)| j.ids[t][linear])
        .collect()
}

/// Round-robin striped ownership over `procs` processors.
pub fn striped_owner(g: &Cdag, procs: usize) -> Vec<usize> {
    assert!(procs >= 1);
    (0..g.num_vertices()).map(|i| i % procs).collect()
}

/// Block (slab) ownership for a Jacobi CDAG: the grid's linear index space
/// is cut into `procs` contiguous slabs; a vertex at any time step belongs
/// to its grid point's slab. This is the block partitioning of the
/// paper's horizontal analyses (ghost-cell exchanges only at slab faces).
pub fn jacobi_block_owner(j: &JacobiCdag, procs: usize) -> Vec<usize> {
    assert!(procs >= 1);
    let npts = j.grid.len();
    let mut owner = vec![0usize; j.cdag.num_vertices()];
    for ids_t in &j.ids {
        for (i, v) in ids_t.iter().enumerate() {
            owner[v.index()] = (i * procs / npts).min(procs - 1);
        }
    }
    owner
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmc_cdag::topo::is_valid_topological_order;
    use dmc_kernels::grid::Stencil;
    use dmc_kernels::jacobi::jacobi_cdag;

    #[test]
    fn by_level_is_topological() {
        let j = jacobi_cdag(8, 1, 4, Stencil::VonNeumann);
        let order = by_level(&j.cdag);
        assert!(is_valid_topological_order(&j.cdag, &order));
    }

    #[test]
    fn tiled_1d_is_topological() {
        for (n, t, w) in [
            (16usize, 4usize, 4usize),
            (32, 8, 4),
            (10, 10, 3),
            (7, 2, 8),
        ] {
            let j = jacobi_cdag(n, 1, t, Stencil::VonNeumann);
            let order = tiled_jacobi_1d(&j, w);
            assert!(
                is_valid_topological_order(&j.cdag, &order),
                "n={n} t={t} w={w}"
            );
            assert_eq!(order.len(), j.cdag.num_vertices());
        }
    }

    #[test]
    fn tiled_2d_is_topological() {
        for (n, t, w) in [(6usize, 3usize, 2usize), (8, 4, 3), (5, 5, 2)] {
            for stencil in [Stencil::VonNeumann, Stencil::Moore] {
                let j = jacobi_cdag(n, 2, t, stencil);
                let order = tiled_jacobi_2d(&j, w);
                assert!(
                    is_valid_topological_order(&j.cdag, &order),
                    "n={n} t={t} w={w} {stencil:?}"
                );
                assert_eq!(order.len(), j.cdag.num_vertices());
            }
        }
    }

    #[test]
    fn tiled_2d_improves_reads_under_pressure() {
        use dmc_machine::Level;
        let j = jacobi_cdag(24, 2, 8, Stencil::Moore);
        let h = dmc_machine::MemoryHierarchy::new(vec![
            Level::new("L1", 1, 64),
            Level::new("mem", 1, u64::MAX),
        ])
        .unwrap();
        let owner = vec![0usize; j.cdag.num_vertices()];
        let untiled = crate::simulate(&j.cdag, &h, &by_level(&j.cdag), &owner);
        let tiled = crate::simulate(&j.cdag, &h, &tiled_jacobi_2d(&j, 4), &owner);
        assert!(
            tiled.total_dram_reads() < untiled.total_dram_reads(),
            "tiled {} !< untiled {}",
            tiled.total_dram_reads(),
            untiled.total_dram_reads()
        );
    }

    #[test]
    fn striped_owner_covers_all_procs() {
        let j = jacobi_cdag(8, 1, 2, Stencil::VonNeumann);
        let owner = striped_owner(&j.cdag, 3);
        for p in 0..3 {
            assert!(owner.contains(&p));
        }
    }

    #[test]
    fn block_owner_is_contiguous_in_space() {
        let j = jacobi_cdag(12, 1, 2, Stencil::VonNeumann);
        let owner = jacobi_block_owner(&j, 3);
        // Same grid point at different times has the same owner.
        for i in 0..12 {
            let o0 = owner[j.ids[0][i].index()];
            let o2 = owner[j.ids[2][i].index()];
            assert_eq!(o0, o2);
        }
        // Owners are non-decreasing along the grid.
        let per_point: Vec<usize> = (0..12).map(|i| owner[j.ids[0][i].index()]).collect();
        assert!(per_point.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(per_point[0], 0);
        assert_eq!(per_point[11], 2);
    }
}
