//! Schedule executor over a memory hierarchy.
//!
//! Executes a CDAG in a given order with a given vertex→processor
//! ownership, simulating:
//!
//! * one level-1 LRU cache per processor,
//! * one shared LRU cache per unit at each intermediate level,
//! * unbounded per-node memory at the top level,
//! * remote fetches (counted as horizontal words) when a processor needs
//!   a value whose home node has it but the local node does not.
//!
//! Counting model (word granularity): a miss at level `l` filled from
//! level `l+1` counts one word on the `l ↔ l+1` link; a dirty eviction
//! from level `l` counts one word on the same link. Caches are filled on
//! the walk back down (write-allocate, mostly-inclusive — no
//! back-invalidation, the standard simulator simplification).

use crate::lru::LruCache;
use dmc_cdag::topo::is_valid_topological_order;
use dmc_cdag::{Cdag, VertexId};
use dmc_machine::MemoryHierarchy;

/// Traffic measured by [`simulate`].
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    /// `vertical_by_link[l]` — words moved between level `l+1` and level
    /// `l+2` (0-indexed: entry 0 is the L1↔L2 link), aggregated over all
    /// units.
    pub vertical_by_link: Vec<u64>,
    /// Words received per node over the interconnect.
    pub horizontal_per_node: Vec<u64>,
    /// Words of DRAM↔cache traffic per node (the top link, per node).
    pub dram_traffic_per_node: Vec<u64>,
    /// The read (fetch) component of the DRAM traffic, per node.
    pub dram_reads_per_node: Vec<u64>,
    /// The write-back component of the DRAM traffic, per node. Every
    /// produced value is a distinct address in the CDAG model, so
    /// write-backs scale with `|V|` for any schedule — compare *reads*
    /// against pebble-game bounds, which model dead-value deletion (R4).
    pub dram_writebacks_per_node: Vec<u64>,
    /// Compute operations per processor.
    pub computes_per_proc: Vec<u64>,
}

impl SimReport {
    /// Total interconnect words.
    pub fn total_horizontal(&self) -> u64 {
        self.horizontal_per_node.iter().sum()
    }

    /// Traffic at the busiest node's DRAM link (the `M^i_l` of Section 5).
    pub fn max_dram_traffic(&self) -> u64 {
        self.dram_traffic_per_node
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Total DRAM↔cache words across nodes.
    pub fn total_dram_traffic(&self) -> u64 {
        self.dram_traffic_per_node.iter().sum()
    }

    /// Total DRAM read (fetch) words across nodes.
    pub fn total_dram_reads(&self) -> u64 {
        self.dram_reads_per_node.iter().sum()
    }

    /// Total DRAM write-back words across nodes.
    pub fn total_dram_writebacks(&self) -> u64 {
        self.dram_writebacks_per_node.iter().sum()
    }
}

/// Runs the simulation.
///
/// * `schedule` must be a topological order of `g`;
/// * `owner[v]` is the processor (level-1 unit) firing `v`;
/// * the hierarchy's top level is the per-node memory (unbounded in the
///   simulation regardless of its nominal capacity); intermediate levels
///   are LRU caches of their configured word capacity.
///
/// Inputs are homed at their owner's node (block-distributed input data).
///
/// ```
/// use dmc_cdag::topo::topological_order;
/// use dmc_kernels::chains::chain;
/// use dmc_machine::{Level, MemoryHierarchy};
/// use dmc_sim::simulate;
///
/// let g = chain(10);
/// let h = MemoryHierarchy::new(vec![
///     Level::new("L1", 1, 4),
///     Level::new("mem", 1, u64::MAX),
/// ])
/// .unwrap();
/// let r = simulate(&g, &h, &topological_order(&g), &vec![0; 10]);
/// // Write-back hierarchy: 1 input fetch + 9 write-backs reach DRAM
/// // (contrast with `dmc_sim::simulation`, which models the RBW delete
/// // rule and measures 2).
/// assert_eq!(r.total_dram_traffic(), 10);
/// assert_eq!(r.computes_per_proc[0], 9);
/// ```
pub fn simulate(
    g: &Cdag,
    h: &MemoryHierarchy,
    schedule: &[VertexId],
    owner: &[usize],
) -> SimReport {
    assert!(
        is_valid_topological_order(g, schedule),
        "schedule must be a topological order"
    );
    assert_eq!(owner.len(), g.num_vertices());
    let levels = h.num_levels();
    assert!(levels >= 2, "need at least level-1 + memory");
    let procs = h.processors();
    for &o in owner {
        assert!(o < procs, "owner {o} out of range");
    }
    let nodes = h.units(levels);

    // caches[k][unit]: k = 0 .. levels-2 (level 1 .. L-1).
    let mut caches: Vec<Vec<LruCache>> = (1..levels)
        .map(|l| {
            (0..h.units(l))
                .map(|_| LruCache::new(h.capacity(l) as usize))
                .collect()
        })
        .collect();
    // Per-node memory contents: a dense membership vector indexed by
    // address (addresses are always vertex indices, so the row length is
    // `|V|`). Dense instead of a hash set so the structure has no
    // iteration order to leak — see DESIGN.md, "Determinism contract".
    let mut in_memory: Vec<Vec<bool>> = vec![vec![false; g.num_vertices()]; nodes];
    let mut report = SimReport {
        vertical_by_link: vec![0; levels - 1],
        horizontal_per_node: vec![0; nodes],
        dram_traffic_per_node: vec![0; nodes],
        dram_reads_per_node: vec![0; nodes],
        dram_writebacks_per_node: vec![0; nodes],
        computes_per_proc: vec![0; procs],
    };
    // Home node of each produced value.
    let node_of = |p: usize| p * nodes / procs.max(1);
    let unit_of = |p: usize, l: usize| p * h.units(l) / procs;
    let mut home = vec![usize::MAX; g.num_vertices()];
    for v in g.vertices() {
        if g.is_input(v) {
            let n = node_of(owner[v.index()]);
            home[v.index()] = n;
            in_memory[n][v.index()] = true;
        }
    }

    for &v in schedule {
        let p = owner[v.index()];
        let node = node_of(p);
        // Read predecessors through p's cache path.
        for &q in g.predecessors(v) {
            read_word(
                g,
                h,
                &mut caches,
                &mut in_memory,
                &mut report,
                p,
                node,
                q.index() as u64,
                &home,
                &unit_of,
            );
        }
        if g.is_input(v) {
            // Touch the input value itself (brings it into the caches).
            read_word(
                g,
                h,
                &mut caches,
                &mut in_memory,
                &mut report,
                p,
                node,
                v.index() as u64,
                &home,
                &unit_of,
            );
        } else {
            report.computes_per_proc[p] += 1;
            home[v.index()] = node;
            // Write-allocate the result into level 1 (dirty).
            write_word(
                h,
                &mut caches,
                &mut in_memory,
                &mut report,
                p,
                v.index() as u64,
                &unit_of,
            );
        }
    }
    // Flush every cache: dirty words travel up one link per level crossed.
    for k in (0..levels - 1).rev() {
        let unit_count = caches[k].len();
        for unit in 0..unit_count {
            let dirty = caches[k][unit].flush_dirty();
            for addr in dirty {
                // Propagate into the next level up (or memory).
                report.vertical_by_link[k] += 1;
                if k + 1 < levels - 1 {
                    let parent = unit * h.units(k + 2) / h.units(k + 1);
                    caches[k + 1][parent].insert(addr, true);
                } else {
                    let node = unit * nodes / h.units(k + 1);
                    report.dram_traffic_per_node[node] += 1;
                    report.dram_writebacks_per_node[node] += 1;
                    in_memory[node][addr as usize] = true;
                }
            }
        }
    }
    report
}

#[allow(clippy::too_many_arguments)]
fn read_word(
    _g: &Cdag,
    h: &MemoryHierarchy,
    caches: &mut [Vec<LruCache>],
    in_memory: &mut [Vec<bool>],
    report: &mut SimReport,
    p: usize,
    node: usize,
    addr: u64,
    home: &[usize],
    unit_of: &dyn Fn(usize, usize) -> usize,
) {
    let levels = h.num_levels();
    // Walk down: find the first level holding the word.
    let mut found_level = None; // 1-based cache level, or `levels` = memory
    for l in 1..levels {
        if caches[l - 1][unit_of(p, l)].touch(addr) {
            found_level = Some(l);
            break;
        }
    }
    let fill_from = match found_level {
        Some(l) => l,
        None => {
            // Memory level: fetch across nodes if absent locally. A value
            // homed on this node but still dirty in a peer cache is
            // served intra-node (modeled as a memory access, not a remote
            // get — cache-to-cache transfers stay on-node).
            if !in_memory[node][addr as usize] {
                let src = home[addr as usize];
                debug_assert!(
                    src != usize::MAX,
                    "value v{addr} read before being produced"
                );
                if src != node {
                    report.horizontal_per_node[node] += 1;
                }
                in_memory[node][addr as usize] = true;
            }
            report.dram_traffic_per_node[node] += 1;
            report.dram_reads_per_node[node] += 1;
            levels
        }
    };
    // The word crosses every link between `fill_from` and level 1.
    for k in 0..fill_from - 1 {
        report.vertical_by_link[k] += 1;
    }
    // Fill each cache level below `fill_from` (write-allocate, clean).
    for l in (1..fill_from).rev() {
        fill_level(h, caches, in_memory, report, p, l, addr, unit_of);
    }
}

/// Inserts `addr` clean at cache level `l` on `p`'s path, routing any
/// dirty eviction one link up.
#[allow(clippy::too_many_arguments)]
fn fill_level(
    h: &MemoryHierarchy,
    caches: &mut [Vec<LruCache>],
    in_memory: &mut [Vec<bool>],
    report: &mut SimReport,
    p: usize,
    l: usize,
    addr: u64,
    unit_of: &dyn Fn(usize, usize) -> usize,
) {
    insert_with_writeback(h, caches, in_memory, report, p, l, addr, false, unit_of);
}

#[allow(clippy::too_many_arguments)]
fn insert_with_writeback(
    h: &MemoryHierarchy,
    caches: &mut [Vec<LruCache>],
    in_memory: &mut [Vec<bool>],
    report: &mut SimReport,
    p: usize,
    l: usize,
    addr: u64,
    dirty: bool,
    unit_of: &dyn Fn(usize, usize) -> usize,
) {
    let levels = h.num_levels();
    let unit = unit_of(p, l);
    if let Some((ev_addr, ev_dirty)) = caches[l - 1][unit].insert(addr, dirty) {
        if ev_dirty {
            // Write back one level up.
            report.vertical_by_link[l - 1] += 1;
            if l + 1 < levels {
                insert_with_writeback(
                    h,
                    caches,
                    in_memory,
                    report,
                    p,
                    l + 1,
                    ev_addr,
                    true,
                    unit_of,
                );
            } else {
                let node = unit_of(p, levels);
                report.dram_traffic_per_node[node] += 1;
                report.dram_writebacks_per_node[node] += 1;
                in_memory[node][ev_addr as usize] = true;
            }
        }
    }
}

fn write_word(
    h: &MemoryHierarchy,
    caches: &mut [Vec<LruCache>],
    in_memory: &mut [Vec<bool>],
    report: &mut SimReport,
    p: usize,
    addr: u64,
    unit_of: &dyn Fn(usize, usize) -> usize,
) {
    insert_with_writeback(h, caches, in_memory, report, p, 1, addr, true, unit_of);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmc_cdag::topo::topological_order;
    use dmc_kernels::chains;
    use dmc_machine::Level;

    fn one_proc(s1: usize) -> MemoryHierarchy {
        MemoryHierarchy::new(vec![
            Level::new("L1", 1, s1 as u64),
            Level::new("mem", 1, u64::MAX),
        ])
        .unwrap()
    }

    #[test]
    fn chain_fits_in_cache() {
        let g = chains::chain(10);
        let h = one_proc(4);
        let order = topological_order(&g);
        let owner = vec![0usize; 10];
        let r = simulate(&g, &h, &order, &owner);
        // Write-back caches flush every produced value (they cannot know
        // a value is dead, unlike the pebble game's R4): 1 input fetch +
        // 9 dirty write-backs. The RBW optimum for the same chain is 2 —
        // exactly the gap the delete rule models.
        assert_eq!(r.total_dram_traffic(), 10, "{r:?}");
        assert_eq!(r.total_horizontal(), 0);
        assert_eq!(r.computes_per_proc[0], 9);
    }

    #[test]
    fn thrashing_grows_traffic() {
        // two_stage(m): collector reads m middles; with a tiny cache the
        // middles spill and reload.
        let big = chains::two_stage(32);
        let order = topological_order(&big);
        let owner = vec![0usize; big.num_vertices()];
        let small_cache = simulate(&big, &one_proc(4), &order, &owner);
        let large_cache = simulate(&big, &one_proc(64), &order, &owner);
        assert!(
            small_cache.total_dram_traffic() > large_cache.total_dram_traffic(),
            "small {} !> large {}",
            small_cache.total_dram_traffic(),
            large_cache.total_dram_traffic()
        );
    }

    #[test]
    fn cross_node_reads_count_horizontal() {
        let g = chains::chain(6);
        // 2 procs on 2 nodes.
        let h = MemoryHierarchy::new(vec![Level::new("L1", 2, 8), Level::new("mem", 2, u64::MAX)])
            .unwrap();
        let order = topological_order(&g);
        // Alternate ownership: every edge crosses nodes.
        let owner: Vec<usize> = (0..6).map(|i| i % 2).collect();
        let r = simulate(&g, &h, &order, &owner);
        assert!(r.total_horizontal() >= 5, "{r:?}");
    }

    #[test]
    fn same_node_needs_no_horizontal() {
        let g = chains::chain(6);
        let h = MemoryHierarchy::new(vec![Level::new("L1", 2, 8), Level::new("mem", 1, u64::MAX)])
            .unwrap();
        let order = topological_order(&g);
        let owner: Vec<usize> = (0..6).map(|i| i % 2).collect();
        let r = simulate(&g, &h, &order, &owner);
        assert_eq!(r.total_horizontal(), 0);
    }

    #[test]
    fn three_level_hierarchy_counts_both_links() {
        let g = chains::two_stage(64);
        let h = MemoryHierarchy::new(vec![
            Level::new("L1", 1, 4),
            Level::new("L2", 1, 16),
            Level::new("mem", 1, u64::MAX),
        ])
        .unwrap();
        let order = topological_order(&g);
        let owner = vec![0usize; g.num_vertices()];
        let r = simulate(&g, &h, &order, &owner);
        assert_eq!(r.vertical_by_link.len(), 2);
        assert!(r.vertical_by_link[0] > 0, "{r:?}");
        // L1 misses served by L2 exceed L2 misses served by DRAM.
        assert!(r.vertical_by_link[0] >= r.vertical_by_link[1]);
    }

    /// Regression for the `in_memory` HashSet→dense-Vec conversion (lint
    /// rule D1): the whole report must be bit-identical across repeated
    /// runs, including the multi-node path that exercises every
    /// `in_memory` read and write site.
    #[test]
    fn report_is_identical_across_runs() {
        let g = chains::two_stage(48);
        let h = MemoryHierarchy::new(vec![
            Level::new("L1", 4, 4),
            Level::new("L2", 2, 16),
            Level::new("mem", 2, u64::MAX),
        ])
        .unwrap();
        let order = topological_order(&g);
        let owner: Vec<usize> = (0..g.num_vertices()).map(|i| i % 4).collect();
        let a = simulate(&g, &h, &order, &owner);
        let b = simulate(&g, &h, &order, &owner);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert!(a.total_horizontal() > 0, "multi-node path exercised: {a:?}");
    }

    #[test]
    #[should_panic(expected = "topological order")]
    fn rejects_invalid_schedule() {
        let g = chains::chain(3);
        let h = one_proc(4);
        let mut order = topological_order(&g);
        order.reverse();
        let _ = simulate(&g, &h, &order, &[0; 3]);
    }
}
