//! # dmc-sim — execution-driven memory-hierarchy simulator
//!
//! Where `dmc-core` plays formal pebble games, this crate *measures*: it
//! executes a CDAG schedule against simulated LRU cache stacks and a
//! block-distributed memory, counting the words that actually cross each
//! level of the hierarchy and the node interconnect. The measurements sit
//! between the certified lower bounds and the game-derived upper bounds:
//!
//! ```text
//! LB (Theorems 5-7)  ≤  simulated traffic  ≈  real machine traffic
//! ```
//!
//! * [`lru`] — word-granularity LRU cache with dirty-eviction tracking;
//! * [`exec`] — schedule executor over a [`dmc_machine::MemoryHierarchy`]:
//!   per-processor level-1 caches, shared intermediate caches, per-node
//!   memory, remote fetches between nodes;
//! * [`simulation`] — the single-level RBW-semantics simulator behind the
//!   empirical-validation pipeline: [`Simulation::run`] measures one
//!   schedule at one capacity under LRU or Belady (OPT) eviction, and
//!   [`simulation::sweep`] fans an S-sweep over scoped workers with a
//!   deterministic index-ordered merge;
//! * [`schedule`] — schedule & ownership builders: striped/block owners,
//!   plain and level-order schedules, and the skewed (parallelogram)
//!   tiling for 1-D Jacobi that realizes the `(2S)^{1/d}` reuse the
//!   paper's Theorem 10 proves optimal;
//! * [`hierarchy_sim`] — the machine-hierarchy extension of
//!   [`simulation`]: [`HierarchySimulation`] measures one schedule at
//!   *every* boundary of a [`dmc_machine::MemoryHierarchy`] with
//!   write-back accounting, and [`hierarchy_sim::split_round_robin`]
//!   deals the schedule across P processors with barrier semantics for
//!   the Lemma-2 horizontal comparison.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod exec;
pub mod hierarchy_sim;
pub mod lru;
pub mod schedule;
pub mod simulation;

pub use exec::{simulate, SimReport};
pub use hierarchy_sim::{
    HierarchySimError, HierarchySimulation, HierarchyTrace, Inclusion, LevelTrace, ParallelSplit,
};
pub use lru::LruCache;
pub use simulation::{CachePolicy, SimError, Simulation, Trace};
