//! Single-level schedule simulation under Red-Blue-White semantics.
//!
//! Where [`crate::exec`] simulates a full write-back cache *hierarchy*
//! (every produced value eventually hits DRAM), this module measures the
//! quantity the paper's bounds actually constrain: the I/O of one fast
//! memory of `S` words playing the no-recomputation RBW game along a
//! fixed schedule. Dead values are deleted for free (rule R4), values
//! evicted while still live are stored once, and outputs are flushed at
//! the end — so a measured [`Trace`] sits *between* the certified bounds:
//!
//! ```text
//! certified lower bound  ≤  Trace::io()  ≤  certified schedule upper bound
//! ```
//!
//! for any [`CachePolicy`], because every run corresponds to a valid RBW
//! game. `dmc_core`'s validation pipeline exploits exactly this sandwich.
//!
//! [`Simulation`] is a reset-and-reuse arena (the same pattern as the
//! wavefront engine's `FlowNetwork`): all per-run state lives in retained
//! vectors indexed by vertex id, so sweeping hundreds of `S` values
//! allocates nothing after the first run. [`sweep`] fans an S-sweep over
//! `std::thread::scope` workers — one arena per worker, index-ordered
//! merge — so sweep reports are bit-identical at any thread count.
//!
//! # Determinism
//!
//! Every eviction decision is total-ordered and documented:
//!
//! * [`CachePolicy::Lru`] evicts the resident value with the smallest
//!   last-touch tick; ticks come from a strictly increasing counter, so
//!   there are never ties.
//! * [`CachePolicy::Opt`] evicts the resident value whose next use in the
//!   schedule is furthest away (values never used again are infinitely
//!   far); ties are broken toward the smaller vertex id.
//!
//! No hash-map iteration is involved anywhere, so traces are reproducible
//! across runs, processes, and thread counts.

use dmc_cdag::fanout::fan_out_indexed;
use dmc_cdag::{Cdag, VertexId};
use std::fmt;

/// Words of fast memory firing `v` needs resident at once: one for an
/// input, `in_degree + 1` for a compute vertex (itself plus every
/// predecessor, which are pinned while it fires).
pub fn vertex_footprint(g: &Cdag, v: VertexId) -> usize {
    if g.is_input(v) {
        1
    } else {
        g.in_degree(v) + 1
    }
}

/// The smallest capacity *any* schedule of `g` can execute in:
/// `max_v` [`vertex_footprint`]. [`Simulation::run`] (and the RBW game
/// executors in `dmc-core`) reject capacities below this; sweep drivers
/// use it to pick always-feasible default sweeps.
pub fn min_feasible_capacity(g: &Cdag) -> usize {
    g.vertices()
        .map(|v| vertex_footprint(g, v))
        .max()
        .unwrap_or(1)
}

/// Victim-selection rule of a [`Simulation`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachePolicy {
    /// Least-recently-used eviction — what a hardware cache approximates.
    Lru,
    /// Furthest-next-use eviction (Belady/MIN) for the fixed schedule —
    /// the offline *replacement* optimum, a proxy for the best the
    /// hierarchy could do on this schedule.
    Opt,
}

impl fmt::Display for CachePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CachePolicy::Lru => "lru",
            CachePolicy::Opt => "opt",
        })
    }
}

/// Traffic measured by one [`Simulation::run`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[must_use = "a simulated trace is the measurement; dropping it wastes the run"]
pub struct Trace {
    /// Words fetched from slow memory (input firings + reloads of
    /// spilled values).
    pub loads: u64,
    /// Words written to slow memory (live evictions + the final output
    /// flush).
    pub stores: u64,
    /// Predecessor reads served from fast memory.
    pub hits: u64,
    /// Capacity evictions (free deletions of dead values are not
    /// counted — they model the RBW delete rule R4).
    pub evictions: u64,
}

impl Trace {
    /// Total I/O — the `q` of the underlying RBW game: `loads + stores`.
    pub fn io(&self) -> u64 {
        self.loads + self.stores
    }
}

/// Why a [`Simulation::run`] was rejected before simulating anything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The schedule is not a topological order of the CDAG.
    InvalidSchedule,
    /// `S` is too small: firing some vertex needs `in_degree + 1` words
    /// resident at once.
    BudgetTooSmall {
        /// The vertex that cannot be fired.
        vertex: VertexId,
        /// Minimum capacity required for it.
        required: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidSchedule => write!(f, "schedule is not a topological order"),
            SimError::BudgetTooSmall { vertex, required } => {
                write!(
                    f,
                    "capacity too small: firing {vertex} needs {required} words"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Reusable single-level RBW cache simulator.
///
/// All working state is retained between runs and reset in place, so one
/// arena amortizes across a whole S-sweep. A run visits each scheduled
/// vertex once, reads its predecessors through the simulated fast memory
/// (hit or reload), places its result, and evicts by the chosen
/// [`CachePolicy`] under capacity pressure — exactly the moves of a valid
/// RBW game, which is what makes [`Trace::io`] comparable to the
/// certified bounds.
///
/// ```
/// use dmc_cdag::topo::topological_order;
/// use dmc_kernels::chains::chain;
/// use dmc_sim::simulation::{CachePolicy, Simulation};
///
/// // A 10-vertex chain in 2 words of fast memory: load the input, keep
/// // the rolling value resident (each link a hit, dead values deleted
/// // for free), store the output — 2 words of I/O total.
/// let g = chain(10);
/// let order = topological_order(&g);
/// let mut sim = Simulation::new();
/// let t = sim.run(&g, &order, CachePolicy::Lru, 2).unwrap();
/// assert_eq!((t.loads, t.stores, t.hits, t.evictions), (1, 1, 9, 0));
/// assert_eq!(t.io(), 2);
/// ```
#[derive(Debug, Default)]
pub struct Simulation {
    resident: Vec<bool>,
    saved: Vec<bool>,
    remaining: Vec<u32>,
    /// CSR over consumer positions: vertex `u`'s uses (schedule steps of
    /// its consumers, ascending) live at
    /// `use_pos[use_start[u] .. use_start[u + 1]]`.
    use_start: Vec<u32>,
    use_pos: Vec<u32>,
    cursor: Vec<u32>,
    last_touch: Vec<u64>,
    pos: Vec<u32>,
    resident_list: Vec<VertexId>,
    clock: u64,
}

impl Simulation {
    /// A fresh arena (allocates nothing until the first run).
    pub fn new() -> Self {
        Simulation::default()
    }

    /// Simulates `schedule` on `g` with `s` words of fast memory.
    ///
    /// Rejects schedules that are not topological orders of `g` and
    /// capacities below `max_v (in_degree(v) + 1)` — the executor needs a
    /// vertex and all its predecessors resident at once.
    pub fn run(
        &mut self,
        g: &Cdag,
        schedule: &[VertexId],
        policy: CachePolicy,
        s: u64,
    ) -> Result<Trace, SimError> {
        let n = g.num_vertices();
        self.reset(n);

        // Schedule validation against the retained position scratch.
        if schedule.len() != n {
            return Err(SimError::InvalidSchedule);
        }
        for (i, &v) in schedule.iter().enumerate() {
            if v.index() >= n || self.pos[v.index()] != u32::MAX {
                return Err(SimError::InvalidSchedule);
            }
            self.pos[v.index()] = i as u32;
        }
        for v in g.vertices() {
            for &p in g.predecessors(v) {
                if self.pos[p.index()] >= self.pos[v.index()] {
                    return Err(SimError::InvalidSchedule);
                }
            }
        }
        // Feasibility: firing needs the vertex plus all predecessors.
        for v in g.vertices() {
            let required = vertex_footprint(g, v);
            if (required as u64) > s {
                return Err(SimError::BudgetTooSmall {
                    vertex: v,
                    required,
                });
            }
        }
        // Capacities beyond |V| never evict; clamp so the comparison
        // below stays in usize.
        let cap = s.min(n as u64 + 1) as usize;

        // Consumer positions (CSR, ascending because the fill walks the
        // schedule in step order) and live-use counts.
        for v in g.vertices() {
            self.use_start[v.index() + 1] = g.out_degree(v) as u32;
            self.remaining[v.index()] = g.out_degree(v) as u32;
            if g.is_input(v) {
                self.saved[v.index()] = true; // inputs start in slow memory
            }
        }
        for i in 0..n {
            self.use_start[i + 1] += self.use_start[i];
        }
        self.use_pos.resize(self.use_start[n] as usize, 0);
        {
            let mut fill = self.use_start.clone();
            for (step, &v) in schedule.iter().enumerate() {
                for &p in g.predecessors(v) {
                    self.use_pos[fill[p.index()] as usize] = step as u32;
                    fill[p.index()] += 1;
                }
            }
        }

        let mut trace = Trace::default();
        for (step, &v) in schedule.iter().enumerate() {
            let preds = g.predecessors(v);
            // 1. Predecessors resident (pinned while firing).
            for &p in preds {
                if self.resident[p.index()] {
                    trace.hits += 1;
                } else {
                    self.make_room(g, preds, v, cap, policy, &mut trace);
                    debug_assert!(self.saved[p.index()], "spilled {p} lost without a store");
                    trace.loads += 1;
                    self.place(p);
                }
                self.touch(p);
            }
            // 2. The fired vertex itself: inputs load, computes are free.
            if !self.resident[v.index()] {
                self.make_room(g, preds, v, cap, policy, &mut trace);
                if g.is_input(v) {
                    trace.loads += 1;
                }
                self.place(v);
            }
            self.touch(v);
            // 3. Retire uses; delete dead values for free (rule R4).
            for &p in preds {
                self.remaining[p.index()] -= 1;
                self.advance_cursor(p, step as u32);
                if self.remaining[p.index()] == 0 && (!g.is_output(p) || self.saved[p.index()]) {
                    self.drop_resident(p);
                }
            }
            if self.remaining[v.index()] == 0 && !g.is_output(v) {
                self.drop_resident(v);
            }
        }
        // 4. Outputs must end up in slow memory.
        for v in g.vertices() {
            if g.is_output(v) && !self.saved[v.index()] {
                debug_assert!(
                    self.resident[v.index()],
                    "output {v} neither resident nor saved"
                );
                trace.stores += 1;
                self.saved[v.index()] = true;
            }
        }
        Ok(trace)
    }

    fn reset(&mut self, n: usize) {
        self.resident.clear();
        self.resident.resize(n, false);
        self.saved.clear();
        self.saved.resize(n, false);
        self.remaining.clear();
        self.remaining.resize(n, 0);
        self.use_start.clear();
        self.use_start.resize(n + 1, 0);
        self.use_pos.clear();
        self.cursor.clear();
        self.cursor.resize(n, 0);
        self.last_touch.clear();
        self.last_touch.resize(n, 0);
        self.pos.clear();
        self.pos.resize(n, u32::MAX);
        self.resident_list.clear();
        self.clock = 0;
    }

    fn touch(&mut self, v: VertexId) {
        self.clock += 1;
        self.last_touch[v.index()] = self.clock;
    }

    fn place(&mut self, v: VertexId) {
        debug_assert!(!self.resident[v.index()]);
        self.resident[v.index()] = true;
        self.resident_list.push(v);
        self.clock += 1;
    }

    fn drop_resident(&mut self, v: VertexId) {
        if !self.resident[v.index()] {
            return;
        }
        self.resident[v.index()] = false;
        let at = self
            .resident_list
            .iter()
            .position(|&u| u == v)
            // dmc-lint: allow(s1) -- victim was drawn from the resident list by the selection above; absence is a bookkeeping bug
            .expect("resident list consistent");
        self.resident_list.swap_remove(at);
    }

    fn advance_cursor(&mut self, p: VertexId, step: u32) {
        let (lo, hi) = (self.use_start[p.index()], self.use_start[p.index() + 1]);
        let c = &mut self.cursor[p.index()];
        while lo + *c < hi && self.use_pos[(lo + *c) as usize] <= step {
            *c += 1;
        }
    }

    fn next_use(&self, u: VertexId) -> u32 {
        let (lo, hi) = (self.use_start[u.index()], self.use_start[u.index() + 1]);
        let c = lo + self.cursor[u.index()];
        if c < hi {
            self.use_pos[c as usize]
        } else {
            u32::MAX
        }
    }

    /// Frees capacity until a new word fits, never evicting `v` or its
    /// pinned predecessors. Live victims are stored once; dead victims
    /// (fully consumed, saved-or-untagged) leave for free.
    fn make_room(
        &mut self,
        g: &Cdag,
        pinned: &[VertexId],
        v: VertexId,
        cap: usize,
        policy: CachePolicy,
        trace: &mut Trace,
    ) {
        while self.resident_list.len() >= cap {
            let victim = self.choose_victim(pinned, v, policy);
            let live = self.remaining[victim.index()] > 0 || g.is_output(victim);
            if live && !self.saved[victim.index()] {
                trace.stores += 1;
                self.saved[victim.index()] = true;
            }
            trace.evictions += 1;
            self.drop_resident(victim);
        }
    }

    fn choose_victim(&self, pinned: &[VertexId], v: VertexId, policy: CachePolicy) -> VertexId {
        let mut best: Option<VertexId> = None;
        for &u in &self.resident_list {
            if u == v || pinned.contains(&u) {
                continue;
            }
            let better = match (policy, best) {
                (_, None) => true,
                // LRU: smallest last-touch tick; ticks are unique.
                (CachePolicy::Lru, Some(b)) => {
                    self.last_touch[u.index()] < self.last_touch[b.index()]
                }
                // OPT: furthest next use, ties toward the smaller id.
                (CachePolicy::Opt, Some(b)) => {
                    let (nu, nb) = (self.next_use(u), self.next_use(b));
                    nu > nb || (nu == nb && u < b)
                }
            };
            if better {
                best = Some(u);
            }
        }
        // dmc-lint: allow(s1) -- the feasibility check at entry guarantees at least one unpinned resident exists
        best.expect("feasibility check guarantees an unpinned resident")
    }
}

/// One point of an S-sweep: the capacity and the outcome at it.
pub type SweepPoint = (u64, Result<Trace, SimError>);

/// Runs `schedule` at every capacity in `srams`, fanning the points over
/// `threads` scoped workers (`0` = `std::thread::available_parallelism`),
/// each with its own [`Simulation`] arena.
///
/// Workers pull point indices from a shared atomic queue and the merge
/// reassembles results by index, so the report is **bit-identical at any
/// thread count** — the same guarantee the wavefront engine and the
/// analysis pipeline give.
///
/// ```
/// use dmc_cdag::topo::topological_order;
/// use dmc_kernels::chains::two_stage;
/// use dmc_sim::simulation::{sweep, CachePolicy};
///
/// let g = two_stage(8);
/// let order = topological_order(&g);
/// let points = sweep(&g, &order, CachePolicy::Lru, &[10, 12, 16], 2);
/// let io: Vec<u64> = points
///     .iter()
///     .map(|(_, t)| t.as_ref().unwrap().io())
///     .collect();
/// // More fast memory never hurts on a fixed schedule + policy here.
/// assert!(io.windows(2).all(|w| w[0] >= w[1]), "{io:?}");
/// assert_eq!(points, sweep(&g, &order, CachePolicy::Lru, &[10, 12, 16], 1));
/// ```
pub fn sweep(
    g: &Cdag,
    schedule: &[VertexId],
    policy: CachePolicy,
    srams: &[u64],
    threads: usize,
) -> Vec<SweepPoint> {
    fan_out_indexed(srams.len(), threads, Simulation::new, |sim, i| {
        (srams[i], sim.run(g, schedule, policy, srams[i]))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmc_cdag::topo::topological_order;
    use dmc_kernels::chains;

    fn run(g: &Cdag, policy: CachePolicy, s: u64) -> Trace {
        Simulation::new()
            .run(g, &topological_order(g), policy, s)
            .expect("feasible")
    }

    #[test]
    fn chain_hand_computed_accounting() {
        // chain(4): in -> a -> b -> c(out). S = 2: the rolling frontier
        // always fits; dead values are deleted for free.
        let g = chains::chain(4);
        for policy in [CachePolicy::Lru, CachePolicy::Opt] {
            let t = run(&g, policy, 2);
            assert_eq!(t.loads, 1, "{policy}: one input fetch");
            assert_eq!(t.stores, 1, "{policy}: one output store");
            assert_eq!(t.hits, 3, "{policy}: each link is a hit");
            assert_eq!(t.evictions, 0, "{policy}");
        }
    }

    #[test]
    fn diamond_tight_budget_hand_computed() {
        // diamond: a -> {b, c} -> d, S = 3. After c fires, a is fully
        // consumed and leaves via the free delete (not an eviction), so
        // b, c, d fit without pressure: load a + store d only.
        let g = chains::diamond();
        for policy in [CachePolicy::Lru, CachePolicy::Opt] {
            let t = run(&g, policy, 3);
            assert_eq!(t.io(), 2, "{policy}: load a + store d");
            assert_eq!(t.hits, 4, "{policy}: a twice, then b and c");
            assert_eq!(t.evictions, 0, "{policy}: dead drops are free");
        }
    }

    #[test]
    fn fft_spills_under_pressure() {
        // fft(8): every stage vertex has in-degree 2, so S = 3 is the
        // minimum feasible budget — and far below the butterfly's working
        // set, so stage values spill (stores) and reload (loads).
        let g = dmc_kernels::fft::fft(8);
        let roomy = run(&g, CachePolicy::Lru, 64);
        assert_eq!(roomy.io(), 16, "compulsory: 8 loads + 8 stores");
        let tight = run(&g, CachePolicy::Lru, 3);
        assert!(tight.loads > 8 && tight.stores > 8, "{tight:?}");
        assert!(tight.evictions > 0);
        // OPT (Belady replacement) never does worse than LRU here.
        let opt = run(&g, CachePolicy::Opt, 3);
        assert!(opt.io() <= tight.io(), "opt {opt:?} vs lru {tight:?}");
    }

    #[test]
    fn infinite_capacity_is_compulsory_traffic_only() {
        let g = chains::ladder(5, 5);
        for policy in [CachePolicy::Lru, CachePolicy::Opt] {
            let t = run(&g, policy, u64::MAX);
            assert_eq!(t.loads, g.num_inputs() as u64, "{policy}");
            assert_eq!(t.stores, g.num_outputs() as u64, "{policy}");
            assert_eq!(t.evictions, 0, "{policy}");
        }
    }

    #[test]
    fn rejects_invalid_schedules_and_tiny_budgets() {
        let g = chains::diamond();
        let mut order = topological_order(&g);
        let mut sim = Simulation::new();
        assert_eq!(
            sim.run(&g, &order[..2], CachePolicy::Lru, 8),
            Err(SimError::InvalidSchedule)
        );
        order.reverse();
        assert_eq!(
            sim.run(&g, &order, CachePolicy::Lru, 8),
            Err(SimError::InvalidSchedule)
        );
        order.reverse();
        // Firing d needs 3 words.
        assert!(matches!(
            sim.run(&g, &order, CachePolicy::Lru, 2),
            Err(SimError::BudgetTooSmall { required: 3, .. })
        ));
    }

    #[test]
    fn arena_reuse_is_bit_identical_to_fresh_runs() {
        let g = chains::ladder(6, 6);
        let order = topological_order(&g);
        let mut reused = Simulation::new();
        for s in [4u64, 6, 8, 12, 4, 6] {
            for policy in [CachePolicy::Lru, CachePolicy::Opt] {
                let a = reused.run(&g, &order, policy, s).unwrap();
                let b = Simulation::new().run(&g, &order, policy, s).unwrap();
                assert_eq!(a, b, "S = {s} {policy}");
            }
        }
    }

    #[test]
    fn sweep_is_thread_count_invariant() {
        let g = chains::ladder(8, 8);
        let order = topological_order(&g);
        let srams: Vec<u64> = (4..24).collect();
        let base = sweep(&g, &order, CachePolicy::Lru, &srams, 1);
        for threads in [2usize, 4, 7] {
            assert_eq!(
                base,
                sweep(&g, &order, CachePolicy::Lru, &srams, threads),
                "@ {threads} threads"
            );
        }
    }

    mod properties {
        use super::*;
        use dmc_kernels::random::{random_layered, RandomDagConfig};
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// At S = ∞ the measured traffic is exactly the compulsory
            /// traffic: one load per input, one store per pure output —
            /// the trivial bound `|I| + |O \ I|`.
            #[test]
            fn infinite_sram_measures_compulsory_misses(
                layers in 2usize..5,
                width in 2usize..6,
                p in 0.1f64..0.7,
                seed in 0u64..500
            ) {
                let g = random_layered(RandomDagConfig { layers, width, deg: 0, edge_prob: p, seed });
                let order = topological_order(&g);
                let mut pure_outputs = g.outputs().clone();
                pure_outputs.difference_with(g.inputs());
                for policy in [CachePolicy::Lru, CachePolicy::Opt] {
                    let t = Simulation::new()
                        .run(&g, &order, policy, g.num_vertices() as u64 + 1)
                        .expect("S covers every in-degree");
                    prop_assert_eq!(t.loads, g.num_inputs() as u64);
                    prop_assert_eq!(t.stores, pure_outputs.len() as u64);
                    prop_assert_eq!(t.evictions, 0);
                }
            }

            /// Shrinking S never reduces I/O for a fixed schedule+policy.
            #[test]
            fn io_is_monotone_in_capacity(
                layers in 2usize..5,
                width in 2usize..6,
                p in 0.1f64..0.7,
                seed in 0u64..500
            ) {
                let g = random_layered(RandomDagConfig { layers, width, deg: 0, edge_prob: p, seed });
                let order = topological_order(&g);
                let min_s = min_feasible_capacity(&g) as u64;
                let mut sim = Simulation::new();
                let mut prev = u64::MAX;
                for s in [min_s, min_s + 1, min_s + 2, min_s + 4, min_s + 16] {
                    let t = sim.run(&g, &order, CachePolicy::Lru, s).expect("feasible");
                    prop_assert!(t.io() <= prev, "S = {}: {} > {}", s, t.io(), prev);
                    prev = t.io();
                }
            }
        }
    }
}
