//! r-pyramid CDAGs (Ranjan–Savage–Zubair, cited as \[20\] by the paper).
//!
//! A 2-pyramid of height `h` is the triangular reduction: level 0 has
//! `h+1` vertices, level `k` has `h+1−k`, and vertex `(k, i)` depends on
//! `(k−1, i)` and `(k−1, i+1)`. The r-pyramid generalizes to `r`
//! predecessors per vertex.

use crate::catalog::{AnalyticBound, Kernel, ParamSpec, ParamValues};
use dmc_cdag::{Cdag, CdagBuilder, VertexId};

/// Builds an `r`-pyramid of height `h`: level `k` has `r·(h−k) + 1`
/// vertices; vertex `(k, i)` depends on `(k−1, i), …, (k−1, i+r)`.
/// The apex is the unique output; level-0 vertices are the inputs.
pub fn pyramid(r: usize, h: usize) -> Cdag {
    assert!(r >= 1 && h >= 1);
    let base = r * h + 1;
    let mut b = CdagBuilder::with_capacity(base * (h + 1), base * h * r);
    let mut prev: Vec<VertexId> = (0..base).map(|i| b.add_input(format!("p0_{i}"))).collect();
    for k in 1..=h {
        let width = r * (h - k) + 1;
        let cur: Vec<VertexId> = (0..width)
            .map(|i| {
                let preds: Vec<VertexId> = (0..=r).map(|off| prev[i + off]).collect();
                b.add_op(format!("p{k}_{i}"), &preds)
            })
            .collect();
        prev = cur;
    }
    debug_assert_eq!(prev.len(), 1);
    b.tag_output(prev[0]);
    b.build_valid("pyramid is acyclic")
}

/// Ranjan–Savage–Zubair style I/O lower bound for pebbling an r-pyramid of
/// height `h` with `s` pebbles: `Ω(r·h² / s)` once `h ≫ s` — we use the
/// conservative constant `r·h²/(8·s)` suitable for bound sandwiches.
pub fn pyramid_io_lower_bound(r: usize, h: usize, s: u64) -> f64 {
    (r as f64) * (h as f64) * (h as f64) / (8.0 * s as f64)
}

/// Catalog entry for the r-pyramid family: `pyramid(r,h)` builds
/// [`pyramid`] and surfaces the Ranjan–Savage–Zubair-style bound.
pub struct PyramidKernel;

impl Kernel for PyramidKernel {
    fn name(&self) -> &'static str {
        "pyramid"
    }

    fn description(&self) -> &'static str {
        "r-pyramid reduction of height h (Ranjan-Savage-Zubair family)"
    }

    fn params(&self) -> &'static [ParamSpec] {
        const PARAMS: &[ParamSpec] = &[
            ParamSpec::uint("r", "predecessors per vertex", 1, 16, 2),
            ParamSpec::uint("h", "pyramid height", 1, 4096, 8),
        ];
        PARAMS
    }

    fn build(&self, p: &ParamValues) -> Cdag {
        pyramid(p.usize("r"), p.usize("h"))
    }

    fn approx_vertices(&self, p: &ParamValues) -> Option<u64> {
        let (r, h) = (p.uint("r"), p.uint("h"));
        // Levels 0..=h of width r(h-k)+1: ~ (h+1)(rh/2 + 1) vertices.
        r.checked_mul(h)
            .and_then(|rh| rh.checked_add(2))
            .and_then(|base| base.checked_mul(h + 1))
    }

    fn analytic_lower_bound(&self, p: &ParamValues, s: u64) -> Option<AnalyticBound> {
        let (r, h) = (p.usize("r"), p.usize("h"));
        Some(AnalyticBound::new(
            pyramid_io_lower_bound(r, h, s),
            format!("Ranjan-Savage-Zubair style: r·h^2/(8S) with r = {r}, h = {h}, S = {s}"),
        ))
    }

    fn analytic_upper_bound(&self, p: &ParamValues, s: u64) -> Option<AnalyticBound> {
        // Level-by-level left-to-right with the live window resident:
        // load the r·h + 1 base values once, store the apex.
        let (r, h) = (p.uint("r"), p.uint("h"));
        let base = r * h + 1;
        (s > base).then(|| {
            AnalyticBound::new(
                (base + 1) as f64,
                format!(
                    "level sweep with base resident (needs S >= {}, S = {s})",
                    base + 1
                ),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_pyramid_shape() {
        let g = pyramid(2, 3);
        // Levels: 7, 5, 3, 1 vertices.
        assert_eq!(g.num_vertices(), 16);
        assert_eq!(g.num_inputs(), 7);
        assert_eq!(g.num_outputs(), 1);
        assert_eq!(dmc_cdag::topo::critical_path_len(&g), 4);
    }

    #[test]
    fn one_pyramid_is_triangle() {
        let g = pyramid(1, 4);
        assert_eq!(g.num_inputs(), 5);
        // Every op has exactly 2 predecessors.
        for v in g.vertices().filter(|&v| !g.is_input(v)) {
            assert_eq!(g.in_degree(v), 2);
        }
    }

    #[test]
    fn apex_reaches_all_inputs() {
        let g = pyramid(2, 4);
        let apex = g.vertices().find(|&v| g.is_output(v)).unwrap();
        let anc = dmc_cdag::reach::ancestors(&g, apex);
        assert_eq!(
            (0..g.num_vertices()).filter(|&i| anc.contains(i)).count(),
            g.num_vertices() - 1
        );
    }

    #[test]
    fn bound_grows_with_height() {
        assert!(pyramid_io_lower_bound(2, 100, 16) > pyramid_io_lower_bound(2, 50, 16));
    }
}
