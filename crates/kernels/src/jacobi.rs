//! d-dimensional Jacobi stencil CDAGs (paper Section 5.4, Theorem 10).
//!
//! `u^{t+1}(i) = f(u^t(neighbourhood(i)))`: one vertex per grid point per
//! time step. The paper's Theorem 10 treats the 9-point (Moore) 2-D
//! stencil and generalizes to `d` dimensions:
//! `Q ≥ n^d·T / (4·P·(2S)^{1/d})`.

use crate::catalog::{
    AnalyticBound, Kernel, KernelSchedule, ParamSpec, ParamValues, ProfileContext,
};
use crate::grid::{Grid, Stencil};
use crate::profile::{jacobi_profile, AlgorithmProfile};
use dmc_cdag::{Cdag, CdagBuilder, VertexId};

/// A Jacobi CDAG with its geometry.
#[derive(Debug, Clone)]
pub struct JacobiCdag {
    /// The CDAG: `n^d · T` vertices plus the `n^d` inputs at t = 0.
    pub cdag: Cdag,
    /// Grid geometry.
    pub grid: Grid,
    /// Number of *computed* time steps (excluding the t = 0 inputs).
    pub timesteps: usize,
    /// Stencil shape.
    pub stencil: Stencil,
    /// `ids[t][i]` — vertex of grid point `i` at time `t` (t = 0 inputs).
    pub ids: Vec<Vec<VertexId>>,
}

/// Builds the CDAG of `t` Jacobi sweeps over an `n^d` grid.
///
/// Inputs: the `n^d` initial values. Outputs: the final time step.
/// Each non-initial vertex depends on its own previous value and its
/// stencil neighbours' previous values.
pub fn jacobi_cdag(n: usize, d: usize, t: usize, stencil: Stencil) -> JacobiCdag {
    assert!(t >= 1);
    let grid = Grid::new(n, d);
    let npts = grid.len();
    let stencil_pts = stencil.points(d);
    let mut b = CdagBuilder::with_capacity((t + 1) * npts, t * npts * stencil_pts);
    let mut ids: Vec<Vec<VertexId>> = Vec::with_capacity(t + 1);
    ids.push((0..npts).map(|i| b.add_input(format!("u0_{i}"))).collect());
    for step in 1..=t {
        let prev = &ids[step - 1];
        let cur: Vec<VertexId> = (0..npts)
            .map(|i| {
                let mut preds = vec![prev[i]];
                preds.extend(grid.neighbors(i, stencil).into_iter().map(|j| prev[j]));
                b.add_op(format!("u{step}_{i}"), &preds)
            })
            .collect();
        ids.push(cur);
    }
    // dmc-lint: allow(s1) -- ids holds one layer per sweep and t >= 1 is asserted at entry
    for &v in ids.last().expect("t >= 1") {
        b.tag_output(v);
    }
    let cdag = b.build_valid("Jacobi CDAG is acyclic");
    JacobiCdag {
        cdag,
        grid,
        timesteps: t,
        stencil,
        ids,
    }
}

/// Theorem 10 (generalized): `Q ≥ n^d·T / (4·P·(2S)^{1/d})`.
pub fn jacobi_io_lower_bound(n: usize, d: usize, t: usize, p: usize, s: u64) -> f64 {
    let nd = (n as f64).powi(d as i32);
    nd * t as f64 / (4.0 * p as f64 * (2.0 * s as f64).powf(1.0 / d as f64))
}

/// The matching-shape upper bound achieved by tiled execution: a tile of
/// footprint `S` covers `(2S)^{1/d}`-side blocks and each tile boundary
/// costs `O(tile surface)` I/O — the paper notes the tiled stencil matches
/// the lower bound. The constant here is the naive one-level tiling's.
pub fn jacobi_tiled_upper_bound(n: usize, d: usize, t: usize, p: usize, s: u64) -> f64 {
    let nd = (n as f64).powi(d as i32);
    let tile_side = (2.0 * s as f64).powf(1.0 / d as f64).max(2.0);
    // One load + one store per point per sweep of a tile of height ~ side.
    2.0 * nd * t as f64 / (p as f64 * tile_side)
}

/// `U(C, 2S)` for d-dimensional Jacobi as used in Section 5.4.3:
/// `U = 4·S·(2S)^{1/d}` — the largest 2S-partition block.
pub fn jacobi_largest_partition(d: usize, s: u64) -> f64 {
    4.0 * s as f64 * (2.0 * s as f64).powf(1.0 / d as f64)
}

/// The maximum stencil dimension that is *not* bandwidth-bound on a
/// machine with balance `beta` (words/FLOP) and level capacity `s` words.
///
/// Section 5.4.3 requires `1/(4(2S)^{1/d}) ≤ β`, i.e.
/// `d ≤ log(2S) / log(1/(4β))`. For BG/Q DRAM→L2 (β = 0.052,
/// S₂ = 4 MWords) this evaluates to `d ≤ 10.1`.
///
/// Note: the paper prints the intermediate rule as `d ≤ 0.21·log(2S₂)`
/// and the threshold as `d ≤ 4.83`, which does not follow from its own
/// inequality (see [`jacobi_paper_printed_dimension`] and EXPERIMENTS.md);
/// the qualitative conclusion — practical stencils (`d ≤ 4`) are not
/// vertically bandwidth-bound at DRAM→L2 — is identical under both
/// constants.
pub fn jacobi_max_unbound_dimension(beta: f64, s: u64) -> f64 {
    let denom = (1.0 / (4.0 * beta)).ln();
    if denom <= 0.0 {
        return f64::INFINITY; // balance so high even d → ∞ is fine
    }
    (2.0 * s as f64).ln() / denom
}

/// The paper's *printed* Section-5.4.3 rule `d ≤ 0.21·log₂(2S)`, which
/// yields the reported `d ≤ 4.83` for S₂ = 4 MWords. Kept verbatim so the
/// benches can report both values side by side.
pub fn jacobi_paper_printed_dimension(s: u64) -> f64 {
    0.21 * (2.0 * s as f64).log2()
}

/// Cell visit order of the skewed (slope −1) 1-D parallelogram tiling:
/// `(time, grid index)` pairs, tiles left to right, all time steps within
/// a tile before moving on, shifting one cell left per step.
///
/// Validity: cell `(t, i)` belongs to tile `k = ⌊(i + t)/w⌋` — an exact
/// partition — and its dependences point at `(t−1, i−1..=i+1)`, whose
/// tile indices are ≤ k, with the critical `(t−1, i+1)` landing in the
/// *same* tile at an earlier time. The single source of truth for the
/// tiling, shared by [`JacobiKernel::schedule_source`] (arithmetic
/// vertex ids) and `dmc_sim::schedule::tiled_jacobi_1d` (ids via
/// [`JacobiCdag::ids`]).
pub fn skewed_cells_1d(n: usize, t_steps: usize, w: usize) -> Vec<(usize, usize)> {
    assert!(w >= 1);
    let mut cells = Vec::with_capacity((t_steps + 1) * n);
    let k_max = (n - 1 + t_steps) / w;
    for k in 0..=k_max {
        for t in 0..=t_steps {
            let lo = (k * w) as i64 - t as i64;
            let hi = (lo + w as i64).clamp(0, n as i64) as usize;
            let lo = lo.clamp(0, n as i64) as usize;
            for i in lo..hi {
                cells.push((t, i));
            }
        }
    }
    debug_assert_eq!(
        cells.len(),
        (t_steps + 1) * n,
        "tiling must cover all cells"
    );
    cells
}

/// 2-D version of [`skewed_cells_1d`]: `(time, linear index j·n + i)`
/// pairs. Cell `(t, i, j)` belongs to tile `(⌊(i+t)/w⌋, ⌊(j+t)/w⌋)`;
/// tiles are emitted in lexicographic order, times ascending within a
/// tile. A dependence at `(t−1, i′ ≤ i+1, j′ ≤ j+1)` has tile indices
/// `≤` in both coordinates, so it is emitted in an earlier tile or in
/// the same tile at an earlier time (valid for both stencils).
pub fn skewed_cells_2d(n: usize, t_steps: usize, w: usize) -> Vec<(usize, usize)> {
    assert!(w >= 1);
    let mut cells = Vec::with_capacity((t_steps + 1) * n * n);
    let k_max = (n - 1 + t_steps) / w;
    for k1 in 0..=k_max {
        for k2 in 0..=k_max {
            for t in 0..=t_steps {
                let lo_i = (k1 * w) as i64 - t as i64;
                let hi_i = (lo_i + w as i64).clamp(0, n as i64) as usize;
                let lo_i = lo_i.clamp(0, n as i64) as usize;
                let lo_j = (k2 * w) as i64 - t as i64;
                let hi_j = (lo_j + w as i64).clamp(0, n as i64) as usize;
                let lo_j = lo_j.clamp(0, n as i64) as usize;
                for jj in lo_j..hi_j {
                    for ii in lo_i..hi_i {
                        cells.push((t, jj * n + ii));
                    }
                }
            }
        }
    }
    debug_assert_eq!(
        cells.len(),
        (t_steps + 1) * n * n,
        "tiling must cover all cells"
    );
    cells
}

/// The skewed tiling as an executable schedule over arithmetic vertex
/// ids (vertex `(t, i)` has id `t·n^d + i` by construction of
/// [`jacobi_cdag`]); tile widths derived from the capacity `s`. `None`
/// for `d ≥ 3` — no tiling shipped, callers fall back to the default.
fn tiled_schedule(n: usize, d: usize, t: usize, s: u64) -> Option<(Vec<VertexId>, String)> {
    let npts = n.pow(d as u32);
    let to_ids = |cells: Vec<(usize, usize)>| {
        cells
            .into_iter()
            .map(|(step, i)| VertexId((step * npts + i) as u32))
            .collect()
    };
    match d {
        1 => {
            let w = ((s.saturating_sub(4) / 2) as usize).max(2);
            Some((
                to_ids(skewed_cells_1d(n, t, w)),
                format!("skewed 1-D parallelogram tiles (w = {w})"),
            ))
        }
        2 => {
            let w = (((s / 2) as f64).sqrt().floor() as usize).max(2);
            Some((
                to_ids(skewed_cells_2d(n, t, w)),
                format!("skewed 2-D parallelogram tiles (w = {w})"),
            ))
        }
        _ => None,
    }
}

/// Catalog entry for the Jacobi family: `jacobi(n,d,t,stencil)` builds
/// [`jacobi_cdag`] and surfaces the Theorem-10 bound, the Section-5.4
/// profile, and the skewed-tiling schedule hook.
pub struct JacobiKernel;

impl Kernel for JacobiKernel {
    fn name(&self) -> &'static str {
        "jacobi"
    }

    fn description(&self) -> &'static str {
        "d-dimensional Jacobi stencil sweeps (Theorem 10, Section 5.4)"
    }

    fn params(&self) -> &'static [ParamSpec] {
        const PARAMS: &[ParamSpec] = &[
            ParamSpec::uint("n", "grid extent per dimension", 1, 4096, 8),
            ParamSpec::uint("d", "grid dimensions", 1, 6, 2),
            ParamSpec::uint("t", "computed time steps", 1, 4096, 4),
            ParamSpec::choice("stencil", "neighbourhood shape", Stencil::CHOICES, "star"),
        ];
        PARAMS
    }

    fn approx_vertices(&self, p: &ParamValues) -> Option<u64> {
        let npts = p.uint("n").checked_pow(p.uint("d") as u32);
        npts.and_then(|v| v.checked_mul(p.uint("t") + 1))
    }

    fn build(&self, p: &ParamValues) -> Cdag {
        // dmc-lint: allow(s1) -- the choice value was validated against the stencil enum by the catalog parser before the factory runs
        let stencil = Stencil::from_choice(p.choice("stencil")).expect("validated choice");
        jacobi_cdag(p.usize("n"), p.usize("d"), p.usize("t"), stencil).cdag
    }

    fn analytic_lower_bound(&self, p: &ParamValues, s: u64) -> Option<AnalyticBound> {
        let (n, d, t) = (p.usize("n"), p.usize("d"), p.usize("t"));
        Some(AnalyticBound::new(
            jacobi_io_lower_bound(n, d, t, 1, s),
            format!("Theorem 10: n^d·T/(4·(2S)^(1/d)) with n = {n}, d = {d}, T = {t}, S = {s}"),
        ))
    }

    // No `analytic_upper_bound` hook: `jacobi_tiled_upper_bound` is an
    // asymptotic-constant formula that omits the compulsory |I| + |O\I|
    // traffic, so for small T it would advertise an "achievable" cost no
    // execution can achieve (below the trivial lower bound). The
    // validation pipeline measures the tiled schedule instead.

    fn schedule_source(&self, p: &ParamValues, g: &Cdag, s: u64) -> KernelSchedule {
        let (n, d, t) = (p.usize("n"), p.usize("d"), p.usize("t"));
        match tiled_schedule(n, d, t, s) {
            Some((order, note)) => {
                debug_assert_eq!(order.len(), g.num_vertices());
                KernelSchedule::new(order, note)
            }
            None => KernelSchedule::default_for(g),
        }
    }

    fn flops_estimate(&self, p: &ParamValues) -> Option<f64> {
        Some((p.uint("n") as f64).powi(p.uint("d") as i32) * p.uint("t") as f64)
    }

    fn profile(&self, p: &ParamValues, ctx: &ProfileContext) -> Option<AlgorithmProfile> {
        Some(jacobi_profile(
            p.usize("n"),
            p.usize("d"),
            ctx.nodes,
            ctx.sram,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_1d() {
        let j = jacobi_cdag(5, 1, 3, Stencil::VonNeumann);
        assert_eq!(j.cdag.num_vertices(), 4 * 5);
        assert_eq!(j.cdag.num_inputs(), 5);
        assert_eq!(j.cdag.num_outputs(), 5);
        assert_eq!(dmc_cdag::topo::critical_path_len(&j.cdag), 4);
    }

    #[test]
    fn shape_2d_moore() {
        let j = jacobi_cdag(3, 2, 1, Stencil::Moore);
        // Center point has 8 neighbours + itself = in-degree 9.
        let center_t1 = j.ids[1][j.grid.index(&[1, 1])];
        assert_eq!(j.cdag.in_degree(center_t1), 9);
        let corner_t1 = j.ids[1][0];
        assert_eq!(j.cdag.in_degree(corner_t1), 4);
    }

    #[test]
    fn information_propagates_one_cell_per_step() {
        let j = jacobi_cdag(7, 1, 3, Stencil::VonNeumann);
        // u^3(0) depends on u^0(0..=3) and nothing further.
        let anc = dmc_cdag::reach::ancestors(&j.cdag, j.ids[3][0]);
        for i in 0..7 {
            let is_anc = anc.contains(j.ids[0][i].index());
            assert_eq!(is_anc, i <= 3, "input {i}");
        }
    }

    #[test]
    fn lower_bound_formula() {
        // 2-D, n=100, T=10, P=1, S=50: n²T/(4√(2S)·P) = 1e5/(4·10) = 2500.
        let q = jacobi_io_lower_bound(100, 2, 10, 1, 50);
        assert!((q - 2500.0).abs() < 1e-9);
        // Parallel: divides by P.
        assert!((jacobi_io_lower_bound(100, 2, 10, 5, 50) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn tiled_upper_bound_sandwiches() {
        for d in 1..=3usize {
            let (n, t, s) = (64, 8, 128u64);
            let lb = jacobi_io_lower_bound(n, d, t, 1, s);
            let ub = jacobi_tiled_upper_bound(n, d, t, 1, s);
            assert!(lb <= ub, "d={d}: lb {lb} > ub {ub}");
            // Same shape: ratio bounded by a constant (8x here).
            assert!(ub / lb <= 8.0 + 1e-9, "d={d}: ratio {}", ub / lb);
        }
    }

    #[test]
    fn bgq_critical_dimension() {
        // Principled rule: d ≤ ln(2S)/ln(1/(4β)) ≈ 10.1 for β = 0.052,
        // S₂ = 4 MWords.
        let d = jacobi_max_unbound_dimension(0.052, 4_000_000);
        assert!((d - 10.12).abs() < 0.1, "got {d}");
        // The paper's printed rule d ≤ 0.21·log₂(2S₂) = 4.82.
        let dp = jacobi_paper_printed_dimension(4_000_000);
        assert!((dp - 4.83).abs() < 0.05, "got {dp}");
        // Either way, practical stencils (d ≤ 4) are not bandwidth-bound.
        assert!(dp > 4.0 && d > 4.0);
    }

    #[test]
    fn l1_critical_dimension_is_large() {
        // Section 5.4.3 reports d ≤ 96 for the L2→L1 level; with a
        // balance near 1/4 the threshold explodes. Use β = 0.23 and a
        // 16 KWord L1 to reproduce the two-digit regime.
        let d = jacobi_max_unbound_dimension(0.23, 16_384);
        assert!(d > 50.0, "got {d}");
    }

    #[test]
    fn largest_partition_formula() {
        assert!((jacobi_largest_partition(2, 50) - 4.0 * 50.0 * 10.0).abs() < 1e-9);
    }

    #[test]
    fn schedule_hook_is_topological_in_every_dimension() {
        use crate::catalog::Registry;
        use dmc_cdag::topo::is_valid_topological_order;
        for (d, stencil) in [
            (1usize, "star"),
            (1, "box"),
            (2, "star"),
            (2, "box"),
            (3, "star"),
        ] {
            for s in [2u64, 16, 64] {
                let spec = Registry::shared()
                    .parse(&format!("jacobi(n=5,d={d},t=3,stencil={stencil})"))
                    .expect("valid spec");
                let g = spec.build();
                let sched = spec.schedule_source(&g, s);
                assert_eq!(sched.order.len(), g.num_vertices());
                assert!(
                    is_valid_topological_order(&g, &sched.order),
                    "d={d} {stencil} S={s}: '{}' not topological",
                    sched.note
                );
                if d <= 2 {
                    assert!(sched.note.contains("tiles"), "{}", sched.note);
                } else {
                    assert!(sched.note.contains("default"), "{}", sched.note);
                }
            }
        }
    }
}
