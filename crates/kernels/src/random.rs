//! Random layered DAG generation for fuzzing, property tests, and the
//! hierarchical-pipeline scale experiments.
//!
//! Two edge models share one seeded generator:
//!
//! * **dense** (`deg = 0`): every `(u, v)` pair between adjacent layers
//!   flips an independent coin with probability `edge_prob`. Quadratic in
//!   `width`, so only admitted for `width ≤ 4096`.
//! * **sparse** (`deg ≥ 1`): every non-input vertex draws `deg`
//!   predecessors uniformly (with dedup) from the previous layer. Linear
//!   in `layers·width·deg`, which is what lets `repro`'s E16 scale curve
//!   reach 10⁷–10⁸ vertices; this path streams *unlabeled* vertices via
//!   [`CdagBuilder::add_vertices`] so no per-vertex `String` is heaped.

use crate::catalog::{Kernel, ParamSpec, ParamValues};
use dmc_cdag::{Cdag, CdagBuilder, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Widest layer the dense (`deg = 0`) per-pair Bernoulli mode accepts;
/// beyond this the `width²` coin flips per layer dominate everything.
pub const DENSE_WIDTH_LIMIT: u64 = 4096;

/// Parameters of the random layered DAG generator.
#[derive(Debug, Clone, Copy)]
pub struct RandomDagConfig {
    /// Number of layers (≥ 2).
    pub layers: usize,
    /// Vertices per layer (≥ 1).
    pub width: usize,
    /// Expected in-degree of each non-input vertex. `0` selects the
    /// dense per-pair Bernoulli mode driven by `edge_prob` (requires
    /// `width ≤` [`DENSE_WIDTH_LIMIT`]); `≥ 1` selects the sparse
    /// streaming mode (the in-degree is `≤ deg` after dedup, `≥ 1`).
    pub deg: usize,
    /// Dense mode only: probability of an edge from each vertex of layer
    /// `k−1` to each vertex of layer `k`.
    pub edge_prob: f64,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for RandomDagConfig {
    fn default() -> Self {
        RandomDagConfig {
            layers: 4,
            width: 8,
            deg: 0,
            edge_prob: 0.3,
            seed: 0xDA6,
        }
    }
}

/// Generates a random layered CDAG. Layer 0 vertices are inputs; every
/// non-input vertex is guaranteed at least one predecessor in the
/// previous layer; compute vertices that end up with no successor are
/// tagged outputs (Hong–Kung form). Fully determined by `cfg` — same
/// config, same graph, bit for bit.
pub fn random_layered(cfg: RandomDagConfig) -> Cdag {
    assert!(cfg.layers >= 2 && cfg.width >= 1);
    assert!((0.0..=1.0).contains(&cfg.edge_prob));
    if cfg.deg == 0 {
        assert!(
            cfg.width as u64 <= DENSE_WIDTH_LIMIT,
            "dense mode (deg = 0) is quadratic in width; set deg >= 1 for width > {DENSE_WIDTH_LIMIT}"
        );
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.layers * cfg.width;
    let mut b = CdagBuilder::with_capacity(n, 0);
    // Out-degree census, so sinks can be tagged without freezing a
    // snapshot copy of the whole builder first.
    let mut out_degree = vec![0u32; n];

    if cfg.deg == 0 {
        // Dense Bernoulli mode: labeled vertices, per-pair coins.
        let mut prev: Vec<VertexId> = (0..cfg.width)
            .map(|i| b.add_input(format!("l0_{i}")))
            .collect();
        for layer in 1..cfg.layers {
            let cur: Vec<VertexId> = (0..cfg.width)
                .map(|i| {
                    let mut preds: Vec<VertexId> = prev
                        .iter()
                        .copied()
                        .filter(|_| rng.gen_bool(cfg.edge_prob))
                        .collect();
                    if preds.is_empty() {
                        preds.push(prev[rng.gen_range(0..prev.len())]);
                    }
                    for &p in &preds {
                        out_degree[p.index()] += 1;
                    }
                    b.add_op(format!("l{layer}_{i}"), &preds)
                })
                .collect();
            prev = cur;
        }
    } else {
        // Sparse streaming mode: unlabeled bulk vertices, `deg` uniform
        // draws per vertex (deduped, so the realized in-degree is in
        // `1..=min(deg, width)`).
        let deg = cfg.deg.min(cfg.width);
        b.reserve_edges((cfg.layers - 1) * cfg.width * deg);
        let first = b.add_vertices(n);
        debug_assert_eq!(first, VertexId(0));
        for i in 0..cfg.width {
            b.tag_input(VertexId(i as u32));
        }
        let mut draws: Vec<u32> = Vec::with_capacity(deg);
        for layer in 1..cfg.layers {
            let prev_base = ((layer - 1) * cfg.width) as u32;
            let cur_base = (layer * cfg.width) as u32;
            for i in 0..cfg.width as u32 {
                draws.clear();
                for _ in 0..deg {
                    draws.push(prev_base + rng.gen_range(0..cfg.width) as u32);
                }
                draws.sort_unstable();
                draws.dedup();
                for &p in &draws {
                    out_degree[p as usize] += 1;
                    b.add_edge(VertexId(p), VertexId(cur_base + i));
                }
            }
        }
    }

    for (i, &d) in out_degree.iter().enumerate() {
        if d == 0 && i >= cfg.width {
            b.tag_output(VertexId(i as u32));
        }
    }
    b.build_valid("layered graph is acyclic")
}

/// Catalog entry for the random layered DAG generator:
/// `random(layers,width,deg,edge_pct,seed)` builds [`random_layered`]
/// with `edge_prob = edge_pct / 100`. `deg = 0` (the default) is the
/// dense Bernoulli mode; `deg ≥ 1` is the sparse streaming mode used by
/// the 10⁷-vertex scale experiments.
pub struct RandomLayeredKernel;

impl Kernel for RandomLayeredKernel {
    fn name(&self) -> &'static str {
        "random"
    }

    fn description(&self) -> &'static str {
        "seeded random layered DAG (fuzzing / property-test / scale workloads)"
    }

    fn params(&self) -> &'static [ParamSpec] {
        const PARAMS: &[ParamSpec] = &[
            ParamSpec::uint("layers", "number of layers", 2, 4096, 4),
            ParamSpec::uint("width", "vertices per layer", 1, 65536, 8),
            ParamSpec::uint(
                "deg",
                "expected in-degree; 0 = dense edge_pct mode",
                0,
                64,
                0,
            ),
            ParamSpec::uint("edge_pct", "per-edge probability in percent", 0, 100, 30),
            ParamSpec::uint("seed", "RNG seed", 0, u64::MAX, 0xDA6),
        ];
        PARAMS
    }

    fn validate(&self, p: &ParamValues) -> Result<(), String> {
        if p.uint("deg") == 0 && p.uint("width") > DENSE_WIDTH_LIMIT {
            return Err(format!(
                "dense mode (deg=0) flips width^2 coins per layer; set deg >= 1 for width > {DENSE_WIDTH_LIMIT}"
            ));
        }
        Ok(())
    }

    fn approx_vertices(&self, p: &ParamValues) -> Option<u64> {
        p.uint("layers").checked_mul(p.uint("width"))
    }

    fn build(&self, p: &ParamValues) -> Cdag {
        random_layered(RandomDagConfig {
            layers: p.usize("layers"),
            width: p.usize("width"),
            deg: p.usize("deg"),
            edge_prob: p.uint("edge_pct") as f64 / 100.0,
            seed: p.uint("seed"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = random_layered(RandomDagConfig::default());
        let b = random_layered(RandomDagConfig::default());
        assert_eq!(a.num_vertices(), b.num_vertices());
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_layered(RandomDagConfig::default());
        let b = random_layered(RandomDagConfig {
            seed: 42,
            ..Default::default()
        });
        // Overwhelmingly likely to differ in edge count.
        assert!(a.num_edges() != b.num_edges() || a.edges().ne(b.edges()));
    }

    #[test]
    fn every_non_input_has_a_predecessor() {
        let g = random_layered(RandomDagConfig {
            layers: 6,
            width: 10,
            deg: 0,
            edge_prob: 0.05, // sparse: exercises the fallback edge
            seed: 7,
        });
        for v in g.vertices() {
            if !g.is_input(v) {
                assert!(g.in_degree(v) >= 1);
            }
        }
    }

    #[test]
    fn last_layer_is_all_outputs() {
        let g = random_layered(RandomDagConfig::default());
        let outs = g.vertices().filter(|&v| g.is_output(v)).count();
        assert!(outs >= RandomDagConfig::default().width);
    }

    #[test]
    fn sparse_mode_is_deterministic_and_degree_bounded() {
        let cfg = RandomDagConfig {
            layers: 8,
            width: 64,
            deg: 3,
            edge_prob: 0.0,
            seed: 7,
        };
        let a = random_layered(cfg);
        let b = random_layered(cfg);
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
        assert_eq!(a.num_vertices(), 8 * 64);
        assert_eq!(a.num_inputs(), 64);
        for v in a.vertices() {
            if a.is_input(v) {
                assert_eq!(a.in_degree(v), 0);
            } else {
                assert!((1..=3).contains(&a.in_degree(v)), "v = {v}");
            }
        }
        // Sinks (and only non-input sinks) are outputs.
        for v in a.vertices() {
            assert_eq!(a.is_output(v), a.out_degree(v) == 0 && !a.is_input(v));
        }
    }

    #[test]
    fn sparse_mode_handles_deg_wider_than_layer() {
        // deg clamps to width, so a width-2 layer with deg=5 still builds.
        let g = random_layered(RandomDagConfig {
            layers: 3,
            width: 2,
            deg: 5,
            edge_prob: 0.0,
            seed: 1,
        });
        assert_eq!(g.num_vertices(), 6);
        for v in g.vertices() {
            if !g.is_input(v) {
                assert!((1..=2).contains(&g.in_degree(v)));
            }
        }
    }

    #[test]
    fn dense_mode_rejects_wide_layers() {
        use crate::catalog::Registry;
        let err = Registry::shared()
            .parse("random(layers=4,width=8192)")
            .unwrap_err();
        assert!(err.to_string().contains("deg"), "{err}");
        // The same width is fine in sparse mode.
        assert!(Registry::shared()
            .parse("random(layers=4,width=8192,deg=2)")
            .is_ok());
    }
}
