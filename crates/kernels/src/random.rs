//! Random layered DAG generation for fuzzing and property tests.

use crate::catalog::{ensure_build_size, Kernel, ParamSpec, ParamValues};
use dmc_cdag::{Cdag, CdagBuilder, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the random layered DAG generator.
#[derive(Debug, Clone, Copy)]
pub struct RandomDagConfig {
    /// Number of layers (≥ 2).
    pub layers: usize,
    /// Vertices per layer (≥ 1).
    pub width: usize,
    /// Probability of an edge from each vertex of layer `k−1` to each
    /// vertex of layer `k`.
    pub edge_prob: f64,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for RandomDagConfig {
    fn default() -> Self {
        RandomDagConfig {
            layers: 4,
            width: 8,
            edge_prob: 0.3,
            seed: 0xDA6,
        }
    }
}

/// Generates a random layered CDAG. Layer 0 vertices are inputs; every
/// non-input vertex is guaranteed at least one predecessor (a random
/// vertex of the previous layer if the coin flips all failed); sinks are
/// tagged outputs.
pub fn random_layered(cfg: RandomDagConfig) -> Cdag {
    assert!(cfg.layers >= 2 && cfg.width >= 1);
    assert!((0.0..=1.0).contains(&cfg.edge_prob));
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut b = CdagBuilder::with_capacity(cfg.layers * cfg.width, 0);
    let mut prev: Vec<VertexId> = (0..cfg.width)
        .map(|i| b.add_input(format!("l0_{i}")))
        .collect();
    for layer in 1..cfg.layers {
        let cur: Vec<VertexId> = (0..cfg.width)
            .map(|i| {
                let mut preds: Vec<VertexId> = prev
                    .iter()
                    .copied()
                    .filter(|_| rng.gen_bool(cfg.edge_prob))
                    .collect();
                if preds.is_empty() {
                    preds.push(prev[rng.gen_range(0..prev.len())]);
                }
                b.add_op(format!("l{layer}_{i}"), &preds)
            })
            .collect();
        prev = cur;
    }
    // Tag all sinks as outputs (Hong–Kung form).
    let snapshot = b.clone().build_valid("layered graph is acyclic");
    for v in snapshot.vertices() {
        if snapshot.out_degree(v) == 0 && !snapshot.is_input(v) {
            b.tag_output(v);
        }
    }
    b.build_valid("layered graph is acyclic")
}

/// Catalog entry for the random layered DAG generator:
/// `random(layers,width,edge_pct,seed)` builds [`random_layered`] with
/// `edge_prob = edge_pct / 100`.
pub struct RandomLayeredKernel;

impl Kernel for RandomLayeredKernel {
    fn name(&self) -> &'static str {
        "random"
    }

    fn description(&self) -> &'static str {
        "seeded random layered DAG (fuzzing / property-test workloads)"
    }

    fn params(&self) -> &'static [ParamSpec] {
        const PARAMS: &[ParamSpec] = &[
            ParamSpec::uint("layers", "number of layers", 2, 4096, 4),
            ParamSpec::uint("width", "vertices per layer", 1, 4096, 8),
            ParamSpec::uint("edge_pct", "per-edge probability in percent", 0, 100, 30),
            ParamSpec::uint("seed", "RNG seed", 0, u64::MAX, 0xDA6),
        ];
        PARAMS
    }

    fn validate(&self, p: &ParamValues) -> Result<(), String> {
        ensure_build_size(p.uint("layers").checked_mul(p.uint("width")))
    }

    fn build(&self, p: &ParamValues) -> Cdag {
        random_layered(RandomDagConfig {
            layers: p.usize("layers"),
            width: p.usize("width"),
            edge_prob: p.uint("edge_pct") as f64 / 100.0,
            seed: p.uint("seed"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = random_layered(RandomDagConfig::default());
        let b = random_layered(RandomDagConfig::default());
        assert_eq!(a.num_vertices(), b.num_vertices());
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_layered(RandomDagConfig::default());
        let b = random_layered(RandomDagConfig {
            seed: 42,
            ..Default::default()
        });
        // Overwhelmingly likely to differ in edge count.
        assert!(a.num_edges() != b.num_edges() || a.edges().ne(b.edges()));
    }

    #[test]
    fn every_non_input_has_a_predecessor() {
        let g = random_layered(RandomDagConfig {
            layers: 6,
            width: 10,
            edge_prob: 0.05, // sparse: exercises the fallback edge
            seed: 7,
        });
        for v in g.vertices() {
            if !g.is_input(v) {
                assert!(g.in_degree(v) >= 1);
            }
        }
    }

    #[test]
    fn last_layer_is_all_outputs() {
        let g = random_layered(RandomDagConfig::default());
        let outs = g.vertices().filter(|&v| g.is_output(v)).count();
        assert!(outs >= RandomDagConfig::default().width);
    }
}
