//! Vector outer products `A = p · qᵀ`.
//!
//! Section 3 of the paper uses the outer product as the canonical example
//! of an I/O-bound-but-capacity-independent kernel: computing and storing
//! `A` costs `2N` loads + `N²` stores, *independent of S*, because every
//! result element is used exactly once.

use crate::catalog::{AnalyticBound, Kernel, ParamSpec, ParamValues};
use dmc_cdag::{Cdag, CdagBuilder, VertexId};

/// Builds the CDAG of `A = p·qᵀ` for vectors of length `n`:
/// `2n` inputs, `n²` multiply vertices, all tagged outputs.
pub fn outer_product(n: usize) -> Cdag {
    let mut b = CdagBuilder::with_capacity(2 * n + n * n, 2 * n * n);
    let p: Vec<VertexId> = (0..n).map(|i| b.add_input(format!("p{i}"))).collect();
    let q: Vec<VertexId> = (0..n).map(|j| b.add_input(format!("q{j}"))).collect();
    for (i, &pi) in p.iter().enumerate() {
        for (j, &qj) in q.iter().enumerate() {
            let a = b.add_op(format!("A{i}_{j}"), &[pi, qj]);
            b.tag_output(a);
        }
    }
    b.build_valid("outer product is acyclic")
}

/// The exact I/O cost of the outer product under the RBW game with
/// `S ≥ 3` red pebbles: `2n` input loads plus `n²` output stores
/// (Section 3 of the paper: "total I/O of 2N + N², independent of S").
pub fn outer_product_exact_io(n: usize) -> u64 {
    2 * n as u64 + (n as u64) * (n as u64)
}

/// Catalog entry for the outer product: `outer(n)` builds
/// [`outer_product`]; its I/O is exactly `2N + N²` independent of `S`
/// (the Section-3 capacity-independence example).
pub struct OuterProductKernel;

impl Kernel for OuterProductKernel {
    fn name(&self) -> &'static str {
        "outer"
    }

    fn description(&self) -> &'static str {
        "vector outer product A = p·q^T (2N + N^2 I/O, independent of S)"
    }

    fn params(&self) -> &'static [ParamSpec] {
        const PARAMS: &[ParamSpec] = &[ParamSpec::uint("n", "input vector length", 1, 2048, 8)];
        PARAMS
    }

    fn build(&self, p: &ParamValues) -> Cdag {
        outer_product(p.usize("n"))
    }

    fn approx_vertices(&self, p: &ParamValues) -> Option<u64> {
        let n = p.uint("n");
        n.checked_mul(n).and_then(|v| v.checked_add(2 * n))
    }

    fn analytic_lower_bound(&self, p: &ParamValues, _s: u64) -> Option<AnalyticBound> {
        let n = p.usize("n");
        Some(AnalyticBound::new(
            outer_product_exact_io(n) as f64,
            format!("Section 3 (exact): 2N loads + N^2 stores with N = {n}"),
        ))
    }

    fn analytic_upper_bound(&self, p: &ParamValues, s: u64) -> Option<AnalyticBound> {
        // Achieved by keeping one full input vector resident: row-major
        // sweep holds p_i, all of q, and the current result.
        let n = p.uint("n");
        (s >= n + 2).then(|| {
            AnalyticBound::new(
                outer_product_exact_io(p.usize("n")) as f64,
                format!("row sweep with q resident (needs S >= N + 2, N = {n}, S = {s})"),
            )
        })
    }

    fn flops_estimate(&self, p: &ParamValues) -> Option<f64> {
        let n = p.uint("n") as f64;
        Some(n * n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape() {
        let g = outer_product(4);
        assert_eq!(g.num_vertices(), 8 + 16);
        assert_eq!(g.num_edges(), 32);
        assert_eq!(g.num_inputs(), 8);
        assert_eq!(g.num_outputs(), 16);
        assert!(g.is_hong_kung_form());
    }

    #[test]
    fn every_result_has_two_preds() {
        let g = outer_product(3);
        for v in g.vertices().filter(|&v| !g.is_input(v)) {
            assert_eq!(g.in_degree(v), 2);
            assert_eq!(g.out_degree(v), 0);
        }
    }

    #[test]
    fn io_formula() {
        assert_eq!(outer_product_exact_io(10), 120);
        assert_eq!(outer_product_exact_io(1), 3);
    }
}
