//! Parallel-prefix (scan) network CDAGs.
//!
//! Prefix sums are the canonical example of a work/depth/I-O trade-off:
//! the sequential scan is work-optimal (`n−1` ops) but depth `n`, while
//! Sklansky's divide-and-conquer network halves the depth to `log₂ n` at
//! the cost of `Θ(n log n)` work and fan-out. Both shapes stress the
//! lower-bound machinery differently (chains vs high-fan-out layers), and
//! the pair forms a natural work-vs-wavefront ablation.

use crate::catalog::{Kernel, ParamSpec, ParamValues};
use dmc_cdag::{Cdag, CdagBuilder, VertexId};

/// Sequential (chain) inclusive scan over `n` inputs: `n−1` adds, depth
/// `n`, every prefix tagged as an output.
pub fn sequential_scan(n: usize) -> Cdag {
    assert!(n >= 1);
    let mut b = CdagBuilder::with_capacity(2 * n, 2 * n);
    let xs: Vec<VertexId> = (0..n).map(|i| b.add_input(format!("x{i}"))).collect();
    let mut acc = xs[0];
    b.tag_output(acc);
    for (i, &x) in xs.iter().enumerate().skip(1) {
        acc = b.add_op(format!("s{i}"), &[acc, x]);
        b.tag_output(acc);
    }
    b.build_valid("scan chain is acyclic")
}

/// Sklansky's minimum-depth inclusive scan over `n = 2^k` inputs:
/// depth `log₂ n`, `(n/2)·log₂ n` adds, outputs on all `n` prefixes.
pub fn sklansky_scan(n: usize) -> Cdag {
    assert!(n.is_power_of_two() && n >= 2);
    let mut b = CdagBuilder::with_capacity(n * 2, n * 2);
    let mut cur: Vec<VertexId> = (0..n).map(|i| b.add_input(format!("x{i}"))).collect();
    let stages = n.trailing_zeros() as usize;
    for s in 0..stages {
        let block = 1usize << (s + 1);
        let half = block / 2;
        let mut next = cur.clone();
        for start in (0..n).step_by(block) {
            let pivot = cur[start + half - 1];
            for i in (start + half)..(start + block) {
                next[i] = b.add_op(format!("p{s}_{i}"), &[pivot, cur[i]]);
            }
        }
        cur = next;
    }
    for &v in &cur {
        b.tag_output(v);
    }
    b.build_valid("Sklansky network is acyclic")
}

/// Catalog entry for the prefix-sum networks: `scan(n,kind)` builds
/// [`sequential_scan`] (`kind=seq`) or [`sklansky_scan`]
/// (`kind=sklansky`, `n` a power of two).
pub struct ScanKernel;

impl Kernel for ScanKernel {
    fn name(&self) -> &'static str {
        "scan"
    }

    fn description(&self) -> &'static str {
        "inclusive prefix sum: sequential chain or Sklansky minimum-depth network"
    }

    fn params(&self) -> &'static [ParamSpec] {
        const PARAMS: &[ParamSpec] = &[
            ParamSpec::uint(
                "n",
                "input count (power of two for sklansky)",
                1,
                1 << 20,
                8,
            ),
            ParamSpec::choice("kind", "network shape", &["seq", "sklansky"], "seq"),
        ];
        PARAMS
    }

    fn validate(&self, p: &ParamValues) -> Result<(), String> {
        let n = p.uint("n");
        if p.choice("kind") == "sklansky" && (!n.is_power_of_two() || n < 2) {
            return Err(format!(
                "n = {n} must be a power of two >= 2 for kind=sklansky"
            ));
        }
        Ok(())
    }

    fn approx_vertices(&self, p: &ParamValues) -> Option<u64> {
        let n = p.uint("n");
        if p.choice("kind") == "sklansky" {
            // n inputs + (n/2)·log2(n) internal adds.
            let stages = if n.is_power_of_two() {
                n.trailing_zeros() as u64
            } else {
                64 - n.leading_zeros() as u64
            };
            (n / 2)
                .checked_mul(stages)
                .and_then(|adds| adds.checked_add(n))
        } else {
            // n inputs + n − 1 sequential adds.
            n.checked_mul(2)
        }
    }

    fn build(&self, p: &ParamValues) -> Cdag {
        match p.choice("kind") {
            "sklansky" => sklansky_scan(p.usize("n")),
            _ => sequential_scan(p.usize("n")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmc_cdag::reach::ancestors;
    use dmc_cdag::topo::critical_path_len;

    #[test]
    fn sequential_shape() {
        let g = sequential_scan(8);
        assert_eq!(g.num_vertices(), 8 + 7);
        assert_eq!(g.num_outputs(), 8);
        assert_eq!(critical_path_len(&g), 8);
    }

    #[test]
    fn sklansky_shape() {
        let n = 8;
        let g = sklansky_scan(n);
        // (n/2)·log2(n) adds.
        assert_eq!(g.num_vertices(), n + n / 2 * 3);
        assert_eq!(g.num_outputs(), n);
        assert_eq!(critical_path_len(&g), 1 + 3);
    }

    #[test]
    fn both_compute_all_prefixes() {
        // Output k must depend on exactly inputs 0..=k.
        for g in [sequential_scan(8), sklansky_scan(8)] {
            let outputs: Vec<_> = g.vertices().filter(|&v| g.is_output(v)).collect();
            assert_eq!(outputs.len(), 8);
            // Sort outputs by their input-ancestor count; the k-th prefix
            // has k+1 input ancestors (counting itself if it is an input).
            let mut counts: Vec<usize> = outputs
                .iter()
                .map(|&o| {
                    let mut anc = ancestors(&g, o);
                    anc.insert(o.index());
                    (0..g.num_vertices())
                        .filter(|&i| g.is_input(dmc_cdag::VertexId(i as u32)) && anc.contains(i))
                        .count()
                })
                .collect();
            counts.sort_unstable();
            assert_eq!(counts, (1..=8).collect::<Vec<_>>());
        }
    }

    #[test]
    fn sklansky_trades_work_for_depth() {
        let n = 32;
        let seq = sequential_scan(n);
        let skl = sklansky_scan(n);
        assert!(skl.num_compute_vertices() > seq.num_compute_vertices());
        assert!(critical_path_len(&skl) < critical_path_len(&seq));
    }

    #[test]
    #[should_panic(expected = "power_of_two")]
    fn sklansky_rejects_non_power() {
        let _ = sklansky_scan(12);
    }
}
