//! Vector-operation CDAG fragments: reduction trees, dot products, saxpy.
//!
//! These are both standalone kernels and the building blocks the CG/GMRES
//! generators compose (one iteration of CG is one SpMV + three dot products
//! + three saxpies, Figure 3 of the paper).

use crate::catalog::{AnalyticBound, Kernel, ParamSpec, ParamValues};
use dmc_cdag::{Cdag, CdagBuilder, VertexId};

/// Appends a balanced binary reduction over `items` to `b`; returns the
/// root vertex. Single-item reductions return the item unchanged.
pub fn reduce_tree(b: &mut CdagBuilder, items: &[VertexId], tag: &str) -> VertexId {
    assert!(!items.is_empty(), "cannot reduce an empty sequence");
    let mut frontier = items.to_vec();
    let mut level = 0;
    while frontier.len() > 1 {
        level += 1;
        frontier = frontier
            .chunks(2)
            .enumerate()
            .map(|(i, pair)| {
                if pair.len() == 2 {
                    b.add_op(format!("{tag}+L{level}_{i}"), pair)
                } else {
                    pair[0]
                }
            })
            .collect();
    }
    frontier[0]
}

/// Appends a dot product `⟨x, y⟩`: elementwise multiplies then a reduction
/// tree; returns the scalar result vertex. When `x[i] == y[i]` (a squared
/// norm) the duplicate edge is collapsed by the builder's dedup pass if
/// enabled, or kept as a 2-edge multiply otherwise.
pub fn dot(b: &mut CdagBuilder, x: &[VertexId], y: &[VertexId], tag: &str) -> VertexId {
    assert_eq!(x.len(), y.len(), "dot product of unequal lengths");
    let prods: Vec<VertexId> = x
        .iter()
        .zip(y)
        .enumerate()
        .map(|(i, (&a, &c))| {
            if a == c {
                b.add_op(format!("{tag}*sq{i}"), &[a])
            } else {
                b.add_op(format!("{tag}*{i}"), &[a, c])
            }
        })
        .collect();
    reduce_tree(b, &prods, tag)
}

/// Appends a fused `z_i = x_i + s·y_i` (saxpy); returns the result vector.
pub fn saxpy(
    b: &mut CdagBuilder,
    x: &[VertexId],
    s: VertexId,
    y: &[VertexId],
    tag: &str,
) -> Vec<VertexId> {
    assert_eq!(x.len(), y.len(), "saxpy of unequal lengths");
    x.iter()
        .zip(y)
        .enumerate()
        .map(|(i, (&a, &c))| b.add_op(format!("{tag}{i}"), &[a, s, c]))
        .collect()
}

/// Appends an elementwise scale `z_i = x_i · s`; returns the result vector.
pub fn scale(b: &mut CdagBuilder, x: &[VertexId], s: VertexId, tag: &str) -> Vec<VertexId> {
    x.iter()
        .enumerate()
        .map(|(i, &a)| b.add_op(format!("{tag}{i}"), &[a, s]))
        .collect()
}

/// A standalone dot-product CDAG over two input vectors of length `n`.
pub fn dot_product_cdag(n: usize) -> Cdag {
    let mut b = CdagBuilder::new();
    let x: Vec<VertexId> = (0..n).map(|i| b.add_input(format!("x{i}"))).collect();
    let y: Vec<VertexId> = (0..n).map(|i| b.add_input(format!("y{i}"))).collect();
    let r = dot(&mut b, &x, &y, "xy");
    b.tag_output(r);
    b.build_valid("dot product is acyclic")
}

/// A standalone saxpy CDAG `z = x + s·y` over inputs of length `n`.
pub fn saxpy_cdag(n: usize) -> Cdag {
    let mut b = CdagBuilder::new();
    let x: Vec<VertexId> = (0..n).map(|i| b.add_input(format!("x{i}"))).collect();
    let y: Vec<VertexId> = (0..n).map(|i| b.add_input(format!("y{i}"))).collect();
    let s = b.add_input("s");
    let z = saxpy(&mut b, &x, s, &y, "z");
    for v in z {
        b.tag_output(v);
    }
    b.build_valid("saxpy is acyclic")
}

/// Catalog entry for the standalone dot product: `dot(n)` builds
/// [`dot_product_cdag`].
pub struct DotProductKernel;

impl Kernel for DotProductKernel {
    fn name(&self) -> &'static str {
        "dot"
    }

    fn description(&self) -> &'static str {
        "dot product <x, y> over two n-vectors (multiplies + reduction tree)"
    }

    fn params(&self) -> &'static [ParamSpec] {
        const PARAMS: &[ParamSpec] = &[ParamSpec::uint("n", "vector length", 1, 1 << 20, 8)];
        PARAMS
    }

    fn build(&self, p: &ParamValues) -> Cdag {
        dot_product_cdag(p.usize("n"))
    }

    fn approx_vertices(&self, p: &ParamValues) -> Option<u64> {
        // 2n inputs, n multiplies, ~n−1 tree adds.
        p.uint("n").checked_mul(4)
    }

    fn analytic_upper_bound(&self, p: &ParamValues, s: u64) -> Option<AnalyticBound> {
        // Left-to-right over the balanced tree: one partial per level plus
        // the two operands of the current multiply.
        let n = p.uint("n");
        let depth = 64 - n.leading_zeros() as u64; // ceil(log2(n)) + 1-ish
        (s >= depth + 3).then(|| {
            AnalyticBound::new(
                (2 * n + 1) as f64,
                format!("streaming reduction: 2n loads + 1 store, n = {n}"),
            )
        })
    }

    fn flops_estimate(&self, p: &ParamValues) -> Option<f64> {
        Some(2.0 * p.uint("n") as f64 - 1.0)
    }
}

/// Catalog entry for the standalone saxpy: `saxpy(n)` builds
/// [`saxpy_cdag`].
pub struct SaxpyKernel;

impl Kernel for SaxpyKernel {
    fn name(&self) -> &'static str {
        "saxpy"
    }

    fn description(&self) -> &'static str {
        "fused z = x + s·y over n-vectors"
    }

    fn params(&self) -> &'static [ParamSpec] {
        const PARAMS: &[ParamSpec] = &[ParamSpec::uint("n", "vector length", 1, 1 << 20, 8)];
        PARAMS
    }

    fn build(&self, p: &ParamValues) -> Cdag {
        saxpy_cdag(p.usize("n"))
    }

    fn approx_vertices(&self, p: &ParamValues) -> Option<u64> {
        // 2n + 1 inputs, n fused ops.
        p.uint("n").checked_mul(3).and_then(|v| v.checked_add(1))
    }

    fn analytic_upper_bound(&self, p: &ParamValues, s: u64) -> Option<AnalyticBound> {
        // Stream x and y with the scalar resident: 2n + 1 loads, n stores.
        let n = p.uint("n");
        (s >= 4).then(|| {
            AnalyticBound::new(
                (3 * n + 1) as f64,
                format!("streaming: 2n + 1 loads + n stores, n = {n} (S >= 4)"),
            )
        })
    }

    fn flops_estimate(&self, p: &ParamValues) -> Option<f64> {
        Some(2.0 * p.uint("n") as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_tree_sizes() {
        // n leaves -> n-1 internal adds, also for non-powers of two.
        for n in [1usize, 2, 3, 5, 8, 13] {
            let mut b = CdagBuilder::new();
            let xs: Vec<VertexId> = (0..n).map(|i| b.add_input(format!("x{i}"))).collect();
            let root = reduce_tree(&mut b, &xs, "s");
            let g = b.build().unwrap();
            assert_eq!(g.num_vertices(), n + n.saturating_sub(1), "n = {n}");
            if n > 1 {
                assert_eq!(g.in_degree(root), 2);
            }
        }
    }

    #[test]
    fn dot_product_shape() {
        let g = dot_product_cdag(8);
        // 16 inputs + 8 mults + 7 adds.
        assert_eq!(g.num_vertices(), 31);
        assert_eq!(g.num_inputs(), 16);
        assert_eq!(g.num_outputs(), 1);
        assert!(g.is_hong_kung_form());
    }

    #[test]
    fn self_dot_uses_single_pred() {
        let mut b = CdagBuilder::new();
        let x: Vec<VertexId> = (0..4).map(|i| b.add_input(format!("x{i}"))).collect();
        let r = dot(&mut b, &x.clone(), &x, "rr");
        b.tag_output(r);
        let g = b.build().unwrap();
        // Square vertices have in-degree 1.
        assert_eq!(g.in_degree(VertexId(4)), 1);
    }

    #[test]
    fn saxpy_shape() {
        let g = saxpy_cdag(6);
        // 13 inputs (x, y, s) + 6 fused ops.
        assert_eq!(g.num_vertices(), 19);
        assert_eq!(g.num_outputs(), 6);
        // Every output depends on x_i, s, y_i.
        assert_eq!(g.in_degree(VertexId(13)), 3);
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn empty_reduction_panics() {
        let mut b = CdagBuilder::new();
        reduce_tree(&mut b, &[], "s");
    }
}
