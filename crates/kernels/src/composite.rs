//! The Section-3 motivating example:
//!
//! ```text
//! Inputs : p, q, r, s : vectors of size N
//! Output : sum : scalar
//! A   = p × qᵀ
//! B   = r × sᵀ
//! C   = A·B
//! sum = Σᵢ Σⱼ C_ij
//! ```
//!
//! Analyzed step by step, the matmul stage alone needs `N³/(2√(2S))` I/O;
//! yet the *composite* computation can be executed with only `4N + 1` I/O
//! operations given `4N + 4` words of fast memory, because intermediate
//! values flow between stages in fast memory and elements of `A`/`B` can be
//! rematerialized cheaply from the vectors. This is the paper's motivation
//! for a decomposition-friendly game (RBW) rather than per-stage analysis.

use crate::catalog::{AnalyticBound, Kernel, KernelSchedule, ParamSpec, ParamValues};
use crate::vecops::reduce_tree;
use dmc_cdag::topo::complete_order;
use dmc_cdag::{Cdag, CdagBuilder, VertexId};

/// Builds the full composite CDAG for vectors of length `n`.
///
/// Stage vertices:
/// * `A_ij = p_i·q_j` and `B_ij = r_i·s_j` — `2n²` multiplies;
/// * `C_ij = Σ_k A_ik·B_kj` — `n³` multiplies + `n²(n−1)` adds;
/// * `sum = Σ C_ij` — `n² − 1` adds; the single tagged output.
pub fn composite(n: usize) -> Cdag {
    assert!(n >= 1);
    let mut b = CdagBuilder::with_capacity(4 * n + 3 * n * n + n * n * n * 2, 6 * n * n * n);
    let p: Vec<VertexId> = (0..n).map(|i| b.add_input(format!("p{i}"))).collect();
    let q: Vec<VertexId> = (0..n).map(|i| b.add_input(format!("q{i}"))).collect();
    let r: Vec<VertexId> = (0..n).map(|i| b.add_input(format!("r{i}"))).collect();
    let s: Vec<VertexId> = (0..n).map(|i| b.add_input(format!("s{i}"))).collect();

    let mut a = vec![VertexId(0); n * n];
    let mut bb = vec![VertexId(0); n * n];
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = b.add_op(format!("A{i}_{j}"), &[p[i], q[j]]);
            bb[i * n + j] = b.add_op(format!("B{i}_{j}"), &[r[i], s[j]]);
        }
    }
    let mut c = Vec::with_capacity(n * n);
    for i in 0..n {
        for j in 0..n {
            let prods: Vec<VertexId> = (0..n)
                .map(|k| b.add_op(format!("m{i}_{j}_{k}"), &[a[i * n + k], bb[k * n + j]]))
                .collect();
            c.push(reduce_tree(&mut b, &prods, &format!("C{i}_{j}")));
        }
    }
    let sum = reduce_tree(&mut b, &c, "sum");
    b.tag_output(sum);
    b.build_valid("composite is acyclic")
}

/// The paper's achievable I/O for the composite computation: `4N + 1`
/// (load the four input vectors, store the scalar), feasible with
/// `4N + 4` red pebbles by recomputing `A`/`B` elements on the fly.
///
/// Note the composite CDAG as built here disallows recomputation (RBW
/// model); the `4N+1` figure is for the *Hong–Kung* game which allows it.
/// Under RBW the optimum is higher but still far below the sum of
/// per-stage bounds — the comparison both games is exercised by the
/// `sec3_composite` bench.
pub fn composite_hong_kung_achievable_io(n: usize) -> u64 {
    4 * n as u64 + 1
}

/// Sum of the naive per-stage I/O costs (treating each stage as an isolated
/// Hong–Kung CDAG with its own loads/stores), for contrast:
/// two outer products (`2n + n²` each), one matmul lower bound, one global
/// sum (`n² + 1`).
pub fn composite_per_stage_io(n: usize, s_words: u64) -> f64 {
    let n_f = n as f64;
    let outer = 2.0 * (2.0 * n_f + n_f * n_f);
    let mm = crate::matmul::matmul_io_lower_bound(n, s_words);
    let total_sum = n_f * n_f + 1.0;
    outer + mm + total_sum
}

/// Catalog entry for the Section-3 composite: `composite(n)` builds
/// [`composite`]. The `4N + 1` figure is the *Hong–Kung* achievable cost
/// (recomputation allowed), so it is surfaced as an analytic note via
/// [`composite_hong_kung_achievable_io`] rather than as an RBW upper
/// bound — under RBW the optimum is higher.
pub struct CompositeKernel;

impl Kernel for CompositeKernel {
    fn name(&self) -> &'static str {
        "composite"
    }

    fn description(&self) -> &'static str {
        "Section-3 composite A=p·q^T, B=r·s^T, C=AB, sum=ΣΣC (4N+1 motivating example)"
    }

    fn params(&self) -> &'static [ParamSpec] {
        const PARAMS: &[ParamSpec] = &[ParamSpec::uint("n", "input vector length", 1, 256, 4)];
        PARAMS
    }

    fn build(&self, p: &ParamValues) -> Cdag {
        composite(p.usize("n"))
    }

    fn approx_vertices(&self, p: &ParamValues) -> Option<u64> {
        p.uint("n").checked_pow(3).and_then(|v| v.checked_mul(2))
    }

    fn analytic_lower_bound(&self, p: &ParamValues, _s: u64) -> Option<AnalyticBound> {
        // |I| + |O \ I| is exact under RBW up to the recomputation gap;
        // the composite's whole point is that no per-stage sum beats it.
        let n = p.uint("n");
        Some(AnalyticBound::new(
            (4 * n + 1) as f64,
            format!("Section 3: 4N + 1 (four input vectors + the scalar sum) with N = {n}"),
        ))
    }

    fn schedule_source(&self, p: &ParamValues, g: &Cdag, s: u64) -> KernelSchedule {
        let n = p.usize("n");
        // Same blocked C-output sweep as the matmul kernel (shared
        // helpers); A/B stage vertices and the p/q/r/s inputs materialize
        // on first use, and the global-sum tree drains last. Layout (see
        // [`composite`]): 4n inputs, then A/B pairs, then per-C blocks of
        // 2n−1 vertices, then the sum tree ending at the final vertex.
        let b = crate::matmul::block_side(s, n);
        let mut preferred = crate::matmul::blocked_output_sweep(n, b, 4 * n + 2 * n * n, 2 * n - 1);
        // The tagged output — complete_order pulls the sum-tree adds.
        preferred.push(VertexId((g.num_vertices() - 1) as u32));
        KernelSchedule::new(
            complete_order(g, preferred),
            format!("blocked C-output sweep ({b}x{b} tiles), A/B and inputs on first use"),
        )
    }

    fn flops_estimate(&self, p: &ParamValues) -> Option<f64> {
        // 2n^2 outer products + n^3 multiplies + n^2(n-1) + n^2-1 adds
        // = 2n^3 + 2n^2 - 1 (the CDAG's exact compute-vertex count).
        let n = p.uint("n") as f64;
        Some(2.0 * n * n * n + 2.0 * n * n - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_census() {
        let n = 3;
        let g = composite(n);
        let expected = 4 * n            // inputs
            + 2 * n * n                 // A, B
            + n * n * n                 // C products
            + n * n * (n - 1)           // C adds
            + (n * n - 1); // global sum adds
        assert_eq!(g.num_vertices(), expected);
        assert_eq!(g.num_inputs(), 4 * n);
        assert_eq!(g.num_outputs(), 1);
        assert!(g.is_hong_kung_form());
    }

    #[test]
    fn catalog_flops_estimate_is_the_compute_vertex_count() {
        use crate::catalog::Registry;
        for n in [1usize, 2, 4] {
            let spec = Registry::shared()
                .parse(&format!("composite(n={n})"))
                .expect("valid");
            let flops = spec
                .kernel()
                .flops_estimate(spec.values())
                .expect("composite estimates flops");
            assert_eq!(flops, spec.build().num_compute_vertices() as f64, "n = {n}");
        }
    }

    #[test]
    fn composite_beats_per_stage_sum_for_large_n() {
        // 4N+1 is far below the per-stage sum once n² dominates.
        let n = 64;
        let achievable = composite_hong_kung_achievable_io(n) as f64;
        let per_stage = composite_per_stage_io(n, (4 * n + 4) as u64);
        assert!(achievable < per_stage / 10.0);
    }

    #[test]
    fn schedule_hook_is_topological_and_ends_at_the_sum() {
        use crate::catalog::Registry;
        use dmc_cdag::topo::is_valid_topological_order;
        for n in [1usize, 2, 4] {
            for s in [2u64, 8, 32] {
                let spec = Registry::shared()
                    .parse(&format!("composite(n={n})"))
                    .expect("valid spec");
                let g = spec.build();
                let sched = spec.schedule_source(&g, s);
                assert_eq!(sched.order.len(), g.num_vertices());
                assert!(
                    is_valid_topological_order(&g, &sched.order),
                    "n={n} S={s}: '{}' not topological",
                    sched.note
                );
                assert_eq!(
                    sched.order.last().map(|v| v.index()),
                    Some(g.num_vertices() - 1),
                    "the global sum drains last"
                );
            }
        }
    }

    #[test]
    fn single_output_is_global_sum() {
        let g = composite(2);
        let outs: Vec<_> = g.vertices().filter(|&v| g.is_output(v)).collect();
        assert_eq!(outs.len(), 1);
        assert_eq!(g.out_degree(outs[0]), 0);
    }
}
