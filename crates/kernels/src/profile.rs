//! Per-FLOP data-movement profiles of the paper's analyzed algorithms
//! (Section 5, Equations 9–10).
//!
//! An [`AlgorithmProfile`] characterizes an algorithm's certified and
//! achievable data movement *per FLOP*, already normalized per
//! Equations 9–10 (`bound × N_nodes / |V|`); combining a profile with a
//! machine's balance parameters (`dmc_machine::MachineSpec`) yields the
//! bandwidth-bound verdicts of `dmc_core::analysis::analyze`.
//!
//! The closed-form profiles below are the paper's Section-5 instances;
//! they are surfaced through the kernel catalog via
//! [`Kernel::profile`](crate::catalog::Kernel::profile) (e.g.
//! `registry.get("cg")`), which is the preferred access path — the free
//! functions remain for direct formula evaluation at scales far beyond
//! what a CDAG build could reach (`n = 1000` grids).

/// Per-FLOP data-movement characterization of an algorithm, already
/// normalized per Equations 9–10: `bound × N_nodes / |V|`.
#[derive(Debug, Clone)]
pub struct AlgorithmProfile {
    /// Algorithm name for reports.
    pub name: String,
    /// `LB_vert · N_nodes / |V|` — certified vertical words/FLOP.
    pub vertical_lb_per_flop: Option<f64>,
    /// `UB_vert · N_nodes / |V|` — achievable vertical words/FLOP.
    pub vertical_ub_per_flop: Option<f64>,
    /// `LB_horiz · N_nodes / |V|` — certified horizontal words/FLOP.
    pub horizontal_lb_per_flop: Option<f64>,
    /// `UB_horiz · N_nodes / |V|` — achievable horizontal words/FLOP.
    pub horizontal_ub_per_flop: Option<f64>,
}

/// The paper's CG profile (Section 5.2.3) for a 3-D grid of extent `n` on
/// `nodes` nodes: vertical LB ratio `6/20 = 0.3`, horizontal UB ratio
/// `6·nodes^{1/3} / (20·n)`.
pub fn cg_profile(n: usize, nodes: usize) -> AlgorithmProfile {
    AlgorithmProfile {
        name: format!("CG (3-D, n = {n})"),
        vertical_lb_per_flop: Some(6.0 / 20.0),
        vertical_ub_per_flop: None,
        horizontal_lb_per_flop: None,
        horizontal_ub_per_flop: Some(6.0 * (nodes as f64).powf(1.0 / 3.0) / (20.0 * n as f64)),
    }
}

/// The paper's GMRES profile (Section 5.3.3): vertical LB ratio
/// `6/(m + 20)`, horizontal UB ratio `6·nodes^{1/3}/(n·m)`.
pub fn gmres_profile(n: usize, m: usize, nodes: usize) -> AlgorithmProfile {
    AlgorithmProfile {
        name: format!("GMRES (3-D, n = {n}, m = {m})"),
        vertical_lb_per_flop: Some(6.0 / (m as f64 + 20.0)),
        vertical_ub_per_flop: None,
        horizontal_lb_per_flop: None,
        horizontal_ub_per_flop: Some(6.0 * (nodes as f64).powf(1.0 / 3.0) / (n as f64 * m as f64)),
    }
}

/// The paper's Jacobi profile (Section 5.4.3) for a d-dimensional stencil:
/// vertical LB ratio `S/U(C, 2S) = 1/(4·(2S)^{1/d})` (tight), horizontal
/// UB ratio from ghost cells `4·B·T / |V|`-style surface terms — per FLOP
/// this is `~2d/B` with `B = n/nodes^{1/d}`; we use the per-FLOP form
/// `2d / (flops_per_point · B)` with `flops_per_point` from the stencil.
pub fn jacobi_profile(n: usize, d: usize, nodes: usize, s_words: u64) -> AlgorithmProfile {
    let b = n as f64 / (nodes as f64).powf(1.0 / d as f64);
    let flops_per_point = (3.0f64).powi(d as i32); // Moore-stencil weights
    AlgorithmProfile {
        name: format!("Jacobi ({d}-D, n = {n})"),
        vertical_lb_per_flop: Some(1.0 / (4.0 * (2.0 * s_words as f64).powf(1.0 / d as f64))),
        vertical_ub_per_flop: Some(2.0 / (2.0 * s_words as f64).powf(1.0 / d as f64)),
        horizontal_lb_per_flop: None,
        horizontal_ub_per_flop: Some(2.0 * d as f64 / (flops_per_point * b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cg_headline_ratio() {
        // Section 5.2.3: the vertical LB ratio is exactly 6/20 = 0.3.
        assert_eq!(cg_profile(1000, 2048).vertical_lb_per_flop, Some(0.3));
    }

    #[test]
    fn gmres_ratio_shrinks_with_m() {
        let small = gmres_profile(1000, 10, 2048).vertical_lb_per_flop.unwrap();
        let large = gmres_profile(1000, 200, 2048).vertical_lb_per_flop.unwrap();
        assert!(small > large);
        assert!((small - 0.2).abs() < 1e-12);
    }

    #[test]
    fn jacobi_lb_ratio_rises_with_dimension() {
        let lb_d1 = jacobi_profile(1000, 1, 2048, 4_000_000)
            .vertical_lb_per_flop
            .unwrap();
        let lb_d6 = jacobi_profile(1000, 6, 2048, 4_000_000)
            .vertical_lb_per_flop
            .unwrap();
        assert!(lb_d6 > lb_d1);
    }
}
