//! Small synthetic CDAG shapes with hand-computable optimal I/O, used to
//! validate the pebble-game engines and lower-bound machinery.

use crate::catalog::{AnalyticBound, Kernel, ParamSpec, ParamValues};
use dmc_cdag::{Cdag, CdagBuilder, VertexId};

/// A simple chain `x_0 → x_1 → … → x_{k-1}` with `x_0` an input and the
/// last vertex an output. Optimal Hong–Kung I/O with `S ≥ 2` pebbles is
/// exactly 2 (load the input, store the output).
pub fn chain(k: usize) -> Cdag {
    assert!(k >= 1);
    let mut b = CdagBuilder::with_capacity(k, k.saturating_sub(1));
    let mut prev = b.add_input("x0");
    for i in 1..k {
        prev = b.add_op(format!("x{i}"), &[prev]);
    }
    b.tag_output(prev);
    b.build_valid("chain is acyclic")
}

/// The 4-vertex diamond `a → {b, c} → d`.
pub fn diamond() -> Cdag {
    let mut b = CdagBuilder::new();
    let a = b.add_input("a");
    let x = b.add_op("b", &[a]);
    let y = b.add_op("c", &[a]);
    let d = b.add_op("d", &[x, y]);
    b.tag_output(d);
    b.build_valid("diamond is acyclic")
}

/// A complete binary reduction tree over `leaves` inputs (`leaves` must be
/// a power of two); the root is the only output. `2·leaves − 1` vertices.
pub fn binary_reduction(leaves: usize) -> Cdag {
    assert!(leaves.is_power_of_two() && leaves >= 1);
    let mut b = CdagBuilder::with_capacity(2 * leaves - 1, 2 * (leaves - 1));
    let mut frontier: Vec<VertexId> = (0..leaves).map(|i| b.add_input(format!("x{i}"))).collect();
    let mut level = 0;
    while frontier.len() > 1 {
        level += 1;
        frontier = frontier
            .chunks(2)
            .enumerate()
            .map(|(i, pair)| b.add_op(format!("s{level}_{i}"), pair))
            .collect();
    }
    b.tag_output(frontier[0]);
    b.build_valid("reduction tree is acyclic")
}

/// `k` completely independent chains of length `len` — the canonical case
/// where CDAG decomposition (Theorem 2) is exact: total I/O is the sum of
/// per-chain I/O.
pub fn independent_chains(k: usize, len: usize) -> Cdag {
    let mut b = CdagBuilder::with_capacity(k * len, k * (len - 1));
    for c in 0..k {
        let mut prev = b.add_input(format!("c{c}_x0"));
        for i in 1..len {
            prev = b.add_op(format!("c{c}_x{i}"), &[prev]);
        }
        b.tag_output(prev);
    }
    b.build_valid("chains are acyclic")
}

/// A 2-D dependence ladder of width `w` and height `h`: vertex `(i, j)`
/// depends on `(i-1, j)` and `(i, j-1)`. Row 0 are inputs, the final
/// corner is the output. This is the classic "diamond DAG".
pub fn ladder(w: usize, h: usize) -> Cdag {
    assert!(w >= 1 && h >= 1);
    let mut b = CdagBuilder::with_capacity(w * h, 2 * w * h);
    let mut ids = vec![VertexId(0); w * h];
    for j in 0..h {
        for i in 0..w {
            let mut preds = Vec::with_capacity(2);
            if i > 0 {
                preds.push(ids[j * w + i - 1]);
            }
            if j > 0 {
                preds.push(ids[(j - 1) * w + i]);
            }
            let v = if preds.is_empty() {
                b.add_input("g0_0")
            } else {
                b.add_op(format!("g{i}_{j}"), &preds)
            };
            ids[j * w + i] = v;
        }
    }
    b.tag_output(ids[w * h - 1]);
    b.build_valid("ladder is acyclic")
}

/// The "shared value" two-stage graph used to demonstrate why sub-DAG
/// bounds cannot simply be added under the Hong–Kung model: stage 1
/// computes `m` values from one input; stage 2 consumes all of them.
pub fn two_stage(m: usize) -> Cdag {
    let mut b = CdagBuilder::new();
    let x = b.add_input("x");
    let stage1: Vec<VertexId> = (0..m).map(|i| b.add_op(format!("f{i}"), &[x])).collect();
    let out = b.add_op("g", &stage1);
    b.tag_output(out);
    b.build_valid("two-stage is acyclic")
}

/// Catalog entry for [`chain`]: `chain(k)`.
pub struct ChainKernel;

impl Kernel for ChainKernel {
    fn name(&self) -> &'static str {
        "chain"
    }

    fn description(&self) -> &'static str {
        "single dependence chain of k vertices (optimal I/O = 2)"
    }

    fn params(&self) -> &'static [ParamSpec] {
        const PARAMS: &[ParamSpec] = &[ParamSpec::uint("k", "chain length", 1, 1 << 20, 8)];
        PARAMS
    }

    fn build(&self, p: &ParamValues) -> Cdag {
        chain(p.usize("k"))
    }

    fn approx_vertices(&self, p: &ParamValues) -> Option<u64> {
        Some(p.uint("k"))
    }

    fn analytic_upper_bound(&self, _p: &ParamValues, s: u64) -> Option<AnalyticBound> {
        (s >= 2).then(|| AnalyticBound::new(2.0, "load the input, store the output (S >= 2)"))
    }
}

/// Catalog entry for [`diamond`]: `diamond` (no parameters).
pub struct DiamondKernel;

impl Kernel for DiamondKernel {
    fn name(&self) -> &'static str {
        "diamond"
    }

    fn description(&self) -> &'static str {
        "the 4-vertex diamond a -> {b,c} -> d"
    }

    fn params(&self) -> &'static [ParamSpec] {
        &[]
    }

    fn build(&self, _p: &ParamValues) -> Cdag {
        diamond()
    }

    fn approx_vertices(&self, _p: &ParamValues) -> Option<u64> {
        Some(4)
    }

    fn analytic_upper_bound(&self, _p: &ParamValues, s: u64) -> Option<AnalyticBound> {
        (s >= 3).then(|| AnalyticBound::new(2.0, "load a, store d (S >= 3)"))
    }
}

/// Catalog entry for [`binary_reduction`]: `reduction(leaves)`.
pub struct ReductionKernel;

impl Kernel for ReductionKernel {
    fn name(&self) -> &'static str {
        "reduction"
    }

    fn description(&self) -> &'static str {
        "complete binary reduction tree over `leaves` inputs"
    }

    fn params(&self) -> &'static [ParamSpec] {
        const PARAMS: &[ParamSpec] = &[ParamSpec::uint(
            "leaves",
            "input count (power of two)",
            1,
            1 << 20,
            16,
        )];
        PARAMS
    }

    fn validate(&self, p: &ParamValues) -> Result<(), String> {
        let leaves = p.uint("leaves");
        if leaves.is_power_of_two() {
            Ok(())
        } else {
            Err(format!("leaves = {leaves} must be a power of two"))
        }
    }

    fn build(&self, p: &ParamValues) -> Cdag {
        binary_reduction(p.usize("leaves"))
    }

    fn approx_vertices(&self, p: &ParamValues) -> Option<u64> {
        // A complete binary tree over `leaves` inputs: 2·leaves − 1.
        p.uint("leaves").checked_mul(2)
    }

    fn analytic_upper_bound(&self, p: &ParamValues, s: u64) -> Option<AnalyticBound> {
        // Depth-first left-to-right holds at most one partial per level.
        let leaves = p.uint("leaves");
        let depth = leaves.trailing_zeros() as u64;
        (s >= depth + 2).then(|| {
            AnalyticBound::new(
                (leaves + 1) as f64,
                format!("depth-first sweep: {leaves} loads + 1 store (needs S >= depth + 2)"),
            )
        })
    }
}

/// Catalog entry for [`independent_chains`]: `chains(k,len)`.
pub struct IndependentChainsKernel;

impl Kernel for IndependentChainsKernel {
    fn name(&self) -> &'static str {
        "chains"
    }

    fn description(&self) -> &'static str {
        "k independent chains of length len (Theorem-2 decomposition is exact)"
    }

    fn params(&self) -> &'static [ParamSpec] {
        const PARAMS: &[ParamSpec] = &[
            ParamSpec::uint("k", "number of chains", 1, 4096, 3),
            ParamSpec::uint("len", "length of each chain", 1, 4096, 4),
        ];
        PARAMS
    }

    fn build(&self, p: &ParamValues) -> Cdag {
        independent_chains(p.usize("k"), p.usize("len"))
    }

    fn approx_vertices(&self, p: &ParamValues) -> Option<u64> {
        p.uint("k").checked_mul(p.uint("len"))
    }

    fn analytic_upper_bound(&self, p: &ParamValues, s: u64) -> Option<AnalyticBound> {
        let k = p.uint("k");
        (s >= 2).then(|| AnalyticBound::new((2 * k) as f64, format!("2 I/Os per chain, k = {k}")))
    }
}

/// Catalog entry for [`ladder`]: `ladder(w,h)`.
pub struct LadderKernel;

impl Kernel for LadderKernel {
    fn name(&self) -> &'static str {
        "ladder"
    }

    fn description(&self) -> &'static str {
        "w x h dependence ladder (the classic diamond DAG)"
    }

    fn params(&self) -> &'static [ParamSpec] {
        const PARAMS: &[ParamSpec] = &[
            ParamSpec::uint("w", "ladder width", 1, 4096, 6),
            ParamSpec::uint("h", "ladder height", 1, 4096, 6),
        ];
        PARAMS
    }

    fn build(&self, p: &ParamValues) -> Cdag {
        ladder(p.usize("w"), p.usize("h"))
    }

    fn approx_vertices(&self, p: &ParamValues) -> Option<u64> {
        p.uint("w").checked_mul(p.uint("h"))
    }

    fn analytic_upper_bound(&self, p: &ParamValues, s: u64) -> Option<AnalyticBound> {
        // Row-major sweep keeps the previous row's live suffix resident.
        let w = p.uint("w");
        (s >= w + 2).then(|| {
            AnalyticBound::new(
                2.0,
                format!("row sweep with one row resident (needs S >= w + 2, w = {w})"),
            )
        })
    }
}

/// Catalog entry for [`two_stage`]: `two_stage(m)`.
pub struct TwoStageKernel;

impl Kernel for TwoStageKernel {
    fn name(&self) -> &'static str {
        "two_stage"
    }

    fn description(&self) -> &'static str {
        "shared-value two-stage graph (why Hong-Kung sub-DAG bounds cannot be added)"
    }

    fn params(&self) -> &'static [ParamSpec] {
        const PARAMS: &[ParamSpec] = &[ParamSpec::uint("m", "stage-1 fan-out", 1, 1 << 20, 5)];
        PARAMS
    }

    fn build(&self, p: &ParamValues) -> Cdag {
        two_stage(p.usize("m"))
    }

    fn approx_vertices(&self, p: &ParamValues) -> Option<u64> {
        // x, m stage-1 values, g.
        p.uint("m").checked_add(2)
    }

    fn analytic_upper_bound(&self, p: &ParamValues, s: u64) -> Option<AnalyticBound> {
        let m = p.uint("m");
        (s > m).then(|| {
            AnalyticBound::new(
                2.0,
                format!("load x, hold all {m} stage-1 values, store g (needs S >= m + 1)"),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_shape() {
        let g = chain(10);
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 9);
        assert_eq!(g.num_inputs(), 1);
        assert_eq!(g.num_outputs(), 1);
        assert!(g.is_hong_kung_form());
    }

    #[test]
    fn binary_reduction_shape() {
        let g = binary_reduction(8);
        assert_eq!(g.num_vertices(), 15);
        assert_eq!(g.num_edges(), 14);
        assert_eq!(g.num_inputs(), 8);
        assert_eq!(g.num_outputs(), 1);
        assert_eq!(dmc_cdag::topo::critical_path_len(&g), 4);
    }

    #[test]
    fn independent_chains_shape() {
        let g = independent_chains(3, 4);
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_inputs(), 3);
        assert_eq!(g.num_outputs(), 3);
    }

    #[test]
    fn ladder_shape() {
        let g = ladder(3, 3);
        assert_eq!(g.num_vertices(), 9);
        // Edges: horizontal 2 per row * 3 rows + vertical 3 per col * 2.
        assert_eq!(g.num_edges(), 12);
        assert_eq!(dmc_cdag::topo::critical_path_len(&g), 5);
    }

    #[test]
    fn two_stage_shape() {
        let g = two_stage(5);
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_edges(), 10);
        let out = VertexId(6);
        assert_eq!(g.in_degree(out), 5);
    }
}
