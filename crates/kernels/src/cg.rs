//! Conjugate-Gradient iteration CDAGs (paper Figure 3, Theorem 8).
//!
//! Each outer iteration performs, on a d-dimensional grid of `n^d` points
//! (matrix-free stencil operator `A`):
//!
//! 1. `v ← A·p`                — SpMV, one vertex per grid point;
//! 2. `a ← ⟨r,r⟩ / ⟨p,v⟩`      — two dot products and a divide (the
//!    vertex `υ_x` of Theorem 8, whose min-wavefront is `2n^d`);
//! 3. `x ← x + a·p`            — saxpy;
//! 4. `r' ← r − a·v`           — saxpy;
//! 5. `g ← ⟨r',r'⟩ / ⟨r,r⟩`    — dot product and divide (the vertex `υ_y`,
//!    min-wavefront `n^d`);
//! 6. `p ← r' + g·p`           — saxpy.

use crate::catalog::{AnalyticBound, Kernel, ParamSpec, ParamValues, ProfileContext};
use crate::grid::{Grid, Stencil};
use crate::profile::{cg_profile, AlgorithmProfile};
use crate::vecops::{dot, saxpy};
use dmc_cdag::{Cdag, CdagBuilder, VertexId};

/// Handles to the analytically-interesting vertices of one CG iteration.
#[derive(Debug, Clone)]
pub struct CgIterationMarks {
    /// The scalar `a = ⟨r,r⟩/⟨p,v⟩` — Theorem 8's `υ_x`.
    pub upsilon_x: VertexId,
    /// The scalar `g = ⟨r',r'⟩/⟨r,r⟩` — Theorem 8's `υ_y`.
    pub upsilon_y: VertexId,
}

/// A CG CDAG plus the per-iteration marked vertices.
#[derive(Debug, Clone)]
pub struct CgCdag {
    /// The full CDAG over `t` iterations.
    pub cdag: Cdag,
    /// Marked `υ_x`/`υ_y` scalars, one pair per iteration.
    pub marks: Vec<CgIterationMarks>,
    /// Grid geometry.
    pub grid: Grid,
    /// Number of outer iterations `T`.
    pub iterations: usize,
}

/// Builds the CDAG of `t` CG iterations on an `n^d` grid with the given
/// stencil (Von Neumann = the 2d+1-point operator of a discretized
/// Laplacian).
///
/// Inputs: initial `x`, `r`, `p` vectors (3·n^d vertices). Outputs: the
/// final `x` vector.
pub fn cg_cdag(n: usize, d: usize, t: usize, stencil: Stencil) -> CgCdag {
    assert!(t >= 1, "at least one iteration");
    let grid = Grid::new(n, d);
    let npts = grid.len();
    let mut b = CdagBuilder::with_capacity((3 + 12 * t) * npts, (3 + 24 * t) * npts);

    let mut x: Vec<VertexId> = (0..npts).map(|i| b.add_input(format!("x0_{i}"))).collect();
    let mut r: Vec<VertexId> = (0..npts).map(|i| b.add_input(format!("r0_{i}"))).collect();
    let mut p: Vec<VertexId> = (0..npts).map(|i| b.add_input(format!("p0_{i}"))).collect();

    let mut marks = Vec::with_capacity(t);
    // ⟨r,r⟩ of the *current* residual; recomputed fresh at the first
    // iteration, reused from step 5 afterwards.
    let mut rr = dot(&mut b, &r, &r, "rr0");

    for it in 1..=t {
        // 1. v = A p (stencil SpMV).
        let v: Vec<VertexId> = (0..npts)
            .map(|i| {
                let mut preds = vec![p[i]];
                preds.extend(grid.neighbors(i, stencil).into_iter().map(|j| p[j]));
                b.add_op(format!("v{it}_{i}"), &preds)
            })
            .collect();
        // 2. a = ⟨r,r⟩ / ⟨p,v⟩.
        let pv = dot(&mut b, &p, &v, &format!("pv{it}"));
        let a = b.add_op(format!("a{it}"), &[rr, pv]);
        // 3. x = x + a p.
        x = saxpy(&mut b, &x, a, &p, &format!("x{it}_"));
        // 4. r' = r − a v.
        let rnew = saxpy(&mut b, &r, a, &v, &format!("r{it}_"));
        // 5. g = ⟨r',r'⟩ / ⟨r,r⟩.
        let rr_new = dot(&mut b, &rnew, &rnew, &format!("rr{it}"));
        let g = b.add_op(format!("g{it}"), &[rr_new, rr]);
        // 6. p = r' + g p.
        p = saxpy(&mut b, &rnew, g, &p, &format!("p{it}_"));
        r = rnew;
        rr = rr_new;
        marks.push(CgIterationMarks {
            upsilon_x: a,
            upsilon_y: g,
        });
    }
    for &v in &x {
        b.tag_output(v);
    }
    let cdag = b.build_valid("CG CDAG is acyclic");
    CgCdag {
        cdag,
        marks,
        grid,
        iterations: t,
    }
}

/// The paper's operation count for CG on a 3-D grid: `|V| ≈ 20·n³·T`
/// FLOPs (Section 5.2.3). This helper returns the analogous estimate for
/// general `d` using the actual per-iteration vertex count of our CDAG.
pub fn cg_flops_estimate(n: usize, d: usize, t: usize) -> f64 {
    20.0 * (n as f64).powi(d as i32) * t as f64
}

/// The min-cut I/O lower bound of Theorem 8: `Q ≥ 6·n^d·T / P` for
/// `n ≫ S` (per-processor form; pass `p = 1` for the sequential bound).
pub fn cg_io_lower_bound(n: usize, d: usize, t: usize, p: usize) -> f64 {
    6.0 * (n as f64).powi(d as i32) * t as f64 / p as f64
}

/// The exact finite-`S` form before the `n ≫ S` limit:
/// `Q ≥ T·2·(3n^d − 2S)` (proof of Theorem 8).
pub fn cg_io_lower_bound_finite_s(n: usize, d: usize, t: usize, s: u64) -> f64 {
    let nd = (n as f64).powi(d as i32);
    (t as f64) * 2.0 * (3.0 * nd - 2.0 * s as f64)
}

/// Catalog entry for the CG family: `cg(n,d,t,stencil)` builds
/// [`cg_cdag`] (the CDAG only — iteration marks stay on the low-level
/// API) and surfaces the Theorem-8 bound and Section-5.2 profile.
pub struct CgKernel;

impl Kernel for CgKernel {
    fn name(&self) -> &'static str {
        "cg"
    }

    fn description(&self) -> &'static str {
        "Conjugate-Gradient iterations on an n^d grid (Theorem 8, Section 5.2)"
    }

    fn params(&self) -> &'static [ParamSpec] {
        const PARAMS: &[ParamSpec] = &[
            ParamSpec::uint("n", "grid extent per dimension", 1, 4096, 4),
            ParamSpec::uint("d", "grid dimensions", 1, 4, 1),
            ParamSpec::uint("t", "outer iterations", 1, 1024, 1),
            ParamSpec::choice("stencil", "SpMV operator shape", Stencil::CHOICES, "star"),
        ];
        PARAMS
    }

    fn approx_vertices(&self, p: &ParamValues) -> Option<u64> {
        let npts = p.uint("n").checked_pow(p.uint("d") as u32);
        let per_iter = 12 * p.uint("t") + 3;
        npts.and_then(|v| v.checked_mul(per_iter))
    }

    fn build(&self, p: &ParamValues) -> Cdag {
        // dmc-lint: allow(s1) -- the choice value was validated against the stencil enum by the catalog parser before the factory runs
        let stencil = Stencil::from_choice(p.choice("stencil")).expect("validated choice");
        cg_cdag(p.usize("n"), p.usize("d"), p.usize("t"), stencil).cdag
    }

    fn analytic_lower_bound(&self, p: &ParamValues, s: u64) -> Option<AnalyticBound> {
        let (n, d, t) = (p.usize("n"), p.usize("d"), p.usize("t"));
        Some(AnalyticBound::new(
            cg_io_lower_bound_finite_s(n, d, t, s).max(0.0),
            format!("Theorem 8 (finite S): 2T·(3n^d − 2S) with n = {n}, d = {d}, T = {t}, S = {s}"),
        ))
    }

    fn flops_estimate(&self, p: &ParamValues) -> Option<f64> {
        Some(cg_flops_estimate(p.usize("n"), p.usize("d"), p.usize("t")))
    }

    fn profile(&self, p: &ParamValues, ctx: &ProfileContext) -> Option<AlgorithmProfile> {
        Some(cg_profile(p.usize("n"), ctx.nodes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmc_cdag::cut::min_wavefront;

    #[test]
    fn shape_one_iteration_1d() {
        let cg = cg_cdag(4, 1, 1, Stencil::VonNeumann);
        let g = &cg.cdag;
        assert_eq!(g.num_inputs(), 12); // x, r, p
        assert_eq!(g.num_outputs(), 4); // final x
        assert_eq!(cg.marks.len(), 1);
        assert!(g.num_vertices() > 12);
    }

    #[test]
    fn upsilon_x_wavefront_at_least_papers_2nd() {
        // Theorem 8 argues `|W^min(υ_x)| = 2n^d` from the disjoint paths of
        // the p and v vectors into Desc(υ_x). Our CDAG additionally has the
        // direct `r_i → r'_i` edges and the `⟨r,r⟩ → g` edge, so the exact
        // automated min-cut is 3n^d + 2 (p, v, r vectors + rr + υ_x) — the
        // paper's 2n^d is a sound under-approximation.
        for (n, d) in [(4usize, 1usize), (3, 2)] {
            let cg = cg_cdag(n, d, 1, Stencil::VonNeumann);
            let nd = n.pow(d as u32);
            let w = min_wavefront(&cg.cdag, cg.marks[0].upsilon_x);
            assert!(w.size >= 2 * nd, "n={n} d={d}: {} < {}", w.size, 2 * nd);
            assert_eq!(w.size, 3 * nd + 2, "n={n} d={d}");
        }
    }

    #[test]
    fn upsilon_y_wavefront_at_least_papers_nd() {
        // Theorem 8: υ_y has min-wavefront ≥ n^d (the r' vector feeding the
        // p-update); exactly 2n^d + 1 in our CDAG (r' and p vectors + υ_y).
        let (n, d) = (4usize, 1usize);
        let cg = cg_cdag(n, d, 1, Stencil::VonNeumann);
        let w = min_wavefront(&cg.cdag, cg.marks[0].upsilon_y);
        assert!(w.size >= n);
        assert_eq!(w.size, 2 * n + 1);
    }

    #[test]
    fn multi_iteration_links_state() {
        let cg = cg_cdag(3, 1, 3, Stencil::VonNeumann);
        assert_eq!(cg.marks.len(), 3);
        // Later iterations' scalars depend on earlier ones.
        let g = &cg.cdag;
        assert!(dmc_cdag::reach::reaches(
            g,
            cg.marks[0].upsilon_x,
            cg.marks[2].upsilon_x
        ));
    }

    #[test]
    fn flop_estimate_matches_vertex_count_within_factor_two() {
        let cg = cg_cdag(8, 1, 4, Stencil::VonNeumann);
        let est = cg_flops_estimate(8, 1, 4);
        let actual = cg.cdag.num_compute_vertices() as f64;
        assert!(
            actual > est / 3.0 && actual < est * 3.0,
            "est {est} vs actual {actual}"
        );
    }

    #[test]
    fn lower_bound_formulas() {
        // Asymptotic: 6 n^d T / P.
        assert_eq!(cg_io_lower_bound(1000, 3, 10, 1), 6.0 * 1e9 * 10.0);
        assert_eq!(cg_io_lower_bound(10, 2, 3, 1), 1800.0);
        assert_eq!(cg_io_lower_bound(10, 2, 3, 4), 450.0);
        // Finite-S: T·2(3n^d − 2S).
        assert_eq!(cg_io_lower_bound_finite_s(10, 2, 3, 50), 3.0 * 2.0 * 200.0);
    }
}
