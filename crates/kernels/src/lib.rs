//! # dmc-kernels — CDAG generators
//!
//! Builders for the computational DAGs analyzed in the paper and used by
//! the test/bench suites:
//!
//! * [`chains`] — chains, diamonds, trees and other synthetic shapes used
//!   to validate the pebble-game engines against hand-computable optima;
//! * [`grid`] — d-dimensional grid indexing shared by the stencil kernels;
//! * [`outer`] — vector outer products (`p·qᵀ`, Section 3's first stages);
//! * [`matmul`] — dense `N×N` matrix multiplication (the Hong–Kung
//!   `N³/(2√(2S))` example);
//! * [`composite`] — the Section-3 motivating example
//!   (`A = p·qᵀ, B = r·sᵀ, C = AB, sum = ΣΣC`), whose composite I/O is
//!   `4N + 1` with `4N + 4` red pebbles;
//! * [`vecops`] — dot products, saxpy and reduction trees;
//! * [`cg`] — Conjugate Gradient iterations on d-dimensional grids
//!   (Theorem 8);
//! * [`gmres`] — GMRES with modified Gram–Schmidt (Theorem 9);
//! * [`jacobi`] — d-dimensional Jacobi stencils (Theorem 10);
//! * [`fft`] — FFT butterfly networks;
//! * [`pyramid`] — r-pyramid graphs (Ranjan–Savage–Zubair family);
//! * [`random`] — random layered DAGs for property-based testing.
//!
//! Every family is also registered in the [`catalog`] — a [`catalog::Kernel`]
//! trait with declared parameters and a [`catalog::Registry`] that parses
//! spec strings like `jacobi(n=32,d=2,t=8,stencil=star)` — and the paper's
//! Section-5 per-FLOP profiles live in [`profile`]. Catalog entries can
//! additionally emit an executable schedule via
//! [`catalog::Kernel::schedule_source`] (skewed tilings for Jacobi,
//! blocked sweeps for matmul/composite, staged sub-transforms for the
//! FFT); the `dmc-sim` simulator and `dmc-core`'s empirical-validation
//! pipeline execute these orders.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod catalog;
pub mod cg;
pub mod chains;
pub mod composite;
pub mod fft;
pub mod gmres;
pub mod grid;
pub mod jacobi;
pub mod matmul;
pub mod outer;
pub mod profile;
pub mod pyramid;
pub mod random;
pub mod scan;
pub mod vecops;
