//! Dense matrix-multiplication CDAGs.
//!
//! `C = A·B` for `N×N` matrices is the original Hong–Kung example: its
//! sequential I/O lower bound is `Θ(N³/√S)` — specifically
//! `N³/(2√(2S))` under the 2S-partition argument (Section 3 of the paper
//! cites `N³/2√(2S)`; see also Irony–Toledo–Tiskin).

use crate::catalog::{AnalyticBound, Kernel, KernelSchedule, ParamSpec, ParamValues};
use crate::vecops::reduce_tree;
use dmc_cdag::topo::complete_order;
use dmc_cdag::{Cdag, CdagBuilder, VertexId};

/// Builds the CDAG of `C = A·B` for `n×n` matrices with per-element
/// multiply vertices and balanced-tree accumulations:
/// `2n²` inputs, `n³` multiplies, `n²(n−1)` adds, outputs on the `n²`
/// accumulation roots.
pub fn matmul(n: usize) -> Cdag {
    assert!(n >= 1);
    let mut b = CdagBuilder::with_capacity(2 * n * n + n * n * n * 2, 4 * n * n * n);
    let a: Vec<VertexId> = (0..n * n)
        .map(|k| b.add_input(format!("A{}_{}", k / n, k % n)))
        .collect();
    let bb: Vec<VertexId> = (0..n * n)
        .map(|k| b.add_input(format!("B{}_{}", k / n, k % n)))
        .collect();
    for i in 0..n {
        for j in 0..n {
            let prods: Vec<VertexId> = (0..n)
                .map(|k| b.add_op(format!("m{i}_{j}_{k}"), &[a[i * n + k], bb[k * n + j]]))
                .collect();
            let c = reduce_tree(&mut b, &prods, &format!("C{i}_{j}"));
            b.tag_output(c);
        }
    }
    b.build_valid("matmul is acyclic")
}

/// Builds the matmul CDAG with *sequential* (chain) accumulation instead of
/// balanced trees — the textbook triple loop. Same asymptotic I/O, deeper
/// critical path; used by the ablation benches.
pub fn matmul_chain_accumulate(n: usize) -> Cdag {
    assert!(n >= 1);
    let mut b = CdagBuilder::with_capacity(2 * n * n + 2 * n * n * n, 4 * n * n * n);
    let a: Vec<VertexId> = (0..n * n)
        .map(|k| b.add_input(format!("A{}_{}", k / n, k % n)))
        .collect();
    let bb: Vec<VertexId> = (0..n * n)
        .map(|k| b.add_input(format!("B{}_{}", k / n, k % n)))
        .collect();
    for i in 0..n {
        for j in 0..n {
            let mut acc: Option<VertexId> = None;
            for k in 0..n {
                let m = b.add_op(format!("m{i}_{j}_{k}"), &[a[i * n + k], bb[k * n + j]]);
                acc = Some(match acc {
                    None => m,
                    Some(prev) => b.add_op(format!("s{i}_{j}_{k}"), &[prev, m]),
                });
            }
            // dmc-lint: allow(s1) -- the inner reduction loop runs n >= 1 times (asserted at entry), so acc is Some
            b.tag_output(acc.expect("n >= 1"));
        }
    }
    b.build_valid("matmul is acyclic")
}

/// The asymptotic sequential I/O lower bound for `n×n` matmul with `s` fast
/// words: `n³ / (2·√(2s))` (paper Section 3, after Hong–Kung / Irony et
/// al.).
pub fn matmul_io_lower_bound(n: usize, s: u64) -> f64 {
    let n = n as f64;
    n * n * n / (2.0 * (2.0 * s as f64).sqrt())
}

/// Output-tile side for a blocked sweep at capacity `s`: a `b×b` tile of
/// `C` touches `b` rows of `A` and `b` columns of `B`, so `b ≈ √(S/2)`
/// amortizes the tile's A/B traffic. Shared by the matmul and composite
/// schedule hooks.
pub(crate) fn block_side(s: u64, n: usize) -> usize {
    (((s / 2) as f64).sqrt().floor() as usize).clamp(1, n)
}

/// Blocked sweep over `n×n` output elements: emits, tile by tile (`b×b`
/// output elements, row-major within a tile), the `block`-vertex id range
/// of each element, laid out consecutively from `base + (i·n + j)·block`.
/// The traversal behind the matmul and composite schedule hooks — feed it
/// to [`dmc_cdag::topo::complete_order`] to pull inputs (and any other
/// ancestors) in on first use.
pub(crate) fn blocked_output_sweep(n: usize, b: usize, base: usize, block: usize) -> Vec<VertexId> {
    let mut preferred = Vec::with_capacity(n * n * block);
    for bi in (0..n).step_by(b) {
        for bj in (0..n).step_by(b) {
            for i in bi..(bi + b).min(n) {
                for j in bj..(bj + b).min(n) {
                    let start = base + (i * n + j) * block;
                    preferred.extend((start..start + block).map(|k| VertexId(k as u32)));
                }
            }
        }
    }
    preferred
}

/// Catalog entry for dense matmul: `matmul(n,accumulate)` builds
/// [`matmul`] (balanced-tree accumulation) or
/// [`matmul_chain_accumulate`], and surfaces the `N³/(2√(2S))` bound.
pub struct MatmulKernel;

impl Kernel for MatmulKernel {
    fn name(&self) -> &'static str {
        "matmul"
    }

    fn description(&self) -> &'static str {
        "dense n x n matrix multiplication (Hong-Kung N^3/(2*sqrt(2S)) example)"
    }

    fn params(&self) -> &'static [ParamSpec] {
        const PARAMS: &[ParamSpec] = &[
            ParamSpec::uint("n", "matrix extent", 1, 256, 6),
            ParamSpec::choice(
                "accumulate",
                "inner-product accumulation shape",
                &["tree", "chain"],
                "tree",
            ),
        ];
        PARAMS
    }

    fn approx_vertices(&self, p: &ParamValues) -> Option<u64> {
        p.uint("n").checked_pow(3).and_then(|v| v.checked_mul(2))
    }

    fn build(&self, p: &ParamValues) -> Cdag {
        match p.choice("accumulate") {
            "chain" => matmul_chain_accumulate(p.usize("n")),
            _ => matmul(p.usize("n")),
        }
    }

    fn analytic_lower_bound(&self, p: &ParamValues, s: u64) -> Option<AnalyticBound> {
        let n = p.usize("n");
        Some(AnalyticBound::new(
            matmul_io_lower_bound(n, s),
            format!("Hong-Kung/Irony et al.: n^3/(2·sqrt(2S)) with n = {n}, S = {s}"),
        ))
    }

    fn schedule_source(&self, p: &ParamValues, g: &Cdag, s: u64) -> KernelSchedule {
        let n = p.usize("n");
        let b = block_side(s, n);
        // Both accumulation shapes lay each C element's subgraph out as
        // 2n−1 consecutive vertices after the 2n² inputs (n products,
        // then n−1 accumulations) — see [`matmul`] /
        // [`matmul_chain_accumulate`].
        let preferred = blocked_output_sweep(n, b, 2 * n * n, 2 * n - 1);
        KernelSchedule::new(
            complete_order(g, preferred),
            format!("blocked C-output sweep ({b}x{b} tiles), inputs on first use"),
        )
    }

    fn flops_estimate(&self, p: &ParamValues) -> Option<f64> {
        // n^3 multiplies + n^2(n-1) adds.
        let n = p.uint("n") as f64;
        Some(2.0 * n * n * n - n * n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_shape() {
        let n = 3;
        let g = matmul(n);
        // 2n² inputs + n³ mults + n²(n−1) adds.
        assert_eq!(g.num_vertices(), 2 * n * n + n * n * n + n * n * (n - 1));
        assert_eq!(g.num_inputs(), 2 * n * n);
        assert_eq!(g.num_outputs(), n * n);
        assert!(g.is_hong_kung_form());
    }

    #[test]
    fn chain_shape_matches_tree_vertex_count() {
        let n = 4;
        let t = matmul(n);
        let c = matmul_chain_accumulate(n);
        assert_eq!(t.num_vertices(), c.num_vertices());
        assert_eq!(t.num_inputs(), c.num_inputs());
        assert_eq!(t.num_outputs(), c.num_outputs());
        // Chain accumulation has a longer critical path.
        assert!(dmc_cdag::topo::critical_path_len(&c) >= dmc_cdag::topo::critical_path_len(&t));
    }

    #[test]
    fn every_input_feeds_n_products() {
        let n = 3;
        let g = matmul(n);
        for v in g.vertices().filter(|&v| g.is_input(v)) {
            assert_eq!(g.out_degree(v), n, "each A/B element used n times");
        }
    }

    #[test]
    fn lower_bound_decreases_with_s() {
        assert!(matmul_io_lower_bound(64, 8) > matmul_io_lower_bound(64, 512));
        let expected = 64f64.powi(3) / (2.0 * (16.0f64).sqrt());
        assert!((matmul_io_lower_bound(64, 8) - expected).abs() < 1e-9);
    }

    #[test]
    fn n_equals_one() {
        let g = matmul(1);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_outputs(), 1);
    }

    #[test]
    fn schedule_hook_is_topological_for_both_accumulations() {
        use crate::catalog::Registry;
        use dmc_cdag::topo::is_valid_topological_order;
        for acc in ["tree", "chain"] {
            for s in [2u64, 8, 32] {
                let spec = Registry::shared()
                    .parse(&format!("matmul(n=4,accumulate={acc})"))
                    .expect("valid spec");
                let g = spec.build();
                let sched = spec.schedule_source(&g, s);
                assert_eq!(sched.order.len(), g.num_vertices());
                assert!(
                    is_valid_topological_order(&g, &sched.order),
                    "{acc} S={s}: '{}' not topological",
                    sched.note
                );
                assert!(sched.note.contains("blocked"), "{}", sched.note);
            }
        }
    }
}
