//! The kernel catalog: one API from a kernel *spec string* to a built
//! CDAG with analytic context.
//!
//! The paper's evaluation sweeps *parameterized* CDAG families —
//! Jacobi(n, d, t), CG, GMRES, FFT, matmul, the Section-3 composite —
//! but free functions with incompatible signatures
//! (`jacobi_cdag(n, d, t, stencil)` vs `fft(n)`) cannot be enumerated,
//! swept, or exposed behind one CLI flag. The catalog fixes that:
//!
//! * [`Kernel`] — the trait every family implements: declared
//!   [`params`](Kernel::params) with ranges and defaults,
//!   [`build`](Kernel::build) from validated [`ParamValues`], and
//!   optional analytic hooks
//!   ([`analytic_lower_bound`](Kernel::analytic_lower_bound),
//!   [`analytic_upper_bound`](Kernel::analytic_upper_bound),
//!   [`flops_estimate`](Kernel::flops_estimate),
//!   [`profile`](Kernel::profile));
//! * [`Registry`] — all kernel families, discoverable by name
//!   ([`Registry::get`]) and iterable ([`Registry::iter`]);
//! * the spec-string parser ([`Registry::parse`]) with the grammar
//!
//!   ```text
//!   spec  := name [ '(' arg (',' arg)* ')' ]
//!   arg   := param '=' value
//!   value := unsigned integer | choice identifier
//!   ```
//!
//!   Omitted parameters take their declared defaults; unknown kernels,
//!   unknown parameters, out-of-range values, and malformed syntax all
//!   fail loudly with a [`SpecError`] naming the valid alternatives.
//!
//! ```
//! use dmc_kernels::catalog::Registry;
//!
//! let registry = Registry::shared();
//! let spec = registry.parse("jacobi(n=4, d=2, t=3)").unwrap();
//! let g = spec.build();
//! assert_eq!(g.num_vertices(), 16 * 4); // n^d grid, t+1 time levels
//! // Rendering is canonical (every param, declared order) and round-trips.
//! assert_eq!(spec.render(), "jacobi(n=4,d=2,t=3,stencil=star)");
//! assert_eq!(registry.parse(&spec.render()).unwrap(), spec);
//! ```

use crate::profile::AlgorithmProfile;
use dmc_cdag::topo::topological_order;
use dmc_cdag::{Cdag, VertexId};
use std::fmt;
use std::sync::OnceLock;

/// Default *admission limit*: the largest approximate vertex count
/// [`Registry::parse`] accepts for a single build (`2²⁴ ≈ 1.7 × 10⁷`).
///
/// The limit is a guardrail, not a capability ceiling — it exists so a
/// typo in a spec string (`jacobi(n=4096,d=4)`) errors loudly instead of
/// exhausting memory, while deliberate large-scale runs (the
/// hierarchical pipeline targets 10⁷–10⁸ vertices) raise it explicitly
/// via [`Registry::parse_within`] or the `repro` CLI's `--max-vertices`
/// flag. Every kernel reports its estimate through the required
/// [`Kernel::approx_vertices`] method, so the check happens centrally at
/// parse time, *before* any allocation.
pub const DEFAULT_MAX_BUILD_VERTICES: u64 = 1 << 24;

/// A validated parameter value: an unsigned integer or one of a declared
/// choice set (stored as the canonical choice string).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamValue {
    /// An unsigned integer within the declared `min..=max` range.
    UInt(u64),
    /// A canonical member of the declared choice list.
    Choice(&'static str),
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::UInt(v) => write!(f, "{v}"),
            ParamValue::Choice(c) => f.write_str(c),
        }
    }
}

/// The domain of one parameter.
#[derive(Debug, Clone, Copy)]
pub enum ParamKind {
    /// An unsigned integer in `min..=max`.
    UInt {
        /// Smallest accepted value.
        min: u64,
        /// Largest accepted value.
        max: u64,
    },
    /// One identifier out of a fixed choice list.
    Choice(&'static [&'static str]),
}

/// Declaration of one kernel parameter: name, domain, default, and a
/// one-line description for `repro list`.
#[derive(Debug, Clone, Copy)]
pub struct ParamSpec {
    /// Parameter name as written in spec strings.
    pub name: &'static str,
    /// One-line description.
    pub doc: &'static str,
    /// Accepted domain.
    pub kind: ParamKind,
    /// Value used when the spec string omits the parameter.
    pub default: ParamValue,
}

impl ParamSpec {
    /// Declares an unsigned-integer parameter.
    pub const fn uint(
        name: &'static str,
        doc: &'static str,
        min: u64,
        max: u64,
        default: u64,
    ) -> Self {
        ParamSpec {
            name,
            doc,
            kind: ParamKind::UInt { min, max },
            default: ParamValue::UInt(default),
        }
    }

    /// Declares a choice parameter.
    pub const fn choice(
        name: &'static str,
        doc: &'static str,
        choices: &'static [&'static str],
        default: &'static str,
    ) -> Self {
        ParamSpec {
            name,
            doc,
            kind: ParamKind::Choice(choices),
            default: ParamValue::Choice(default),
        }
    }

    /// Human-readable domain, e.g. `1..=512` or `star|box`.
    pub fn range_text(&self) -> String {
        match self.kind {
            ParamKind::UInt { min, max } => format!("{min}..={max}"),
            ParamKind::Choice(choices) => choices.join("|"),
        }
    }

    /// Validates one raw spec-string value against this parameter's
    /// domain, returning the canonical [`ParamValue`].
    fn validate_raw(&self, raw: &str) -> Result<ParamValue, String> {
        match self.kind {
            ParamKind::UInt { min, max } => {
                let v: u64 = raw
                    .parse()
                    .map_err(|_| format!("'{raw}' is not an unsigned integer"))?;
                if (min..=max).contains(&v) {
                    Ok(ParamValue::UInt(v))
                } else {
                    Err(format!("{v} is out of range (expected {min}..={max})"))
                }
            }
            ParamKind::Choice(choices) => choices
                .iter()
                .find(|&&c| c == raw)
                .map(|&c| ParamValue::Choice(c))
                .ok_or_else(|| format!("'{raw}' must be one of {}", choices.join("|"))),
        }
    }
}

/// A full assignment of a kernel's parameters, in declared order.
///
/// Obtained from [`Registry::parse`] / [`Registry::defaults`]; the typed
/// getters panic on a name/kind mismatch because values are validated
/// against the kernel's [`ParamSpec`]s at construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamValues(Vec<(&'static str, ParamValue)>);

impl ParamValues {
    /// The declared defaults of `kernel`.
    pub fn defaults(kernel: &dyn Kernel) -> Self {
        ParamValues(
            kernel
                .params()
                .iter()
                .map(|p| (p.name, p.default))
                .collect(),
        )
    }

    /// Looks a parameter up by name.
    pub fn get(&self, name: &str) -> Option<ParamValue> {
        self.0.iter().find(|(n, _)| *n == name).map(|&(_, v)| v)
    }

    /// The integer parameter `name` (panics if absent or a choice).
    pub fn uint(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(ParamValue::UInt(v)) => v,
            // dmc-lint: allow(s1) -- documented accessor contract: factories only request parameters their own signature declares; a miss is a kernel-definition bug
            other => panic!("no uint parameter '{name}' (found {other:?})"),
        }
    }

    /// [`ParamValues::uint`] narrowed to `usize` (the builders' type).
    pub fn usize(&self, name: &str) -> usize {
        // dmc-lint: allow(s1) -- parameter magnitudes are validated against declared ranges at parse time, far below usize::MAX
        usize::try_from(self.uint(name)).expect("parameter exceeds usize")
    }

    /// The choice parameter `name` (panics if absent or an integer).
    pub fn choice(&self, name: &str) -> &'static str {
        match self.get(name) {
            Some(ParamValue::Choice(c)) => c,
            // dmc-lint: allow(s1) -- documented accessor contract: factories only request parameters their own signature declares; a miss is a kernel-definition bug
            other => panic!("no choice parameter '{name}' (found {other:?})"),
        }
    }

    /// Iterates `(name, value)` pairs in declared order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, ParamValue)> + '_ {
        self.0.iter().copied()
    }
}

/// A closed-form bound supplied by a kernel's analytic hooks, with the
/// formula recorded for provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyticBound {
    /// Bound value in words moved.
    pub value: f64,
    /// Which paper formula produced it, with parameters.
    pub note: String,
}

impl AnalyticBound {
    /// Creates a bound with its derivation note.
    pub fn new(value: f64, note: impl Into<String>) -> Self {
        AnalyticBound {
            value,
            note: note.into(),
        }
    }
}

/// An executable schedule for a built kernel CDAG, as emitted by the
/// [`Kernel::schedule_source`] hook: a full topological order plus a
/// provenance note recording which traversal produced it.
///
/// The `dmc-sim` schedule executor and the empirical-validation pipeline
/// consume these orders; the note travels into their reports so a
/// measurement is always attributable to a concrete schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelSchedule {
    /// A topological order over *all* vertices of the built CDAG
    /// (inputs included).
    pub order: Vec<VertexId>,
    /// Which traversal produced the order, with its parameters — e.g.
    /// `"skewed 1-D parallelogram tiles (w = 14)"`.
    pub note: String,
}

impl KernelSchedule {
    /// Wraps an order with its provenance note.
    pub fn new(order: Vec<VertexId>, note: impl Into<String>) -> Self {
        KernelSchedule {
            order,
            note: note.into(),
        }
    }

    /// The deterministic fallback every kernel gets for free: the Kahn
    /// order from [`dmc_cdag::topo::topological_order`].
    pub fn default_for(g: &Cdag) -> Self {
        KernelSchedule::new(topological_order(g), "default Kahn topological order")
    }
}

/// Machine context for [`Kernel::profile`]: the Section-5 profiles are
/// per-FLOP ratios that depend on the node count and per-node fast
/// memory, not only on the kernel's own parameters.
#[derive(Debug, Clone, Copy)]
pub struct ProfileContext {
    /// Number of nodes `N` of Equations 9–10.
    pub nodes: usize,
    /// Per-node fast-memory capacity `S` in words.
    pub sram: u64,
}

/// One parameterized CDAG family: the unified interface the registry,
/// the `repro` CLI, the experiment tables, and the pipeline all build on.
///
/// Implementations live next to their free-function builders (e.g.
/// [`crate::jacobi::JacobiKernel`] wraps [`crate::jacobi::jacobi_cdag`]);
/// the free functions remain the low-level API and the trait adds the
/// declared-parameter layer on top.
pub trait Kernel: Send + Sync {
    /// Registry name, as written in spec strings.
    fn name(&self) -> &'static str;

    /// One-line description for `repro list`.
    fn description(&self) -> &'static str;

    /// Declared parameters, in canonical render order.
    fn params(&self) -> &'static [ParamSpec];

    /// Builds the family member selected by `p` (all parameters present
    /// and within range — enforced by [`Registry::parse`]).
    fn build(&self, p: &ParamValues) -> Cdag;

    /// Approximate vertex count of the CDAG [`build`](Kernel::build)
    /// would produce, computed with checked arithmetic (`None` = the
    /// count overflows `u64`). [`Registry::parse_within`] compares this
    /// estimate against the admission limit centrally, *before* any
    /// allocation — implementations must therefore never build the
    /// graph to answer.
    fn approx_vertices(&self, p: &ParamValues) -> Option<u64>;

    /// Cross-parameter validation beyond per-parameter ranges
    /// (power-of-two constraints, mode/shape interactions). Called by
    /// [`Registry::parse`] after per-parameter validation and *before*
    /// the [`Kernel::approx_vertices`] admission check.
    fn validate(&self, _p: &ParamValues) -> Result<(), String> {
        Ok(())
    }

    /// Closed-form I/O *lower* bound at fast-memory capacity `s`, when
    /// the paper gives one for this family (`None` otherwise).
    fn analytic_lower_bound(&self, _p: &ParamValues, _s: u64) -> Option<AnalyticBound> {
        None
    }

    /// Achievable I/O *upper* bound at fast-memory capacity `s`, when an
    /// exact RBW-game schedule is known and feasible at that `s`
    /// (`None` otherwise — including when `s` is too small for the
    /// schedule the formula assumes).
    fn analytic_upper_bound(&self, _p: &ParamValues, _s: u64) -> Option<AnalyticBound> {
        None
    }

    /// Emits an executable schedule for `g` (a CDAG built from `p`),
    /// tuned for fast-memory capacity `s` where the family has a known
    /// cache-friendly traversal — the skewed space-time tiling for
    /// Jacobi, blocked output sweeps for matmul and the composite, the
    /// staged sub-transform factorization for the FFT.
    ///
    /// The default falls back to the deterministic Kahn order of
    /// [`dmc_cdag::topo::topological_order`] — always valid, never
    /// tuned. Implementations must return a topological order of `g`
    /// covering every vertex (build the traversal with
    /// [`dmc_cdag::topo::complete_order`] to get the dependence closure
    /// for free); the validation pipeline asserts this.
    fn schedule_source(&self, _p: &ParamValues, g: &Cdag, _s: u64) -> KernelSchedule {
        KernelSchedule::default_for(g)
    }

    /// Approximate FLOP count (the paper's `|V|`-style estimates).
    fn flops_estimate(&self, _p: &ParamValues) -> Option<f64> {
        None
    }

    /// The Section-5 per-FLOP data-movement profile, when the paper
    /// derives one for this family.
    fn profile(&self, _p: &ParamValues, _ctx: &ProfileContext) -> Option<AlgorithmProfile> {
        None
    }
}

/// A kernel plus a full validated parameter assignment — the parsed form
/// of a spec string, ready to [`build`](KernelSpec::build). Produced by
/// [`Registry::parse`] / [`Registry::defaults`].
#[derive(Clone)]
pub struct KernelSpec<'r> {
    kernel: &'r dyn Kernel,
    values: ParamValues,
}

impl<'r> KernelSpec<'r> {
    /// The kernel the spec names.
    pub fn kernel(&self) -> &'r dyn Kernel {
        self.kernel
    }

    /// The full parameter assignment (defaults filled in).
    pub fn values(&self) -> &ParamValues {
        &self.values
    }

    /// Canonical spec string: every parameter, declared order —
    /// `parse(render(spec))` reproduces the spec exactly.
    pub fn render(&self) -> String {
        let mut out = String::from(self.kernel.name());
        if !self.values.0.is_empty() {
            out.push('(');
            for (i, (name, value)) in self.values.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(name);
                out.push('=');
                out.push_str(&value.to_string());
            }
            out.push(')');
        }
        out
    }

    /// Builds the CDAG.
    pub fn build(&self) -> Cdag {
        self.kernel.build(&self.values)
    }

    /// A process-independent FNV-1a hash of the canonical
    /// [`render`](KernelSpec::render) — the serving layer's
    /// content-addressed cache key for spec-driven requests. Any two
    /// spec strings that parse to the same full parameter assignment
    /// hash equal, no matter how they spelled it (omitted defaults,
    /// whitespace, parameter order).
    ///
    /// ```
    /// use dmc_kernels::catalog::Registry;
    ///
    /// let r = Registry::shared();
    /// let a = r.parse("matmul(n=4)").unwrap();
    /// let b = r.parse(" matmul( accumulate=tree , n=4 ) ").unwrap();
    /// assert_eq!(a.content_hash(), b.content_hash());
    /// assert_ne!(a.content_hash(), r.parse("matmul(n=8)").unwrap().content_hash());
    /// ```
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        dmc_cdag::hash::fnv1a_64(self.render().as_bytes())
    }

    /// The kernel's executable schedule for `g` (a CDAG this spec built)
    /// at fast-memory capacity `s` — delegates to
    /// [`Kernel::schedule_source`].
    ///
    /// ```
    /// use dmc_cdag::topo::is_valid_topological_order;
    /// use dmc_kernels::catalog::Registry;
    ///
    /// let spec = Registry::shared().parse("jacobi(n=8,d=1,t=4)").unwrap();
    /// let g = spec.build();
    /// let sched = spec.schedule_source(&g, 16);
    /// assert!(is_valid_topological_order(&g, &sched.order));
    /// assert!(sched.note.contains("tile"), "{}", sched.note);
    /// ```
    pub fn schedule_source(&self, g: &Cdag, s: u64) -> KernelSchedule {
        self.kernel.schedule_source(&self.values, g, s)
    }
}

impl PartialEq for KernelSpec<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.kernel.name() == other.kernel.name() && self.values == other.values
    }
}

impl fmt::Debug for KernelSpec<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "KernelSpec({})", self.render())
    }
}

impl fmt::Display for KernelSpec<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Why a spec string was rejected. [`fmt::Display`] renders actionable
/// messages that name the valid alternatives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The string does not match the `name(key=value,...)` grammar.
    Syntax {
        /// The offending spec string.
        spec: String,
        /// What was wrong.
        reason: String,
    },
    /// No registered kernel has this name.
    UnknownKernel {
        /// The unmatched name.
        name: String,
        /// Every registered kernel name.
        known: Vec<&'static str>,
    },
    /// The kernel exists but declares no parameter of this name.
    UnknownParam {
        /// Kernel name.
        kernel: &'static str,
        /// The unmatched parameter.
        param: String,
        /// The kernel's declared parameter names.
        known: Vec<&'static str>,
    },
    /// The same parameter was assigned twice.
    DuplicateParam {
        /// Kernel name.
        kernel: &'static str,
        /// The repeated parameter.
        param: &'static str,
    },
    /// A value failed its parameter's domain check.
    BadValue {
        /// Kernel name.
        kernel: &'static str,
        /// Parameter name.
        param: &'static str,
        /// Domain-check failure message.
        reason: String,
    },
    /// The assignment failed the kernel's cross-parameter
    /// [`Kernel::validate`] (size limits, power-of-two constraints).
    Invalid {
        /// Kernel name.
        kernel: &'static str,
        /// Validation failure message.
        reason: String,
    },
    /// The assignment is valid but would build more vertices than the
    /// admission limit allows ([`Registry::parse_within`]). A distinct
    /// variant so admission-control callers (the serve daemon's HTTP 413
    /// path) can tell "too big" apart from "malformed" without string
    /// matching.
    TooLarge {
        /// Kernel name.
        kernel: &'static str,
        /// Admission failure message (names `--max-vertices`).
        reason: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Syntax { spec, reason } => {
                write!(
                    f,
                    "malformed kernel spec '{spec}': {reason}; expected name(param=value,...)"
                )
            }
            SpecError::UnknownKernel { name, known } => {
                write!(
                    f,
                    "unknown kernel '{name}'; known kernels: {}",
                    known.join(", ")
                )
            }
            SpecError::UnknownParam {
                kernel,
                param,
                known,
            } => {
                write!(
                    f,
                    "{kernel}: unknown parameter '{param}'; parameters: {}",
                    if known.is_empty() {
                        "(none)".to_string()
                    } else {
                        known.join(", ")
                    }
                )
            }
            SpecError::DuplicateParam { kernel, param } => {
                write!(f, "{kernel}: parameter '{param}' given more than once")
            }
            SpecError::BadValue {
                kernel,
                param,
                reason,
            } => write!(f, "{kernel}: parameter '{param}': {reason}"),
            SpecError::Invalid { kernel, reason } | SpecError::TooLarge { kernel, reason } => {
                write!(f, "{kernel}: {reason}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// All registered kernel families.
pub struct Registry {
    kernels: Vec<Box<dyn Kernel>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// Builds a registry with every kernel family of this crate.
    pub fn new() -> Self {
        Registry {
            kernels: vec![
                Box::new(crate::jacobi::JacobiKernel),
                Box::new(crate::cg::CgKernel),
                Box::new(crate::gmres::GmresKernel),
                Box::new(crate::fft::FftKernel),
                Box::new(crate::matmul::MatmulKernel),
                Box::new(crate::composite::CompositeKernel),
                Box::new(crate::outer::OuterProductKernel),
                Box::new(crate::pyramid::PyramidKernel),
                Box::new(crate::scan::ScanKernel),
                Box::new(crate::vecops::DotProductKernel),
                Box::new(crate::vecops::SaxpyKernel),
                Box::new(crate::chains::ChainKernel),
                Box::new(crate::chains::DiamondKernel),
                Box::new(crate::chains::ReductionKernel),
                Box::new(crate::chains::IndependentChainsKernel),
                Box::new(crate::chains::LadderKernel),
                Box::new(crate::chains::TwoStageKernel),
                Box::new(crate::random::RandomLayeredKernel),
            ],
        }
    }

    /// The process-wide shared registry.
    pub fn shared() -> &'static Registry {
        static SHARED: OnceLock<Registry> = OnceLock::new();
        SHARED.get_or_init(Registry::new)
    }

    /// Looks a kernel up by name.
    pub fn get(&self, name: &str) -> Option<&dyn Kernel> {
        self.kernels.iter().find(|k| k.name() == name).map(|k| &**k)
    }

    /// Iterates the registered kernels in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Kernel> {
        self.kernels.iter().map(|k| &**k)
    }

    /// Number of registered kernels.
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// `false` — the registry is never empty (kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }

    /// Every registered kernel name, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.kernels.iter().map(|k| k.name()).collect()
    }

    /// The named kernel with all parameters at their defaults.
    pub fn defaults(&self, name: &str) -> Result<KernelSpec<'_>, SpecError> {
        let kernel = self.get(name).ok_or_else(|| SpecError::UnknownKernel {
            name: name.to_string(),
            known: self.names(),
        })?;
        Ok(KernelSpec {
            kernel,
            values: ParamValues::defaults(kernel),
        })
    }

    /// Parses and validates a spec string (see the module docs for the
    /// grammar). Omitted parameters take their defaults; every error
    /// path names the valid alternatives.
    ///
    /// ```
    /// use dmc_kernels::catalog::Registry;
    ///
    /// let registry = Registry::shared();
    /// let spec = registry.parse("matmul(n=4)").unwrap();
    /// assert_eq!(spec.render(), "matmul(n=4,accumulate=tree)");
    /// assert_eq!(spec.build().num_inputs(), 2 * 4 * 4);
    /// // Errors are loud and name the alternatives.
    /// let err = registry.parse("matmul(n=zero)").unwrap_err();
    /// assert!(err.to_string().contains("not an unsigned integer"));
    /// ```
    pub fn parse(&self, spec: &str) -> Result<KernelSpec<'_>, SpecError> {
        self.parse_within(spec, DEFAULT_MAX_BUILD_VERTICES)
    }

    /// [`Registry::parse`] with an explicit admission limit: the parsed
    /// spec is rejected when [`Kernel::approx_vertices`] exceeds
    /// `max_vertices` (or overflows `u64`). [`Registry::parse`] is this
    /// with [`DEFAULT_MAX_BUILD_VERTICES`]; large-scale callers (the
    /// hierarchical pipeline, `repro analyze --max-vertices`) raise the
    /// limit deliberately instead of editing a constant.
    pub fn parse_within(&self, spec: &str, max_vertices: u64) -> Result<KernelSpec<'_>, SpecError> {
        let trimmed = spec.trim();
        let syntax = |reason: &str| SpecError::Syntax {
            spec: spec.to_string(),
            reason: reason.to_string(),
        };
        let (name, args) = match trimmed.split_once('(') {
            None => (trimmed, None),
            Some((name, rest)) => {
                let rest = rest.trim_end();
                let body = rest
                    .strip_suffix(')')
                    .ok_or_else(|| syntax("missing closing ')'"))?;
                if body.contains('(') || body.contains(')') {
                    return Err(syntax("nested parentheses"));
                }
                (name.trim_end(), Some(body))
            }
        };
        if name.is_empty() {
            return Err(syntax("empty kernel name"));
        }
        let kernel = self.get(name).ok_or_else(|| SpecError::UnknownKernel {
            name: name.to_string(),
            known: self.names(),
        })?;
        let mut values = ParamValues::defaults(kernel);
        let mut assigned: Vec<&'static str> = Vec::new();
        if let Some(args) = args {
            let args = args.trim();
            if !args.is_empty() {
                for arg in args.split(',') {
                    let arg = arg.trim();
                    let (key, raw) = arg
                        .split_once('=')
                        .ok_or_else(|| syntax(&format!("'{arg}' is not a param=value pair")))?;
                    let (key, raw) = (key.trim(), raw.trim());
                    let pspec =
                        kernel
                            .params()
                            .iter()
                            .find(|p| p.name == key)
                            .ok_or_else(|| SpecError::UnknownParam {
                                kernel: kernel.name(),
                                param: key.to_string(),
                                known: kernel.params().iter().map(|p| p.name).collect(),
                            })?;
                    if assigned.contains(&pspec.name) {
                        return Err(SpecError::DuplicateParam {
                            kernel: kernel.name(),
                            param: pspec.name,
                        });
                    }
                    assigned.push(pspec.name);
                    let value = pspec
                        .validate_raw(raw)
                        .map_err(|reason| SpecError::BadValue {
                            kernel: kernel.name(),
                            param: pspec.name,
                            reason,
                        })?;
                    let slot = values
                        .0
                        .iter_mut()
                        .find(|(n, _)| *n == pspec.name)
                        // dmc-lint: allow(s1) -- registry self-consistency: every declared param carries a default, checked for all kernels by catalog tests
                        .expect("defaults cover every declared param");
                    slot.1 = value;
                }
            }
        }
        kernel
            .validate(&values)
            .map_err(|reason| SpecError::Invalid {
                kernel: kernel.name(),
                reason,
            })?;
        match kernel.approx_vertices(&values) {
            Some(v) if v <= max_vertices => {}
            Some(v) => {
                return Err(SpecError::TooLarge {
                    kernel: kernel.name(),
                    reason: format!(
                        "build would create ~{v} vertices, above the admission limit of \
                         {max_vertices} (default {DEFAULT_MAX_BUILD_VERTICES} = 2^24; raise it \
                         with --max-vertices or Registry::parse_within)"
                    ),
                })
            }
            None => {
                return Err(SpecError::TooLarge {
                    kernel: kernel.name(),
                    reason: format!(
                        "approximate vertex count overflows u64 — far above the admission \
                         limit of {max_vertices}; raise it with --max-vertices or \
                         Registry::parse_within"
                    ),
                })
            }
        }
        Ok(KernelSpec { kernel, values })
    }

    /// The catalog rendered for `repro list`: one block per kernel with
    /// its canonical default spec, description, and per-parameter
    /// domains and defaults.
    pub fn format_catalog(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "kernel catalog ({} kernels) — spec grammar: name(param=value,...); \
             omitted params take their defaults\n",
            self.len()
        );
        for kernel in self.iter() {
            let spec = KernelSpec {
                kernel,
                values: ParamValues::defaults(kernel),
            };
            let _ = writeln!(out, "\n{}\n    {}", spec.render(), kernel.description());
            for p in kernel.params() {
                let _ = writeln!(
                    out,
                    "    {:<10} {:<42} [{}, default {}]",
                    p.name,
                    p.doc,
                    p.range_text(),
                    p.default
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_nonempty() {
        let r = Registry::new();
        assert!(r.len() >= 14, "all paper kernel families registered");
        let mut names = r.names();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate kernel names");
    }

    #[test]
    fn defaults_build_and_round_trip() {
        let r = Registry::shared();
        for kernel in r.iter() {
            let spec = r.defaults(kernel.name()).expect("registered");
            let rendered = spec.render();
            let reparsed = r
                .parse(&rendered)
                .unwrap_or_else(|e| panic!("canonical render of {rendered} fails to parse: {e}"));
            assert_eq!(reparsed, spec, "{rendered}");
            let g = spec.build();
            assert!(g.num_vertices() >= 1, "{rendered}");
        }
    }

    #[test]
    fn parse_accepts_whitespace_and_partial_params() {
        let r = Registry::shared();
        let spec = r.parse("  jacobi ( n = 4 , t = 2 )  ").expect("valid");
        assert_eq!(spec.values().uint("n"), 4);
        assert_eq!(spec.values().uint("t"), 2);
        // d and stencil fall back to their defaults.
        assert_eq!(spec.values().uint("d"), 2);
        assert_eq!(spec.values().choice("stencil"), "star");
    }

    #[test]
    fn bare_name_means_all_defaults() {
        let r = Registry::shared();
        assert_eq!(
            r.parse("diamond").expect("valid").render(),
            r.defaults("diamond").expect("registered").render()
        );
        // Empty parens are the same thing.
        assert_eq!(r.parse("fft()").expect("valid").values().uint("n"), 16);
    }

    #[test]
    fn unknown_kernel_lists_known_names() {
        let err = Registry::shared().parse("jacobbi(n=4)").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown kernel 'jacobbi'"), "{msg}");
        assert!(msg.contains("jacobi"), "{msg}");
        assert!(msg.contains("fft"), "{msg}");
    }

    #[test]
    fn unknown_param_lists_declared_names() {
        let err = Registry::shared().parse("jacobi(q=4)").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown parameter 'q'"), "{msg}");
        assert!(msg.contains("stencil"), "{msg}");
    }

    #[test]
    fn out_of_range_and_bad_type_are_loud() {
        let r = Registry::shared();
        let msg = r.parse("jacobi(d=99)").unwrap_err().to_string();
        assert!(msg.contains("out of range"), "{msg}");
        let msg = r.parse("jacobi(n=soon)").unwrap_err().to_string();
        assert!(msg.contains("not an unsigned integer"), "{msg}");
        let msg = r.parse("jacobi(stencil=hex)").unwrap_err().to_string();
        assert!(msg.contains("star|box"), "{msg}");
    }

    #[test]
    fn duplicate_param_rejected() {
        let err = Registry::shared().parse("jacobi(n=4,n=5)").unwrap_err();
        assert!(matches!(err, SpecError::DuplicateParam { .. }), "{err}");
    }

    #[test]
    fn syntax_errors_are_loud() {
        let r = Registry::shared();
        for bad in ["jacobi(n=4", "jacobi(n)", "(n=4)", "jacobi(n=(4))"] {
            let err = r.parse(bad).unwrap_err();
            assert!(matches!(err, SpecError::Syntax { .. }), "{bad}: {err}");
        }
    }

    #[test]
    fn oversized_build_rejected() {
        let err = Registry::shared()
            .parse("jacobi(n=4096,d=4,t=4096)")
            .unwrap_err();
        let msg = err.to_string();
        assert!(
            matches!(err, SpecError::TooLarge { .. }) && msg.contains("vertices"),
            "{msg}"
        );
    }

    #[test]
    fn every_kernel_schedule_is_a_topological_order() {
        use dmc_cdag::topo::is_valid_topological_order;
        let r = Registry::shared();
        for kernel in r.iter() {
            let spec = r.defaults(kernel.name()).expect("registered");
            let g = spec.build();
            for s in [2u64, 8, 64] {
                let sched = spec.schedule_source(&g, s);
                assert_eq!(
                    sched.order.len(),
                    g.num_vertices(),
                    "{} @ S={s}",
                    spec.render()
                );
                assert!(
                    is_valid_topological_order(&g, &sched.order),
                    "{} @ S={s}: '{}' is not a topological order",
                    spec.render(),
                    sched.note
                );
                assert!(!sched.note.is_empty());
            }
        }
    }

    #[test]
    fn schedule_hook_is_deterministic() {
        let r = Registry::shared();
        for name in ["jacobi", "matmul", "fft", "composite", "cg"] {
            let spec = r.defaults(name).expect("registered");
            let g = spec.build();
            assert_eq!(
                spec.schedule_source(&g, 16),
                spec.schedule_source(&g, 16),
                "{name}: schedule must not vary between calls"
            );
        }
    }

    #[test]
    fn catalog_listing_mentions_every_kernel() {
        let r = Registry::shared();
        let listing = r.format_catalog();
        for name in r.names() {
            assert!(listing.contains(name), "{name} missing from listing");
        }
        assert!(listing.contains("default"), "{listing}");
    }
}
