//! GMRES iteration CDAGs (paper Figure 4, Theorem 9).
//!
//! Each outer iteration `i` of modified-Gram–Schmidt GMRES performs:
//!
//! 1. `w ← A·v_i`                         — SpMV;
//! 2. `h_{j,i} ← ⟨w, v_j⟩` for `j ≤ i`    — `i+1` dot products;
//! 3. `v' ← w − Σ_j h_{j,i}·v_j`          — saxpy chain;
//! 4. `h_{i+1,i} ← ‖v'‖₂`                 — the vertex `υ_y` of Theorem 9;
//! 5. `v_{i+1} ← v' / h_{i+1,i}`          — elementwise scale.
//!
//! The marked `υ_x` of Theorem 9 is the last inner product `h_{i,i}`
//! (reduction over `w` and `v_i`, both of which have disjoint paths into
//! the saxpy of step 3).

use crate::catalog::{AnalyticBound, Kernel, ParamSpec, ParamValues, ProfileContext};
use crate::grid::{Grid, Stencil};
use crate::profile::{gmres_profile, AlgorithmProfile};
use crate::vecops::{dot, scale};
use dmc_cdag::{Cdag, CdagBuilder, VertexId};

/// Handles to the analytically-marked vertices of one GMRES iteration.
#[derive(Debug, Clone)]
pub struct GmresIterationMarks {
    /// The final inner product `h_{i,i} = ⟨w, v_i⟩` — Theorem 9's `υ_x`.
    pub upsilon_x: VertexId,
    /// The norm `h_{i+1,i} = ‖v'_{i+1}‖` — Theorem 9's `υ_y`.
    pub upsilon_y: VertexId,
}

/// A GMRES CDAG plus marked vertices.
#[derive(Debug, Clone)]
pub struct GmresCdag {
    /// The full CDAG over `m` iterations.
    pub cdag: Cdag,
    /// Marked scalars per iteration.
    pub marks: Vec<GmresIterationMarks>,
    /// Grid geometry.
    pub grid: Grid,
    /// Krylov dimension `m`.
    pub iterations: usize,
}

/// Builds the CDAG of `m` modified-Gram–Schmidt GMRES iterations on an
/// `n^d` grid. Inputs: `v_0`. Outputs: the final basis vector `v_m`.
pub fn gmres_cdag(n: usize, d: usize, m: usize, stencil: Stencil) -> GmresCdag {
    assert!(m >= 1);
    let grid = Grid::new(n, d);
    let npts = grid.len();
    let mut b = CdagBuilder::with_capacity((1 + 6 * m) * npts, (1 + 12 * m) * npts);

    let v0: Vec<VertexId> = (0..npts).map(|i| b.add_input(format!("v0_{i}"))).collect();
    let mut basis: Vec<Vec<VertexId>> = vec![v0];
    let mut marks = Vec::with_capacity(m);

    for it in 0..m {
        // dmc-lint: allow(s1) -- basis starts with v0 and only grows inside the loop
        let vi = basis.last().expect("basis non-empty").clone();
        // 1. w = A v_i.
        let mut w: Vec<VertexId> = (0..npts)
            .map(|i| {
                let mut preds = vec![vi[i]];
                preds.extend(grid.neighbors(i, stencil).into_iter().map(|j| vi[j]));
                b.add_op(format!("w{it}_{i}"), &preds)
            })
            .collect();
        // 2 & 3 fused per MGS: for each j, h = <w, v_j>; w = w − h v_j.
        let mut last_h = None;
        for (j, vj) in basis.clone().iter().enumerate() {
            let h = dot(&mut b, &w, vj, &format!("h{j}_{it}"));
            last_h = Some(h);
            w = w
                .iter()
                .zip(vj)
                .enumerate()
                .map(|(i, (&wi, &vji))| b.add_op(format!("w{it}_{j}_{i}"), &[wi, h, vji]))
                .collect();
        }
        // dmc-lint: allow(s1) -- the m >= 1 range check at parse time guarantees the loop ran at least once
        let upsilon_x = last_h.expect("m >= 1 so at least one h");
        // 4. h_{i+1,i} = ||w||.
        let norm = dot(&mut b, &w, &w, &format!("nrm{it}"));
        // 5. v_{i+1} = w / norm.
        let vnext = scale(&mut b, &w, norm, &format!("v{}_", it + 1));
        basis.push(vnext);
        marks.push(GmresIterationMarks {
            upsilon_x,
            upsilon_y: norm,
        });
    }
    // dmc-lint: allow(s1) -- basis starts with v0 and only grows inside the loop
    for &vtx in basis.last().expect("non-empty") {
        b.tag_output(vtx);
    }
    let cdag = b.build_valid("GMRES CDAG is acyclic");
    GmresCdag {
        cdag,
        marks,
        grid,
        iterations: m,
    }
}

/// Theorem 9's lower bound: `Q ≥ 6·n^d·m / P` as `n ≫ S`.
pub fn gmres_io_lower_bound(n: usize, d: usize, m: usize, p: usize) -> f64 {
    6.0 * (n as f64).powi(d as i32) * m as f64 / p as f64
}

/// The paper's operation count for 3-D GMRES: `20·n³·m + n³·m²` FLOPs
/// (Section 5.3.3), generalized to dimension `d`.
pub fn gmres_flops_estimate(n: usize, d: usize, m: usize) -> f64 {
    let nd = (n as f64).powi(d as i32);
    20.0 * nd * m as f64 + nd * (m as f64) * (m as f64)
}

/// The vertical balance ratio of Section 5.3.3:
/// `LB·N_nodes/|V| = 6/(m + 20)`.
pub fn gmres_vertical_ratio(m: usize) -> f64 {
    6.0 / (m as f64 + 20.0)
}

/// Catalog entry for the GMRES family: `gmres(n,d,m,stencil)` builds
/// [`gmres_cdag`] and surfaces the Theorem-9 bound and Section-5.3
/// profile.
pub struct GmresKernel;

impl Kernel for GmresKernel {
    fn name(&self) -> &'static str {
        "gmres"
    }

    fn description(&self) -> &'static str {
        "GMRES with modified Gram-Schmidt on an n^d grid (Theorem 9, Section 5.3)"
    }

    fn params(&self) -> &'static [ParamSpec] {
        const PARAMS: &[ParamSpec] = &[
            ParamSpec::uint("n", "grid extent per dimension", 1, 4096, 5),
            ParamSpec::uint("d", "grid dimensions", 1, 4, 1),
            ParamSpec::uint("m", "Krylov dimension (outer iterations)", 1, 512, 2),
            ParamSpec::choice("stencil", "SpMV operator shape", Stencil::CHOICES, "star"),
        ];
        PARAMS
    }

    fn approx_vertices(&self, p: &ParamValues) -> Option<u64> {
        let npts = p.uint("n").checked_pow(p.uint("d") as u32);
        // Iteration i adds ~ (3i + 6) n^d vertices (MGS is quadratic in m).
        let m = p.uint("m");
        let per_grid_point = m
            .checked_mul(m + 1)
            .and_then(|mm| mm.checked_mul(3))
            .and_then(|v| v.checked_add(6 * m + 1));
        npts.and_then(|v| per_grid_point.and_then(|p| v.checked_mul(p)))
    }

    fn build(&self, p: &ParamValues) -> Cdag {
        // dmc-lint: allow(s1) -- the choice value was validated against the stencil enum by the catalog parser before the factory runs
        let stencil = Stencil::from_choice(p.choice("stencil")).expect("validated choice");
        gmres_cdag(p.usize("n"), p.usize("d"), p.usize("m"), stencil).cdag
    }

    fn analytic_lower_bound(&self, p: &ParamValues, _s: u64) -> Option<AnalyticBound> {
        let (n, d, m) = (p.usize("n"), p.usize("d"), p.usize("m"));
        Some(AnalyticBound::new(
            gmres_io_lower_bound(n, d, m, 1),
            format!("Theorem 9 (asymptotic, n >> S): 6·n^d·m with n = {n}, d = {d}, m = {m}"),
        ))
    }

    fn flops_estimate(&self, p: &ParamValues) -> Option<f64> {
        Some(gmres_flops_estimate(
            p.usize("n"),
            p.usize("d"),
            p.usize("m"),
        ))
    }

    fn profile(&self, p: &ParamValues, ctx: &ProfileContext) -> Option<AlgorithmProfile> {
        Some(gmres_profile(p.usize("n"), p.usize("m"), ctx.nodes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmc_cdag::cut::min_wavefront;

    #[test]
    fn shape_single_iteration() {
        let g = gmres_cdag(4, 1, 1, Stencil::VonNeumann);
        assert_eq!(g.cdag.num_inputs(), 4);
        assert_eq!(g.cdag.num_outputs(), 4);
        assert_eq!(g.marks.len(), 1);
    }

    #[test]
    fn basis_grows_quadratically() {
        // Iteration i performs i+1 orthogonalizations, so total vertices
        // grow ~ m²·n^d for large m.
        let small = gmres_cdag(4, 1, 2, Stencil::VonNeumann).cdag.num_vertices();
        let large = gmres_cdag(4, 1, 8, Stencil::VonNeumann).cdag.num_vertices();
        assert!(large as f64 > 6.0 * small as f64);
    }

    #[test]
    fn upsilon_x_wavefront_at_least_papers_2nd() {
        // Theorem 9: the last inner product has wavefront ≥ 2n^d from the
        // disjoint paths of w and v_i into the following saxpy.
        let (n, d) = (5usize, 1usize);
        let g = gmres_cdag(n, d, 1, Stencil::VonNeumann);
        let w = min_wavefront(&g.cdag, g.marks[0].upsilon_x);
        assert!(w.size >= 2 * n, "{} < {}", w.size, 2 * n);
    }

    #[test]
    fn upsilon_y_wavefront_at_least_papers_nd() {
        // Theorem 9: the norm vertex has wavefront ≥ n^d from v'.
        let (n, d) = (5usize, 1usize);
        let g = gmres_cdag(n, d, 1, Stencil::VonNeumann);
        let w = min_wavefront(&g.cdag, g.marks[0].upsilon_y);
        assert!(w.size >= n, "{} < {n}", w.size);
    }

    #[test]
    fn vertical_ratio_series() {
        // Section 5.3.3: 6/(m+20); for m = 10 this is 0.2, above BG/Q's
        // 0.052; for m = 100 it is 0.05, right at the boundary.
        assert!((gmres_vertical_ratio(10) - 0.2).abs() < 1e-12);
        assert!(gmres_vertical_ratio(100) < 0.052);
        assert!(gmres_vertical_ratio(95) > 0.05);
    }

    #[test]
    fn flops_and_bound_formulas() {
        assert_eq!(gmres_io_lower_bound(10, 2, 5, 1), 3000.0);
        assert_eq!(gmres_io_lower_bound(10, 2, 5, 10), 300.0);
        let f = gmres_flops_estimate(10, 3, 4);
        assert_eq!(f, 20.0 * 1000.0 * 4.0 + 1000.0 * 16.0);
    }
}
