//! d-dimensional grid indexing shared by the stencil-shaped kernels
//! (Jacobi, SpMV inside CG/GMRES).

/// A dense d-dimensional grid of extent `n` along every dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grid {
    /// Extent along each dimension.
    pub n: usize,
    /// Number of dimensions `d`.
    pub d: usize,
}

/// Stencil neighbourhood shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stencil {
    /// Von Neumann neighbourhood: the point plus its `2d` axis neighbours
    /// (the 5-point stencil in 2-D, 7-point in 3-D).
    VonNeumann,
    /// Moore neighbourhood: the full `3^d` box (the 9-point stencil of the
    /// paper's Theorem 10 in 2-D).
    Moore,
}

impl Stencil {
    /// The spec-string spellings accepted by the kernel catalog
    /// (`crate::catalog`): `star` = [`Stencil::VonNeumann`], `box` =
    /// [`Stencil::Moore`].
    pub const CHOICES: &'static [&'static str] = &["star", "box"];

    /// Parses a catalog choice name.
    pub fn from_choice(name: &str) -> Option<Stencil> {
        match name {
            "star" => Some(Stencil::VonNeumann),
            "box" => Some(Stencil::Moore),
            _ => None,
        }
    }

    /// Number of stencil points including the center: `2d + 1` for the
    /// star (Von Neumann) shape, `3^d` for the box (Moore) shape.
    pub fn points(self, d: usize) -> usize {
        match self {
            Stencil::VonNeumann => 2 * d + 1,
            Stencil::Moore => 3usize.pow(d as u32),
        }
    }
}

impl Grid {
    /// Creates an `n^d` grid.
    pub fn new(n: usize, d: usize) -> Self {
        assert!(
            n >= 1 && d >= 1,
            "grid must have positive extent and dimension"
        );
        Grid { n, d }
    }

    /// Total number of points `n^d`.
    pub fn len(&self) -> usize {
        self.n.pow(self.d as u32)
    }

    /// `true` only for the degenerate 1-point grid with n = 1.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Converts a linear index to coordinates (row-major, dimension 0
    /// fastest).
    pub fn coords(&self, idx: usize) -> Vec<usize> {
        debug_assert!(idx < self.len());
        let mut c = Vec::with_capacity(self.d);
        let mut rest = idx;
        for _ in 0..self.d {
            c.push(rest % self.n);
            rest /= self.n;
        }
        c
    }

    /// Converts coordinates back to a linear index.
    pub fn index(&self, coords: &[usize]) -> usize {
        debug_assert_eq!(coords.len(), self.d);
        let mut idx = 0usize;
        for &c in coords.iter().rev() {
            debug_assert!(c < self.n);
            idx = idx * self.n + c;
        }
        idx
    }

    /// Linear indices of the stencil neighbours of `idx` (excluding `idx`
    /// itself), clipped at the grid boundary.
    pub fn neighbors(&self, idx: usize, stencil: Stencil) -> Vec<usize> {
        let c = self.coords(idx);
        let mut out = Vec::new();
        match stencil {
            Stencil::VonNeumann => {
                let mut nc = c.clone();
                for dim in 0..self.d {
                    if c[dim] > 0 {
                        nc[dim] = c[dim] - 1;
                        out.push(self.index(&nc));
                        nc[dim] = c[dim];
                    }
                    if c[dim] + 1 < self.n {
                        nc[dim] = c[dim] + 1;
                        out.push(self.index(&nc));
                        nc[dim] = c[dim];
                    }
                }
            }
            Stencil::Moore => {
                // Iterate the 3^d offset box via counting in base 3.
                let total = 3usize.pow(self.d as u32);
                let mut nc = vec![0usize; self.d];
                'offsets: for code in 0..total {
                    let mut rest = code;
                    let mut is_center = true;
                    for dim in 0..self.d {
                        let off = (rest % 3) as isize - 1;
                        rest /= 3;
                        let x = c[dim] as isize + off;
                        if x < 0 || x >= self.n as isize {
                            continue 'offsets;
                        }
                        if off != 0 {
                            is_center = false;
                        }
                        nc[dim] = x as usize;
                    }
                    if !is_center {
                        out.push(self.index(&nc));
                    }
                }
            }
        }
        out
    }

    /// Number of interior+boundary points whose full stencil fits — i.e.
    /// points at distance ≥ 1 from every face: `(n-2)^d` (0 when `n < 3`).
    pub fn interior_len(&self) -> usize {
        if self.n < 3 {
            0
        } else {
            (self.n - 2).pow(self.d as u32)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_coords_roundtrip() {
        let g = Grid::new(4, 3);
        for i in 0..g.len() {
            assert_eq!(g.index(&g.coords(i)), i);
        }
        assert_eq!(g.len(), 64);
    }

    #[test]
    fn von_neumann_counts() {
        let g = Grid::new(3, 2);
        // Center of a 3x3 grid has 4 axis neighbours.
        let center = g.index(&[1, 1]);
        assert_eq!(g.neighbors(center, Stencil::VonNeumann).len(), 4);
        // Corner has 2.
        assert_eq!(g.neighbors(0, Stencil::VonNeumann).len(), 2);
    }

    #[test]
    fn moore_counts() {
        let g = Grid::new(3, 2);
        let center = g.index(&[1, 1]);
        assert_eq!(g.neighbors(center, Stencil::Moore).len(), 8);
        assert_eq!(g.neighbors(0, Stencil::Moore).len(), 3);
        let g3 = Grid::new(3, 3);
        let center = g3.index(&[1, 1, 1]);
        assert_eq!(g3.neighbors(center, Stencil::Moore).len(), 26);
    }

    #[test]
    fn neighbors_exclude_self_and_stay_in_bounds() {
        let g = Grid::new(4, 2);
        for i in 0..g.len() {
            for s in [Stencil::VonNeumann, Stencil::Moore] {
                let nb = g.neighbors(i, s);
                assert!(!nb.contains(&i));
                assert!(nb.iter().all(|&j| j < g.len()));
                // No duplicates.
                let mut sorted = nb.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), nb.len());
            }
        }
    }

    #[test]
    fn one_dimensional_grid() {
        let g = Grid::new(5, 1);
        assert_eq!(g.neighbors(2, Stencil::VonNeumann), vec![1, 3]);
        assert_eq!(g.neighbors(2, Stencil::Moore), vec![1, 3]);
        assert_eq!(g.neighbors(0, Stencil::VonNeumann), vec![1]);
    }

    #[test]
    fn interior_len() {
        assert_eq!(Grid::new(5, 2).interior_len(), 9);
        assert_eq!(Grid::new(2, 3).interior_len(), 0);
    }
}
