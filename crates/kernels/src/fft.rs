//! FFT butterfly-network CDAGs.
//!
//! The `n`-point FFT graph has `log₂ n` stages of `n` vertices; vertex
//! `(s, i)` depends on `(s−1, i)` and `(s−1, i ⊕ 2^{s−1})`. Hong & Kung
//! showed its I/O complexity is `Θ(n·log n / log S)`; the paper's related
//! work (Ranjan–Savage–Zubair) sharpens the constants.

use crate::catalog::{AnalyticBound, Kernel, KernelSchedule, ParamSpec, ParamValues};
use dmc_cdag::topo::complete_order;
use dmc_cdag::{Cdag, CdagBuilder, VertexId};

/// Builds the `n`-point FFT butterfly CDAG (`n` must be a power of two).
/// Inputs: the `n` leaves; outputs: the `n` final-stage vertices.
pub fn fft(n: usize) -> Cdag {
    assert!(
        n.is_power_of_two() && n >= 2,
        "FFT size must be a power of two >= 2"
    );
    let stages = n.trailing_zeros() as usize;
    let mut b = CdagBuilder::with_capacity(n * (stages + 1), 2 * n * stages);
    let mut prev: Vec<VertexId> = (0..n).map(|i| b.add_input(format!("x{i}"))).collect();
    for s in 1..=stages {
        let stride = 1usize << (s - 1);
        let cur: Vec<VertexId> = (0..n)
            .map(|i| b.add_op(format!("f{s}_{i}"), &[prev[i], prev[i ^ stride]]))
            .collect();
        prev = cur;
    }
    for &v in &prev {
        b.tag_output(v);
    }
    b.build_valid("FFT butterfly is acyclic")
}

/// The Hong–Kung style asymptotic I/O lower bound for the `n`-point FFT
/// with `s` fast words: `Ω(n·log n / log s)`, with the classical constant
/// `n·log₂ n / (2·log₂ s)` (valid for `s ≥ 2`).
pub fn fft_io_lower_bound(n: usize, s: u64) -> f64 {
    assert!(s >= 2);
    let n_f = n as f64;
    n_f * n_f.log2() / (2.0 * (s as f64).log2())
}

/// Catalog entry for the FFT butterfly family: `fft(n)` builds [`fft`]
/// and surfaces the Hong–Kung-style `n·log n / (2·log S)` bound.
pub struct FftKernel;

impl Kernel for FftKernel {
    fn name(&self) -> &'static str {
        "fft"
    }

    fn description(&self) -> &'static str {
        "n-point FFT butterfly network (Hong-Kung n·log n/log S family)"
    }

    fn params(&self) -> &'static [ParamSpec] {
        const PARAMS: &[ParamSpec] = &[ParamSpec::uint(
            "n",
            "transform size (power of two)",
            2,
            1 << 20,
            16,
        )];
        PARAMS
    }

    fn validate(&self, p: &ParamValues) -> Result<(), String> {
        let n = p.uint("n");
        if n.is_power_of_two() {
            Ok(())
        } else {
            Err(format!("n = {n} must be a power of two"))
        }
    }

    fn build(&self, p: &ParamValues) -> Cdag {
        fft(p.usize("n"))
    }

    fn approx_vertices(&self, p: &ParamValues) -> Option<u64> {
        // n vertices per butterfly stage plus the input layer.
        let n = p.uint("n");
        let stages = if n.is_power_of_two() {
            n.trailing_zeros() as u64
        } else {
            64 - n.leading_zeros() as u64
        };
        n.checked_mul(stages + 1)
    }

    fn analytic_lower_bound(&self, p: &ParamValues, s: u64) -> Option<AnalyticBound> {
        (s >= 2).then(|| {
            let n = p.usize("n");
            AnalyticBound::new(
                fft_io_lower_bound(n, s),
                format!("Hong-Kung: n·log2(n)/(2·log2(S)) with n = {n}, S = {s}"),
            )
        })
    }

    fn schedule_source(&self, p: &ParamValues, g: &Cdag, s: u64) -> KernelSchedule {
        let n = p.usize("n");
        let stages = n.trailing_zeros() as usize;
        // The classic I/O-efficient factorization: group q consecutive
        // stages with 2^q ≈ S/2, so one 2^q-point sub-butterfly fits in
        // fast memory. Within a stage group [lo, hi] a vertex at stage
        // `st` depends only on indices agreeing outside bit range
        // [lo−1, hi−1], so indices split into independent blocks of
        // 2^(hi−lo+1); each block is swept stage-ascending.
        let q = (s.max(4) / 2).ilog2().min(stages.max(1) as u32) as usize;
        let mut preferred = Vec::with_capacity(n * stages);
        let mut lo = 1usize;
        while lo <= stages {
            let hi = (lo + q - 1).min(stages);
            let width = hi - lo + 1;
            let mask = ((1usize << width) - 1) << (lo - 1);
            for base in (0..n).filter(|i| i & mask == 0) {
                for st in lo..=hi {
                    for k in 0..(1usize << width) {
                        let i = base | (k << (lo - 1));
                        preferred.push(VertexId((st * n + i) as u32));
                    }
                }
            }
            lo = hi + 1;
        }
        KernelSchedule::new(
            complete_order(g, preferred),
            format!("staged sub-transforms ({q} stages per pass), inputs on first use"),
        )
    }

    fn flops_estimate(&self, p: &ParamValues) -> Option<f64> {
        let n = p.uint("n") as f64;
        Some(n * n.log2())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape() {
        let g = fft(8);
        assert_eq!(g.num_vertices(), 8 * 4);
        assert_eq!(g.num_edges(), 2 * 8 * 3);
        assert_eq!(g.num_inputs(), 8);
        assert_eq!(g.num_outputs(), 8);
        assert!(g.is_hong_kung_form());
    }

    #[test]
    fn butterfly_connectivity() {
        // Every output depends on every input.
        let g = fft(8);
        let outputs: Vec<_> = g.vertices().filter(|&v| g.is_output(v)).collect();
        for &o in &outputs {
            let anc = dmc_cdag::reach::ancestors(&g, o);
            let input_ancestors = (0..8).filter(|&i| anc.contains(i)).count();
            assert_eq!(input_ancestors, 8, "output {o} must reach all inputs");
        }
    }

    #[test]
    fn every_stage_vertex_has_two_preds() {
        let g = fft(16);
        for v in g.vertices().filter(|&v| !g.is_input(v)) {
            assert_eq!(g.in_degree(v), 2);
        }
    }

    #[test]
    fn lower_bound_shrinks_with_s() {
        assert!(fft_io_lower_bound(1024, 4) > fft_io_lower_bound(1024, 256));
        // n log n / (2 log s) with n = 16, s = 4: 16·4/(2·2) = 16.
        assert!((fft_io_lower_bound(16, 4) - 16.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = fft(12);
    }

    #[test]
    fn schedule_hook_is_topological_across_sizes_and_budgets() {
        use crate::catalog::Registry;
        use dmc_cdag::topo::is_valid_topological_order;
        for n in [2usize, 8, 16, 32] {
            for s in [2u64, 4, 8, 64, 1024] {
                let spec = Registry::shared()
                    .parse(&format!("fft(n={n})"))
                    .expect("valid spec");
                let g = spec.build();
                let sched = spec.schedule_source(&g, s);
                assert_eq!(sched.order.len(), g.num_vertices());
                assert!(
                    is_valid_topological_order(&g, &sched.order),
                    "n={n} S={s}: '{}' not topological",
                    sched.note
                );
            }
        }
    }
}
