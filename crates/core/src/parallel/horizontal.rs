//! Horizontal (inter-node) I/O lower bounds — Theorem 7.

use crate::bounds::{IoBound, Method};
use dmc_machine::MemoryHierarchy;

/// Theorem 7: the node whose processors perform the most compute
/// transitions receives at least
/// `(|V| / (U(C, 2S_L) · P_i) − 1) · S_L` remote-get words, where `P_i` is
/// the number of such busiest-node groups — i.e. the node count `N_L`
/// (each group holds `P/N_L` processors and the busiest does ≥ `|V|/N_L`
/// work).
pub fn horizontal_lower_bound(
    h: &MemoryHierarchy,
    total_work: f64,
    largest_2s_partition: f64,
) -> IoBound {
    assert!(largest_2s_partition > 0.0);
    let top = h.num_levels();
    let nodes = h.units(top) as f64;
    let s_top = h.capacity(top) as f64;
    let value = (total_work / (largest_2s_partition * nodes) - 1.0) * s_top;
    IoBound::new(
        value,
        Method::Horizontal,
        format!(
            "(|V|/(U·P_i) − 1)·S_L with |V| = {total_work:.3e}, U = {largest_2s_partition:.3e}, nodes = {nodes}"
        ),
    )
}

/// Ghost-cell upper bound on horizontal traffic for block-partitioned
/// d-dimensional stencil-style computations (Sections 5.2.2/5.4.2): with
/// block side `B = n / N_nodes^{1/d}`, each node exchanges
/// `(B+2)^d − B^d` halo words per sweep, `O(2d·B^{d−1})`.
pub fn ghost_cell_upper_bound(n: usize, d: usize, nodes: usize, sweeps: usize) -> f64 {
    let b = n as f64 / (nodes as f64).powf(1.0 / d as f64);
    (((b + 2.0).powi(d as i32)) - b.powi(d as i32)) * sweeps as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmc_machine::{Level, MemoryHierarchy};

    fn machine(nodes: usize) -> MemoryHierarchy {
        MemoryHierarchy::new(vec![
            Level::new("regs", nodes * 4, 64),
            Level::new("DRAM", nodes, 4096),
        ])
        .unwrap()
    }

    #[test]
    fn thm7_formula() {
        let h = machine(4);
        // (1e6/(1000·4) − 1)·4096 = 249·4096.
        let b = horizontal_lower_bound(&h, 1e6, 1000.0);
        assert_eq!(b.value, 249.0 * 4096.0);
    }

    #[test]
    fn thm7_clamps() {
        let h = machine(4);
        assert_eq!(horizontal_lower_bound(&h, 10.0, 1e9).value, 0.0);
    }

    #[test]
    fn ghost_cells_shrink_per_node_with_more_nodes() {
        // Per-node halo (B+2)^d − B^d shrinks as blocks shrink, and for
        // d ≥ 2 the surface term dominates: compare per-node volumes.
        let few = ghost_cell_upper_bound(120, 3, 8, 1);
        let many = ghost_cell_upper_bound(120, 3, 64, 1);
        assert!(many < few);
    }

    #[test]
    fn ghost_cells_scale_with_sweeps() {
        let one = ghost_cell_upper_bound(64, 2, 4, 1);
        let ten = ghost_cell_upper_bound(64, 2, 4, 10);
        assert!((ten - 10.0 * one).abs() < 1e-9);
    }

    #[test]
    fn ghost_cells_match_closed_form_1d() {
        // d = 1: halo is always 2 cells per node per sweep.
        let g = ghost_cell_upper_bound(100, 1, 4, 3);
        assert!((g - 6.0).abs() < 1e-9);
    }
}
