//! Vertical (within-node hierarchy) I/O lower bounds — Theorems 5 and 6.

use crate::bounds::{IoBound, Method};
use dmc_machine::MemoryHierarchy;

/// Theorem 5: the busiest level-`l` storage unit performs at least
/// `IO_1(C, S_{l−1}·N_{l−1}) / N_l` move-down transitions, where
/// `IO_1(C, S)` is the sequential I/O lower bound of the CDAG with fast
/// memory `S` — here supplied by the caller evaluated at the *aggregate*
/// child capacity `S_{l−1}·N_{l−1}`.
pub fn vertical_lower_bound_thm5(
    h: &MemoryHierarchy,
    level: usize,
    sequential_bound_at_aggregate_capacity: f64,
) -> IoBound {
    assert!(level >= 2 && level <= h.num_levels());
    let nl = h.units(level) as f64;
    IoBound::new(
        sequential_bound_at_aggregate_capacity / nl,
        Method::Vertical,
        format!(
            "IO₁(C, S_{}·N_{}) / N_{} = {:.3e} / {}",
            level - 1,
            level - 1,
            level,
            sequential_bound_at_aggregate_capacity,
            nl
        ),
    )
}

/// Theorem 6: with `|V|` total work and `U(C, 2S_{l−1})` the largest
/// 2S-partition block, the busiest level-`l` unit moves at least
/// `[|V|/(U·N_l) − N_{l−1}/N_l] · S_{l−1}` words — approximately
/// `|V|·S_{l−1} / (U·N_l)`.
pub fn vertical_lower_bound_thm6(
    h: &MemoryHierarchy,
    level: usize,
    total_work: f64,
    largest_2s_partition: f64,
) -> IoBound {
    assert!(level >= 2 && level <= h.num_levels());
    assert!(largest_2s_partition > 0.0);
    let nl = h.units(level) as f64;
    let nl_child = h.units(level - 1) as f64;
    let s_child = h.capacity(level - 1) as f64;
    let value = (total_work / (largest_2s_partition * nl) - nl_child / nl) * s_child;
    IoBound::new(
        value,
        Method::Vertical,
        format!(
            "[|V|/(U·N_{level}) − N_{}/N_{level}]·S_{} with |V| = {total_work:.3e}, U = {largest_2s_partition:.3e}",
            level - 1,
            level - 1
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmc_machine::{Level, MemoryHierarchy};

    fn machine() -> MemoryHierarchy {
        // 8 procs × 64 regs; 4 caches × 4096; 2 memories.
        MemoryHierarchy::new(vec![
            Level::new("regs", 8, 64),
            Level::new("L2", 4, 4096),
            Level::new("DRAM", 2, 1 << 24),
        ])
        .unwrap()
    }

    #[test]
    fn thm5_divides_by_unit_count() {
        let h = machine();
        let b = vertical_lower_bound_thm5(&h, 2, 4000.0);
        assert_eq!(b.value, 1000.0);
        let b = vertical_lower_bound_thm5(&h, 3, 4000.0);
        assert_eq!(b.value, 2000.0);
    }

    #[test]
    fn thm6_formula() {
        let h = machine();
        // level 2: N_2 = 4, N_1 = 8, S_1 = 64.
        // |V| = 1e6, U = 1000: (1e6/(1000·4) − 8/4)·64 = (250 − 2)·64.
        let b = vertical_lower_bound_thm6(&h, 2, 1e6, 1000.0);
        assert_eq!(b.value, 248.0 * 64.0);
    }

    #[test]
    fn thm6_clamps_when_partition_huge() {
        let h = machine();
        let b = vertical_lower_bound_thm6(&h, 2, 100.0, 1e9);
        assert_eq!(b.value, 0.0);
    }

    #[test]
    #[should_panic]
    fn level_one_rejected() {
        let h = machine();
        let _ = vertical_lower_bound_thm5(&h, 1, 10.0);
    }
}
