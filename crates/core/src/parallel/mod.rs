//! Parallel I/O lower bounds (Section 4).
//!
//! * [`vertical`] — Theorems 5 and 6: data movement across one level of
//!   the within-node memory hierarchy;
//! * [`horizontal`] — Theorem 7: remote-get traffic across nodes.

pub mod horizontal;
pub mod vertical;

pub use horizontal::horizontal_lower_bound;
pub use vertical::{vertical_lower_bound_thm5, vertical_lower_bound_thm6};
