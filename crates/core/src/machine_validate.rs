//! Machine-level empirical validation: the roofline oracle of Section 5.
//!
//! [`crate::validate`] sandwiches a kernel at a *single* fast-memory
//! capacity; this module judges it against a *machine*. A
//! [`MachineSpec`] induces a node hierarchy (registers → LLC → DRAM, in
//! words via [`MachineSpec::node_hierarchy`]); the kernel's DAG is dealt
//! across the node's cores with
//! [`split_round_robin`]
//! (round-robin over Kahn wavefronts, barrier semantics), and the split
//! schedule is measured at every cache boundary of the hierarchy exactly
//! as [`HierarchySimulation`](dmc_sim::HierarchySimulation) does — one
//! [`Simulation`] per boundary at its
//! [`effective_capacities`] entry, fanned out over worker threads with an
//! index-ordered merge so reports stay bit-identical at any thread count.
//!
//! Every level row is still a certified sandwich:
//!
//! ```text
//! pipeline LB at C_l  ≤  measured(OPT)  ≤  measured(LRU)  ≤  RBW UB at C_l
//! ```
//!
//! The lower side runs the full portfolio — including the Lemma-2
//! parallel wavefront bound, whose name surfaces in `lower_method` when
//! it wins — so the parallel split's traffic is checked against the
//! paper's parallel lower bound, not just the sequential one. On top of
//! the sandwich, the report adds the machine verdicts of Equations 7–8:
//! the DRAM boundary's measured words/FLOP against the machine's
//! vertical balance (memory-bound / compute-bound / inconclusive), and
//! the split's cross-processor words against the horizontal balance
//! (network-bound / compute-bound). The network row describes the
//! *concrete* round-robin split — an achievability statement, not a
//! lower bound.

use crate::pipeline::{Analyzer, AnalyzerConfig};
use crate::validate::trace_json;
use dmc_cdag::fanout::fan_out_indexed;
use dmc_cdag::Cdag;
use dmc_kernels::catalog::{KernelSpec, Registry, SpecError};
use dmc_machine::{BandwidthVerdict, Constraint, MachineSpec};
use dmc_sim::hierarchy_sim::{effective_capacities, split_round_robin, Inclusion};
use dmc_sim::simulation::{min_feasible_capacity, CachePolicy, Simulation, Trace};
use serde::json::Value;
use serde::Serialize;
use std::fmt;

use crate::games::executor::{certified_upper_bound, EvictionPolicy};

/// One hierarchy boundary of a [`MachineValidationReport`]: the sandwich
/// at that level's aggregate capacity plus, on the DRAM boundary, the
/// Equation-7/8 balance verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineLevelPoint {
    /// 1-based hierarchy level (1 = registers).
    pub level: usize,
    /// Level name from the machine's hierarchy.
    pub name: String,
    /// Units `N_l` in the node.
    pub units: usize,
    /// Per-unit capacity `S_l` in words.
    pub capacity_words: u64,
    /// Aggregate capacity the boundary was simulated at.
    pub effective_words: u64,
    /// The pipeline's certified lower bound at this capacity.
    pub certified_lower: f64,
    /// Which method won the lower-bound portfolio (the Lemma-2 wavefront
    /// bound appears here when it is the binding constraint).
    pub lower_method: String,
    /// Measured boundary traffic under Belady (OPT) replacement.
    pub measured_opt: Option<Trace>,
    /// Measured boundary traffic under LRU replacement.
    pub measured_lru: Option<Trace>,
    /// The RBW executor's certified upper bound for the same schedule.
    pub certified_upper: Option<u64>,
    /// Machine balance compared at this boundary (words/FLOP) — only the
    /// boundary into DRAM has one; inner boundaries carry `None`.
    pub balance_words_per_flop: Option<f64>,
    /// The Equation-7/8 verdict at this boundary: `memory-bound`,
    /// `compute-bound`, `inconclusive`, or `-` where no balance applies.
    pub verdict: String,
    /// Why the level could not be simulated, `None` when feasible.
    pub infeasible: Option<String>,
}

impl MachineLevelPoint {
    /// The sandwich verdict at this level — same contract as
    /// [`crate::validate::ValidationPoint::sandwich_ok`].
    pub fn sandwich_ok(&self) -> Option<bool> {
        let (opt, lru) = (self.measured_opt.as_ref(), self.measured_lru.as_ref());
        if opt.is_none() && lru.is_none() {
            return None;
        }
        let mut ok = true;
        for t in [opt, lru].into_iter().flatten() {
            ok &= self.certified_lower <= t.io() as f64;
            if let Some(ub) = self.certified_upper {
                ok &= t.io() <= ub;
            }
        }
        if let (Some(o), Some(l)) = (opt, lru) {
            ok &= o.io() <= l.io();
        }
        Some(ok)
    }
}

impl Serialize for MachineLevelPoint {
    fn to_json(&self) -> Value {
        Value::object([
            ("level", self.level.to_json()),
            ("name", self.name.to_json()),
            ("units", self.units.to_json()),
            ("capacity_words", self.capacity_words.to_json()),
            ("effective_words", self.effective_words.to_json()),
            ("certified_lower", self.certified_lower.to_json()),
            ("lower_method", self.lower_method.to_json()),
            (
                "measured_opt",
                self.measured_opt
                    .as_ref()
                    .map(trace_json)
                    .unwrap_or(Value::Null),
            ),
            (
                "measured_lru",
                self.measured_lru
                    .as_ref()
                    .map(trace_json)
                    .unwrap_or(Value::Null),
            ),
            ("certified_upper", self.certified_upper.to_json()),
            (
                "balance_words_per_flop",
                self.balance_words_per_flop.to_json(),
            ),
            ("verdict", self.verdict.to_json()),
            (
                "infeasible",
                self.infeasible
                    .as_ref()
                    .map(|r| r.to_json())
                    .unwrap_or(Value::Null),
            ),
            ("sandwich_ok", self.sandwich_ok().to_json()),
        ])
    }
}

/// The machine-simulation report of one kernel on one [`MachineSpec`]:
/// a certified sandwich per hierarchy boundary plus the roofline
/// verdicts. Produced by [`Analyzer::validate_machine_spec`] /
/// [`Analyzer::validate_machine_kernel`].
#[derive(Debug, Clone, PartialEq)]
#[must_use = "machine verdicts must be inspected, not dropped"]
pub struct MachineValidationReport {
    /// Canonical spec string of the validated kernel.
    pub spec: String,
    /// Machine name.
    pub machine: String,
    /// Per-core level-1 capacity the hierarchy was built with (words).
    pub s1: u64,
    /// Processors the schedule was dealt across (the node's cores).
    pub procs: usize,
    /// `|V|` of the built CDAG.
    pub vertices: usize,
    /// `|E|` of the built CDAG.
    pub edges: usize,
    /// `|I|` of the built CDAG.
    pub inputs: usize,
    /// `|O|` of the built CDAG.
    pub outputs: usize,
    /// Provenance of the executed schedule.
    pub schedule_note: String,
    /// Barrier-separated supersteps (Kahn wavefronts) of the split.
    pub supersteps: usize,
    /// Distinct `(value, remote processor)` words crossing the network
    /// under the owner-computes split.
    pub remote_words: u64,
    /// FLOP count the balance verdicts normalize by.
    pub flops: f64,
    /// Where `flops` came from (`kernel estimate` or the compute-vertex
    /// fallback).
    pub flops_note: String,
    /// The machine's vertical (DRAM) balance, words/FLOP.
    pub vertical_balance: f64,
    /// The machine's horizontal (network) balance, words/FLOP.
    pub horizontal_balance: f64,
    /// Network verdict for the concrete split: `network-bound` when the
    /// measured remote words/FLOP exceed the horizontal balance,
    /// `compute-bound` otherwise.
    pub network_verdict: String,
    /// One entry per cache boundary, fastest first.
    pub levels: Vec<MachineLevelPoint>,
}

impl MachineValidationReport {
    /// `true` when every feasible level's sandwich verdict is positive
    /// and at least one level was actually measured.
    pub fn sandwich_holds(&self) -> bool {
        let verdicts: Vec<bool> = self.levels.iter().filter_map(|p| p.sandwich_ok()).collect();
        !verdicts.is_empty() && verdicts.into_iter().all(|ok| ok)
    }

    /// Measured remote words per FLOP of the split.
    pub fn remote_words_per_flop(&self) -> f64 {
        self.remote_words as f64 / self.flops.max(1.0)
    }
}

impl fmt::Display for MachineValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "kernel: {} on {} (s1 = {} words/core, P = {})",
            self.spec, self.machine, self.s1, self.procs
        )?;
        writeln!(
            f,
            "CDAG: |V| = {}, |E| = {}, |I| = {}, |O| = {}",
            self.vertices, self.edges, self.inputs, self.outputs
        )?;
        writeln!(
            f,
            "split: {} ({} supersteps, {} remote words); flops = {} ({})",
            self.schedule_note, self.supersteps, self.remote_words, self.flops, self.flops_note
        )?;
        writeln!(
            f,
            "{:<5} {:<10} {:>5} {:>12} {:<13} {:<9} {:<9} {:<13} {:<10} {:<9} verdict",
            "level",
            "name",
            "N",
            "S(words)",
            "LB(cert)",
            "OPT(io)",
            "LRU(io)",
            "UB(cert)",
            "w/F(meas)",
            "balance"
        )?;
        let fmt_trace = |t: &Option<Trace>| {
            t.as_ref()
                .map(|t| t.io().to_string())
                .unwrap_or_else(|| "-".into())
        };
        for p in &self.levels {
            let upper = p
                .certified_upper
                .map(|v| v.to_string())
                .unwrap_or_else(|| "-".into());
            let wpf = p
                .measured_lru
                .as_ref()
                .map(|t| format!("{:.4}", t.io() as f64 / self.flops.max(1.0)))
                .unwrap_or_else(|| "-".into());
            let balance = p
                .balance_words_per_flop
                .map(|b| format!("{b:.4}"))
                .unwrap_or_else(|| "-".into());
            writeln!(
                f,
                "{:<5} {:<10} {:>5} {:>12} {:<13} {:<9} {:<9} {:<13} {:<10} {:<9} {}{}",
                p.level,
                p.name,
                p.units,
                p.capacity_words,
                p.certified_lower,
                fmt_trace(&p.measured_opt),
                fmt_trace(&p.measured_lru),
                upper,
                wpf,
                balance,
                p.verdict,
                p.infeasible
                    .as_ref()
                    .map(|r| format!("  [skipped: {r}]"))
                    .unwrap_or_default(),
            )?;
        }
        writeln!(
            f,
            "{:<5} {:<10} {:>5} {:>12} {:<13} {:<9} {:<9} {:<13} {:<10} {:<9} {}",
            "net",
            "network",
            "-",
            "-",
            "-",
            "-",
            self.remote_words,
            "-",
            format!("{:.4}", self.remote_words_per_flop()),
            format!("{:.4}", self.horizontal_balance),
            self.network_verdict,
        )
    }
}

impl Serialize for MachineValidationReport {
    fn to_json(&self) -> Value {
        Value::object([
            ("spec", self.spec.to_json()),
            ("machine", self.machine.to_json()),
            ("s1", self.s1.to_json()),
            ("procs", self.procs.to_json()),
            ("vertices", self.vertices.to_json()),
            ("edges", self.edges.to_json()),
            ("inputs", self.inputs.to_json()),
            ("outputs", self.outputs.to_json()),
            ("schedule_note", self.schedule_note.to_json()),
            ("supersteps", self.supersteps.to_json()),
            ("remote_words", self.remote_words.to_json()),
            ("flops", self.flops.to_json()),
            ("flops_note", self.flops_note.to_json()),
            ("vertical_balance", self.vertical_balance.to_json()),
            ("horizontal_balance", self.horizontal_balance.to_json()),
            ("network_verdict", self.network_verdict.to_json()),
            ("levels", self.levels.to_json()),
            ("sandwich_holds", self.sandwich_holds().to_json()),
        ])
    }
}

/// Renders a [`BandwidthVerdict`] in the roofline vocabulary of the
/// machine table: memory-bound / compute-bound / inconclusive.
fn roofline_verdict(v: BandwidthVerdict) -> &'static str {
    match v {
        BandwidthVerdict::BandwidthBound => "memory-bound",
        BandwidthVerdict::NotBandwidthBound => "compute-bound",
        BandwidthVerdict::Inconclusive => "inconclusive",
    }
}

impl Analyzer {
    /// Parses `spec` against the shared catalog [`Registry`] and judges
    /// it against `machine`: the DAG is dealt round-robin across the
    /// node's cores, measured at every cache boundary of the machine's
    /// hierarchy (built with `s1` words of level-1 storage per core),
    /// and each boundary is sandwiched between the pipeline's certified
    /// lower bound and the RBW executor's certified upper bound. The
    /// DRAM boundary and the network traffic additionally get the
    /// Equation-7/8 roofline verdicts.
    ///
    /// ```
    /// use dmc_core::pipeline::Analyzer;
    /// use dmc_machine::specs;
    ///
    /// let report = Analyzer::with_defaults()
    ///     .validate_machine_spec("fft(n=8)", &specs::ibm_bgq(), 8, None)
    ///     .expect("valid spec");
    /// assert_eq!(report.levels.len(), 2); // registers, LLC
    /// assert!(report.sandwich_holds(), "{report}");
    /// ```
    pub fn validate_machine_spec(
        &self,
        spec: &str,
        machine: &MachineSpec,
        s1: u64,
        policy: Option<CachePolicy>,
    ) -> Result<MachineValidationReport, SpecError> {
        Ok(self.validate_machine_kernel(&Registry::shared().parse(spec)?, machine, s1, policy))
    }

    /// [`Analyzer::validate_machine_spec`] for an already-parsed spec.
    pub fn validate_machine_kernel(
        &self,
        spec: &KernelSpec<'_>,
        machine: &MachineSpec,
        s1: u64,
        policy: Option<CachePolicy>,
    ) -> MachineValidationReport {
        self.validate_machine_built(spec, &spec.build(), machine, s1, policy)
    }

    /// [`Analyzer::validate_machine_kernel`] against an already-built
    /// CDAG. `g` must be the graph `spec` builds.
    pub fn validate_machine_built(
        &self,
        spec: &KernelSpec<'_>,
        g: &Cdag,
        machine: &MachineSpec,
        s1: u64,
        policy: Option<CachePolicy>,
    ) -> MachineValidationReport {
        let procs = machine.cores_per_node.max(1);
        let split = split_round_robin(g, procs);
        let h = machine.node_hierarchy(s1);
        let caps = effective_capacities(&h, Inclusion::Inclusive);
        let (flops, flops_note) = match spec.kernel().flops_estimate(spec.values()) {
            Some(fl) => (fl, "kernel estimate".to_string()),
            None => (
                g.num_compute_vertices() as f64,
                "compute-vertex count".to_string(),
            ),
        };
        let dram_boundary = caps.len();
        let workers = self.resolved_threads(caps.len());
        let levels = fan_out_indexed(caps.len(), workers, Simulation::new, |sim, i| {
            let (name, effective) = &caps[i];
            let level = i + 1;
            let balance = (level == dram_boundary).then(|| machine.vertical_balance());
            self.machine_level_point(
                g,
                &split.order,
                level,
                name,
                h.units(level),
                h.capacity(level),
                *effective,
                balance,
                flops,
                policy,
                sim,
            )
        });
        let rpf = split.remote_reads as f64 / flops.max(1.0);
        let network_verdict = if rpf > machine.horizontal_balance() {
            "network-bound".to_string()
        } else {
            "compute-bound".to_string()
        };
        MachineValidationReport {
            spec: spec.render(),
            machine: machine.name.clone(),
            s1,
            procs,
            vertices: g.num_vertices(),
            edges: g.num_edges(),
            inputs: g.num_inputs(),
            outputs: g.num_outputs(),
            schedule_note: format!("round-robin wavefront split, P = {procs}"),
            supersteps: split.supersteps,
            remote_words: split.remote_reads,
            flops,
            flops_note,
            vertical_balance: machine.vertical_balance(),
            horizontal_balance: machine.horizontal_balance(),
            network_verdict,
            levels,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn machine_level_point(
        &self,
        g: &Cdag,
        order: &[dmc_cdag::VertexId],
        level: usize,
        name: &str,
        units: usize,
        capacity_words: u64,
        effective: u64,
        balance: Option<f64>,
        flops: f64,
        policy: Option<CachePolicy>,
        sim: &mut Simulation,
    ) -> MachineLevelPoint {
        // The certified lower bound at this boundary's aggregate
        // capacity — the full portfolio (wavefront, partition, …), run
        // single-threaded inside the per-level worker.
        let lower = Analyzer::new(AnalyzerConfig {
            sram: effective,
            threads: 1,
            verdicts: false,
            ..self.config().clone()
        })
        .analyze(g)
        .bound;
        let required = min_feasible_capacity(g);
        let mut point = MachineLevelPoint {
            level,
            name: name.to_string(),
            units,
            capacity_words,
            effective_words: effective,
            certified_lower: lower.value,
            lower_method: lower.method.to_string(),
            measured_opt: None,
            measured_lru: None,
            certified_upper: None,
            balance_words_per_flop: balance,
            verdict: "-".to_string(),
            infeasible: None,
        };
        if (required as u64) > effective {
            point.infeasible = Some(format!(
                "aggregate capacity < {required} words (largest in-degree + 1 of the schedule)"
            ));
            return point;
        }
        let want = |p: CachePolicy| policy.is_none() || policy == Some(p);
        if want(CachePolicy::Opt) {
            point.measured_opt = Some(
                sim.run(g, order, CachePolicy::Opt, effective)
                    // dmc-lint: allow(s1) -- feasibility of this capacity was established by the pre-check above before the schedule replay
                    .expect("feasibility pre-checked"),
            );
        }
        if want(CachePolicy::Lru) {
            point.measured_lru = Some(
                sim.run(g, order, CachePolicy::Lru, effective)
                    // dmc-lint: allow(s1) -- feasibility of this capacity was established by the pre-check above before the schedule replay
                    .expect("feasibility pre-checked"),
            );
        }
        point.certified_upper = certified_upper_bound(
            g,
            usize::try_from(effective).unwrap_or(usize::MAX),
            order,
            EvictionPolicy::Lru,
        )
        .ok();
        if let Some(b) = balance {
            // Equations 7–8 at this boundary: certified LB/FLOP on the
            // lower side, the *measured* LRU traffic (an achieved
            // schedule, hence a valid upper bound) on the upper side.
            let measured = point
                .measured_lru
                .as_ref()
                .or(point.measured_opt.as_ref())
                .map(|t| t.io() as f64 / flops.max(1.0));
            let c = Constraint {
                lower_words_per_flop: Some(point.certified_lower / flops.max(1.0)),
                upper_words_per_flop: measured,
            };
            point.verdict = roofline_verdict(c.verdict(b)).to_string();
        }
        point
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmc_machine::specs;
    use dmc_sim::hierarchy_sim::HierarchySimulation;

    fn analyzer(threads: usize) -> Analyzer {
        Analyzer::new(AnalyzerConfig {
            threads,
            ..AnalyzerConfig::default()
        })
    }

    #[test]
    fn machine_sandwich_holds_on_bgq() {
        let r = analyzer(1)
            .validate_machine_spec("jacobi(n=8,d=1,t=8)", &specs::ibm_bgq(), 8, None)
            .expect("valid spec");
        assert_eq!(r.levels.len(), 2, "registers + LLC boundaries");
        assert_eq!(r.procs, 16);
        for p in &r.levels {
            assert!(p.infeasible.is_none(), "{:?}", p);
            assert_eq!(p.sandwich_ok(), Some(true), "level {}: {p:?}", p.level);
        }
        assert!(r.sandwich_holds(), "{r}");
    }

    #[test]
    fn measured_levels_match_hierarchy_simulation() {
        // The report's per-level measurement and the HierarchySimulation
        // engine must be the same numbers — the report is just the
        // engine's decomposition fanned out over workers.
        let spec = Registry::shared().parse("fft(n=8)").expect("valid");
        let g = spec.build();
        let m = specs::ibm_bgq();
        let s1 = 8;
        let r = analyzer(1).validate_machine_built(&spec, &g, &m, s1, None);
        let split = split_round_robin(&g, m.cores_per_node);
        let mut hier = HierarchySimulation::new();
        let ht = hier
            .run(
                &g,
                &split.order,
                CachePolicy::Lru,
                &m.node_hierarchy(s1),
                Inclusion::Inclusive,
            )
            .expect("feasible");
        for (p, lt) in r.levels.iter().zip(&ht.levels) {
            assert_eq!(
                p.measured_lru.as_ref(),
                Some(&lt.trace),
                "level {}",
                p.level
            );
            assert_eq!(p.effective_words, lt.effective_words);
        }
    }

    #[test]
    fn only_the_dram_boundary_gets_a_balance_verdict() {
        let r = analyzer(1)
            .validate_machine_spec("matmul(n=4)", &specs::ibm_bgq(), 8, None)
            .expect("valid spec");
        assert!(r.levels[0].balance_words_per_flop.is_none());
        assert_eq!(r.levels[0].verdict, "-");
        assert!(r.levels[1].balance_words_per_flop.is_some());
        assert_ne!(r.levels[1].verdict, "-");
        assert!(
            ["memory-bound", "compute-bound", "inconclusive"]
                .contains(&r.levels[1].verdict.as_str()),
            "{}",
            r.levels[1].verdict
        );
        assert!(
            ["network-bound", "compute-bound"].contains(&r.network_verdict.as_str()),
            "{}",
            r.network_verdict
        );
    }

    #[test]
    fn infeasible_register_level_is_reported_not_dropped() {
        // s1 = 1 on a 1-core toy machine: the register boundary cannot
        // hold any compute vertex's operands.
        let toy = MachineSpec {
            name: "Toy".into(),
            nodes: 1,
            cores_per_node: 1,
            gflops_per_core: 1.0,
            memory_gb: 1.0,
            llc_mb: 1.0,
            dram_bandwidth_gbs: 10.0,
            network_bandwidth_gbs: 5.0,
            word_bytes: 8.0,
        };
        let r = analyzer(1)
            .validate_machine_spec("jacobi(n=8,d=1,t=8)", &toy, 1, None)
            .expect("valid spec");
        assert!(r.levels[0].infeasible.is_some());
        assert!(r.levels[1].infeasible.is_none());
        assert!(r.sandwich_holds(), "feasible levels still judged");
        assert!(r.to_string().contains("skipped"));
    }

    #[test]
    fn machine_report_is_bit_identical_across_thread_counts() {
        let m = specs::cray_xt5();
        let base = analyzer(1)
            .validate_machine_spec("composite(n=3)", &m, 8, None)
            .expect("valid");
        for threads in [2usize, 4] {
            let r = analyzer(threads)
                .validate_machine_spec("composite(n=3)", &m, 8, None)
                .expect("valid");
            assert_eq!(r, base, "@ {threads} threads");
            assert_eq!(r.to_string(), base.to_string(), "@ {threads} threads");
            assert_eq!(
                serde::json::to_string(&r),
                serde::json::to_string(&base),
                "@ {threads} threads"
            );
        }
    }

    #[test]
    fn bad_spec_is_loud() {
        let err = analyzer(1)
            .validate_machine_spec("warp_drive(n=4)", &specs::ibm_bgq(), 8, None)
            .unwrap_err();
        assert!(err.to_string().contains("unknown kernel"), "{err}");
    }
}
