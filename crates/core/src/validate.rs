//! Empirical validation: measured I/O sandwiched between certified bounds.
//!
//! The paper's central claim is that its lower bounds and schedule-derived
//! upper bounds *bracket* the data movement a real memory hierarchy
//! performs. This module closes that loop for every kernel in the catalog:
//!
//! 1. the kernel's [`schedule_source`](dmc_kernels::catalog::Kernel::schedule_source)
//!    hook emits an executable topological schedule (tiled where the
//!    family has a known cache-friendly traversal, the deterministic Kahn
//!    order otherwise);
//! 2. the `dmc-sim` [`Simulation`] measures that schedule at each `S` of a
//!    sweep under both [`CachePolicy::Opt`] (Belady replacement) and
//!    [`CachePolicy::Lru`];
//! 3. the bound machinery supplies the two certified sides: the
//!    [`Analyzer`] pipeline's lower bound at the same `S`, and the RBW
//!    game executor's validated upper bound for the *same schedule*
//!    ([`certified_upper_bound`]).
//!
//! Because every simulated run corresponds to a valid RBW game, the
//! sandwich invariant
//!
//! ```text
//! certified lower ≤ measured(OPT) ≤ measured(LRU) ≤ certified upper
//! ```
//!
//! must hold at every feasible sweep point; [`ValidationReport`] records
//! it per point (text and JSON) and [`ValidationReport::sandwich_holds`]
//! asserts it wholesale. The kernel's closed-form analytic upper bound is
//! rendered next to the measurements when the catalog provides one, but —
//! like the analytic lower bound in [`crate::pipeline`] — it is never
//! merged into the certified sandwich.
//!
//! Sweep points fan out over `std::thread::scope` workers (one simulator
//! arena per worker) with an index-ordered merge, so reports are
//! **bit-identical at any thread count**.

use crate::games::executor::{certified_upper_bound, EvictionPolicy};
use crate::pipeline::{Analyzer, AnalyzerConfig};
use dmc_cdag::fanout::fan_out_indexed;
use dmc_cdag::topo::is_valid_topological_order;
use dmc_cdag::Cdag;
use dmc_kernels::catalog::{KernelSpec, Registry, SpecError};
use dmc_sim::simulation::{min_feasible_capacity, CachePolicy, Simulation, Trace};
use serde::json::Value;
use serde::Serialize;
use std::fmt;

/// One sweep point of a [`ValidationReport`]: everything the sandwich
/// needs at a single fast-memory capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationPoint {
    /// Fast-memory capacity `S` in words.
    pub sram: u64,
    /// The pipeline's certified lower bound at this `S`.
    pub certified_lower: f64,
    /// Which method won the lower-bound portfolio.
    pub lower_method: String,
    /// Measured traffic under Belady (OPT) replacement, when measured
    /// and feasible.
    pub measured_opt: Option<Trace>,
    /// Measured traffic under LRU replacement, when measured and
    /// feasible.
    pub measured_lru: Option<Trace>,
    /// The RBW executor's certified upper bound for the same schedule
    /// (LRU eviction, validated game).
    pub certified_upper: Option<u64>,
    /// The kernel's closed-form achievable bound at this `S`, when the
    /// catalog provides one (displayed, never part of the sandwich).
    pub analytic_upper: Option<f64>,
    /// Which schedule was executed (the hook's provenance note; tilings
    /// may pick different parameters at different `S`).
    pub schedule_note: String,
    /// Why the point could not be simulated (`S` below the schedule's
    /// minimum footprint), `None` when feasible.
    pub infeasible: Option<String>,
}

impl ValidationPoint {
    /// The sandwich verdict at this point: `None` when nothing was
    /// measured (infeasible `S`), otherwise whether every available link
    /// of `lower ≤ measured(OPT) ≤ measured(LRU) ≤ upper` holds.
    pub fn sandwich_ok(&self) -> Option<bool> {
        let (opt, lru) = (self.measured_opt.as_ref(), self.measured_lru.as_ref());
        if opt.is_none() && lru.is_none() {
            return None;
        }
        let mut ok = true;
        for t in [opt, lru].into_iter().flatten() {
            ok &= self.certified_lower <= t.io() as f64;
            if let Some(ub) = self.certified_upper {
                ok &= t.io() <= ub;
            }
        }
        if let (Some(o), Some(l)) = (opt, lru) {
            ok &= o.io() <= l.io();
        }
        Some(ok)
    }
}

pub(crate) fn trace_json(t: &Trace) -> Value {
    Value::object([
        ("loads", t.loads.to_json()),
        ("stores", t.stores.to_json()),
        ("hits", t.hits.to_json()),
        ("evictions", t.evictions.to_json()),
        ("io", t.io().to_json()),
    ])
}

impl Serialize for ValidationPoint {
    fn to_json(&self) -> Value {
        Value::object([
            ("sram", self.sram.to_json()),
            ("certified_lower", self.certified_lower.to_json()),
            ("lower_method", self.lower_method.to_json()),
            (
                "measured_opt",
                self.measured_opt
                    .as_ref()
                    .map(trace_json)
                    .unwrap_or(Value::Null),
            ),
            (
                "measured_lru",
                self.measured_lru
                    .as_ref()
                    .map(trace_json)
                    .unwrap_or(Value::Null),
            ),
            ("certified_upper", self.certified_upper.to_json()),
            ("analytic_upper", self.analytic_upper.to_json()),
            ("schedule_note", self.schedule_note.to_json()),
            (
                "infeasible",
                self.infeasible
                    .as_ref()
                    .map(|r| r.to_json())
                    .unwrap_or(Value::Null),
            ),
            ("sandwich_ok", self.sandwich_ok().to_json()),
        ])
    }
}

/// The empirical-validation report of one kernel spec: measured I/O per
/// sweep point, sandwiched between the certified lower and upper bounds.
/// Produced by [`Analyzer::validate_spec`] / [`Analyzer::validate_kernel`].
#[derive(Debug, Clone, PartialEq)]
#[must_use = "validation verdicts must be inspected, not dropped"]
pub struct ValidationReport {
    /// Canonical spec string of the validated kernel.
    pub spec: String,
    /// `|V|` of the built CDAG.
    pub vertices: usize,
    /// `|E|` of the built CDAG.
    pub edges: usize,
    /// `|I|` of the built CDAG.
    pub inputs: usize,
    /// `|O|` of the built CDAG.
    pub outputs: usize,
    /// One entry per requested `S`, in request order.
    pub points: Vec<ValidationPoint>,
}

impl ValidationReport {
    /// `true` when every feasible point's sandwich verdict is positive
    /// and at least one point was actually measured.
    pub fn sandwich_holds(&self) -> bool {
        let verdicts: Vec<bool> = self.points.iter().filter_map(|p| p.sandwich_ok()).collect();
        !verdicts.is_empty() && verdicts.into_iter().all(|ok| ok)
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "kernel: {}", self.spec)?;
        writeln!(
            f,
            "CDAG: |V| = {}, |E| = {}, |I| = {}, |O| = {}",
            self.vertices, self.edges, self.inputs, self.outputs
        )?;
        writeln!(
            f,
            "sandwich: certified LB <= measured OPT <= measured LRU <= certified UB \
             (RBW executor, same schedule)"
        )?;
        writeln!(
            f,
            "{:<8} {:<13} {:<9} {:<9} {:<13} {:<12} {:<4} schedule",
            "S", "LB(cert)", "OPT(io)", "LRU(io)", "UB(cert)", "UB(analytic)", "ok"
        )?;
        for p in &self.points {
            let fmt_trace = |t: &Option<Trace>| {
                t.as_ref()
                    .map(|t| t.io().to_string())
                    .unwrap_or_else(|| "-".into())
            };
            let ok = match p.sandwich_ok() {
                Some(true) => "yes",
                Some(false) => "NO",
                None => "-",
            };
            let analytic = p
                .analytic_upper
                .map(|v| format!("{v:.1}"))
                .unwrap_or_else(|| "-".into());
            let upper = p
                .certified_upper
                .map(|v| v.to_string())
                .unwrap_or_else(|| "-".into());
            writeln!(
                f,
                "{:<8} {:<13} {:<9} {:<9} {:<13} {:<12} {:<4} {}{}",
                p.sram,
                p.certified_lower,
                fmt_trace(&p.measured_opt),
                fmt_trace(&p.measured_lru),
                upper,
                analytic,
                ok,
                p.schedule_note,
                p.infeasible
                    .as_ref()
                    .map(|r| format!("  [skipped: {r}]"))
                    .unwrap_or_default(),
            )?;
        }
        Ok(())
    }
}

impl Serialize for ValidationReport {
    fn to_json(&self) -> Value {
        Value::object([
            ("spec", self.spec.to_json()),
            ("vertices", self.vertices.to_json()),
            ("edges", self.edges.to_json()),
            ("inputs", self.inputs.to_json()),
            ("outputs", self.outputs.to_json()),
            ("points", self.points.to_json()),
            ("sandwich_holds", self.sandwich_holds().to_json()),
        ])
    }
}

impl Analyzer {
    /// Parses `spec` against the shared catalog [`Registry`], builds the
    /// CDAG once, and validates it empirically at every capacity in
    /// `srams`: the kernel's schedule is simulated under the requested
    /// cache policies and sandwiched between this analyzer's certified
    /// lower bound and the RBW executor's certified upper bound.
    ///
    /// `policy` restricts the measurement (`None` = both policies — the
    /// full sandwich). Sweep points fan out over the analyzer's
    /// configured worker threads; the report is bit-identical at any
    /// thread count.
    ///
    /// ```
    /// use dmc_core::pipeline::Analyzer;
    ///
    /// let report = Analyzer::with_defaults()
    ///     .validate_spec("fft(n=8)", &[3, 6, 12], None)
    ///     .expect("valid spec");
    /// assert_eq!(report.points.len(), 3);
    /// assert!(report.sandwich_holds(), "{report}");
    /// ```
    pub fn validate_spec(
        &self,
        spec: &str,
        srams: &[u64],
        policy: Option<CachePolicy>,
    ) -> Result<ValidationReport, SpecError> {
        Ok(self.validate_kernel(&Registry::shared().parse(spec)?, srams, policy))
    }

    /// [`Analyzer::validate_spec`] for an already-parsed catalog spec.
    ///
    /// # Panics
    ///
    /// Panics if the kernel's
    /// [`schedule_source`](dmc_kernels::catalog::Kernel::schedule_source)
    /// hook emits an order that is not a topological order of its own
    /// CDAG — that is a kernel implementation bug, not an input error.
    pub fn validate_kernel(
        &self,
        spec: &KernelSpec<'_>,
        srams: &[u64],
        policy: Option<CachePolicy>,
    ) -> ValidationReport {
        self.validate_built(spec, &spec.build(), srams, policy)
    }

    /// [`Analyzer::validate_kernel`] against an already-built CDAG. `g`
    /// must be the graph `spec` builds — callers that need the graph up
    /// front (e.g. to derive a default sweep from
    /// [`min_feasible_capacity`]) use this to avoid building it twice.
    pub fn validate_built(
        &self,
        spec: &KernelSpec<'_>,
        g: &Cdag,
        srams: &[u64],
        policy: Option<CachePolicy>,
    ) -> ValidationReport {
        let workers = self.resolved_threads(srams.len());
        let points = fan_out_indexed(srams.len(), workers, Simulation::new, |sim, i| {
            self.validation_point(spec, g, srams[i], policy, sim)
        });
        ValidationReport {
            spec: spec.render(),
            vertices: g.num_vertices(),
            edges: g.num_edges(),
            inputs: g.num_inputs(),
            outputs: g.num_outputs(),
            points,
        }
    }

    fn validation_point(
        &self,
        spec: &KernelSpec<'_>,
        g: &Cdag,
        s: u64,
        policy: Option<CachePolicy>,
        sim: &mut Simulation,
    ) -> ValidationPoint {
        let sched = spec.schedule_source(g, s);
        assert!(
            is_valid_topological_order(g, &sched.order),
            "kernel '{}' emitted a schedule ('{}') that is not a topological order",
            spec.render(),
            sched.note
        );
        // The certified lower bound at this S: the full pipeline, run
        // single-threaded inside the per-point worker (the outer fan-out
        // owns the parallelism; the result is thread-invariant anyway).
        let lower = Analyzer::new(AnalyzerConfig {
            sram: s,
            threads: 1,
            verdicts: false,
            ..self.config().clone()
        })
        .analyze(g)
        .bound;
        let analytic_upper = spec
            .kernel()
            .analytic_upper_bound(spec.values(), s)
            .map(|a| a.value);
        let required = min_feasible_capacity(g);
        let mut point = ValidationPoint {
            sram: s,
            certified_lower: lower.value,
            lower_method: lower.method.to_string(),
            measured_opt: None,
            measured_lru: None,
            certified_upper: None,
            analytic_upper,
            schedule_note: sched.note,
            infeasible: None,
        };
        if (required as u64) > s {
            point.infeasible = Some(format!(
                "S < {required} words (largest in-degree + 1 of the schedule)"
            ));
            return point;
        }
        let want = |p: CachePolicy| policy.is_none() || policy == Some(p);
        if want(CachePolicy::Opt) {
            point.measured_opt = Some(
                sim.run(g, &sched.order, CachePolicy::Opt, s)
                    // dmc-lint: allow(s1) -- feasibility of this S was established by the pre-check above before the schedule replay
                    .expect("feasibility pre-checked"),
            );
        }
        if want(CachePolicy::Lru) {
            point.measured_lru = Some(
                sim.run(g, &sched.order, CachePolicy::Lru, s)
                    // dmc-lint: allow(s1) -- feasibility of this S was established by the pre-check above before the schedule replay
                    .expect("feasibility pre-checked"),
            );
        }
        point.certified_upper = certified_upper_bound(
            g,
            usize::try_from(s).unwrap_or(usize::MAX),
            &sched.order,
            EvictionPolicy::Lru,
        )
        .ok();
        point
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyzer(threads: usize) -> Analyzer {
        Analyzer::new(AnalyzerConfig {
            threads,
            ..AnalyzerConfig::default()
        })
    }

    #[test]
    fn sandwich_holds_on_the_four_schedule_kernels() {
        // Crate-local smoke of the invariant; the canonical shared case
        // table (E15_CASES) lives in dmc-bench, which depends on this
        // crate and so cannot be imported here.
        for (spec, srams) in [
            ("jacobi(n=8,d=1,t=8)", [6u64, 12, 24]),
            ("matmul(n=4)", [4, 8, 16]),
            ("fft(n=8)", [3, 6, 12]),
            ("composite(n=3)", [4, 8, 16]),
        ] {
            let r = analyzer(1).validate_spec(spec, &srams, None).expect(spec);
            assert_eq!(r.points.len(), 3);
            for p in &r.points {
                assert!(p.infeasible.is_none(), "{spec} S={}: {:?}", p.sram, p);
                assert_eq!(p.sandwich_ok(), Some(true), "{spec} S={}: {p:?}", p.sram);
            }
            assert!(r.sandwich_holds());
        }
    }

    #[test]
    fn measured_lru_matches_the_certified_executor_exactly() {
        // The fast arena simulator and the trace-validated game executor
        // are independent implementations of the same LRU semantics —
        // they must agree to the word.
        let registry = Registry::shared();
        for name in ["jacobi", "matmul", "fft", "composite", "ladder", "scan"] {
            let spec = registry.defaults(name).expect("registered");
            let r = analyzer(1).validate_kernel(&spec, &[8, 16, 64], None);
            for p in &r.points {
                if p.infeasible.is_some() {
                    continue;
                }
                assert_eq!(
                    p.measured_lru.as_ref().map(|t| t.io()),
                    p.certified_upper,
                    "{name} @ S={}",
                    p.sram
                );
            }
        }
    }

    #[test]
    fn infeasible_points_are_reported_not_dropped() {
        // jacobi d=2 star stencil: interior in-degree 5 → S must be ≥ 6.
        let r = analyzer(1)
            .validate_spec("jacobi(n=4,d=2,t=2)", &[2, 4, 16], None)
            .expect("valid spec");
        assert_eq!(r.points.len(), 3);
        assert!(r.points[0].infeasible.is_some());
        assert!(r.points[1].infeasible.is_some());
        assert_eq!(r.points[2].sandwich_ok(), Some(true));
        assert!(r.sandwich_holds(), "feasible points still judged");
        let text = r.to_string();
        assert!(text.contains("skipped"), "{text}");
    }

    #[test]
    fn policy_filter_restricts_measurement() {
        let a = analyzer(1);
        let lru_only = a
            .validate_spec("fft(n=8)", &[6], Some(CachePolicy::Lru))
            .expect("valid");
        assert!(lru_only.points[0].measured_opt.is_none());
        assert!(lru_only.points[0].measured_lru.is_some());
        assert_eq!(lru_only.points[0].sandwich_ok(), Some(true));
        let opt_only = a
            .validate_spec("fft(n=8)", &[6], Some(CachePolicy::Opt))
            .expect("valid");
        assert!(opt_only.points[0].measured_opt.is_some());
        assert!(opt_only.points[0].measured_lru.is_none());
    }

    #[test]
    fn report_is_bit_identical_across_thread_counts() {
        let base = analyzer(1)
            .validate_spec("jacobi(n=8,d=1,t=8)", &[6, 8, 12, 16, 24], None)
            .expect("valid");
        for threads in [2usize, 4, 5] {
            let r = analyzer(threads)
                .validate_spec("jacobi(n=8,d=1,t=8)", &[6, 8, 12, 16, 24], None)
                .expect("valid");
            assert_eq!(r, base, "@ {threads} threads");
            assert_eq!(r.to_string(), base.to_string(), "@ {threads} threads");
            assert_eq!(
                serde::json::to_string(&r),
                serde::json::to_string(&base),
                "@ {threads} threads"
            );
        }
    }

    #[test]
    fn bad_spec_is_loud() {
        let err = analyzer(1)
            .validate_spec("warp_drive(n=4)", &[4], None)
            .unwrap_err();
        assert!(err.to_string().contains("unknown kernel"), "{err}");
    }
}
