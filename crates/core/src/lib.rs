//! # dmc-core — pebble games and data-movement lower bounds
//!
//! This crate implements the paper's primary contribution
//! (Elango et al., *On Characterizing the Data Movement Complexity of
//! Computational DAGs for Parallel Execution*, SPAA'14 / Inria RR-8522):
//!
//! * **Pebble games** ([`games`]):
//!   * the classic Hong–Kung red-blue game (Definition 2) with
//!     recomputation,
//!   * the Red-Blue-White game (Definition 4) that forbids recomputation
//!     and supports flexible input/output tagging,
//!   * the Parallel RBW game (Definition 6) over multi-node, multi-level
//!     hierarchies with pebble shades per storage unit,
//!   * validating executors, heuristic players (LRU / Belady eviction) that
//!     produce *upper* bounds, and an exact optimal solver for tiny CDAGs.
//! * **S-partitioning** ([`partition`]): Definitions 3 and 5, the Theorem-1
//!   construction of a 2S-partition from any complete game, and partition
//!   validity certification.
//! * **Lower bounds** ([`bounds`]): Lemma 1 / Corollary 1 (2S-partition),
//!   Lemma 2 (min-cut wavefronts) with an automated anchor-sampling
//!   heuristic, and the decomposition combinators of Theorem 2,
//!   Corollary 2 and Theorem 3.
//! * **Parallel bounds** ([`parallel`]): vertical I/O cost (Theorems 5–6)
//!   and horizontal I/O cost (Theorem 7).
//! * **Machine-balance analysis** ([`analysis`]): Equations 4–10 — turning
//!   bounds + machine specs into bandwidth-bound verdicts (Section 5).
//! * **The unified pipeline** ([`pipeline`]): automatic component
//!   decomposition, a parallel method portfolio per component, Theorem-2
//!   composition, and provenance-tree reports for arbitrary CDAGs.
//! * **Empirical validation** ([`validate`]): catalog kernels executed on
//!   the `dmc-sim` cache simulator along their own schedule hooks, the
//!   measured I/O sandwiched per `S` between the pipeline's certified
//!   lower bound and the RBW executor's certified upper bound.
//! * **Machine validation** ([`machine_validate`]): the same sandwich at
//!   every boundary of a [`dmc_machine::MachineSpec`]'s node hierarchy,
//!   under a deterministic P-processor wavefront split, with Equation-7/8
//!   roofline verdicts per level and for the network.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod bounds;
pub mod games;
pub mod machine_validate;
pub mod parallel;
pub mod partition;
pub mod pipeline;
pub mod validate;

pub use bounds::{IoBound, Method, Provenance};
pub use games::{GameError, GameTrace, Move};
pub use machine_validate::{MachineLevelPoint, MachineValidationReport};
pub use pipeline::{AnalysisReport, Analyzer, AnalyzerConfig};
pub use validate::{ValidationPoint, ValidationReport};
