//! The Hong–Kung red-blue pebble game (Definition 2) — recomputation
//! allowed.
//!
//! This module provides a *validator*: it replays a trace against the rules
//! and reports the I/O cost, so any strategy (hand-written, heuristic or
//! exhaustive) can be certified. The game requires the CDAG to be in
//! Hong–Kung form: every source an input, every sink an output.

use super::{GameError, GameTrace, Move};
use dmc_cdag::{BitSet, Cdag};

/// Replay state of a red-blue game.
#[derive(Debug, Clone)]
pub struct RedBlueState {
    /// Vertices currently holding a red pebble.
    pub red: BitSet,
    /// Vertices currently holding a blue pebble.
    pub blue: BitSet,
    /// Red-pebble budget `S`.
    pub s: usize,
}

impl RedBlueState {
    /// Initial state: blue pebbles on all inputs, no red pebbles.
    pub fn initial(g: &Cdag, s: usize) -> Self {
        RedBlueState {
            red: BitSet::new(g.num_vertices()),
            blue: g.inputs().clone(),
            s,
        }
    }

    /// Applies one move, enforcing rules R1–R4.
    pub fn apply(&mut self, g: &Cdag, mv: Move) -> Result<(), GameError> {
        match mv {
            Move::Load(v) => {
                if !self.blue.contains(v.index()) {
                    return Err(GameError::LoadWithoutBlue(v));
                }
                if !self.red.contains(v.index()) && self.red.len() >= self.s {
                    return Err(GameError::RedBudgetExceeded(v));
                }
                self.red.insert(v.index());
            }
            Move::Store(v) => {
                if !self.red.contains(v.index()) {
                    return Err(GameError::StoreWithoutRed(v));
                }
                self.blue.insert(v.index());
            }
            Move::Compute(v) => {
                if g.is_input(v) {
                    return Err(GameError::ComputeInput(v));
                }
                if !g
                    .predecessors(v)
                    .iter()
                    .all(|p| self.red.contains(p.index()))
                {
                    return Err(GameError::ComputeWithoutPreds(v));
                }
                if !self.red.contains(v.index()) && self.red.len() >= self.s {
                    return Err(GameError::RedBudgetExceeded(v));
                }
                self.red.insert(v.index());
            }
            Move::Delete(v) => {
                if !self.red.remove(v.index()) {
                    return Err(GameError::DeleteWithoutRed(v));
                }
            }
        }
        Ok(())
    }
}

/// Replays `trace` on `g` with `s` red pebbles; returns the I/O count of
/// the complete game, or the first rule violation.
///
/// Completeness check (Definition 2): blue pebbles on all outputs at the
/// end.
pub fn validate(g: &Cdag, s: usize, trace: &GameTrace) -> Result<u64, GameError> {
    let mut st = RedBlueState::initial(g, s);
    for &mv in &trace.moves {
        st.apply(g, mv)?;
    }
    for v in g.vertices() {
        if g.is_output(v) && !st.blue.contains(v.index()) {
            return Err(GameError::OutputNotStored(v));
        }
    }
    Ok(trace.io_count())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmc_cdag::CdagBuilder;
    use dmc_cdag::VertexId;

    fn tiny() -> Cdag {
        // a(in) -> b -> c(out)
        let mut b = CdagBuilder::new();
        let a = b.add_input("a");
        let x = b.add_op("b", &[a]);
        let c = b.add_op("c", &[x]);
        b.tag_output(c);
        b.build().unwrap()
    }

    #[test]
    fn straight_line_game_costs_two() {
        let g = tiny();
        let (a, x, c) = (VertexId(0), VertexId(1), VertexId(2));
        let trace = GameTrace {
            moves: vec![
                Move::Load(a),
                Move::Compute(x),
                Move::Delete(a),
                Move::Compute(c),
                Move::Store(c),
            ],
        };
        assert_eq!(validate(&g, 2, &trace).unwrap(), 2);
    }

    #[test]
    fn budget_enforced() {
        let g = tiny();
        let (a, x) = (VertexId(0), VertexId(1));
        let trace = GameTrace {
            moves: vec![Move::Load(a), Move::Compute(x)],
        };
        assert_eq!(
            validate(&g, 1, &trace).unwrap_err(),
            GameError::RedBudgetExceeded(x)
        );
    }

    #[test]
    fn compute_requires_red_preds() {
        let g = tiny();
        let x = VertexId(1);
        let trace = GameTrace {
            moves: vec![Move::Compute(x)],
        };
        assert_eq!(
            validate(&g, 2, &trace).unwrap_err(),
            GameError::ComputeWithoutPreds(x)
        );
    }

    #[test]
    fn outputs_must_be_stored() {
        let g = tiny();
        let (a, x, c) = (VertexId(0), VertexId(1), VertexId(2));
        let trace = GameTrace {
            moves: vec![
                Move::Load(a),
                Move::Compute(x),
                Move::Delete(a),
                Move::Compute(c),
            ],
        };
        assert_eq!(
            validate(&g, 2, &trace).unwrap_err(),
            GameError::OutputNotStored(c)
        );
    }

    #[test]
    fn recomputation_is_legal_in_hong_kung() {
        // Fire b, drop it, fire it again — allowed here (unlike RBW).
        let g = tiny();
        let (a, x, c) = (VertexId(0), VertexId(1), VertexId(2));
        let trace = GameTrace {
            moves: vec![
                Move::Load(a),
                Move::Compute(x),
                Move::Delete(x),
                Move::Compute(x),
                Move::Delete(a),
                Move::Compute(c),
                Move::Store(c),
            ],
        };
        assert_eq!(validate(&g, 2, &trace).unwrap(), 2);
    }

    #[test]
    fn load_requires_blue() {
        let g = tiny();
        let x = VertexId(1);
        let trace = GameTrace {
            moves: vec![Move::Load(x)],
        };
        assert_eq!(
            validate(&g, 2, &trace).unwrap_err(),
            GameError::LoadWithoutBlue(x)
        );
    }

    #[test]
    fn inputs_cannot_be_computed() {
        let g = tiny();
        let a = VertexId(0);
        let trace = GameTrace {
            moves: vec![Move::Compute(a)],
        };
        assert_eq!(
            validate(&g, 2, &trace).unwrap_err(),
            GameError::ComputeInput(a)
        );
    }
}
