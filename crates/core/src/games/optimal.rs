//! Exact optimal-I/O search for tiny CDAGs.
//!
//! Dijkstra over pebbling configurations: I/O moves (R1/R2) cost 1,
//! compute/delete moves cost 0. States pack the red/blue/white sets into
//! `u64` bitmasks, so graphs up to 24-ish vertices are tractable for small
//! budgets. This is the ground truth the test suite validates every lower
//! bound (and heuristic upper bound) against:
//! `LB ≤ optimal ≤ heuristic` on every instance.

use dmc_cdag::Cdag;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

const MAX_N: usize = 24;

/// Which game's rules to search under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GameKind {
    /// Hong–Kung red-blue (recomputation allowed).
    HongKung,
    /// Red-Blue-White (no recomputation).
    Rbw,
}

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct State {
    red: u32,
    blue: u32,
    /// Fired set (white pebbles). Under Hong–Kung rules this tracks
    /// "has ever been computed" purely to know when outputs are real; it
    /// does not restrict recomputation.
    white: u32,
}

/// Computes the exact minimum I/O of a complete game on `g` with `s` red
/// pebbles. Returns `None` if the instance exceeds the solver's size limit
/// or no complete game exists for this budget (e.g. `s < in_degree + 1`).
pub fn optimal_io(g: &Cdag, s: usize, kind: GameKind) -> Option<u64> {
    let n = g.num_vertices();
    if n > MAX_N || n == 0 {
        return None;
    }
    let all: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    let inputs: u32 = g
        .vertices()
        .filter(|&v| g.is_input(v))
        .fold(0, |m, v| m | (1 << v.0));
    let outputs: u32 = g
        .vertices()
        .filter(|&v| g.is_output(v))
        .fold(0, |m, v| m | (1 << v.0));
    let preds: Vec<u32> = g
        .vertices()
        .map(|v| g.predecessors(v).iter().fold(0u32, |m, p| m | (1 << p.0)))
        .collect();

    let start = State {
        red: 0,
        blue: inputs,
        white: 0,
    };
    let goal = |st: &State| -> bool {
        // Complete: all outputs blue; RBW additionally requires all fired.
        (st.blue & outputs) == outputs
            && match kind {
                GameKind::Rbw => st.white == all,
                GameKind::HongKung => {
                    // Hong–Kung completeness: blue on outputs suffices;
                    // but a blue output can only arise from a store of a
                    // computed red, which `white` tracks. All other
                    // vertices need not fire.
                    true
                }
            }
    };

    // BTreeMap keyed by the packed (red, blue, white) state: lookup-only
    // here, but a sorted map keeps the search structure free of hash
    // iteration order by construction (lint rule D1) — the state spaces
    // this exact solver accepts (≤ 24 vertices) never notice the log.
    let mut dist: BTreeMap<State, u64> = BTreeMap::new();
    let mut heap: BinaryHeap<Reverse<(u64, u32, u32, u32)>> = BinaryHeap::new();
    dist.insert(start, 0);
    heap.push(Reverse((0, start.red, start.blue, start.white)));

    while let Some(Reverse((d, red, blue, white))) = heap.pop() {
        let st = State { red, blue, white };
        if dist.get(&st).copied() != Some(d) {
            continue; // stale entry
        }
        if goal(&st) {
            return Some(d);
        }
        let red_count = red.count_ones() as usize;
        let push = |nst: State,
                    nd: u64,
                    dist: &mut BTreeMap<State, u64>,
                    heap: &mut BinaryHeap<Reverse<(u64, u32, u32, u32)>>| {
            let best = dist.entry(nst).or_insert(u64::MAX);
            if nd < *best {
                *best = nd;
                heap.push(Reverse((nd, nst.red, nst.blue, nst.white)));
            }
        };

        for v in 0..n as u32 {
            let bit = 1u32 << v;
            // R3 compute.
            let computable = (inputs & bit) == 0
                && (preds[v as usize] & red) == preds[v as usize]
                && (red & bit == 0)
                && red_count < s
                && match kind {
                    GameKind::Rbw => white & bit == 0,
                    GameKind::HongKung => true,
                };
            if computable {
                push(
                    State {
                        red: red | bit,
                        blue,
                        white: white | bit,
                    },
                    d,
                    &mut dist,
                    &mut heap,
                );
            }
            // R1 load.
            if blue & bit != 0 && red & bit == 0 && red_count < s {
                push(
                    State {
                        red: red | bit,
                        blue,
                        white: white | bit,
                    },
                    d + 1,
                    &mut dist,
                    &mut heap,
                );
            }
            // R2 store.
            if red & bit != 0 && blue & bit == 0 {
                push(
                    State {
                        red,
                        blue: blue | bit,
                        white,
                    },
                    d + 1,
                    &mut dist,
                    &mut heap,
                );
            }
            // R4 delete.
            if red & bit != 0 {
                push(
                    State {
                        red: red & !bit,
                        blue,
                        white,
                    },
                    d,
                    &mut dist,
                    &mut heap,
                );
            }
        }
    }
    None
}

/// The exact minimum number of red pebbles for which *any* complete RBW
/// game exists with zero spill I/O beyond the mandatory input loads and
/// output stores — found by binary search over `optimal_io`.
pub fn min_pebbles_for_baseline_io(g: &Cdag, s_max: usize) -> Option<usize> {
    let baseline = (g.num_inputs() + g.num_outputs()) as u64;
    let mut lo = 1usize;
    let mut hi = s_max;
    let mut ans = None;
    while lo <= hi {
        let mid = (lo + hi) / 2;
        match optimal_io(g, mid, GameKind::Rbw) {
            Some(io) if io <= baseline => {
                ans = Some(mid);
                if mid == 0 {
                    break;
                }
                hi = mid - 1;
            }
            _ => lo = mid + 1,
        }
    }
    ans
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmc_cdag::CdagBuilder;
    use dmc_kernels::chains;

    #[test]
    fn chain_optimum_is_two() {
        let g = chains::chain(6);
        assert_eq!(optimal_io(&g, 2, GameKind::Rbw), Some(2));
        assert_eq!(optimal_io(&g, 2, GameKind::HongKung), Some(2));
    }

    #[test]
    fn diamond_optimum() {
        let g = chains::diamond();
        assert_eq!(optimal_io(&g, 3, GameKind::Rbw), Some(2));
        // S = 2 forces spills of b or c under RBW (d needs both red).
        let rbw2 = optimal_io(&g, 2, GameKind::Rbw);
        assert!(rbw2.is_none() || rbw2.unwrap() > 2);
    }

    #[test]
    fn hong_kung_never_worse_than_rbw() {
        // Recomputation can only help.
        for g in [
            chains::diamond(),
            chains::two_stage(3),
            chains::ladder(3, 3),
        ] {
            for s in 3..=5 {
                let hk = optimal_io(&g, s, GameKind::HongKung);
                let rbw = optimal_io(&g, s, GameKind::Rbw);
                if let (Some(hk), Some(rbw)) = (hk, rbw) {
                    assert!(hk <= rbw, "S={s}: HK {hk} > RBW {rbw}");
                }
            }
        }
    }

    #[test]
    fn more_pebbles_never_hurt() {
        let g = chains::ladder(3, 3);
        let mut prev = u64::MAX;
        for s in 3..=7 {
            if let Some(io) = optimal_io(&g, s, GameKind::Rbw) {
                assert!(io <= prev);
                prev = io;
            }
        }
    }

    #[test]
    fn optimum_meets_baseline_with_enough_pebbles() {
        // With S >= peak wavefront, I/O = |I| + |O| exactly.
        let g = chains::binary_reduction(4);
        let io = optimal_io(&g, 7, GameKind::Rbw).unwrap();
        assert_eq!(io, 4 + 1);
    }

    #[test]
    fn min_pebbles_search() {
        let g = chains::diamond();
        // Needs 3 pebbles to avoid spilling (d has in-degree 2).
        assert_eq!(min_pebbles_for_baseline_io(&g, 6), Some(3));
    }

    #[test]
    fn untagged_source_needs_no_load() {
        let mut b = CdagBuilder::new();
        let f = b.add_vertex("free");
        let z = b.add_op("z", &[f]);
        b.tag_output(z);
        let g = b.build().unwrap();
        // Only the output store costs I/O.
        assert_eq!(optimal_io(&g, 2, GameKind::Rbw), Some(1));
    }

    #[test]
    fn oversized_graphs_refused() {
        let g = dmc_kernels::matmul::matmul(3);
        assert!(optimal_io(&g, 4, GameKind::Rbw).is_none());
    }

    #[test]
    fn recomputation_beats_rbw_on_fanout_under_pressure() {
        // One free source feeding two chains: HK can recompute the source,
        // RBW must spill it. two_stage(2): f -> {a, b} -> g.
        let mut bd = CdagBuilder::new();
        let f = bd.add_vertex("f");
        let a = bd.add_op("a", &[f]);
        let b2 = bd.add_op("b", &[f]);
        let z = bd.add_op("z", &[a, b2]);
        bd.tag_output(z);
        let g = bd.build().unwrap();
        let hk = optimal_io(&g, 3, GameKind::HongKung).unwrap();
        let rbw = optimal_io(&g, 3, GameKind::Rbw).unwrap();
        assert!(hk <= rbw);
        assert_eq!(hk, 1, "HK: store z only");
    }
}
