//! The Parallel Red-Blue-White pebble game (Definition 6).
//!
//! Pebbles come in *shades*: one shade per storage unit per level of a
//! [`MemoryHierarchy`]. Shade `(l, j)` has `S_l` pebbles available. The
//! rules (R1–R7) move values down the hierarchy toward processors
//! (R4 "move up" in the paper's toward-level-1 sense), write them back
//! (R5 "move down"), transfer between nodes (R3 remote get) and to/from
//! the unbounded blue store (R1/R2).
//!
//! The validator replays a [`PrbwTrace`] and produces [`PrbwStats`]:
//! per-unit vertical traffic (R4 reads out of a unit + R5 writebacks into
//! it) and per-node horizontal traffic (R3 remote gets), which the
//! parallel bounds of Theorems 5–7 are checked against.

use dmc_cdag::{BitSet, Cdag, VertexId};
use dmc_machine::MemoryHierarchy;
use std::collections::BTreeMap;

/// A storage unit: level (1-based, as in the paper) and unit index within
/// the level (`0 .. N_l`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Unit {
    /// 1-based hierarchy level.
    pub level: usize,
    /// Unit index within the level.
    pub index: usize,
}

impl Unit {
    /// Creates a unit handle.
    pub fn new(level: usize, index: usize) -> Self {
        Unit { level, index }
    }
}

/// One move of the parallel game (rule numbers from Definition 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrbwMove {
    /// R1 — load: place a level-L pebble of `unit` on a blue vertex.
    Input {
        /// Target vertex.
        v: VertexId,
        /// Level-L unit receiving the value.
        unit: usize,
    },
    /// R2 — store: place a blue pebble on a vertex holding a level-L
    /// pebble of `unit`.
    Output {
        /// Target vertex.
        v: VertexId,
        /// Level-L unit sourcing the value.
        unit: usize,
    },
    /// R3 — remote get: copy a value between two level-L units.
    RemoteGet {
        /// Target vertex.
        v: VertexId,
        /// Receiving level-L unit.
        to: usize,
        /// Sending level-L unit (must already hold the value).
        from: usize,
    },
    /// R4 — move up (toward the processor): place a level-`l` pebble on a
    /// vertex holding a level-`l+1` pebble of the parent unit.
    MoveUp {
        /// Target vertex.
        v: VertexId,
        /// Receiving unit (level < L).
        to: Unit,
    },
    /// R5 — move down (away from the processor): place a level-`l` pebble
    /// on a vertex holding a level-`l−1` pebble of a child unit.
    MoveDown {
        /// Target vertex.
        v: VertexId,
        /// Receiving unit (level > 1).
        to: Unit,
    },
    /// R6 — compute: fire `v` on processor `proc` (all predecessors must
    /// hold level-1 pebbles of `proc`).
    Compute {
        /// Fired vertex.
        v: VertexId,
        /// Executing processor (level-1 unit index).
        proc: usize,
    },
    /// R7 — delete a pebble of the given shade.
    Delete {
        /// Target vertex.
        v: VertexId,
        /// Shade to remove.
        unit: Unit,
    },
}

/// A complete recorded parallel game.
#[derive(Debug, Clone, Default)]
pub struct PrbwTrace {
    /// Moves in play order.
    pub moves: Vec<PrbwMove>,
}

/// Violations of the parallel rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrbwError {
    /// A unit index is out of range for its level.
    BadUnit(Unit),
    /// R1 on a vertex without a blue pebble.
    LoadWithoutBlue(VertexId),
    /// R2/R3 source unit does not hold the value.
    MissingSourcePebble(VertexId, Unit),
    /// R4/R5 with a source unit that is not a child/parent of the target.
    NotRelated {
        /// Move target vertex.
        v: VertexId,
        /// The receiving unit.
        to: Unit,
    },
    /// Shade capacity `S_l` exceeded.
    CapacityExceeded(Unit),
    /// R6 with some predecessor lacking a level-1 pebble of the processor.
    ComputeWithoutPreds(VertexId, usize),
    /// R6 on an already-fired vertex.
    Recompute(VertexId),
    /// R6 on an input vertex.
    ComputeInput(VertexId),
    /// R7 on a shade the vertex does not hold.
    DeleteMissing(VertexId, Unit),
    /// Completion: some vertex never fired.
    Unfired(VertexId),
    /// Completion: some output lacks a blue pebble.
    OutputNotStored(VertexId),
}

/// Traffic statistics of a validated parallel game.
///
/// Counters are `BTreeMap`s, not `HashMap`s: the maps are iterated when
/// totals and maxima are folded into reports, and a sorted structure
/// keeps that fold order — and therefore every downstream report —
/// deterministic (lint rule D1).
#[derive(Debug, Clone, Default)]
pub struct PrbwStats {
    /// R1 loads per level-L unit.
    pub loads: BTreeMap<usize, u64>,
    /// R2 stores per level-L unit.
    pub stores: BTreeMap<usize, u64>,
    /// R3 remote gets received per level-L unit.
    pub remote_gets: BTreeMap<usize, u64>,
    /// R4 transitions *sourced from* each unit (reads toward processors).
    pub reads_from: BTreeMap<Unit, u64>,
    /// R5 transitions *into* each unit (writebacks).
    pub writebacks_into: BTreeMap<Unit, u64>,
    /// R6 computes per processor.
    pub computes: BTreeMap<usize, u64>,
}

impl PrbwStats {
    /// Vertical traffic at `unit`: R4 reads out of it plus R5 writebacks
    /// into it (words crossing the unit↔children link).
    pub fn vertical_traffic(&self, unit: Unit) -> u64 {
        self.reads_from.get(&unit).copied().unwrap_or(0)
            + self.writebacks_into.get(&unit).copied().unwrap_or(0)
    }

    /// Maximum vertical traffic over all units at `level` (the paper's
    /// "storage with the maximum number of transitions").
    pub fn max_vertical_traffic_at_level(&self, level: usize, units: usize) -> u64 {
        (0..units)
            .map(|i| self.vertical_traffic(Unit::new(level, i)))
            .max()
            .unwrap_or(0)
    }

    /// Horizontal traffic received by level-L unit `i`.
    pub fn horizontal_traffic(&self, i: usize) -> u64 {
        self.remote_gets.get(&i).copied().unwrap_or(0)
    }

    /// Total remote gets across all nodes.
    pub fn total_horizontal(&self) -> u64 {
        self.remote_gets.values().sum()
    }

    /// Computes performed by the busiest processor.
    pub fn max_computes(&self) -> u64 {
        self.computes.values().copied().max().unwrap_or(0)
    }
}

/// Replay state of the parallel game.
pub struct PrbwState<'a> {
    g: &'a Cdag,
    h: &'a MemoryHierarchy,
    /// `pebbles[v]` — shades currently on vertex `v`.
    pebbles: Vec<Vec<Unit>>,
    /// Occupancy per shade (sorted for deterministic replay state).
    occupancy: BTreeMap<Unit, u64>,
    blue: BitSet,
    white: BitSet,
    stats: PrbwStats,
}

impl<'a> PrbwState<'a> {
    /// Initial state: blue on inputs, no red pebbles anywhere.
    pub fn initial(g: &'a Cdag, h: &'a MemoryHierarchy) -> Self {
        PrbwState {
            g,
            h,
            pebbles: vec![Vec::new(); g.num_vertices()],
            occupancy: BTreeMap::new(),
            blue: g.inputs().clone(),
            white: BitSet::new(g.num_vertices()),
            stats: PrbwStats::default(),
        }
    }

    fn check_unit(&self, u: Unit) -> Result<(), PrbwError> {
        if u.level < 1 || u.level > self.h.num_levels() || u.index >= self.h.units(u.level) {
            return Err(PrbwError::BadUnit(u));
        }
        Ok(())
    }

    fn has(&self, v: VertexId, u: Unit) -> bool {
        self.pebbles[v.index()].contains(&u)
    }

    /// Parent unit of `u` at level `u.level + 1`.
    fn parent(&self, u: Unit) -> Unit {
        let fanout = self.h.units(u.level) / self.h.units(u.level + 1);
        Unit::new(u.level + 1, u.index / fanout)
    }

    fn place(&mut self, v: VertexId, u: Unit) -> Result<(), PrbwError> {
        if self.has(v, u) {
            return Ok(()); // idempotent
        }
        let occ = self.occupancy.entry(u).or_insert(0);
        if *occ >= self.h.capacity(u.level) {
            return Err(PrbwError::CapacityExceeded(u));
        }
        *occ += 1;
        self.pebbles[v.index()].push(u);
        Ok(())
    }

    /// Applies one move, enforcing rules R1–R7.
    pub fn apply(&mut self, mv: PrbwMove) -> Result<(), PrbwError> {
        let top = self.h.num_levels();
        match mv {
            PrbwMove::Input { v, unit } => {
                let u = Unit::new(top, unit);
                self.check_unit(u)?;
                if !self.blue.contains(v.index()) {
                    return Err(PrbwError::LoadWithoutBlue(v));
                }
                self.place(v, u)?;
                self.white.insert(v.index());
                *self.stats.loads.entry(unit).or_insert(0) += 1;
            }
            PrbwMove::Output { v, unit } => {
                let u = Unit::new(top, unit);
                self.check_unit(u)?;
                if !self.has(v, u) {
                    return Err(PrbwError::MissingSourcePebble(v, u));
                }
                self.blue.insert(v.index());
                *self.stats.stores.entry(unit).or_insert(0) += 1;
            }
            PrbwMove::RemoteGet { v, to, from } => {
                let (ut, uf) = (Unit::new(top, to), Unit::new(top, from));
                self.check_unit(ut)?;
                self.check_unit(uf)?;
                if !self.has(v, uf) {
                    return Err(PrbwError::MissingSourcePebble(v, uf));
                }
                self.place(v, ut)?;
                *self.stats.remote_gets.entry(to).or_insert(0) += 1;
            }
            PrbwMove::MoveUp { v, to } => {
                self.check_unit(to)?;
                if to.level >= top {
                    return Err(PrbwError::NotRelated { v, to });
                }
                let parent = self.parent(to);
                if !self.has(v, parent) {
                    return Err(PrbwError::NotRelated { v, to });
                }
                self.place(v, to)?;
                *self.stats.reads_from.entry(parent).or_insert(0) += 1;
            }
            PrbwMove::MoveDown { v, to } => {
                self.check_unit(to)?;
                if to.level <= 1 {
                    return Err(PrbwError::NotRelated { v, to });
                }
                // Some child of `to` must hold the value.
                let child = self.pebbles[v.index()]
                    .iter()
                    .copied()
                    .find(|u| u.level == to.level - 1 && self.parent(*u) == to);
                if child.is_none() {
                    return Err(PrbwError::NotRelated { v, to });
                }
                self.place(v, to)?;
                *self.stats.writebacks_into.entry(to).or_insert(0) += 1;
            }
            PrbwMove::Compute { v, proc } => {
                let u1 = Unit::new(1, proc);
                self.check_unit(u1)?;
                if self.g.is_input(v) {
                    return Err(PrbwError::ComputeInput(v));
                }
                if self.white.contains(v.index()) {
                    return Err(PrbwError::Recompute(v));
                }
                for &p in self.g.predecessors(v) {
                    if !self.has(p, u1) {
                        return Err(PrbwError::ComputeWithoutPreds(v, proc));
                    }
                }
                self.place(v, u1)?;
                self.white.insert(v.index());
                *self.stats.computes.entry(proc).or_insert(0) += 1;
            }
            PrbwMove::Delete { v, unit } => {
                self.check_unit(unit)?;
                let list = &mut self.pebbles[v.index()];
                match list.iter().position(|&u| u == unit) {
                    Some(i) => {
                        list.swap_remove(i);
                        // dmc-lint: allow(s1) -- a pebble being deleted was placed earlier, so its shade has nonzero occupancy; enforced by the place/delete pairing
                        *self.occupancy.get_mut(&unit).expect("occupied") -= 1;
                    }
                    None => return Err(PrbwError::DeleteMissing(v, unit)),
                }
            }
        }
        Ok(())
    }

    /// Completion check: white everywhere, blue on outputs.
    pub fn check_complete(&self) -> Result<(), PrbwError> {
        for v in self.g.vertices() {
            if !self.white.contains(v.index()) {
                return Err(PrbwError::Unfired(v));
            }
        }
        for v in self.g.vertices() {
            if self.g.is_output(v) && !self.blue.contains(v.index()) {
                return Err(PrbwError::OutputNotStored(v));
            }
        }
        Ok(())
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> &PrbwStats {
        &self.stats
    }
}

/// Replays a parallel trace; returns the traffic statistics of the
/// complete game or the first violation.
pub fn validate(g: &Cdag, h: &MemoryHierarchy, trace: &PrbwTrace) -> Result<PrbwStats, PrbwError> {
    let mut st = PrbwState::initial(g, h);
    for &mv in &trace.moves {
        st.apply(mv)?;
    }
    st.check_complete()?;
    Ok(st.stats.clone())
}

/// A simple owner-computes parallel executor for a hierarchy whose level-1
/// units are per-processor stores and whose top level is per-node memory.
///
/// `owner[v]` assigns each vertex to a processor. Vertices are fired in
/// the given topological order; each firing pulls predecessors down to the
/// owner's level-1 unit (via remote gets when the value lives on another
/// node, counted per Theorem 7), and written values are pushed back up so
/// they survive level-1 eviction (everything is written back eagerly —
/// this is an *upper-bound* strategy, not an optimal one).
pub fn execute_owner_computes(
    g: &Cdag,
    h: &MemoryHierarchy,
    order: &[VertexId],
    owner: &[usize],
) -> Result<PrbwStats, PrbwError> {
    assert_eq!(owner.len(), g.num_vertices());
    let top = h.num_levels();
    let procs_per_node = h.processors() / h.units(top);
    let node_of = |proc: usize| proc / procs_per_node;
    let mut trace = PrbwTrace::default();
    // home[v]: the level-L unit currently holding v's value (after
    // writeback), or usize::MAX if not yet materialized at level L.
    let mut home = vec![usize::MAX; g.num_vertices()];
    // Values resident in each processor's level-1 unit, FIFO for eviction.
    let mut resident: Vec<Vec<VertexId>> = vec![Vec::new(); h.processors()];
    let s1 = h.capacity(1) as usize;

    for &v in order {
        let p = owner[v.index()];
        let node = node_of(p);
        let pull_budget_users = g.in_degree(v) + 1;
        assert!(
            pull_budget_users <= s1,
            "level-1 capacity too small for in-degree of {v}"
        );
        // Evict until preds + v fit (write-backs already done eagerly).
        let preds: Vec<VertexId> = g.predecessors(v).to_vec();
        let mut evictable: Vec<VertexId> = resident[p]
            .iter()
            .copied()
            .filter(|u| !preds.contains(u) && *u != v)
            .collect();
        let mut free = s1 - resident[p].len();
        let need: usize = preds.iter().filter(|q| !resident[p].contains(q)).count()
            + usize::from(!resident[p].contains(&v));
        while free < need {
            // dmc-lint: allow(s1) -- the capacity assert above guarantees enough evictable residents to reach `need`
            let victim = evictable.pop().expect("capacity checked above");
            trace.moves.push(PrbwMove::Delete {
                v: victim,
                unit: Unit::new(1, p),
            });
            let pos = resident[p]
                .iter()
                .position(|&x| x == victim)
                // dmc-lint: allow(s1) -- victim was drawn from resident[p] by the filter above; absence is a bookkeeping bug
                .expect("resident");
            resident[p].swap_remove(pos);
            free += 1;
        }
        // Pull predecessors to (1, p).
        for &q in &preds {
            if resident[p].contains(&q) {
                continue;
            }
            // Materialize at level L on this node.
            if home[q.index()] == usize::MAX {
                // Must be an input: load from blue.
                trace.moves.push(PrbwMove::Input { v: q, unit: node });
                home[q.index()] = node;
            } else if home[q.index()] != node {
                trace.moves.push(PrbwMove::RemoteGet {
                    v: q,
                    to: node,
                    from: home[q.index()],
                });
            }
            // Walk the value down the hierarchy: level L-1 .. 1.
            push_down_path(&mut trace, h, q, p, node);
            resident[p].push(q);
        }
        // Fire v.
        if g.is_input(v) {
            if home[v.index()] == usize::MAX {
                trace.moves.push(PrbwMove::Input { v, unit: node });
                home[v.index()] = node;
            } else if home[v.index()] != node {
                trace.moves.push(PrbwMove::RemoteGet {
                    v,
                    to: node,
                    from: home[v.index()],
                });
            }
            push_down_path(&mut trace, h, v, p, node);
        } else {
            trace.moves.push(PrbwMove::Compute { v, proc: p });
            // Eagerly write back up the hierarchy to level L.
            push_up_path(&mut trace, h, v, p);
            home[v.index()] = node;
        }
        if !resident[p].contains(&v) {
            resident[p].push(v);
        }
        if g.is_output(v) {
            trace.moves.push(PrbwMove::Output { v, unit: node });
        }
    }
    validate(g, h, &trace)
}

/// Emits MoveUp moves materializing `v` from node memory down to processor
/// `p`'s level-1 unit. Intermediate-level pebbles (levels `2..L`) are
/// pass-through: placed then immediately deleted, so only the per-level
/// *traffic* is accounted, not persistent occupancy.
fn push_down_path(trace: &mut PrbwTrace, h: &MemoryHierarchy, v: VertexId, p: usize, _node: usize) {
    // Unit indices along the path from level L down to level 1 follow the
    // processor's ancestry.
    for level in (1..h.num_levels()).rev() {
        let unit = p / (h.processors() / h.units(level));
        trace.moves.push(PrbwMove::MoveUp {
            v,
            to: Unit::new(level, unit),
        });
    }
    for level in 2..h.num_levels() {
        let unit = p / (h.processors() / h.units(level));
        trace.moves.push(PrbwMove::Delete {
            v,
            unit: Unit::new(level, unit),
        });
    }
}

/// Emits MoveDown moves writing `v` back from processor `p` to level L,
/// deleting the transient intermediate-level copies afterwards.
fn push_up_path(trace: &mut PrbwTrace, h: &MemoryHierarchy, v: VertexId, p: usize) {
    for level in 2..=h.num_levels() {
        let unit = p / (h.processors() / h.units(level));
        trace.moves.push(PrbwMove::MoveDown {
            v,
            to: Unit::new(level, unit),
        });
    }
    for level in 2..h.num_levels() {
        let unit = p / (h.processors() / h.units(level));
        trace.moves.push(PrbwMove::Delete {
            v,
            unit: Unit::new(level, unit),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmc_cdag::topo::topological_order;
    use dmc_kernels::chains;
    use dmc_machine::MemoryHierarchy;

    fn small_machine() -> MemoryHierarchy {
        // 2 nodes × 2 procs; 8 words per proc at level 1; big node memory.
        MemoryHierarchy::new(vec![
            dmc_machine::Level::new("regs", 4, 8),
            dmc_machine::Level::new("mem", 2, 1 << 20),
        ])
        .unwrap()
    }

    #[test]
    fn sequential_style_game_validates() {
        let g = chains::chain(4);
        let h = small_machine();
        let order = topological_order(&g);
        let owner = vec![0usize; g.num_vertices()];
        let stats = execute_owner_computes(&g, &h, &order, &owner).unwrap();
        // All on one processor: no remote gets.
        assert_eq!(stats.total_horizontal(), 0);
        assert_eq!(stats.computes.get(&0).copied().unwrap_or(0), 3);
    }

    #[test]
    fn cross_node_dependences_cost_remote_gets() {
        let g = chains::chain(4);
        let h = small_machine();
        let order = topological_order(&g);
        // Alternate ownership between processors on *different* nodes
        // (procs 0 and 2 live on nodes 0 and 1).
        let owner: Vec<usize> = (0..g.num_vertices()).map(|i| (i % 2) * 2).collect();
        let stats = execute_owner_computes(&g, &h, &order, &owner).unwrap();
        // Every chain edge crosses nodes: 3 remote gets.
        assert_eq!(stats.total_horizontal(), 3);
    }

    #[test]
    fn same_node_sharing_is_free_horizontally() {
        let g = chains::chain(4);
        let h = small_machine();
        let order = topological_order(&g);
        // Procs 0 and 1 share node 0.
        let owner: Vec<usize> = (0..g.num_vertices()).map(|i| i % 2).collect();
        let stats = execute_owner_computes(&g, &h, &order, &owner).unwrap();
        assert_eq!(stats.total_horizontal(), 0);
    }

    #[test]
    fn capacity_violation_detected() {
        let g = chains::chain(3);
        let h = MemoryHierarchy::new(vec![
            dmc_machine::Level::new("regs", 1, 1),
            dmc_machine::Level::new("mem", 1, 100),
        ])
        .unwrap();
        let mut st = PrbwState::initial(&g, &h);
        st.apply(PrbwMove::Input {
            v: VertexId(0),
            unit: 0,
        })
        .unwrap();
        st.apply(PrbwMove::MoveUp {
            v: VertexId(0),
            to: Unit::new(1, 0),
        })
        .unwrap();
        // Second value cannot fit at level 1 (capacity 1).
        st.apply(PrbwMove::Compute {
            v: VertexId(1),
            proc: 0,
        })
        .map(|_| ())
        .unwrap_err();
    }

    #[test]
    fn remote_get_requires_source_pebble() {
        let g = chains::chain(2);
        let h = small_machine();
        let mut st = PrbwState::initial(&g, &h);
        let err = st
            .apply(PrbwMove::RemoteGet {
                v: VertexId(0),
                to: 1,
                from: 0,
            })
            .unwrap_err();
        assert!(matches!(err, PrbwError::MissingSourcePebble(_, _)));
    }

    #[test]
    fn compute_needs_level1_preds_of_same_proc() {
        let g = chains::chain(2);
        let h = small_machine();
        let mut st = PrbwState::initial(&g, &h);
        st.apply(PrbwMove::Input {
            v: VertexId(0),
            unit: 0,
        })
        .unwrap();
        // Value at level L only — not at level 1 of proc 0.
        let err = st
            .apply(PrbwMove::Compute {
                v: VertexId(1),
                proc: 0,
            })
            .unwrap_err();
        assert_eq!(err, PrbwError::ComputeWithoutPreds(VertexId(1), 0));
    }

    #[test]
    fn vertical_traffic_accounted_per_unit() {
        let g = chains::chain(4);
        let h = small_machine();
        let order = topological_order(&g);
        let owner = vec![0usize; g.num_vertices()];
        let stats = execute_owner_computes(&g, &h, &order, &owner).unwrap();
        // All traffic flows through node 0's memory unit.
        let u = Unit::new(2, 0);
        assert!(stats.vertical_traffic(u) > 0);
        assert_eq!(stats.vertical_traffic(Unit::new(2, 1)), 0);
        assert_eq!(
            stats.max_vertical_traffic_at_level(2, 2),
            stats.vertical_traffic(u)
        );
    }

    /// Regression for the stats HashMap→BTreeMap conversion (lint rule
    /// D1): counter iteration yields keys in sorted order and replaying
    /// the same trace reproduces byte-identical stats.
    #[test]
    fn stats_iterate_in_sorted_key_order() {
        let g = chains::ladder(4, 4);
        let h = small_machine();
        let order = topological_order(&g);
        let owner: Vec<usize> = (0..g.num_vertices()).map(|i| (i / 4) % 4).collect();
        let a = execute_owner_computes(&g, &h, &order, &owner).unwrap();
        let b = execute_owner_computes(&g, &h, &order, &owner).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let procs: Vec<usize> = a.computes.keys().copied().collect();
        let mut sorted = procs.clone();
        sorted.sort_unstable();
        assert_eq!(procs, sorted, "computes must iterate in proc order");
        let units: Vec<Unit> = a.reads_from.keys().copied().collect();
        let mut sorted = units.clone();
        sorted.sort();
        assert_eq!(units, sorted, "reads_from must iterate in unit order");
    }

    #[test]
    fn stats_on_ladder_with_four_procs() {
        let g = chains::ladder(4, 4);
        let h = small_machine();
        let order = topological_order(&g);
        // Stripe rows across all 4 processors.
        let owner: Vec<usize> = (0..g.num_vertices()).map(|i| (i / 4) % 4).collect();
        let stats = execute_owner_computes(&g, &h, &order, &owner).unwrap();
        let total_computes: u64 = stats.computes.values().sum();
        assert_eq!(total_computes, g.num_compute_vertices() as u64);
        assert!(stats.max_computes() >= total_computes / 4);
    }
}
