//! Heuristic game players: given a CDAG, a red-pebble budget and a
//! topological schedule, produce a *valid* RBW game trace — hence a
//! certified **upper bound** on I/O for that budget.
//!
//! The player fires vertices in schedule order. Before firing `v` it makes
//! every predecessor red (reloading spilled values from blue), then
//! allocates a red pebble for `v`, evicting victims chosen by the
//! [`EvictionPolicy`]. Evicting a live value (one with remaining unfired
//! consumers, or an unsaved output) forces a store first — the RBW game
//! cannot recompute.
//!
//! Policies:
//! * [`EvictionPolicy::Lru`] — least recently used;
//! * [`EvictionPolicy::Belady`] — furthest next use in the given schedule
//!   (the offline-optimal *replacement* rule — note this does not make the
//!   whole game optimal, only the eviction decisions for the fixed order);
//! * [`EvictionPolicy::Fifo`] — oldest resident first.

use super::{GameError, GameTrace, Move};
use dmc_cdag::topo::is_valid_topological_order;
use dmc_cdag::{Cdag, VertexId};

/// Victim-selection rule for the executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Evict the least-recently-used red pebble.
    Lru,
    /// Evict the red pebble whose next use in the schedule is furthest
    /// away (Belady/MIN).
    Belady,
    /// Evict the red pebble resident the longest.
    Fifo,
}

/// Outcome of a heuristic game.
#[derive(Debug, Clone)]
pub struct ExecutedGame {
    /// The produced (valid) trace.
    pub trace: GameTrace,
    /// I/O cost `q` of the trace.
    pub io: u64,
    /// Number of forced spill-stores (stores other than final outputs).
    pub spill_stores: u64,
}

/// Errors from the executor itself (before any game rule is broken).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The supplied schedule is not a topological order of the CDAG.
    InvalidSchedule,
    /// `S` is too small: firing some vertex needs `in_degree + 1` pebbles.
    BudgetTooSmall {
        /// The vertex that cannot be fired.
        vertex: VertexId,
        /// Minimum budget required for it.
        required: usize,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::InvalidSchedule => write!(f, "schedule is not a topological order"),
            ExecError::BudgetTooSmall { vertex, required } => {
                write!(
                    f,
                    "budget too small: firing {vertex} needs {required} red pebbles"
                )
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Runs the heuristic RBW player. Returns a certified-valid game whose I/O
/// is an upper bound on `IO_S(C)` for this budget.
pub fn execute_rbw(
    g: &Cdag,
    s: usize,
    schedule: &[VertexId],
    policy: EvictionPolicy,
) -> Result<ExecutedGame, ExecError> {
    if !is_valid_topological_order(g, schedule) {
        return Err(ExecError::InvalidSchedule);
    }
    for &v in schedule {
        let need = if g.is_input(v) { 1 } else { g.in_degree(v) + 1 };
        if need > s {
            return Err(ExecError::BudgetTooSmall {
                vertex: v,
                required: need,
            });
        }
    }
    let n = g.num_vertices();

    // For Belady: positions where each vertex is *used* (consumed), in
    // schedule order.
    let mut pos = vec![0usize; n];
    for (i, &v) in schedule.iter().enumerate() {
        pos[v.index()] = i;
    }
    let mut uses: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &v in schedule {
        for &p in g.predecessors(v) {
            uses[p.index()].push(pos[v.index()] as u32);
        }
    }
    for u in &mut uses {
        u.sort_unstable();
    }

    let mut sim = Simulator {
        g,
        s,
        policy,
        red: vec![false; n],
        blue: {
            let mut b = vec![false; n];
            for i in g.inputs().iter() {
                b[i] = true;
            }
            b
        },
        remaining_uses: (0..n).map(|i| uses[i].len() as u32).collect(),
        uses,
        next_use_cursor: vec![0; n],
        resident: Vec::new(),
        clock: 0,
        last_touch: vec![0; n],
        arrival: vec![0; n],
        red_count: 0,
        trace: GameTrace::default(),
        spill_stores: 0,
    };

    for (step, &v) in schedule.iter().enumerate() {
        sim.fire(v, step);
    }
    // Final: ensure all outputs are blue.
    for v in g.vertices() {
        if g.is_output(v) && !sim.blue[v.index()] {
            // The output's red pebble may have been evicted — but eviction
            // of a live output always stores first, so red or blue holds.
            debug_assert!(sim.red[v.index()], "output {v} neither red nor blue");
            sim.trace.moves.push(Move::Store(v));
            sim.blue[v.index()] = true;
        }
    }
    let io = sim.trace.io_count();
    let spill_stores = sim.spill_stores;
    Ok(ExecutedGame {
        trace: sim.trace,
        io,
        spill_stores,
    })
}

struct Simulator<'a> {
    g: &'a Cdag,
    s: usize,
    policy: EvictionPolicy,
    red: Vec<bool>,
    blue: Vec<bool>,
    /// Unfired consumers remaining per vertex.
    remaining_uses: Vec<u32>,
    /// Sorted schedule positions where each vertex is consumed.
    uses: Vec<Vec<u32>>,
    next_use_cursor: Vec<u32>,
    resident: Vec<VertexId>,
    clock: u64,
    last_touch: Vec<u64>,
    arrival: Vec<u64>,
    red_count: usize,
    trace: GameTrace,
    spill_stores: u64,
}

impl Simulator<'_> {
    fn fire(&mut self, v: VertexId, step: usize) {
        // 1. Make all predecessors red (pinned for this firing).
        let preds: Vec<VertexId> = self.g.predecessors(v).to_vec();
        for &p in &preds {
            if !self.red[p.index()] {
                self.make_room(&preds, v);
                debug_assert!(self.blue[p.index()], "spilled value {p} lost without blue");
                self.trace.moves.push(Move::Load(p));
                self.place_red(p);
            }
            self.touch(p, step);
        }
        // 2. Allocate v's own pebble and fire (or load, for inputs).
        if !self.red[v.index()] {
            self.make_room(&preds, v);
            if self.g.is_input(v) {
                self.trace.moves.push(Move::Load(v));
            } else {
                self.trace.moves.push(Move::Compute(v));
            }
            self.place_red(v);
        } else if !self.g.is_input(v) {
            // Shouldn't happen: v cannot be red before firing in RBW.
            unreachable!("vertex {v} red before firing");
        }
        self.touch(v, step);
        // 3. Retire predecessors' use counts; drop dead pebbles eagerly.
        for &p in &preds {
            self.remaining_uses[p.index()] -= 1;
            self.advance_cursor(p, step);
            if self.is_dead(p) {
                self.evict(p, /* needs_store: */ false);
            }
        }
        // If v itself is dead on arrival (no consumers, not an output) we
        // still keep it; the final pass stores outputs and dead values
        // simply never cost I/O. But free the pebble if it has no future.
        if self.is_dead(v) && !self.g.is_output(v) {
            self.evict(v, false);
        }
    }

    fn touch(&mut self, v: VertexId, _step: usize) {
        self.clock += 1;
        self.last_touch[v.index()] = self.clock;
    }

    fn advance_cursor(&mut self, p: VertexId, step: usize) {
        let c = &mut self.next_use_cursor[p.index()];
        let u = &self.uses[p.index()];
        while (*c as usize) < u.len() && u[*c as usize] as usize <= step {
            *c += 1;
        }
    }

    fn is_dead(&self, v: VertexId) -> bool {
        self.remaining_uses[v.index()] == 0 && (!self.g.is_output(v) || self.blue[v.index()])
    }

    fn place_red(&mut self, v: VertexId) {
        debug_assert!(self.red_count < self.s);
        self.red[v.index()] = true;
        self.red_count += 1;
        self.clock += 1;
        self.arrival[v.index()] = self.clock;
        self.resident.push(v);
    }

    /// Ensures a free pebble slot, never evicting `pinned` vertices or `v`.
    fn make_room(&mut self, pinned: &[VertexId], v: VertexId) {
        while self.red_count >= self.s {
            let victim = self.choose_victim(pinned, v);
            let needs_store = !self.is_dead_or_saved(victim);
            self.evict(victim, needs_store);
        }
    }

    fn is_dead_or_saved(&self, u: VertexId) -> bool {
        self.blue[u.index()] || (self.remaining_uses[u.index()] == 0 && !self.g.is_output(u))
    }

    fn choose_victim(&mut self, pinned: &[VertexId], v: VertexId) -> VertexId {
        let candidates: Vec<VertexId> = self
            .resident
            .iter()
            .copied()
            .filter(|u| *u != v && !pinned.contains(u))
            .collect();
        assert!(
            !candidates.is_empty(),
            "no evictable pebble: budget {} too small for in-degree of {v}",
            self.s
        );
        match self.policy {
            EvictionPolicy::Lru => candidates
                .into_iter()
                .min_by_key(|u| self.last_touch[u.index()])
                // dmc-lint: allow(s1) -- the candidate list was just checked non-empty by the feasibility gate above
                .expect("non-empty"),
            EvictionPolicy::Fifo => candidates
                .into_iter()
                .min_by_key(|u| self.arrival[u.index()])
                // dmc-lint: allow(s1) -- the candidate list was just checked non-empty by the feasibility gate above
                .expect("non-empty"),
            EvictionPolicy::Belady => {
                // Furthest next use; dead values are infinitely far.
                candidates
                    .into_iter()
                    .max_by_key(|u| {
                        let c = self.next_use_cursor[u.index()] as usize;
                        let us = &self.uses[u.index()];
                        if c >= us.len() {
                            u32::MAX
                        } else {
                            us[c]
                        }
                    })
                    // dmc-lint: allow(s1) -- max over the non-empty eviction candidates computed above
                    .expect("non-empty")
            }
        }
    }

    fn evict(&mut self, u: VertexId, needs_store: bool) {
        if !self.red[u.index()] {
            return;
        }
        if needs_store && !self.blue[u.index()] {
            self.trace.moves.push(Move::Store(u));
            self.blue[u.index()] = true;
            if self.remaining_uses[u.index()] > 0 {
                self.spill_stores += 1;
            }
        }
        self.trace.moves.push(Move::Delete(u));
        self.red[u.index()] = false;
        self.red_count -= 1;
        let idx = self
            .resident
            .iter()
            .position(|&x| x == u)
            // dmc-lint: allow(s1) -- victim was drawn from the resident list two lines up; absence is a bookkeeping bug
            .expect("resident list consistent");
        self.resident.swap_remove(idx);
    }
}

/// Convenience: run the executor and certify its trace against the RBW
/// validator, returning the certified I/O count.
pub fn certified_upper_bound(
    g: &Cdag,
    s: usize,
    schedule: &[VertexId],
    policy: EvictionPolicy,
) -> Result<u64, ExecError> {
    let game = execute_rbw(g, s, schedule, policy)?;
    let io = super::rbw::validate(g, s, &game.trace)
        // dmc-lint: allow(s1) -- the executor emits rule-respecting moves by construction; an invalid game is an executor bug worth crashing loudly on, pinned by executor-vs-validator tests
        .map_err(|e: GameError| panic!("executor produced invalid game: {e}"))
        // dmc-lint: allow(s1) -- unreachable companion of the map_err panic above: the Err arm diverges
        .expect("validated");
    Ok(io)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmc_cdag::topo::topological_order;
    use dmc_cdag::CdagBuilder;

    fn diamond() -> Cdag {
        let mut b = CdagBuilder::new();
        let a = b.add_input("a");
        let x = b.add_op("b", &[a]);
        let y = b.add_op("c", &[a]);
        let d = b.add_op("d", &[x, y]);
        b.tag_output(d);
        b.build().unwrap()
    }

    #[test]
    fn diamond_with_ample_memory_costs_two() {
        let g = diamond();
        let order = topological_order(&g);
        for policy in [
            EvictionPolicy::Lru,
            EvictionPolicy::Belady,
            EvictionPolicy::Fifo,
        ] {
            let io = certified_upper_bound(&g, 4, &order, policy).unwrap();
            assert_eq!(io, 2, "{policy:?}: load a + store d");
        }
    }

    #[test]
    fn tight_memory_forces_spills() {
        let g = diamond();
        let order = topological_order(&g);
        // S = 3: firing d needs b, c, d. a must be evicted (free: it's an
        // input). Optimal: still 2 I/O.
        let io = certified_upper_bound(&g, 3, &order, EvictionPolicy::Belady).unwrap();
        assert_eq!(io, 2);
    }

    #[test]
    fn executor_output_always_validates() {
        let g = dmc_kernels::matmul::matmul(3);
        let order = topological_order(&g);
        for s in [4usize, 6, 10, 32] {
            for policy in [
                EvictionPolicy::Lru,
                EvictionPolicy::Belady,
                EvictionPolicy::Fifo,
            ] {
                let io = certified_upper_bound(&g, s, &order, policy).unwrap();
                assert!(io >= (g.num_inputs() + g.num_outputs()) as u64);
            }
        }
    }

    #[test]
    fn belady_never_worse_than_lru_on_matmul() {
        let g = dmc_kernels::matmul::matmul(4);
        let order = topological_order(&g);
        for s in [6usize, 8, 16] {
            let lru = certified_upper_bound(&g, s, &order, EvictionPolicy::Lru).unwrap();
            let belady = certified_upper_bound(&g, s, &order, EvictionPolicy::Belady).unwrap();
            assert!(belady <= lru, "S={s}: belady {belady} > lru {lru}");
        }
    }

    #[test]
    fn more_memory_never_hurts_belady() {
        let g = dmc_kernels::fft::fft(16);
        let order = topological_order(&g);
        let mut prev = u64::MAX;
        for s in [6usize, 8, 12, 24, 48] {
            let io = certified_upper_bound(&g, s, &order, EvictionPolicy::Belady).unwrap();
            assert!(io <= prev, "S={s}: {io} > {prev}");
            prev = io;
        }
    }

    #[test]
    fn budget_too_small_detected() {
        let g = diamond();
        let order = topological_order(&g);
        let err = execute_rbw(&g, 2, &order, EvictionPolicy::Lru).unwrap_err();
        assert!(matches!(err, ExecError::BudgetTooSmall { .. }));
    }

    #[test]
    fn invalid_schedule_detected() {
        let g = diamond();
        let mut order = topological_order(&g);
        order.reverse();
        let err = execute_rbw(&g, 4, &order, EvictionPolicy::Lru).unwrap_err();
        assert_eq!(err, ExecError::InvalidSchedule);
    }

    #[test]
    fn io_lower_bounded_by_inputs_plus_outputs() {
        // With all 2n inputs resident (S >= 2n + 1), the outer product
        // costs exactly 2n loads + n² stores.
        let g = dmc_kernels::outer::outer_product(5);
        let order = topological_order(&g);
        let io = certified_upper_bound(&g, 16, &order, EvictionPolicy::Belady).unwrap();
        assert_eq!(io, dmc_kernels::outer::outer_product_exact_io(5));
        // Under pressure (S = 8 < 2n + 1) inputs get reloaded: io grows.
        let tight = certified_upper_bound(&g, 8, &order, EvictionPolicy::Belady).unwrap();
        assert!(tight >= io);
    }
}
