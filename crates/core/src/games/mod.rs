//! Pebble-game engines.
//!
//! * [`redblue`] — the Hong–Kung red-blue game (Definition 2), with
//!   recomputation allowed;
//! * [`rbw`] — the Red-Blue-White game (Definition 4), no recomputation;
//! * [`prbw`] — the Parallel RBW game (Definition 6) on memory
//!   hierarchies;
//! * [`executor`] — heuristic players producing valid games (and thus
//!   I/O *upper* bounds) from a schedule and an eviction policy;
//! * [`optimal`] — exact optimal-I/O search for tiny CDAGs, used to
//!   validate every lower bound in the test suite.

pub mod executor;
pub mod optimal;
pub mod prbw;
pub mod rbw;
pub mod redblue;

use dmc_cdag::VertexId;

/// A single move of the sequential games (shared by RB and RBW; the
/// parallel game has its own richer move type).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Move {
    /// R1 — place a red pebble on a blue-pebbled vertex (load).
    Load(VertexId),
    /// R2 — place a blue pebble on a red-pebbled vertex (store).
    Store(VertexId),
    /// R3 — fire a vertex whose predecessors all hold red pebbles.
    Compute(VertexId),
    /// R4 — remove a red pebble (free storage).
    Delete(VertexId),
}

impl Move {
    /// `true` for the two I/O moves (R1 and R2).
    pub fn is_io(self) -> bool {
        matches!(self, Move::Load(_) | Move::Store(_))
    }

    /// The vertex the move touches.
    pub fn vertex(self) -> VertexId {
        match self {
            Move::Load(v) | Move::Store(v) | Move::Compute(v) | Move::Delete(v) => v,
        }
    }
}

/// A complete recorded game: the sequence of moves.
#[derive(Debug, Clone, Default)]
pub struct GameTrace {
    /// Moves in play order.
    pub moves: Vec<Move>,
}

impl GameTrace {
    /// Number of I/O operations (loads + stores) — the game's cost `q`.
    pub fn io_count(&self) -> u64 {
        self.moves.iter().filter(|m| m.is_io()).count() as u64
    }

    /// Number of loads (R1 moves).
    pub fn load_count(&self) -> u64 {
        self.moves
            .iter()
            .filter(|m| matches!(m, Move::Load(_)))
            .count() as u64
    }

    /// Number of stores (R2 moves).
    pub fn store_count(&self) -> u64 {
        self.moves
            .iter()
            .filter(|m| matches!(m, Move::Store(_)))
            .count() as u64
    }

    /// Number of compute (R3) moves.
    pub fn compute_count(&self) -> u64 {
        self.moves
            .iter()
            .filter(|m| matches!(m, Move::Compute(_)))
            .count() as u64
    }
}

/// Rule violations detected when replaying a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GameError {
    /// R1 on a vertex without a blue pebble.
    LoadWithoutBlue(VertexId),
    /// R2 on a vertex without a red pebble.
    StoreWithoutRed(VertexId),
    /// R3 with some predecessor lacking a red pebble.
    ComputeWithoutPreds(VertexId),
    /// R3 on an already-fired vertex (RBW only — recomputation forbidden).
    Recompute(VertexId),
    /// R3/R1 would exceed the red-pebble budget `S`.
    RedBudgetExceeded(VertexId),
    /// R4 on a vertex without a red pebble.
    DeleteWithoutRed(VertexId),
    /// Game ended without firing every vertex (RBW completeness).
    Unfired(VertexId),
    /// Game ended without a blue pebble on an output.
    OutputNotStored(VertexId),
    /// R3 on an input vertex (inputs hold values, they are not computed).
    ComputeInput(VertexId),
}

impl std::fmt::Display for GameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GameError::LoadWithoutBlue(v) => write!(f, "load of {v} without blue pebble"),
            GameError::StoreWithoutRed(v) => write!(f, "store of {v} without red pebble"),
            GameError::ComputeWithoutPreds(v) => {
                write!(f, "compute of {v} with unpebbled predecessor")
            }
            GameError::Recompute(v) => write!(f, "recomputation of {v} (forbidden in RBW)"),
            GameError::RedBudgetExceeded(v) => write!(f, "red budget exceeded placing on {v}"),
            GameError::DeleteWithoutRed(v) => write!(f, "delete of {v} without red pebble"),
            GameError::Unfired(v) => write!(f, "game complete but {v} never fired"),
            GameError::OutputNotStored(v) => write!(f, "output {v} has no blue pebble at end"),
            GameError::ComputeInput(v) => write!(f, "compute applied to input vertex {v}"),
        }
    }
}

impl std::error::Error for GameError {}
