//! The Red-Blue-White pebble game (Definition 4) — no recomputation,
//! flexible input/output tagging.
//!
//! Differences from the Hong–Kung game:
//!
//! * every vertex carries a *white* pebble once evaluated (or first
//!   loaded), and rule R3 refuses to fire a white-pebbled vertex — values
//!   are computed exactly once;
//! * predecessor-free vertices need not be inputs: they fire via R3 with a
//!   trivially-satisfied premise, but once their red pebble is lost they
//!   can only come back via a store/load round trip;
//! * completeness requires white pebbles on *all* vertices plus blue on
//!   all tagged outputs.

use super::{GameError, GameTrace, Move};
use dmc_cdag::{BitSet, Cdag};

/// Replay state of an RBW game.
#[derive(Debug, Clone)]
pub struct RbwState {
    /// Vertices currently holding a red pebble.
    pub red: BitSet,
    /// Vertices currently holding a blue pebble.
    pub blue: BitSet,
    /// Vertices holding a white pebble (fired / materialized at least
    /// once).
    pub white: BitSet,
    /// Red-pebble budget `S`.
    pub s: usize,
}

impl RbwState {
    /// Initial state: blue on all tagged inputs; nothing else.
    pub fn initial(g: &Cdag, s: usize) -> Self {
        RbwState {
            red: BitSet::new(g.num_vertices()),
            blue: g.inputs().clone(),
            white: BitSet::new(g.num_vertices()),
            s,
        }
    }

    /// Applies one move, enforcing rules R1–R4 of Definition 4.
    pub fn apply(&mut self, g: &Cdag, mv: Move) -> Result<(), GameError> {
        match mv {
            Move::Load(v) => {
                if !self.blue.contains(v.index()) {
                    return Err(GameError::LoadWithoutBlue(v));
                }
                if !self.red.contains(v.index()) && self.red.len() >= self.s {
                    return Err(GameError::RedBudgetExceeded(v));
                }
                self.red.insert(v.index());
                self.white.insert(v.index()); // R1 also whitens
            }
            Move::Store(v) => {
                if !self.red.contains(v.index()) {
                    return Err(GameError::StoreWithoutRed(v));
                }
                self.blue.insert(v.index());
            }
            Move::Compute(v) => {
                if g.is_input(v) {
                    return Err(GameError::ComputeInput(v));
                }
                if self.white.contains(v.index()) {
                    return Err(GameError::Recompute(v));
                }
                if !g
                    .predecessors(v)
                    .iter()
                    .all(|p| self.red.contains(p.index()))
                {
                    return Err(GameError::ComputeWithoutPreds(v));
                }
                if !self.red.contains(v.index()) && self.red.len() >= self.s {
                    return Err(GameError::RedBudgetExceeded(v));
                }
                self.red.insert(v.index());
                self.white.insert(v.index());
            }
            Move::Delete(v) => {
                if !self.red.remove(v.index()) {
                    return Err(GameError::DeleteWithoutRed(v));
                }
            }
        }
        Ok(())
    }

    /// Completeness check of Definition 4: white everywhere, blue on all
    /// outputs.
    pub fn check_complete(&self, g: &Cdag) -> Result<(), GameError> {
        for v in g.vertices() {
            if !self.white.contains(v.index()) {
                return Err(GameError::Unfired(v));
            }
        }
        for v in g.vertices() {
            if g.is_output(v) && !self.blue.contains(v.index()) {
                return Err(GameError::OutputNotStored(v));
            }
        }
        Ok(())
    }
}

/// Replays `trace` on `g` with `s` red pebbles under RBW rules; returns the
/// I/O count of the complete game or the first violation.
pub fn validate(g: &Cdag, s: usize, trace: &GameTrace) -> Result<u64, GameError> {
    let mut st = RbwState::initial(g, s);
    for &mv in &trace.moves {
        st.apply(g, mv)?;
    }
    st.check_complete(g)?;
    Ok(trace.io_count())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmc_cdag::CdagBuilder;
    use dmc_cdag::VertexId;

    fn tiny() -> Cdag {
        let mut b = CdagBuilder::new();
        let a = b.add_input("a");
        let x = b.add_op("b", &[a]);
        let c = b.add_op("c", &[x]);
        b.tag_output(c);
        b.build().unwrap()
    }

    #[test]
    fn straight_line_game() {
        let g = tiny();
        let (a, x, c) = (VertexId(0), VertexId(1), VertexId(2));
        let trace = GameTrace {
            moves: vec![
                Move::Load(a),
                Move::Compute(x),
                Move::Delete(a),
                Move::Compute(c),
                Move::Store(c),
            ],
        };
        assert_eq!(validate(&g, 2, &trace).unwrap(), 2);
    }

    #[test]
    fn recomputation_forbidden() {
        let g = tiny();
        let (a, x) = (VertexId(0), VertexId(1));
        let trace = GameTrace {
            moves: vec![
                Move::Load(a),
                Move::Compute(x),
                Move::Delete(x),
                Move::Compute(x),
            ],
        };
        assert_eq!(
            validate(&g, 3, &trace).unwrap_err(),
            GameError::Recompute(x)
        );
    }

    #[test]
    fn all_vertices_must_fire() {
        let g = tiny();
        let (a, x) = (VertexId(0), VertexId(1));
        let trace = GameTrace {
            moves: vec![Move::Load(a), Move::Compute(x)],
        };
        assert_eq!(
            validate(&g, 3, &trace).unwrap_err(),
            GameError::Unfired(VertexId(2))
        );
    }

    #[test]
    fn untagged_source_fires_without_load() {
        // free (no predecessors, not an input) fires via R3 directly.
        let mut b = CdagBuilder::new();
        let free = b.add_vertex("free");
        let z = b.add_op("z", &[free]);
        b.tag_output(z);
        let g = b.build().unwrap();
        let trace = GameTrace {
            moves: vec![Move::Compute(free), Move::Compute(z), Move::Store(z)],
        };
        // Only 1 I/O: the output store. No input loads exist.
        assert_eq!(validate(&g, 2, &trace).unwrap(), 1);
    }

    #[test]
    fn spill_reload_round_trip() {
        // Two consumers of one non-input source under S = 2: the source's
        // red pebble must survive until the second consumer, or be
        // spilled (store) and reloaded — recomputation is forbidden.
        let mut b = CdagBuilder::new();
        let f = b.add_vertex("free");
        let u = b.add_op("u", &[f]);
        let w = b.add_op("w", &[f, u]);
        b.tag_output(w);
        b.tag_output(u);
        let g = b.build().unwrap();
        // With S = 2: fire f, fire u, store u, spill u's red, fire w
        // (f and w fit), store w. u's red slot is recycled for w.
        let trace = GameTrace {
            moves: vec![
                Move::Compute(f),
                Move::Compute(u),
                Move::Store(u),
                Move::Delete(u),
                Move::Compute(w),
                Move::Store(w),
            ],
        };
        // Wait: w needs BOTH f and u red — the above fires w illegally.
        assert_eq!(
            validate(&g, 2, &trace).unwrap_err(),
            GameError::ComputeWithoutPreds(w)
        );
        // With S = 3 no spill is needed: just the two output stores.
        let trace = GameTrace {
            moves: vec![
                Move::Compute(f),
                Move::Compute(u),
                Move::Store(u),
                Move::Compute(w),
                Move::Store(w),
            ],
        };
        assert_eq!(validate(&g, 3, &trace).unwrap(), 2);
    }

    #[test]
    fn loads_whiten() {
        // Loading an input marks it fired; inputs never need R3.
        let g = tiny();
        let (a, x, c) = (VertexId(0), VertexId(1), VertexId(2));
        let trace = GameTrace {
            moves: vec![
                Move::Load(a),
                Move::Compute(x),
                Move::Compute(c),
                Move::Store(c),
            ],
        };
        assert_eq!(validate(&g, 3, &trace).unwrap(), 2);
    }
}
