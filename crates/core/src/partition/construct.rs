//! Constructing S-partitions.
//!
//! * [`from_trace`] — the Theorem-1 construction: slice a complete RBW
//!   game into intervals of at most `S` I/O moves; the vertices fired in
//!   each interval form the blocks of a valid `2S`-partition.
//! * [`greedy_partition`] — a schedule-driven greedy partitioner producing
//!   valid S-partitions whose block count *over*-estimates the minimum
//!   `H(S)` (useful as a diagnostic and for the partition ablation bench,
//!   **not** as a lower bound).

use super::SPartition;
use crate::games::{GameTrace, Move};
use dmc_cdag::subgraph::{input_set, output_set};
use dmc_cdag::{BitSet, Cdag, VertexId};

/// Result of the Theorem-1 construction: the partition plus the raw
/// interval count `h` (which includes compute-free intervals that
/// contribute no block but do count toward `S·h ≥ q`).
#[derive(Debug, Clone)]
pub struct TracePartition {
    /// The (non-empty) blocks as an S-partition.
    pub partition: SPartition,
    /// Total interval count `h`, including compute-free intervals.
    pub intervals: usize,
}

/// Theorem-1 construction: slices a complete RBW game into consecutive
/// intervals of at most `s` I/O moves each; the vertices fired in interval
/// `i` form block `V_i`. The blocks are a valid `2s`-partition and the
/// interval count `h` satisfies `s·h ≥ q ≥ s·(h−1)` where `q` is the
/// trace's I/O count.
pub fn from_trace(g: &Cdag, trace: &GameTrace, s: usize) -> TracePartition {
    assert!(s > 0);
    let n = g.num_vertices();
    let mut blocks: Vec<BitSet> = Vec::new();
    let mut current = BitSet::new(n);
    let mut intervals = 1usize;
    let mut io_in_interval = 0usize;
    for &mv in &trace.moves {
        if mv.is_io() {
            if io_in_interval == s {
                if !current.is_empty() {
                    blocks.push(std::mem::replace(&mut current, BitSet::new(n)));
                }
                current.clear();
                intervals += 1;
                io_in_interval = 0;
            }
            io_in_interval += 1;
        }
        if let Move::Compute(v) = mv {
            current.insert(v.index());
        }
    }
    if !current.is_empty() {
        blocks.push(current);
    }
    TracePartition {
        partition: SPartition { blocks },
        intervals,
    }
}

/// Greedy schedule partitioner: walks `order` (must be topological) and
/// closes the current block whenever adding the next vertex would push
/// `|In(V_i)|` or `|Out(V_i)|` beyond `s`. Because blocks are contiguous
/// intervals of a topological order the quotient is automatically acyclic.
///
/// Inputs (tagged) are excluded from blocks per Definition 5.
pub fn greedy_partition(g: &Cdag, order: &[VertexId], s: usize) -> SPartition {
    assert!(s > 0);
    let n = g.num_vertices();
    let mut blocks = Vec::new();
    let mut current = BitSet::new(n);
    for &v in order {
        if g.is_input(v) {
            continue;
        }
        let mut candidate = current.clone();
        candidate.insert(v.index());
        if input_set(g, &candidate).len() > s || output_set(g, &candidate).len() > s {
            if !current.is_empty() {
                blocks.push(std::mem::replace(&mut current, BitSet::new(n)));
            }
            current.clear();
            current.insert(v.index());
            // A single vertex must always fit (its in-degree may exceed s,
            // in which case no valid S-partition with this s exists —
            // surface that loudly).
            assert!(
                input_set(g, &current).len() <= s && output_set(g, &current).len() <= s,
                "vertex {v} alone violates the S-partition conditions for S = {s}"
            );
        } else {
            current = candidate;
        }
    }
    if !current.is_empty() {
        blocks.push(current);
    }
    SPartition { blocks }
}

/// Topological interval clustering: splits `order` (must be a
/// topological order of `g`) into `clusters` contiguous intervals of
/// (near-)equal size and returns the per-vertex cluster assignment.
///
/// Unlike [`greedy_partition`] this covers **all** vertices — inputs
/// included — because its consumer is Theorem 2's disjoint-partition
/// composition (which needs a total cover), not Definition 5's
/// S-partition. Because clusters are contiguous intervals of a
/// topological order, every edge goes from a cluster to itself or a
/// later one, so the quotient is acyclic by construction — exactly the
/// precondition `dmc_cdag::coarsen` certifies.
///
/// `clusters` is clamped to `1..=|V|`; the assignment is deterministic
/// given `order` (the pipeline feeds the Kahn order, itself
/// deterministic).
pub fn topological_clusters(g: &Cdag, order: &[VertexId], clusters: usize) -> Vec<usize> {
    let n = g.num_vertices();
    assert_eq!(order.len(), n, "order must cover every vertex");
    let k = clusters.clamp(1, n.max(1));
    let mut assignment = vec![0usize; n];
    for (pos, v) in order.iter().enumerate() {
        // Balanced intervals: cluster of position p is ⌊p·k/n⌋, which
        // yields k non-empty intervals whose sizes differ by at most 1.
        assignment[v.index()] = pos * k / n;
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games::executor::{execute_rbw, EvictionPolicy};
    use crate::partition::validate_rbw;
    use dmc_cdag::topo::topological_order;
    use dmc_kernels::{chains, fft, matmul};

    #[test]
    fn trace_construction_yields_valid_2s_partition() {
        for g in [matmul::matmul(3), fft::fft(8), chains::ladder(4, 4)] {
            let order = topological_order(&g);
            for s in [4usize, 6, 10] {
                if let Ok(game) = execute_rbw(&g, s, &order, EvictionPolicy::Lru) {
                    let tp = from_trace(&g, &game.trace, s);
                    assert_eq!(
                        validate_rbw(&g, &tp.partition, 2 * s),
                        Ok(()),
                        "S={s} on {g:?}"
                    );
                    // Theorem 1: S·h ≥ q ≥ S·(h−1), with h the raw
                    // interval count.
                    let h = tp.intervals as u64;
                    assert!(
                        (s as u64) * h >= game.io,
                        "S={s}: S·h = {} < q = {}",
                        s as u64 * h,
                        game.io
                    );
                    assert!(game.io >= (s as u64) * (h - 1), "S={s}");
                }
            }
        }
    }

    #[test]
    fn greedy_partition_is_valid() {
        for g in [matmul::matmul(3), fft::fft(8)] {
            let order = topological_order(&g);
            for s in [8usize, 16, 32] {
                let p = greedy_partition(&g, &order, s);
                assert_eq!(validate_rbw(&g, &p, s), Ok(()), "S={s}");
                // Covers all compute vertices.
                let covered: usize = p.blocks.iter().map(|b| b.len()).sum();
                assert_eq!(covered, g.num_compute_vertices());
            }
        }
    }

    #[test]
    fn greedy_blocks_grow_with_s() {
        let g = matmul::matmul(4);
        let order = topological_order(&g);
        let h_small = greedy_partition(&g, &order, 8).num_blocks();
        let h_large = greedy_partition(&g, &order, 64).num_blocks();
        assert!(h_large < h_small, "{h_large} !< {h_small}");
    }

    #[test]
    fn topological_clusters_cover_and_contract() {
        let g = matmul::matmul(4);
        let order = topological_order(&g);
        for k in [1usize, 2, 5, 16] {
            let assignment = topological_clusters(&g, &order, k);
            assert_eq!(assignment.len(), g.num_vertices());
            let kk = k.min(g.num_vertices());
            // Every cluster non-empty, numbering contiguous.
            let mut sizes = vec![0usize; kk];
            for &c in &assignment {
                sizes[c] += 1;
            }
            assert!(sizes.iter().all(|&s| s > 0), "k = {k}: {sizes:?}");
            // Interval clustering of a topo order contracts cleanly.
            let coarse = dmc_cdag::coarsen::coarsen(&g, &assignment, kk).expect("acyclic quotient");
            assert_eq!(coarse.graph.num_vertices(), kk);
        }
        // Oversized k clamps to |V|.
        let assignment = topological_clusters(&g, &order, 10 * g.num_vertices());
        assert_eq!(assignment.iter().max().copied(), Some(g.num_vertices() - 1));
    }

    #[test]
    #[should_panic(expected = "violates the S-partition conditions")]
    fn impossible_s_panics() {
        // matmul(3) outputs have in-degree 2; with S = 1 even singleton
        // blocks of accumulation vertices violate |In| <= 1.
        let g = matmul::matmul(3);
        let order = topological_order(&g);
        let _ = greedy_partition(&g, &order, 1);
    }
}
