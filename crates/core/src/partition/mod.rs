//! S-partitioning of CDAGs (Definitions 3 and 5, Theorem 1).
//!
//! An *S-partition* splits the (non-input) vertices into blocks such that
//! blocks do not form circuits and each block touches at most `S` boundary
//! values on each side. Theorem 1 associates every complete game using `S`
//! red pebbles with a `2S`-partition of `h` blocks satisfying
//! `S·h ≥ q ≥ S·(h−1)` — the bridge from games to the combinatorial lower
//! bounds of Lemma 1.

pub mod construct;

use dmc_cdag::dominator::min_dominator;
use dmc_cdag::subgraph::{input_set, output_set, QuotientGraph};
use dmc_cdag::{BitSet, Cdag, VertexId};

/// A partition of the computational vertices into disjoint blocks.
#[derive(Debug, Clone)]
pub struct SPartition {
    /// Blocks as vertex bitsets (over the full vertex numbering).
    pub blocks: Vec<BitSet>,
}

impl SPartition {
    /// Number of blocks `h`.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Size of the largest block (the `U(2S)` of Corollary 1 when the
    /// partition is a valid 2S-partition).
    pub fn largest_block(&self) -> usize {
        self.blocks.iter().map(|b| b.len()).max().unwrap_or(0)
    }

    /// Block assignment vector: `assignment[v]` = block index
    /// (`usize::MAX` for vertices in no block, i.e. inputs).
    pub fn assignment(&self, n: usize) -> Vec<usize> {
        let mut a = vec![usize::MAX; n];
        for (i, blk) in self.blocks.iter().enumerate() {
            for v in blk.iter() {
                a[v] = i;
            }
        }
        a
    }
}

/// Violations of the S-partition conditions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionViolation {
    /// P1 — blocks overlap or do not cover `V − I`.
    NotAPartition,
    /// P2 — two blocks have edges in both directions.
    Circuit,
    /// P3 (Definition 5) — `|In(V_i)| > S` for block `i`.
    InputTooLarge {
        /// Offending block.
        block: usize,
        /// `|In(V_i)|`.
        size: usize,
    },
    /// P4 (Definition 5) — `|Out(V_i)| > S` for block `i`.
    OutputTooLarge {
        /// Offending block.
        block: usize,
        /// `|Out(V_i)|`.
        size: usize,
    },
    /// P3 (Definition 3) — minimum dominator of block `i` exceeds `S`.
    DominatorTooLarge {
        /// Offending block.
        block: usize,
        /// Minimum dominator cardinality found.
        size: usize,
    },
    /// P4 (Definition 3) — minimum set `Min(V_i)` exceeds `S`.
    MinimumSetTooLarge {
        /// Offending block.
        block: usize,
        /// `|Min(V_i)|`.
        size: usize,
    },
}

/// Checks P1 for the RBW definition: blocks disjointly cover `V − I`.
fn check_p1(g: &Cdag, p: &SPartition) -> Result<(), PartitionViolation> {
    let n = g.num_vertices();
    let mut seen = BitSet::new(n);
    for blk in &p.blocks {
        if !seen.is_disjoint(blk) {
            return Err(PartitionViolation::NotAPartition);
        }
        seen.union_with(blk);
    }
    let mut expected = BitSet::full(n);
    expected.difference_with(g.inputs());
    if seen != expected {
        return Err(PartitionViolation::NotAPartition);
    }
    Ok(())
}

/// Checks P2: no pairwise circuit between blocks (inputs are ignored —
/// they belong to no block).
fn check_p2(g: &Cdag, p: &SPartition) -> Result<(), PartitionViolation> {
    let n = g.num_vertices();
    let assignment = p.assignment(n);
    // Route input vertices into a fresh dummy block each so they cannot
    // create artificial circuits.
    let mut a = assignment;
    let mut next = p.num_blocks();
    for block in a.iter_mut() {
        if *block == usize::MAX {
            *block = next;
            next += 1;
        }
    }
    let q = QuotientGraph::new(g, &a, next);
    if q.has_pairwise_circuit() {
        return Err(PartitionViolation::Circuit);
    }
    Ok(())
}

/// Validates an S-partition under the **RBW** Definition 5:
/// P1, P2, `|In(V_i)| ≤ S`, `|Out(V_i)| ≤ S`.
pub fn validate_rbw(g: &Cdag, p: &SPartition, s: usize) -> Result<(), PartitionViolation> {
    check_p1(g, p)?;
    check_p2(g, p)?;
    for (i, blk) in p.blocks.iter().enumerate() {
        let ins = input_set(g, blk).len();
        if ins > s {
            return Err(PartitionViolation::InputTooLarge {
                block: i,
                size: ins,
            });
        }
        let outs = output_set(g, blk).len();
        if outs > s {
            return Err(PartitionViolation::OutputTooLarge {
                block: i,
                size: outs,
            });
        }
    }
    Ok(())
}

/// Validates an S-partition under the original **Hong–Kung** Definition 3:
/// P1 (over all of `V`), P2, a dominator of size ≤ S, `|Min(V_i)| ≤ S`.
///
/// Note Definition 3 partitions all of `V` (including inputs); pass a
/// partition whose blocks cover every vertex.
pub fn validate_hong_kung(g: &Cdag, p: &SPartition, s: usize) -> Result<(), PartitionViolation> {
    let n = g.num_vertices();
    // P1 over V.
    let mut seen = BitSet::new(n);
    for blk in &p.blocks {
        if !seen.is_disjoint(blk) {
            return Err(PartitionViolation::NotAPartition);
        }
        seen.union_with(blk);
    }
    if seen != BitSet::full(n) {
        return Err(PartitionViolation::NotAPartition);
    }
    // P2.
    let a = p.assignment(n);
    let q = QuotientGraph::new(g, &a, p.num_blocks());
    if q.has_pairwise_circuit() {
        return Err(PartitionViolation::Circuit);
    }
    for (i, blk) in p.blocks.iter().enumerate() {
        // P3: minimum dominator (vertex min-cut from inputs).
        let dom = min_dominator(g, blk);
        if dom.size > s {
            return Err(PartitionViolation::DominatorTooLarge {
                block: i,
                size: dom.size,
            });
        }
        // P4: minimum set — vertices of the block with all successors
        // outside (sinks of the block).
        let min_set = blk
            .iter()
            .filter(|&v| {
                let vid = VertexId(v as u32);
                g.successors(vid).iter().all(|s| !blk.contains(s.index()))
            })
            .count();
        if min_set > s {
            return Err(PartitionViolation::MinimumSetTooLarge {
                block: i,
                size: min_set,
            });
        }
    }
    Ok(())
}

/// Lemma 1: given the minimum block count `h_min` of any valid
/// 2S-partition, `Q ≥ S·(h_min − 1)`.
pub fn lemma1_lower_bound(s: usize, h_min: usize) -> u64 {
    (s as u64) * (h_min.saturating_sub(1) as u64)
}

/// Corollary 1: with `U(2S)` the largest possible 2S-partition block and
/// `|V'| = |V − I|`, `Q ≥ S·(|V'|/U − 1)`.
pub fn corollary1_lower_bound(s: usize, num_compute_vertices: usize, u_max: f64) -> f64 {
    assert!(u_max > 0.0);
    (s as f64) * (num_compute_vertices as f64 / u_max - 1.0).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmc_kernels::chains;

    fn block(n: usize, vs: &[usize]) -> BitSet {
        BitSet::from_indices(n, vs.iter().copied())
    }

    #[test]
    fn valid_rbw_partition_accepted() {
        let g = chains::diamond(); // a(in) -> b, c -> d(out)
        let p = SPartition {
            blocks: vec![block(4, &[1, 2]), block(4, &[3])],
        };
        // S = 2: In({b,c}) = {a} (1), Out = {b, c} (2);
        //        In({d}) = {b, c} (2), Out = {d} (1).
        assert_eq!(validate_rbw(&g, &p, 2), Ok(()));
    }

    #[test]
    fn rbw_p3_violation_detected() {
        let g = chains::diamond();
        let p = SPartition {
            blocks: vec![block(4, &[1, 2]), block(4, &[3])],
        };
        // S = 1: Out({b,c}) = 2 > 1.
        assert!(matches!(
            validate_rbw(&g, &p, 1),
            Err(PartitionViolation::OutputTooLarge { .. })
        ));
    }

    #[test]
    fn coverage_violations_detected() {
        let g = chains::diamond();
        // Missing vertex 3.
        let p = SPartition {
            blocks: vec![block(4, &[1, 2])],
        };
        assert_eq!(
            validate_rbw(&g, &p, 4),
            Err(PartitionViolation::NotAPartition)
        );
        // Overlapping blocks.
        let p = SPartition {
            blocks: vec![block(4, &[1, 2]), block(4, &[2, 3])],
        };
        assert_eq!(
            validate_rbw(&g, &p, 4),
            Err(PartitionViolation::NotAPartition)
        );
        // Including an input.
        let p = SPartition {
            blocks: vec![block(4, &[0, 1, 2]), block(4, &[3])],
        };
        assert_eq!(
            validate_rbw(&g, &p, 4),
            Err(PartitionViolation::NotAPartition)
        );
    }

    #[test]
    fn circuit_detected() {
        // ladder(2,2): vertices 0 (in), 1, 2, 3 with edges 0->1, 0->2,
        // 1->3, 2->3. Blocks {1, 3} and {2} have edges 1->3 internal,
        // 0 input; 2->3 gives {2}->{1,3}; no reverse edge, so this is
        // actually fine. Use interleaved chain instead.
        let g = chains::chain(5); // 0->1->2->3->4
        let p = SPartition {
            blocks: vec![block(5, &[1, 3]), block(5, &[2, 4])],
        };
        // Edges 1->2 ({A}->{B}) and 2->3 ({B}->{A}): circuit.
        assert_eq!(validate_rbw(&g, &p, 4), Err(PartitionViolation::Circuit));
    }

    #[test]
    fn hong_kung_validation() {
        let g = chains::diamond();
        let p = SPartition {
            blocks: vec![block(4, &[0, 1, 2]), block(4, &[3])],
        };
        // S = 2: Dom({a,b,c}) = {a} (1 ≤ 2), Min = {b, c} (2 ≤ 2);
        //        Dom({d}) ≤ {d} itself... min dominator is 1; Min = {d}.
        assert_eq!(validate_hong_kung(&g, &p, 2), Ok(()));
        // S = 1: Min({a,b,c}) = {b, c} = 2 > 1.
        assert!(matches!(
            validate_hong_kung(&g, &p, 1),
            Err(PartitionViolation::MinimumSetTooLarge { .. })
        ));
    }

    #[test]
    fn lemma1_and_corollary1() {
        assert_eq!(lemma1_lower_bound(10, 5), 40);
        assert_eq!(lemma1_lower_bound(10, 0), 0);
        assert_eq!(corollary1_lower_bound(10, 100, 20.0), 40.0);
        // Clamped at zero when U exceeds the work.
        assert_eq!(corollary1_lower_bound(10, 10, 20.0), 0.0);
    }

    #[test]
    fn largest_block_and_assignment() {
        let p = SPartition {
            blocks: vec![block(6, &[1, 2, 3]), block(6, &[4])],
        };
        assert_eq!(p.largest_block(), 3);
        let a = p.assignment(6);
        assert_eq!(a[2], 0);
        assert_eq!(a[4], 1);
        assert_eq!(a[0], usize::MAX);
    }
}
