//! Machine-balance analysis (Section 5, Equations 4–10).
//!
//! Combines an algorithm's data-movement bounds with a machine's balance
//! parameters to decide, per memory level, whether the algorithm is
//! unavoidably bandwidth-bound (Equation 7 violated), definitely not
//! bandwidth-bound (Equation 8 violated), or inconclusive.
//!
//! The per-algorithm profiles themselves live in
//! [`dmc_kernels::profile`] and are surfaced per kernel through the
//! catalog's [`Kernel::profile`](dmc_kernels::catalog::Kernel::profile)
//! hook; [`AlgorithmProfile`] is re-exported here for compatibility.

use dmc_machine::{BandwidthVerdict, Constraint, MachineSpec};
use serde::json::Value;
use serde::Serialize;

pub use dmc_kernels::profile::AlgorithmProfile;

/// The two verdicts of Section 5 for one machine.
#[derive(Debug, Clone)]
pub struct BalanceReport {
    /// Machine name.
    pub machine: String,
    /// The machine's vertical balance (words/FLOP).
    pub vertical_balance: f64,
    /// The machine's horizontal balance (words/FLOP).
    pub horizontal_balance: f64,
    /// Verdict for DRAM↔LLC traffic (Equation 9).
    pub vertical: BandwidthVerdict,
    /// Verdict for inter-node traffic (Equation 10).
    pub horizontal: BandwidthVerdict,
}

impl BalanceReport {
    /// One formatted report line.
    pub fn row(&self) -> String {
        format!(
            "{:<12} vert: {:<22} (balance {:.4})   horiz: {:<22} (balance {:.4})",
            self.machine,
            self.vertical.to_string(),
            self.vertical_balance,
            self.horizontal.to_string(),
            self.horizontal_balance
        )
    }
}

impl Serialize for BalanceReport {
    fn to_json(&self) -> Value {
        Value::object([
            ("machine", self.machine.to_json()),
            ("vertical_balance", self.vertical_balance.to_json()),
            ("horizontal_balance", self.horizontal_balance.to_json()),
            ("vertical", self.vertical.to_string().to_json()),
            ("horizontal", self.horizontal.to_string().to_json()),
        ])
    }
}

/// Applies Equations 9–10 for `profile` on `machine`.
pub fn analyze(profile: &AlgorithmProfile, machine: &MachineSpec) -> BalanceReport {
    let vertical = Constraint {
        lower_words_per_flop: profile.vertical_lb_per_flop,
        upper_words_per_flop: profile.vertical_ub_per_flop,
    }
    .verdict(machine.vertical_balance());
    let horizontal = Constraint {
        lower_words_per_flop: profile.horizontal_lb_per_flop,
        upper_words_per_flop: profile.horizontal_ub_per_flop,
    }
    .verdict(machine.horizontal_balance());
    BalanceReport {
        machine: machine.name.clone(),
        vertical_balance: machine.vertical_balance(),
        horizontal_balance: machine.horizontal_balance(),
        vertical,
        horizontal,
    }
}

/// The paper's CG profile (Section 5.2.3).
#[deprecated(
    since = "0.1.0",
    note = "moved to dmc_kernels::profile::cg_profile; prefer the catalog's Kernel::profile hook"
)]
pub fn cg_profile(n: usize, nodes: usize) -> AlgorithmProfile {
    dmc_kernels::profile::cg_profile(n, nodes)
}

/// The paper's GMRES profile (Section 5.3.3).
#[deprecated(
    since = "0.1.0",
    note = "moved to dmc_kernels::profile::gmres_profile; prefer the catalog's Kernel::profile hook"
)]
pub fn gmres_profile(n: usize, m: usize, nodes: usize) -> AlgorithmProfile {
    dmc_kernels::profile::gmres_profile(n, m, nodes)
}

/// The paper's Jacobi profile (Section 5.4.3).
#[deprecated(
    since = "0.1.0",
    note = "moved to dmc_kernels::profile::jacobi_profile; prefer the catalog's Kernel::profile hook"
)]
pub fn jacobi_profile(n: usize, d: usize, nodes: usize, s_words: u64) -> AlgorithmProfile {
    dmc_kernels::profile::jacobi_profile(n, d, nodes, s_words)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmc_kernels::profile::{cg_profile, gmres_profile, jacobi_profile};
    use dmc_machine::specs;

    #[test]
    fn cg_is_vertically_bound_everywhere() {
        // Section 5.2.3: 0.3 words/FLOP exceeds every Table-1 balance.
        let p = cg_profile(1000, 2048);
        for m in specs::table1_machines() {
            let r = analyze(&p, &m);
            assert_eq!(r.vertical, BandwidthVerdict::BandwidthBound, "{}", m.name);
            assert_eq!(
                r.horizontal,
                BandwidthVerdict::NotBandwidthBound,
                "{}",
                m.name
            );
        }
    }

    #[test]
    fn gmres_verdict_depends_on_m() {
        // Small m: vertical ratio 6/(m+20) > 0.052 — bound on BG/Q.
        let bgq = specs::ibm_bgq();
        let r = analyze(&gmres_profile(1000, 10, 2048), &bgq);
        assert_eq!(r.vertical, BandwidthVerdict::BandwidthBound);
        // Large m: ratio below balance; no upper bound given → inconclusive.
        let r = analyze(&gmres_profile(1000, 200, 2048), &bgq);
        assert_eq!(r.vertical, BandwidthVerdict::Inconclusive);
        // Horizontal always clears.
        assert_eq!(r.horizontal, BandwidthVerdict::NotBandwidthBound);
    }

    #[test]
    fn jacobi_3d_not_bound_on_bgq() {
        // Section 5.4.3: 3-D stencil is not DRAM-bandwidth-bound on BG/Q
        // (critical dimension ≈ 5-10).
        let bgq = specs::ibm_bgq();
        let p = jacobi_profile(1000, 3, 2048, bgq.llc_words());
        let r = analyze(&p, &bgq);
        // LB ratio = 1/(4·(8e6)^{1/3}) = 1/800 = 0.00125 < 0.052, and the
        // tiled UB 2/(8e6)^{1/3} = 0.01 < 0.052 → definitely not bound.
        assert_eq!(r.vertical, BandwidthVerdict::NotBandwidthBound);
    }

    #[test]
    fn deprecated_wrappers_match_the_moved_profiles() {
        #[allow(deprecated)]
        let old = super::cg_profile(1000, 2048);
        let new = cg_profile(1000, 2048);
        assert_eq!(old.vertical_lb_per_flop, new.vertical_lb_per_flop);
        assert_eq!(old.horizontal_ub_per_flop, new.horizontal_ub_per_flop);
    }

    #[test]
    fn catalog_profile_hook_matches_free_function() {
        use dmc_kernels::catalog::{ProfileContext, Registry};
        let registry = Registry::shared();
        let ctx = ProfileContext {
            nodes: 2048,
            sram: specs::ibm_bgq().llc_words(),
        };
        let spec = registry.parse("jacobi(n=16,d=3)").expect("valid spec");
        let hook = spec
            .kernel()
            .profile(spec.values(), &ctx)
            .expect("jacobi has a profile");
        let free = jacobi_profile(16, 3, 2048, ctx.sram);
        assert_eq!(hook.vertical_lb_per_flop, free.vertical_lb_per_flop);
        assert_eq!(hook.vertical_ub_per_flop, free.vertical_ub_per_flop);
        assert_eq!(hook.horizontal_ub_per_flop, free.horizontal_ub_per_flop);
    }

    #[test]
    fn report_row_formats() {
        let p = cg_profile(1000, 2048);
        let r = analyze(&p, &specs::ibm_bgq());
        let row = r.row();
        assert!(row.contains("IBM BG/Q"));
        assert!(row.contains("bandwidth-bound"));
    }
}
