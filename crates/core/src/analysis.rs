//! Machine-balance analysis (Section 5, Equations 4–10).
//!
//! Combines an algorithm's data-movement bounds with a machine's balance
//! parameters to decide, per memory level, whether the algorithm is
//! unavoidably bandwidth-bound (Equation 7 violated), definitely not
//! bandwidth-bound (Equation 8 violated), or inconclusive.

use dmc_machine::{BandwidthVerdict, Constraint, MachineSpec};
use serde::json::Value;
use serde::Serialize;

/// Per-FLOP data-movement characterization of an algorithm, already
/// normalized per Equations 9–10: `bound × N_nodes / |V|`.
#[derive(Debug, Clone)]
pub struct AlgorithmProfile {
    /// Algorithm name for reports.
    pub name: String,
    /// `LB_vert · N_nodes / |V|` — certified vertical words/FLOP.
    pub vertical_lb_per_flop: Option<f64>,
    /// `UB_vert · N_nodes / |V|` — achievable vertical words/FLOP.
    pub vertical_ub_per_flop: Option<f64>,
    /// `LB_horiz · N_nodes / |V|` — certified horizontal words/FLOP.
    pub horizontal_lb_per_flop: Option<f64>,
    /// `UB_horiz · N_nodes / |V|` — achievable horizontal words/FLOP.
    pub horizontal_ub_per_flop: Option<f64>,
}

/// The two verdicts of Section 5 for one machine.
#[derive(Debug, Clone)]
pub struct BalanceReport {
    /// Machine name.
    pub machine: String,
    /// The machine's vertical balance (words/FLOP).
    pub vertical_balance: f64,
    /// The machine's horizontal balance (words/FLOP).
    pub horizontal_balance: f64,
    /// Verdict for DRAM↔LLC traffic (Equation 9).
    pub vertical: BandwidthVerdict,
    /// Verdict for inter-node traffic (Equation 10).
    pub horizontal: BandwidthVerdict,
}

impl BalanceReport {
    /// One formatted report line.
    pub fn row(&self) -> String {
        format!(
            "{:<12} vert: {:<22} (balance {:.4})   horiz: {:<22} (balance {:.4})",
            self.machine,
            self.vertical.to_string(),
            self.vertical_balance,
            self.horizontal.to_string(),
            self.horizontal_balance
        )
    }
}

impl Serialize for BalanceReport {
    fn to_json(&self) -> Value {
        Value::object([
            ("machine", self.machine.to_json()),
            ("vertical_balance", self.vertical_balance.to_json()),
            ("horizontal_balance", self.horizontal_balance.to_json()),
            ("vertical", self.vertical.to_string().to_json()),
            ("horizontal", self.horizontal.to_string().to_json()),
        ])
    }
}

/// Applies Equations 9–10 for `profile` on `machine`.
pub fn analyze(profile: &AlgorithmProfile, machine: &MachineSpec) -> BalanceReport {
    let vertical = Constraint {
        lower_words_per_flop: profile.vertical_lb_per_flop,
        upper_words_per_flop: profile.vertical_ub_per_flop,
    }
    .verdict(machine.vertical_balance());
    let horizontal = Constraint {
        lower_words_per_flop: profile.horizontal_lb_per_flop,
        upper_words_per_flop: profile.horizontal_ub_per_flop,
    }
    .verdict(machine.horizontal_balance());
    BalanceReport {
        machine: machine.name.clone(),
        vertical_balance: machine.vertical_balance(),
        horizontal_balance: machine.horizontal_balance(),
        vertical,
        horizontal,
    }
}

/// The paper's CG profile (Section 5.2.3) for a 3-D grid of extent `n` on
/// `nodes` nodes: vertical LB ratio `6/20 = 0.3`, horizontal UB ratio
/// `6·nodes^{1/3} / (20·n)`.
pub fn cg_profile(n: usize, nodes: usize) -> AlgorithmProfile {
    AlgorithmProfile {
        name: format!("CG (3-D, n = {n})"),
        vertical_lb_per_flop: Some(6.0 / 20.0),
        vertical_ub_per_flop: None,
        horizontal_lb_per_flop: None,
        horizontal_ub_per_flop: Some(6.0 * (nodes as f64).powf(1.0 / 3.0) / (20.0 * n as f64)),
    }
}

/// The paper's GMRES profile (Section 5.3.3): vertical LB ratio
/// `6/(m + 20)`, horizontal UB ratio `6·nodes^{1/3}/(n·m)`.
pub fn gmres_profile(n: usize, m: usize, nodes: usize) -> AlgorithmProfile {
    AlgorithmProfile {
        name: format!("GMRES (3-D, n = {n}, m = {m})"),
        vertical_lb_per_flop: Some(6.0 / (m as f64 + 20.0)),
        vertical_ub_per_flop: None,
        horizontal_lb_per_flop: None,
        horizontal_ub_per_flop: Some(6.0 * (nodes as f64).powf(1.0 / 3.0) / (n as f64 * m as f64)),
    }
}

/// The paper's Jacobi profile (Section 5.4.3) for a d-dimensional stencil:
/// vertical LB ratio `S/U(C, 2S) = 1/(4·(2S)^{1/d})` (tight), horizontal
/// UB ratio from ghost cells `4·B·T / |V|`-style surface terms — per FLOP
/// this is `~2d/B` with `B = n/nodes^{1/d}`; we use the per-FLOP form
/// `2d / (flops_per_point · B)` with `flops_per_point` from the stencil.
pub fn jacobi_profile(n: usize, d: usize, nodes: usize, s_words: u64) -> AlgorithmProfile {
    let b = n as f64 / (nodes as f64).powf(1.0 / d as f64);
    let flops_per_point = (3.0f64).powi(d as i32); // Moore-stencil weights
    AlgorithmProfile {
        name: format!("Jacobi ({d}-D, n = {n})"),
        vertical_lb_per_flop: Some(1.0 / (4.0 * (2.0 * s_words as f64).powf(1.0 / d as f64))),
        vertical_ub_per_flop: Some(2.0 / (2.0 * s_words as f64).powf(1.0 / d as f64)),
        horizontal_lb_per_flop: None,
        horizontal_ub_per_flop: Some(2.0 * d as f64 / (flops_per_point * b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmc_machine::specs;

    #[test]
    fn cg_is_vertically_bound_everywhere() {
        // Section 5.2.3: 0.3 words/FLOP exceeds every Table-1 balance.
        let p = cg_profile(1000, 2048);
        for m in specs::table1_machines() {
            let r = analyze(&p, &m);
            assert_eq!(r.vertical, BandwidthVerdict::BandwidthBound, "{}", m.name);
            assert_eq!(
                r.horizontal,
                BandwidthVerdict::NotBandwidthBound,
                "{}",
                m.name
            );
        }
    }

    #[test]
    fn gmres_verdict_depends_on_m() {
        // Small m: vertical ratio 6/(m+20) > 0.052 — bound on BG/Q.
        let bgq = specs::ibm_bgq();
        let r = analyze(&gmres_profile(1000, 10, 2048), &bgq);
        assert_eq!(r.vertical, BandwidthVerdict::BandwidthBound);
        // Large m: ratio below balance; no upper bound given → inconclusive.
        let r = analyze(&gmres_profile(1000, 200, 2048), &bgq);
        assert_eq!(r.vertical, BandwidthVerdict::Inconclusive);
        // Horizontal always clears.
        assert_eq!(r.horizontal, BandwidthVerdict::NotBandwidthBound);
    }

    #[test]
    fn jacobi_3d_not_bound_on_bgq() {
        // Section 5.4.3: 3-D stencil is not DRAM-bandwidth-bound on BG/Q
        // (critical dimension ≈ 5-10).
        let bgq = specs::ibm_bgq();
        let p = jacobi_profile(1000, 3, 2048, bgq.llc_words());
        let r = analyze(&p, &bgq);
        // LB ratio = 1/(4·(8e6)^{1/3}) = 1/800 = 0.00125 < 0.052, and the
        // tiled UB 2/(8e6)^{1/3} = 0.01 < 0.052 → definitely not bound.
        assert_eq!(r.vertical, BandwidthVerdict::NotBandwidthBound);
    }

    #[test]
    fn jacobi_1d_is_bound_on_bgq() {
        // d = 1: LB ratio 1/(4·2S) is tiny... but per the paper's general
        // rule the binding happens at high d. Verify monotonicity: the LB
        // ratio *rises* with d.
        let bgq = specs::ibm_bgq();
        let lb_d1 = jacobi_profile(1000, 1, 2048, bgq.llc_words())
            .vertical_lb_per_flop
            .unwrap();
        let lb_d6 = jacobi_profile(1000, 6, 2048, bgq.llc_words())
            .vertical_lb_per_flop
            .unwrap();
        assert!(lb_d6 > lb_d1);
    }

    #[test]
    fn report_row_formats() {
        let p = cg_profile(1000, 2048);
        let r = analyze(&p, &specs::ibm_bgq());
        let row = r.row();
        assert!(row.contains("IBM BG/Q"));
        assert!(row.contains("bandwidth-bound"));
    }
}
