//! The unified bound-analysis pipeline.
//!
//! Everything the crate knows how to do to a CDAG, wired together and
//! applied automatically (the by-hand version of this wiring is what
//! every caller used to repeat):
//!
//! 1. find the weakly-connected components
//!    ([`dmc_cdag::components`]) and extract each as an induced sub-CDAG
//!    ([`dmc_cdag::subgraph::decompose`]);
//! 2. run the *method portfolio* on every component — trivial counting,
//!    Lemma 2 wavefronts on the shared [`WavefrontEngine`] (after a
//!    Theorem-3 untagging transfer), and the greedy-2S-partition Lemma-1
//!    relaxation — fanning components out across `std::thread::scope`
//!    workers with a deterministic merge (bit-identical at any thread
//!    count);
//! 3. compose the per-component winners with
//!    [`decomposition_sum`] (Theorem 2);
//! 4. compare against the best *single whole-graph* method, which the
//!    composed bound provably dominates (Section 3's composite point);
//! 5. optionally normalize the result per FLOP (Equation 9 with one
//!    node) and ask [`crate::analysis`] for machine-balance verdicts.
//!
//! The result is an [`AnalysisReport`] whose bounds carry full
//! [`Provenance`](crate::bounds::Provenance) trees: every node records
//! which theorem was applied with which parameters, and composed nodes
//! hold their sub-bounds as children.
//!
//! [`WavefrontEngine`]: dmc_cdag::engine::WavefrontEngine
//! [`decomposition_sum`]: crate::bounds::decompose::decomposition_sum

use crate::analysis::{analyze, AlgorithmProfile, BalanceReport};
use crate::bounds::decompose::{decomposition_sum, untag_inputs, untagging_transfer};
use crate::bounds::mincut::{auto_wavefront_bound_with, AnchorStrategy};
use crate::bounds::{best_lower_bound, lemma1_lower_bound, IoBound, Method};
use crate::partition::construct::greedy_partition;
use dmc_cdag::components::weakly_connected_components;
use dmc_cdag::fanout::fan_out_indexed;
use dmc_cdag::subgraph::{self, InducedSubCdag};
use dmc_cdag::topo::topological_order;
use dmc_cdag::{Cdag, VertexId};
use dmc_kernels::catalog::{AnalyticBound, KernelSpec, Registry, SpecError};
use dmc_machine::specs;
use serde::json::Value;
use serde::Serialize;
use std::fmt::Write as _;

/// One member of the analysis method portfolio.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortfolioMethod {
    /// `|I| + |O \ I|` — every input loaded, every pure output stored.
    Trivial,
    /// Lemma 2 wavefronts on the untagged CDAG (Theorem-3 transfer), run
    /// on the parallel batched [`dmc_cdag::engine::WavefrontEngine`].
    Wavefront,
    /// Lemma 1 via a counting relaxation of the minimum 2S-partition
    /// block count, with a greedy 2S-partition as a validity diagnostic.
    Partition2S,
}

impl PortfolioMethod {
    /// The full portfolio, in default (tie-break) priority order.
    pub fn all() -> Vec<PortfolioMethod> {
        vec![
            PortfolioMethod::Trivial,
            PortfolioMethod::Wavefront,
            PortfolioMethod::Partition2S,
        ]
    }
}

/// Configuration of an [`Analyzer`].
#[derive(Debug, Clone)]
pub struct AnalyzerConfig {
    /// Fast-memory capacity `S` in words.
    pub sram: u64,
    /// Worker-thread budget for both the component fan-out and the
    /// wavefront engine (`0` = `std::thread::available_parallelism`).
    pub threads: usize,
    /// Methods to run on every (sub-)CDAG.
    pub methods: Vec<PortfolioMethod>,
    /// Anchor sampling strategy for the wavefront method.
    pub anchor_strategy: AnchorStrategy,
    /// Decompose into weakly-connected components and compose the
    /// per-component bounds with Theorem 2 (on by default; with it off —
    /// or on connected graphs — the pipeline analyzes the whole graph
    /// only).
    pub decompose: bool,
    /// When decomposing, also run the portfolio on the *whole* graph as a
    /// comparison baseline (on by default). With the default portfolio
    /// the composed bound provably dominates the baseline (wavefronts
    /// never span components; the trivial bound is additive across
    /// them), so large multi-component analyses can turn this off to
    /// skip the duplicated whole-graph wavefront sweep. Caution: that
    /// dominance argument needs the trivial method in the portfolio —
    /// the 2S-counting bound alone is *not* additive, and skipping the
    /// baseline under such a custom portfolio can weaken the final
    /// bound. The baseline is always computed when there is nothing to
    /// compose.
    pub baseline: bool,
    /// Also report machine-balance verdicts (Equations 7–10) for the
    /// Table-1 machines, using the final bound normalized per FLOP.
    pub verdicts: bool,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        AnalyzerConfig {
            sram: 4,
            threads: 0,
            methods: PortfolioMethod::all(),
            anchor_strategy: AnchorStrategy::Adaptive,
            decompose: true,
            baseline: true,
            verdicts: false,
        }
    }
}

/// Per-component slice of an [`AnalysisReport`].
#[derive(Debug, Clone)]
pub struct ComponentReport {
    /// Component index (numbered by lowest parent vertex id).
    pub index: usize,
    /// Parent-CDAG id of the component's first vertex (for locating the
    /// component in the original graph).
    pub first_vertex: VertexId,
    /// `|V|` of the component.
    pub vertices: usize,
    /// `|E|` of the component.
    pub edges: usize,
    /// Every portfolio result, in portfolio order.
    pub candidates: Vec<IoBound>,
    /// The strongest candidate (first-wins tie-break).
    pub best: IoBound,
}

impl Serialize for ComponentReport {
    fn to_json(&self) -> Value {
        Value::object([
            ("index", self.index.to_json()),
            ("first_vertex", self.first_vertex.index().to_json()),
            ("vertices", self.vertices.to_json()),
            ("edges", self.edges.to_json()),
            ("candidates", self.candidates.to_json()),
            ("best", self.best.to_json()),
        ])
    }
}

/// Catalog context attached to reports produced via
/// [`Analyzer::analyze_spec`] / [`Analyzer::analyze_kernel`]: the
/// canonical kernel spec plus the kernel's analytic bounds, rendered
/// next to the pipeline bounds in both text and JSON.
///
/// The analytic lower bound is *reported*, never merged into
/// [`AnalysisReport::bound`]: the paper's closed forms use asymptotic
/// constants (e.g. Theorem 9's `n ≫ S` regime) that are not certified
/// at every finite parameter point the pipeline handles.
#[derive(Debug, Clone)]
pub struct KernelReport {
    /// Canonical spec string (`KernelSpec::render`).
    pub spec: String,
    /// The kernel's closed-form lower bound at the report's `S`.
    pub analytic_lower: Option<IoBound>,
    /// The kernel's achievable upper bound at the report's `S` (only
    /// when the schedule behind the formula is feasible at that `S`).
    pub analytic_upper: Option<AnalyticBound>,
    /// The kernel's FLOP-count estimate.
    pub flops_estimate: Option<f64>,
}

impl Serialize for KernelReport {
    fn to_json(&self) -> Value {
        Value::object([
            ("spec", self.spec.to_json()),
            ("analytic_lower", self.analytic_lower.to_json()),
            (
                "analytic_upper",
                self.analytic_upper
                    .as_ref()
                    .map(|u| {
                        Value::object([("value", u.value.to_json()), ("note", u.note.to_json())])
                    })
                    .unwrap_or(Value::Null),
            ),
            ("flops_estimate", self.flops_estimate.to_json()),
        ])
    }
}

/// The pipeline's output: a provenance *tree* over the whole analysis,
/// not a flat number.
#[derive(Debug, Clone)]
#[must_use = "the analysis is pure; the report is its only product"]
pub struct AnalysisReport {
    /// `|V|` of the analyzed CDAG.
    pub vertices: usize,
    /// `|E|` of the analyzed CDAG.
    pub edges: usize,
    /// `|I|` of the analyzed CDAG.
    pub inputs: usize,
    /// `|O|` of the analyzed CDAG.
    pub outputs: usize,
    /// The `S` the bounds were computed for.
    pub sram: u64,
    /// Number of weakly-connected components.
    pub component_count: usize,
    /// Per-component analyses (empty when decomposition was skipped).
    pub components: Vec<ComponentReport>,
    /// Every whole-graph portfolio result (the baseline the composed
    /// bound is compared against; empty when the baseline was skipped via
    /// [`AnalyzerConfig::baseline`]).
    pub whole_graph: Vec<IoBound>,
    /// The strongest single whole-graph method (`None` when the baseline
    /// was skipped).
    pub best_whole_graph: Option<IoBound>,
    /// The Theorem-2 composition of per-component winners (`None` when
    /// decomposition was skipped or the graph is connected).
    pub composed: Option<IoBound>,
    /// The pipeline's final certified lower bound: the composed bound
    /// when available (it dominates), otherwise the whole-graph best.
    pub bound: IoBound,
    /// Machine-balance verdicts (empty unless
    /// [`AnalyzerConfig::verdicts`]).
    pub balance: Vec<BalanceReport>,
    /// Kernel-catalog context (`None` unless the report came from
    /// [`Analyzer::analyze_spec`] / [`Analyzer::analyze_kernel`]).
    pub kernel: Option<KernelReport>,
}

impl AnalysisReport {
    /// The final bound normalized per FLOP (Equation 9 with one node):
    /// `bound / |V − I|`; `None` for input-only CDAGs.
    pub fn words_per_flop(&self) -> Option<f64> {
        let work = (self.vertices - self.inputs) as f64;
        (work > 0.0).then(|| self.bound.value / work)
    }
}

impl std::fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(k) = &self.kernel {
            writeln!(f, "kernel: {}", k.spec)?;
        }
        writeln!(
            f,
            "CDAG: |V| = {}, |E| = {}, |I| = {}, |O| = {}, S = {}",
            self.vertices, self.edges, self.inputs, self.outputs, self.sram
        )?;
        writeln!(f, "weakly-connected components: {}", self.component_count)?;
        for c in &self.components {
            writeln!(
                f,
                "\ncomponent {} (first vertex {}, |V| = {}, |E| = {}):",
                c.index, c.first_vertex, c.vertices, c.edges
            )?;
            for cand in &c.candidates {
                writeln!(f, "  candidate >= {:<8} {}", cand.value, cand.method)?;
            }
            write!(f, "  best:\n{}", indent(&c.best.to_string(), 2))?;
        }
        if let Some(best_whole) = &self.best_whole_graph {
            writeln!(f, "\nwhole-graph baseline (best single method):")?;
            write!(f, "{}", indent(&best_whole.to_string(), 1))?;
        }
        if let Some(composed) = &self.composed {
            writeln!(f, "\ncomposed per-component bound (Theorem 2):")?;
            write!(f, "{}", indent(&composed.to_string(), 1))?;
        }
        writeln!(f, "\nfinal certified lower bound: >= {}", self.bound.value)?;
        if let Some(k) = &self.kernel {
            if k.analytic_lower.is_some() || k.analytic_upper.is_some() {
                writeln!(f, "\nanalytic bounds (kernel catalog, not merged):")?;
            }
            if let Some(lower) = &k.analytic_lower {
                write!(f, "{}", indent(&lower.to_string(), 1))?;
            }
            if let Some(upper) = &k.analytic_upper {
                writeln!(f, "  <= {:<8} achievable — {}", upper.value, upper.note)?;
            }
            if let Some(flops) = k.flops_estimate {
                writeln!(f, "flops estimate: {flops:.0}")?;
            }
        }
        if let Some(ratio) = self.words_per_flop() {
            writeln!(f, "normalized (Eq. 9, 1 node): {ratio:.6} words/FLOP")?;
        }
        if !self.balance.is_empty() {
            writeln!(f, "machine-balance verdicts (Table 1):")?;
            for r in &self.balance {
                writeln!(f, "  {}", r.row())?;
            }
        }
        Ok(())
    }
}

fn indent(text: &str, levels: usize) -> String {
    let pad = "  ".repeat(levels);
    let mut out = String::with_capacity(text.len() + 2 * levels);
    for line in text.lines() {
        let _ = writeln!(out, "{pad}{line}");
    }
    out
}

impl Serialize for AnalysisReport {
    fn to_json(&self) -> Value {
        Value::object([
            ("vertices", self.vertices.to_json()),
            ("edges", self.edges.to_json()),
            ("inputs", self.inputs.to_json()),
            ("outputs", self.outputs.to_json()),
            ("sram", self.sram.to_json()),
            ("component_count", self.component_count.to_json()),
            ("components", self.components.to_json()),
            ("whole_graph", self.whole_graph.to_json()),
            ("best_whole_graph", self.best_whole_graph.to_json()),
            (
                "composed",
                self.composed
                    .as_ref()
                    .map(Serialize::to_json)
                    .unwrap_or(Value::Null),
            ),
            ("bound", self.bound.to_json()),
            ("words_per_flop", self.words_per_flop().to_json()),
            ("balance", self.balance.to_json()),
            ("kernel", self.kernel.to_json()),
        ])
    }
}

/// The unified analysis pipeline over arbitrary CDAGs.
///
/// # Example
///
/// ```
/// use dmc_core::pipeline::{Analyzer, AnalyzerConfig};
///
/// // Two independent chains: the pipeline finds both components, bounds
/// // each, and composes with Theorem 2 — 2 words of I/O per chain.
/// let g = dmc_kernels::chains::independent_chains(2, 3);
/// let report = Analyzer::new(AnalyzerConfig {
///     sram: 2,
///     ..AnalyzerConfig::default()
/// })
/// .analyze(&g);
/// assert_eq!(report.component_count, 2);
/// assert_eq!(report.bound.value, 4.0);
/// // The report is deterministic at any thread count.
/// let one_thread = Analyzer::new(AnalyzerConfig {
///     sram: 2,
///     threads: 1,
///     ..AnalyzerConfig::default()
/// })
/// .analyze(&g);
/// assert_eq!(report.to_string(), one_thread.to_string());
/// ```
#[derive(Debug, Clone)]
pub struct Analyzer {
    config: AnalyzerConfig,
}

impl Analyzer {
    /// Builds an analyzer with the given configuration.
    pub fn new(config: AnalyzerConfig) -> Self {
        assert!(config.sram >= 1, "S must be at least 1");
        assert!(!config.methods.is_empty(), "empty method portfolio");
        Analyzer { config }
    }

    /// Analyzer with the default configuration.
    pub fn with_defaults() -> Self {
        Analyzer::new(AnalyzerConfig::default())
    }

    /// The configuration this analyzer runs.
    pub fn config(&self) -> &AnalyzerConfig {
        &self.config
    }

    /// Runs the full pipeline on `g`.
    pub fn analyze(&self, g: &Cdag) -> AnalysisReport {
        let comps = weakly_connected_components(g);
        let decomposed = self.config.decompose && comps.count > 1;

        // Whole-graph portfolio: the comparison baseline. Gets the full
        // thread budget (the engine parallelizes internally). Skippable
        // when a composed bound will exist (it dominates the baseline),
        // mandatory otherwise — it is then the only bound source.
        let whole_graph = if self.config.baseline || !decomposed {
            self.portfolio(g, self.config.threads)
        } else {
            Vec::new()
        };
        let best_whole_graph = best_lower_bound(whole_graph.iter().cloned());

        let (components, composed) = if decomposed {
            let pieces = subgraph::decompose(g, &comps.assignment, comps.count);
            let components = self.analyze_components(&pieces);
            let composed = decomposition_sum(
                &components
                    .iter()
                    .map(|c| c.best.clone())
                    .collect::<Vec<_>>(),
            );
            (components, Some(composed))
        } else {
            (Vec::new(), None)
        };

        // The composed bound dominates the baseline (a whole-graph
        // wavefront anchor never spans components, and the trivial and
        // counting bounds are additive across them), but `max` with a
        // composed-first tie-break keeps the final answer correct even
        // for portfolios where that argument does not apply.
        let bound = best_lower_bound(
            composed
                .iter()
                .cloned()
                .chain(best_whole_graph.iter().cloned()),
        )
        // dmc-lint: allow(s1) -- the portfolio always contains the whole-graph baseline, so a best element exists
        .expect("composed or whole-graph best always exists");

        let balance = if self.config.verdicts {
            let work = g.num_compute_vertices() as f64;
            let profile = AlgorithmProfile {
                name: "pipeline".to_string(),
                vertical_lb_per_flop: (work > 0.0).then(|| bound.value / work),
                vertical_ub_per_flop: None,
                horizontal_lb_per_flop: None,
                horizontal_ub_per_flop: None,
            };
            specs::table1_machines()
                .iter()
                .map(|m| analyze(&profile, m))
                .collect()
        } else {
            Vec::new()
        };

        AnalysisReport {
            vertices: g.num_vertices(),
            edges: g.num_edges(),
            inputs: g.num_inputs(),
            outputs: g.num_outputs(),
            sram: self.config.sram,
            component_count: comps.count,
            components,
            whole_graph,
            best_whole_graph,
            composed,
            bound,
            balance,
            kernel: None,
        }
    }

    /// Parses `spec` against the shared kernel [`Registry`], builds the
    /// CDAG, and runs the pipeline on it. The report carries the
    /// canonical spec and the kernel's analytic bounds (rendered next to
    /// the pipeline bounds, never merged into the certified bound).
    ///
    /// ```
    /// use dmc_core::pipeline::Analyzer;
    ///
    /// let report = Analyzer::with_defaults()
    ///     .analyze_spec("chains(k=3,len=4)")
    ///     .expect("valid spec");
    /// assert_eq!(report.component_count, 3);
    /// assert_eq!(report.kernel.unwrap().spec, "chains(k=3,len=4)");
    /// ```
    pub fn analyze_spec(&self, spec: &str) -> Result<AnalysisReport, SpecError> {
        Ok(self.analyze_kernel(&Registry::shared().parse(spec)?))
    }

    /// Runs the pipeline on an already-parsed catalog spec (see
    /// [`Analyzer::analyze_spec`]).
    pub fn analyze_kernel(&self, spec: &KernelSpec<'_>) -> AnalysisReport {
        let g = spec.build();
        let mut report = self.analyze(&g);
        let (kernel, values) = (spec.kernel(), spec.values());
        report.kernel = Some(KernelReport {
            spec: spec.render(),
            analytic_lower: kernel
                .analytic_lower_bound(values, self.config.sram)
                .map(|a| IoBound::new(a.value, Method::Analytic, a.note)),
            analytic_upper: kernel.analytic_upper_bound(values, self.config.sram),
            flops_estimate: kernel.flops_estimate(values),
        });
        report
    }

    /// Fans per-component analyses out over scoped workers
    /// ([`fan_out_indexed`]); the index-ordered merge keeps the report
    /// bit-identical at any thread count.
    fn analyze_components(&self, pieces: &[InducedSubCdag]) -> Vec<ComponentReport> {
        let total = self.resolved_threads(usize::MAX);
        let workers = total.clamp(1, pieces.len());
        // Split the budget: more threads than components means each
        // worker's wavefront engine gets a share instead of idling the
        // surplus. The engine's result is thread-count-invariant, so the
        // bit-identical-report guarantee is unaffected.
        let engine_threads = (total / pieces.len()).max(1);
        fan_out_indexed(
            pieces.len(),
            workers,
            || (),
            |_, i| self.component_report(i, &pieces[i], engine_threads),
        )
    }

    fn component_report(
        &self,
        index: usize,
        piece: &InducedSubCdag,
        engine_threads: usize,
    ) -> ComponentReport {
        let candidates = self.portfolio(&piece.cdag, engine_threads);
        let best = best_lower_bound(candidates.iter().cloned())
            // dmc-lint: allow(s1) -- the portfolio always contains the whole-graph baseline, so it is non-empty
            .expect("portfolio is non-empty by construction");
        ComponentReport {
            index,
            first_vertex: piece.parent_of(VertexId(0)),
            vertices: piece.cdag.num_vertices(),
            edges: piece.cdag.num_edges(),
            candidates,
            best,
        }
    }

    /// Runs the configured method portfolio on one CDAG.
    fn portfolio(&self, g: &Cdag, engine_threads: usize) -> Vec<IoBound> {
        self.config
            .methods
            .iter()
            .map(|m| match m {
                PortfolioMethod::Trivial => IoBound::trivial(g),
                PortfolioMethod::Wavefront => self.wavefront_bound(g, engine_threads),
                PortfolioMethod::Partition2S => partition2s_bound(g, self.config.sram),
            })
            .collect()
    }

    /// Lemma 2 on the untagged CDAG; when the graph had tagged inputs the
    /// result is wrapped in the Theorem-3 untagging transfer that makes
    /// it valid for the tagged graph.
    fn wavefront_bound(&self, g: &Cdag, engine_threads: usize) -> IoBound {
        let untagged = untag_inputs(g);
        let wf = auto_wavefront_bound_with(
            &untagged,
            self.config.sram,
            self.config.anchor_strategy,
            engine_threads,
        );
        if g.num_inputs() > 0 {
            untagging_transfer(&wf)
        } else {
            wf
        }
    }

    pub(crate) fn resolved_threads(&self, work_items: usize) -> usize {
        let t = if self.config.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.config.threads
        };
        t.clamp(1, work_items.max(1))
    }
}

/// Above this size the greedy 2S-partition diagnostic (quadratic in the
/// worst case) is skipped; the certified counting bound is unaffected.
const GREEDY_DIAGNOSTIC_LIMIT: usize = 2048;

/// Lemma 1 through a *counting relaxation* of the minimum 2S-partition
/// block count, decorated with a greedy 2S-partition diagnostic.
///
/// Soundness: in any valid 2S-partition (Definition 5) every tagged
/// output outside `I` lies in exactly one block's `Out` set and every
/// tagged input with a successor appears in at least one block's `In`
/// set, while `|In|, |Out| ≤ 2S` per block — so
/// `h_min ≥ ⌈max(|O∖I|, |I_used|)/2S⌉` and Lemma 1 gives
/// `Q ≥ S·(h_min − 1)`. The greedy partition's block count *over*-counts
/// `h_min` and is reported only as a diagnostic, never used as a bound.
pub fn partition2s_bound(g: &Cdag, s: u64) -> IoBound {
    assert!(s >= 1, "S must be at least 1");
    // Saturating: `2 * s` must not wrap for absurd S (that would *shrink*
    // the divisor and overclaim the certified bound, or divide by zero).
    let two_s = s.saturating_mul(2);
    let mut pure_outputs = g.outputs().clone();
    pure_outputs.difference_with(g.inputs());
    let used_inputs = g
        .inputs()
        .iter()
        .filter(|&i| g.out_degree(VertexId(i as u32)) > 0)
        .count();
    let demand = pure_outputs.len().max(used_inputs);
    // `h_lb ≤ demand ≤ |V|` fits comfortably in usize.
    let h_lb = (demand as u64).div_ceil(two_s) as usize;
    let value = lemma1_lower_bound(s as usize, h_lb) as f64;
    let mut note = format!(
        "S·(h_min − 1) with h_min ≥ ⌈max(|O∖I| = {}, |I_used| = {used_inputs})/2S⌉ = {h_lb}",
        pure_outputs.len()
    );
    // The greedy partition cannot place a vertex whose in-degree alone
    // exceeds 2S; skip the diagnostic when no valid 2S-partition exists
    // (or the graph is too large for a quadratic diagnostic).
    let two_s_blocks = usize::try_from(two_s).unwrap_or(usize::MAX);
    let partitionable = g.num_vertices() <= GREEDY_DIAGNOSTIC_LIMIT
        && g.vertices()
            .filter(|&v| !g.is_input(v))
            .all(|v| g.in_degree(v) <= two_s_blocks);
    if partitionable {
        let p = greedy_partition(g, &topological_order(g), two_s_blocks);
        let _ = write!(
            note,
            "; greedy 2S-partition: h = {}, largest block = {} (diagnostic)",
            p.num_blocks(),
            p.largest_block()
        );
    }
    IoBound::new(value, Method::HongKung2S, note)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games::optimal::{optimal_io, GameKind};
    use dmc_kernels::chains;

    fn analyzer(sram: u64, threads: usize) -> Analyzer {
        Analyzer::new(AnalyzerConfig {
            sram,
            threads,
            ..AnalyzerConfig::default()
        })
    }

    #[test]
    fn connected_graph_skips_decomposition() {
        let g = chains::ladder(4, 4);
        let r = analyzer(2, 1).analyze(&g);
        assert_eq!(r.component_count, 1);
        assert!(r.composed.is_none());
        assert!(r.components.is_empty());
        assert_eq!(r.bound.value, r.best_whole_graph.as_ref().unwrap().value);
    }

    #[test]
    fn disjoint_chains_compose_exactly() {
        // 3 chains, optimal I/O 2 each: composed bound is exactly 6.
        let g = chains::independent_chains(3, 4);
        let r = analyzer(2, 2).analyze(&g);
        assert_eq!(r.component_count, 3);
        assert_eq!(r.components.len(), 3);
        let composed = r.composed.as_ref().expect("multi-component");
        assert_eq!(composed.value, 6.0);
        assert_eq!(composed.provenance.children.len(), 3);
        assert_eq!(r.bound.value, 6.0);
        // Sound vs the exact optimum.
        let opt = optimal_io(&g, 2, GameKind::Rbw).unwrap();
        assert!(r.bound.value <= opt as f64);
    }

    #[test]
    fn report_is_bit_identical_across_thread_counts() {
        let g = chains::independent_chains(4, 5);
        let base = analyzer(2, 1).analyze(&g);
        for threads in [2usize, 4] {
            let r = analyzer(2, threads).analyze(&g);
            assert_eq!(r.to_string(), base.to_string(), "@ {threads} threads");
            assert_eq!(
                serde::json::to_string(&r),
                serde::json::to_string(&base),
                "@ {threads} threads"
            );
        }
    }

    #[test]
    fn decompose_off_is_whole_graph_only() {
        let g = chains::independent_chains(2, 3);
        let r = Analyzer::new(AnalyzerConfig {
            sram: 2,
            threads: 1,
            decompose: false,
            ..AnalyzerConfig::default()
        })
        .analyze(&g);
        assert_eq!(r.component_count, 2);
        assert!(r.composed.is_none());
        assert_eq!(r.bound.value, r.best_whole_graph.as_ref().unwrap().value);
    }

    #[test]
    fn baseline_off_skips_whole_graph_but_keeps_the_bound() {
        let g = chains::independent_chains(3, 4);
        let with = analyzer(2, 1).analyze(&g);
        let without = Analyzer::new(AnalyzerConfig {
            sram: 2,
            threads: 1,
            baseline: false,
            ..AnalyzerConfig::default()
        })
        .analyze(&g);
        assert!(without.whole_graph.is_empty());
        assert!(without.best_whole_graph.is_none());
        assert_eq!(without.bound.value, with.bound.value);
        // On a connected graph the baseline is the only bound source and
        // must run regardless of the flag.
        let connected = Analyzer::new(AnalyzerConfig {
            sram: 2,
            threads: 1,
            baseline: false,
            ..AnalyzerConfig::default()
        })
        .analyze(&chains::ladder(3, 3));
        assert!(connected.best_whole_graph.is_some());
    }

    #[test]
    fn partition2s_bound_survives_huge_sram() {
        // Regression: `2 * s` used to wrap for S > u64::MAX/2, shrinking
        // the divisor (overclaimed bound) or panicking on div-by-zero.
        let g = chains::binary_reduction(8);
        for s in [u64::MAX / 2, u64::MAX / 2 + 1, u64::MAX] {
            let b = partition2s_bound(&g, s);
            assert_eq!(b.value, 0.0, "S = {s}");
        }
    }

    #[test]
    fn partition2s_bound_is_sound_and_annotated() {
        let g = chains::binary_reduction(8);
        let b = partition2s_bound(&g, 2);
        assert_eq!(b.method, Method::HongKung2S);
        assert!(b.provenance.note.contains("greedy 2S-partition"));
        if let Some(opt) = optimal_io(&g, 2, GameKind::Rbw) {
            assert!(b.value <= opt as f64);
        }
    }

    #[test]
    fn verdicts_populated_on_request() {
        let g = chains::ladder(3, 3);
        let r = Analyzer::new(AnalyzerConfig {
            sram: 2,
            threads: 1,
            verdicts: true,
            ..AnalyzerConfig::default()
        })
        .analyze(&g);
        assert_eq!(r.balance.len(), specs::table1_machines().len());
        assert!(r.to_string().contains("machine-balance verdicts"));
    }

    #[test]
    fn analyze_spec_attaches_kernel_context() {
        let r = analyzer(4, 1)
            .analyze_spec("jacobi(n=4,d=2,t=3)")
            .expect("valid spec");
        let k = r.kernel.as_ref().expect("spec-driven report");
        assert_eq!(k.spec, "jacobi(n=4,d=2,t=3,stencil=star)");
        let analytic = k.analytic_lower.as_ref().expect("Theorem 10");
        assert_eq!(analytic.method, Method::Analytic);
        assert!(analytic.provenance.note.contains("Theorem 10"));
        assert!(k.flops_estimate.is_some());
        let text = r.to_string();
        assert!(text.starts_with("kernel: jacobi("), "{text}");
        assert!(text.contains("analytic bounds (kernel catalog"), "{text}");
        let json = serde::json::to_string(&r);
        assert!(json.contains(r#""kernel":{"spec":"jacobi("#), "{json}");
    }

    #[test]
    fn analyze_spec_matches_plain_analyze_on_the_same_graph() {
        use dmc_kernels::grid::Stencil;
        let hand = dmc_kernels::jacobi::jacobi_cdag(4, 1, 3, Stencil::VonNeumann).cdag;
        let a = analyzer(3, 1);
        let via_spec = a.analyze_spec("jacobi(n=4,d=1,t=3)").expect("valid");
        let via_graph = a.analyze(&hand);
        assert_eq!(via_spec.bound.value, via_graph.bound.value);
        assert_eq!(via_spec.bound.to_string(), via_graph.bound.to_string());
    }

    #[test]
    fn analyze_spec_bad_spec_is_loud() {
        let err = analyzer(4, 1).analyze_spec("warp_drive(n=4)").unwrap_err();
        assert!(err.to_string().contains("unknown kernel"), "{err}");
    }

    #[test]
    fn wavefront_candidate_records_theorem3_transfer() {
        let g = chains::ladder(4, 4);
        let r = analyzer(1, 1).analyze(&g);
        let wf = &r.whole_graph[1];
        assert_eq!(wf.method, Method::Tagging);
        assert_eq!(wf.provenance.children.len(), 1);
        assert_eq!(wf.provenance.children[0].method, Method::Wavefront);
    }
}
