//! The unified bound-analysis pipeline.
//!
//! Everything the crate knows how to do to a CDAG, wired together and
//! applied automatically (the by-hand version of this wiring is what
//! every caller used to repeat):
//!
//! 1. find the weakly-connected components
//!    ([`dmc_cdag::components`]) and extract each as an induced sub-CDAG
//!    ([`dmc_cdag::subgraph::decompose`]);
//! 2. run the *method portfolio* on every component — trivial counting,
//!    Lemma 2 wavefronts on the shared [`WavefrontEngine`] (after a
//!    Theorem-3 untagging transfer), and the greedy-2S-partition Lemma-1
//!    relaxation — fanning components out across `std::thread::scope`
//!    workers with a deterministic merge (bit-identical at any thread
//!    count);
//! 3. compose the per-component winners with
//!    [`decomposition_sum`] (Theorem 2);
//! 4. compare against the best *single whole-graph* method, which the
//!    composed bound provably dominates (Section 3's composite point);
//! 5. optionally normalize the result per FLOP (Equation 9 with one
//!    node) and ask [`crate::analysis`] for machine-balance verdicts.
//!
//! The result is an [`AnalysisReport`] whose bounds carry full
//! [`Provenance`](crate::bounds::Provenance) trees: every node records
//! which theorem was applied with which parameters, and composed nodes
//! hold their sub-bounds as children.
//!
//! # Hierarchical mode
//!
//! [`Analyzer::analyze_hierarchical`] is the pipeline's scale path for
//! CDAGs too large to sweep with whole-graph wavefronts (10⁷–10⁸
//! vertices): it splits the Kahn order into `K` contiguous interval
//! clusters ([`topological_clusters`]), runs the method portfolio on
//! every cluster (fanned out over the same deterministic
//! [`fan_out_indexed`] workers), composes the per-cluster winners with
//! Theorem 2 — sound for *any* total disjoint vertex partition, crossing
//! edges included — and contracts the clustering into an annotated
//! super-vertex DAG ([`mod@dmc_cdag::coarsen`]) reported as a structural
//! diagnostic. See [`HierarchicalOptions`] for the size gates that keep
//! every stage linear-time at scale.
//!
//! [`WavefrontEngine`]: dmc_cdag::engine::WavefrontEngine
//! [`decomposition_sum`]: crate::bounds::decompose::decomposition_sum

use crate::analysis::{analyze, AlgorithmProfile, BalanceReport};
use crate::bounds::decompose::{decomposition_sum, untag_inputs, untagging_transfer};
use crate::bounds::mincut::{auto_wavefront_bound_with, AnchorStrategy};
use crate::bounds::{best_lower_bound, lemma1_lower_bound, IoBound, Method};
use crate::partition::construct::{greedy_partition, topological_clusters};
use dmc_cdag::coarsen::{coarsen, ClusterInfo, CoarseDag};
use dmc_cdag::components::weakly_connected_components;
use dmc_cdag::engine::WavefrontEngine;
use dmc_cdag::fanout::fan_out_indexed;
use dmc_cdag::subgraph::{self, InducedSubCdag};
use dmc_cdag::topo::topological_order;
use dmc_cdag::{Cdag, VertexId};
use dmc_kernels::catalog::{AnalyticBound, KernelSpec, Registry, SpecError};
use dmc_machine::specs;
use serde::json::Value;
use serde::Serialize;
use std::fmt::Write as _;

/// One member of the analysis method portfolio.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortfolioMethod {
    /// `|I| + |O \ I|` — every input loaded, every pure output stored.
    Trivial,
    /// Lemma 2 wavefronts on the untagged CDAG (Theorem-3 transfer), run
    /// on the parallel batched [`dmc_cdag::engine::WavefrontEngine`].
    Wavefront,
    /// Lemma 1 via a counting relaxation of the minimum 2S-partition
    /// block count, with a greedy 2S-partition as a validity diagnostic.
    Partition2S,
}

impl PortfolioMethod {
    /// The full portfolio, in default (tie-break) priority order.
    pub fn all() -> Vec<PortfolioMethod> {
        vec![
            PortfolioMethod::Trivial,
            PortfolioMethod::Wavefront,
            PortfolioMethod::Partition2S,
        ]
    }
}

/// Configuration of an [`Analyzer`].
#[derive(Debug, Clone)]
pub struct AnalyzerConfig {
    /// Fast-memory capacity `S` in words.
    pub sram: u64,
    /// Worker-thread budget for both the component fan-out and the
    /// wavefront engine (`0` = `std::thread::available_parallelism`).
    pub threads: usize,
    /// Methods to run on every (sub-)CDAG.
    pub methods: Vec<PortfolioMethod>,
    /// Anchor sampling strategy for the wavefront method.
    pub anchor_strategy: AnchorStrategy,
    /// Decompose into weakly-connected components and compose the
    /// per-component bounds with Theorem 2 (on by default; with it off —
    /// or on connected graphs — the pipeline analyzes the whole graph
    /// only).
    pub decompose: bool,
    /// When decomposing, also run the portfolio on the *whole* graph as a
    /// comparison baseline (on by default). With the default portfolio
    /// the composed bound provably dominates the baseline (wavefronts
    /// never span components; the trivial bound is additive across
    /// them), so large multi-component analyses can turn this off to
    /// skip the duplicated whole-graph wavefront sweep. Caution: that
    /// dominance argument needs the trivial method in the portfolio —
    /// the 2S-counting bound alone is *not* additive, and skipping the
    /// baseline under such a custom portfolio can weaken the final
    /// bound. The baseline is always computed when there is nothing to
    /// compose.
    pub baseline: bool,
    /// Also report machine-balance verdicts (Equations 7–10) for the
    /// Table-1 machines, using the final bound normalized per FLOP.
    pub verdicts: bool,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        AnalyzerConfig {
            sram: 4,
            threads: 0,
            methods: PortfolioMethod::all(),
            anchor_strategy: AnchorStrategy::Adaptive,
            decompose: true,
            baseline: true,
            verdicts: false,
        }
    }
}

/// Per-component slice of an [`AnalysisReport`].
#[derive(Debug, Clone)]
pub struct ComponentReport {
    /// Component index (numbered by lowest parent vertex id).
    pub index: usize,
    /// Parent-CDAG id of the component's first vertex (for locating the
    /// component in the original graph).
    pub first_vertex: VertexId,
    /// `|V|` of the component.
    pub vertices: usize,
    /// `|E|` of the component.
    pub edges: usize,
    /// Every portfolio result, in portfolio order.
    pub candidates: Vec<IoBound>,
    /// The strongest candidate (first-wins tie-break).
    pub best: IoBound,
}

impl Serialize for ComponentReport {
    fn to_json(&self) -> Value {
        Value::object([
            ("index", self.index.to_json()),
            ("first_vertex", self.first_vertex.index().to_json()),
            ("vertices", self.vertices.to_json()),
            ("edges", self.edges.to_json()),
            ("candidates", self.candidates.to_json()),
            ("best", self.best.to_json()),
        ])
    }
}

/// Catalog context attached to reports produced via
/// [`Analyzer::analyze_spec`] / [`Analyzer::analyze_kernel`]: the
/// canonical kernel spec plus the kernel's analytic bounds, rendered
/// next to the pipeline bounds in both text and JSON.
///
/// The analytic lower bound is *reported*, never merged into
/// [`AnalysisReport::bound`]: the paper's closed forms use asymptotic
/// constants (e.g. Theorem 9's `n ≫ S` regime) that are not certified
/// at every finite parameter point the pipeline handles.
#[derive(Debug, Clone)]
pub struct KernelReport {
    /// Canonical spec string (`KernelSpec::render`).
    pub spec: String,
    /// The kernel's closed-form lower bound at the report's `S`.
    pub analytic_lower: Option<IoBound>,
    /// The kernel's achievable upper bound at the report's `S` (only
    /// when the schedule behind the formula is feasible at that `S`).
    pub analytic_upper: Option<AnalyticBound>,
    /// The kernel's FLOP-count estimate.
    pub flops_estimate: Option<f64>,
}

impl Serialize for KernelReport {
    fn to_json(&self) -> Value {
        Value::object([
            ("spec", self.spec.to_json()),
            ("analytic_lower", self.analytic_lower.to_json()),
            (
                "analytic_upper",
                self.analytic_upper
                    .as_ref()
                    .map(|u| {
                        Value::object([("value", u.value.to_json()), ("note", u.note.to_json())])
                    })
                    .unwrap_or(Value::Null),
            ),
            ("flops_estimate", self.flops_estimate.to_json()),
        ])
    }
}

/// Options of [`Analyzer::analyze_hierarchical`]: the cluster count and
/// the size gates that keep the hierarchical pipeline linear-time at
/// 10⁷–10⁸ vertices.
#[derive(Debug, Clone)]
pub struct HierarchicalOptions {
    /// Number of interval clusters (`None` = auto:
    /// `⌈|V| / 2¹⁶⌉` clamped to `2..=1024`). Clamped to `1..=|V|`.
    pub clusters: Option<usize>,
    /// Largest cluster (in vertices) on which the per-cluster portfolio
    /// runs its *wavefront* member. Per-cluster wavefronts are sound
    /// (Theorem 2 composes lower bounds of induced sub-CDAGs of any
    /// total disjoint partition) and can legitimately certify **more**
    /// than the flat pipeline — each cluster independently forces its
    /// own traffic — but that makes flat-vs-hierarchical comparisons a
    /// judgment call rather than an invariant. The default is therefore
    /// `0` (off): the default hierarchical bound is dominated by the
    /// flat bound by construction (per-cluster trivial bounds sum to
    /// exactly the whole-graph trivial bound, and the 2S-counting bound
    /// never exceeds the trivial bound on the same graph). Raise the
    /// limit to opt into the stronger composed bound.
    pub cluster_wavefront_limit: usize,
    /// Largest original graph (in vertices) on which the sound
    /// whole-graph wavefront pass (Lemma 2 + Theorem 3, identical to
    /// the flat pipeline's wavefront member) still runs and is folded
    /// into the certified bound. Beyond it the bound degrades gracefully
    /// to the Theorem-2 composition.
    pub whole_wavefront_limit: usize,
    /// Largest original graph (in vertices) for which the *flat*
    /// pipeline is also run and recorded in the report for comparison.
    /// The comparison is diagnostic, not part of the certified bound,
    /// so the limit tracks where flat analysis stays in single-digit
    /// seconds: with the warm-started unit-capacity flow core this is
    /// ~16k vertices across the catalog families (3–8 s measured on
    /// deep 1-d stencils, wide 2-d stencils, matmul, and FFT), where
    /// the old per-anchor Dinic path needed minutes already at a few
    /// thousand.
    pub flat_compare_limit: usize,
}

impl Default for HierarchicalOptions {
    fn default() -> Self {
        HierarchicalOptions {
            clusters: None,
            cluster_wavefront_limit: 0,
            whole_wavefront_limit: 1 << 17,
            flat_compare_limit: 1 << 14,
        }
    }
}

/// Per-cluster slice of a [`HierarchyReport`]: the coarsening
/// annotations plus the cluster's portfolio winner.
#[derive(Debug, Clone)]
pub struct ClusterSummary {
    /// Cluster index (= super-vertex id, = interval position in the
    /// Kahn order).
    pub index: usize,
    /// Lowest original vertex id in the cluster.
    pub first_vertex: VertexId,
    /// Number of original vertices in the cluster.
    pub vertices: usize,
    /// Number of original edges internal to the cluster.
    pub internal_edges: usize,
    /// Cluster vertices with a predecessor outside the cluster.
    pub in_boundary: usize,
    /// Cluster vertices with a successor outside the cluster.
    pub out_boundary: usize,
    /// The strongest portfolio bound for the induced sub-CDAG
    /// (first-wins tie-break, same as the flat pipeline).
    pub best: IoBound,
}

impl Serialize for ClusterSummary {
    fn to_json(&self) -> Value {
        Value::object([
            ("index", self.index.to_json()),
            ("first_vertex", self.first_vertex.index().to_json()),
            ("vertices", self.vertices.to_json()),
            ("internal_edges", self.internal_edges.to_json()),
            ("in_boundary", self.in_boundary.to_json()),
            ("out_boundary", self.out_boundary.to_json()),
            ("best", self.best.to_json()),
        ])
    }
}

/// Structural summary of the contracted super-vertex DAG.
///
/// Everything here is a *diagnostic*: cluster-granularity cuts do not
/// certify original-graph wavefronts (a coarse path only witnesses an
/// original path when every intermediate cluster internally connects
/// its boundaries — see the soundness note in [`mod@dmc_cdag::coarsen`]),
/// so nothing from the coarse graph is ever folded into
/// [`AnalysisReport::bound`].
#[derive(Debug, Clone)]
pub struct CoarseSummary {
    /// Super-vertex count (= cluster count).
    pub clusters: usize,
    /// Deduplicated coarse edges.
    pub edges: usize,
    /// Original edges crossing clusters (before deduplication).
    pub cut_edges: usize,
    /// `max_x |W^min(x)|` over the coarse DAG (`None` for degenerate
    /// coarse graphs with no interior anchor).
    pub w_max: Option<usize>,
}

impl Serialize for CoarseSummary {
    fn to_json(&self) -> Value {
        Value::object([
            ("clusters", self.clusters.to_json()),
            ("edges", self.edges.to_json()),
            ("cut_edges", self.cut_edges.to_json()),
            ("w_max", self.w_max.to_json()),
            (
                "note",
                "structural diagnostic, never folded into the certified bound".to_json(),
            ),
        ])
    }
}

/// The flat pipeline's answer on the same graph, recorded for
/// comparison when the graph is small enough to afford both runs.
#[derive(Debug, Clone)]
pub struct FlatComparison {
    /// The flat pipeline's final certified bound.
    pub bound: f64,
    /// The method behind it (display name).
    pub method: String,
}

impl Serialize for FlatComparison {
    fn to_json(&self) -> Value {
        Value::object([
            ("bound", self.bound.to_json()),
            ("method", self.method.to_json()),
        ])
    }
}

/// The hierarchy level of an [`AnalysisReport`] produced by
/// [`Analyzer::analyze_hierarchical`]: cluster count, per-cluster
/// winners, the Theorem-2 composition, the optional whole-graph
/// wavefront, the coarse-DAG diagnostics, and the flat-vs-hierarchical
/// comparison.
#[derive(Debug, Clone)]
pub struct HierarchyReport {
    /// The requested (or auto-chosen) cluster count before clamping.
    pub cluster_target: usize,
    /// The actual cluster count (`min(target, |V|)`).
    pub cluster_count: usize,
    /// The per-cluster wavefront gate the run used (see
    /// [`HierarchicalOptions::cluster_wavefront_limit`]).
    pub cluster_wavefront_limit: usize,
    /// Per-cluster annotations and winners, in cluster order.
    pub clusters: Vec<ClusterSummary>,
    /// The Theorem-2 composition of the per-cluster winners.
    pub composed: IoBound,
    /// The sound whole-graph wavefront pass (`None` when gated off by
    /// size or portfolio configuration).
    pub whole_wavefront: Option<IoBound>,
    /// Structural summary of the contracted super-vertex DAG.
    pub coarse: CoarseSummary,
    /// The flat pipeline's bound on the same graph (`None` when gated
    /// off by size).
    pub flat: Option<FlatComparison>,
}

impl Serialize for HierarchyReport {
    fn to_json(&self) -> Value {
        Value::object([
            ("cluster_target", self.cluster_target.to_json()),
            ("cluster_count", self.cluster_count.to_json()),
            (
                "cluster_wavefront_limit",
                self.cluster_wavefront_limit.to_json(),
            ),
            ("clusters", self.clusters.to_json()),
            ("composed", self.composed.to_json()),
            ("whole_wavefront", self.whole_wavefront.to_json()),
            ("coarse", self.coarse.to_json()),
            ("flat", self.flat.to_json()),
        ])
    }
}

/// The pipeline's output: a provenance *tree* over the whole analysis,
/// not a flat number.
#[derive(Debug, Clone)]
#[must_use = "the analysis is pure; the report is its only product"]
pub struct AnalysisReport {
    /// `|V|` of the analyzed CDAG.
    pub vertices: usize,
    /// `|E|` of the analyzed CDAG.
    pub edges: usize,
    /// `|I|` of the analyzed CDAG.
    pub inputs: usize,
    /// `|O|` of the analyzed CDAG.
    pub outputs: usize,
    /// The `S` the bounds were computed for.
    pub sram: u64,
    /// Number of weakly-connected components.
    pub component_count: usize,
    /// Per-component analyses (empty when decomposition was skipped).
    pub components: Vec<ComponentReport>,
    /// Every whole-graph portfolio result (the baseline the composed
    /// bound is compared against; empty when the baseline was skipped via
    /// [`AnalyzerConfig::baseline`]).
    pub whole_graph: Vec<IoBound>,
    /// The strongest single whole-graph method (`None` when the baseline
    /// was skipped).
    pub best_whole_graph: Option<IoBound>,
    /// The Theorem-2 composition of per-component winners (`None` when
    /// decomposition was skipped or the graph is connected).
    pub composed: Option<IoBound>,
    /// The pipeline's final certified lower bound: the composed bound
    /// when available (it dominates), otherwise the whole-graph best.
    pub bound: IoBound,
    /// Machine-balance verdicts (empty unless
    /// [`AnalyzerConfig::verdicts`]).
    pub balance: Vec<BalanceReport>,
    /// Kernel-catalog context (`None` unless the report came from
    /// [`Analyzer::analyze_spec`] / [`Analyzer::analyze_kernel`]).
    pub kernel: Option<KernelReport>,
    /// Hierarchy level (`None` unless the report came from
    /// [`Analyzer::analyze_hierarchical`]).
    pub hierarchy: Option<HierarchyReport>,
}

impl AnalysisReport {
    /// The final bound normalized per FLOP (Equation 9 with one node):
    /// `bound / |V − I|`; `None` for input-only CDAGs.
    pub fn words_per_flop(&self) -> Option<f64> {
        let work = (self.vertices - self.inputs) as f64;
        (work > 0.0).then(|| self.bound.value / work)
    }
}

impl std::fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(k) = &self.kernel {
            writeln!(f, "kernel: {}", k.spec)?;
        }
        writeln!(
            f,
            "CDAG: |V| = {}, |E| = {}, |I| = {}, |O| = {}, S = {}",
            self.vertices, self.edges, self.inputs, self.outputs, self.sram
        )?;
        writeln!(f, "weakly-connected components: {}", self.component_count)?;
        for c in &self.components {
            writeln!(
                f,
                "\ncomponent {} (first vertex {}, |V| = {}, |E| = {}):",
                c.index, c.first_vertex, c.vertices, c.edges
            )?;
            for cand in &c.candidates {
                writeln!(f, "  candidate >= {:<8} {}", cand.value, cand.method)?;
            }
            write!(f, "  best:\n{}", indent(&c.best.to_string(), 2))?;
        }
        if let Some(best_whole) = &self.best_whole_graph {
            writeln!(f, "\nwhole-graph baseline (best single method):")?;
            write!(f, "{}", indent(&best_whole.to_string(), 1))?;
        }
        if let Some(composed) = &self.composed {
            writeln!(f, "\ncomposed per-component bound (Theorem 2):")?;
            write!(f, "{}", indent(&composed.to_string(), 1))?;
        }
        if let Some(h) = &self.hierarchy {
            writeln!(
                f,
                "\nhierarchical analysis: {} clusters (target {}, interval clustering of the Kahn order)",
                h.cluster_count, h.cluster_target
            )?;
            const SHOWN_CLUSTERS: usize = 8;
            for c in h.clusters.iter().take(SHOWN_CLUSTERS) {
                writeln!(
                    f,
                    "  cluster {} (first vertex {}, |V| = {}, |E_int| = {}, boundary in/out = {}/{}): best >= {} {}",
                    c.index,
                    c.first_vertex,
                    c.vertices,
                    c.internal_edges,
                    c.in_boundary,
                    c.out_boundary,
                    c.best.value,
                    c.best.method
                )?;
            }
            if h.clusters.len() > SHOWN_CLUSTERS {
                writeln!(
                    f,
                    "  ... {} more clusters",
                    h.clusters.len() - SHOWN_CLUSTERS
                )?;
            }
            writeln!(f, "  composed per-cluster bound (Theorem 2):")?;
            write!(f, "{}", indent(&h.composed.to_string(), 2))?;
            if let Some(wf) = &h.whole_wavefront {
                writeln!(f, "  whole-graph wavefront (Lemma 2 + Theorem 3):")?;
                write!(f, "{}", indent(&wf.to_string(), 2))?;
            }
            let w_max = h
                .coarse
                .w_max
                .map(|w| format!(", coarse w^max = {w}"))
                .unwrap_or_default();
            writeln!(
                f,
                "  coarse super-DAG: {} super-vertices, {} edges, {} cut edges{} — structural diagnostic, never folded into the bound",
                h.coarse.clusters, h.coarse.edges, h.coarse.cut_edges, w_max
            )?;
            match &h.flat {
                Some(flat) => writeln!(
                    f,
                    "  flat-pipeline comparison: flat >= {} via {}",
                    flat.bound, flat.method
                )?,
                None => writeln!(
                    f,
                    "  flat-pipeline comparison: skipped (|V| above the comparison limit)"
                )?,
            }
        }
        writeln!(f, "\nfinal certified lower bound: >= {}", self.bound.value)?;
        if let Some(k) = &self.kernel {
            if k.analytic_lower.is_some() || k.analytic_upper.is_some() {
                writeln!(f, "\nanalytic bounds (kernel catalog, not merged):")?;
            }
            if let Some(lower) = &k.analytic_lower {
                write!(f, "{}", indent(&lower.to_string(), 1))?;
            }
            if let Some(upper) = &k.analytic_upper {
                writeln!(f, "  <= {:<8} achievable — {}", upper.value, upper.note)?;
            }
            if let Some(flops) = k.flops_estimate {
                writeln!(f, "flops estimate: {flops:.0}")?;
            }
        }
        if let Some(ratio) = self.words_per_flop() {
            writeln!(f, "normalized (Eq. 9, 1 node): {ratio:.6} words/FLOP")?;
        }
        if !self.balance.is_empty() {
            writeln!(f, "machine-balance verdicts (Table 1):")?;
            for r in &self.balance {
                writeln!(f, "  {}", r.row())?;
            }
        }
        Ok(())
    }
}

fn indent(text: &str, levels: usize) -> String {
    let pad = "  ".repeat(levels);
    let mut out = String::with_capacity(text.len() + 2 * levels);
    for line in text.lines() {
        let _ = writeln!(out, "{pad}{line}");
    }
    out
}

impl Serialize for AnalysisReport {
    fn to_json(&self) -> Value {
        Value::object([
            ("vertices", self.vertices.to_json()),
            ("edges", self.edges.to_json()),
            ("inputs", self.inputs.to_json()),
            ("outputs", self.outputs.to_json()),
            ("sram", self.sram.to_json()),
            ("component_count", self.component_count.to_json()),
            ("components", self.components.to_json()),
            ("whole_graph", self.whole_graph.to_json()),
            ("best_whole_graph", self.best_whole_graph.to_json()),
            (
                "composed",
                self.composed
                    .as_ref()
                    .map(Serialize::to_json)
                    .unwrap_or(Value::Null),
            ),
            ("bound", self.bound.to_json()),
            ("words_per_flop", self.words_per_flop().to_json()),
            ("balance", self.balance.to_json()),
            ("kernel", self.kernel.to_json()),
            ("hierarchy", self.hierarchy.to_json()),
        ])
    }
}

/// The unified analysis pipeline over arbitrary CDAGs.
///
/// # Example
///
/// ```
/// use dmc_core::pipeline::{Analyzer, AnalyzerConfig};
///
/// // Two independent chains: the pipeline finds both components, bounds
/// // each, and composes with Theorem 2 — 2 words of I/O per chain.
/// let g = dmc_kernels::chains::independent_chains(2, 3);
/// let report = Analyzer::new(AnalyzerConfig {
///     sram: 2,
///     ..AnalyzerConfig::default()
/// })
/// .analyze(&g);
/// assert_eq!(report.component_count, 2);
/// assert_eq!(report.bound.value, 4.0);
/// // The report is deterministic at any thread count.
/// let one_thread = Analyzer::new(AnalyzerConfig {
///     sram: 2,
///     threads: 1,
///     ..AnalyzerConfig::default()
/// })
/// .analyze(&g);
/// assert_eq!(report.to_string(), one_thread.to_string());
/// ```
#[derive(Debug, Clone)]
pub struct Analyzer {
    config: AnalyzerConfig,
}

impl Analyzer {
    /// Builds an analyzer with the given configuration.
    pub fn new(config: AnalyzerConfig) -> Self {
        assert!(config.sram >= 1, "S must be at least 1");
        assert!(!config.methods.is_empty(), "empty method portfolio");
        Analyzer { config }
    }

    /// Analyzer with the default configuration.
    pub fn with_defaults() -> Self {
        Analyzer::new(AnalyzerConfig::default())
    }

    /// The configuration this analyzer runs.
    pub fn config(&self) -> &AnalyzerConfig {
        &self.config
    }

    /// Runs the full pipeline on `g`.
    pub fn analyze(&self, g: &Cdag) -> AnalysisReport {
        let comps = weakly_connected_components(g);
        let decomposed = self.config.decompose && comps.count > 1;

        // Whole-graph portfolio: the comparison baseline. Gets the full
        // thread budget (the engine parallelizes internally). Skippable
        // when a composed bound will exist (it dominates the baseline),
        // mandatory otherwise — it is then the only bound source.
        let whole_graph = if self.config.baseline || !decomposed {
            self.portfolio(g, self.config.threads)
        } else {
            Vec::new()
        };
        let best_whole_graph = best_lower_bound(whole_graph.iter().cloned());

        let (components, composed) = if decomposed {
            let pieces = subgraph::decompose(g, &comps.assignment, comps.count);
            let components = self.analyze_components(&pieces);
            let composed = decomposition_sum(
                &components
                    .iter()
                    .map(|c| c.best.clone())
                    .collect::<Vec<_>>(),
            );
            (components, Some(composed))
        } else {
            (Vec::new(), None)
        };

        // The composed bound dominates the baseline (a whole-graph
        // wavefront anchor never spans components, and the trivial and
        // counting bounds are additive across them), but `max` with a
        // composed-first tie-break keeps the final answer correct even
        // for portfolios where that argument does not apply.
        let bound = best_lower_bound(
            composed
                .iter()
                .cloned()
                .chain(best_whole_graph.iter().cloned()),
        )
        // dmc-lint: allow(s1) -- the portfolio always contains the whole-graph baseline, so a best element exists
        .expect("composed or whole-graph best always exists");

        let balance = self.balance_verdicts(g, bound.value);

        AnalysisReport {
            vertices: g.num_vertices(),
            edges: g.num_edges(),
            inputs: g.num_inputs(),
            outputs: g.num_outputs(),
            sram: self.config.sram,
            component_count: comps.count,
            components,
            whole_graph,
            best_whole_graph,
            composed,
            bound,
            balance,
            kernel: None,
            hierarchy: None,
        }
    }

    /// Parses `spec` against the shared kernel [`Registry`], builds the
    /// CDAG, and runs the pipeline on it. The report carries the
    /// canonical spec and the kernel's analytic bounds (rendered next to
    /// the pipeline bounds, never merged into the certified bound).
    ///
    /// ```
    /// use dmc_core::pipeline::Analyzer;
    ///
    /// let report = Analyzer::with_defaults()
    ///     .analyze_spec("chains(k=3,len=4)")
    ///     .expect("valid spec");
    /// assert_eq!(report.component_count, 3);
    /// assert_eq!(report.kernel.unwrap().spec, "chains(k=3,len=4)");
    /// ```
    pub fn analyze_spec(&self, spec: &str) -> Result<AnalysisReport, SpecError> {
        Ok(self.analyze_kernel(&Registry::shared().parse(spec)?))
    }

    /// Runs the pipeline on an already-parsed catalog spec (see
    /// [`Analyzer::analyze_spec`]).
    pub fn analyze_kernel(&self, spec: &KernelSpec<'_>) -> AnalysisReport {
        let g = spec.build();
        let mut report = self.analyze(&g);
        self.attach_kernel_context(&mut report, spec);
        report
    }

    /// Runs the **hierarchical** pipeline on `g`: interval-cluster the
    /// Kahn order, run the method portfolio on every cluster, compose
    /// the winners with Theorem 2, optionally fold in the sound
    /// whole-graph wavefront pass, and contract the clustering into an
    /// annotated super-vertex DAG reported as a structural diagnostic.
    ///
    /// Soundness: the clusters are a *total* disjoint partition of `V`
    /// (inputs included), and for any such partition an optimal RBW game
    /// on `g`, restricted to the moves touching one cluster, is a valid
    /// complete game on the induced sub-CDAG — so the per-cluster I/O
    /// counts partition the whole game's I/O and Theorem 2's sum is a
    /// certified lower bound, crossing edges notwithstanding. The
    /// whole-graph wavefront pass is the flat pipeline's own Lemma-2 +
    /// Theorem-3 member, gated by size. Nothing derived from the coarse
    /// super-DAG is ever folded into the bound (see
    /// [`mod@dmc_cdag::coarsen`] for why that would be unsound).
    ///
    /// With the default [`HierarchicalOptions`] the result is dominated
    /// by the flat pipeline's bound wherever both run; see
    /// [`HierarchicalOptions::cluster_wavefront_limit`] for the
    /// stronger opt-in composition.
    ///
    /// ```
    /// use dmc_core::pipeline::{Analyzer, HierarchicalOptions};
    ///
    /// let g = dmc_kernels::matmul::matmul(6);
    /// let opts = HierarchicalOptions {
    ///     clusters: Some(4),
    ///     ..HierarchicalOptions::default()
    /// };
    /// let report = Analyzer::with_defaults().analyze_hierarchical(&g, &opts);
    /// let h = report.hierarchy.as_ref().expect("hierarchical report");
    /// assert_eq!(h.cluster_count, 4);
    /// // Default options: dominated by (here equal to) the flat bound.
    /// assert!(report.bound.value <= h.flat.as_ref().unwrap().bound);
    /// ```
    pub fn analyze_hierarchical(&self, g: &Cdag, opts: &HierarchicalOptions) -> AnalysisReport {
        let n = g.num_vertices();
        if n == 0 {
            // Degenerate: nothing to cluster; the flat report (with no
            // hierarchy level) is the honest answer.
            return self.analyze(g);
        }
        let comps = weakly_connected_components(g);
        let order = topological_order(g);
        let target = opts
            .clusters
            .unwrap_or_else(|| n.div_ceil(DEFAULT_CLUSTER_SIZE).clamp(2, MAX_AUTO_CLUSTERS))
            .max(1);
        let assignment = topological_clusters(g, &order, target);
        let cluster_count = assignment.iter().max().map_or(0, |&m| m + 1);
        let coarse = coarsen(g, &assignment, cluster_count)
            // dmc-lint: allow(s1) -- contiguous intervals of a topological order always contract to a DAG
            .expect("topological interval clustering yields an acyclic quotient");
        let pieces = subgraph::decompose(g, &assignment, cluster_count);

        let total = self.resolved_threads(usize::MAX);
        let workers = total.clamp(1, pieces.len());
        let engine_threads = (total / pieces.len().max(1)).max(1);
        let clusters: Vec<ClusterSummary> = fan_out_indexed(
            pieces.len(),
            workers,
            || (),
            |_, i| self.cluster_summary(i, &pieces[i], &coarse.clusters[i], engine_threads, opts),
        );
        let composed =
            decomposition_sum(&clusters.iter().map(|c| c.best.clone()).collect::<Vec<_>>());
        let whole_wavefront = (n <= opts.whole_wavefront_limit
            && self.config.methods.contains(&PortfolioMethod::Wavefront))
        .then(|| self.wavefront_bound(g, total));
        let bound = best_lower_bound(
            std::iter::once(composed.clone()).chain(whole_wavefront.iter().cloned()),
        )
        // dmc-lint: allow(s1) -- the composed bound is always present
        .expect("the Theorem-2 composition always exists");
        let coarse_summary = self.coarse_summary(&coarse, total);
        let flat = (n <= opts.flat_compare_limit).then(|| {
            let r = self.analyze(g);
            FlatComparison {
                bound: r.bound.value,
                method: r.bound.method.to_string(),
            }
        });
        let balance = self.balance_verdicts(g, bound.value);

        AnalysisReport {
            vertices: n,
            edges: g.num_edges(),
            inputs: g.num_inputs(),
            outputs: g.num_outputs(),
            sram: self.config.sram,
            component_count: comps.count,
            components: Vec::new(),
            whole_graph: Vec::new(),
            best_whole_graph: None,
            composed: None,
            bound,
            balance,
            kernel: None,
            hierarchy: Some(HierarchyReport {
                cluster_target: target,
                cluster_count,
                cluster_wavefront_limit: opts.cluster_wavefront_limit,
                clusters,
                composed,
                whole_wavefront,
                coarse: coarse_summary,
                flat,
            }),
        }
    }

    /// Parses `spec`, builds the CDAG, and runs the hierarchical
    /// pipeline on it (the spec-string sibling of
    /// [`Analyzer::analyze_hierarchical`], mirroring
    /// [`Analyzer::analyze_spec`]).
    pub fn analyze_spec_hierarchical(
        &self,
        spec: &str,
        opts: &HierarchicalOptions,
    ) -> Result<AnalysisReport, SpecError> {
        Ok(self.analyze_kernel_hierarchical(&Registry::shared().parse(spec)?, opts))
    }

    /// Runs the hierarchical pipeline on an already-parsed catalog spec.
    pub fn analyze_kernel_hierarchical(
        &self,
        spec: &KernelSpec<'_>,
        opts: &HierarchicalOptions,
    ) -> AnalysisReport {
        let g = spec.build();
        let mut report = self.analyze_hierarchical(&g, opts);
        self.attach_kernel_context(&mut report, spec);
        report
    }

    /// Attaches the kernel-catalog context (canonical spec, analytic
    /// bounds, FLOP estimate) to a finished report.
    fn attach_kernel_context(&self, report: &mut AnalysisReport, spec: &KernelSpec<'_>) {
        let (kernel, values) = (spec.kernel(), spec.values());
        report.kernel = Some(KernelReport {
            spec: spec.render(),
            analytic_lower: kernel
                .analytic_lower_bound(values, self.config.sram)
                .map(|a| IoBound::new(a.value, Method::Analytic, a.note)),
            analytic_upper: kernel.analytic_upper_bound(values, self.config.sram),
            flops_estimate: kernel.flops_estimate(values),
        });
    }

    /// Machine-balance verdicts for the final bound (empty unless
    /// [`AnalyzerConfig::verdicts`]).
    fn balance_verdicts(&self, g: &Cdag, bound_value: f64) -> Vec<BalanceReport> {
        if !self.config.verdicts {
            return Vec::new();
        }
        let work = g.num_compute_vertices() as f64;
        let profile = AlgorithmProfile {
            name: "pipeline".to_string(),
            vertical_lb_per_flop: (work > 0.0).then(|| bound_value / work),
            vertical_ub_per_flop: None,
            horizontal_lb_per_flop: None,
            horizontal_ub_per_flop: None,
        };
        specs::table1_machines()
            .iter()
            .map(|m| analyze(&profile, m))
            .collect()
    }

    /// Portfolio-plus-annotations for one cluster: the flat portfolio
    /// with the wavefront member size-gated (see
    /// [`HierarchicalOptions::cluster_wavefront_limit`]); when every
    /// configured method is gated off the always-sound trivial bound is
    /// used as the floor.
    fn cluster_summary(
        &self,
        index: usize,
        piece: &InducedSubCdag,
        info: &ClusterInfo,
        engine_threads: usize,
        opts: &HierarchicalOptions,
    ) -> ClusterSummary {
        let g = &piece.cdag;
        let mut candidates: Vec<IoBound> = self
            .config
            .methods
            .iter()
            .filter_map(|m| match m {
                PortfolioMethod::Trivial => Some(IoBound::trivial(g)),
                PortfolioMethod::Wavefront => (g.num_vertices() <= opts.cluster_wavefront_limit)
                    .then(|| self.wavefront_bound(g, engine_threads)),
                PortfolioMethod::Partition2S => Some(partition2s_bound(g, self.config.sram)),
            })
            .collect();
        if candidates.is_empty() {
            candidates.push(IoBound::trivial(g));
        }
        let best = best_lower_bound(candidates.iter().cloned())
            // dmc-lint: allow(s1) -- a trivial fallback is pushed when every method is gated off
            .expect("cluster portfolio is non-empty");
        ClusterSummary {
            index,
            first_vertex: info.first_vertex,
            vertices: info.vertices,
            internal_edges: info.internal_edges,
            in_boundary: info.in_boundary,
            out_boundary: info.out_boundary,
            best,
        }
    }

    /// Sweeps the coarse super-DAG for its `w^max` diagnostic (all
    /// anchors for small coarse graphs, per-level sampling beyond
    /// [`COARSE_SWEEP_LIMIT`]).
    fn coarse_summary(&self, coarse: &CoarseDag, threads: usize) -> CoarseSummary {
        let cg = &coarse.graph;
        let engine = WavefrontEngine::new(cg).with_threads(threads);
        let anchors: Vec<VertexId> = if cg.num_vertices() <= COARSE_SWEEP_LIMIT {
            cg.vertices().collect()
        } else {
            engine.per_level_anchors()
        };
        CoarseSummary {
            clusters: cg.num_vertices(),
            edges: cg.num_edges(),
            cut_edges: coarse.cut_edges,
            w_max: engine.run(&anchors).best.map(|b| b.size),
        }
    }

    /// Fans per-component analyses out over scoped workers
    /// ([`fan_out_indexed`]); the index-ordered merge keeps the report
    /// bit-identical at any thread count.
    fn analyze_components(&self, pieces: &[InducedSubCdag]) -> Vec<ComponentReport> {
        let total = self.resolved_threads(usize::MAX);
        let workers = total.clamp(1, pieces.len());
        // Split the budget: more threads than components means each
        // worker's wavefront engine gets a share instead of idling the
        // surplus. The engine's result is thread-count-invariant, so the
        // bit-identical-report guarantee is unaffected.
        let engine_threads = (total / pieces.len()).max(1);
        fan_out_indexed(
            pieces.len(),
            workers,
            || (),
            |_, i| self.component_report(i, &pieces[i], engine_threads),
        )
    }

    fn component_report(
        &self,
        index: usize,
        piece: &InducedSubCdag,
        engine_threads: usize,
    ) -> ComponentReport {
        let candidates = self.portfolio(&piece.cdag, engine_threads);
        let best = best_lower_bound(candidates.iter().cloned())
            // dmc-lint: allow(s1) -- the portfolio always contains the whole-graph baseline, so it is non-empty
            .expect("portfolio is non-empty by construction");
        ComponentReport {
            index,
            first_vertex: piece.parent_of(VertexId(0)),
            vertices: piece.cdag.num_vertices(),
            edges: piece.cdag.num_edges(),
            candidates,
            best,
        }
    }

    /// Runs the configured method portfolio on one CDAG.
    fn portfolio(&self, g: &Cdag, engine_threads: usize) -> Vec<IoBound> {
        self.config
            .methods
            .iter()
            .map(|m| match m {
                PortfolioMethod::Trivial => IoBound::trivial(g),
                PortfolioMethod::Wavefront => self.wavefront_bound(g, engine_threads),
                PortfolioMethod::Partition2S => partition2s_bound(g, self.config.sram),
            })
            .collect()
    }

    /// Lemma 2 on the untagged CDAG; when the graph had tagged inputs the
    /// result is wrapped in the Theorem-3 untagging transfer that makes
    /// it valid for the tagged graph.
    fn wavefront_bound(&self, g: &Cdag, engine_threads: usize) -> IoBound {
        let untagged = untag_inputs(g);
        let wf = auto_wavefront_bound_with(
            &untagged,
            self.config.sram,
            self.config.anchor_strategy,
            engine_threads,
        );
        if g.num_inputs() > 0 {
            untagging_transfer(&wf)
        } else {
            wf
        }
    }

    pub(crate) fn resolved_threads(&self, work_items: usize) -> usize {
        let t = if self.config.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.config.threads
        };
        t.clamp(1, work_items.max(1))
    }
}

/// Above this size the greedy 2S-partition diagnostic (quadratic in the
/// worst case) is skipped; the certified counting bound is unaffected.
const GREEDY_DIAGNOSTIC_LIMIT: usize = 2048;

/// Target cluster size when [`HierarchicalOptions::clusters`] is `None`:
/// the auto cluster count is `⌈|V| / 2¹⁶⌉`, clamped to
/// `2..=`[`MAX_AUTO_CLUSTERS`].
const DEFAULT_CLUSTER_SIZE: usize = 1 << 16;

/// Upper clamp of the auto-chosen cluster count (bounds the per-cluster
/// bitset memory of [`subgraph::decompose`] at 10⁸ vertices).
const MAX_AUTO_CLUSTERS: usize = 1024;

/// Largest coarse super-DAG swept with *every* vertex as a wavefront
/// anchor; beyond it the diagnostic falls back to per-level sampling.
const COARSE_SWEEP_LIMIT: usize = 2048;

/// Lemma 1 through a *counting relaxation* of the minimum 2S-partition
/// block count, decorated with a greedy 2S-partition diagnostic.
///
/// Soundness: in any valid 2S-partition (Definition 5) every tagged
/// output outside `I` lies in exactly one block's `Out` set and every
/// tagged input with a successor appears in at least one block's `In`
/// set, while `|In|, |Out| ≤ 2S` per block — so
/// `h_min ≥ ⌈max(|O∖I|, |I_used|)/2S⌉` and Lemma 1 gives
/// `Q ≥ S·(h_min − 1)`. The greedy partition's block count *over*-counts
/// `h_min` and is reported only as a diagnostic, never used as a bound.
pub fn partition2s_bound(g: &Cdag, s: u64) -> IoBound {
    assert!(s >= 1, "S must be at least 1");
    // Saturating: `2 * s` must not wrap for absurd S (that would *shrink*
    // the divisor and overclaim the certified bound, or divide by zero).
    let two_s = s.saturating_mul(2);
    let mut pure_outputs = g.outputs().clone();
    pure_outputs.difference_with(g.inputs());
    let used_inputs = g
        .inputs()
        .iter()
        .filter(|&i| g.out_degree(VertexId(i as u32)) > 0)
        .count();
    let demand = pure_outputs.len().max(used_inputs);
    // `h_lb ≤ demand ≤ |V|` fits comfortably in usize.
    let h_lb = (demand as u64).div_ceil(two_s) as usize;
    let value = lemma1_lower_bound(s as usize, h_lb) as f64;
    let mut note = format!(
        "S·(h_min − 1) with h_min ≥ ⌈max(|O∖I| = {}, |I_used| = {used_inputs})/2S⌉ = {h_lb}",
        pure_outputs.len()
    );
    // The greedy partition cannot place a vertex whose in-degree alone
    // exceeds 2S; skip the diagnostic when no valid 2S-partition exists
    // (or the graph is too large for a quadratic diagnostic).
    let two_s_blocks = usize::try_from(two_s).unwrap_or(usize::MAX);
    let partitionable = g.num_vertices() <= GREEDY_DIAGNOSTIC_LIMIT
        && g.vertices()
            .filter(|&v| !g.is_input(v))
            .all(|v| g.in_degree(v) <= two_s_blocks);
    if partitionable {
        let p = greedy_partition(g, &topological_order(g), two_s_blocks);
        let _ = write!(
            note,
            "; greedy 2S-partition: h = {}, largest block = {} (diagnostic)",
            p.num_blocks(),
            p.largest_block()
        );
    }
    IoBound::new(value, Method::HongKung2S, note)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games::optimal::{optimal_io, GameKind};
    use dmc_kernels::chains;

    fn analyzer(sram: u64, threads: usize) -> Analyzer {
        Analyzer::new(AnalyzerConfig {
            sram,
            threads,
            ..AnalyzerConfig::default()
        })
    }

    #[test]
    fn connected_graph_skips_decomposition() {
        let g = chains::ladder(4, 4);
        let r = analyzer(2, 1).analyze(&g);
        assert_eq!(r.component_count, 1);
        assert!(r.composed.is_none());
        assert!(r.components.is_empty());
        assert_eq!(r.bound.value, r.best_whole_graph.as_ref().unwrap().value);
    }

    #[test]
    fn disjoint_chains_compose_exactly() {
        // 3 chains, optimal I/O 2 each: composed bound is exactly 6.
        let g = chains::independent_chains(3, 4);
        let r = analyzer(2, 2).analyze(&g);
        assert_eq!(r.component_count, 3);
        assert_eq!(r.components.len(), 3);
        let composed = r.composed.as_ref().expect("multi-component");
        assert_eq!(composed.value, 6.0);
        assert_eq!(composed.provenance.children.len(), 3);
        assert_eq!(r.bound.value, 6.0);
        // Sound vs the exact optimum.
        let opt = optimal_io(&g, 2, GameKind::Rbw).unwrap();
        assert!(r.bound.value <= opt as f64);
    }

    #[test]
    fn report_is_bit_identical_across_thread_counts() {
        let g = chains::independent_chains(4, 5);
        let base = analyzer(2, 1).analyze(&g);
        for threads in [2usize, 4] {
            let r = analyzer(2, threads).analyze(&g);
            assert_eq!(r.to_string(), base.to_string(), "@ {threads} threads");
            assert_eq!(
                serde::json::to_string(&r),
                serde::json::to_string(&base),
                "@ {threads} threads"
            );
        }
    }

    #[test]
    fn decompose_off_is_whole_graph_only() {
        let g = chains::independent_chains(2, 3);
        let r = Analyzer::new(AnalyzerConfig {
            sram: 2,
            threads: 1,
            decompose: false,
            ..AnalyzerConfig::default()
        })
        .analyze(&g);
        assert_eq!(r.component_count, 2);
        assert!(r.composed.is_none());
        assert_eq!(r.bound.value, r.best_whole_graph.as_ref().unwrap().value);
    }

    #[test]
    fn baseline_off_skips_whole_graph_but_keeps_the_bound() {
        let g = chains::independent_chains(3, 4);
        let with = analyzer(2, 1).analyze(&g);
        let without = Analyzer::new(AnalyzerConfig {
            sram: 2,
            threads: 1,
            baseline: false,
            ..AnalyzerConfig::default()
        })
        .analyze(&g);
        assert!(without.whole_graph.is_empty());
        assert!(without.best_whole_graph.is_none());
        assert_eq!(without.bound.value, with.bound.value);
        // On a connected graph the baseline is the only bound source and
        // must run regardless of the flag.
        let connected = Analyzer::new(AnalyzerConfig {
            sram: 2,
            threads: 1,
            baseline: false,
            ..AnalyzerConfig::default()
        })
        .analyze(&chains::ladder(3, 3));
        assert!(connected.best_whole_graph.is_some());
    }

    #[test]
    fn partition2s_bound_survives_huge_sram() {
        // Regression: `2 * s` used to wrap for S > u64::MAX/2, shrinking
        // the divisor (overclaimed bound) or panicking on div-by-zero.
        let g = chains::binary_reduction(8);
        for s in [u64::MAX / 2, u64::MAX / 2 + 1, u64::MAX] {
            let b = partition2s_bound(&g, s);
            assert_eq!(b.value, 0.0, "S = {s}");
        }
    }

    #[test]
    fn partition2s_bound_is_sound_and_annotated() {
        let g = chains::binary_reduction(8);
        let b = partition2s_bound(&g, 2);
        assert_eq!(b.method, Method::HongKung2S);
        assert!(b.provenance.note.contains("greedy 2S-partition"));
        if let Some(opt) = optimal_io(&g, 2, GameKind::Rbw) {
            assert!(b.value <= opt as f64);
        }
    }

    #[test]
    fn verdicts_populated_on_request() {
        let g = chains::ladder(3, 3);
        let r = Analyzer::new(AnalyzerConfig {
            sram: 2,
            threads: 1,
            verdicts: true,
            ..AnalyzerConfig::default()
        })
        .analyze(&g);
        assert_eq!(r.balance.len(), specs::table1_machines().len());
        assert!(r.to_string().contains("machine-balance verdicts"));
    }

    #[test]
    fn analyze_spec_attaches_kernel_context() {
        let r = analyzer(4, 1)
            .analyze_spec("jacobi(n=4,d=2,t=3)")
            .expect("valid spec");
        let k = r.kernel.as_ref().expect("spec-driven report");
        assert_eq!(k.spec, "jacobi(n=4,d=2,t=3,stencil=star)");
        let analytic = k.analytic_lower.as_ref().expect("Theorem 10");
        assert_eq!(analytic.method, Method::Analytic);
        assert!(analytic.provenance.note.contains("Theorem 10"));
        assert!(k.flops_estimate.is_some());
        let text = r.to_string();
        assert!(text.starts_with("kernel: jacobi("), "{text}");
        assert!(text.contains("analytic bounds (kernel catalog"), "{text}");
        let json = serde::json::to_string(&r);
        assert!(json.contains(r#""kernel":{"spec":"jacobi("#), "{json}");
    }

    #[test]
    fn analyze_spec_matches_plain_analyze_on_the_same_graph() {
        use dmc_kernels::grid::Stencil;
        let hand = dmc_kernels::jacobi::jacobi_cdag(4, 1, 3, Stencil::VonNeumann).cdag;
        let a = analyzer(3, 1);
        let via_spec = a.analyze_spec("jacobi(n=4,d=1,t=3)").expect("valid");
        let via_graph = a.analyze(&hand);
        assert_eq!(via_spec.bound.value, via_graph.bound.value);
        assert_eq!(via_spec.bound.to_string(), via_graph.bound.to_string());
    }

    #[test]
    fn analyze_spec_bad_spec_is_loud() {
        let err = analyzer(4, 1).analyze_spec("warp_drive(n=4)").unwrap_err();
        assert!(err.to_string().contains("unknown kernel"), "{err}");
    }

    #[test]
    fn hierarchical_default_is_dominated_by_flat() {
        // With the default options (per-cluster wavefronts off) the
        // hierarchical bound never exceeds the flat pipeline's bound:
        // per-cluster trivial bounds sum to the whole-graph trivial
        // bound and the whole-graph wavefront member is shared.
        for (g, s) in [
            (dmc_kernels::matmul::matmul(5), 4),
            (chains::ladder(6, 6), 4),
            (dmc_kernels::fft::fft(16), 4),
            (chains::independent_chains(3, 5), 2),
        ] {
            let a = analyzer(s, 2);
            let opts = HierarchicalOptions {
                clusters: Some(3),
                ..HierarchicalOptions::default()
            };
            let hier = a.analyze_hierarchical(&g, &opts);
            let flat = a.analyze(&g);
            assert!(
                hier.bound.value <= flat.bound.value,
                "hier {} > flat {} on |V| = {}",
                hier.bound.value,
                flat.bound.value,
                g.num_vertices()
            );
            // The report records the same comparison.
            let h = hier.hierarchy.as_ref().expect("hierarchy level");
            let recorded = h.flat.as_ref().expect("small graph runs the comparison");
            assert_eq!(recorded.bound, flat.bound.value);
        }
    }

    #[test]
    fn hierarchical_clusters_cover_every_vertex() {
        let g = dmc_kernels::matmul::matmul(4);
        let opts = HierarchicalOptions {
            clusters: Some(5),
            ..HierarchicalOptions::default()
        };
        let r = analyzer(4, 1).analyze_hierarchical(&g, &opts);
        let h = r.hierarchy.as_ref().expect("hierarchy level");
        assert_eq!(h.cluster_count, 5);
        assert_eq!(h.clusters.len(), 5);
        let covered: usize = h.clusters.iter().map(|c| c.vertices).sum();
        assert_eq!(covered, g.num_vertices(), "Theorem 2 needs a total cover");
        let internal: usize = h.clusters.iter().map(|c| c.internal_edges).sum();
        assert_eq!(internal + h.coarse.cut_edges, g.num_edges());
        // The Theorem-2 composition has one child per cluster.
        assert_eq!(h.composed.provenance.children.len(), 5);
    }

    #[test]
    fn hierarchical_report_is_bit_identical_across_thread_counts() {
        let g = dmc_kernels::matmul::matmul(5);
        let opts = HierarchicalOptions {
            clusters: Some(4),
            // Exercise the per-cluster wavefront path too.
            cluster_wavefront_limit: usize::MAX,
            ..HierarchicalOptions::default()
        };
        let base = analyzer(4, 1).analyze_hierarchical(&g, &opts);
        for threads in [2usize, 4] {
            let r = analyzer(4, threads).analyze_hierarchical(&g, &opts);
            assert_eq!(r.to_string(), base.to_string(), "@ {threads} threads");
            assert_eq!(
                serde::json::to_string(&r),
                serde::json::to_string(&base),
                "@ {threads} threads"
            );
        }
    }

    #[test]
    fn hierarchical_cluster_wavefronts_are_sound() {
        // Opt-in per-cluster wavefronts can exceed the flat bound but
        // must stay below the exact optimum (Theorem 2 soundness).
        let g = chains::ladder(3, 4);
        let opts = HierarchicalOptions {
            clusters: Some(2),
            cluster_wavefront_limit: usize::MAX,
            ..HierarchicalOptions::default()
        };
        let r = analyzer(3, 1).analyze_hierarchical(&g, &opts);
        let opt = optimal_io(&g, 3, GameKind::Rbw).expect("small instance");
        assert!(
            r.bound.value <= opt as f64,
            "hierarchical {} > optimal {opt}",
            r.bound.value
        );
    }

    #[test]
    fn hierarchical_text_and_json_carry_the_hierarchy_level() {
        let opts = HierarchicalOptions {
            clusters: Some(3),
            ..HierarchicalOptions::default()
        };
        let r = analyzer(4, 1)
            .analyze_spec_hierarchical("matmul(n=4)", &opts)
            .expect("valid spec");
        assert!(r.kernel.is_some(), "kernel context attached");
        let text = r.to_string();
        assert!(text.contains("hierarchical analysis: 3 clusters"), "{text}");
        assert!(
            text.contains("composed per-cluster bound (Theorem 2)"),
            "{text}"
        );
        assert!(text.contains("coarse super-DAG:"), "{text}");
        assert!(
            text.contains("flat-pipeline comparison: flat >= "),
            "{text}"
        );
        let json = serde::json::to_string(&r);
        assert!(
            json.contains(r#""hierarchy":{"cluster_target":3"#),
            "{json}"
        );
        assert!(json.contains(r#""coarse":{"clusters":3"#), "{json}");
        // Flat reports serialize the level as null.
        let flat = analyzer(4, 1).analyze_spec("matmul(n=4)").expect("valid");
        assert!(serde::json::to_string(&flat).contains(r#""hierarchy":null"#));
    }

    #[test]
    fn hierarchical_auto_cluster_count_scales_with_size() {
        // Small graphs get the floor of 2 clusters.
        let g = chains::ladder(4, 4);
        let r = analyzer(2, 1).analyze_hierarchical(&g, &HierarchicalOptions::default());
        let h = r.hierarchy.as_ref().expect("hierarchy level");
        assert_eq!(h.cluster_target, 2);
        assert_eq!(h.cluster_count, 2);
        // A cluster target above |V| clamps to |V| singleton clusters.
        let tiny = chains::independent_chains(1, 3);
        let opts = HierarchicalOptions {
            clusters: Some(100),
            ..HierarchicalOptions::default()
        };
        let r = analyzer(2, 1).analyze_hierarchical(&tiny, &opts);
        let h = r.hierarchy.as_ref().expect("hierarchy level");
        assert_eq!(h.cluster_count, tiny.num_vertices());
    }

    #[test]
    fn wavefront_candidate_records_theorem3_transfer() {
        let g = chains::ladder(4, 4);
        let r = analyzer(1, 1).analyze(&g);
        let wf = &r.whole_graph[1];
        assert_eq!(wf.method, Method::Tagging);
        assert_eq!(wf.provenance.children.len(), 1);
        assert_eq!(wf.provenance.children[0].method, Method::Wavefront);
    }
}
