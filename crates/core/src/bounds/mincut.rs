//! Min-cut / wavefront lower bounds (Section 3.3, Lemma 2).
//!
//! Lemma 2: for a CDAG `C = (∅, V, E, O)` *without tagged inputs*,
//! `IO(C) ≥ 2·(|W^min_G(x)| − S)` for every vertex `x` — any schedule must
//! at some point keep `|W^min(x)|` values live, and all but `S` of them
//! must take a store/reload round trip through slow memory.
//!
//! For CDAGs *with* inputs we first apply Theorem 3 (untagging): removing
//! the input tags can only lower the optimal I/O, so the Lemma-2 bound on
//! the untagged CDAG is also valid for the tagged one.
//!
//! The per-anchor `|W^min(x)|` solves are delegated to
//! [`WavefrontEngine`], which batches reachability 64 anchors at a time
//! (word-parallel OR-sweeps), solves each anchor's vertex min-cut on a
//! warm-started unit-capacity flow network restricted to the frontier
//! vertices, and prunes anchors lexicographically against the running
//! best — see the "Flow core" section of `DESIGN.md`. The engine's
//! result (winning size, anchor, and witness) is bit-identical at any
//! thread count, so the bound's `detail` strings never vary between
//! runs.

use super::{IoBound, Method};
use dmc_cdag::cut::min_wavefront;
use dmc_cdag::engine::WavefrontEngine;
use dmc_cdag::topo::depths;
use dmc_cdag::{Cdag, VertexId};

/// Lemma 2 for one anchor: `2·(w − S)`, clamped at zero.
pub fn lemma2_bound(wavefront: usize, s: u64) -> f64 {
    2.0 * (wavefront as f64 - s as f64).max(0.0)
}

/// Computes the Lemma-2 bound anchored at a specific vertex.
pub fn wavefront_bound_at(g: &Cdag, x: VertexId, s: u64) -> IoBound {
    let w = min_wavefront(g, x);
    IoBound::new(
        lemma2_bound(w.size, s),
        Method::Wavefront,
        format!("2·(|W^min({x})| − S) = 2·({} − {s})", w.size),
    )
}

/// Anchor-selection strategy for the automated wavefront heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnchorStrategy {
    /// Every vertex — exact `w^max` but `|V|` max-flow runs.
    All,
    /// One vertex per depth level (the midpoint of each level) plus the
    /// deepest vertex: cheap and effective on layered CDAGs.
    PerLevel,
    /// Deterministic stride sample of at most `k` vertices.
    Stride(usize),
    /// Two-phase sampling: a `PerLevel` coarse pass, then exhaustive
    /// refinement of every vertex within one depth level of the coarse
    /// winner. Dominates `PerLevel` at a fraction of `All`'s cost.
    Adaptive,
}

/// Picks anchor vertices per the strategy.
///
/// `Adaptive` is dynamic — its refinement anchors depend on intermediate
/// results — so this returns only its coarse-phase (`PerLevel`) seeds; the
/// full adaptive schedule lives in
/// [`WavefrontEngine::run_adaptive`](dmc_cdag::engine::WavefrontEngine::run_adaptive).
pub fn select_anchors(g: &Cdag, strategy: AnchorStrategy) -> Vec<VertexId> {
    let n = g.num_vertices();
    match strategy {
        AnchorStrategy::All => g.vertices().collect(),
        AnchorStrategy::PerLevel | AnchorStrategy::Adaptive => {
            let depth = depths(g);
            let max_d = depth.iter().copied().max().unwrap_or(0) as usize;
            let mut per_level: Vec<Vec<VertexId>> = vec![Vec::new(); max_d + 1];
            for v in g.vertices() {
                per_level[depth[v.index()] as usize].push(v);
            }
            per_level
                .into_iter()
                .filter(|l| !l.is_empty())
                .map(|l| l[l.len() / 2])
                .collect()
        }
        AnchorStrategy::Stride(k) => {
            let k = k.max(1);
            // `div_ceil`, not truncating division: `(n / k).max(1)` used to
            // overshoot to up to `2k − 1` anchors (e.g. n = 9, k = 5 gave
            // stride 1 and 9 anchors).
            let stride = n.div_ceil(k).max(1);
            (0..n).step_by(stride).map(|i| VertexId(i as u32)).collect()
        }
    }
}

/// The automated Lemma-2 lower bound: `2·(max_x |W^min(x)| − S)` over the
/// sampled anchors. Every anchor yields a valid bound, so sampling only
/// weakens (never invalidates) the result.
///
/// Runs on the parallel batched [`WavefrontEngine`] with automatic thread
/// count; see [`auto_wavefront_bound_with`] to pin the worker count. The
/// result is deterministic — bit-identical at any thread count.
pub fn auto_wavefront_bound(g: &Cdag, s: u64, strategy: AnchorStrategy) -> IoBound {
    auto_wavefront_bound_with(g, s, strategy, 0)
}

/// [`auto_wavefront_bound`] with an explicit engine worker count
/// (`threads == 0` selects `std::thread::available_parallelism`).
pub fn auto_wavefront_bound_with(
    g: &Cdag,
    s: u64,
    strategy: AnchorStrategy,
    threads: usize,
) -> IoBound {
    let engine = WavefrontEngine::new(g).with_threads(threads);
    if let AnchorStrategy::Adaptive = strategy {
        let run = engine.run_adaptive();
        return match run.best {
            Some(w) => IoBound::new(
                lemma2_bound(w.size, s),
                Method::Wavefront,
                // Note: only the deterministic anchor count goes into the
                // detail string — `anchors_evaluated` can vary with thread
                // timing (see `EngineRun`), and this bound is documented
                // as bit-identical at any thread count.
                format!(
                    "2·(w^max − S) with w^max = {} at anchor {} (adaptive: {} anchors)",
                    w.size, w.anchor, run.anchors_considered
                ),
            ),
            None => IoBound::new(0.0, Method::Wavefront, "no anchors".to_string()),
        };
    }
    let anchors = select_anchors(g, strategy);
    match engine.run(&anchors).best {
        Some(w) => IoBound::new(
            lemma2_bound(w.size, s),
            Method::Wavefront,
            format!(
                "2·(w^max − S) with w^max = {} at anchor {} ({} anchors)",
                w.size,
                w.anchor,
                anchors.len()
            ),
        ),
        None => IoBound::new(0.0, Method::Wavefront, "no anchors".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games::optimal::{optimal_io, GameKind};
    use dmc_cdag::BitSet;
    use dmc_kernels::chains;

    #[test]
    fn lemma2_clamps() {
        assert_eq!(lemma2_bound(10, 3), 14.0);
        assert_eq!(lemma2_bound(2, 5), 0.0);
    }

    /// Lemma 2 requires no tagged inputs; untag first (Theorem 3 says the
    /// untagged bound carries over).
    fn untagged(g: &Cdag) -> Cdag {
        let n = g.num_vertices();
        g.retag(BitSet::new(n), g.outputs().clone())
    }

    #[test]
    fn wavefront_bound_sound_vs_optimal_on_reduction() {
        let g = untagged(&chains::binary_reduction(8));
        for s in 2..6u64 {
            let lb = auto_wavefront_bound(&g, s, AnchorStrategy::All);
            if let Some(opt) = optimal_io(&g, s as usize, GameKind::Rbw) {
                assert!(
                    lb.value <= opt as f64,
                    "S={s}: lemma2 {} > optimal {opt}",
                    lb.value
                );
            }
        }
    }

    #[test]
    fn wavefront_bound_sound_vs_optimal_on_ladder() {
        let g = untagged(&chains::ladder(3, 3));
        for s in 3..7u64 {
            let lb = auto_wavefront_bound(&g, s, AnchorStrategy::All);
            if let Some(opt) = optimal_io(&g, s as usize, GameKind::Rbw) {
                assert!(lb.value <= opt as f64, "S={s}");
            }
        }
    }

    #[test]
    fn per_level_subset_of_all() {
        let g = chains::ladder(4, 4);
        let all = select_anchors(&g, AnchorStrategy::All);
        let pl = select_anchors(&g, AnchorStrategy::PerLevel);
        assert!(pl.len() <= all.len());
        assert!(!pl.is_empty());
        for a in &pl {
            assert!(all.contains(a));
        }
        // Per-level bound never exceeds the all-anchors bound.
        let b_all = auto_wavefront_bound(&g, 2, AnchorStrategy::All);
        let b_pl = auto_wavefront_bound(&g, 2, AnchorStrategy::PerLevel);
        assert!(b_pl.value <= b_all.value);
    }

    #[test]
    fn stride_sampling_bounds_count() {
        // Happy path: n divisible by k gives exactly k anchors.
        let g = chains::ladder(5, 5);
        let anchors = select_anchors(&g, AnchorStrategy::Stride(5));
        assert_eq!(anchors.len(), 5);
        // Off the happy path the count must still be <= k. With the old
        // truncating stride, n = 9 and k = 5 returned 9 anchors.
        let g = chains::chain(9);
        let anchors = select_anchors(&g, AnchorStrategy::Stride(5));
        assert!(
            !anchors.is_empty() && anchors.len() <= 5,
            "{}",
            anchors.len()
        );
        // k >= n degenerates to all vertices.
        let g = chains::chain(3);
        assert_eq!(select_anchors(&g, AnchorStrategy::Stride(7)).len(), 3);
        // k = 0 is clamped to one anchor per full stride.
        let g = chains::chain(4);
        assert_eq!(select_anchors(&g, AnchorStrategy::Stride(0)).len(), 1);
    }

    /// The engine-backed bound must be *bit-identical* to the serial
    /// baseline — value and derivation detail — at every thread count, on
    /// each family of test graphs (chains, jacobi, random).
    #[test]
    fn engine_bound_bit_identical_to_serial_at_any_thread_count() {
        use dmc_cdag::cut::max_min_wavefront;
        use dmc_kernels::grid::Stencil;
        use dmc_kernels::random::{random_layered, RandomDagConfig};
        let graphs: Vec<(&str, Cdag)> = vec![
            ("ladder", untagged(&chains::ladder(5, 4))),
            ("reduction", untagged(&chains::binary_reduction(16))),
            ("two_stage", untagged(&chains::two_stage(6))),
            (
                "jacobi",
                untagged(&dmc_kernels::jacobi::jacobi_cdag(6, 1, 3, Stencil::VonNeumann).cdag),
            ),
            (
                "random",
                untagged(&random_layered(RandomDagConfig {
                    layers: 5,
                    width: 6,
                    deg: 0,
                    edge_prob: 0.35,
                    seed: 1234,
                })),
            ),
        ];
        for (name, g) in &graphs {
            for strategy in [
                AnchorStrategy::All,
                AnchorStrategy::PerLevel,
                AnchorStrategy::Stride(7),
            ] {
                // The pre-refactor serial implementation, verbatim.
                let anchors = select_anchors(g, strategy);
                let expected = match max_min_wavefront(g, &anchors) {
                    Some(w) => (
                        lemma2_bound(w.size, 2),
                        format!(
                            "2·(w^max − S) with w^max = {} at anchor {} ({} anchors)",
                            w.size,
                            w.anchor,
                            anchors.len()
                        ),
                    ),
                    None => (0.0, "no anchors".to_string()),
                };
                for threads in [1usize, 2, 4] {
                    let b = auto_wavefront_bound_with(g, 2, strategy, threads);
                    assert_eq!(b.value, expected.0, "{name}/{strategy:?} @ {threads}t");
                    assert_eq!(
                        b.provenance.note, expected.1,
                        "{name}/{strategy:?} @ {threads}t"
                    );
                }
            }
        }
    }

    #[test]
    fn adaptive_dominates_per_level_never_exceeds_all() {
        let g = untagged(&chains::ladder(6, 6));
        let b_all = auto_wavefront_bound(&g, 2, AnchorStrategy::All);
        let b_pl = auto_wavefront_bound(&g, 2, AnchorStrategy::PerLevel);
        let b_ad = auto_wavefront_bound(&g, 2, AnchorStrategy::Adaptive);
        assert!(b_pl.value <= b_ad.value, "{} > {}", b_pl.value, b_ad.value);
        assert!(
            b_ad.value <= b_all.value,
            "{} > {}",
            b_ad.value,
            b_all.value
        );
        // Deterministic across thread counts.
        for threads in [1usize, 2, 4] {
            let b = auto_wavefront_bound_with(&g, 2, AnchorStrategy::Adaptive, threads);
            assert_eq!(b.value, b_ad.value);
            assert_eq!(b.provenance.note, b_ad.provenance.note);
        }
    }

    #[test]
    fn ladder_wavefront_grows_with_width() {
        // The 2-D dependence ladder carries a full anti-diagonal of live
        // values: w^max grows with the ladder width.
        let b3 = auto_wavefront_bound(&untagged(&chains::ladder(3, 3)), 1, AnchorStrategy::All);
        let b6 = auto_wavefront_bound(&untagged(&chains::ladder(6, 6)), 1, AnchorStrategy::All);
        assert!(
            b6.value > b3.value,
            "ladder(6): {} !> ladder(3): {}",
            b6.value,
            b3.value
        );
    }

    #[test]
    fn two_stage_wavefront_is_constant() {
        // Counter-intuitive but correct: the collector's fan-in is NOT a
        // wavefront — a schedule may fire the middles lazily, so the
        // minimum wavefront through any middle vertex is 2 ({x, f_i})
        // regardless of width. (The fan-in cost shows up as the minimum
        // pebble budget, not as Lemma-2 I/O.)
        let b4 = auto_wavefront_bound(&untagged(&chains::two_stage(4)), 0, AnchorStrategy::All);
        let b8 = auto_wavefront_bound(&untagged(&chains::two_stage(8)), 0, AnchorStrategy::All);
        assert_eq!(b4.value, b8.value);
        assert_eq!(b4.value, 4.0); // 2·(2 − 0)
    }
}
