//! Composition combinators for lower bounds (Theorems 2–4, Corollary 2).
//!
//! The whole point of the RBW model is that these are *sound*: per-piece
//! bounds compose into whole-CDAG bounds, which the Hong–Kung game does
//! not permit (Section 3's composite example).

use super::{IoBound, Method};
use dmc_cdag::subgraph::{decompose, InducedSubCdag};
use dmc_cdag::{BitSet, Cdag};

/// Theorem 2 (Decomposition): for any disjoint vertex partition of `C`
/// into `C_1 … C_p`, `Σ IO(C_i) ≤ IO(C)`. Summing per-piece lower bounds
/// therefore lower-bounds the whole.
pub fn decomposition_sum(pieces: &[IoBound]) -> IoBound {
    let total: f64 = pieces.iter().map(|b| b.value).sum();
    IoBound::composed(
        total,
        Method::Decomposition,
        format!("Σ of {} sub-CDAG bounds (Theorem 2)", pieces.len()),
        pieces.to_vec(),
    )
}

/// Splits `g` by a block assignment and returns the induced sub-CDAGs,
/// ready for per-piece analysis + [`decomposition_sum`].
pub fn decompose_cdag(g: &Cdag, assignment: &[usize], num_blocks: usize) -> Vec<InducedSubCdag> {
    decompose(g, assignment, num_blocks)
}

/// Corollary 2 (Input/Output Deletion): if `C'` extends `C` with extra
/// input vertices `dI` and output vertices `dO` (plus their edges), then
/// `IO(C) + |dI| + |dO| ≤ IO(C')`.
pub fn io_deletion(inner: &IoBound, d_inputs: usize, d_outputs: usize) -> IoBound {
    IoBound::composed(
        inner.value + d_inputs as f64 + d_outputs as f64,
        Method::IoDeletion,
        format!("inner + |dI| = {d_inputs} + |dO| = {d_outputs} (Corollary 2)"),
        vec![inner.clone()],
    )
}

/// Theorem 3, Equation 2 (tagging): a bound on the *more-tagged* CDAG
/// `C' = (I ∪ dI, V, E, O ∪ dO)` transfers to `C = (I, V, E, O)` after
/// subtracting the tag counts: `IO(C') − |dI| − |dO| ≤ IO(C)`.
pub fn tagging_transfer(tagged_bound: &IoBound, d_inputs: usize, d_outputs: usize) -> IoBound {
    IoBound::composed(
        tagged_bound.value - d_inputs as f64 - d_outputs as f64,
        Method::Tagging,
        format!("inner − |dI| = {d_inputs} − |dO| = {d_outputs} (Theorem 3)"),
        vec![tagged_bound.clone()],
    )
}

/// Theorem 3, Equation 3 (untagging): `IO(C) ≤ IO(C')` when `C'` only adds
/// tags — so a lower bound on the *less-tagged* CDAG is directly a lower
/// bound on the more-tagged one.
pub fn untagging_transfer(untagged_bound: &IoBound) -> IoBound {
    IoBound::composed(
        untagged_bound.value,
        Method::Tagging,
        "bound on the untagged CDAG carries over (Theorem 3, untagging)",
        vec![untagged_bound.clone()],
    )
}

/// Strips all input tags from `g` (outputs kept), the preparation step for
/// Lemma-2 bounds per Theorem 3.
pub fn untag_inputs(g: &Cdag) -> Cdag {
    g.retag(BitSet::new(g.num_vertices()), g.outputs().clone())
}

/// Theorem 4 (Non-disjoint decomposition) in its usable form: when a CDAG
/// is cut at a vertex set shared between consecutive phases (e.g. the
/// vector carried from outer-loop iteration `t` to `t+1`), bounds obtained
/// on overlapping sub-CDAGs — each including the shared frontier — may be
/// summed. The per-phase bounds must each be computed with `S+1` pebbles
/// for the phase containing the anchor `x` (see the paper's proof); this
/// helper performs the bookkeeping given already-computed phase bounds.
pub fn non_disjoint_sum(phase_bounds: &[IoBound]) -> IoBound {
    let total: f64 = phase_bounds.iter().map(|b| b.value).sum();
    IoBound::composed(
        total,
        Method::Decomposition,
        format!(
            "Σ of {} overlapping phase bounds (Theorem 4)",
            phase_bounds.len()
        ),
        phase_bounds.to_vec(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::mincut::{auto_wavefront_bound, AnchorStrategy};
    use crate::games::optimal::{optimal_io, GameKind};
    use dmc_kernels::chains;

    #[test]
    fn decomposition_sum_adds() {
        let b = decomposition_sum(&[
            IoBound::new(3.0, Method::Trivial, "x"),
            IoBound::new(4.0, Method::Wavefront, "y"),
        ]);
        assert_eq!(b.value, 7.0);
        assert_eq!(b.method, Method::Decomposition);
    }

    #[test]
    fn decomposition_sound_on_independent_chains() {
        // k chains: per-chain optimal I/O is 2 (load + store); the
        // decomposition sum 2k must lower-bound the composite optimum
        // (which is exactly 2k here).
        let g = chains::independent_chains(3, 3);
        let n = g.num_vertices();
        // Assign each chain to its own block.
        let assignment: Vec<usize> = (0..n).map(|i| i / 3).collect();
        let pieces = decompose_cdag(&g, &assignment, 3);
        let bounds: Vec<IoBound> = pieces.iter().map(|p| IoBound::trivial(&p.cdag)).collect();
        let total = decomposition_sum(&bounds);
        assert_eq!(total.value, 6.0);
        let opt = optimal_io(&g, 2, GameKind::Rbw).unwrap();
        assert!(total.value <= opt as f64);
        assert_eq!(opt, 6);
    }

    #[test]
    fn decomposition_sound_on_split_ladder() {
        // Split a ladder into top/bottom halves; sum of wavefront bounds
        // must not exceed the composite optimum.
        let g = chains::ladder(3, 4);
        let n = g.num_vertices();
        let assignment: Vec<usize> = (0..n).map(|i| usize::from(i >= n / 2)).collect();
        let pieces = decompose_cdag(&g, &assignment, 2);
        let s = 3u64;
        let bounds: Vec<IoBound> = pieces
            .iter()
            .map(|p| auto_wavefront_bound(&untag_inputs(&p.cdag), s, AnchorStrategy::All))
            .collect();
        let total = decomposition_sum(&bounds);
        if let Some(opt) = optimal_io(&g, s as usize, GameKind::Rbw) {
            assert!(
                total.value <= opt as f64,
                "decomposition {} > optimal {opt}",
                total.value
            );
        }
    }

    #[test]
    fn combinators_record_children() {
        let pieces = [
            IoBound::new(3.0, Method::Trivial, "x"),
            IoBound::new(4.0, Method::Wavefront, "y"),
        ];
        let sum = decomposition_sum(&pieces);
        assert_eq!(sum.provenance.children.len(), 2);
        assert_eq!(sum.provenance.children[1].method, Method::Wavefront);
        let transferred = untagging_transfer(&pieces[1]);
        assert_eq!(transferred.provenance.children.len(), 1);
        assert_eq!(transferred.provenance.children[0].provenance.note, "y");
    }

    #[test]
    fn tag_corrections() {
        let inner = IoBound::new(10.0, Method::Wavefront, "w");
        assert_eq!(io_deletion(&inner, 2, 3).value, 15.0);
        assert_eq!(tagging_transfer(&inner, 2, 3).value, 5.0);
        assert_eq!(untagging_transfer(&inner).value, 10.0);
        // Over-subtraction clamps at zero.
        assert_eq!(tagging_transfer(&inner, 20, 0).value, 0.0);
    }

    #[test]
    fn untag_inputs_keeps_structure() {
        let g = chains::diamond();
        let u = untag_inputs(&g);
        assert_eq!(u.num_inputs(), 0);
        assert_eq!(u.num_outputs(), g.num_outputs());
        assert_eq!(u.num_edges(), g.num_edges());
    }

    #[test]
    fn untagged_bound_transfers_soundly() {
        // Lemma 2 on the untagged CDAG must lower-bound the tagged optimum
        // (Theorem 3 untagging direction).
        let g = chains::binary_reduction(4);
        let s = 3u64; // adds have in-degree 2, so S >= 3 is required
        let untagged = untag_inputs(&g);
        let lb = auto_wavefront_bound(&untagged, s, AnchorStrategy::All);
        let opt = optimal_io(&g, s as usize, GameKind::Rbw).unwrap();
        assert!(lb.value <= opt as f64, "{} > {opt}", lb.value);
    }
}
