//! I/O lower-bound machinery.
//!
//! * [`mincut`] — Lemma 2 wavefront bounds with automated anchor sampling;
//! * [`decompose`] — the composition combinators: Theorem 2 (disjoint
//!   decomposition), Corollary 2 (input/output deletion), Theorem 3
//!   (tagging/untagging) and Theorem 4 (non-disjoint decomposition);
//! * the 2S-partition bounds (Lemma 1 / Corollary 1) live in
//!   [`crate::partition`] next to the partition machinery and are
//!   re-exported here.

pub mod decompose;
pub mod mincut;
pub mod span;

pub use crate::partition::{corollary1_lower_bound, lemma1_lower_bound};

/// Provenance of a bound — which result of the paper produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Lemma 1 / Corollary 1 via 2S-partitions.
    HongKung2S,
    /// Lemma 2 via minimum wavefronts (vertex min-cut).
    Wavefront,
    /// Theorem 2: sum of sub-CDAG bounds.
    Decomposition,
    /// Theorem 3: tag-correction of a bound on a retagged CDAG.
    Tagging,
    /// Corollary 2: input/output deletion correction.
    IoDeletion,
    /// Closed-form kernel-specific bound.
    Analytic,
    /// Theorem 5/6: vertical parallel bound.
    Vertical,
    /// Theorem 7: horizontal parallel bound.
    Horizontal,
    /// Trivial bound: every input loaded, every output stored.
    Trivial,
}

/// A certified I/O bound with provenance.
#[derive(Debug, Clone)]
pub struct IoBound {
    /// The bound value, in words moved.
    pub value: f64,
    /// Which result produced it.
    pub method: Method,
    /// Human-readable derivation note.
    pub detail: String,
}

impl IoBound {
    /// Creates a bound.
    pub fn new(value: f64, method: Method, detail: impl Into<String>) -> Self {
        IoBound {
            value: value.max(0.0),
            method,
            detail: detail.into(),
        }
    }

    /// The trivial lower bound `|I| + |O \ I|`: every input must be loaded
    /// at least once (inputs only acquire their white pebble via R1), and
    /// every output that is not itself an input must be stored at least
    /// once (inputs start blue and need no store).
    pub fn trivial(g: &dmc_cdag::Cdag) -> Self {
        let mut pure_outputs = g.outputs().clone();
        pure_outputs.difference_with(g.inputs());
        IoBound::new(
            (g.num_inputs() + pure_outputs.len()) as f64,
            Method::Trivial,
            format!(
                "|I| + |O \\ I| = {} + {}",
                g.num_inputs(),
                pure_outputs.len()
            ),
        )
    }
}

/// Picks the strongest (largest) of several lower bounds.
pub fn best_lower_bound(bounds: impl IntoIterator<Item = IoBound>) -> Option<IoBound> {
    bounds
        .into_iter()
        .max_by(|a, b| a.value.partial_cmp(&b.value).expect("no NaN bounds"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmc_kernels::chains;

    #[test]
    fn trivial_bound_counts_tags() {
        let g = chains::binary_reduction(8);
        let b = IoBound::trivial(&g);
        assert_eq!(b.value, 9.0);
        assert_eq!(b.method, Method::Trivial);
    }

    #[test]
    fn negative_bounds_clamped() {
        let b = IoBound::new(-5.0, Method::Analytic, "negative");
        assert_eq!(b.value, 0.0);
    }

    #[test]
    fn best_picks_max() {
        let best = best_lower_bound([
            IoBound::new(3.0, Method::Trivial, "a"),
            IoBound::new(10.0, Method::Wavefront, "b"),
            IoBound::new(7.0, Method::HongKung2S, "c"),
        ])
        .unwrap();
        assert_eq!(best.value, 10.0);
        assert_eq!(best.method, Method::Wavefront);
    }

    #[test]
    fn best_of_empty_is_none() {
        assert!(best_lower_bound([]).is_none());
    }
}
