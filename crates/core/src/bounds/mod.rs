//! I/O lower-bound machinery.
//!
//! * [`mincut`] — Lemma 2 wavefront bounds with automated anchor sampling;
//! * [`decompose`] — the composition combinators: Theorem 2 (disjoint
//!   decomposition), Corollary 2 (input/output deletion), Theorem 3
//!   (tagging/untagging) and Theorem 4 (non-disjoint decomposition);
//! * the 2S-partition bounds (Lemma 1 / Corollary 1) live in
//!   [`crate::partition`] next to the partition machinery and are
//!   re-exported here.
//!
//! Every bound carries a structured [`Provenance`]: the composition
//! combinators record their sub-bounds as children, so a composed bound
//! is a *derivation tree* — which theorem was applied at each node, with
//! which parameters — rather than a flat note. [`std::fmt::Display`]
//! renders the tree; `serde::Serialize` emits it as JSON.

pub mod decompose;
pub mod mincut;
pub mod span;

pub use crate::partition::{corollary1_lower_bound, lemma1_lower_bound};

use serde::json::Value;
use serde::Serialize;

/// Provenance of a bound — which result of the paper produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Lemma 1 / Corollary 1 via 2S-partitions.
    HongKung2S,
    /// Lemma 2 via minimum wavefronts (vertex min-cut).
    Wavefront,
    /// Theorem 2: sum of sub-CDAG bounds.
    Decomposition,
    /// Theorem 3: tag-correction of a bound on a retagged CDAG.
    Tagging,
    /// Corollary 2: input/output deletion correction.
    IoDeletion,
    /// Closed-form kernel-specific bound.
    Analytic,
    /// Theorem 5/6: vertical parallel bound.
    Vertical,
    /// Theorem 7: horizontal parallel bound.
    Horizontal,
    /// Trivial bound: every input loaded, every output stored.
    Trivial,
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Method::HongKung2S => "2S-partition (Lemma 1)",
            Method::Wavefront => "wavefront (Lemma 2)",
            Method::Decomposition => "decomposition (Theorem 2)",
            Method::Tagging => "tagging (Theorem 3)",
            Method::IoDeletion => "I/O deletion (Corollary 2)",
            Method::Analytic => "analytic",
            Method::Vertical => "vertical (Theorems 5-6)",
            Method::Horizontal => "horizontal (Theorem 7)",
            Method::Trivial => "trivial",
        };
        f.write_str(name)
    }
}

impl Serialize for Method {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

/// Structured derivation record of an [`IoBound`].
///
/// Leaf bounds (one theorem applied directly to one CDAG) carry only a
/// parameter `note`; composed bounds (Theorems 2–4, Corollary 2)
/// additionally record the sub-bounds they were built from as `children`,
/// turning the bound into a full derivation tree.
#[derive(Debug, Clone)]
pub struct Provenance {
    /// Parameter/derivation note for this node, e.g.
    /// `"2·(w^max − S) with w^max = 7 at anchor v12 (64 anchors)"`.
    pub note: String,
    /// Sub-bounds this bound was composed from (empty for leaves).
    pub children: Vec<IoBound>,
}

/// A certified I/O bound with provenance.
#[derive(Debug, Clone)]
#[must_use = "a certified bound is evidence; dropping it silently discards the certificate"]
pub struct IoBound {
    /// The bound value, in words moved.
    pub value: f64,
    /// Which result produced it.
    pub method: Method,
    /// How it was derived (parameters + sub-bounds).
    pub provenance: Provenance,
}

impl IoBound {
    /// Creates a leaf bound (no sub-bounds).
    pub fn new(value: f64, method: Method, note: impl Into<String>) -> Self {
        IoBound {
            value: value.max(0.0),
            method,
            provenance: Provenance {
                note: note.into(),
                children: Vec::new(),
            },
        }
    }

    /// Creates a composed bound recording the sub-bounds it was derived
    /// from — the provenance-tree constructor used by the Theorem-2/3/4
    /// combinators in [`decompose`].
    pub fn composed(
        value: f64,
        method: Method,
        note: impl Into<String>,
        children: Vec<IoBound>,
    ) -> Self {
        IoBound {
            value: value.max(0.0),
            method,
            provenance: Provenance {
                note: note.into(),
                children,
            },
        }
    }

    /// The trivial lower bound `|I| + |O \ I|`: every input must be loaded
    /// at least once (inputs only acquire their white pebble via R1), and
    /// every output that is not itself an input must be stored at least
    /// once (inputs start blue and need no store).
    pub fn trivial(g: &dmc_cdag::Cdag) -> Self {
        let mut pure_outputs = g.outputs().clone();
        pure_outputs.difference_with(g.inputs());
        IoBound::new(
            (g.num_inputs() + pure_outputs.len()) as f64,
            Method::Trivial,
            format!(
                "|I| + |O \\ I| = {} + {}",
                g.num_inputs(),
                pure_outputs.len()
            ),
        )
    }

    fn fmt_tree(&self, f: &mut std::fmt::Formatter<'_>, depth: usize) -> std::fmt::Result {
        writeln!(
            f,
            "{:indent$}>= {:<8} {} — {}",
            "",
            self.value,
            self.method,
            self.provenance.note,
            indent = 2 * depth
        )?;
        for child in &self.provenance.children {
            child.fmt_tree(f, depth + 1)?;
        }
        Ok(())
    }
}

/// Renders the full derivation tree, one node per line, children indented.
impl std::fmt::Display for IoBound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.fmt_tree(f, 0)
    }
}

impl Serialize for IoBound {
    fn to_json(&self) -> Value {
        Value::object([
            ("value", self.value.to_json()),
            ("method", self.method.to_json()),
            ("note", self.provenance.note.to_json()),
            ("children", self.provenance.children.to_json()),
        ])
    }
}

/// Picks the strongest (largest) of several lower bounds.
///
/// Ordering uses [`f64::total_cmp`] with a first-wins tie-break, so the
/// call is total: a NaN value (possible only via direct struct
/// construction from a degenerate profile — [`IoBound::new`] sanitizes
/// NaN to 0) cannot panic the pipeline. Under `total_cmp` NaN orders
/// above every finite value, which at worst surfaces the degenerate
/// bound for inspection instead of crashing.
pub fn best_lower_bound(bounds: impl IntoIterator<Item = IoBound>) -> Option<IoBound> {
    bounds.into_iter().reduce(|best, candidate| {
        if candidate.value.total_cmp(&best.value).is_gt() {
            candidate
        } else {
            best
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmc_kernels::chains;

    #[test]
    fn trivial_bound_counts_tags() {
        let g = chains::binary_reduction(8);
        let b = IoBound::trivial(&g);
        assert_eq!(b.value, 9.0);
        assert_eq!(b.method, Method::Trivial);
    }

    #[test]
    fn negative_bounds_clamped() {
        let b = IoBound::new(-5.0, Method::Analytic, "negative");
        assert_eq!(b.value, 0.0);
    }

    #[test]
    fn nan_bound_sanitized_by_constructor() {
        let b = IoBound::new(f64::NAN, Method::Analytic, "0/0 profile");
        assert_eq!(b.value, 0.0);
    }

    #[test]
    fn best_picks_max() {
        let best = best_lower_bound([
            IoBound::new(3.0, Method::Trivial, "a"),
            IoBound::new(10.0, Method::Wavefront, "b"),
            IoBound::new(7.0, Method::HongKung2S, "c"),
        ])
        .unwrap();
        assert_eq!(best.value, 10.0);
        assert_eq!(best.method, Method::Wavefront);
    }

    #[test]
    fn best_of_empty_is_none() {
        assert!(best_lower_bound([]).is_none());
    }

    #[test]
    fn best_tie_break_is_first_wins() {
        let best = best_lower_bound([
            IoBound::new(5.0, Method::Trivial, "first"),
            IoBound::new(5.0, Method::Wavefront, "second"),
        ])
        .unwrap();
        assert_eq!(best.method, Method::Trivial);
    }

    /// Regression: `partial_cmp(..).expect("no NaN bounds")` used to panic
    /// when a degenerate profile smuggled a NaN in via direct struct
    /// construction; `total_cmp` keeps the pipeline alive.
    #[test]
    fn nan_bound_does_not_panic() {
        let nan = IoBound {
            value: f64::NAN,
            method: Method::Analytic,
            provenance: Provenance {
                note: "degenerate".into(),
                children: Vec::new(),
            },
        };
        let best = best_lower_bound([IoBound::new(3.0, Method::Trivial, "a"), nan]);
        assert!(best.is_some());
    }

    #[test]
    fn display_renders_the_tree() {
        let child = IoBound::new(4.0, Method::Trivial, "|I| + |O \\ I| = 2 + 2");
        let b = IoBound::composed(
            10.0,
            Method::Decomposition,
            "Σ of 1 sub-CDAG bounds (Theorem 2)",
            vec![child],
        );
        let text = b.to_string();
        let mut lines = text.lines();
        let root = lines.next().unwrap();
        assert!(root.contains("decomposition (Theorem 2)"), "{root}");
        let leaf = lines.next().unwrap();
        assert!(leaf.starts_with("  >= 4"), "{leaf}");
        assert!(leaf.contains("trivial"), "{leaf}");
    }

    #[test]
    fn serialize_emits_nested_json() {
        let b = IoBound::composed(
            6.0,
            Method::Decomposition,
            "sum",
            vec![IoBound::new(6.0, Method::Wavefront, "w = 5")],
        );
        let json = serde::json::to_string(&b);
        assert!(json.starts_with('{'), "{json}");
        assert!(
            json.contains(r#""method":"decomposition (Theorem 2)""#),
            "{json}"
        );
        assert!(json.contains(r#""children":[{"#), "{json}");
        assert!(json.contains(r#""note":"w = 5""#), "{json}");
    }
}
