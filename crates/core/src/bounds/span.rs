//! Savage's S-span lower-bound technique (cited by the paper as \[23, 24\]
//! and used by Ranjan–Savage–Zubair \[19, 20\] for FFT and pyramid graphs).
//!
//! The *S-span* `ρ(S, G)` is the maximum number of vertices that can be
//! pebbled starting from **any** placement of `S` red pebbles, using at
//! most `S` additional pebble placements of budget `S` — intuitively, the
//! most work one "cache-full" of data can support. Savage's theorem gives
//!
//! ```text
//! Q ≥ S · ( |V'| / ρ(2S, G) − 1 )
//! ```
//!
//! structurally identical to Hong–Kung's Corollary 1 with `ρ(2S)` in
//! place of `U(2S)`. This module provides:
//!
//! * an exhaustive `ρ(S)` computation for tiny graphs (ground truth),
//! * closed-form spans for the structured families (FFT, pyramids),
//! * the bound combinator.

use super::{IoBound, Method};
use dmc_cdag::{Cdag, VertexId};

/// Savage's S-span bound: `Q ≥ S·(|V'|/ρ(2S) − 1)`.
pub fn span_lower_bound(s: u64, num_compute_vertices: usize, rho_2s: f64) -> IoBound {
    assert!(rho_2s > 0.0);
    IoBound::new(
        (s as f64) * (num_compute_vertices as f64 / rho_2s - 1.0),
        Method::Analytic,
        format!("S-span: S·(|V'|/ρ(2S) − 1) with ρ(2S) = {rho_2s:.1}"),
    )
}

/// Closed-form S-span for the `n`-point FFT butterfly (Ranjan–Savage–
/// Zubair): one cache-full of `s` values supports at most `s·log₂ s`
/// butterfly evaluations, so `ρ(s) = s·log₂ s` (for `s ≥ 2`).
pub fn fft_span(s: u64) -> f64 {
    assert!(s >= 2);
    (s as f64) * (s as f64).log2()
}

/// The resulting FFT I/O bound `Q ≥ S·(n·log₂ n / (2S·log₂ 2S) − 1)` —
/// the `Ω(n log n / log S)` shape of Hong–Kung sharpened by the span
/// constant.
pub fn fft_span_bound(n: usize, s: u64) -> IoBound {
    let work = (n as f64) * (n as f64).log2();
    span_lower_bound(s, work as usize, fft_span(2 * s))
}

/// Closed-form S-span for 2-pyramids: `s` pebbles support at most
/// `O(s²)` pyramid vertices (a triangle of height `s`): `ρ(s) = s(s+1)/2`.
pub fn pyramid_span(s: u64) -> f64 {
    (s as f64) * (s as f64 + 1.0) / 2.0
}

/// Exhaustively computes the S-span of a tiny CDAG: the maximum number of
/// *distinct* compute firings achievable with `s` red pebbles starting
/// from the best possible initial placement of at most `s` pebbles, with
/// no I/O allowed. Exact (full search over placements and fire/delete
/// orders, memoized) — for validation only (`|V| ≤ 16`).
pub fn exhaustive_span(g: &Cdag, s: usize) -> usize {
    let n = g.num_vertices();
    assert!(n <= 16, "exhaustive span limited to tiny graphs");
    let compute_total = g.num_compute_vertices();
    let mut best = 0usize;
    // BTreeMap, not HashMap: the memo is keyed by (red, fired) bit masks
    // and a deterministic structure keeps the whole search replayable
    // (lint rule D1) at no asymptotic cost for these ≤16-vertex graphs.
    let mut memo = std::collections::BTreeMap::new();
    for mask in 0u32..(1u32 << n) {
        if (mask.count_ones() as usize) > s {
            continue;
        }
        best = best.max(max_fires(g, mask, mask & compute_mask(g), s, &mut memo));
        if best == compute_total {
            break; // cannot do better
        }
    }
    best
}

fn compute_mask(g: &Cdag) -> u32 {
    g.vertices()
        .filter(|&v| !g.is_input(v))
        .fold(0u32, |m, v| m | (1 << v.0))
}

/// Exact maximum additional firings from state (red, fired) with budget
/// `s`, memoized. The state graph is acyclic: `fired` only grows, and
/// within a fixed `fired` the delete transitions strictly shrink `red`.
/// Initially-placed pebbles on compute vertices count as "materialized"
/// but not as firings (Savage's span counts newly pebbled vertices).
fn max_fires(
    g: &Cdag,
    red: u32,
    fired: u32,
    s: usize,
    memo: &mut std::collections::BTreeMap<(u32, u32), usize>,
) -> usize {
    if let Some(&v) = memo.get(&(red, fired)) {
        return v;
    }
    let n = g.num_vertices();
    let mut best = 0usize;
    for v in 0..n as u32 {
        let bit = 1u32 << v;
        let vid = VertexId(v);
        // Fire v.
        if !g.is_input(vid) && fired & bit == 0 && red & bit == 0 && (red.count_ones() as usize) < s
        {
            let preds_ok = g.predecessors(vid).iter().all(|p| red & (1 << p.0) != 0);
            if preds_ok {
                best = best.max(1 + max_fires(g, red | bit, fired | bit, s, memo));
            }
        }
        // Delete v's pebble (frees a slot; the firing remains recorded).
        if red & bit != 0 {
            best = best.max(max_fires(g, red & !bit, fired, s, memo));
        }
    }
    memo.insert((red, fired), best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmc_kernels::{chains, fft};

    #[test]
    fn span_bound_formula() {
        let b = span_lower_bound(10, 1000, 100.0);
        assert_eq!(b.value, 10.0 * 9.0);
        // Clamps at zero when the span covers everything.
        assert_eq!(span_lower_bound(10, 50, 100.0).value, 0.0);
    }

    #[test]
    fn fft_span_shapes() {
        assert_eq!(fft_span(4), 8.0);
        assert_eq!(fft_span(16), 64.0);
        // Bound grows with n, shrinks with S.
        assert!(fft_span_bound(1 << 12, 8).value > fft_span_bound(1 << 10, 8).value);
        assert!(fft_span_bound(1 << 12, 8).value > fft_span_bound(1 << 12, 64).value);
    }

    #[test]
    fn pyramid_span_is_triangular() {
        assert_eq!(pyramid_span(4), 10.0);
    }

    /// Regression for the memo HashMap→BTreeMap conversion (lint rule
    /// D1): the exhaustive search returns the same value on every run and
    /// still agrees with the hand-computed spans below.
    #[test]
    fn exhaustive_span_is_stable_across_runs() {
        let g = fft::fft(4);
        let first = exhaustive_span(&g, 3);
        for _ in 0..3 {
            assert_eq!(exhaustive_span(&g, 3), first);
        }
    }

    #[test]
    fn exhaustive_span_on_chain() {
        // A chain can be fully fired from its source with 2 pebbles.
        let g = chains::chain(8);
        assert_eq!(exhaustive_span(&g, 2), 7);
        // One pebble cannot fire anything that has a predecessor... the
        // chain's first op needs the input red AND a slot for itself.
        assert_eq!(exhaustive_span(&g, 1), 0);
    }

    #[test]
    fn exhaustive_span_on_reduction() {
        let g = chains::binary_reduction(4);
        // 3 compute vertices; from {x0..x3} placed (4 pebbles > budget 3)…
        // with s = 3: place 2 leaves, fire their add (3 pebbles used);
        // nothing else fires. Span = 1.
        assert_eq!(exhaustive_span(&g, 3), 1);
        // s = 7 covers everything: all 4 leaves + fire all 3 adds.
        assert_eq!(exhaustive_span(&g, 7), 3);
    }

    #[test]
    fn exhaustive_vs_closed_form_fft4() {
        // fft(4): 8 compute vertices; with s = 4 the span must not exceed
        // the closed form s·log2(s) = 8 and must be positive.
        let g = fft::fft(4);
        let rho = exhaustive_span(&g, 4);
        assert!(rho >= 2);
        assert!((rho as f64) <= fft_span(4));
    }

    #[test]
    fn span_bound_sound_vs_optimal_on_fft4() {
        use crate::games::optimal::{optimal_io, GameKind};
        let g = fft::fft(4);
        for s in [2usize, 3] {
            let rho = exhaustive_span(&g, 2 * s) as f64;
            if rho == 0.0 {
                continue;
            }
            let lb = span_lower_bound(s as u64, g.num_compute_vertices(), rho);
            if let Some(opt) = optimal_io(&g, s, GameKind::Rbw) {
                assert!(
                    lb.value <= opt as f64,
                    "S={s}: span bound {} > optimal {opt}",
                    lb.value
                );
            }
        }
    }
}
