//! Machine database.
//!
//! The two systems of the paper's Table 1 are reconstructed from their
//! published physical parameters; the derived balance columns then agree
//! with the table to the printed precision:
//!
//! | Machine  | Nodes | Mem (GB) | LLC (MB) | Vert. | Horiz. |
//! |----------|-------|----------|----------|-------|--------|
//! | IBM BG/Q | 2048  | 16       | 32       | 0.052 | 0.049  |
//! | Cray XT5 | 9408  | 16       | 6        | 0.0256| 0.058  |
//!
//! *BG/Q*: 16 cores × 1.6 GHz × 4 FLOPs/cycle = 102.4 GFLOP/s/node;
//! 42.6 GB/s DDR3 → 42.6/8/102.4 ≈ 0.052 words/FLOP; 10 torus links ×
//! 4 GB/s = 40 GB/s injection → 0.049 words/FLOP.
//!
//! *Cray XT5 (Jaguar)*: 2 × 6-core Opteron @ 2.6 GHz × 4 FLOPs/cycle =
//! 124.8 GFLOP/s/node; 25.6 GB/s DDR2 → 0.0256; SeaStar2+ 57.6 GB/s →
//! 0.058.

use crate::balance::MachineSpec;

/// IBM Blue Gene/Q, as in Table 1 (2048-node configuration).
pub fn ibm_bgq() -> MachineSpec {
    MachineSpec {
        name: "IBM BG/Q".to_string(),
        nodes: 2048,
        cores_per_node: 16,
        gflops_per_core: 6.4, // 1.6 GHz × 4 FLOPs/cycle (FMA × 2-wide)
        memory_gb: 16.0,
        llc_mb: 32.0,
        dram_bandwidth_gbs: 42.6,
        network_bandwidth_gbs: 40.0,
        word_bytes: 8.0,
    }
}

/// Cray XT5 ("Jaguar" class), as in Table 1 (9408-node configuration).
pub fn cray_xt5() -> MachineSpec {
    MachineSpec {
        name: "Cray XT5".to_string(),
        nodes: 9408,
        cores_per_node: 12,
        gflops_per_core: 10.4, // 2.6 GHz × 4 FLOPs/cycle
        memory_gb: 16.0,
        llc_mb: 6.0,
        dram_bandwidth_gbs: 25.6,
        network_bandwidth_gbs: 57.6,
        word_bytes: 8.0,
    }
}

/// The exact machine list of the paper's Table 1.
pub fn table1_machines() -> Vec<MachineSpec> {
    vec![ibm_bgq(), cray_xt5()]
}

/// The simulation catalog: the machines `repro simulate --machine`
/// sweeps — Table 1 plus the contemporary K computer.
pub fn machine_catalog() -> Vec<MachineSpec> {
    let mut v = table1_machines();
    v.push(k_computer());
    v
}

/// The catalog entry names, in sweep order — the valid values of
/// `repro simulate --machine <name>` (matched case-insensitively by
/// [`find_machine`]).
pub fn catalog_names() -> Vec<String> {
    machine_catalog().into_iter().map(|m| m.name).collect()
}

/// Case-insensitive lookup of a catalog machine by name.
///
/// ```
/// assert!(dmc_machine::specs::find_machine("ibm bg/q").is_some());
/// assert!(dmc_machine::specs::find_machine("warp drive").is_none());
/// ```
pub fn find_machine(name: &str) -> Option<MachineSpec> {
    machine_catalog()
        .into_iter()
        .find(|m| m.name.eq_ignore_ascii_case(name.trim()))
}

/// Fujitsu K computer (contemporary with the paper; SPARC64 VIIIfx,
/// 8 c × 16 GF, 64 GB/s memory, Tofu 6D torus ~20 GB/s injection). Not in
/// Table 1; included to extend the balance comparison.
pub fn k_computer() -> MachineSpec {
    MachineSpec {
        name: "K computer".to_string(),
        nodes: 82944,
        cores_per_node: 8,
        gflops_per_core: 16.0,
        memory_gb: 16.0,
        llc_mb: 6.0,
        dram_bandwidth_gbs: 64.0,
        network_bandwidth_gbs: 20.0,
        word_bytes: 8.0,
    }
}

/// A Summit-like GPU-accelerated node (2 × ~22-core + 6 GPUs abstracted
/// as a single 42 TF node with 900 GB/s HBM-class aggregate bandwidth) —
/// illustrating that accelerator nodes push the vertical balance *down*
/// despite enormous raw bandwidth.
pub fn summit_like_node() -> MachineSpec {
    MachineSpec {
        name: "Summit-like".to_string(),
        nodes: 4608,
        cores_per_node: 44,
        gflops_per_core: 954.5, // ~42 TF/node spread over 44 "cores"
        memory_gb: 512.0,
        llc_mb: 120.0,
        dram_bandwidth_gbs: 5400.0, // aggregate HBM2 across the node
        network_bandwidth_gbs: 25.0,
        word_bytes: 8.0,
    }
}

/// Extended machine list: Table 1 plus the later systems.
pub fn extended_machines() -> Vec<MachineSpec> {
    let mut v = table1_machines();
    v.push(k_computer());
    v.push(summit_like_node());
    v.push(projected_exascale_node());
    v
}

/// A projected exascale-era node with a far lower balance — used by the
/// examples to illustrate the paper's thesis that vertical balance keeps
/// shrinking. (Not part of Table 1.)
pub fn projected_exascale_node() -> MachineSpec {
    MachineSpec {
        name: "Projected-X".to_string(),
        nodes: 65536,
        cores_per_node: 128,
        gflops_per_core: 32.0,
        memory_gb: 256.0,
        llc_mb: 256.0,
        dram_bandwidth_gbs: 400.0,
        network_bandwidth_gbs: 100.0,
        word_bytes: 8.0,
    }
}

/// Prints the header + rows of Table 1.
pub fn format_table1() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:>6} {:>8} {:>8} {:>10} {:>10}\n",
        "Machine", "Nodes", "Mem(GB)", "LLC(MB)", "Vert(w/F)", "Horiz(w/F)"
    ));
    for m in table1_machines() {
        out.push_str(&m.table1_row());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_both_machines() {
        let t = table1_machines();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].name, "IBM BG/Q");
        assert_eq!(t[1].name, "Cray XT5");
    }

    #[test]
    fn formatted_table_has_three_lines() {
        let s = format_table1();
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains("Vert(w/F)"));
    }

    #[test]
    fn projected_machine_has_worse_vertical_balance() {
        let x = projected_exascale_node();
        let bgq = ibm_bgq();
        assert!(x.vertical_balance() < bgq.vertical_balance());
    }

    #[test]
    fn extended_list_superset_of_table1() {
        let ext = extended_machines();
        assert!(ext.len() >= 5);
        assert_eq!(ext[0].name, "IBM BG/Q");
        // All machines have positive balances.
        for m in &ext {
            assert!(
                m.vertical_balance() > 0.0 && m.horizontal_balance() > 0.0,
                "{}",
                m.name
            );
        }
    }

    #[test]
    fn k_computer_balance_regime() {
        // K's 64 GB/s on 128 GF/node gives a relatively generous 0.0625
        // vertical balance — better than BG/Q's.
        let k = k_computer();
        assert!((k.vertical_balance() - 0.0625).abs() < 1e-9);
        assert!(k.vertical_balance() > ibm_bgq().vertical_balance());
    }

    #[test]
    fn simulation_catalog_is_table1_plus_k() {
        let names = catalog_names();
        assert_eq!(names, ["IBM BG/Q", "Cray XT5", "K computer"]);
        assert_eq!(machine_catalog().len(), 3);
    }

    #[test]
    fn find_machine_is_case_insensitive_and_trims() {
        assert_eq!(find_machine("ibm bg/q").map(|m| m.nodes), Some(2048));
        assert_eq!(find_machine("  K COMPUTER ").map(|m| m.nodes), Some(82944));
        assert!(find_machine("Summit-like").is_none(), "not in the catalog");
        assert!(find_machine("bogus").is_none());
    }

    #[test]
    fn accelerator_node_balance_trend() {
        // Summit-like: huge bandwidth but even bigger FLOPs — vertical
        // balance sits near BG/Q levels; horizontal collapses.
        let s = summit_like_node();
        assert!(s.vertical_balance() < 0.02);
        assert!(s.horizontal_balance() < ibm_bgq().horizontal_balance() / 10.0);
    }
}
