//! Bandwidth-bound decision rules (Equations 7–10 of the paper).
//!
//! For a memory unit at level `l`, the machine balance is
//! `B^i_l / (|P^i_l| · F)` words/FLOP. Equation 7 states that an algorithm
//! can avoid being bandwidth-bound at level `l` only if its data-movement
//! **lower bound** per FLOP, `LB^i_l · N^i_l / |V|`, does not exceed the
//! balance; Equation 8 states that if it *is* communication bound then the
//! per-FLOP **upper bound** must exceed the balance — so an upper bound
//! below the balance certifies "not bandwidth-bound at this level".

use serde::{Deserialize, Serialize};

/// Outcome of comparing an algorithm's data-movement bounds against a
/// machine balance value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BandwidthVerdict {
    /// The lower bound per FLOP exceeds the balance: the algorithm is
    /// unavoidably bandwidth-bound at this level, whatever the schedule
    /// (Equation 7 violated).
    BandwidthBound,
    /// The upper bound per FLOP is below the balance: some execution order
    /// is not constrained by this level's bandwidth (Equation 8 violated).
    NotBandwidthBound,
    /// The balance lies between the lower and upper per-FLOP bounds; the
    /// analysis is inconclusive (the GMRES situation of Section 5.3.3 when
    /// `m` is unknown).
    Inconclusive,
}

impl std::fmt::Display for BandwidthVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BandwidthVerdict::BandwidthBound => write!(f, "bandwidth-bound"),
            BandwidthVerdict::NotBandwidthBound => write!(f, "not bandwidth-bound"),
            BandwidthVerdict::Inconclusive => write!(f, "inconclusive"),
        }
    }
}

/// An algorithm-level data-movement constraint at one memory level: the
/// per-FLOP lower and/or upper bounds on traffic through the busiest unit,
/// already normalized as in Equations 7–8 (`bound × N_l / |V|`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// `LB · N_l / |V|` — certified minimum words moved per FLOP
    /// (`None` when no lower bound is available).
    pub lower_words_per_flop: Option<f64>,
    /// `UB · N_l / |V|` — achievable words moved per FLOP
    /// (`None` when no upper bound is available).
    pub upper_words_per_flop: Option<f64>,
}

impl Constraint {
    /// A constraint with only a lower bound.
    pub fn lower(lb: f64) -> Self {
        Constraint {
            lower_words_per_flop: Some(lb),
            upper_words_per_flop: None,
        }
    }

    /// A constraint with only an upper bound.
    pub fn upper(ub: f64) -> Self {
        Constraint {
            lower_words_per_flop: None,
            upper_words_per_flop: Some(ub),
        }
    }

    /// A constraint with both bounds.
    ///
    /// # Panics
    /// Panics if `lb > ub` (an inverted sandwich indicates an analysis bug).
    pub fn sandwich(lb: f64, ub: f64) -> Self {
        assert!(
            lb <= ub * (1.0 + 1e-12),
            "lower bound {lb} exceeds upper bound {ub}"
        );
        Constraint {
            lower_words_per_flop: Some(lb),
            upper_words_per_flop: Some(ub),
        }
    }

    /// Applies Equations 7–8 against a machine balance value (words/FLOP).
    pub fn verdict(&self, balance_words_per_flop: f64) -> BandwidthVerdict {
        if let Some(lb) = self.lower_words_per_flop {
            if lb > balance_words_per_flop {
                return BandwidthVerdict::BandwidthBound;
            }
        }
        if let Some(ub) = self.upper_words_per_flop {
            if ub < balance_words_per_flop {
                return BandwidthVerdict::NotBandwidthBound;
            }
        }
        BandwidthVerdict::Inconclusive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs;

    #[test]
    fn cg_style_verdicts() {
        // CG's vertical ratio is 0.3 words/FLOP (Section 5.2.3) — above
        // every Table-1 balance, so bandwidth-bound everywhere.
        let c = Constraint::lower(0.3);
        for m in specs::table1_machines() {
            assert_eq!(
                c.verdict(m.vertical_balance()),
                BandwidthVerdict::BandwidthBound
            );
        }
    }

    #[test]
    fn horizontal_upper_bound_clears_network() {
        // CG's horizontal ratio 6·N^{1/3}/(20n) with n=1000, N=2048 nodes:
        // ≈ 0.0038 — below both machines' horizontal balance.
        let ub = 6.0 * (2048f64).powf(1.0 / 3.0) / (20.0 * 1000.0);
        let c = Constraint::upper(ub);
        for m in specs::table1_machines() {
            assert_eq!(
                c.verdict(m.horizontal_balance()),
                BandwidthVerdict::NotBandwidthBound
            );
        }
    }

    #[test]
    fn inconclusive_when_balance_inside_sandwich() {
        let c = Constraint::sandwich(0.01, 0.10);
        assert_eq!(c.verdict(0.05), BandwidthVerdict::Inconclusive);
        assert_eq!(c.verdict(0.005), BandwidthVerdict::BandwidthBound);
        assert_eq!(c.verdict(0.5), BandwidthVerdict::NotBandwidthBound);
    }

    #[test]
    #[should_panic(expected = "exceeds upper bound")]
    fn inverted_sandwich_panics() {
        let _ = Constraint::sandwich(1.0, 0.1);
    }

    #[test]
    fn display_strings() {
        assert_eq!(
            BandwidthVerdict::BandwidthBound.to_string(),
            "bandwidth-bound"
        );
        assert_eq!(
            BandwidthVerdict::NotBandwidthBound.to_string(),
            "not bandwidth-bound"
        );
        assert_eq!(BandwidthVerdict::Inconclusive.to_string(), "inconclusive");
    }
}
