//! The `(N_l, S_l)` memory-hierarchy structure of the P-RBW model.

use serde::{Deserialize, Serialize};

/// One storage level of the hierarchy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Level {
    /// Human-readable name ("registers", "L2", "DRAM", …).
    pub name: String,
    /// `N_l` — number of storage units at this level.
    pub units: usize,
    /// `S_l` — capacity of each unit, in words.
    pub capacity_words: u64,
}

impl Level {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, units: usize, capacity_words: u64) -> Self {
        Level {
            name: name.into(),
            units,
            capacity_words,
        }
    }

    /// Aggregate capacity of the level: `N_l × S_l` words.
    pub fn total_capacity_words(&self) -> u64 {
        self.units as u64 * self.capacity_words
    }
}

/// Errors reported by [`MemoryHierarchy::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HierarchyError {
    /// Fewer than two levels were supplied (the model needs at least
    /// registers and main memory).
    TooFewLevels,
    /// `N_l` must be non-increasing from level 1 up to level L.
    UnitsNotMonotone(usize),
    /// `N_{l}` must divide `N_{l-1}` so that each level-`l-1` unit has a
    /// unique parent.
    UnitsNotDivisible(usize),
    /// A level has zero units or zero capacity.
    Degenerate(usize),
}

impl std::fmt::Display for HierarchyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HierarchyError::TooFewLevels => write!(f, "hierarchy needs at least two levels"),
            HierarchyError::UnitsNotMonotone(l) => {
                write!(f, "level {l} has more units than level {}", l - 1)
            }
            HierarchyError::UnitsNotDivisible(l) => {
                write!(
                    f,
                    "units at level {} do not divide units at level {l}",
                    l + 1
                )
            }
            HierarchyError::Degenerate(l) => write!(f, "level {l} has zero units or capacity"),
        }
    }
}

impl std::error::Error for HierarchyError {}

/// A multi-level memory hierarchy: `levels[0]` is level 1 (fastest, e.g.
/// per-processor registers), `levels[L-1]` is level `L` (the distributed
/// main memories). The number of processors `P` equals `N_1`.
///
/// Invariants (validated on construction, per Section 3.4):
/// * at least two levels;
/// * `N_1 ≥ N_2 ≥ … ≥ N_L ≥ 1`, with `N_{l+1} | N_l` so every unit has a
///   unique parent;
/// * all `N_l, S_l > 0`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryHierarchy {
    levels: Vec<Level>,
}

impl MemoryHierarchy {
    /// Validates and constructs a hierarchy; `levels[0]` is level 1.
    pub fn new(levels: Vec<Level>) -> Result<Self, HierarchyError> {
        if levels.len() < 2 {
            return Err(HierarchyError::TooFewLevels);
        }
        for (i, l) in levels.iter().enumerate() {
            if l.units == 0 || l.capacity_words == 0 {
                return Err(HierarchyError::Degenerate(i + 1));
            }
        }
        for i in 1..levels.len() {
            if levels[i].units > levels[i - 1].units {
                return Err(HierarchyError::UnitsNotMonotone(i + 1));
            }
            if !levels[i - 1].units.is_multiple_of(levels[i].units) {
                return Err(HierarchyError::UnitsNotDivisible(i));
            }
        }
        Ok(MemoryHierarchy { levels })
    }

    /// The classic two-level Hong–Kung machine: one processor with `s` words
    /// of fast memory and an unbounded (here: `u64::MAX`-word) slow memory.
    pub fn two_level(s: u64) -> Self {
        MemoryHierarchy::new(vec![
            Level::new("fast", 1, s),
            Level::new("slow", 1, u64::MAX),
        ])
        // dmc-lint: allow(s1) -- literal two-level configuration with positive capacities and unit counts; validation cannot fail
        .expect("two-level hierarchy is always valid")
    }

    /// A shared-memory multicore: `p` processors with `s1` words of private
    /// storage each, one shared cache of `s2` words, one main memory.
    pub fn multicore(p: usize, s1: u64, s2: u64) -> Self {
        MemoryHierarchy::new(vec![
            Level::new("registers", p, s1),
            Level::new("shared-cache", 1, s2),
            Level::new("DRAM", 1, u64::MAX),
        ])
        // dmc-lint: allow(s1) -- literal multicore configuration with positive capacities and unit counts; validation cannot fail
        .expect("multicore hierarchy is always valid")
    }

    /// A distributed multi-node multicore machine matching the paper's
    /// Figure 1: `nodes` nodes × `cores` cores; per-core registers `s1`,
    /// per-node shared cache `s2`, per-node main memory `s3` (all in words).
    pub fn cluster(nodes: usize, cores: usize, s1: u64, s2: u64, s3: u64) -> Self {
        MemoryHierarchy::new(vec![
            Level::new("registers", nodes * cores, s1),
            Level::new("L2", nodes, s2),
            Level::new("DRAM", nodes, s3),
        ])
        // dmc-lint: allow(s1) -- literal cluster configuration with positive capacities and unit counts; validation cannot fail
        .expect("cluster hierarchy is always valid")
    }

    /// Number of levels `L`.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Number of processors `P = N_1`.
    pub fn processors(&self) -> usize {
        self.levels[0].units
    }

    /// The level at 1-based index `l` (matching the paper's subscripts).
    pub fn level(&self, l: usize) -> &Level {
        assert!(l >= 1 && l <= self.levels.len(), "level index out of range");
        &self.levels[l - 1]
    }

    /// All levels, fastest first.
    pub fn levels(&self) -> &[Level] {
        &self.levels
    }

    /// `N_l` — units at 1-based level `l`.
    pub fn units(&self, l: usize) -> usize {
        self.level(l).units
    }

    /// `S_l` — per-unit capacity at 1-based level `l`.
    pub fn capacity(&self, l: usize) -> u64 {
        self.level(l).capacity_words
    }

    /// Children of each level-`l` unit: `N_{l-1} / N_l` (1-based, `l ≥ 2`).
    pub fn children_per_unit(&self, l: usize) -> usize {
        assert!(l >= 2, "level 1 has no children");
        self.units(l - 1) / self.units(l)
    }

    /// Processors sharing one level-`l` unit: `P / N_l` (the paper's
    /// `|P^i_l|`).
    pub fn processors_per_unit(&self, l: usize) -> usize {
        self.processors() / self.units(l)
    }

    /// Storage available *below* level `l` to the processors of one
    /// level-`l` unit: `S_{l-1} × N_{l-1} / N_l` words (Section 3.4).
    pub fn child_capacity_per_unit(&self, l: usize) -> u64 {
        assert!(l >= 2);
        self.capacity(l - 1) * (self.children_per_unit(l) as u64)
    }

    /// Aggregate fast storage below level `l` across the whole machine:
    /// `S_{l-1} × N_{l-1}` (the `IO_1(C, S_{l-1} N_{l-1})` capacity of
    /// Theorem 5).
    pub fn aggregate_child_capacity(&self, l: usize) -> u64 {
        assert!(l >= 2);
        self.capacity(l - 1) * self.units(l - 1) as u64
    }

    /// ASCII rendering in the spirit of the paper's Figure 1.
    pub fn render_ascii(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "interconnection network");
        let _ = writeln!(out, "{}", "=".repeat(40));
        for (i, l) in self.levels.iter().enumerate().rev() {
            let lvl = i + 1;
            let cap = if l.capacity_words == u64::MAX {
                "unbounded".to_string()
            } else {
                format!("{} words", l.capacity_words)
            };
            let _ = writeln!(
                out,
                "level {lvl}: {:>3} x [{:^14}] ({cap} each)",
                l.units, l.name
            );
            if i > 0 {
                let fanout = self.levels[i - 1].units / l.units;
                let _ = writeln!(out, "         |  fan-out {fanout}");
            }
        }
        let _ = writeln!(out, "processors: P = {}", self.processors());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_dimensions() {
        let h = MemoryHierarchy::cluster(4, 8, 64, 1 << 20, 1 << 30);
        assert_eq!(h.num_levels(), 3);
        assert_eq!(h.processors(), 32);
        assert_eq!(h.units(1), 32);
        assert_eq!(h.units(2), 4);
        assert_eq!(h.units(3), 4);
        assert_eq!(h.children_per_unit(2), 8);
        assert_eq!(h.children_per_unit(3), 1);
        assert_eq!(h.processors_per_unit(2), 8);
        assert_eq!(h.processors_per_unit(3), 8);
        assert_eq!(h.child_capacity_per_unit(2), 8 * 64);
        assert_eq!(h.aggregate_child_capacity(2), 32 * 64);
    }

    #[test]
    fn two_level_is_hong_kung() {
        let h = MemoryHierarchy::two_level(100);
        assert_eq!(h.num_levels(), 2);
        assert_eq!(h.processors(), 1);
        assert_eq!(h.capacity(1), 100);
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        assert_eq!(
            MemoryHierarchy::new(vec![Level::new("only", 1, 10)]).unwrap_err(),
            HierarchyError::TooFewLevels
        );
        assert_eq!(
            MemoryHierarchy::new(vec![Level::new("r", 2, 10), Level::new("m", 4, 10)]).unwrap_err(),
            HierarchyError::UnitsNotMonotone(2)
        );
        assert_eq!(
            MemoryHierarchy::new(vec![Level::new("r", 6, 10), Level::new("m", 4, 10)]).unwrap_err(),
            HierarchyError::UnitsNotDivisible(1)
        );
        assert_eq!(
            MemoryHierarchy::new(vec![Level::new("r", 0, 10), Level::new("m", 1, 10)]).unwrap_err(),
            HierarchyError::Degenerate(1)
        );
        assert_eq!(
            MemoryHierarchy::new(vec![Level::new("r", 1, 0), Level::new("m", 1, 10)]).unwrap_err(),
            HierarchyError::Degenerate(1)
        );
    }

    #[test]
    fn level_accessor_is_one_based() {
        let h = MemoryHierarchy::multicore(4, 32, 1024);
        assert_eq!(h.level(1).name, "registers");
        assert_eq!(h.level(3).name, "DRAM");
    }

    #[test]
    fn ascii_rendering_mentions_every_level() {
        let h = MemoryHierarchy::cluster(2, 4, 64, 4096, 1 << 20);
        let art = h.render_ascii();
        assert!(art.contains("registers"));
        assert!(art.contains("L2"));
        assert!(art.contains("DRAM"));
        assert!(art.contains("P = 8"));
    }
}
