//! Machine balance parameters (Section 5 of the paper).
//!
//! A machine's *balance* at a memory level is the ratio of peak data
//! movement bandwidth to peak computational throughput, expressed in
//! words/FLOP. An algorithm whose per-FLOP data movement *lower bound*
//! exceeds the balance is unavoidably bandwidth-bound at that level
//! (Equation 7); one whose *upper bound* falls below it is definitely not
//! (Equation 8).

use crate::hierarchy::MemoryHierarchy;
use serde::{Deserialize, Serialize};

/// Physical description of a multi-node, multi-core machine, sufficient to
/// derive the balance parameters the paper's Table 1 reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Machine name as reported in Table 1.
    pub name: String,
    /// Number of nodes `N_nodes`.
    pub nodes: usize,
    /// Cores per node `N_cores`.
    pub cores_per_node: usize,
    /// Peak floating-point rate per core, in GFLOP/s.
    pub gflops_per_core: f64,
    /// Main memory per node, in GB (Table 1, "Mem" column).
    pub memory_gb: f64,
    /// Last-level (shared L2/L3) cache per node, in MB (Table 1 column).
    pub llc_mb: f64,
    /// Aggregate DRAM ↔ LLC bandwidth per node, in GB/s (`B_vert`).
    pub dram_bandwidth_gbs: f64,
    /// Interconnect injection bandwidth per node, in GB/s (`B_horiz`).
    pub network_bandwidth_gbs: f64,
    /// Word size in bytes (8 for the double-precision analyses).
    pub word_bytes: f64,
}

impl MachineSpec {
    /// Peak floating-point rate per node, in GFLOP/s.
    pub fn gflops_per_node(&self) -> f64 {
        self.gflops_per_core * self.cores_per_node as f64
    }

    /// *Vertical* machine balance: DRAM↔LLC bandwidth (words/s) divided by
    /// node peak FLOP rate — the `B^i_l / (|P^i_l| · F)` of Equation 7 for
    /// the DRAM→L2 level. Matches Table 1's "Vertical balance" column.
    pub fn vertical_balance(&self) -> f64 {
        (self.dram_bandwidth_gbs / self.word_bytes) / self.gflops_per_node()
    }

    /// *Horizontal* machine balance: interconnect bandwidth (words/s)
    /// divided by node peak FLOP rate. Matches Table 1's "Horiz. balance".
    pub fn horizontal_balance(&self) -> f64 {
        (self.network_bandwidth_gbs / self.word_bytes) / self.gflops_per_node()
    }

    /// Last-level cache capacity in words (`S_2`; e.g. 4 MWords for the
    /// BG/Q's 32 MB L2, as used in Section 5.4.3).
    pub fn llc_words(&self) -> u64 {
        (self.llc_mb * 1e6 / self.word_bytes) as u64
    }

    /// Main-memory capacity per node in words.
    pub fn memory_words(&self) -> u64 {
        (self.memory_gb * 1e9 / self.word_bytes) as u64
    }

    /// Total core count `P`.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.cores_per_node
    }

    /// Derives the three-level [`MemoryHierarchy`] (registers → shared LLC →
    /// per-node DRAM) this spec induces, with `s1` words of level-1 storage
    /// per core.
    pub fn to_hierarchy(&self, s1: u64) -> MemoryHierarchy {
        MemoryHierarchy::cluster(
            self.nodes,
            self.cores_per_node,
            s1,
            self.llc_words(),
            self.memory_words(),
        )
    }

    /// One formatted row of the paper's Table 1:
    /// `name, N_nodes, Mem (GB), LLC (MB), vertical, horizontal`.
    pub fn table1_row(&self) -> String {
        format!(
            "{:<12} {:>6} {:>8.0} {:>8.0} {:>10.4} {:>10.4}",
            self.name,
            self.nodes,
            self.memory_gb,
            self.llc_mb,
            self.vertical_balance(),
            self.horizontal_balance()
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::specs;

    #[test]
    fn bgq_balances_match_table1() {
        let m = specs::ibm_bgq();
        // Table 1: vertical 0.052, horizontal 0.049.
        assert!(
            (m.vertical_balance() - 0.052).abs() < 0.001,
            "{}",
            m.vertical_balance()
        );
        assert!(
            (m.horizontal_balance() - 0.049).abs() < 0.001,
            "{}",
            m.horizontal_balance()
        );
        assert_eq!(m.nodes, 2048);
        assert!((m.memory_gb - 16.0).abs() < 1e-9);
        assert!((m.llc_mb - 32.0).abs() < 1e-9);
    }

    #[test]
    fn xt5_balances_match_table1() {
        let m = specs::cray_xt5();
        // Table 1: vertical 0.0256, horizontal 0.058.
        assert!(
            (m.vertical_balance() - 0.0256).abs() < 0.0005,
            "{}",
            m.vertical_balance()
        );
        assert!(
            (m.horizontal_balance() - 0.058).abs() < 0.001,
            "{}",
            m.horizontal_balance()
        );
        assert_eq!(m.nodes, 9408);
        assert!((m.llc_mb - 6.0).abs() < 1e-9);
    }

    #[test]
    fn bgq_llc_is_4_mwords() {
        // Section 5.4.3 substitutes S2 = 4 MWords for the BG/Q 32 MB L2.
        let m = specs::ibm_bgq();
        assert_eq!(m.llc_words(), 4_000_000);
    }

    #[test]
    fn hierarchy_derivation() {
        let m = specs::ibm_bgq();
        let h = m.to_hierarchy(64);
        assert_eq!(h.processors(), m.total_cores());
        assert_eq!(h.units(2), m.nodes);
        assert_eq!(h.capacity(2), m.llc_words());
    }

    #[test]
    fn table_row_formats() {
        let row = specs::ibm_bgq().table1_row();
        assert!(row.contains("IBM BG/Q"));
        assert!(row.contains("2048"));
    }
}
