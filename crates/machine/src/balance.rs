//! Machine balance parameters (Section 5 of the paper).
//!
//! A machine's *balance* at a memory level is the ratio of peak data
//! movement bandwidth to peak computational throughput, expressed in
//! words/FLOP. An algorithm whose per-FLOP data movement *lower bound*
//! exceeds the balance is unavoidably bandwidth-bound at that level
//! (Equation 7); one whose *upper bound* falls below it is definitely not
//! (Equation 8).

use crate::hierarchy::MemoryHierarchy;
use serde::{Deserialize, Serialize};

/// Physical description of a multi-node, multi-core machine, sufficient to
/// derive the balance parameters the paper's Table 1 reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Machine name as reported in Table 1.
    pub name: String,
    /// Number of nodes `N_nodes`.
    pub nodes: usize,
    /// Cores per node `N_cores`.
    pub cores_per_node: usize,
    /// Peak floating-point rate per core, in GFLOP/s.
    pub gflops_per_core: f64,
    /// Main memory per node, in GB (Table 1, "Mem" column).
    pub memory_gb: f64,
    /// Last-level (shared L2/L3) cache per node, in MB (Table 1 column).
    pub llc_mb: f64,
    /// Aggregate DRAM ↔ LLC bandwidth per node, in GB/s (`B_vert`).
    pub dram_bandwidth_gbs: f64,
    /// Interconnect injection bandwidth per node, in GB/s (`B_horiz`).
    pub network_bandwidth_gbs: f64,
    /// Word size in bytes (8 for the double-precision analyses).
    pub word_bytes: f64,
}

impl MachineSpec {
    /// Peak floating-point rate per node, in GFLOP/s.
    pub fn gflops_per_node(&self) -> f64 {
        self.gflops_per_core * self.cores_per_node as f64
    }

    /// *Vertical* machine balance: DRAM↔LLC bandwidth (words/s) divided by
    /// node peak FLOP rate — the `B^i_l / (|P^i_l| · F)` of Equation 7 for
    /// the DRAM→L2 level. Matches Table 1's "Vertical balance" column.
    pub fn vertical_balance(&self) -> f64 {
        (self.dram_bandwidth_gbs / self.word_bytes) / self.gflops_per_node()
    }

    /// *Horizontal* machine balance: interconnect bandwidth (words/s)
    /// divided by node peak FLOP rate. Matches Table 1's "Horiz. balance".
    pub fn horizontal_balance(&self) -> f64 {
        (self.network_bandwidth_gbs / self.word_bytes) / self.gflops_per_node()
    }

    /// Last-level cache capacity in words (`S_2`; e.g. 4 MWords for the
    /// BG/Q's 32 MB L2, as used in Section 5.4.3).
    pub fn llc_words(&self) -> u64 {
        (self.llc_mb * 1e6 / self.word_bytes) as u64
    }

    /// Main-memory capacity per node in words.
    pub fn memory_words(&self) -> u64 {
        (self.memory_gb * 1e9 / self.word_bytes) as u64
    }

    /// Total core count `P`.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.cores_per_node
    }

    /// Derives the three-level [`MemoryHierarchy`] (registers → shared LLC →
    /// per-node DRAM) this spec induces, with `s1` words of level-1 storage
    /// per core.
    pub fn to_hierarchy(&self, s1: u64) -> MemoryHierarchy {
        MemoryHierarchy::cluster(
            self.nodes,
            self.cores_per_node,
            s1,
            self.llc_words(),
            self.memory_words(),
        )
    }

    /// The *single-node* hierarchy this spec induces, in words — the
    /// machine the hierarchy simulator runs a kernel against: level 1 is
    /// `cores_per_node` private register files of `s1` words each, level
    /// 2 the shared last-level cache ([`MachineSpec::llc_words`], the
    /// `llc_mb` column through `word_bytes`), level 3 the node's DRAM
    /// ([`MachineSpec::memory_words`]), which the simulator treats as
    /// the backing store.
    ///
    /// ```
    /// let m = dmc_machine::specs::ibm_bgq();
    /// let h = m.node_hierarchy(64);
    /// assert_eq!(h.num_levels(), 3);
    /// assert_eq!(h.processors(), 16);
    /// assert_eq!(h.capacity(2), 4_000_000); // 32 MB L2 at 8 B/word
    /// ```
    pub fn node_hierarchy(&self, s1: u64) -> MemoryHierarchy {
        MemoryHierarchy::new(vec![
            crate::hierarchy::Level::new("registers", self.cores_per_node.max(1), s1),
            crate::hierarchy::Level::new("LLC", 1, self.llc_words().max(1)),
            crate::hierarchy::Level::new("DRAM", 1, self.memory_words().max(1)),
        ])
        // dmc-lint: allow(s1) -- units are (cores, 1, 1) with capacities clamped positive; the hierarchy invariants hold by construction
        .expect("node hierarchy is always valid")
    }

    /// The degenerate *one-cache-level* hierarchy of this spec: a single
    /// fast memory of `s` words over the node's DRAM. Running the
    /// hierarchy simulator on it must reproduce the single-cache
    /// `Simulation::run` trace exactly — the differential oracle the
    /// test suite pins.
    pub fn single_level_hierarchy(&self, s: u64) -> MemoryHierarchy {
        MemoryHierarchy::new(vec![
            crate::hierarchy::Level::new("cache", 1, s.max(1)),
            crate::hierarchy::Level::new("DRAM", 1, self.memory_words().max(1)),
        ])
        // dmc-lint: allow(s1) -- two levels of one unit each with clamped-positive capacities; validation cannot fail
        .expect("single-level hierarchy is always valid")
    }

    /// Parses a machine spec file: one `key = value` pair per line, `#`
    /// comments and blank lines ignored. Every field of [`MachineSpec`]
    /// is required (`name`, `nodes`, `cores_per_node`, `gflops_per_core`,
    /// `memory_gb`, `llc_mb`, `dram_bandwidth_gbs`,
    /// `network_bandwidth_gbs`, `word_bytes`); unknown or repeated keys
    /// are loud errors, so a typo cannot silently fall back to a default.
    ///
    /// ```
    /// let text = "name = Toy\nnodes = 4\ncores_per_node = 2\n\
    ///             gflops_per_core = 1.0\nmemory_gb = 1.0\nllc_mb = 1.0\n\
    ///             dram_bandwidth_gbs = 10.0\nnetwork_bandwidth_gbs = 5.0\n\
    ///             word_bytes = 8.0\n";
    /// let m = dmc_machine::MachineSpec::parse_spec_text(text).unwrap();
    /// assert_eq!(m.total_cores(), 8);
    /// ```
    pub fn parse_spec_text(text: &str) -> Result<MachineSpec, String> {
        const KEYS: [&str; 9] = [
            "name",
            "nodes",
            "cores_per_node",
            "gflops_per_core",
            "memory_gb",
            "llc_mb",
            "dram_bandwidth_gbs",
            "network_bandwidth_gbs",
            "word_bytes",
        ];
        let mut seen: Vec<(&str, String)> = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "machine spec line {}: expected 'key = value', got {line:?}",
                    lineno + 1
                ));
            };
            let (key, value) = (key.trim(), value.trim());
            let Some(&canon) = KEYS.iter().find(|&&k| k == key) else {
                return Err(format!(
                    "machine spec line {}: unknown key {key:?} (valid keys: {})",
                    lineno + 1,
                    KEYS.join(", ")
                ));
            };
            if seen.iter().any(|(k, _)| *k == canon) {
                return Err(format!(
                    "machine spec line {}: key {key:?} given twice",
                    lineno + 1
                ));
            }
            seen.push((canon, value.to_string()));
        }
        let get = |key: &str| -> Result<String, String> {
            seen.iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| v.clone())
                .ok_or_else(|| format!("machine spec is missing required key {key:?}"))
        };
        let num = |key: &str| -> Result<f64, String> {
            let v = get(key)?;
            v.parse::<f64>()
                .ok()
                .filter(|x| x.is_finite() && *x > 0.0)
                .ok_or_else(|| {
                    format!("machine spec key {key:?} needs a positive number, got {v:?}")
                })
        };
        let uint = |key: &str| -> Result<usize, String> {
            let v = get(key)?;
            v.parse::<usize>().ok().filter(|&x| x >= 1).ok_or_else(|| {
                format!("machine spec key {key:?} needs a positive integer, got {v:?}")
            })
        };
        Ok(MachineSpec {
            name: get("name")?,
            nodes: uint("nodes")?,
            cores_per_node: uint("cores_per_node")?,
            gflops_per_core: num("gflops_per_core")?,
            memory_gb: num("memory_gb")?,
            llc_mb: num("llc_mb")?,
            dram_bandwidth_gbs: num("dram_bandwidth_gbs")?,
            network_bandwidth_gbs: num("network_bandwidth_gbs")?,
            word_bytes: num("word_bytes")?,
        })
    }

    /// One formatted row of the paper's Table 1:
    /// `name, N_nodes, Mem (GB), LLC (MB), vertical, horizontal`.
    pub fn table1_row(&self) -> String {
        format!(
            "{:<12} {:>6} {:>8.0} {:>8.0} {:>10.4} {:>10.4}",
            self.name,
            self.nodes,
            self.memory_gb,
            self.llc_mb,
            self.vertical_balance(),
            self.horizontal_balance()
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::specs;

    #[test]
    fn bgq_balances_match_table1() {
        let m = specs::ibm_bgq();
        // Table 1: vertical 0.052, horizontal 0.049.
        assert!(
            (m.vertical_balance() - 0.052).abs() < 0.001,
            "{}",
            m.vertical_balance()
        );
        assert!(
            (m.horizontal_balance() - 0.049).abs() < 0.001,
            "{}",
            m.horizontal_balance()
        );
        assert_eq!(m.nodes, 2048);
        assert!((m.memory_gb - 16.0).abs() < 1e-9);
        assert!((m.llc_mb - 32.0).abs() < 1e-9);
    }

    #[test]
    fn xt5_balances_match_table1() {
        let m = specs::cray_xt5();
        // Table 1: vertical 0.0256, horizontal 0.058.
        assert!(
            (m.vertical_balance() - 0.0256).abs() < 0.0005,
            "{}",
            m.vertical_balance()
        );
        assert!(
            (m.horizontal_balance() - 0.058).abs() < 0.001,
            "{}",
            m.horizontal_balance()
        );
        assert_eq!(m.nodes, 9408);
        assert!((m.llc_mb - 6.0).abs() < 1e-9);
    }

    #[test]
    fn bgq_llc_is_4_mwords() {
        // Section 5.4.3 substitutes S2 = 4 MWords for the BG/Q 32 MB L2.
        let m = specs::ibm_bgq();
        assert_eq!(m.llc_words(), 4_000_000);
    }

    #[test]
    fn hierarchy_derivation() {
        let m = specs::ibm_bgq();
        let h = m.to_hierarchy(64);
        assert_eq!(h.processors(), m.total_cores());
        assert_eq!(h.units(2), m.nodes);
        assert_eq!(h.capacity(2), m.llc_words());
    }

    #[test]
    fn table_row_formats() {
        let row = specs::ibm_bgq().table1_row();
        assert!(row.contains("IBM BG/Q"));
        assert!(row.contains("2048"));
    }
}
