//! # dmc-machine — parallel machine models
//!
//! The paper (Section 3.4, Figure 1) models a scalable parallel computer as
//! `N_L` nodes with local main memory connected by an interconnect, each
//! node holding `P / N_L` cores that share a multi-level cache hierarchy:
//! level 1 is private registers/L1 (capacity `S_1` per processor), levels
//! `1 < l < L` have `N_l` caches of `S_l` words each, and a level-`l` cache
//! has a unique parent at level `l+1`.
//!
//! This crate provides:
//!
//! * [`hierarchy::MemoryHierarchy`] — the `(N_l, S_l)` level structure the
//!   Parallel-RBW pebble game of `dmc-core` plays on, including an ASCII
//!   rendering of the paper's Figure 1;
//! * [`balance`] — *machine balance* parameters: the ratio of peak memory
//!   (or interconnect) bandwidth to peak floating-point throughput, in
//!   words/FLOP (Section 5);
//! * [`specs`] — the machine database, including the two systems of the
//!   paper's Table 1 (IBM BG/Q and Cray XT5) reconstructed from their
//!   physical parameters;
//! * [`constraint`] — the bandwidth-bound decision rules of Equations 7–10.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod balance;
pub mod constraint;
pub mod hierarchy;
pub mod specs;

pub use balance::MachineSpec;
pub use constraint::{BandwidthVerdict, Constraint};
pub use hierarchy::{Level, MemoryHierarchy};
