//! Property-based tests for the CDAG substrate.
//!
//! Random layered DAGs exercise the structural invariants: CSR consistency,
//! topological validity, reachability agreement, min-cut soundness
//! (max-flow value is achieved by a separating set and matches Menger's
//! bound from brute force on small instances).

use dmc_cdag::bitset::BitSet;
use dmc_cdag::builder::CdagBuilder;
use dmc_cdag::cut::{peak_schedule_wavefront, schedule_wavefront_sizes, ConvexCut};
use dmc_cdag::engine::WavefrontEngine;
use dmc_cdag::flow::{
    is_separating_vertex_set, vertex_min_cut, FlowNetwork, VertexCutOptions, WarmCut,
};
use dmc_cdag::graph::{Cdag, VertexId};
use dmc_cdag::reach::{all_pairs_reachability, ancestors_into, descendants_into, reaches_into};
use dmc_cdag::topo::{dfs_topological_order, is_valid_topological_order, topological_order};
use proptest::prelude::*;

/// Strategy: a short label drawn from a palette that is heavy on the text
/// format's metacharacters — `#` (comment marker), `"` (quote), `\`
/// (escape) — plus spaces and ordinary letters.
fn arb_label() -> impl Strategy<Value = String> {
    const PALETTE: [char; 10] = ['#', '"', '\\', ' ', 'a', '#', '"', '\\', 'z', '!'];
    (0usize..8).prop_flat_map(|len| {
        proptest::collection::vec(0usize..PALETTE.len(), len)
            .prop_map(|ix| ix.into_iter().map(|i| PALETTE[i]).collect())
    })
}

/// Strategy: a random DAG as an edge probability matrix over `n` vertices,
/// with edges only from lower to higher index (guaranteeing acyclicity).
fn arb_dag(max_n: usize) -> impl Strategy<Value = Cdag> {
    (2..max_n)
        .prop_flat_map(|n| {
            let pairs: Vec<(usize, usize)> = (0..n)
                .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
                .collect();
            let m = pairs.len();
            (
                Just(n),
                Just(pairs),
                proptest::collection::vec(proptest::bool::weighted(0.3), m),
            )
        })
        .prop_map(|(n, pairs, mask)| {
            let mut b = CdagBuilder::new();
            let ids: Vec<VertexId> = (0..n).map(|i| b.add_vertex(format!("v{i}"))).collect();
            for ((i, j), keep) in pairs.into_iter().zip(mask) {
                if keep {
                    b.add_edge(ids[i], ids[j]);
                }
            }
            let g0 = b.clone().build().unwrap();
            // Tag sources as inputs, sinks as outputs (Hong–Kung form).
            for v in g0.vertices() {
                if g0.in_degree(v) == 0 {
                    b.tag_input(v);
                }
                if g0.out_degree(v) == 0 {
                    b.tag_output(v);
                }
            }
            b.build().unwrap()
        })
}

/// Strategy: a random *layered* DAG — `layers × width` vertices, edges only
/// between adjacent layers, each kept independently. This is the shape the
/// flow core is tuned for (wavefronts sweep layer by layer), so it is where
/// the unit-capacity solver and the warm-started network earn their keep.
fn arb_layered_dag(max_layers: usize, max_width: usize) -> impl Strategy<Value = Cdag> {
    (2..max_layers, 1..max_width)
        .prop_flat_map(|(layers, width)| {
            let m = (layers - 1) * width * width;
            (
                Just(layers),
                Just(width),
                proptest::collection::vec(proptest::bool::weighted(0.4), m),
            )
        })
        .prop_map(|(layers, width, mask)| {
            let mut b = CdagBuilder::new();
            let ids: Vec<VertexId> = (0..layers * width)
                .map(|i| b.add_vertex(format!("v{i}")))
                .collect();
            let mut k = 0;
            for l in 0..layers - 1 {
                for i in 0..width {
                    for j in 0..width {
                        if mask[k] {
                            b.add_edge(ids[l * width + i], ids[(l + 1) * width + j]);
                        }
                        k += 1;
                    }
                }
            }
            let g0 = b.clone().build().unwrap();
            for v in g0.vertices() {
                if g0.in_degree(v) == 0 {
                    b.tag_input(v);
                }
                if g0.out_degree(v) == 0 {
                    b.tag_output(v);
                }
            }
            b.build().unwrap()
        })
}

/// Effectively-infinite capacity, mirroring the library's split networks.
const INF: u32 = u32::MAX / 4;

/// Builds the vertex-split wavefront network for one source/sink pair into
/// `net` (sources cuttable, sinks not) and returns the max flow, solved by
/// the strategy selected by `unit`.
fn split_network_flow(
    g: &Cdag,
    sources: &BitSet,
    sinks: &BitSet,
    net: &mut FlowNetwork,
    unit: bool,
) -> u64 {
    let n = g.num_vertices();
    let (s, t) = (2 * n, 2 * n + 1);
    net.reset(2 * n + 2);
    net.set_unit_capacity(unit);
    for v in 0..n {
        net.add_arc(2 * v, 2 * v + 1, if sinks.contains(v) { INF } else { 1 });
    }
    for (u, v) in g.edges() {
        net.add_arc(2 * u.index() + 1, 2 * v.index(), INF);
    }
    for v in sources.iter() {
        net.add_arc(s, 2 * v, INF);
    }
    for v in sinks.iter() {
        net.add_arc(2 * v + 1, t, INF);
    }
    net.max_flow(s, t)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_forward_reverse_consistent(g in arb_dag(24)) {
        for (u, v) in g.edges() {
            prop_assert!(g.predecessors(v).contains(&u));
        }
        let fwd: usize = g.vertices().map(|v| g.out_degree(v)).sum();
        let rev: usize = g.vertices().map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(fwd, g.num_edges());
        prop_assert_eq!(rev, g.num_edges());
    }

    #[test]
    fn topological_orders_are_valid(g in arb_dag(24)) {
        prop_assert!(is_valid_topological_order(&g, &topological_order(&g)));
        prop_assert!(is_valid_topological_order(&g, &dfs_topological_order(&g)));
    }

    #[test]
    fn all_pairs_matches_single_source(g in arb_dag(16)) {
        let ap = all_pairs_reachability(&g);
        let mut visited = BitSet::new(g.num_vertices());
        let mut stack = Vec::new();
        for u in g.vertices() {
            for v in g.vertices() {
                prop_assert_eq!(
                    ap[u.index()].contains(v.index()),
                    reaches_into(&g, u, v, &mut visited, &mut stack)
                );
            }
        }
    }

    #[test]
    fn prefix_cuts_are_convex_and_wavefront_matches_incremental(g in arb_dag(20)) {
        let order = topological_order(&g);
        let sizes = schedule_wavefront_sizes(&g, &order);
        for k in 1..=order.len() {
            let cut = ConvexCut::from_prefix(&g, &order[..k]);
            prop_assert!(cut.is_valid(&g));
            let w = cut.wavefront(&g);
            let x = order[k - 1];
            // Incremental size = |boundary ∪ {x}|.
            let expected = if w.vertices.contains(&x) { w.len() } else { w.len() + 1 };
            prop_assert_eq!(sizes[k - 1], expected);
        }
    }

    #[test]
    fn min_cut_is_separating_and_minimal_vs_bruteforce(g in arb_dag(10)) {
        let n = g.num_vertices();
        let sources: BitSet = g.inputs().clone();
        let sinks: BitSet = g.outputs().clone();
        prop_assume!(!sources.is_empty() && !sinks.is_empty());
        prop_assume!(sources.is_disjoint(&sinks));
        let opts = VertexCutOptions { sources_cuttable: true, sinks_cuttable: false };
        if let Some(cut) = vertex_min_cut(&g, &sources, &sinks, opts) {
            prop_assert!(is_separating_vertex_set(&g, &sources, &sinks, &cut.vertices));
            prop_assert_eq!(cut.size, cut.vertices.len());
            // Brute force over all subsets of cuttable vertices (n <= 10).
            let cuttable: Vec<usize> = (0..n).filter(|&v| !sinks.contains(v)).collect();
            let mut best = usize::MAX;
            for mask in 0u32..(1 << cuttable.len().min(16)) {
                let subset: Vec<VertexId> = cuttable.iter().enumerate()
                    .filter(|(b, _)| mask & (1 << b) != 0)
                    .map(|(_, &v)| VertexId(v as u32))
                    .collect();
                if subset.len() >= best { continue; }
                if is_separating_vertex_set(&g, &sources, &sinks, &subset) {
                    best = subset.len();
                }
            }
            prop_assert_eq!(cut.size, best, "flow cut must be minimum");
        }
    }

    /// The text format round-trips labels containing its own
    /// metacharacters: `#` must not be taken for a comment inside quotes,
    /// and `"`/`\` must survive the escape cycle.
    #[test]
    fn textio_round_trips_metacharacter_labels(
        labels in proptest::collection::vec(arb_label(), 4)
    ) {
        let mut b = CdagBuilder::new();
        let mut prev = None;
        for l in &labels {
            let v = match prev {
                None => b.add_vertex(l.clone()),
                Some(p) => {
                    let v = b.add_vertex(l.clone());
                    b.add_edge(p, v);
                    v
                }
            };
            prev = Some(v);
        }
        b.tag_input(VertexId(0));
        b.tag_output(prev.unwrap());
        let g = b.build().unwrap();
        let text = dmc_cdag::textio::to_text(&g);
        let g2 = dmc_cdag::textio::from_text(&text).unwrap();
        prop_assert_eq!(g.num_vertices(), g2.num_vertices());
        prop_assert_eq!(g.edges().collect::<Vec<_>>(), g2.edges().collect::<Vec<_>>());
        for v in g.vertices() {
            prop_assert_eq!(g.label(v), g2.label(v), "label of {}", v);
        }
    }

    /// The Even–Tarjan phase-saturating unit-capacity solver and the
    /// general path-at-a-time Dinic compute the same max flow on every
    /// wavefront split network (same graph, same source/sink pair).
    #[test]
    fn unit_capacity_solver_matches_general_dinic(g in arb_layered_dag(6, 5)) {
        let n = g.num_vertices();
        let mut net = FlowNetwork::new(0);
        let mut sources = BitSet::new(n);
        let mut sinks = BitSet::new(n);
        let mut stack = Vec::new();
        for x in topological_order(&g) {
            ancestors_into(&g, x, &mut sources, &mut stack);
            sources.insert(x.index());
            descendants_into(&g, x, &mut sinks, &mut stack);
            if sinks.is_empty() {
                continue;
            }
            let general = split_network_flow(&g, &sources, &sinks, &mut net, false);
            let unit = split_network_flow(&g, &sources, &sinks, &mut net, true);
            prop_assert_eq!(general, unit, "anchor {}", x);
        }
    }

    /// The warm-started, frontier-restricted solver agrees with a fresh
    /// from-scratch solve on every anchor of a sweep: identical cut value,
    /// identical witness vertices, and the witness actually separates.
    #[test]
    fn warm_cut_matches_fresh_over_random_sweep(g in arb_layered_dag(6, 5)) {
        let n = g.num_vertices();
        let mut warm = WarmCut::new(&g);
        let mut sources = BitSet::new(n);
        let mut sinks = BitSet::new(n);
        let mut stack = Vec::new();
        for x in topological_order(&g) {
            ancestors_into(&g, x, &mut sources, &mut stack);
            sources.insert(x.index());
            descendants_into(&g, x, &mut sinks, &mut stack);
            if sinks.is_empty() {
                continue;
            }
            let got = warm.min_cut(&g, &sources, &sinks);
            let want = vertex_min_cut(&g, &sources, &sinks, VertexCutOptions::default());
            match (&got, &want) {
                (Some(a), Some(b)) => {
                    prop_assert_eq!(a.size, b.size, "anchor {}", x);
                    prop_assert_eq!(&a.vertices, &b.vertices, "anchor {}", x);
                    prop_assert!(
                        is_separating_vertex_set(&g, &sources, &sinks, &a.vertices),
                        "anchor {}: witness does not separate", x
                    );
                }
                (None, None) => {}
                _ => prop_assert!(false, "anchor {}: bounded/unbounded disagreement", x),
            }
        }
    }

    /// The parallel engine returns byte-identical results at 1, 2, and 4
    /// threads: same winning size, same anchor, same witness cut, rendered
    /// identically.
    #[test]
    fn engine_run_identical_across_threads(g in arb_layered_dag(6, 5)) {
        let anchors: Vec<VertexId> = g.vertices().collect();
        let base = WavefrontEngine::new(&g).with_threads(1).run(&anchors);
        let base_text = format!("{:?}", base.best);
        for threads in [2, 4] {
            let run = WavefrontEngine::new(&g).with_threads(threads).run(&anchors);
            prop_assert_eq!(format!("{:?}", run.best), base_text.clone(), "{} threads", threads);
        }
    }

    /// The content hash is a function of the canonical render alone:
    /// parsing a graph's own text form back and hashing it reproduces the
    /// hash exactly (`hash(from_text(to_text(g))) == hash(g)`).
    #[test]
    fn content_hash_survives_text_round_trip(g in arb_dag(20)) {
        let text = dmc_cdag::textio::to_text(&g);
        let g2 = dmc_cdag::textio::from_text(&text).unwrap();
        prop_assert_eq!(g.content_hash(), g2.content_hash());
        // And the hash really is FNV-1a of the canonical render.
        prop_assert_eq!(g.content_hash(), dmc_cdag::hash::fnv1a_64(text.as_bytes()));
    }

    #[test]
    fn peak_wavefront_at_least_max_indegree_frontier(g in arb_dag(20)) {
        // Any schedule must at some point hold all predecessors of the
        // max-in-degree vertex plus possibly itself: peak >= max in-degree.
        let order = topological_order(&g);
        let peak = peak_schedule_wavefront(&g, &order);
        let max_in = g.vertices().map(|v| g.in_degree(v)).max().unwrap_or(0);
        // Just before the max-in-degree vertex fires, all its predecessors
        // are live; and after the very first fire the wavefront is >= 1.
        prop_assert!(peak >= max_in.max(1));
    }
}

/// Two builders fed the same vertex set but the edge list in a different
/// order (with dedup enabled, which sorts the edge list at build time)
/// produce the same canonical render and therefore the same content
/// hash; a structurally different graph hashes differently.
#[test]
fn content_hash_ignores_edge_insertion_order() {
    let build = |edge_order: &[(u32, u32)]| {
        let mut b = CdagBuilder::new();
        let ids: Vec<VertexId> = (0..4).map(|i| b.add_vertex(format!("v{i}"))).collect();
        b.dedup_edges(true);
        for &(u, v) in edge_order {
            b.add_edge(ids[u as usize], ids[v as usize]);
        }
        b.tag_input(ids[0]);
        b.tag_output(ids[3]);
        b.build().unwrap()
    };
    // The same diamond, edges declared forward and backward.
    let a = build(&[(0, 1), (0, 2), (1, 3), (2, 3)]);
    let b = build(&[(2, 3), (1, 3), (0, 2), (0, 1)]);
    assert_eq!(
        dmc_cdag::textio::to_text(&a),
        dmc_cdag::textio::to_text(&b),
        "canonical renders must agree"
    );
    assert_eq!(a.content_hash(), b.content_hash());
    // A different edge set is a different hash.
    let c = build(&[(0, 1), (1, 3), (0, 2), (2, 3), (0, 3)]);
    assert_ne!(a.content_hash(), c.content_hash());
}

/// Comments and blank lines in an uploaded text form never reach the
/// hash: the render is regenerated from the parsed structure.
#[test]
fn content_hash_is_comment_and_whitespace_invariant() {
    let g = {
        let mut b = CdagBuilder::new();
        let x = b.add_input("x");
        let y = b.add_vertex("y");
        b.add_edge(x, y);
        b.tag_output(y);
        b.build().unwrap()
    };
    let plain = dmc_cdag::textio::to_text(&g);
    let noisy = format!("# uploaded by a client\n\n{}\n# trailing note\n", plain);
    let parsed = dmc_cdag::textio::from_text(&noisy).unwrap();
    assert_eq!(parsed.content_hash(), g.content_hash());
}
