//! Incremental construction of [`Cdag`]s.

use crate::bitset::BitSet;
use crate::graph::{Cdag, VertexId};

/// Errors reported by [`CdagBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The edge set contains a directed cycle; the offending vertex is one
    /// that remained with nonzero in-degree after Kahn's algorithm.
    Cycle(VertexId),
    /// An edge endpoint referenced a vertex id that was never added.
    DanglingEdge(VertexId, VertexId),
    /// A self-loop `(v, v)` was added.
    SelfLoop(VertexId),
    /// A vertex was tagged as input but has at least one predecessor.
    InputWithPredecessor(VertexId),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Cycle(v) => write!(f, "edge set contains a cycle through {v}"),
            BuildError::DanglingEdge(u, v) => {
                write!(f, "edge ({u}, {v}) references unknown vertex")
            }
            BuildError::SelfLoop(v) => write!(f, "self-loop on {v}"),
            BuildError::InputWithPredecessor(v) => {
                write!(f, "vertex {v} tagged as input but has predecessors")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Builder accumulating vertices, edges and input/output tags, validated and
/// frozen into a [`Cdag`] by [`CdagBuilder::build`].
///
/// ```
/// use dmc_cdag::CdagBuilder;
///
/// let mut b = CdagBuilder::new();
/// let x = b.add_input("x");
/// let y = b.add_input("y");
/// let s = b.add_op("x+y", &[x, y]);
/// b.tag_output(s);
/// let g = b.build().unwrap();
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.num_edges(), 2);
/// ```
#[derive(Default, Clone)]
pub struct CdagBuilder {
    labels: Vec<String>,
    edges: Vec<(VertexId, VertexId)>,
    input_tags: Vec<VertexId>,
    output_tags: Vec<VertexId>,
    dedup_edges: bool,
}

impl CdagBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty builder with vertex/edge capacity hints.
    pub fn with_capacity(vertices: usize, edges: usize) -> Self {
        CdagBuilder {
            labels: Vec::with_capacity(vertices),
            edges: Vec::with_capacity(edges),
            input_tags: Vec::new(),
            output_tags: Vec::new(),
            dedup_edges: false,
        }
    }

    /// When enabled, parallel duplicate edges are collapsed at `build` time.
    /// Kernel generators that emit one edge per scalar *use* (e.g. a value
    /// consumed twice by one op) turn this on.
    pub fn dedup_edges(&mut self, yes: bool) -> &mut Self {
        self.dedup_edges = yes;
        self
    }

    /// Number of vertices added so far.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when no vertex has been added.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Adds an untagged vertex with a label; returns its id.
    pub fn add_vertex(&mut self, label: impl Into<String>) -> VertexId {
        let id = VertexId(self.labels.len() as u32);
        self.labels.push(label.into());
        id
    }

    /// Bulk-adds `count` untagged, *unlabeled* vertices and returns the
    /// id of the first one (ids are consecutive) — the streaming path
    /// for generators emitting 10⁷–10⁸-vertex graphs, where one heap
    /// `String` per vertex would dominate both time and memory. Empty
    /// labels never allocate; [`Cdag::label`] renders them as `""`.
    pub fn add_vertices(&mut self, count: usize) -> VertexId {
        let id = VertexId(self.labels.len() as u32);
        self.labels.resize(self.labels.len() + count, String::new());
        id
    }

    /// Reserves capacity for at least `additional` more edges — pairs
    /// with [`CdagBuilder::add_vertices`] so large streamed builds do
    /// their edge allocation once instead of doubling through it.
    pub fn reserve_edges(&mut self, additional: usize) {
        self.edges.reserve(additional);
    }

    /// Adds a vertex tagged as an input.
    pub fn add_input(&mut self, label: impl Into<String>) -> VertexId {
        let id = self.add_vertex(label);
        self.input_tags.push(id);
        id
    }

    /// Adds a computational vertex with edges from every predecessor.
    pub fn add_op(&mut self, label: impl Into<String>, preds: &[VertexId]) -> VertexId {
        let id = self.add_vertex(label);
        for &p in preds {
            self.edges.push((p, id));
        }
        id
    }

    /// Adds the edge `(u, v)`.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        self.edges.push((u, v));
    }

    /// Tags `v` as an input (it must remain predecessor-free at build time).
    pub fn tag_input(&mut self, v: VertexId) {
        self.input_tags.push(v);
    }

    /// Tags `v` as an output.
    pub fn tag_output(&mut self, v: VertexId) {
        self.output_tags.push(v);
    }

    /// Validates and freezes the accumulated graph.
    ///
    /// Checks performed:
    /// * every edge endpoint exists ([`BuildError::DanglingEdge`]),
    /// * no self-loops ([`BuildError::SelfLoop`]),
    /// * the edge set is acyclic ([`BuildError::Cycle`]),
    /// * inputs are sources ([`BuildError::InputWithPredecessor`]).
    pub fn build(mut self) -> Result<Cdag, BuildError> {
        let n = self.labels.len() as u32;
        for &(u, v) in &self.edges {
            if u.0 >= n || v.0 >= n {
                return Err(BuildError::DanglingEdge(u, v));
            }
            if u == v {
                return Err(BuildError::SelfLoop(u));
            }
        }
        if self.dedup_edges {
            self.edges.sort_unstable();
            self.edges.dedup();
        }

        // CSR for forward adjacency via counting sort on source.
        let nn = n as usize;
        let mut fwd_off = vec![0u32; nn + 1];
        let mut rev_off = vec![0u32; nn + 1];
        for &(u, v) in &self.edges {
            fwd_off[u.index() + 1] += 1;
            rev_off[v.index() + 1] += 1;
        }
        for i in 0..nn {
            fwd_off[i + 1] += fwd_off[i];
            rev_off[i + 1] += rev_off[i];
        }
        let m = self.edges.len();
        let mut fwd_adj = vec![VertexId(0); m];
        let mut rev_adj = vec![VertexId(0); m];
        let mut fwd_cursor = fwd_off.clone();
        let mut rev_cursor = rev_off.clone();
        for &(u, v) in &self.edges {
            fwd_adj[fwd_cursor[u.index()] as usize] = v;
            fwd_cursor[u.index()] += 1;
            rev_adj[rev_cursor[v.index()] as usize] = u;
            rev_cursor[v.index()] += 1;
        }

        // Kahn's algorithm for cycle detection.
        let mut indeg: Vec<u32> = (0..nn).map(|i| rev_off[i + 1] - rev_off[i]).collect();
        let mut queue: Vec<u32> = (0..n).filter(|&i| indeg[i as usize] == 0).collect();
        let mut seen = 0usize;
        while let Some(u) = queue.pop() {
            seen += 1;
            let (s, e) = (
                fwd_off[u as usize] as usize,
                fwd_off[u as usize + 1] as usize,
            );
            for &v in &fwd_adj[s..e] {
                indeg[v.index()] -= 1;
                if indeg[v.index()] == 0 {
                    queue.push(v.0);
                }
            }
        }
        if seen != nn {
            // `seen != nn` means some vertex kept nonzero in-degree, so
            // `find` always succeeds; the fallback only exists to keep
            // this path panic-free (lint rule S1).
            let culprit = (0..nn).find(|&i| indeg[i] > 0).unwrap_or(0);
            return Err(BuildError::Cycle(VertexId(culprit as u32)));
        }

        let mut inputs = BitSet::new(nn);
        for &v in &self.input_tags {
            if rev_off[v.index() + 1] - rev_off[v.index()] > 0 {
                return Err(BuildError::InputWithPredecessor(v));
            }
            inputs.insert(v.index());
        }
        let mut outputs = BitSet::new(nn);
        for &v in &self.output_tags {
            outputs.insert(v.index());
        }

        Ok(Cdag::from_parts(
            n,
            fwd_off,
            fwd_adj,
            rev_off,
            rev_adj,
            inputs,
            outputs,
            self.labels,
        ))
    }

    /// [`CdagBuilder::build`] for graphs that are valid *by construction* —
    /// generators that wire edges exclusively from already-created
    /// vertices to newly-created ones (so no cycle, self-loop, or
    /// dangling edge can exist) and tag only sources as inputs.
    ///
    /// A `BuildError` from such a generator is a bug in the generator,
    /// not a recoverable condition, so this panics with `invariant` (the
    /// caller's structural argument, e.g. `"chain is acyclic"`) instead
    /// of returning the error. Every kernel generator funnels through
    /// here, which keeps the workspace's invariant-panic in one audited
    /// place instead of a `.expect` per kernel (lint rule S1).
    #[track_caller]
    pub fn build_valid(self, invariant: &str) -> Cdag {
        match self.build() {
            Ok(g) => g,
            // dmc-lint: allow(s1) -- the single audited invariant-panic every by-construction builder funnels through; reachable only via a generator bug
            Err(e) => panic!("builder invariant '{invariant}' violated: {e}"),
        }
    }
}

/// The vertex-disjoint union of several CDAGs: vertices of `parts[k]` are
/// renumbered by the combined offset of the preceding parts, labels and
/// input/output tags carry over. The canonical way to build a
/// multi-component composite for the Theorem-2 pipeline.
pub fn disjoint_union(parts: &[Cdag]) -> Cdag {
    let total_v: usize = parts.iter().map(Cdag::num_vertices).sum();
    let total_e: usize = parts.iter().map(Cdag::num_edges).sum();
    let mut b = CdagBuilder::with_capacity(total_v, total_e);
    let mut offset = 0u32;
    for g in parts {
        for v in g.vertices() {
            let id = b.add_vertex(g.label(v));
            debug_assert_eq!(id.0, offset + v.0);
            if g.is_input(v) {
                b.tag_input(id);
            }
            if g.is_output(v) {
                b.tag_output(id);
            }
        }
        for (u, v) in g.edges() {
            b.add_edge(VertexId(offset + u.0), VertexId(offset + v.0));
        }
        offset += g.num_vertices() as u32;
    }
    b.build_valid("a union of disjoint DAGs is a DAG with source inputs")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_builds() {
        let g = CdagBuilder::new().build().unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn cycle_detected() {
        let mut b = CdagBuilder::new();
        let x = b.add_vertex("x");
        let y = b.add_vertex("y");
        b.add_edge(x, y);
        b.add_edge(y, x);
        assert!(matches!(b.build(), Err(BuildError::Cycle(_))));
    }

    #[test]
    fn self_loop_detected() {
        let mut b = CdagBuilder::new();
        let x = b.add_vertex("x");
        b.add_edge(x, x);
        assert_eq!(b.build().unwrap_err(), BuildError::SelfLoop(x));
    }

    #[test]
    fn dangling_edge_detected() {
        let mut b = CdagBuilder::new();
        let x = b.add_vertex("x");
        b.add_edge(x, VertexId(7));
        assert!(matches!(b.build(), Err(BuildError::DanglingEdge(_, _))));
    }

    #[test]
    fn input_with_predecessor_rejected() {
        let mut b = CdagBuilder::new();
        let x = b.add_vertex("x");
        let y = b.add_op("y", &[x]);
        b.tag_input(y);
        assert_eq!(b.build().unwrap_err(), BuildError::InputWithPredecessor(y));
    }

    #[test]
    fn adjacency_is_consistent() {
        let mut b = CdagBuilder::new();
        let a = b.add_input("a");
        let c = b.add_input("c");
        let d = b.add_op("d", &[a, c]);
        let e = b.add_op("e", &[a, d]);
        b.tag_output(e);
        let g = b.build().unwrap();
        assert_eq!(g.successors(a), &[d, e]);
        assert_eq!(g.predecessors(e), &[a, d]);
        assert_eq!(g.predecessors(d), &[a, c]);
        // Every forward edge appears exactly once in reverse adjacency.
        for (u, v) in g.edges() {
            assert!(g.predecessors(v).contains(&u));
        }
    }

    #[test]
    fn dedup_edges_collapses_duplicates() {
        let mut b = CdagBuilder::new();
        let x = b.add_input("x");
        let y = b.add_vertex("y = x*x");
        b.add_edge(x, y);
        b.add_edge(x, y);
        b.dedup_edges(true);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn disjoint_union_offsets_and_tags() {
        let mut b1 = CdagBuilder::new();
        let a = b1.add_input("a");
        let x = b1.add_op("x", &[a]);
        b1.tag_output(x);
        let g1 = b1.build().unwrap();
        let mut b2 = CdagBuilder::new();
        let p = b2.add_input("p");
        let q = b2.add_op("q", &[p]);
        let r = b2.add_op("r", &[p, q]);
        b2.tag_output(r);
        let g2 = b2.build().unwrap();
        let u = disjoint_union(&[g1.clone(), g2]);
        assert_eq!(u.num_vertices(), 5);
        assert_eq!(u.num_edges(), 4);
        assert_eq!(u.num_inputs(), 2);
        assert_eq!(u.num_outputs(), 2);
        assert_eq!(u.label(VertexId(2)), "p");
        assert!(u.has_edge(VertexId(2), VertexId(4)));
        assert!(u.is_output(VertexId(1)) && u.is_output(VertexId(4)));
        // Union with a single part is a structural copy.
        let single = disjoint_union(std::slice::from_ref(&g1));
        assert_eq!(single.num_edges(), g1.num_edges());
    }

    #[test]
    fn duplicate_edges_kept_without_dedup() {
        let mut b = CdagBuilder::new();
        let x = b.add_input("x");
        let y = b.add_vertex("y");
        b.add_edge(x, y);
        b.add_edge(x, y);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 2);
    }
}
