//! A simple line-oriented text format for CDAGs, for persisting generated
//! graphs and interchanging them with external pebbling tools.
//!
//! ```text
//! # comment
//! cdag 4            # vertex count
//! v 0 in  "a"       # id, tag (in/out/op/inout), label
//! v 1 op  "b"
//! v 2 op  "c"
//! v 3 out "d"
//! e 0 1             # edge source target
//! e 0 2
//! e 1 3
//! e 2 3
//! ```

use crate::builder::CdagBuilder;
use crate::graph::{Cdag, VertexId};
use std::fmt::Write as _;

/// Serializes `g` to the text format.
pub fn to_text(g: &Cdag) -> String {
    let mut out = String::with_capacity(32 * g.num_vertices());
    let _ = writeln!(out, "cdag {}", g.num_vertices());
    for v in g.vertices() {
        let tag = match (g.is_input(v), g.is_output(v)) {
            (true, true) => "inout",
            (true, false) => "in",
            (false, true) => "out",
            (false, false) => "op",
        };
        let label = g.label(v).replace('\\', "\\\\").replace('"', "\\\"");
        let _ = writeln!(out, "v {} {} \"{}\"", v.0, tag, label);
    }
    for (u, v) in g.edges() {
        let _ = writeln!(out, "e {} {}", u.0, v.0);
    }
    out
}

/// Errors reported by [`from_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The `cdag N` header is missing or malformed.
    MissingHeader,
    /// A line could not be parsed; the payload is (line number, content).
    BadLine(usize, String),
    /// A vertex id is out of the declared range or duplicated.
    BadVertex(usize),
    /// The resulting graph failed structural validation.
    Structural(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::MissingHeader => write!(f, "missing 'cdag N' header"),
            ParseError::BadLine(n, l) => write!(f, "cannot parse line {n}: {l:?}"),
            ParseError::BadVertex(v) => write!(f, "bad or duplicate vertex id {v}"),
            ParseError::Structural(e) => write!(f, "structural error: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Strips a trailing `# comment` from `line`, honouring double quotes: a
/// `#` inside a quoted label (with `\"`/`\\` escapes) is content, not a
/// comment marker.
fn strip_comment(line: &str) -> &str {
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            '#' if !in_quotes => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Reverses the label escaping of [`to_text`] (`\\` → `\`, `\"` → `"`).
fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            // A trailing lone backslash cannot be produced by `to_text`;
            // keep it verbatim rather than dropping input.
            out.push(chars.next().unwrap_or('\\'));
        } else {
            out.push(c);
        }
    }
    out
}

/// Parses the text format back into a [`Cdag`].
///
/// Vertices must be declared with consecutive ids `0..N` before use;
/// `#`-prefixed suffixes (outside quoted labels) and blank lines are
/// ignored.
pub fn from_text(text: &str) -> Result<Cdag, ParseError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, strip_comment(l).trim()))
        .filter(|(_, l)| !l.is_empty());
    let (_, header) = lines.next().ok_or(ParseError::MissingHeader)?;
    let n: usize = header
        .strip_prefix("cdag ")
        .and_then(|r| r.trim().parse().ok())
        .ok_or(ParseError::MissingHeader)?;
    let mut b = CdagBuilder::with_capacity(n, 0);
    let mut declared = vec![false; n];
    let mut next_expected = 0usize;
    for (lineno, line) in lines {
        let mut parts = line.splitn(2, ' ');
        match parts.next() {
            Some("v") => {
                let rest = parts.next().ok_or_else(|| bad(lineno, line))?;
                let mut it = rest.splitn(3, ' ');
                let id: usize = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| bad(lineno, line))?;
                let tag = it.next().ok_or_else(|| bad(lineno, line))?;
                let label_raw = it.next().unwrap_or("\"\"").trim();
                let label = unescape(
                    label_raw
                        .strip_prefix('"')
                        .and_then(|s| s.strip_suffix('"'))
                        .unwrap_or(label_raw),
                );
                if id >= n || declared[id] || id != next_expected {
                    return Err(ParseError::BadVertex(id));
                }
                declared[id] = true;
                next_expected += 1;
                let vid = b.add_vertex(label);
                debug_assert_eq!(vid.0 as usize, id);
                match tag {
                    "in" => b.tag_input(vid),
                    "out" => b.tag_output(vid),
                    "inout" => {
                        b.tag_input(vid);
                        b.tag_output(vid);
                    }
                    "op" => {}
                    _ => return Err(bad(lineno, line)),
                }
            }
            Some("e") => {
                let rest = parts.next().ok_or_else(|| bad(lineno, line))?;
                let mut it = rest.split_whitespace();
                let u: u32 = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| bad(lineno, line))?;
                let v: u32 = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| bad(lineno, line))?;
                b.add_edge(VertexId(u), VertexId(v));
            }
            _ => return Err(bad(lineno, line)),
        }
    }
    if next_expected != n {
        return Err(ParseError::BadVertex(next_expected));
    }
    b.build().map_err(|e| ParseError::Structural(e.to_string()))
}

fn bad(lineno: usize, line: &str) -> ParseError {
    ParseError::BadLine(lineno, line.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Cdag {
        let mut b = CdagBuilder::new();
        let a = b.add_input("a");
        let x = b.add_op("b\"quoted\"", &[a]);
        let y = b.add_op("c", &[a]);
        let d = b.add_op("d", &[x, y]);
        b.tag_output(d);
        b.build().unwrap()
    }

    #[test]
    fn hash_in_label_round_trips() {
        // Regression: comment stripping used to run before quote parsing,
        // so a '#' inside a label truncated the line and the graph
        // round-tripped to different labels.
        let mut b = CdagBuilder::new();
        let a = b.add_input("tile #3");
        let x = b.add_op("#lead \\ mix \"#q\"", &[a]);
        b.tag_output(x);
        let g = b.build().unwrap();
        let g2 = from_text(&to_text(&g)).unwrap();
        for v in g.vertices() {
            assert_eq!(g.label(v), g2.label(v), "label of {v}");
        }
        assert_eq!(g.num_edges(), g2.num_edges());
    }

    #[test]
    fn comment_after_quoted_label_still_stripped() {
        let text = "cdag 1\nv 0 op \"a#b\" # trailing comment\n";
        let g = from_text(text).unwrap();
        assert_eq!(g.label(VertexId(0)), "a#b");
    }

    #[test]
    fn round_trip_preserves_everything() {
        let g = diamond();
        let text = to_text(&g);
        let g2 = from_text(&text).unwrap();
        assert_eq!(g.num_vertices(), g2.num_vertices());
        assert_eq!(g.num_edges(), g2.num_edges());
        assert_eq!(
            g.edges().collect::<Vec<_>>(),
            g2.edges().collect::<Vec<_>>()
        );
        for v in g.vertices() {
            assert_eq!(g.is_input(v), g2.is_input(v));
            assert_eq!(g.is_output(v), g2.is_output(v));
            assert_eq!(g.label(v), g2.label(v), "label of {v}");
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# header comment\ncdag 2\n\nv 0 in \"x\"  # the input\nv 1 out \"y\"\ne 0 1\n";
        let g = from_text(text).unwrap();
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(g.num_edges(), 1);
        assert!(g.is_input(VertexId(0)));
    }

    #[test]
    fn errors_reported() {
        assert!(matches!(from_text(""), Err(ParseError::MissingHeader)));
        assert!(matches!(
            from_text("nope 3"),
            Err(ParseError::MissingHeader)
        ));
        assert!(matches!(
            from_text("cdag 1\nv 0 weird \"x\""),
            Err(ParseError::BadLine(_, _))
        ));
        assert!(matches!(
            from_text("cdag 2\nv 1 op \"x\""),
            Err(ParseError::BadVertex(1))
        ));
        // Cycle surfaces as a structural error.
        assert!(matches!(
            from_text("cdag 2\nv 0 op \"a\"\nv 1 op \"b\"\ne 0 1\ne 1 0"),
            Err(ParseError::Structural(_))
        ));
        // Missing vertex declarations.
        assert!(matches!(
            from_text("cdag 3\nv 0 op \"a\""),
            Err(ParseError::BadVertex(1))
        ));
    }

    #[test]
    fn inout_round_trips() {
        let mut b = CdagBuilder::new();
        let a = b.add_input("a");
        b.tag_output(a);
        let g = b.build().unwrap();
        let g2 = from_text(&to_text(&g)).unwrap();
        assert!(g2.is_input(VertexId(0)) && g2.is_output(VertexId(0)));
    }
}
