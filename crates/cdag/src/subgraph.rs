//! Induced sub-CDAGs and quotient graphs — the substrate of the paper's
//! decomposition machinery (Theorem 2, Theorem 4) and of S-partition
//! validation (conditions P1/P2 of Definitions 3 and 5).

use crate::bitset::BitSet;
use crate::builder::CdagBuilder;
use crate::graph::{Cdag, VertexId};

/// A sub-CDAG induced by a vertex subset, remembering the embedding into
/// the parent CDAG.
///
/// Following the paper's Theorem 2 the induced tagging is
/// `I_i = I ∩ V_i`, `E_i = E ∩ (V_i × V_i)`, `O_i = O ∩ V_i`. Vertices
/// whose predecessors were all outside `V_i` become predecessor-free but are
/// **not** retagged as inputs — exactly the situation the Red-Blue-White
/// game's flexible tagging was designed for.
#[derive(Debug, Clone)]
pub struct InducedSubCdag {
    /// The induced sub-CDAG (vertex ids renumbered `0..k`).
    pub cdag: Cdag,
    /// `to_parent[i]` is the parent-CDAG id of sub-vertex `i`.
    pub to_parent: Vec<VertexId>,
}

impl InducedSubCdag {
    /// Maps a sub-CDAG vertex back to the parent CDAG.
    pub fn parent_of(&self, v: VertexId) -> VertexId {
        self.to_parent[v.index()]
    }
}

/// Induces the sub-CDAG of `g` on the vertex set `verts`.
pub fn induce(g: &Cdag, verts: &BitSet) -> InducedSubCdag {
    let n = g.num_vertices();
    assert_eq!(verts.capacity(), n, "vertex set capacity mismatch");
    let mut to_parent = Vec::with_capacity(verts.len());
    let mut from_parent = vec![u32::MAX; n];
    for i in verts.iter() {
        from_parent[i] = to_parent.len() as u32;
        to_parent.push(VertexId(i as u32));
    }
    let mut b = CdagBuilder::with_capacity(to_parent.len(), 0);
    for &pv in &to_parent {
        let id = b.add_vertex(g.label(pv).to_string());
        if g.is_input(pv) {
            b.tag_input(id);
        }
        if g.is_output(pv) {
            b.tag_output(id);
        }
    }
    for &pv in &to_parent {
        let u = VertexId(from_parent[pv.index()]);
        for &s in g.successors(pv) {
            let m = from_parent[s.index()];
            if m != u32::MAX {
                b.add_edge(u, VertexId(m));
            }
        }
    }
    let cdag = b.build_valid("induced subgraph of a DAG is a DAG with source inputs");
    InducedSubCdag { cdag, to_parent }
}

/// Splits `g` into the sub-CDAGs induced by a disjoint partition
/// (`assignment[v]` = block index of vertex `v`). Blocks must be numbered
/// `0..num_blocks` contiguously.
pub fn decompose(g: &Cdag, assignment: &[usize], num_blocks: usize) -> Vec<InducedSubCdag> {
    assert_eq!(assignment.len(), g.num_vertices());
    let mut sets = vec![BitSet::new(g.num_vertices()); num_blocks];
    for (v, &blk) in assignment.iter().enumerate() {
        assert!(blk < num_blocks, "block index {blk} out of range");
        sets[blk].insert(v);
    }
    sets.iter().map(|s| induce(g, s)).collect()
}

/// The *input set* `In(V_i)` of Definition 5: vertices of `V \ V_i` with at
/// least one successor in `V_i`.
pub fn input_set(g: &Cdag, set: &BitSet) -> BitSet {
    let mut r = BitSet::new(g.num_vertices());
    for i in set.iter() {
        for &p in g.predecessors(VertexId(i as u32)) {
            if !set.contains(p.index()) {
                r.insert(p.index());
            }
        }
    }
    r
}

/// The *output set* `Out(V_i)` of Definition 5: vertices of `V_i` that are
/// tagged outputs of `g` or have at least one successor outside `V_i`.
pub fn output_set(g: &Cdag, set: &BitSet) -> BitSet {
    let mut r = BitSet::new(g.num_vertices());
    for i in set.iter() {
        let v = VertexId(i as u32);
        if g.is_output(v) || g.successors(v).iter().any(|s| !set.contains(s.index())) {
            r.insert(i);
        }
    }
    r
}

/// The quotient multigraph of a disjoint vertex partition: one node per
/// block, one edge `i → j` (deduplicated) whenever some CDAG edge crosses
/// from block `i` to block `j`.
#[derive(Debug, Clone)]
pub struct QuotientGraph {
    /// Number of partition blocks.
    pub num_blocks: usize,
    /// Deduplicated inter-block edges (no self-edges).
    pub edges: Vec<(usize, usize)>,
}

impl QuotientGraph {
    /// Builds the quotient of `g` under `assignment`.
    pub fn new(g: &Cdag, assignment: &[usize], num_blocks: usize) -> Self {
        assert_eq!(assignment.len(), g.num_vertices());
        let mut edges: Vec<(usize, usize)> = g
            .edges()
            .map(|(u, v)| (assignment[u.index()], assignment[v.index()]))
            .filter(|(a, b)| a != b)
            .collect();
        edges.sort_unstable();
        edges.dedup();
        QuotientGraph { num_blocks, edges }
    }

    /// `true` if two blocks have edges in both directions — the "circuit
    /// between subsets" forbidden by condition P2 of Definitions 3 and 5.
    ///
    /// Membership of the reversed edge is checked by binary search:
    /// [`QuotientGraph::new`] sorts and deduplicates `edges`, so the list
    /// is its own ordered index (lint rule D1 — no hash set needed).
    pub fn has_pairwise_circuit(&self) -> bool {
        debug_assert!(self.edges.windows(2).all(|w| w[0] < w[1]), "edges sorted");
        self.edges
            .iter()
            .any(|&(a, b)| self.edges.binary_search(&(b, a)).is_ok())
    }

    /// `true` if the quotient digraph is acyclic (strictly stronger than
    /// the absence of pairwise circuits; partitions built from valid games
    /// always satisfy it).
    pub fn is_acyclic(&self) -> bool {
        let mut indeg = vec![0u32; self.num_blocks];
        let mut adj = vec![Vec::new(); self.num_blocks];
        for &(a, b) in &self.edges {
            adj[a].push(b);
            indeg[b] += 1;
        }
        let mut queue: Vec<usize> = (0..self.num_blocks).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0;
        while let Some(u) = queue.pop() {
            seen += 1;
            for &v in &adj[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push(v);
                }
            }
        }
        seen == self.num_blocks
    }

    /// A topological order of the blocks; `None` if cyclic.
    pub fn topological_block_order(&self) -> Option<Vec<usize>> {
        let mut indeg = vec![0u32; self.num_blocks];
        let mut adj = vec![Vec::new(); self.num_blocks];
        for &(a, b) in &self.edges {
            adj[a].push(b);
            indeg[b] += 1;
        }
        let mut queue: std::collections::VecDeque<usize> =
            (0..self.num_blocks).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(self.num_blocks);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &v in &adj[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push_back(v);
                }
            }
        }
        (order.len() == self.num_blocks).then_some(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Cdag {
        let mut b = CdagBuilder::new();
        let a = b.add_input("a");
        let x = b.add_op("b", &[a]);
        let y = b.add_op("c", &[a]);
        let d = b.add_op("d", &[x, y]);
        b.tag_output(d);
        b.build().unwrap()
    }

    #[test]
    fn induce_keeps_internal_edges_and_tags() {
        let g = diamond();
        let sub = induce(&g, &BitSet::from_indices(4, [0, 1, 3]));
        assert_eq!(sub.cdag.num_vertices(), 3);
        // Edges a->b and b->d survive; a->c and c->d are dropped.
        assert_eq!(sub.cdag.num_edges(), 2);
        assert_eq!(sub.cdag.num_inputs(), 1);
        assert_eq!(sub.cdag.num_outputs(), 1);
        assert_eq!(sub.parent_of(VertexId(0)), VertexId(0));
        assert_eq!(sub.parent_of(VertexId(2)), VertexId(3));
    }

    #[test]
    fn induced_pred_free_vertices_are_not_inputs() {
        let g = diamond();
        // {b, c, d}: b and c lose their predecessor a but stay non-inputs.
        let sub = induce(&g, &BitSet::from_indices(4, [1, 2, 3]));
        assert_eq!(sub.cdag.num_inputs(), 0);
        assert_eq!(sub.cdag.in_degree(VertexId(0)), 0);
    }

    #[test]
    fn decompose_partitions_everything() {
        let g = diamond();
        let parts = decompose(&g, &[0, 0, 1, 1], 2);
        assert_eq!(parts.len(), 2);
        let total: usize = parts.iter().map(|p| p.cdag.num_vertices()).sum();
        assert_eq!(total, g.num_vertices());
    }

    #[test]
    fn in_out_sets_match_definition5() {
        let g = diamond();
        // V_i = {d}: In = {b, c}; Out = {d} (tagged output).
        let set = BitSet::from_indices(4, [3]);
        assert_eq!(input_set(&g, &set).iter().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(output_set(&g, &set).iter().collect::<Vec<_>>(), vec![3]);
        // V_i = {a, b}: In = {}; Out = {a (feeds c), b (feeds d)}.
        let set = BitSet::from_indices(4, [0, 1]);
        assert!(input_set(&g, &set).is_empty());
        assert_eq!(output_set(&g, &set).iter().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn out_set_of_untagged_sink_is_empty() {
        let mut b = CdagBuilder::new();
        let a = b.add_input("a");
        let z = b.add_op("z", &[a]); // sink, not tagged output
        let _ = z;
        let g = b.build().unwrap();
        let set = BitSet::from_indices(2, [1]);
        assert!(output_set(&g, &set).is_empty());
    }

    /// Regression for the HashSet→binary-search conversion in
    /// `has_pairwise_circuit` (lint rule D1): a reversed pair anywhere in
    /// a long sorted edge list is found, and near-misses are not.
    #[test]
    fn pairwise_circuit_found_by_binary_search() {
        let chain: Vec<(usize, usize)> = (0..50).map(|i| (i, i + 1)).collect();
        let acyclic = QuotientGraph {
            num_blocks: 51,
            edges: chain.clone(),
        };
        assert!(!acyclic.has_pairwise_circuit());
        let mut edges = chain;
        edges.push((37, 36)); // reverse one deep-in-the-list edge
        edges.sort_unstable();
        let cyclic = QuotientGraph {
            num_blocks: 51,
            edges,
        };
        assert!(cyclic.has_pairwise_circuit());
    }

    #[test]
    fn quotient_detects_circuits() {
        let g = diamond();
        // Blocks {a, d} and {b, c}: edges 0->1 (a->b) and 1->0 (b->d).
        let q = QuotientGraph::new(&g, &[0, 1, 1, 0], 2);
        assert!(q.has_pairwise_circuit());
        assert!(!q.is_acyclic());
        assert!(q.topological_block_order().is_none());
        // Blocks {a, b, c} then {d}: acyclic chain.
        let q = QuotientGraph::new(&g, &[0, 0, 0, 1], 2);
        assert!(!q.has_pairwise_circuit());
        assert!(q.is_acyclic());
        assert_eq!(q.topological_block_order(), Some(vec![0, 1]));
    }
}
