//! A compact fixed-capacity bitset over vertex indices.
//!
//! The lower-bound machinery manipulates many vertex sets (ancestors,
//! descendants, partitions, wavefronts). `std::collections::HashSet` would
//! dominate both time and memory on CDAGs with millions of vertices, so we
//! use a word-packed bitset with the usual bulk operations. The layout is a
//! plain `Vec<u64>` plus the logical capacity, which also makes it trivially
//! serde-serializable.

use serde::{Deserialize, Serialize};

/// `dst |= src`, word by word, over two equal-length `u64` slices.
///
/// This is the inner step of the word-parallel reachability sweeps in
/// [`crate::reach::BatchReach`]: each vertex owns a fixed-width row of words
/// (one bit per anchor in the batch), and propagating a closure along an edge
/// is a single `union_words` over the two rows.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn union_words(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len(), "union_words length mismatch");
    for (d, s) in dst.iter_mut().zip(src) {
        *d |= *s;
    }
}

/// `dst &= src`, word by word, over two equal-length `u64` slices — the
/// AND-sweep counterpart of [`union_words`], used to compute per-anchor
/// frontier rows ("all successors inside the region") in
/// [`crate::reach::BatchReach`].
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn intersect_words(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len(), "intersect_words length mismatch");
    for (d, s) in dst.iter_mut().zip(src) {
        *d &= *s;
    }
}

/// A fixed-capacity set of `usize` indices packed into 64-bit words.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitSet {
    words: Vec<u64>,
    /// Logical capacity (indices `0..capacity` are addressable).
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set able to hold indices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Creates a set containing every index in `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::new(capacity);
        for w in &mut s.words {
            *w = !0;
        }
        s.trim_tail();
        s
    }

    /// Builds a set from an iterator of indices.
    pub fn from_indices<I: IntoIterator<Item = usize>>(capacity: usize, it: I) -> Self {
        let mut s = Self::new(capacity);
        for i in it {
            s.insert(i);
        }
        s
    }

    /// Logical capacity of the set.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `i`; returns `true` if it was not already present.
    ///
    /// # Panics
    /// Panics if `i >= capacity`.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(
            i < self.capacity,
            "BitSet index {i} out of range {}",
            self.capacity
        );
        let (w, b) = (i / 64, i % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !was
    }

    /// Removes `i`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        let (w, b) = (i / 64, i % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        was
    }

    /// Membership test. Out-of-range indices are reported absent.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of elements in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` when no element is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// `self ∪= other`. Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "BitSet capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// `self ∩= other`. Panics if capacities differ.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "BitSet capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// `self \= other`. Panics if capacities differ.
    pub fn difference_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "BitSet capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !*b;
        }
    }

    /// In-place complement with respect to `0..capacity`.
    pub fn complement(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.trim_tail();
    }

    /// `true` if `self` and `other` share no element. Panics if capacities
    /// differ (a silent `zip` would ignore the longer set's tail words).
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "BitSet capacity mismatch");
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// `true` if every element of `self` is in `other`. Panics if
    /// capacities differ (a silent `zip` would ignore the longer set's tail
    /// words and could wrongly report `true`).
    pub fn is_subset(&self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "BitSet capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Read-only view of the packed 64-bit words (block `i` covers indices
    /// `64*i .. 64*i + 64`). Bits at or beyond `capacity` are always zero.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Overwrites the 64-bit block `i` (indices `64*i .. 64*i + 64`) with
    /// `word`. Bits at or beyond `capacity` are masked off, preserving the
    /// tail invariant relied on by `len`/`is_empty`/`complement`.
    ///
    /// # Panics
    /// Panics if `i` is not a valid block index.
    #[inline]
    pub fn set_block(&mut self, i: usize, word: u64) {
        assert!(
            i < self.words.len(),
            "BitSet block {i} out of range {}",
            self.words.len()
        );
        self.words[i] = word;
        if i + 1 == self.words.len() {
            self.trim_tail();
        }
    }

    /// Iterates `(block_index, word)` pairs for the **non-zero** blocks, in
    /// increasing block order. Useful for sparse scans over large sets.
    pub fn blocks(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.words
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, w)| w != 0)
    }

    /// Iterates `(block_index, xor_word)` for blocks where `self` and
    /// `other` differ (the symmetric difference, word at a time). This is
    /// how the warm-started flow solver finds the few vertices whose
    /// source/sink side changed between adjacent anchors without scanning
    /// either set element-wise.
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn xor_blocks<'a>(&'a self, other: &'a BitSet) -> impl Iterator<Item = (usize, u64)> + 'a {
        assert_eq!(self.capacity, other.capacity, "BitSet capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .enumerate()
            .filter_map(|(i, (a, b))| {
                let d = a ^ b;
                (d != 0).then_some((i, d))
            })
    }

    /// Iterates over the contained indices in increasing order.
    pub fn iter(&self) -> BitSetIter<'_> {
        BitSetIter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Zeroes the bits beyond `capacity` in the last word.
    fn trim_tail(&mut self) {
        let tail = self.capacity % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects indices into a set sized to the maximum element + 1.
    fn from_iter<I: IntoIterator<Item = usize>>(it: I) -> Self {
        let items: Vec<usize> = it.into_iter().collect();
        let cap = items.iter().max().map_or(0, |m| m + 1);
        Self::from_indices(cap, items)
    }
}

/// Iterator over set bits; see [`BitSet::iter`].
pub struct BitSetIter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for BitSetIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "double insert reports false");
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.len(), 3);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn out_of_range_contains_is_false() {
        let s = BitSet::new(10);
        assert!(!s.contains(10));
        assert!(!s.contains(1000));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_insert_panics() {
        let mut s = BitSet::new(10);
        s.insert(10);
    }

    #[test]
    fn full_and_complement() {
        let mut s = BitSet::full(70);
        assert_eq!(s.len(), 70);
        s.complement();
        assert!(s.is_empty());
        s.complement();
        assert_eq!(s.len(), 70);
        assert!(s.contains(69));
        assert!(!s.contains(70));
    }

    #[test]
    fn set_algebra() {
        let a = BitSet::from_indices(100, [1, 2, 3, 50]);
        let b = BitSet::from_indices(100, [2, 3, 99]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3, 50, 99]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2, 3]);
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 50]);
    }

    #[test]
    fn subset_and_disjoint() {
        let a = BitSet::from_indices(64, [3, 5]);
        let b = BitSet::from_indices(64, [3, 5, 7]);
        let c = BitSet::from_indices(64, [8]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn subset_rejects_capacity_mismatch() {
        // Regression: a longer `self` used to have its tail words silently
        // ignored, so {100} ⊆ {} came back `true`.
        let a = BitSet::from_indices(128, [100]);
        let b = BitSet::new(64);
        let _ = a.is_subset(&b);
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn disjoint_rejects_capacity_mismatch() {
        let a = BitSet::from_indices(128, [100]);
        let b = BitSet::from_indices(64, [1]);
        let _ = a.is_disjoint(&b);
    }

    #[test]
    fn iter_order_and_empty() {
        let s = BitSet::from_indices(200, [199, 0, 63, 64, 65]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 65, 199]);
        let e = BitSet::new(0);
        assert_eq!(e.iter().count(), 0);
        assert!(e.is_empty());
    }

    #[test]
    fn union_words_ors_in_place() {
        let mut dst = [0b0011u64, 0];
        union_words(&mut dst, &[0b0101, 1 << 63]);
        assert_eq!(dst, [0b0111, 1 << 63]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn union_words_rejects_length_mismatch() {
        let mut dst = [0u64];
        union_words(&mut dst, &[0, 0]);
    }

    #[test]
    fn words_and_set_block_roundtrip() {
        let mut s = BitSet::new(100);
        s.set_block(0, u64::MAX);
        s.set_block(1, u64::MAX);
        // Tail bits beyond capacity are masked: 100 = 64 + 36.
        assert_eq!(s.len(), 100);
        assert_eq!(s.words()[0], u64::MAX);
        assert_eq!(s.words()[1], (1u64 << 36) - 1);
        assert!(s.contains(99));
        assert!(!s.contains(100));
    }

    #[test]
    fn blocks_skips_zero_words() {
        let s = BitSet::from_indices(200, [1, 130]);
        let blocks: Vec<_> = s.blocks().collect();
        assert_eq!(blocks, vec![(0, 1u64 << 1), (2, 1u64 << 2)]);
    }

    #[test]
    fn xor_blocks_reports_symmetric_difference() {
        let a = BitSet::from_indices(200, [1, 64, 130]);
        let b = BitSet::from_indices(200, [1, 65, 130]);
        let diff: Vec<_> = a.xor_blocks(&b).collect();
        assert_eq!(diff, vec![(1, (1u64 << 0) | (1u64 << 1))]);
        assert_eq!(a.xor_blocks(&a).count(), 0);
    }

    #[test]
    fn from_iterator_sizes_to_max() {
        let s: BitSet = [5usize, 9, 2].into_iter().collect();
        assert_eq!(s.capacity(), 10);
        assert_eq!(s.len(), 3);
    }
}
