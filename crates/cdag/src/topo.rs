//! Topological orders, depth levels, and the critical path.
//!
//! A topological order of the CDAG is exactly a legal *sequential schedule*
//! under the no-recomputation Red-Blue-White game: rule R3 fires each vertex
//! once, after all its predecessors. The pebble-game executors in `dmc-core`
//! consume the orders produced here.

use crate::graph::{Cdag, VertexId};

/// Returns a topological order of `g` (Kahn's algorithm, FIFO tie-breaking).
///
/// The builder guarantees acyclicity, so this always succeeds and visits all
/// vertices. The order is fully deterministic: the ready queue is seeded in
/// ascending id order and drained FIFO.
///
/// ```
/// use dmc_cdag::builder::CdagBuilder;
/// use dmc_cdag::topo::{is_valid_topological_order, topological_order};
///
/// let mut b = CdagBuilder::new();
/// let a = b.add_input("a");
/// let x = b.add_op("x", &[a]);
/// b.tag_output(x);
/// let g = b.build().unwrap();
/// let order = topological_order(&g);
/// assert_eq!(order, vec![a, x]);
/// assert!(is_valid_topological_order(&g, &order));
/// ```
pub fn topological_order(g: &Cdag) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut indeg: Vec<u32> = (0..n)
        .map(|i| g.in_degree(VertexId(i as u32)) as u32)
        .collect();
    let mut order = Vec::with_capacity(n);
    let mut queue: std::collections::VecDeque<VertexId> = (0..n)
        .map(|i| VertexId(i as u32))
        .filter(|v| indeg[v.index()] == 0)
        .collect();
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &v in g.successors(u) {
            indeg[v.index()] -= 1;
            if indeg[v.index()] == 0 {
                queue.push_back(v);
            }
        }
    }
    debug_assert_eq!(order.len(), n, "builder-validated CDAG must be acyclic");
    order
}

/// Returns a topological order that visits vertices in depth-first
/// post-order (finishing-time order). Compared to Kahn's breadth-first
/// order this tends to keep producer–consumer chains adjacent, which makes
/// it a better *schedule* for the cache-simulating game executors.
pub fn dfs_topological_order(g: &Cdag) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut state = vec![0u8; n]; // 0 = unvisited, 1 = on stack, 2 = done
    let mut order = Vec::with_capacity(n);
    let mut stack: Vec<(VertexId, usize)> = Vec::new();
    for root in (0..n).map(|i| VertexId(i as u32)) {
        if state[root.index()] != 0 {
            continue;
        }
        stack.push((root, 0));
        state[root.index()] = 1;
        while let Some(&mut (u, ref mut next)) = stack.last_mut() {
            let succs = g.successors(u);
            if *next < succs.len() {
                let v = succs[*next];
                *next += 1;
                if state[v.index()] == 0 {
                    state[v.index()] = 1;
                    stack.push((v, 0));
                }
            } else {
                state[u.index()] = 2;
                order.push(u);
                stack.pop();
            }
        }
    }
    order.reverse();
    order
}

/// Completes a *preferred* firing sequence into a full topological order.
///
/// Every vertex yielded by `preferred` is emitted after its not-yet-emitted
/// ancestors, which are pulled in depth-first (predecessor-declaration
/// order); vertices the preference never reaches are appended the same way
/// in ascending id order. The result is always a valid topological order
/// covering every vertex, whatever the preference was.
///
/// This is the workhorse behind the kernel catalog's schedule hooks: a
/// kernel describes only the cache-friendly *traversal* (tile order, a
/// blocked sweep of the output blocks) and the dependence closure — inputs
/// and intermediate producers — follows automatically, each value
/// materializing right before its first use.
///
/// ```
/// use dmc_cdag::builder::CdagBuilder;
/// use dmc_cdag::topo::{complete_order, is_valid_topological_order};
///
/// let mut b = CdagBuilder::new();
/// let x = b.add_input("x");
/// let y = b.add_input("y");
/// let p = b.add_op("p", &[x, y]);
/// let q = b.add_op("q", &[p]);
/// b.tag_output(q);
/// let g = b.build().unwrap();
///
/// // Prefer firing `q` first: its ancestors x, y, p are pulled in ahead
/// // of it, depth-first, and nothing is emitted twice.
/// let order = complete_order(&g, [q]);
/// assert_eq!(order, vec![x, y, p, q]);
/// assert!(is_valid_topological_order(&g, &order));
/// ```
pub fn complete_order(g: &Cdag, preferred: impl IntoIterator<Item = VertexId>) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut emitted = vec![false; n];
    let mut order = Vec::with_capacity(n);
    // Iterative DFS over unemitted ancestors. A vertex can be pushed more
    // than once (shared ancestor reached along two paths before either
    // emits it); the emitted check on pop makes the duplicate a no-op.
    let mut stack: Vec<(VertexId, usize)> = Vec::new();
    let mut emit_with_ancestors =
        |root: VertexId, emitted: &mut Vec<bool>, order: &mut Vec<VertexId>| {
            if emitted[root.index()] {
                return;
            }
            stack.push((root, 0));
            while let Some(&mut (u, ref mut next)) = stack.last_mut() {
                if emitted[u.index()] {
                    stack.pop();
                    continue;
                }
                let preds = g.predecessors(u);
                if *next < preds.len() {
                    let p = preds[*next];
                    *next += 1;
                    if !emitted[p.index()] {
                        stack.push((p, 0));
                    }
                } else {
                    emitted[u.index()] = true;
                    order.push(u);
                    stack.pop();
                }
            }
        };
    for v in preferred {
        emit_with_ancestors(v, &mut emitted, &mut order);
    }
    for i in 0..n {
        emit_with_ancestors(VertexId(i as u32), &mut emitted, &mut order);
    }
    debug_assert_eq!(order.len(), n, "completion must cover all vertices");
    order
}

/// `true` if `order` is a permutation of all vertices respecting every edge.
pub fn is_valid_topological_order(g: &Cdag, order: &[VertexId]) -> bool {
    if order.len() != g.num_vertices() {
        return false;
    }
    let mut pos = vec![usize::MAX; g.num_vertices()];
    for (i, &v) in order.iter().enumerate() {
        if v.index() >= g.num_vertices() || pos[v.index()] != usize::MAX {
            return false;
        }
        pos[v.index()] = i;
    }
    g.edges().all(|(u, v)| pos[u.index()] < pos[v.index()])
}

/// Longest-path depth of each vertex: sources have depth 0, and
/// `depth(v) = 1 + max(depth(pred))` otherwise.
///
/// The maximum depth + 1 is the critical-path length — a lower bound on
/// parallel steps with unbounded processors.
pub fn depths(g: &Cdag) -> Vec<u32> {
    let order = topological_order(g);
    let mut depth = vec![0u32; g.num_vertices()];
    for &v in &order {
        let d = g
            .predecessors(v)
            .iter()
            .map(|p| depth[p.index()] + 1)
            .max()
            .unwrap_or(0);
        depth[v.index()] = d;
    }
    depth
}

/// Groups vertices by [`depths`] level: `levels()[d]` lists all vertices at
/// depth `d`. This is the classic "level schedule" / BSP wavefront order.
pub fn levels(g: &Cdag) -> Vec<Vec<VertexId>> {
    let depth = depths(g);
    let max = depth.iter().copied().max().map_or(0, |d| d as usize + 1);
    let mut out = vec![Vec::new(); max];
    for v in g.vertices() {
        out[depth[v.index()] as usize].push(v);
    }
    out
}

/// Length (vertex count) of the longest path in `g`; 0 for an empty graph.
pub fn critical_path_len(g: &Cdag) -> usize {
    depths(g)
        .iter()
        .copied()
        .max()
        .map_or(0, |d| d as usize + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CdagBuilder;

    fn chain(k: usize) -> Cdag {
        let mut b = CdagBuilder::new();
        let mut prev = b.add_input("x0");
        for i in 1..k {
            prev = b.add_op(format!("x{i}"), &[prev]);
        }
        b.tag_output(prev);
        b.build().unwrap()
    }

    fn diamond() -> Cdag {
        let mut b = CdagBuilder::new();
        let a = b.add_input("a");
        let x = b.add_op("b", &[a]);
        let y = b.add_op("c", &[a]);
        let d = b.add_op("d", &[x, y]);
        b.tag_output(d);
        b.build().unwrap()
    }

    #[test]
    fn kahn_order_is_valid() {
        let g = diamond();
        let order = topological_order(&g);
        assert!(is_valid_topological_order(&g, &order));
    }

    #[test]
    fn dfs_order_is_valid() {
        let g = diamond();
        let order = dfs_topological_order(&g);
        assert!(is_valid_topological_order(&g, &order));
        let g = chain(50);
        assert!(is_valid_topological_order(&g, &dfs_topological_order(&g)));
    }

    #[test]
    fn invalid_orders_rejected() {
        let g = diamond();
        // Reversed order violates edges.
        let mut order = topological_order(&g);
        order.reverse();
        assert!(!is_valid_topological_order(&g, &order));
        // Wrong length.
        assert!(!is_valid_topological_order(&g, &order[..2]));
        // Duplicate vertex.
        let dup = vec![order[0], order[0], order[1], order[2]];
        assert!(!is_valid_topological_order(&g, &dup));
    }

    #[test]
    fn depths_on_chain_and_diamond() {
        let g = chain(5);
        assert_eq!(depths(&g), vec![0, 1, 2, 3, 4]);
        assert_eq!(critical_path_len(&g), 5);
        let g = diamond();
        assert_eq!(depths(&g), vec![0, 1, 1, 2]);
        assert_eq!(critical_path_len(&g), 3);
    }

    #[test]
    fn levels_partition_all_vertices() {
        let g = diamond();
        let lv = levels(&g);
        assert_eq!(lv.len(), 3);
        assert_eq!(lv[0].len(), 1);
        assert_eq!(lv[1].len(), 2);
        assert_eq!(lv[2].len(), 1);
        let total: usize = lv.iter().map(|l| l.len()).sum();
        assert_eq!(total, g.num_vertices());
    }

    #[test]
    fn complete_order_respects_preference_and_pulls_ancestors() {
        let g = diamond();
        // Prefer the sink first: everything is pulled in before it.
        let sink = VertexId(3);
        let order = complete_order(&g, [sink]);
        assert!(is_valid_topological_order(&g, &order));
        assert_eq!(order.last(), Some(&sink));
        // An empty preference appends everything in id order.
        let order = complete_order(&g, []);
        assert!(is_valid_topological_order(&g, &order));
        assert_eq!(order.len(), g.num_vertices());
    }

    #[test]
    fn complete_order_ignores_duplicates_and_covers_stragglers() {
        let g = chain(6);
        let mid = VertexId(3);
        // Duplicated and out-of-order preferences still produce a valid
        // permutation covering every vertex exactly once.
        let order = complete_order(&g, [mid, mid, VertexId(1)]);
        assert!(is_valid_topological_order(&g, &order));
        // The preferred prefix: 0..=3 (ancestors of mid), then the rest.
        assert_eq!(&order[..4], &[VertexId(0), VertexId(1), VertexId(2), mid]);
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = CdagBuilder::new().build().unwrap();
        assert!(topological_order(&g).is_empty());
        assert_eq!(critical_path_len(&g), 0);
        assert!(levels(&g).is_empty());
    }
}
