//! Topological orders, depth levels, and the critical path.
//!
//! A topological order of the CDAG is exactly a legal *sequential schedule*
//! under the no-recomputation Red-Blue-White game: rule R3 fires each vertex
//! once, after all its predecessors. The pebble-game executors in `dmc-core`
//! consume the orders produced here.

use crate::graph::{Cdag, VertexId};

/// Returns a topological order of `g` (Kahn's algorithm, FIFO tie-breaking).
///
/// The builder guarantees acyclicity, so this always succeeds and visits all
/// vertices.
pub fn topological_order(g: &Cdag) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut indeg: Vec<u32> = (0..n)
        .map(|i| g.in_degree(VertexId(i as u32)) as u32)
        .collect();
    let mut order = Vec::with_capacity(n);
    let mut queue: std::collections::VecDeque<VertexId> = (0..n)
        .map(|i| VertexId(i as u32))
        .filter(|v| indeg[v.index()] == 0)
        .collect();
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &v in g.successors(u) {
            indeg[v.index()] -= 1;
            if indeg[v.index()] == 0 {
                queue.push_back(v);
            }
        }
    }
    debug_assert_eq!(order.len(), n, "builder-validated CDAG must be acyclic");
    order
}

/// Returns a topological order that visits vertices in depth-first
/// post-order (finishing-time order). Compared to Kahn's breadth-first
/// order this tends to keep producer–consumer chains adjacent, which makes
/// it a better *schedule* for the cache-simulating game executors.
pub fn dfs_topological_order(g: &Cdag) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut state = vec![0u8; n]; // 0 = unvisited, 1 = on stack, 2 = done
    let mut order = Vec::with_capacity(n);
    let mut stack: Vec<(VertexId, usize)> = Vec::new();
    for root in (0..n).map(|i| VertexId(i as u32)) {
        if state[root.index()] != 0 {
            continue;
        }
        stack.push((root, 0));
        state[root.index()] = 1;
        while let Some(&mut (u, ref mut next)) = stack.last_mut() {
            let succs = g.successors(u);
            if *next < succs.len() {
                let v = succs[*next];
                *next += 1;
                if state[v.index()] == 0 {
                    state[v.index()] = 1;
                    stack.push((v, 0));
                }
            } else {
                state[u.index()] = 2;
                order.push(u);
                stack.pop();
            }
        }
    }
    order.reverse();
    order
}

/// `true` if `order` is a permutation of all vertices respecting every edge.
pub fn is_valid_topological_order(g: &Cdag, order: &[VertexId]) -> bool {
    if order.len() != g.num_vertices() {
        return false;
    }
    let mut pos = vec![usize::MAX; g.num_vertices()];
    for (i, &v) in order.iter().enumerate() {
        if v.index() >= g.num_vertices() || pos[v.index()] != usize::MAX {
            return false;
        }
        pos[v.index()] = i;
    }
    g.edges().all(|(u, v)| pos[u.index()] < pos[v.index()])
}

/// Longest-path depth of each vertex: sources have depth 0, and
/// `depth(v) = 1 + max(depth(pred))` otherwise.
///
/// The maximum depth + 1 is the critical-path length — a lower bound on
/// parallel steps with unbounded processors.
pub fn depths(g: &Cdag) -> Vec<u32> {
    let order = topological_order(g);
    let mut depth = vec![0u32; g.num_vertices()];
    for &v in &order {
        let d = g
            .predecessors(v)
            .iter()
            .map(|p| depth[p.index()] + 1)
            .max()
            .unwrap_or(0);
        depth[v.index()] = d;
    }
    depth
}

/// Groups vertices by [`depths`] level: `levels()[d]` lists all vertices at
/// depth `d`. This is the classic "level schedule" / BSP wavefront order.
pub fn levels(g: &Cdag) -> Vec<Vec<VertexId>> {
    let depth = depths(g);
    let max = depth.iter().copied().max().map_or(0, |d| d as usize + 1);
    let mut out = vec![Vec::new(); max];
    for v in g.vertices() {
        out[depth[v.index()] as usize].push(v);
    }
    out
}

/// Length (vertex count) of the longest path in `g`; 0 for an empty graph.
pub fn critical_path_len(g: &Cdag) -> usize {
    depths(g)
        .iter()
        .copied()
        .max()
        .map_or(0, |d| d as usize + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CdagBuilder;

    fn chain(k: usize) -> Cdag {
        let mut b = CdagBuilder::new();
        let mut prev = b.add_input("x0");
        for i in 1..k {
            prev = b.add_op(format!("x{i}"), &[prev]);
        }
        b.tag_output(prev);
        b.build().unwrap()
    }

    fn diamond() -> Cdag {
        let mut b = CdagBuilder::new();
        let a = b.add_input("a");
        let x = b.add_op("b", &[a]);
        let y = b.add_op("c", &[a]);
        let d = b.add_op("d", &[x, y]);
        b.tag_output(d);
        b.build().unwrap()
    }

    #[test]
    fn kahn_order_is_valid() {
        let g = diamond();
        let order = topological_order(&g);
        assert!(is_valid_topological_order(&g, &order));
    }

    #[test]
    fn dfs_order_is_valid() {
        let g = diamond();
        let order = dfs_topological_order(&g);
        assert!(is_valid_topological_order(&g, &order));
        let g = chain(50);
        assert!(is_valid_topological_order(&g, &dfs_topological_order(&g)));
    }

    #[test]
    fn invalid_orders_rejected() {
        let g = diamond();
        // Reversed order violates edges.
        let mut order = topological_order(&g);
        order.reverse();
        assert!(!is_valid_topological_order(&g, &order));
        // Wrong length.
        assert!(!is_valid_topological_order(&g, &order[..2]));
        // Duplicate vertex.
        let dup = vec![order[0], order[0], order[1], order[2]];
        assert!(!is_valid_topological_order(&g, &dup));
    }

    #[test]
    fn depths_on_chain_and_diamond() {
        let g = chain(5);
        assert_eq!(depths(&g), vec![0, 1, 2, 3, 4]);
        assert_eq!(critical_path_len(&g), 5);
        let g = diamond();
        assert_eq!(depths(&g), vec![0, 1, 1, 2]);
        assert_eq!(critical_path_len(&g), 3);
    }

    #[test]
    fn levels_partition_all_vertices() {
        let g = diamond();
        let lv = levels(&g);
        assert_eq!(lv.len(), 3);
        assert_eq!(lv[0].len(), 1);
        assert_eq!(lv[1].len(), 2);
        assert_eq!(lv[2].len(), 1);
        let total: usize = lv.iter().map(|l| l.len()).sum();
        assert_eq!(total, g.num_vertices());
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = CdagBuilder::new().build().unwrap();
        assert!(topological_order(&g).is_empty());
        assert_eq!(critical_path_len(&g), 0);
        assert!(levels(&g).is_empty());
    }
}
