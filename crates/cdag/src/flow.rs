//! Dinic max-flow and vertex min-cuts via vertex splitting.
//!
//! The paper's Section 3.3 lower-bounds I/O by the size of a minimum
//! cardinality *wavefront*, which is a **vertex** min-cut between a vertex's
//! ancestor side and descendant side. Similarly, Hong & Kung's S-partition
//! condition P3 asks for the size of a minimum *dominator set*, again a
//! vertex cut between the CDAG inputs and a vertex set.
//!
//! Both reduce to edge max-flow by the classic vertex-splitting construction:
//! every vertex `v` becomes an arc `v_in → v_out` whose capacity is 1 if the
//! cut may pass through `v` and effectively infinite otherwise; every CDAG
//! edge `(u, v)` becomes an infinite-capacity arc `u_out → v_in`. By the
//! max-flow/min-cut theorem (Menger), the max flow equals the minimum number
//! of cuttable vertices meeting every source→sink path.

use crate::bitset::BitSet;
use crate::graph::{Cdag, VertexId};

/// Effectively-infinite arc capacity (large enough that it can never be the
/// bottleneck of a simple-path decomposition, small enough not to overflow).
const INF: u32 = u32::MAX / 4;

/// A directed flow network with residual arcs, solved by Dinic's algorithm.
///
/// Arcs are stored in pairs: arc `2k` is the forward arc and `2k+1` its
/// residual twin, so the reverse of arc `a` is `a ^ 1`.
///
/// The network is an *arena*: the arc arrays, the CSR adjacency, and the
/// Dinic scratch (level, iterator, queue, path buffers) are all retained
/// across [`FlowNetwork::reset`] calls, so batched workloads — notably the
/// per-anchor min-cuts of [`crate::engine::WavefrontEngine`] — solve
/// thousands of flows without re-allocating.
pub struct FlowNetwork {
    /// Number of nodes.
    n: usize,
    /// Target node of each arc (`to[a ^ 1]` is the source of arc `a`).
    to: Vec<u32>,
    /// Remaining capacity of each arc.
    cap: Vec<u32>,
    /// CSR offsets: arcs leaving node `v` are
    /// `adj_arcs[adj_off[v]..adj_off[v + 1]]`. Built lazily by `max_flow`.
    adj_off: Vec<u32>,
    /// CSR arc index array (insertion order preserved per node).
    adj_arcs: Vec<u32>,
    /// `true` while `adj_off`/`adj_arcs` reflect the current arc set.
    csr_valid: bool,
    /// Cursor scratch for the counting-sort CSR build.
    cursor: Vec<u32>,
    /// BFS level of each node (Dinic scratch).
    level: Vec<u32>,
    /// Current-arc iterator of each node (Dinic scratch).
    it: Vec<u32>,
    /// BFS queue (Dinic scratch).
    queue: Vec<u32>,
    /// Arc stack of the current augmenting path (Dinic scratch).
    path: Vec<u32>,
}

impl FlowNetwork {
    /// Creates a network with `n` nodes and no arcs.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            n,
            to: Vec::new(),
            cap: Vec::new(),
            adj_off: Vec::new(),
            adj_arcs: Vec::new(),
            csr_valid: false,
            cursor: Vec::new(),
            level: Vec::new(),
            it: Vec::new(),
            queue: Vec::new(),
            path: Vec::new(),
        }
    }

    /// Clears all arcs and re-sizes to `n` nodes, retaining every buffer's
    /// allocation. After a reset the network behaves exactly like
    /// [`FlowNetwork::new`]`(n)`.
    pub fn reset(&mut self, n: usize) {
        self.n = n;
        self.to.clear();
        self.cap.clear();
        self.csr_valid = false;
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Adds a directed arc `u → v` with capacity `c`; returns the arc index.
    pub fn add_arc(&mut self, u: usize, v: usize, c: u32) -> u32 {
        debug_assert!(u < self.n && v < self.n, "arc endpoint out of range");
        let id = self.to.len() as u32;
        self.to.push(v as u32);
        self.cap.push(c);
        self.to.push(u as u32);
        self.cap.push(0);
        self.csr_valid = false;
        id
    }

    /// Builds the CSR adjacency from the arc endpoint array (counting sort;
    /// per-node arc order matches insertion order).
    fn build_csr(&mut self) {
        let n = self.n;
        self.adj_off.clear();
        self.adj_off.resize(n + 1, 0);
        for a in 0..self.to.len() {
            // Arc `a` leaves the node its twin points back to.
            let u = self.to[a ^ 1] as usize;
            self.adj_off[u + 1] += 1;
        }
        for i in 0..n {
            self.adj_off[i + 1] += self.adj_off[i];
        }
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.adj_off[..n]);
        self.adj_arcs.clear();
        self.adj_arcs.resize(self.to.len(), 0);
        for a in 0..self.to.len() {
            let u = self.to[a ^ 1] as usize;
            self.adj_arcs[self.cursor[u] as usize] = a as u32;
            self.cursor[u] += 1;
        }
        self.csr_valid = true;
    }

    /// Arcs leaving node `u` (requires a built CSR).
    #[inline]
    fn arcs_of(&self, u: usize) -> &[u32] {
        &self.adj_arcs[self.adj_off[u] as usize..self.adj_off[u + 1] as usize]
    }

    /// Computes the maximum `s → t` flow (Dinic's algorithm). Capacities are
    /// consumed in place; [`FlowNetwork::reset`] before reusing the arena
    /// for another flow problem.
    pub fn max_flow(&mut self, s: usize, t: usize) -> u64 {
        assert_ne!(s, t, "source and sink must differ");
        if !self.csr_valid {
            self.build_csr();
        }
        let n = self.n;
        let mut flow = 0u64;
        let mut level = std::mem::take(&mut self.level);
        let mut it = std::mem::take(&mut self.it);
        let mut queue = std::mem::take(&mut self.queue);
        level.resize(n, 0);
        it.resize(n, 0);
        loop {
            // BFS to build the level graph.
            level.fill(u32::MAX);
            level[s] = 0;
            queue.clear();
            queue.push(s as u32);
            let mut head = 0;
            while head < queue.len() {
                let u = queue[head] as usize;
                head += 1;
                for &a in self.arcs_of(u) {
                    let v = self.to[a as usize];
                    if self.cap[a as usize] > 0 && level[v as usize] == u32::MAX {
                        level[v as usize] = level[u] + 1;
                        queue.push(v);
                    }
                }
            }
            if level[t] == u32::MAX {
                break;
            }
            it.fill(0);
            // Blocking flow via iterative DFS.
            loop {
                let pushed = self.dfs_push(s, t, u32::MAX, &level, &mut it);
                if pushed == 0 {
                    break;
                }
                flow += pushed as u64;
            }
        }
        self.level = level;
        self.it = it;
        self.queue = queue;
        flow
    }

    /// Sends up to `limit` units along one augmenting path in the level
    /// graph; returns the amount actually pushed (0 if no path remains).
    fn dfs_push(&mut self, s: usize, t: usize, limit: u32, level: &[u32], it: &mut [u32]) -> u32 {
        // Iterative DFS with explicit path stack (graphs can be deep).
        let mut path = std::mem::take(&mut self.path); // arcs on the current path
        path.clear();
        let mut u = s;
        loop {
            if u == t {
                // Bottleneck along the path.
                let mut push = limit;
                for &a in &path {
                    push = push.min(self.cap[a as usize]);
                }
                for &a in &path {
                    self.cap[a as usize] -= push;
                    self.cap[(a ^ 1) as usize] += push;
                }
                self.path = path;
                return push;
            }
            let mut advanced = false;
            while (it[u] as usize) < self.arcs_of(u).len() {
                let a = self.arcs_of(u)[it[u] as usize];
                let v = self.to[a as usize] as usize;
                if self.cap[a as usize] > 0 && level[v] == level[u] + 1 {
                    path.push(a);
                    u = v;
                    advanced = true;
                    break;
                }
                it[u] += 1;
            }
            if !advanced {
                // Dead end: retreat.
                if u == s {
                    self.path = path;
                    return 0;
                }
                // dmc-lint: allow(s1) -- retreat only runs while the DFS path is non-empty (loop guard above); an empty pop is unreachable
                let a = path.pop().expect("retreat with non-empty path");
                let parent = self.to[(a ^ 1) as usize] as usize;
                // Exhausted this arc from the parent: advance its iterator.
                it[parent] += 1;
                u = parent;
            }
        }
    }

    /// Nodes reachable from `s` in the residual network (used to extract the
    /// min cut after [`FlowNetwork::max_flow`]).
    ///
    /// # Panics
    /// Panics if no flow has been solved on the current arc set (the CSR
    /// adjacency is built by `max_flow`).
    pub fn residual_reachable(&self, s: usize) -> BitSet {
        assert!(
            self.csr_valid,
            "residual_reachable requires a prior max_flow on the current arcs"
        );
        let mut seen = BitSet::new(self.num_nodes());
        seen.insert(s);
        let mut stack = vec![s as u32];
        while let Some(u) = stack.pop() {
            for &a in self.arcs_of(u as usize) {
                if self.cap[a as usize] > 0 {
                    let v = self.to[a as usize] as usize;
                    if seen.insert(v) {
                        stack.push(v as u32);
                    }
                }
            }
        }
        seen
    }
}

/// Result of a vertex min-cut computation.
#[derive(Debug, Clone)]
pub struct VertexCut {
    /// Minimum number of cuttable vertices meeting every source→sink path.
    pub size: usize,
    /// One minimum cut: the vertices whose removal disconnects.
    pub vertices: Vec<VertexId>,
}

/// Options for [`vertex_min_cut`].
#[derive(Debug, Clone, Copy)]
pub struct VertexCutOptions {
    /// May the cut pass through source vertices themselves?
    pub sources_cuttable: bool,
    /// May the cut pass through sink vertices themselves?
    pub sinks_cuttable: bool,
}

impl Default for VertexCutOptions {
    fn default() -> Self {
        VertexCutOptions {
            sources_cuttable: true,
            sinks_cuttable: false,
        }
    }
}

/// Computes a minimum vertex cut separating `sources` from `sinks` in `g`.
///
/// Returns `None` when no finite cut exists — i.e. some source→sink path
/// passes only through uncuttable vertices (in particular when a vertex is
/// both a source and a sink while marked uncuttable on either side).
///
/// * Wavefront use (paper §3.3): `sources = {x} ∪ Anc(x)`,
///   `sinks = Desc(x)`, sources cuttable, sinks not — the cut is exactly a
///   minimum schedule wavefront through `x` (including `x` itself when it
///   has descendants).
/// * Dominator use (Hong–Kung P3): `sources = I`, `sinks = V_i`, both
///   cuttable — the cut is a minimum dominator set of `V_i`.
pub fn vertex_min_cut(
    g: &Cdag,
    sources: &BitSet,
    sinks: &BitSet,
    opts: VertexCutOptions,
) -> Option<VertexCut> {
    let mut net = FlowNetwork::new(0);
    vertex_min_cut_into(g, sources, sinks, opts, &mut net)
}

/// Scratch-reusing variant of [`vertex_min_cut`]: the split network is
/// rebuilt inside `net`'s retained buffers instead of a fresh allocation.
/// Intended for batched callers solving one cut per anchor
/// ([`crate::engine::WavefrontEngine`]); results are identical to
/// [`vertex_min_cut`].
pub fn vertex_min_cut_into(
    g: &Cdag,
    sources: &BitSet,
    sinks: &BitSet,
    opts: VertexCutOptions,
    net: &mut FlowNetwork,
) -> Option<VertexCut> {
    let n = g.num_vertices();
    if sources.is_empty() || sinks.is_empty() {
        return Some(VertexCut {
            size: 0,
            vertices: Vec::new(),
        });
    }
    // Node layout: v_in = 2v, v_out = 2v + 1, super-source = 2n, sink = 2n+1.
    let (s, t) = (2 * n, 2 * n + 1);
    net.reset(2 * n + 2);
    for v in 0..n {
        let is_src = sources.contains(v);
        let is_snk = sinks.contains(v);
        let cuttable = (!is_src || opts.sources_cuttable) && (!is_snk || opts.sinks_cuttable);
        net.add_arc(2 * v, 2 * v + 1, if cuttable { 1 } else { INF });
    }
    for (u, v) in g.edges() {
        net.add_arc(2 * u.index() + 1, 2 * v.index(), INF);
    }
    for v in sources.iter() {
        net.add_arc(s, 2 * v, INF);
    }
    for v in sinks.iter() {
        net.add_arc(2 * v + 1, t, INF);
    }
    let flow = net.max_flow(s, t);
    if flow >= INF as u64 {
        return None;
    }
    // Cut vertices: split arcs saturated across the residual reachability
    // frontier (v_in reachable from s, v_out not).
    let reach = net.residual_reachable(s);
    let vertices: Vec<VertexId> = (0..n)
        .filter(|&v| reach.contains(2 * v) && !reach.contains(2 * v + 1))
        .map(|v| VertexId(v as u32))
        .collect();
    debug_assert_eq!(vertices.len() as u64, flow, "cut size must equal max flow");
    Some(VertexCut {
        size: flow as usize,
        vertices,
    })
}

/// Brute-force check that removing `cut` disconnects all `sources` from all
/// `sinks` (vertices in `cut` are deleted entirely). Test/validation helper.
pub fn is_separating_vertex_set(
    g: &Cdag,
    sources: &BitSet,
    sinks: &BitSet,
    cut: &[VertexId],
) -> bool {
    let n = g.num_vertices();
    let mut removed = BitSet::new(n);
    for &v in cut {
        removed.insert(v.index());
    }
    let mut visited = BitSet::new(n);
    let mut stack: Vec<VertexId> = Vec::new();
    for sidx in sources.iter() {
        if !removed.contains(sidx) && visited.insert(sidx) {
            stack.push(VertexId(sidx as u32));
        }
    }
    while let Some(u) = stack.pop() {
        if sinks.contains(u.index()) {
            return false;
        }
        for &w in g.successors(u) {
            if !removed.contains(w.index()) && visited.insert(w.index()) {
                stack.push(w);
            }
        }
    }
    // Also ensure no *source* that is itself a sink survives uncut.
    sources
        .iter()
        .all(|v| !sinks.contains(v) || removed.contains(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CdagBuilder;

    fn diamond() -> Cdag {
        let mut b = CdagBuilder::new();
        let a = b.add_input("a");
        let x = b.add_op("b", &[a]);
        let y = b.add_op("c", &[a]);
        let d = b.add_op("d", &[x, y]);
        b.tag_output(d);
        b.build().unwrap()
    }

    #[test]
    fn simple_max_flow() {
        // s -> a -> t and s -> b -> t, unit caps: flow 2.
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 1);
        net.add_arc(0, 2, 1);
        net.add_arc(1, 3, 1);
        net.add_arc(2, 3, 1);
        assert_eq!(net.max_flow(0, 3), 2);
    }

    #[test]
    fn bottleneck_max_flow() {
        // Two sources of capacity 3 funneled through a single cap-2 arc.
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 3);
        net.add_arc(1, 2, 2);
        net.add_arc(2, 3, 5);
        assert_eq!(net.max_flow(0, 3), 2);
    }

    #[test]
    fn flow_with_backtracking_path() {
        // Classic Dinic case requiring a residual reroute.
        let mut net = FlowNetwork::new(6);
        net.add_arc(0, 1, 1);
        net.add_arc(0, 2, 1);
        net.add_arc(1, 3, 1);
        net.add_arc(2, 3, 1);
        net.add_arc(1, 4, 1);
        net.add_arc(3, 5, 1);
        net.add_arc(4, 5, 1);
        assert_eq!(net.max_flow(0, 5), 2);
    }

    #[test]
    fn diamond_vertex_cut_is_one_at_source() {
        let g = diamond();
        // Separate a from d: cheapest is to cut a itself (sources cuttable).
        let s = BitSet::from_indices(4, [0]);
        let t = BitSet::from_indices(4, [3]);
        let cut = vertex_min_cut(&g, &s, &t, VertexCutOptions::default()).unwrap();
        assert_eq!(cut.size, 1);
        assert!(is_separating_vertex_set(&g, &s, &t, &cut.vertices));
    }

    #[test]
    fn diamond_vertex_cut_two_when_source_uncuttable() {
        let g = diamond();
        let s = BitSet::from_indices(4, [0]);
        let t = BitSet::from_indices(4, [3]);
        let opts = VertexCutOptions {
            sources_cuttable: false,
            sinks_cuttable: false,
        };
        let cut = vertex_min_cut(&g, &s, &t, opts).unwrap();
        // Must cut both middle vertices b and c.
        assert_eq!(cut.size, 2);
        assert_eq!(cut.vertices, vec![VertexId(1), VertexId(2)]);
        assert!(is_separating_vertex_set(&g, &s, &t, &cut.vertices));
    }

    #[test]
    fn unbounded_cut_reported_none() {
        let g = diamond();
        let s = BitSet::from_indices(4, [0]);
        let t = BitSet::from_indices(4, [0]); // source == sink
        let opts = VertexCutOptions {
            sources_cuttable: false,
            sinks_cuttable: false,
        };
        assert!(vertex_min_cut(&g, &s, &t, opts).is_none());
    }

    #[test]
    fn parallel_chains_cut_counts_width() {
        // k disjoint chains from k sources to k sinks: min cut = k.
        let k = 7;
        let mut b = CdagBuilder::new();
        let mut srcs = Vec::new();
        let mut snks = Vec::new();
        for i in 0..k {
            let a = b.add_input(format!("s{i}"));
            let m = b.add_op(format!("m{i}"), &[a]);
            let z = b.add_op(format!("t{i}"), &[m]);
            b.tag_output(z);
            srcs.push(a.index());
            snks.push(z.index());
        }
        let g = b.build().unwrap();
        let s = BitSet::from_indices(g.num_vertices(), srcs);
        let t = BitSet::from_indices(g.num_vertices(), snks);
        let opts = VertexCutOptions {
            sources_cuttable: false,
            sinks_cuttable: false,
        };
        let cut = vertex_min_cut(&g, &s, &t, opts).unwrap();
        assert_eq!(cut.size, k);
        assert!(is_separating_vertex_set(&g, &s, &t, &cut.vertices));
    }

    #[test]
    fn empty_sets_give_zero_cut() {
        let g = diamond();
        let e = BitSet::new(4);
        let t = BitSet::from_indices(4, [3]);
        let cut = vertex_min_cut(&g, &e, &t, VertexCutOptions::default()).unwrap();
        assert_eq!(cut.size, 0);
    }
}
