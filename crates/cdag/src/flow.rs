//! Dinic max-flow and vertex min-cuts via vertex splitting.
//!
//! The paper's Section 3.3 lower-bounds I/O by the size of a minimum
//! cardinality *wavefront*, which is a **vertex** min-cut between a vertex's
//! ancestor side and descendant side. Similarly, Hong & Kung's S-partition
//! condition P3 asks for the size of a minimum *dominator set*, again a
//! vertex cut between the CDAG inputs and a vertex set.
//!
//! Both reduce to edge max-flow by the classic vertex-splitting construction:
//! every vertex `v` becomes an arc `v_in → v_out` whose capacity is 1 if the
//! cut may pass through `v` and effectively infinite otherwise; every CDAG
//! edge `(u, v)` becomes an infinite-capacity arc `u_out → v_in`. By the
//! max-flow/min-cut theorem (Menger), the max flow equals the minimum number
//! of cuttable vertices meeting every source→sink path.

use crate::bitset::BitSet;
use crate::graph::{Cdag, VertexId};

/// Effectively-infinite arc capacity (large enough that it can never be the
/// bottleneck of a simple-path decomposition, small enough not to overflow).
const INF: u32 = u32::MAX / 4;

/// A directed flow network with residual arcs, solved by Dinic's algorithm.
///
/// Arcs are stored in pairs: arc `2k` is the forward arc and `2k+1` its
/// residual twin, so the reverse of arc `a` is `a ^ 1`.
///
/// The network is an *arena*: the arc arrays, the CSR adjacency, and the
/// Dinic scratch (level, iterator, queue, path buffers) are all retained
/// across [`FlowNetwork::reset`] calls, so batched workloads — notably the
/// per-anchor min-cuts of [`crate::engine::WavefrontEngine`] — solve
/// thousands of flows without re-allocating.
pub struct FlowNetwork {
    /// Number of nodes.
    n: usize,
    /// Target node of each arc (`to[a ^ 1]` is the source of arc `a`).
    to: Vec<u32>,
    /// Remaining capacity of each arc.
    cap: Vec<u32>,
    /// CSR offsets: arcs leaving node `v` are
    /// `adj_arcs[adj_off[v]..adj_off[v + 1]]`. Built lazily by `max_flow`.
    adj_off: Vec<u32>,
    /// CSR arc index array (insertion order preserved per node).
    adj_arcs: Vec<u32>,
    /// `true` while `adj_off`/`adj_arcs` reflect the current arc set.
    csr_valid: bool,
    /// Cursor scratch for the counting-sort CSR build.
    cursor: Vec<u32>,
    /// BFS level of each node (Dinic scratch).
    level: Vec<u32>,
    /// Current-arc iterator of each node (Dinic scratch).
    it: Vec<u32>,
    /// BFS queue (Dinic scratch).
    queue: Vec<u32>,
    /// Arc stack of the current augmenting path (Dinic scratch).
    path: Vec<u32>,
    /// When `true`, [`FlowNetwork::max_flow`] uses the Even–Tarjan-style
    /// phase-saturating solver specialized for unit-capacity networks (every
    /// finite arc has capacity 1); see [`FlowNetwork::set_unit_capacity`].
    unit_capacity: bool,
}

impl FlowNetwork {
    /// Creates a network with `n` nodes and no arcs.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            n,
            to: Vec::new(),
            cap: Vec::new(),
            adj_off: Vec::new(),
            adj_arcs: Vec::new(),
            csr_valid: false,
            cursor: Vec::new(),
            level: Vec::new(),
            it: Vec::new(),
            queue: Vec::new(),
            path: Vec::new(),
            unit_capacity: false,
        }
    }

    /// Clears all arcs and re-sizes to `n` nodes, retaining every buffer's
    /// allocation. After a reset the network behaves exactly like
    /// [`FlowNetwork::new`]`(n)`.
    pub fn reset(&mut self, n: usize) {
        self.n = n;
        self.to.clear();
        self.cap.clear();
        self.csr_valid = false;
        self.unit_capacity = false;
    }

    /// Selects the max-flow strategy. With `true`, [`FlowNetwork::max_flow`]
    /// runs an Even–Tarjan-style solver that saturates each blocking flow in
    /// one continuous DFS, retiring arcs as they are used — `O(E·√V)` total
    /// on unit-capacity networks (where every *finite* arc has capacity 1,
    /// as in the vertex-split wavefront network). The solver is correct for
    /// arbitrary capacities, but the general path-at-a-time Dinic (the
    /// default, `false`) is kept for networks that are not effectively
    /// unit-capacity, such as the Hong–Kung dominator variant.
    pub fn set_unit_capacity(&mut self, on: bool) {
        self.unit_capacity = on;
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Adds a directed arc `u → v` with capacity `c`; returns the arc index.
    pub fn add_arc(&mut self, u: usize, v: usize, c: u32) -> u32 {
        debug_assert!(u < self.n && v < self.n, "arc endpoint out of range");
        let id = self.to.len() as u32;
        self.to.push(v as u32);
        self.cap.push(c);
        self.to.push(u as u32);
        self.cap.push(0);
        self.csr_valid = false;
        id
    }

    /// Builds the CSR adjacency from the arc endpoint array (counting sort;
    /// per-node arc order matches insertion order).
    fn build_csr(&mut self) {
        let n = self.n;
        self.adj_off.clear();
        self.adj_off.resize(n + 1, 0);
        for a in 0..self.to.len() {
            // Arc `a` leaves the node its twin points back to.
            let u = self.to[a ^ 1] as usize;
            self.adj_off[u + 1] += 1;
        }
        for i in 0..n {
            self.adj_off[i + 1] += self.adj_off[i];
        }
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.adj_off[..n]);
        self.adj_arcs.clear();
        self.adj_arcs.resize(self.to.len(), 0);
        for a in 0..self.to.len() {
            let u = self.to[a ^ 1] as usize;
            self.adj_arcs[self.cursor[u] as usize] = a as u32;
            self.cursor[u] += 1;
        }
        self.csr_valid = true;
    }

    /// Arcs leaving node `u` (requires a built CSR).
    #[inline]
    fn arcs_of(&self, u: usize) -> &[u32] {
        &self.adj_arcs[self.adj_off[u] as usize..self.adj_off[u + 1] as usize]
    }

    /// Computes the maximum `s → t` flow (Dinic's algorithm). Capacities are
    /// consumed in place; [`FlowNetwork::reset`] before reusing the arena
    /// for another flow problem.
    pub fn max_flow(&mut self, s: usize, t: usize) -> u64 {
        assert_ne!(s, t, "source and sink must differ");
        if !self.csr_valid {
            self.build_csr();
        }
        let n = self.n;
        let mut flow = 0u64;
        let mut level = std::mem::take(&mut self.level);
        let mut it = std::mem::take(&mut self.it);
        let mut queue = std::mem::take(&mut self.queue);
        level.resize(n, 0);
        it.resize(n, 0);
        loop {
            // BFS to build the level graph.
            level.fill(u32::MAX);
            level[s] = 0;
            queue.clear();
            queue.push(s as u32);
            let mut head = 0;
            while head < queue.len() {
                let u = queue[head] as usize;
                head += 1;
                // Nodes at or beyond the sink's level cannot lie on a
                // shortest augmenting path; once `t` is labeled, the rest of
                // its level (and everything deeper) needs no expansion.
                if level[u] >= level[t] {
                    break;
                }
                for &a in self.arcs_of(u) {
                    let v = self.to[a as usize];
                    if self.cap[a as usize] > 0 && level[v as usize] == u32::MAX {
                        level[v as usize] = level[u] + 1;
                        queue.push(v);
                    }
                }
            }
            if level[t] == u32::MAX {
                break;
            }
            it.fill(0);
            if self.unit_capacity {
                // Phase-saturating blocking flow: one continuous DFS per
                // phase, arcs retired as they saturate.
                flow += self.blocking_flow_unit(s, t, &level, &mut it);
            } else {
                // Blocking flow via path-at-a-time iterative DFS.
                loop {
                    let pushed = self.dfs_push(s, t, u32::MAX, &level, &mut it);
                    if pushed == 0 {
                        break;
                    }
                    flow += pushed as u64;
                }
            }
        }
        self.level = level;
        self.it = it;
        self.queue = queue;
        flow
    }

    /// Saturates the current level graph in a single continuous DFS
    /// (Even–Tarjan unit-capacity style): after each augmentation the search
    /// backs up only to the tail of the shallowest saturated arc instead of
    /// restarting from `s`, and current-arc iterators retire every arc the
    /// moment it is exhausted. On unit-capacity networks every finite-cap
    /// augmentation removes its whole path from the level graph, giving the
    /// `O(E)` -per-phase / `O(E·√V)` total bound. Returns the flow pushed in
    /// this phase.
    fn blocking_flow_unit(&mut self, s: usize, t: usize, level: &[u32], it: &mut [u32]) -> u64 {
        let mut path = std::mem::take(&mut self.path);
        path.clear();
        let mut flow = 0u64;
        let mut u = s;
        loop {
            if u == t {
                // Bottleneck along the path (1 unless the path is all-INF,
                // which signals an unbounded cut to the caller).
                let mut push = u32::MAX;
                for &a in &path {
                    push = push.min(self.cap[a as usize]);
                }
                for &a in &path {
                    self.cap[a as usize] -= push;
                    self.cap[(a ^ 1) as usize] += push;
                }
                flow += push as u64;
                // Back up to just below the shallowest saturated arc; its
                // tail's current-arc check will skip the dead arc.
                let mut keep = 0;
                while keep < path.len() && self.cap[path[keep] as usize] > 0 {
                    keep += 1;
                }
                path.truncate(keep);
                u = path.last().map_or(s, |&a| self.to[a as usize] as usize);
                continue;
            }
            let mut advanced = false;
            while (it[u] as usize) < self.arcs_of(u).len() {
                let a = self.arcs_of(u)[it[u] as usize];
                let v = self.to[a as usize] as usize;
                if self.cap[a as usize] > 0 && level[v] == level[u] + 1 {
                    path.push(a);
                    u = v;
                    advanced = true;
                    break;
                }
                it[u] += 1;
            }
            if !advanced {
                if u == s {
                    self.path = path;
                    return flow;
                }
                // dmc-lint: allow(s1) -- retreat only runs while the DFS path is non-empty (u != s above); an empty pop is unreachable
                let a = path.pop().expect("retreat with non-empty path");
                let parent = self.to[(a ^ 1) as usize] as usize;
                it[parent] += 1;
                u = parent;
            }
        }
    }

    /// Sends up to `limit` units along one augmenting path in the level
    /// graph; returns the amount actually pushed (0 if no path remains).
    fn dfs_push(&mut self, s: usize, t: usize, limit: u32, level: &[u32], it: &mut [u32]) -> u32 {
        // Iterative DFS with explicit path stack (graphs can be deep).
        let mut path = std::mem::take(&mut self.path); // arcs on the current path
        path.clear();
        let mut u = s;
        loop {
            if u == t {
                // Bottleneck along the path.
                let mut push = limit;
                for &a in &path {
                    push = push.min(self.cap[a as usize]);
                }
                for &a in &path {
                    self.cap[a as usize] -= push;
                    self.cap[(a ^ 1) as usize] += push;
                }
                self.path = path;
                return push;
            }
            let mut advanced = false;
            while (it[u] as usize) < self.arcs_of(u).len() {
                let a = self.arcs_of(u)[it[u] as usize];
                let v = self.to[a as usize] as usize;
                if self.cap[a as usize] > 0 && level[v] == level[u] + 1 {
                    path.push(a);
                    u = v;
                    advanced = true;
                    break;
                }
                it[u] += 1;
            }
            if !advanced {
                // Dead end: retreat.
                if u == s {
                    self.path = path;
                    return 0;
                }
                // dmc-lint: allow(s1) -- retreat only runs while the DFS path is non-empty (loop guard above); an empty pop is unreachable
                let a = path.pop().expect("retreat with non-empty path");
                let parent = self.to[(a ^ 1) as usize] as usize;
                // Exhausted this arc from the parent: advance its iterator.
                it[parent] += 1;
                u = parent;
            }
        }
    }

    /// Nodes reachable from `s` in the residual network (used to extract the
    /// min cut after [`FlowNetwork::max_flow`]).
    ///
    /// # Panics
    /// Panics if no flow has been solved on the current arc set (the CSR
    /// adjacency is built by `max_flow`).
    pub fn residual_reachable(&self, s: usize) -> BitSet {
        let mut seen = BitSet::new(self.num_nodes());
        let mut stack = Vec::new();
        self.residual_reachable_into(s, &mut seen, &mut stack);
        seen
    }

    /// Scratch-reusing [`FlowNetwork::residual_reachable`]: clears and fills
    /// `seen` (whose capacity must be `num_nodes()`), reusing `stack`.
    pub fn residual_reachable_into(&self, s: usize, seen: &mut BitSet, stack: &mut Vec<u32>) {
        assert!(
            self.csr_valid,
            "residual_reachable requires a prior max_flow on the current arcs"
        );
        assert_eq!(
            seen.capacity(),
            self.num_nodes(),
            "residual scratch bitset must be sized to the node count"
        );
        seen.clear();
        stack.clear();
        seen.insert(s);
        stack.push(s as u32);
        while let Some(u) = stack.pop() {
            for &a in self.arcs_of(u as usize) {
                if self.cap[a as usize] > 0 {
                    let v = self.to[a as usize] as usize;
                    if seen.insert(v) {
                        stack.push(v as u32);
                    }
                }
            }
        }
    }
}

/// Result of a vertex min-cut computation.
#[derive(Debug, Clone)]
pub struct VertexCut {
    /// Minimum number of cuttable vertices meeting every source→sink path.
    pub size: usize,
    /// One minimum cut: the vertices whose removal disconnects.
    pub vertices: Vec<VertexId>,
}

/// Options for [`vertex_min_cut`].
#[derive(Debug, Clone, Copy)]
pub struct VertexCutOptions {
    /// May the cut pass through source vertices themselves?
    pub sources_cuttable: bool,
    /// May the cut pass through sink vertices themselves?
    pub sinks_cuttable: bool,
}

impl Default for VertexCutOptions {
    fn default() -> Self {
        VertexCutOptions {
            sources_cuttable: true,
            sinks_cuttable: false,
        }
    }
}

/// Computes a minimum vertex cut separating `sources` from `sinks` in `g`.
///
/// Returns `None` when no finite cut exists — i.e. some source→sink path
/// passes only through uncuttable vertices (in particular when a vertex is
/// both a source and a sink while marked uncuttable on either side).
///
/// * Wavefront use (paper §3.3): `sources = {x} ∪ Anc(x)`,
///   `sinks = Desc(x)`, sources cuttable, sinks not — the cut is exactly a
///   minimum schedule wavefront through `x` (including `x` itself when it
///   has descendants).
/// * Dominator use (Hong–Kung P3): `sources = I`, `sinks = V_i`, both
///   cuttable — the cut is a minimum dominator set of `V_i`.
pub fn vertex_min_cut(
    g: &Cdag,
    sources: &BitSet,
    sinks: &BitSet,
    opts: VertexCutOptions,
) -> Option<VertexCut> {
    let mut net = FlowNetwork::new(0);
    vertex_min_cut_into(g, sources, sinks, opts, &mut net)
}

/// Scratch-reusing variant of [`vertex_min_cut`]: the split network is
/// rebuilt inside `net`'s retained buffers instead of a fresh allocation.
/// Intended for batched callers solving one cut per anchor
/// ([`crate::engine::WavefrontEngine`]); results are identical to
/// [`vertex_min_cut`].
pub fn vertex_min_cut_into(
    g: &Cdag,
    sources: &BitSet,
    sinks: &BitSet,
    opts: VertexCutOptions,
    net: &mut FlowNetwork,
) -> Option<VertexCut> {
    let n = g.num_vertices();
    if sources.is_empty() || sinks.is_empty() {
        return Some(VertexCut {
            size: 0,
            vertices: Vec::new(),
        });
    }
    // Node layout: v_in = 2v, v_out = 2v + 1, super-source = 2n, sink = 2n+1.
    let (s, t) = (2 * n, 2 * n + 1);
    net.reset(2 * n + 2);
    // Every finite arc below has capacity 1, so the Even–Tarjan solver
    // applies; the Hong–Kung dominator variant (both sides cuttable) keeps
    // the general path-at-a-time Dinic.
    net.set_unit_capacity(!(opts.sources_cuttable && opts.sinks_cuttable));
    for v in 0..n {
        let is_src = sources.contains(v);
        let is_snk = sinks.contains(v);
        let cuttable = (!is_src || opts.sources_cuttable) && (!is_snk || opts.sinks_cuttable);
        net.add_arc(2 * v, 2 * v + 1, if cuttable { 1 } else { INF });
    }
    for (u, v) in g.edges() {
        net.add_arc(2 * u.index() + 1, 2 * v.index(), INF);
    }
    for v in sources.iter() {
        net.add_arc(s, 2 * v, INF);
    }
    for v in sinks.iter() {
        net.add_arc(2 * v + 1, t, INF);
    }
    let flow = net.max_flow(s, t);
    if flow >= INF as u64 {
        return None;
    }
    // Cut vertices: split arcs saturated across the residual reachability
    // frontier (v_in reachable from s, v_out not).
    let reach = net.residual_reachable(s);
    let vertices: Vec<VertexId> = (0..n)
        .filter(|&v| reach.contains(2 * v) && !reach.contains(2 * v + 1))
        .map(|v| VertexId(v as u32))
        .collect();
    debug_assert_eq!(vertices.len() as u64, flow, "cut size must equal max flow");
    Some(VertexCut {
        size: flow as usize,
        vertices,
    })
}

/// Warm-started per-anchor wavefront cuts over a fixed CDAG.
///
/// [`vertex_min_cut_into`] rebuilds the whole split network — arcs, CSR
/// adjacency, and flow — for every anchor, and every BFS phase of its solve
/// walks the *entire* network, including the deep interior of the source
/// and sink regions where the cut can never pass. `WarmCut` removes both
/// costs. The arc *topology* depends only on the graph, so the network is
/// built **once**; per anchor, the configuration is expressed through three
/// vertex roles ([`crate::reach::BatchReach`] computes them word-parallel):
///
/// * **supply** — frontier sources (a successor leaves the source side):
///   their `s → v_in` arcs open at INF. Supplying only the frontier is
///   flow-equivalent to supplying every source, because every source→sink
///   path last leaves the source side at a frontier vertex.
/// * **drain** — frontier sinks (a predecessor is not a sink): their split
///   and `v_out → t` arcs open at INF. The first sink on any path is a
///   frontier sink, and sinks are uncuttable, so paths never need to pass
///   it.
/// * **blocked** — interior sources and sinks: their split arcs close to 0.
///   The canonical minimal cut never passes through them (any path through
///   an interior source also crosses a frontier source that the cut must
///   contain instead), so removing them leaves both the min-cut value and
///   the canonical witness unchanged while every BFS phase, residual scan,
///   and augmenting walk stays inside the *active* region around the cut.
///
/// Per anchor the solver then:
///
/// 1. diffs the new role sets against the previous anchor's with word-wide
///    XOR scans ([`BitSet::xor_blocks`]),
/// 2. retargets the few affected arc capacities — where a capacity drops
///    below its current flow, the excess units are cancelled by walking the
///    flow decomposition back to the super-source and forward to the super-
///    sink one unit at a time —
/// 3. re-augments the retained flow to a new maximum instead of solving
///    from scratch.
///
/// The reported cut is extracted from residual reachability, which yields
/// the canonical (inclusion-minimal, source-side) minimum cut — invariant
/// across *all* maximum flows of a network. Warm-start history therefore
/// cannot leak into results: every call returns exactly what
/// [`vertex_min_cut`] returns for the same source/sink sets, and debug
/// builds assert that against a from-scratch full-network solve.
///
/// The capacity configuration is fixed to the paper's §3.3 wavefront shape:
/// sources cuttable, sinks not (i.e. [`VertexCutOptions::default`]).
pub struct WarmCut {
    /// The split network; arc topology fixed at construction.
    net: FlowNetwork,
    /// `|V|` of the underlying CDAG.
    n: usize,
    /// `|E|` of the underlying CDAG (for arc-id arithmetic).
    num_edges: usize,
    /// Supply (source-frontier) set of the currently-loaded configuration.
    cur_supply: BitSet,
    /// Drain (sink-frontier) set of the currently-loaded configuration.
    cur_drain: BitSet,
    /// Blocked (interior) set of the currently-loaded configuration.
    cur_blocked: BitSet,
    /// Role scratch for [`WarmCut::min_cut`]'s side scan.
    role_supply: BitSet,
    /// Role scratch for [`WarmCut::min_cut`]'s side scan.
    role_drain: BitSet,
    /// Role scratch for [`WarmCut::min_cut`]'s side scan.
    role_blocked: BitSet,
    /// Value of the currently-held flow.
    flow: u64,
    /// `true` once a configuration has been loaded and solved.
    warm: bool,
    /// Residual-reachability scratch.
    reach: BitSet,
    /// DFS/walk scratch.
    stack: Vec<u32>,
    /// Changed-vertex scratch for the diff patcher.
    changed: Vec<u32>,
}

impl WarmCut {
    /// Builds the fixed-topology split network for `g` (all supply/drain
    /// arcs present but closed) and its CSR adjacency, once.
    pub fn new(g: &Cdag) -> Self {
        let n = g.num_vertices();
        let (s, t) = (2 * n, 2 * n + 1);
        let mut net = FlowNetwork::new(2 * n + 2);
        for v in 0..n {
            net.add_arc(2 * v, 2 * v + 1, 1);
        }
        let mut num_edges = 0usize;
        for (u, v) in g.edges() {
            net.add_arc(2 * u.index() + 1, 2 * v.index(), INF);
            num_edges += 1;
        }
        for v in 0..n {
            net.add_arc(s, 2 * v, 0);
        }
        for v in 0..n {
            net.add_arc(2 * v + 1, t, 0);
        }
        net.build_csr();
        net.set_unit_capacity(true);
        WarmCut {
            net,
            n,
            num_edges,
            cur_supply: BitSet::new(n),
            cur_drain: BitSet::new(n),
            cur_blocked: BitSet::new(n),
            role_supply: BitSet::new(n),
            role_drain: BitSet::new(n),
            role_blocked: BitSet::new(n),
            flow: 0,
            warm: false,
            reach: BitSet::new(2 * n + 2),
            stack: Vec::new(),
            changed: Vec::new(),
        }
    }

    /// Arc id of the `v_in → v_out` split arc (arcs were added in a fixed
    /// order at construction, and arc `k` of the insertion order has id
    /// `2k`).
    #[inline]
    fn split_arc(&self, v: usize) -> usize {
        2 * v
    }

    /// Arc id of the super-source supply arc `s → v_in`.
    #[inline]
    fn src_arc(&self, v: usize) -> usize {
        2 * (self.n + self.num_edges + v)
    }

    /// Arc id of the super-sink drain arc `v_out → t`.
    #[inline]
    fn snk_arc(&self, v: usize) -> usize {
        2 * (2 * self.n + self.num_edges + v)
    }

    /// Computes the minimum wavefront-configuration vertex cut separating
    /// `sources` from `sinks` (sources cuttable, sinks not), warm-starting
    /// from the previously solved configuration when one is loaded.
    ///
    /// Returns `None` when no finite cut exists (a vertex is both source
    /// and sink). Results are identical to
    /// [`vertex_min_cut`]`(g, sources, sinks, VertexCutOptions::default())`.
    ///
    /// # Panics
    /// Panics if `g` or the set capacities disagree with the graph this
    /// solver was built for.
    pub fn min_cut(&mut self, g: &Cdag, sources: &BitSet, sinks: &BitSet) -> Option<VertexCut> {
        assert_eq!(
            g.num_vertices(),
            self.n,
            "WarmCut used with a different graph"
        );
        assert_eq!(sources.capacity(), self.n, "source set capacity mismatch");
        assert_eq!(sinks.capacity(), self.n, "sink set capacity mismatch");
        if sources.is_empty() || sinks.is_empty() {
            return Some(VertexCut {
                size: 0,
                vertices: Vec::new(),
            });
        }
        // An overlapping vertex is an uncuttable sink that is also supplied:
        // the full network always reports such configurations unbounded.
        if sources
            .words()
            .iter()
            .zip(sinks.words())
            .any(|(a, b)| a & b != 0)
        {
            return None;
        }
        // Classify each side into frontier vs interior (the word-parallel
        // batch equivalent is `BatchReach`'s role rows).
        let mut supply = std::mem::replace(&mut self.role_supply, BitSet::new(0));
        let mut drain = std::mem::replace(&mut self.role_drain, BitSet::new(0));
        let mut blocked = std::mem::replace(&mut self.role_blocked, BitSet::new(0));
        supply.clear();
        drain.clear();
        blocked.clear();
        for v in sources.iter() {
            let frontier = g
                .successors(VertexId(v as u32))
                .iter()
                .any(|s| !sources.contains(s.index()));
            if frontier {
                supply.insert(v);
            } else {
                blocked.insert(v);
            }
        }
        for v in sinks.iter() {
            let frontier = g
                .predecessors(VertexId(v as u32))
                .iter()
                .any(|p| !sinks.contains(p.index()));
            if frontier {
                drain.insert(v);
            } else {
                blocked.insert(v);
            }
        }
        let out = self.min_cut_roles(&supply, &drain, &blocked);
        self.role_supply = supply;
        self.role_drain = drain;
        self.role_blocked = blocked;
        #[cfg(debug_assertions)]
        {
            // Cross-check the warm frontier-restricted solve against a
            // from-scratch full-network one: the canonical cut must be
            // bit-identical.
            let fresh = vertex_min_cut(g, sources, sinks, VertexCutOptions::default());
            match (&out, &fresh) {
                (Some(got), Some(want)) => {
                    assert_eq!(want.size, got.size, "warm-start flow diverged");
                    assert_eq!(want.vertices, got.vertices, "warm-start witness diverged");
                }
                (None, None) => {}
                // dmc-lint: allow(s1) -- debug-only cross-check; a bounded/unbounded disagreement between the warm and fresh solvers is a solver bug worth dying loudly on
                (got, want) => panic!("warm {got:?} vs fresh {want:?}"),
            }
        }
        out
    }

    /// [`WarmCut::min_cut`] with the role sets precomputed by the caller —
    /// the engine's hot entry, fed directly from
    /// [`crate::reach::BatchReach::fill_supply`] /
    /// [`fill_drain`](crate::reach::BatchReach::fill_drain) /
    /// [`fill_blocked`](crate::reach::BatchReach::fill_blocked) columns
    /// without materializing the full source/sink sets.
    ///
    /// `supply` and `drain` must be disjoint (guaranteed whenever the
    /// underlying source and sink sets are); results are then identical to
    /// [`vertex_min_cut`] on the full sets. Returns `None` if the network
    /// is unbounded (only possible for overlapping roles).
    ///
    /// # Panics
    /// Panics if a role set's capacity disagrees with the graph this solver
    /// was built for.
    pub fn min_cut_roles(
        &mut self,
        supply: &BitSet,
        drain: &BitSet,
        blocked: &BitSet,
    ) -> Option<VertexCut> {
        assert_eq!(supply.capacity(), self.n, "supply set capacity mismatch");
        assert_eq!(drain.capacity(), self.n, "drain set capacity mismatch");
        assert_eq!(blocked.capacity(), self.n, "blocked set capacity mismatch");
        if supply.is_empty() || drain.is_empty() {
            return Some(VertexCut {
                size: 0,
                vertices: Vec::new(),
            });
        }
        let (s, t) = (2 * self.n, 2 * self.n + 1);
        let changed = if self.warm {
            self.cur_supply
                .xor_blocks(supply)
                .chain(self.cur_drain.xor_blocks(drain))
                .chain(self.cur_blocked.xor_blocks(blocked))
                .map(|(_, w)| w.count_ones() as usize)
                .sum::<usize>()
        } else {
            usize::MAX
        };
        if changed > self.n / 2 {
            // Cold (re)load: cheaper than patching when most roles changed.
            self.load_caps(supply, drain, blocked);
        } else {
            self.patch_caps(supply, drain, blocked);
        }
        self.cur_supply.clear();
        self.cur_supply.union_with(supply);
        self.cur_drain.clear();
        self.cur_drain.union_with(drain);
        self.cur_blocked.clear();
        self.cur_blocked.union_with(blocked);
        self.flow += self.net.max_flow(s, t);
        self.warm = true;
        if self.flow >= INF as u64 {
            // Unbounded: poison the warm state so the next call reloads.
            self.warm = false;
            return None;
        }
        self.net
            .residual_reachable_into(s, &mut self.reach, &mut self.stack);
        let reach = &self.reach;
        // Blocked vertices carry zero-capacity split arcs, so the residual
        // frontier trivially crosses them; they are interior to the source
        // or sink side and never part of the canonical cut. Skip them.
        let vertices: Vec<VertexId> = (0..self.n)
            .filter(|&v| {
                reach.contains(2 * v) && !reach.contains(2 * v + 1) && !blocked.contains(v)
            })
            .map(|v| VertexId(v as u32))
            .collect();
        debug_assert_eq!(
            vertices.len() as u64,
            self.flow,
            "cut size must equal max flow"
        );
        Some(VertexCut {
            size: self.flow as usize,
            vertices,
        })
    }

    /// Overwrites every arc capacity for a fresh role configuration and
    /// drops any held flow.
    fn load_caps(&mut self, supply: &BitSet, drain: &BitSet, blocked: &BitSet) {
        for v in 0..self.n {
            let sp = self.split_arc(v);
            self.net.cap[sp] = if blocked.contains(v) {
                0
            } else if drain.contains(v) {
                INF
            } else {
                1
            };
            self.net.cap[sp ^ 1] = 0;
            let sa = self.src_arc(v);
            self.net.cap[sa] = if supply.contains(v) { INF } else { 0 };
            self.net.cap[sa ^ 1] = 0;
            let ka = self.snk_arc(v);
            self.net.cap[ka] = if drain.contains(v) { INF } else { 0 };
            self.net.cap[ka ^ 1] = 0;
        }
        for k in 0..self.num_edges {
            let ea = 2 * (self.n + k);
            self.net.cap[ea] = INF;
            self.net.cap[ea ^ 1] = 0;
        }
        self.flow = 0;
    }

    /// Patches only the arcs of vertices whose role changed relative to the
    /// loaded configuration, cancelling flow where capacity shrinks.
    fn patch_caps(&mut self, supply: &BitSet, drain: &BitSet, blocked: &BitSet) {
        let mut changed = std::mem::take(&mut self.changed);
        changed.clear();
        for (i, mut w) in self
            .cur_supply
            .xor_blocks(supply)
            .chain(self.cur_drain.xor_blocks(drain))
            .chain(self.cur_blocked.xor_blocks(blocked))
        {
            while w != 0 {
                changed.push((i * 64) as u32 + w.trailing_zeros());
                w &= w - 1;
            }
        }
        changed.sort_unstable();
        changed.dedup();
        for &v in &changed {
            let v = v as usize;
            let split_cap = if blocked.contains(v) {
                0
            } else if drain.contains(v) {
                INF
            } else {
                1
            };
            self.retarget(self.split_arc(v), split_cap);
            self.retarget(self.src_arc(v), if supply.contains(v) { INF } else { 0 });
            self.retarget(self.snk_arc(v), if drain.contains(v) { INF } else { 0 });
        }
        self.changed = changed;
    }

    /// Sets arc `a`'s capacity to `new_cap`, first cancelling whatever part
    /// of the current flow exceeds the new capacity so the residual pair
    /// stays consistent (`cap[a] + flow = new_cap`, `cap[a^1] = flow`).
    fn retarget(&mut self, a: usize, new_cap: u32) {
        let f = self.net.cap[a ^ 1];
        if f > new_cap {
            self.cancel_arc(a, f - new_cap);
        }
        let f = self.net.cap[a ^ 1];
        self.net.cap[a] = new_cap - f;
    }

    /// Cancels `units` units of the flow currently crossing arc `a`, walking
    /// each unit of the flow decomposition backward from the arc's tail to
    /// the super-source and forward from its head to the super-sink.
    fn cancel_arc(&mut self, a: usize, units: u32) {
        let (s, t) = (2 * self.n, 2 * self.n + 1);
        let tail = self.net.to[a ^ 1] as usize;
        let head = self.net.to[a] as usize;
        for _ in 0..units {
            self.net.cap[a] += 1;
            self.net.cap[a ^ 1] -= 1;
            // Absorb the inflow excess at `tail` back to s: repeatedly pick
            // an incoming arc still carrying flow (an odd residual arc with
            // positive capacity) and remove one unit from it. The split
            // network is a DAG, so the walk strictly retreats and must end
            // at s by flow conservation.
            let mut u = tail;
            while u != s {
                let b = self.find_flow_arc(u, true);
                self.net.cap[b] -= 1;
                self.net.cap[b ^ 1] += 1;
                u = self.net.to[b] as usize;
            }
            // Symmetrically absorb the outflow excess at `head` forward to t.
            let mut u = head;
            while u != t {
                let b = self.find_flow_arc(u, false);
                self.net.cap[b ^ 1] -= 1;
                self.net.cap[b] += 1;
                u = self.net.to[b] as usize;
            }
            self.flow -= 1;
        }
    }

    /// Finds an arc at `u` carrying flow: with `incoming`, an odd residual
    /// arc of positive capacity (flow on the forward twin *into* `u`);
    /// otherwise an even forward arc whose twin holds flow (*out of* `u`).
    fn find_flow_arc(&self, u: usize, incoming: bool) -> usize {
        let lo = self.net.adj_off[u] as usize;
        let hi = self.net.adj_off[u + 1] as usize;
        for i in lo..hi {
            let b = self.net.adj_arcs[i] as usize;
            let carries = if incoming {
                b & 1 == 1 && self.net.cap[b] > 0
            } else {
                b & 1 == 0 && self.net.cap[b ^ 1] > 0
            };
            if carries {
                return b;
            }
        }
        // Unreachable by flow conservation: a node with excess always has a
        // flow-carrying arc in the walked direction.
        unreachable!("flow conservation violated at node {u}");
    }
}

/// Brute-force check that removing `cut` disconnects all `sources` from all
/// `sinks` (vertices in `cut` are deleted entirely). Test/validation helper.
pub fn is_separating_vertex_set(
    g: &Cdag,
    sources: &BitSet,
    sinks: &BitSet,
    cut: &[VertexId],
) -> bool {
    let n = g.num_vertices();
    let mut removed = BitSet::new(n);
    for &v in cut {
        removed.insert(v.index());
    }
    let mut visited = BitSet::new(n);
    let mut stack: Vec<VertexId> = Vec::new();
    for sidx in sources.iter() {
        if !removed.contains(sidx) && visited.insert(sidx) {
            stack.push(VertexId(sidx as u32));
        }
    }
    while let Some(u) = stack.pop() {
        if sinks.contains(u.index()) {
            return false;
        }
        for &w in g.successors(u) {
            if !removed.contains(w.index()) && visited.insert(w.index()) {
                stack.push(w);
            }
        }
    }
    // Also ensure no *source* that is itself a sink survives uncut.
    sources
        .iter()
        .all(|v| !sinks.contains(v) || removed.contains(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CdagBuilder;

    fn diamond() -> Cdag {
        let mut b = CdagBuilder::new();
        let a = b.add_input("a");
        let x = b.add_op("b", &[a]);
        let y = b.add_op("c", &[a]);
        let d = b.add_op("d", &[x, y]);
        b.tag_output(d);
        b.build().unwrap()
    }

    #[test]
    fn simple_max_flow() {
        // s -> a -> t and s -> b -> t, unit caps: flow 2.
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 1);
        net.add_arc(0, 2, 1);
        net.add_arc(1, 3, 1);
        net.add_arc(2, 3, 1);
        assert_eq!(net.max_flow(0, 3), 2);
    }

    #[test]
    fn bottleneck_max_flow() {
        // Two sources of capacity 3 funneled through a single cap-2 arc.
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 3);
        net.add_arc(1, 2, 2);
        net.add_arc(2, 3, 5);
        assert_eq!(net.max_flow(0, 3), 2);
    }

    #[test]
    fn flow_with_backtracking_path() {
        // Classic Dinic case requiring a residual reroute.
        let mut net = FlowNetwork::new(6);
        net.add_arc(0, 1, 1);
        net.add_arc(0, 2, 1);
        net.add_arc(1, 3, 1);
        net.add_arc(2, 3, 1);
        net.add_arc(1, 4, 1);
        net.add_arc(3, 5, 1);
        net.add_arc(4, 5, 1);
        assert_eq!(net.max_flow(0, 5), 2);
    }

    #[test]
    fn diamond_vertex_cut_is_one_at_source() {
        let g = diamond();
        // Separate a from d: cheapest is to cut a itself (sources cuttable).
        let s = BitSet::from_indices(4, [0]);
        let t = BitSet::from_indices(4, [3]);
        let cut = vertex_min_cut(&g, &s, &t, VertexCutOptions::default()).unwrap();
        assert_eq!(cut.size, 1);
        assert!(is_separating_vertex_set(&g, &s, &t, &cut.vertices));
    }

    #[test]
    fn diamond_vertex_cut_two_when_source_uncuttable() {
        let g = diamond();
        let s = BitSet::from_indices(4, [0]);
        let t = BitSet::from_indices(4, [3]);
        let opts = VertexCutOptions {
            sources_cuttable: false,
            sinks_cuttable: false,
        };
        let cut = vertex_min_cut(&g, &s, &t, opts).unwrap();
        // Must cut both middle vertices b and c.
        assert_eq!(cut.size, 2);
        assert_eq!(cut.vertices, vec![VertexId(1), VertexId(2)]);
        assert!(is_separating_vertex_set(&g, &s, &t, &cut.vertices));
    }

    #[test]
    fn unbounded_cut_reported_none() {
        let g = diamond();
        let s = BitSet::from_indices(4, [0]);
        let t = BitSet::from_indices(4, [0]); // source == sink
        let opts = VertexCutOptions {
            sources_cuttable: false,
            sinks_cuttable: false,
        };
        assert!(vertex_min_cut(&g, &s, &t, opts).is_none());
    }

    #[test]
    fn parallel_chains_cut_counts_width() {
        // k disjoint chains from k sources to k sinks: min cut = k.
        let k = 7;
        let mut b = CdagBuilder::new();
        let mut srcs = Vec::new();
        let mut snks = Vec::new();
        for i in 0..k {
            let a = b.add_input(format!("s{i}"));
            let m = b.add_op(format!("m{i}"), &[a]);
            let z = b.add_op(format!("t{i}"), &[m]);
            b.tag_output(z);
            srcs.push(a.index());
            snks.push(z.index());
        }
        let g = b.build().unwrap();
        let s = BitSet::from_indices(g.num_vertices(), srcs);
        let t = BitSet::from_indices(g.num_vertices(), snks);
        let opts = VertexCutOptions {
            sources_cuttable: false,
            sinks_cuttable: false,
        };
        let cut = vertex_min_cut(&g, &s, &t, opts).unwrap();
        assert_eq!(cut.size, k);
        assert!(is_separating_vertex_set(&g, &s, &t, &cut.vertices));
    }

    /// A max-flow case: node count, arc list, source, sink.
    type FlowCase = (usize, Vec<(usize, usize, u32)>, usize, usize);

    #[test]
    fn unit_solver_matches_general_on_small_nets() {
        // Same arc lists solved by both strategies must agree on the value.
        let cases: Vec<FlowCase> = vec![
            (4, vec![(0, 1, 1), (0, 2, 1), (1, 3, 1), (2, 3, 1)], 0, 3),
            (4, vec![(0, 1, 3), (1, 2, 2), (2, 3, 5)], 0, 3),
            (
                6,
                vec![
                    (0, 1, 1),
                    (0, 2, 1),
                    (1, 3, 1),
                    (2, 3, 1),
                    (1, 4, 1),
                    (3, 5, 1),
                    (4, 5, 1),
                ],
                0,
                5,
            ),
        ];
        for (n, arcs, s, t) in cases {
            let mut general = FlowNetwork::new(n);
            let mut unit = FlowNetwork::new(n);
            unit.set_unit_capacity(true);
            for &(u, v, c) in &arcs {
                general.add_arc(u, v, c);
                unit.add_arc(u, v, c);
            }
            assert_eq!(general.max_flow(s, t), unit.max_flow(s, t), "{arcs:?}");
        }
    }

    #[test]
    fn warm_cut_matches_fresh_over_anchor_sequence() {
        // Sweep every vertex of the diamond as an anchor, twice (the second
        // pass exercises warm transitions back to earlier configurations).
        let g = diamond();
        let n = g.num_vertices();
        let mut warm = WarmCut::new(&g);
        let order = crate::topo::topological_order(&g);
        let mut src = BitSet::new(n);
        let mut snk = BitSet::new(n);
        let mut stack = Vec::new();
        for _ in 0..2 {
            for &x in &order {
                crate::reach::ancestors_into(&g, x, &mut src, &mut stack);
                src.insert(x.index());
                crate::reach::descendants_into(&g, x, &mut snk, &mut stack);
                let got = warm.min_cut(&g, &src, &snk).unwrap();
                let want = vertex_min_cut(&g, &src, &snk, VertexCutOptions::default()).unwrap();
                assert_eq!(got.size, want.size, "anchor {x}");
                assert_eq!(got.vertices, want.vertices, "anchor {x}");
            }
        }
    }

    #[test]
    fn warm_cut_unbounded_reported_none_and_recovers() {
        let g = diamond();
        let mut warm = WarmCut::new(&g);
        let both = BitSet::from_indices(4, [1]);
        // Vertex 1 as both source and sink: sinks are uncuttable, so the
        // s → 1_in → 1_out → t path is all-INF.
        assert!(warm.min_cut(&g, &both, &both).is_none());
        // The solver recovers with a fresh load afterwards.
        let s = BitSet::from_indices(4, [0]);
        let t = BitSet::from_indices(4, [3]);
        let cut = warm.min_cut(&g, &s, &t).unwrap();
        assert_eq!(cut.size, 1);
    }

    #[test]
    fn empty_sets_give_zero_cut() {
        let g = diamond();
        let e = BitSet::new(4);
        let t = BitSet::from_indices(4, [3]);
        let cut = vertex_min_cut(&g, &e, &t, VertexCutOptions::default()).unwrap();
        assert_eq!(cut.size, 0);
    }
}
