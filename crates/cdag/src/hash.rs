//! Deterministic content hashing for CDAGs and other canonical renders.
//!
//! The serving layer keys its result cache on *content*: two requests
//! that upload the same graph (possibly with different comments or
//! whitespace in the text form) must map to the same cache slot. The
//! workspace's determinism contract rules out `DefaultHasher` (its
//! per-process seed makes hashes unstable across runs — lint rule D1's
//! spirit), so this module hand-rolls the 64-bit FNV-1a hash: tiny,
//! dependency-free, and byte-for-byte stable across processes,
//! platforms, and releases.
//!
//! [`Cdag::content_hash`](crate::Cdag::content_hash) is the graph entry
//! point: it hashes the canonical [`textio`](crate::textio) render, so
//! any two graphs with the same vertices, tags, labels, and edge lists
//! hash equal no matter how their text form was formatted.

/// The FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes `bytes` with 64-bit FNV-1a.
///
/// The function is pure and process-independent: the same byte string
/// hashes to the same value forever, which is what makes it usable as a
/// content-addressed cache key (unlike `std`'s `DefaultHasher`, which is
/// randomly seeded per process).
///
/// ```
/// use dmc_cdag::hash::fnv1a_64;
///
/// assert_eq!(fnv1a_64(b""), 0xcbf29ce484222325);
/// assert_eq!(fnv1a_64(b"a"), 0xaf63dc4c8601ec8c);
/// assert_ne!(fnv1a_64(b"ab"), fnv1a_64(b"ba"));
/// ```
#[must_use]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn stable_across_calls_and_sensitive_to_content() {
        let a = fnv1a_64(b"cdag 3");
        assert_eq!(a, fnv1a_64(b"cdag 3"));
        assert_ne!(a, fnv1a_64(b"cdag 4"));
    }
}
