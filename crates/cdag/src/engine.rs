//! Parallel batched wavefront engine — `w^max` at production scale.
//!
//! Lemma 2 of the paper (§3.3) needs `w^max = max_x |W^min(x)|`, which is
//! one vertex min-cut per anchor `x`. The naive loop solves `|V|`
//! independent Dinic max-flows, each rebuilding the `2n + 2`-node split
//! network and re-deriving the ancestor/descendant bitsets from scratch.
//! Those flows share no state, so the problem is embarrassingly parallel —
//! but a useful engine has to get three things right:
//!
//! 1. **Arena reuse.** Each worker owns one [`FlowNetwork`] arena plus
//!    reachability scratch (`AnchorScratch`); per-anchor work allocates
//!    nothing beyond the witness cut (see [`FlowNetwork::reset`]).
//! 2. **Deterministic merge.** Workers race on a shared anchor queue, but
//!    the result is merged by `(cut size, anchor position)` — exactly the
//!    tie-break of the serial baseline's `max_by_key` (last maximum wins) —
//!    so the engine returns *bit-identical* results at any thread count.
//! 3. **Best-so-far pruning.** Anchors are scheduled by a cheap per-depth
//!    *level-cut width* estimate (an upper bound on `|W^min(x)|`, see
//!    [`WavefrontEngine::anchor_estimate`]); an anchor whose estimate is
//!    strictly below the best completed cut can neither beat nor tie it and
//!    is skipped without touching the flow network. Because only
//!    provably-dominated anchors are skipped, pruning preserves both the
//!    maximum and the deterministic tie-break.
//!
//! The engine also hosts the adaptive sampling mode
//! ([`WavefrontEngine::run_adaptive`]): a per-level coarse pass followed by
//! exhaustive refinement of the depth neighbourhood of the best anchor.

use crate::bitset::BitSet;
use crate::cut::MinWavefront;
use crate::flow::{vertex_min_cut_into, FlowNetwork, VertexCut, VertexCutOptions};
use crate::graph::{Cdag, VertexId};
use crate::reach::{ancestors_into, descendants_into};
use crate::topo::depths;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Result of one engine batch: the winning wavefront plus work accounting.
#[derive(Debug, Clone)]
pub struct EngineRun {
    /// The maximum minimum-wavefront over the batch (`None` for an empty
    /// anchor set). Identical — size, anchor, and witness cut — to the
    /// serial [`crate::cut::max_min_wavefront`] at any thread count.
    pub best: Option<MinWavefront>,
    /// Anchors handed to the engine (adaptive mode: both phases).
    pub anchors_considered: usize,
    /// Max-flows actually solved; the difference to `anchors_considered`
    /// is the number of anchors eliminated by best-so-far pruning. Unlike
    /// `best`, this diagnostic can vary slightly with thread timing: a
    /// worker may start a borderline anchor before another worker
    /// publishes the best-so-far that would have pruned it.
    pub anchors_evaluated: usize,
}

/// Per-worker scratch: one flow arena plus reachability buffers, reused
/// across every anchor the worker processes.
struct AnchorScratch {
    net: FlowNetwork,
    sources: BitSet,
    sinks: BitSet,
    stack: Vec<VertexId>,
}

impl AnchorScratch {
    fn new(n: usize) -> Self {
        AnchorScratch {
            net: FlowNetwork::new(0),
            sources: BitSet::new(n),
            sinks: BitSet::new(n),
            stack: Vec::new(),
        }
    }

    /// [`crate::cut::min_wavefront`] without the per-call allocations.
    fn min_wavefront(&mut self, g: &Cdag, x: VertexId) -> MinWavefront {
        ancestors_into(g, x, &mut self.sources, &mut self.stack);
        self.sources.insert(x.index());
        descendants_into(g, x, &mut self.sinks, &mut self.stack);
        if self.sinks.is_empty() {
            return MinWavefront {
                anchor: x,
                size: 0,
                cut: VertexCut {
                    size: 0,
                    vertices: Vec::new(),
                },
            };
        }
        let cut = vertex_min_cut_into(
            g,
            &self.sources,
            &self.sinks,
            VertexCutOptions {
                sources_cuttable: true,
                sinks_cuttable: false,
            },
            &mut self.net,
        )
        // dmc-lint: allow(s1) -- same invariant as cut.rs: all source vertices cuttable, so the anchored min cut exists; pinned by engine-vs-serial tests
        .expect("cut always exists when all source vertices are cuttable");
        MinWavefront {
            anchor: x,
            size: cut.size,
            cut,
        }
    }
}

/// Batched, multi-threaded `max_x |W^min(x)|` solver over a fixed CDAG.
///
/// Construction precomputes the depth levels and the per-level pruning
/// estimates once (`O(|V| + |E|)`); each [`WavefrontEngine::run`] then fans
/// the anchor batch out over scoped worker threads.
///
/// ```
/// use dmc_cdag::builder::CdagBuilder;
/// use dmc_cdag::engine::WavefrontEngine;
///
/// let mut b = CdagBuilder::new();
/// let a = b.add_input("a");
/// let x = b.add_op("x", &[a]);
/// let y = b.add_op("y", &[a]);
/// let d = b.add_op("d", &[x, y]);
/// b.tag_output(d);
/// let g = b.build().unwrap();
///
/// let anchors: Vec<_> = g.vertices().collect();
/// let parallel = WavefrontEngine::new(&g).with_threads(4).run(&anchors);
/// let serial = WavefrontEngine::new(&g).with_threads(1).run(&anchors);
/// // The winning wavefront is identical at any worker count.
/// assert_eq!(
///     parallel.best.as_ref().unwrap().size,
///     serial.best.as_ref().unwrap().size,
/// );
/// assert_eq!(parallel.anchors_considered, 4);
/// ```
pub struct WavefrontEngine<'g> {
    g: &'g Cdag,
    threads: usize,
    depth: Vec<u32>,
    /// `level_cut_width[d]` = size of the wavefront of the depth-`d` level
    /// cut — an upper bound on `|W^min(x)|` for every anchor at depth `d`.
    level_cut_width: Vec<usize>,
}

impl<'g> WavefrontEngine<'g> {
    /// Builds an engine for `g` with automatic thread count
    /// (`std::thread::available_parallelism`).
    pub fn new(g: &'g Cdag) -> Self {
        let depth = depths(g);
        let max_d = depth.iter().copied().max().unwrap_or(0) as usize;
        // Difference array over depth: a vertex `v` with successors is live
        // across every level cut `d` with `depth(v) <= d < max depth over
        // successors(v)`.
        let mut diff = vec![0i64; max_d + 2];
        for v in g.vertices() {
            let hi = g
                .successors(v)
                .iter()
                .map(|s| depth[s.index()] as usize)
                .max();
            if let Some(hi) = hi {
                diff[depth[v.index()] as usize] += 1;
                diff[hi] -= 1;
            }
        }
        let mut level_cut_width = vec![0usize; max_d + 1];
        let mut acc = 0i64;
        for (d, w) in level_cut_width.iter_mut().enumerate() {
            acc += diff[d];
            *w = acc as usize;
        }
        WavefrontEngine {
            g,
            threads: 0,
            depth,
            level_cut_width,
        }
    }

    /// Sets the worker-thread count; `0` selects
    /// `std::thread::available_parallelism`.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The resolved worker count for a batch of `batch` anchors.
    fn resolved_threads(&self, batch: usize) -> usize {
        let auto = || {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        let t = if self.threads == 0 {
            auto()
        } else {
            self.threads
        };
        t.clamp(1, batch.max(1))
    }

    /// Cheap upper bound on `|W^min(x)|`: the wavefront size of the *level
    /// cut* at `depth(x)` (`S = {v : depth(v) ≤ depth(x)}`). That cut is
    /// convex, its `S` side contains `{x} ∪ Anc(x)`, its `T` side contains
    /// `Desc(x)`, and none of its wavefront vertices lie in `Desc(x)` — so
    /// its wavefront is a valid (cuttable) separating set for the anchored
    /// min-cut problem, hence an upper bound on the min cut.
    pub fn anchor_estimate(&self, x: VertexId) -> usize {
        self.level_cut_width[self.depth[x.index()] as usize]
    }

    /// Computes `max_x |W^min(x)|` over `anchors` — the parallel, pruned
    /// equivalent of [`crate::cut::max_min_wavefront`]. Results (size,
    /// winning anchor, witness cut) are identical to the serial baseline at
    /// any thread count.
    pub fn run(&self, anchors: &[VertexId]) -> EngineRun {
        self.run_with_floor(anchors, 0)
    }

    /// [`WavefrontEngine::run`] with pruning pre-seeded at `floor`: anchors
    /// whose estimate is strictly below `floor` are skipped outright. Used
    /// by the adaptive refinement phase, whose coarse pass has already
    /// proved a cut of size `floor`; the caller must treat any returned
    /// `best` of size `<= floor` as dominated by that earlier result.
    fn run_with_floor(&self, anchors: &[VertexId], floor: usize) -> EngineRun {
        if anchors.is_empty() {
            return EngineRun {
                best: None,
                anchors_considered: 0,
                anchors_evaluated: 0,
            };
        }
        // Schedule positions largest-estimate-first so the global best
        // rises early and pruning bites; the sort is stable, and the merge
        // below is order-independent anyway.
        let mut sched: Vec<u32> = (0..anchors.len() as u32).collect();
        sched.sort_by_key(|&i| std::cmp::Reverse(self.anchor_estimate(anchors[i as usize])));
        let next = AtomicUsize::new(0);
        let best_size = AtomicUsize::new(floor);
        let evaluated = AtomicUsize::new(0);
        let threads = self.resolved_threads(anchors.len());
        let locals: Vec<Option<(usize, MinWavefront)>> = if threads == 1 {
            vec![self.worker(anchors, &sched, &next, &best_size, &evaluated)]
        } else {
            // dmc-lint: allow(s2) -- workers share the pruning atomic (best_size), which fan_out_indexed cannot express; the merge below is a max over unique (size, position) keys, so it is scheduling-independent, and `engine_matches_serial_on_diamond_and_lumpy` pins it
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        scope.spawn(|| self.worker(anchors, &sched, &next, &best_size, &evaluated))
                    })
                    .collect();
                handles
                    .into_iter()
                    // dmc-lint: allow(s1) -- a worker panic is a bug in the engine itself; re-raising it on the caller thread is the only sound handling
                    .map(|h| h.join().expect("wavefront worker panicked"))
                    .collect()
            })
        };
        // Deterministic merge: max by (size, anchor position). Matches the
        // serial `max_by_key`, which returns the *last* maximal element.
        let best = locals
            .into_iter()
            .flatten()
            .max_by_key(|(pos, w)| (w.size, *pos))
            .map(|(_, w)| w);
        EngineRun {
            best,
            anchors_considered: anchors.len(),
            anchors_evaluated: evaluated.load(Ordering::Relaxed),
        }
    }

    /// One worker: pull anchors off the shared queue, prune, solve, and
    /// keep the local `(position, wavefront)` maximum.
    fn worker(
        &self,
        anchors: &[VertexId],
        sched: &[u32],
        next: &AtomicUsize,
        best_size: &AtomicUsize,
        evaluated: &AtomicUsize,
    ) -> Option<(usize, MinWavefront)> {
        let mut scratch = AnchorScratch::new(self.g.num_vertices());
        let mut local: Option<(usize, MinWavefront)> = None;
        loop {
            let k = next.fetch_add(1, Ordering::Relaxed);
            if k >= sched.len() {
                break;
            }
            let pos = sched[k] as usize;
            let x = anchors[pos];
            // Best-so-far pruning: `anchor_estimate` upper-bounds the cut,
            // so a strictly smaller estimate can neither beat nor tie the
            // best completed result — skipping cannot change the argmax.
            if self.anchor_estimate(x) < best_size.load(Ordering::Relaxed) {
                continue;
            }
            let w = scratch.min_wavefront(self.g, x);
            evaluated.fetch_add(1, Ordering::Relaxed);
            best_size.fetch_max(w.size, Ordering::Relaxed);
            let better = match &local {
                None => true,
                Some((p, b)) => (w.size, pos) > (b.size, *p),
            };
            if better {
                local = Some((pos, w));
            }
        }
        local
    }

    /// One anchor per depth level (the level midpoint) — the engine-side
    /// twin of the `PerLevel` sampling strategy, and the coarse phase of
    /// [`WavefrontEngine::run_adaptive`].
    pub fn per_level_anchors(&self) -> Vec<VertexId> {
        let mut per_level: Vec<Vec<VertexId>> = vec![Vec::new(); self.level_cut_width.len()];
        for v in self.g.vertices() {
            per_level[self.depth[v.index()] as usize].push(v);
        }
        per_level
            .into_iter()
            .filter(|l| !l.is_empty())
            .map(|l| l[l.len() / 2])
            .collect()
    }

    /// Adaptive sampling: a coarse per-level pass locates the most
    /// promising depth, then *every* vertex within one depth level of the
    /// coarse winner is evaluated. Between `PerLevel` (which it dominates:
    /// the coarse phase is exactly `PerLevel`) and `All` in both cost and
    /// bound quality; the returned `best` is deterministic at any thread
    /// count (only the `anchors_evaluated` diagnostic may vary).
    pub fn run_adaptive(&self) -> EngineRun {
        let seeds = self.per_level_anchors();
        let coarse = self.run(&seeds);
        let Some(coarse_best) = coarse.best else {
            return coarse;
        };
        let mut seed_set = BitSet::new(self.g.num_vertices());
        for s in &seeds {
            seed_set.insert(s.index());
        }
        let d_star = self.depth[coarse_best.anchor.index()];
        let lo = d_star.saturating_sub(1);
        let hi = d_star + 1;
        let refine: Vec<VertexId> = self
            .g
            .vertices()
            .filter(|v| {
                let d = self.depth[v.index()];
                d >= lo && d <= hi && !seed_set.contains(v.index())
            })
            .collect();
        // Seed the refinement's pruning with the coarse winner: refinement
        // anchors whose estimate cannot beat it are already dominated.
        let fine = self.run_with_floor(&refine, coarse_best.size);
        // The refinement can only improve the bound; ties keep the coarse
        // winner (deterministic: both phases are).
        let best = match fine.best {
            Some(f) if f.size > coarse_best.size => Some(f),
            _ => Some(coarse_best),
        };
        EngineRun {
            best,
            anchors_considered: coarse.anchors_considered + fine.anchors_considered,
            anchors_evaluated: coarse.anchors_evaluated + fine.anchors_evaluated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CdagBuilder;
    use crate::cut::max_min_wavefront;
    use crate::flow::is_separating_vertex_set;
    use crate::reach::{ancestors, descendants};

    fn diamond() -> Cdag {
        let mut b = CdagBuilder::new();
        let a = b.add_input("a");
        let x = b.add_op("b", &[a]);
        let y = b.add_op("c", &[a]);
        let d = b.add_op("d", &[x, y]);
        b.tag_output(d);
        b.build().unwrap()
    }

    /// Widths 1, 3, 2, 3, 1 across five layers — uneven on purpose so the
    /// pruning estimates differ per level.
    fn lumpy() -> Cdag {
        let mut b = CdagBuilder::new();
        let s = b.add_input("s");
        let l1: Vec<_> = (0..3).map(|i| b.add_op(format!("a{i}"), &[s])).collect();
        let l2: Vec<_> = (0..2).map(|i| b.add_op(format!("b{i}"), &l1)).collect();
        let l3: Vec<_> = (0..3).map(|i| b.add_op(format!("c{i}"), &l2)).collect();
        let t = b.add_op("t", &l3);
        b.tag_output(t);
        b.build().unwrap()
    }

    fn assert_matches_serial(g: &Cdag, threads: usize) {
        let anchors: Vec<VertexId> = g.vertices().collect();
        let serial = max_min_wavefront(g, &anchors);
        let run = WavefrontEngine::new(g).with_threads(threads).run(&anchors);
        match (serial, run.best) {
            (None, None) => {}
            (Some(s), Some(e)) => {
                assert_eq!(e.size, s.size, "size @ {threads} threads");
                assert_eq!(e.anchor, s.anchor, "anchor @ {threads} threads");
                assert_eq!(
                    e.cut.vertices, s.cut.vertices,
                    "witness @ {threads} threads"
                );
            }
            (s, e) => panic!("serial {s:?} vs engine {e:?}"),
        }
    }

    #[test]
    fn engine_matches_serial_on_diamond_and_lumpy() {
        for t in [1usize, 2, 4] {
            assert_matches_serial(&diamond(), t);
            assert_matches_serial(&lumpy(), t);
        }
    }

    #[test]
    fn estimates_upper_bound_every_anchor() {
        let g = lumpy();
        let eng = WavefrontEngine::new(&g);
        for x in g.vertices() {
            let w = crate::cut::min_wavefront(&g, x);
            assert!(
                eng.anchor_estimate(x) >= w.size,
                "estimate {} < cut {} at {x}",
                eng.anchor_estimate(x),
                w.size
            );
        }
    }

    #[test]
    fn pruning_skips_dominated_anchors() {
        let g = lumpy();
        let anchors: Vec<VertexId> = g.vertices().collect();
        let run = WavefrontEngine::new(&g).with_threads(1).run(&anchors);
        assert!(run.anchors_evaluated < run.anchors_considered, "no pruning");
        assert_eq!(run.best.unwrap().size, 3);
    }

    #[test]
    fn witness_cut_separates() {
        let g = lumpy();
        let anchors: Vec<VertexId> = g.vertices().collect();
        let best = WavefrontEngine::new(&g).run(&anchors).best.unwrap();
        let mut sources = ancestors(&g, best.anchor);
        sources.insert(best.anchor.index());
        let sinks = descendants(&g, best.anchor);
        assert!(is_separating_vertex_set(
            &g,
            &sources,
            &sinks,
            &best.cut.vertices
        ));
    }

    #[test]
    fn adaptive_between_per_level_and_all() {
        let g = lumpy();
        let eng = WavefrontEngine::new(&g);
        let all: Vec<VertexId> = g.vertices().collect();
        let b_all = eng.run(&all).best.unwrap().size;
        let b_pl = eng.run(&eng.per_level_anchors()).best.unwrap().size;
        let adaptive = eng.run_adaptive();
        let b_ad = adaptive.best.unwrap().size;
        assert!(b_pl <= b_ad && b_ad <= b_all, "{b_pl} <= {b_ad} <= {b_all}");
        assert!(adaptive.anchors_considered <= all.len() + eng.per_level_anchors().len());
        // Adaptive is deterministic across thread counts.
        for t in [1usize, 2, 4] {
            let r = WavefrontEngine::new(&g).with_threads(t).run_adaptive();
            assert_eq!(r.best.unwrap().size, b_ad);
        }
    }

    #[test]
    fn empty_anchor_set_gives_none() {
        let g = diamond();
        let run = WavefrontEngine::new(&g).run(&[]);
        assert!(run.best.is_none());
        assert_eq!(run.anchors_considered, 0);
        assert_eq!(run.anchors_evaluated, 0);
    }
}
