//! Parallel batched wavefront engine — `w^max` at production scale.
//!
//! Lemma 2 of the paper (§3.3) needs `w^max = max_x |W^min(x)|`, which is
//! one vertex min-cut per anchor `x`. The naive loop solves `|V|`
//! independent Dinic max-flows, each rebuilding the `2n + 2`-node split
//! network and re-deriving the ancestor/descendant bitsets from scratch.
//! Those flows share no state, so the problem is embarrassingly parallel —
//! but a useful engine has to get four things right:
//!
//! 1. **Batched reachability.** Anchors are handed to workers in batches of
//!    up to [`BATCH_WIDTH`]; one pair of word-parallel topological sweeps
//!    ([`BatchReach`]) computes every anchor's ancestor/descendant closure
//!    at once, amortizing the `O(|V| + |E|)` traversal across the batch
//!    instead of running one DFS per anchor.
//! 2. **Warm-started flows.** Within a batch, anchors are visited in
//!    topological order, so consecutive split networks differ in only a few
//!    vertex sides. Each worker owns one [`WarmCut`] solver that patches
//!    those differences and re-augments the retained flow instead of
//!    solving from scratch (debug builds cross-check every warm solve
//!    against a fresh one).
//! 3. **Deterministic merge.** Workers race on a shared batch queue, but
//!    the result is merged by `(cut size, anchor position)` — exactly the
//!    tie-break of the serial baseline's `max_by_key` (last maximum wins) —
//!    and the per-anchor cut witness is the canonical minimal source-side
//!    cut, so the engine returns *bit-identical* results at any thread
//!    count.
//! 4. **Best-so-far pruning.** Anchors are scheduled by a cheap per-depth
//!    *level-cut width* estimate (an upper bound on `|W^min(x)|`, see
//!    [`WavefrontEngine::anchor_estimate`]); the winner is the maximum by
//!    `(cut size, anchor position)`, so an anchor with estimate `e` at
//!    position `p` can contribute at most `(e, p)` — it is skipped without
//!    touching the flow network whenever `(e, p)` is lexicographically
//!    below the best completed `(size, position)`. The position tie-break
//!    makes this bite hard on regular graphs where many anchors tie at the
//!    maximum: batches are processed highest-position-first, so one solved
//!    member of the winning tie class dominates the rest of the class. A
//!    whole batch is skipped before its reachability sweep when its
//!    `(max estimate, max position)` is dominated. Because only provably-
//!    dominated anchors are skipped, pruning preserves both the maximum and
//!    the deterministic tie-break.
//!
//! The engine also hosts the adaptive sampling mode
//! ([`WavefrontEngine::run_adaptive`]): a per-level coarse pass followed by
//! exhaustive refinement of the depth neighbourhood of the best anchor.
//!
//! [`BatchReach`]: crate::reach::BatchReach
//! [`WarmCut`]: crate::flow::WarmCut

use crate::bitset::BitSet;
use crate::cut::MinWavefront;
use crate::flow::{VertexCut, WarmCut};
use crate::graph::{Cdag, VertexId};
use crate::reach::BatchReach;
use crate::topo::{depths, topological_order};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Maximum anchors per worker batch: one `u64` lane per anchor in the
/// word-parallel reachability sweep.
pub const BATCH_WIDTH: usize = 64;

/// Packs a `(cut size, anchor position)` pair into one `u64` whose numeric
/// order is the pair's lexicographic order, so the workers' shared best can
/// live in a single atomic updated with `fetch_max`.
#[inline]
fn pack(size: usize, pos: u32) -> u64 {
    ((size as u64) << 32) | pos as u64
}

/// Result of one engine batch: the winning wavefront plus work accounting.
#[derive(Debug, Clone)]
pub struct EngineRun {
    /// The maximum minimum-wavefront over the batch (`None` for an empty
    /// anchor set). Identical — size, anchor, and witness cut — to the
    /// serial [`crate::cut::max_min_wavefront`] at any thread count.
    pub best: Option<MinWavefront>,
    /// Anchors handed to the engine (adaptive mode: both phases).
    pub anchors_considered: usize,
    /// Max-flows actually solved; the difference to `anchors_considered`
    /// is the number of anchors eliminated by best-so-far pruning. Unlike
    /// `best`, this diagnostic can vary slightly with thread timing: a
    /// worker may start a borderline anchor before another worker
    /// publishes the best-so-far that would have pruned it.
    pub anchors_evaluated: usize,
}

/// Per-worker scratch: one warm-started flow solver plus the batched
/// reachability rows, reused across every batch the worker processes.
struct AnchorScratch {
    warm: WarmCut,
    batch: BatchReach,
    supply: BitSet,
    drain: BitSet,
    blocked: BitSet,
    /// Anchor vertices of the current batch (parallel to the sweep lanes).
    xs: Vec<VertexId>,
}

impl AnchorScratch {
    fn new(g: &Cdag) -> Self {
        let n = g.num_vertices();
        AnchorScratch {
            warm: WarmCut::new(g),
            batch: BatchReach::new(),
            supply: BitSet::new(n),
            drain: BitSet::new(n),
            blocked: BitSet::new(n),
            xs: Vec::new(),
        }
    }

    /// [`crate::cut::min_wavefront`] for lane `j` of the current batch,
    /// warm-started from whatever configuration the solver last held and
    /// restricted to the frontier roles of the batch sweep.
    #[cfg_attr(not(debug_assertions), allow(unused_variables))]
    fn min_wavefront(&mut self, g: &Cdag, j: usize, x: VertexId) -> MinWavefront {
        self.batch.fill_drain(j, &mut self.drain);
        // The drain is empty exactly when the sink side is: every non-empty
        // sink side contains a successor of the anchor, whose predecessor
        // `x` is no sink — a frontier sink.
        if self.drain.is_empty() {
            return MinWavefront {
                anchor: x,
                size: 0,
                cut: VertexCut {
                    size: 0,
                    vertices: Vec::new(),
                },
            };
        }
        self.batch.fill_supply(j, &mut self.supply);
        self.batch.fill_blocked(j, &mut self.blocked);
        let cut = self
            .warm
            .min_cut_roles(&self.supply, &self.drain, &self.blocked)
            // dmc-lint: allow(s1) -- same invariant as cut.rs: all source vertices cuttable, so the anchored min cut exists; pinned by engine-vs-serial tests
            .expect("cut always exists when all source vertices are cuttable");
        #[cfg(debug_assertions)]
        {
            // Cross-check the warm frontier-restricted solve against a
            // from-scratch full-network solve of the same anchor.
            let n = g.num_vertices();
            let mut sources = BitSet::new(n);
            let mut sinks = BitSet::new(n);
            self.batch.fill_sources(j, &mut sources);
            self.batch.fill_sinks(j, &mut sinks);
            let fresh = crate::flow::vertex_min_cut(
                g,
                &sources,
                &sinks,
                crate::flow::VertexCutOptions::default(),
            );
            // dmc-lint: allow(s1) -- debug-only cross-check: the warm solve just proved this anchor's cut finite, so the fresh solve of the same sets is too
            let fresh = fresh.expect("fresh solve bounded while warm solve was");
            assert_eq!(fresh.size, cut.size, "warm-start flow diverged at {x}");
            assert_eq!(
                fresh.vertices, cut.vertices,
                "warm-start witness diverged at {x}"
            );
        }
        MinWavefront {
            anchor: x,
            size: cut.size,
            cut,
        }
    }
}

/// Batched, multi-threaded `max_x |W^min(x)|` solver over a fixed CDAG.
///
/// Construction precomputes the depth levels and the per-level pruning
/// estimates once (`O(|V| + |E|)`); each [`WavefrontEngine::run`] then fans
/// the anchor batch out over scoped worker threads.
///
/// ```
/// use dmc_cdag::builder::CdagBuilder;
/// use dmc_cdag::engine::WavefrontEngine;
///
/// let mut b = CdagBuilder::new();
/// let a = b.add_input("a");
/// let x = b.add_op("x", &[a]);
/// let y = b.add_op("y", &[a]);
/// let d = b.add_op("d", &[x, y]);
/// b.tag_output(d);
/// let g = b.build().unwrap();
///
/// let anchors: Vec<_> = g.vertices().collect();
/// let parallel = WavefrontEngine::new(&g).with_threads(4).run(&anchors);
/// let serial = WavefrontEngine::new(&g).with_threads(1).run(&anchors);
/// // The winning wavefront is identical at any worker count.
/// assert_eq!(
///     parallel.best.as_ref().unwrap().size,
///     serial.best.as_ref().unwrap().size,
/// );
/// assert_eq!(parallel.anchors_considered, 4);
/// ```
pub struct WavefrontEngine<'g> {
    g: &'g Cdag,
    threads: usize,
    depth: Vec<u32>,
    /// `level_cut_width[d]` = size of the wavefront of the depth-`d` level
    /// cut — an upper bound on `|W^min(x)|` for every anchor at depth `d`.
    level_cut_width: Vec<usize>,
    /// A topological order of `g`, shared by every worker's batched
    /// reachability sweeps.
    order: Vec<VertexId>,
    /// Inverse of `order`: `topo_pos[v]` is `v`'s position in it. Batches
    /// visit anchors in this order so consecutive warm-started split
    /// networks differ in as few vertex sides as possible.
    topo_pos: Vec<u32>,
}

impl<'g> WavefrontEngine<'g> {
    /// Builds an engine for `g` with automatic thread count
    /// (`std::thread::available_parallelism`).
    pub fn new(g: &'g Cdag) -> Self {
        let depth = depths(g);
        let max_d = depth.iter().copied().max().unwrap_or(0) as usize;
        // Difference array over depth: a vertex `v` with successors is live
        // across every level cut `d` with `depth(v) <= d < max depth over
        // successors(v)`.
        let mut diff = vec![0i64; max_d + 2];
        for v in g.vertices() {
            let hi = g
                .successors(v)
                .iter()
                .map(|s| depth[s.index()] as usize)
                .max();
            if let Some(hi) = hi {
                diff[depth[v.index()] as usize] += 1;
                diff[hi] -= 1;
            }
        }
        let mut level_cut_width = vec![0usize; max_d + 1];
        let mut acc = 0i64;
        for (d, w) in level_cut_width.iter_mut().enumerate() {
            acc += diff[d];
            *w = acc as usize;
        }
        let order = topological_order(g);
        let mut topo_pos = vec![0u32; g.num_vertices()];
        for (i, v) in order.iter().enumerate() {
            topo_pos[v.index()] = i as u32;
        }
        WavefrontEngine {
            g,
            threads: 0,
            depth,
            level_cut_width,
            order,
            topo_pos,
        }
    }

    /// Sets the worker-thread count; `0` selects
    /// `std::thread::available_parallelism`.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The resolved worker count for a batch of `batch` anchors.
    fn resolved_threads(&self, batch: usize) -> usize {
        let auto = || {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        let t = if self.threads == 0 {
            auto()
        } else {
            self.threads
        };
        t.clamp(1, batch.max(1))
    }

    /// Cheap upper bound on `|W^min(x)|`: the wavefront size of the *level
    /// cut* at `depth(x)` (`S = {v : depth(v) ≤ depth(x)}`). That cut is
    /// convex, its `S` side contains `{x} ∪ Anc(x)`, its `T` side contains
    /// `Desc(x)`, and none of its wavefront vertices lie in `Desc(x)` — so
    /// its wavefront is a valid (cuttable) separating set for the anchored
    /// min-cut problem, hence an upper bound on the min cut.
    pub fn anchor_estimate(&self, x: VertexId) -> usize {
        self.level_cut_width[self.depth[x.index()] as usize]
    }

    /// Computes `max_x |W^min(x)|` over `anchors` — the parallel, pruned
    /// equivalent of [`crate::cut::max_min_wavefront`]. Results (size,
    /// winning anchor, witness cut) are identical to the serial baseline at
    /// any thread count.
    pub fn run(&self, anchors: &[VertexId]) -> EngineRun {
        self.run_with_floor(anchors, 0)
    }

    /// [`WavefrontEngine::run`] with pruning pre-seeded at `floor`: anchors
    /// whose estimate is strictly below `floor` are skipped outright. Used
    /// by the adaptive refinement phase, whose coarse pass has already
    /// proved a cut of size `floor`; the caller must treat any returned
    /// `best` of size `<= floor` as dominated by that earlier result.
    fn run_with_floor(&self, anchors: &[VertexId], floor: usize) -> EngineRun {
        if anchors.is_empty() {
            return EngineRun {
                best: None,
                anchors_considered: 0,
                anchors_evaluated: 0,
            };
        }
        // Schedule positions largest-estimate-first so the global best
        // rises early and pruning bites; the sort is stable, and the merge
        // below is order-independent anyway. The schedule is then chunked
        // into batches of at most `BATCH_WIDTH` anchors; *within* a batch,
        // anchors are reordered by *descending* topological position — each
        // worker's warm-started solver still patches minimal side diffs
        // between consecutive anchors, and the highest-position member of a
        // tie class is solved first so its `(size, position)` immediately
        // dominates the rest of the class. Per-batch maxima let a worker
        // drop a dominated batch before paying for its reachability sweep.
        let mut sched: Vec<u32> = (0..anchors.len() as u32).collect();
        sched.sort_by_key(|&i| std::cmp::Reverse(self.anchor_estimate(anchors[i as usize])));
        let mut batches: Vec<(usize, usize, usize, u32)> = Vec::new();
        for start in (0..sched.len()).step_by(BATCH_WIDTH) {
            let end = (start + BATCH_WIDTH).min(sched.len());
            // The chunk's max estimate is its first entry's (sorted above).
            let max_est = self.anchor_estimate(anchors[sched[start] as usize]);
            let max_pos = sched[start..end].iter().copied().max().unwrap_or(0);
            sched[start..end]
                .sort_by_key(|&i| std::cmp::Reverse(self.topo_pos[anchors[i as usize].index()]));
            batches.push((start, end, max_est, max_pos));
        }
        let sched = sched; // frozen; workers only read
        let next = AtomicUsize::new(0);
        // Shared lexicographic best `(size, position)`, packed so that
        // `fetch_max` is the whole synchronization story.
        let best = AtomicU64::new(pack(floor, 0));
        let evaluated = AtomicUsize::new(0);
        let threads = self.resolved_threads(batches.len());
        let locals: Vec<Option<(usize, MinWavefront)>> = if threads == 1 {
            vec![self.worker(anchors, &sched, &batches, &next, &best, &evaluated)]
        } else {
            // dmc-lint: allow(s2) -- workers share the pruning atomic (best), which fan_out_indexed cannot express; the merge below is a max over unique (size, position) keys, so it is scheduling-independent, and `engine_matches_serial_on_diamond_and_lumpy` pins it
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        scope.spawn(|| {
                            self.worker(anchors, &sched, &batches, &next, &best, &evaluated)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    // dmc-lint: allow(s1) -- a worker panic is a bug in the engine itself; re-raising it on the caller thread is the only sound handling
                    .map(|h| h.join().expect("wavefront worker panicked"))
                    .collect()
            })
        };
        // Deterministic merge: max by (size, anchor position). Matches the
        // serial `max_by_key`, which returns the *last* maximal element.
        let best = locals
            .into_iter()
            .flatten()
            .max_by_key(|(pos, w)| (w.size, *pos))
            .map(|(_, w)| w);
        EngineRun {
            best,
            anchors_considered: anchors.len(),
            anchors_evaluated: evaluated.load(Ordering::Relaxed),
        }
    }

    /// One worker: pull anchor *batches* off the shared queue, sweep the
    /// batch's reachability closures word-parallel, then prune and solve
    /// each anchor warm-started, keeping the local `(position, wavefront)`
    /// maximum.
    fn worker(
        &self,
        anchors: &[VertexId],
        sched: &[u32],
        batches: &[(usize, usize, usize, u32)],
        next: &AtomicUsize,
        best: &AtomicU64,
        evaluated: &AtomicUsize,
    ) -> Option<(usize, MinWavefront)> {
        let mut scratch = AnchorScratch::new(self.g);
        let mut local: Option<(usize, MinWavefront)> = None;
        loop {
            let k = next.fetch_add(1, Ordering::Relaxed);
            if k >= batches.len() {
                break;
            }
            let (start, end, max_est, max_pos) = batches[k];
            // Whole-batch pruning: `(max estimate, max position)` lex-bounds
            // every anchor's contribution in the batch, so a dominated batch
            // cannot change the argmax and is dropped before its
            // reachability sweep.
            if pack(max_est, max_pos) < best.load(Ordering::Relaxed) {
                continue;
            }
            scratch.xs.clear();
            scratch
                .xs
                .extend(sched[start..end].iter().map(|&i| anchors[i as usize]));
            let xs = std::mem::take(&mut scratch.xs);
            scratch.batch.compute(self.g, &self.order, &xs);
            for (j, (&x, &i)) in xs.iter().zip(&sched[start..end]).enumerate() {
                let pos = i as usize;
                // Per-anchor best-so-far pruning: the anchor can contribute
                // at most `(estimate, position)`; if that is lexicographic-
                // ally below the best completed `(size, position)`, it can
                // neither beat nor tie-win the merge — skipping cannot
                // change the argmax.
                if pack(self.anchor_estimate(x), i) < best.load(Ordering::Relaxed) {
                    continue;
                }
                let w = scratch.min_wavefront(self.g, j, x);
                evaluated.fetch_add(1, Ordering::Relaxed);
                best.fetch_max(pack(w.size, i), Ordering::Relaxed);
                let better = match &local {
                    None => true,
                    Some((p, b)) => (w.size, pos) > (b.size, *p),
                };
                if better {
                    local = Some((pos, w));
                }
            }
            scratch.xs = xs;
        }
        local
    }

    /// One anchor per depth level (the level midpoint) — the engine-side
    /// twin of the `PerLevel` sampling strategy, and the coarse phase of
    /// [`WavefrontEngine::run_adaptive`].
    pub fn per_level_anchors(&self) -> Vec<VertexId> {
        let mut per_level: Vec<Vec<VertexId>> = vec![Vec::new(); self.level_cut_width.len()];
        for v in self.g.vertices() {
            per_level[self.depth[v.index()] as usize].push(v);
        }
        per_level
            .into_iter()
            .filter(|l| !l.is_empty())
            .map(|l| l[l.len() / 2])
            .collect()
    }

    /// Adaptive sampling: a coarse per-level pass locates the most
    /// promising depth, then *every* vertex within one depth level of the
    /// coarse winner is evaluated. Between `PerLevel` (which it dominates:
    /// the coarse phase is exactly `PerLevel`) and `All` in both cost and
    /// bound quality; the returned `best` is deterministic at any thread
    /// count (only the `anchors_evaluated` diagnostic may vary).
    pub fn run_adaptive(&self) -> EngineRun {
        let seeds = self.per_level_anchors();
        let coarse = self.run(&seeds);
        let Some(coarse_best) = coarse.best else {
            return coarse;
        };
        let mut seed_set = BitSet::new(self.g.num_vertices());
        for s in &seeds {
            seed_set.insert(s.index());
        }
        let d_star = self.depth[coarse_best.anchor.index()];
        let lo = d_star.saturating_sub(1);
        let hi = d_star + 1;
        let refine: Vec<VertexId> = self
            .g
            .vertices()
            .filter(|v| {
                let d = self.depth[v.index()];
                d >= lo && d <= hi && !seed_set.contains(v.index())
            })
            .collect();
        // Seed the refinement's pruning with the coarse winner: refinement
        // anchors whose estimate cannot beat it are already dominated.
        let fine = self.run_with_floor(&refine, coarse_best.size);
        // The refinement can only improve the bound; ties keep the coarse
        // winner (deterministic: both phases are).
        let best = match fine.best {
            Some(f) if f.size > coarse_best.size => Some(f),
            _ => Some(coarse_best),
        };
        EngineRun {
            best,
            anchors_considered: coarse.anchors_considered + fine.anchors_considered,
            anchors_evaluated: coarse.anchors_evaluated + fine.anchors_evaluated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CdagBuilder;
    use crate::cut::max_min_wavefront;
    use crate::flow::is_separating_vertex_set;
    use crate::reach::{ancestors, descendants};

    fn diamond() -> Cdag {
        let mut b = CdagBuilder::new();
        let a = b.add_input("a");
        let x = b.add_op("b", &[a]);
        let y = b.add_op("c", &[a]);
        let d = b.add_op("d", &[x, y]);
        b.tag_output(d);
        b.build().unwrap()
    }

    /// Widths 1, 3, 2, 3, 1 across five layers — uneven on purpose so the
    /// pruning estimates differ per level.
    fn lumpy() -> Cdag {
        let mut b = CdagBuilder::new();
        let s = b.add_input("s");
        let l1: Vec<_> = (0..3).map(|i| b.add_op(format!("a{i}"), &[s])).collect();
        let l2: Vec<_> = (0..2).map(|i| b.add_op(format!("b{i}"), &l1)).collect();
        let l3: Vec<_> = (0..3).map(|i| b.add_op(format!("c{i}"), &l2)).collect();
        let t = b.add_op("t", &l3);
        b.tag_output(t);
        b.build().unwrap()
    }

    fn assert_matches_serial(g: &Cdag, threads: usize) {
        let anchors: Vec<VertexId> = g.vertices().collect();
        let serial = max_min_wavefront(g, &anchors);
        let run = WavefrontEngine::new(g).with_threads(threads).run(&anchors);
        match (serial, run.best) {
            (None, None) => {}
            (Some(s), Some(e)) => {
                assert_eq!(e.size, s.size, "size @ {threads} threads");
                assert_eq!(e.anchor, s.anchor, "anchor @ {threads} threads");
                assert_eq!(
                    e.cut.vertices, s.cut.vertices,
                    "witness @ {threads} threads"
                );
            }
            (s, e) => panic!("serial {s:?} vs engine {e:?}"),
        }
    }

    #[test]
    fn engine_matches_serial_on_diamond_and_lumpy() {
        for t in [1usize, 2, 4] {
            assert_matches_serial(&diamond(), t);
            assert_matches_serial(&lumpy(), t);
        }
    }

    #[test]
    fn estimates_upper_bound_every_anchor() {
        let g = lumpy();
        let eng = WavefrontEngine::new(&g);
        for x in g.vertices() {
            let w = crate::cut::min_wavefront(&g, x);
            assert!(
                eng.anchor_estimate(x) >= w.size,
                "estimate {} < cut {} at {x}",
                eng.anchor_estimate(x),
                w.size
            );
        }
    }

    #[test]
    fn pruning_skips_dominated_anchors() {
        let g = lumpy();
        let anchors: Vec<VertexId> = g.vertices().collect();
        let run = WavefrontEngine::new(&g).with_threads(1).run(&anchors);
        assert!(run.anchors_evaluated < run.anchors_considered, "no pruning");
        assert_eq!(run.best.unwrap().size, 3);
    }

    #[test]
    fn witness_cut_separates() {
        let g = lumpy();
        let anchors: Vec<VertexId> = g.vertices().collect();
        let best = WavefrontEngine::new(&g).run(&anchors).best.unwrap();
        let mut sources = ancestors(&g, best.anchor);
        sources.insert(best.anchor.index());
        let sinks = descendants(&g, best.anchor);
        assert!(is_separating_vertex_set(
            &g,
            &sources,
            &sinks,
            &best.cut.vertices
        ));
    }

    #[test]
    fn adaptive_between_per_level_and_all() {
        let g = lumpy();
        let eng = WavefrontEngine::new(&g);
        let all: Vec<VertexId> = g.vertices().collect();
        let b_all = eng.run(&all).best.unwrap().size;
        let b_pl = eng.run(&eng.per_level_anchors()).best.unwrap().size;
        let adaptive = eng.run_adaptive();
        let b_ad = adaptive.best.unwrap().size;
        assert!(b_pl <= b_ad && b_ad <= b_all, "{b_pl} <= {b_ad} <= {b_all}");
        assert!(adaptive.anchors_considered <= all.len() + eng.per_level_anchors().len());
        // Adaptive is deterministic across thread counts.
        for t in [1usize, 2, 4] {
            let r = WavefrontEngine::new(&g).with_threads(t).run_adaptive();
            assert_eq!(r.best.unwrap().size, b_ad);
        }
    }

    #[test]
    fn empty_anchor_set_gives_none() {
        let g = diamond();
        let run = WavefrontEngine::new(&g).run(&[]);
        assert!(run.best.is_none());
        assert_eq!(run.anchors_considered, 0);
        assert_eq!(run.anchors_evaluated, 0);
    }
}
