//! # dmc-cdag — Computational DAG substrate
//!
//! This crate provides the graph substrate used throughout the `dmc`
//! workspace: the [`Cdag`] type modelling a *computational directed acyclic
//! graph* in the sense of Hong & Kung (STOC'81) and Elango et al.
//! (SPAA'14 / Inria RR-8522).
//!
//! A CDAG is a 4-tuple `C = (I, V, E, O)`:
//!
//! * `V` — vertices, each representing one computational operation (or one
//!   input value),
//! * `E ⊆ V × V` — edges representing flow of values between operations,
//! * `I ⊆ V` — the *input set* (vertices tagged as inputs; they start with
//!   a blue pebble in the pebble games),
//! * `O ⊆ V` — the *output set* (vertices that must carry a blue pebble at
//!   the end of any complete game).
//!
//! Unlike the original Hong & Kung model, the Red-Blue-White model of the
//! paper allows *flexible tagging*: a predecessor-free vertex need not be an
//! input, and a successor-free vertex need not be an output. The tags on a
//! [`Cdag`] are therefore freely assignable (see [`Cdag::retag`]) — this is
//! the basis of the paper's Theorem 3 (tagging/untagging).
//!
//! Beyond the data structure itself the crate implements the graph
//! algorithms the lower-bound machinery of `dmc-core` is built on:
//!
//! * topological orders and depth levels ([`topo`]),
//! * ancestor / descendant reachability with compact bitsets ([`reach`]),
//! * Dinic max-flow and *vertex* min-cuts via vertex splitting ([`flow`]),
//! * convex cuts and schedule wavefronts ([`cut`]),
//! * a parallel batched engine for `max_x |W^min(x)|` ([`engine`]),
//! * deterministic indexed fan-out over scoped workers ([`fanout`]),
//! * process-independent FNV-1a content hashing for cache keys
//!   ([`hash`], [`Cdag::content_hash`]),
//! * minimum dominator-set cardinalities ([`dominator`]),
//! * weakly-connected components for automatic decomposition
//!   ([`components`]),
//! * induced sub-CDAGs and quotient graphs for decomposition ([`subgraph`]),
//! * cluster contraction into annotated super-vertex DAGs for the
//!   hierarchical pipeline ([`mod@coarsen`]),
//! * Graphviz DOT export ([`dot`]).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bitset;
pub mod builder;
pub mod coarsen;
pub mod components;
pub mod cut;
pub mod dominator;
pub mod dot;
pub mod engine;
pub mod fanout;
pub mod flow;
pub mod graph;
pub mod hash;
pub mod reach;
pub mod subgraph;
pub mod textio;
pub mod topo;

pub use bitset::BitSet;
pub use builder::CdagBuilder;
pub use coarsen::{coarsen, CoarseDag};
pub use components::{weakly_connected_components, Components};
pub use cut::{ConvexCut, Wavefront};
pub use engine::{EngineRun, WavefrontEngine};
pub use graph::{Cdag, VertexId};
pub use subgraph::{InducedSubCdag, QuotientGraph};
