//! The [`Cdag`] type: an immutable CSR-encoded computational DAG with
//! input/output tags.

use crate::bitset::BitSet;
use serde::{Deserialize, Serialize};

/// Identifier of a CDAG vertex.
///
/// A thin `u32` newtype: CDAGs in this workspace routinely reach millions of
/// vertices, and 32-bit ids halve the adjacency footprint compared to
/// `usize` (see the Rust Performance Book's "Smaller Integers" guidance).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VertexId(pub u32);

impl VertexId {
    /// The vertex id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for VertexId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl std::fmt::Display for VertexId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for VertexId {
    fn from(v: u32) -> Self {
        VertexId(v)
    }
}

/// A computational DAG `C = (I, V, E, O)` in compressed sparse row form.
///
/// Both forward (successor) and reverse (predecessor) adjacency are stored
/// so ancestor and descendant traversals are equally cheap. The structure is
/// immutable after construction via [`crate::CdagBuilder`]; the only mutable
/// aspect is the input/output *tagging*, which the Red-Blue-White model
/// treats as a free label (paper, Theorem 3) — see [`Cdag::retag`].
#[derive(Clone, Serialize, Deserialize)]
pub struct Cdag {
    n: u32,
    fwd_off: Vec<u32>,
    fwd_adj: Vec<VertexId>,
    rev_off: Vec<u32>,
    rev_adj: Vec<VertexId>,
    inputs: BitSet,
    outputs: BitSet,
    labels: Vec<String>,
}

impl Cdag {
    /// Internal constructor used by the builder. `fwd`/`rev` must be
    /// consistent CSR encodings of the same acyclic edge set.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        n: u32,
        fwd_off: Vec<u32>,
        fwd_adj: Vec<VertexId>,
        rev_off: Vec<u32>,
        rev_adj: Vec<VertexId>,
        inputs: BitSet,
        outputs: BitSet,
        labels: Vec<String>,
    ) -> Self {
        Cdag {
            n,
            fwd_off,
            fwd_adj,
            rev_off,
            rev_adj,
            inputs,
            outputs,
            labels,
        }
    }

    /// Number of vertices `|V|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n as usize
    }

    /// Number of edges `|E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.fwd_adj.len()
    }

    /// Number of *computational* vertices `|V - I|` — the work `|V'|` used
    /// by the paper's Corollary 1 and the parallel Theorems 6–7.
    pub fn num_compute_vertices(&self) -> usize {
        self.num_vertices() - self.inputs.len()
    }

    /// Iterator over all vertex ids `0..n`.
    pub fn vertices(&self) -> impl ExactSizeIterator<Item = VertexId> + '_ {
        (0..self.n).map(VertexId)
    }

    /// Successors of `v` (targets of out-edges).
    #[inline]
    pub fn successors(&self, v: VertexId) -> &[VertexId] {
        let i = v.index();
        &self.fwd_adj[self.fwd_off[i] as usize..self.fwd_off[i + 1] as usize]
    }

    /// Predecessors of `v` (sources of in-edges).
    #[inline]
    pub fn predecessors(&self, v: VertexId) -> &[VertexId] {
        let i = v.index();
        &self.rev_adj[self.rev_off[i] as usize..self.rev_off[i + 1] as usize]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.successors(v).len()
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.predecessors(v).len()
    }

    /// Iterator over all edges `(u, v)`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices()
            .flat_map(move |u| self.successors(u).iter().map(move |&v| (u, v)))
    }

    /// `true` if `v` is tagged as an input (starts with a blue pebble).
    #[inline]
    pub fn is_input(&self, v: VertexId) -> bool {
        self.inputs.contains(v.index())
    }

    /// `true` if `v` is tagged as an output (must end with a blue pebble).
    #[inline]
    pub fn is_output(&self, v: VertexId) -> bool {
        self.outputs.contains(v.index())
    }

    /// The input tag set `I` as a bitset.
    pub fn inputs(&self) -> &BitSet {
        &self.inputs
    }

    /// The output tag set `O` as a bitset.
    pub fn outputs(&self) -> &BitSet {
        &self.outputs
    }

    /// Number of tagged inputs `|I|`.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of tagged outputs `|O|`.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Human-readable label of `v` (empty string if none was assigned).
    pub fn label(&self, v: VertexId) -> &str {
        self.labels.get(v.index()).map_or("", |s| s.as_str())
    }

    /// Returns a copy of this CDAG with different input/output tags.
    ///
    /// This implements the *tagging/untagging* operation of the paper's
    /// Theorem 3: the underlying DAG `G = (V, E)` is unchanged, only the
    /// labelling of vertices as inputs/outputs differs. The lower-bound
    /// combinators in `dmc-core` account for the `|dI| + |dO|` correction
    /// terms.
    ///
    /// # Panics
    /// Panics if either bitset's capacity differs from `|V|`, or if some
    /// tagged input has predecessors (inputs must be sources in the RBW
    /// model — values, not computations).
    pub fn retag(&self, inputs: BitSet, outputs: BitSet) -> Cdag {
        assert_eq!(inputs.capacity(), self.num_vertices(), "input tag capacity");
        assert_eq!(
            outputs.capacity(),
            self.num_vertices(),
            "output tag capacity"
        );
        for i in inputs.iter() {
            assert!(
                self.in_degree(VertexId(i as u32)) == 0,
                "vertex v{i} tagged as input but has predecessors"
            );
        }
        let mut c = self.clone();
        c.inputs = inputs;
        c.outputs = outputs;
        c
    }

    /// Convenience: retag with Hong–Kung conventions — every source vertex
    /// becomes an input and every sink vertex an output.
    pub fn retag_hong_kung(&self) -> Cdag {
        let n = self.num_vertices();
        let mut ins = BitSet::new(n);
        let mut outs = BitSet::new(n);
        for v in self.vertices() {
            if self.in_degree(v) == 0 {
                ins.insert(v.index());
            }
            if self.out_degree(v) == 0 {
                outs.insert(v.index());
            }
        }
        self.retag(ins, outs)
    }

    /// Checks the Hong–Kung well-formedness convention used by
    /// Definition 2: every source is an input and every sink is an output.
    pub fn is_hong_kung_form(&self) -> bool {
        self.vertices().all(|v| {
            (self.in_degree(v) > 0 || self.is_input(v))
                && (self.out_degree(v) > 0 || self.is_output(v))
        })
    }

    /// `true` if the graph contains the edge `(u, v)`.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.successors(u).contains(&v)
    }

    /// A process-independent content hash of the graph: FNV-1a over the
    /// canonical [`textio`](crate::textio) render. Two graphs hash equal
    /// exactly when they have the same vertex count, tags, labels, and
    /// edge lists in the same id order — comments and whitespace in an
    /// uploaded text form never affect the hash, because the render is
    /// regenerated from the parsed structure. This is the cache key the
    /// serving layer uses for uploaded `.cdag` bodies.
    ///
    /// ```
    /// use dmc_cdag::textio;
    /// use dmc_cdag::CdagBuilder;
    ///
    /// let mut b = CdagBuilder::new();
    /// let x = b.add_input("x");
    /// let y = b.add_op("y", &[x]);
    /// b.tag_output(y);
    /// let g = b.build().unwrap();
    /// let reparsed = textio::from_text(&textio::to_text(&g)).unwrap();
    /// assert_eq!(g.content_hash(), reparsed.content_hash());
    /// ```
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        crate::hash::fnv1a_64(crate::textio::to_text(self).as_bytes())
    }
}

impl std::fmt::Debug for Cdag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Cdag {{ |V|: {}, |E|: {}, |I|: {}, |O|: {} }}",
            self.num_vertices(),
            self.num_edges(),
            self.num_inputs(),
            self.num_outputs()
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::CdagBuilder;
    use crate::{BitSet, VertexId};

    /// Builds the little diamond `a -> {b, c} -> d`.
    fn diamond() -> crate::Cdag {
        let mut b = CdagBuilder::new();
        let a = b.add_input("a");
        let x = b.add_op("b", &[a]);
        let y = b.add_op("c", &[a]);
        let d = b.add_op("d", &[x, y]);
        b.tag_output(d);
        b.build().unwrap()
    }

    #[test]
    fn basic_accessors() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.num_inputs(), 1);
        assert_eq!(g.num_outputs(), 1);
        assert_eq!(g.num_compute_vertices(), 3);
        let a = VertexId(0);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(a), 0);
        assert!(g.is_input(a));
        assert!(!g.is_output(a));
        assert_eq!(g.label(a), "a");
        let d = VertexId(3);
        assert_eq!(g.in_degree(d), 2);
        assert!(g.is_output(d));
        assert!(g.has_edge(a, VertexId(1)));
        assert!(!g.has_edge(a, d));
    }

    #[test]
    fn edges_iterator_counts_all() {
        let g = diamond();
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es.len(), 4);
        assert!(es.contains(&(VertexId(0), VertexId(1))));
        assert!(es.contains(&(VertexId(2), VertexId(3))));
    }

    #[test]
    fn retag_swaps_labels_without_touching_structure() {
        let g = diamond();
        let n = g.num_vertices();
        // Untag everything.
        let g2 = g.retag(BitSet::new(n), BitSet::new(n));
        assert_eq!(g2.num_inputs(), 0);
        assert_eq!(g2.num_outputs(), 0);
        assert_eq!(g2.num_edges(), g.num_edges());
        assert!(!g2.is_hong_kung_form());
        let g3 = g2.retag_hong_kung();
        assert!(g3.is_hong_kung_form());
        assert!(g3.is_input(VertexId(0)));
        assert!(g3.is_output(VertexId(3)));
    }

    #[test]
    #[should_panic(expected = "tagged as input but has predecessors")]
    fn retag_rejects_non_source_inputs() {
        let g = diamond();
        let n = g.num_vertices();
        let bad = BitSet::from_indices(n, [3]);
        let _ = g.retag(bad, BitSet::new(n));
    }

    #[test]
    fn hong_kung_form_detection() {
        let g = diamond();
        assert!(g.is_hong_kung_form());
        // b and c have successors; a is input; d is output — fine.
        let mut b = CdagBuilder::new();
        let a = b.add_input("a");
        let _dangling = b.add_op("x", &[a]); // sink without output tag
        let g = b.build().unwrap();
        assert!(!g.is_hong_kung_form());
    }
}
