//! Deterministic indexed fan-out over scoped worker threads.
//!
//! Several subsystems (the wavefront engine's callers, the analysis
//! pipeline's component sweep, the simulator's S-sweep, the validation
//! pipeline's point sweep) share one concurrency shape: `count`
//! independent work items, pulled from a shared atomic queue by scoped
//! workers that each own some reusable local state, with the results
//! reassembled **by item index** so the output is bit-identical at any
//! worker count. [`fan_out_indexed`] is that shape, written once.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `work` on every index in `0..count` across up to `workers`
/// scoped threads (`0` = `std::thread::available_parallelism` — the
/// convention every `--threads` flag in the workspace follows) and
/// returns the results in index order.
///
/// Each worker calls `init` once to build its private mutable state (a
/// scratch arena, a simulator, …) and then pulls indices from a shared
/// atomic counter until the range is drained. With one effective worker
/// everything runs inline on the caller's thread — same results, no
/// spawning. The index-ordered merge makes the output independent of
/// scheduling, which is what lets callers advertise bit-identical
/// reports at any thread count.
///
/// ```
/// use dmc_cdag::fanout::fan_out_indexed;
///
/// let squares = fan_out_indexed(5, 3, || (), |_, i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
/// // Identical at any worker count.
/// assert_eq!(squares, fan_out_indexed(5, 1, || (), |_, i| i * i));
/// ```
pub fn fan_out_indexed<S, T, I, W>(count: usize, workers: usize, init: I, work: W) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    W: Fn(&mut S, usize) -> T + Sync,
{
    let workers = if workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        workers
    }
    .clamp(1, count.max(1));
    if workers <= 1 {
        let mut state = init();
        return (0..count).map(|i| work(&mut state, i)).collect();
    }
    let next = AtomicUsize::new(0);
    // dmc-lint: allow(s2) -- this IS the blessed fan-out the rule routes everyone through; the sort_by_key below merges in index order
    let mut indexed: Vec<(usize, T)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        local.push((i, work(&mut state, i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            // dmc-lint: allow(s1) -- join fails only if a worker panicked; re-raising the panic on the caller thread is the contract
            .flat_map(|h| h.join().expect("fan-out worker panicked"))
            .collect()
    });
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, t)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_index_in_order_at_any_worker_count() {
        let base: Vec<usize> = (0..37).map(|i| i * 3).collect();
        for workers in [0usize, 1, 2, 4, 9, 64] {
            assert_eq!(
                fan_out_indexed(37, workers, || (), |_, i| i * 3),
                base,
                "@ {workers} workers"
            );
        }
    }

    #[test]
    fn worker_state_is_initialized_per_worker_and_reused() {
        // Each worker's state counts its own items; the total covers
        // exactly the index range.
        let counts = fan_out_indexed(
            100,
            4,
            || 0usize,
            |seen, i| {
                *seen += 1;
                (i, *seen)
            },
        );
        assert_eq!(counts.len(), 100);
        assert!(counts.iter().enumerate().all(|(i, &(idx, _))| idx == i));
        // Reuse happened: at least one worker processed more than one item.
        assert!(counts.iter().any(|&(_, seen)| seen > 1));
    }

    #[test]
    fn empty_range_is_fine() {
        assert_eq!(fan_out_indexed(0, 8, || (), |_, i| i), Vec::<usize>::new());
    }
}
