//! Weakly-connected components of a CDAG.
//!
//! The substrate of the automatic decomposition pipeline: Theorem 2 sums
//! lower bounds across *vertex-disjoint* sub-CDAGs, and the weakly
//! connected components are the canonical disjoint split — no edges cross
//! them, so the induced tagging loses nothing. The traversal walks the
//! CSR adjacency in both directions ([`crate::Cdag::successors`] and
//! [`crate::Cdag::predecessors`]) with an explicit stack.

use crate::bitset::BitSet;
use crate::graph::{Cdag, VertexId};

/// A labelling of every vertex with its weakly-connected component.
///
/// Component ids are deterministic: components are numbered `0..count` in
/// order of their lowest-numbered vertex, so the labelling is a pure
/// function of the graph (independent of traversal internals).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    /// `assignment[v]` = component id of vertex `v`.
    pub assignment: Vec<usize>,
    /// Number of components.
    pub count: usize,
}

impl Components {
    /// `true` if the graph is weakly connected (or empty).
    pub fn is_single(&self) -> bool {
        self.count <= 1
    }

    /// Vertex count of every component, indexed by component id.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &c in &self.assignment {
            sizes[c] += 1;
        }
        sizes
    }

    /// The vertex set of component `c` as a bitset over the full graph.
    pub fn block(&self, c: usize) -> BitSet {
        assert!(c < self.count, "component {c} out of range");
        BitSet::from_indices(
            self.assignment.len(),
            self.assignment
                .iter()
                .enumerate()
                .filter(|&(_, &a)| a == c)
                .map(|(v, _)| v),
        )
    }
}

/// Labels every vertex of `g` with its weakly-connected component
/// (`O(|V| + |E|)`, one pass over the CSR arrays).
pub fn weakly_connected_components(g: &Cdag) -> Components {
    let n = g.num_vertices();
    let mut assignment = vec![usize::MAX; n];
    let mut stack: Vec<VertexId> = Vec::new();
    let mut count = 0usize;
    for start in g.vertices() {
        if assignment[start.index()] != usize::MAX {
            continue;
        }
        let c = count;
        count += 1;
        assignment[start.index()] = c;
        stack.push(start);
        while let Some(v) = stack.pop() {
            for &w in g.successors(v).iter().chain(g.predecessors(v)) {
                if assignment[w.index()] == usize::MAX {
                    assignment[w.index()] = c;
                    stack.push(w);
                }
            }
        }
    }
    Components { assignment, count }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CdagBuilder;

    fn two_diamonds() -> Cdag {
        let mut b = CdagBuilder::new();
        for k in 0..2 {
            let a = b.add_input(format!("a{k}"));
            let x = b.add_op(format!("b{k}"), &[a]);
            let y = b.add_op(format!("c{k}"), &[a]);
            let d = b.add_op(format!("d{k}"), &[x, y]);
            b.tag_output(d);
        }
        b.build().unwrap()
    }

    #[test]
    fn single_component_on_connected_graph() {
        let mut b = CdagBuilder::new();
        let a = b.add_input("a");
        let x = b.add_op("x", &[a]);
        b.tag_output(x);
        let g = b.build().unwrap();
        let c = weakly_connected_components(&g);
        assert!(c.is_single());
        assert_eq!(c.assignment, vec![0, 0]);
        assert_eq!(c.sizes(), vec![2]);
    }

    #[test]
    fn disjoint_pieces_get_distinct_ids_in_vertex_order() {
        let g = two_diamonds();
        let c = weakly_connected_components(&g);
        assert_eq!(c.count, 2);
        assert_eq!(c.assignment, vec![0, 0, 0, 0, 1, 1, 1, 1]);
        assert_eq!(c.sizes(), vec![4, 4]);
        assert_eq!(c.block(1).iter().collect::<Vec<_>>(), vec![4, 5, 6, 7]);
    }

    #[test]
    fn opposing_edge_directions_still_connect() {
        // x <- a -> y plus a second source feeding y: weak connectivity
        // must follow predecessor edges too.
        let mut b = CdagBuilder::new();
        let a = b.add_input("a");
        let s = b.add_input("s");
        let x = b.add_op("x", &[a]);
        let y = b.add_op("y", &[a, s]);
        b.tag_output(x);
        b.tag_output(y);
        let g = b.build().unwrap();
        let c = weakly_connected_components(&g);
        assert!(c.is_single());
    }

    #[test]
    fn interleaved_vertex_numbering_is_handled() {
        // Two chains with interleaved ids: 0->2 and 1->3.
        let mut b = CdagBuilder::new();
        let a0 = b.add_input("a0");
        let a1 = b.add_input("a1");
        let x0 = b.add_op("x0", &[a0]);
        let x1 = b.add_op("x1", &[a1]);
        b.tag_output(x0);
        b.tag_output(x1);
        let g = b.build().unwrap();
        let c = weakly_connected_components(&g);
        assert_eq!(c.count, 2);
        // Component 0 is the one containing vertex 0.
        assert_eq!(c.assignment, vec![0, 1, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn block_rejects_bad_component() {
        let g = two_diamonds();
        let c = weakly_connected_components(&g);
        let _ = c.block(5);
    }
}
