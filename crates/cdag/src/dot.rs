//! Graphviz DOT export for visual inspection of small CDAGs.

use crate::graph::{Cdag, VertexId};
use std::fmt::Write as _;

/// Renders `g` in Graphviz DOT syntax.
///
/// Inputs are drawn as blue boxes, outputs as double circles, plain
/// computational vertices as ellipses. Labels fall back to the vertex id
/// when empty.
pub fn to_dot(g: &Cdag) -> String {
    let mut out = String::with_capacity(64 * g.num_vertices());
    out.push_str("digraph cdag {\n  rankdir=TB;\n");
    for v in g.vertices() {
        let label = if g.label(v).is_empty() {
            format!("{v}")
        } else {
            g.label(v).replace('"', "\\\"")
        };
        let attrs = match (g.is_input(v), g.is_output(v)) {
            (true, true) => "shape=box, style=filled, fillcolor=lightblue, peripheries=2",
            (true, false) => "shape=box, style=filled, fillcolor=lightblue",
            (false, true) => "shape=doublecircle",
            (false, false) => "shape=ellipse",
        };
        let _ = writeln!(out, "  v{} [label=\"{}\", {}];", v.0, label, attrs);
    }
    for (u, v) in g.edges() {
        let _ = writeln!(out, "  v{} -> v{};", u.0, v.0);
    }
    out.push_str("}\n");
    out
}

/// Renders `g` with an additional highlight set (e.g. a wavefront or a
/// partition block) drawn filled red.
pub fn to_dot_highlight(g: &Cdag, highlight: &[VertexId]) -> String {
    let mut base = to_dot(g);
    let inserts: String = highlight
        .iter()
        .map(|v| format!("  v{} [style=filled, fillcolor=salmon];\n", v.0))
        .collect();
    // Insert before the closing brace.
    base.truncate(base.len() - 2);
    base.push_str(&inserts);
    base.push_str("}\n");
    base
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CdagBuilder;

    #[test]
    fn dot_output_contains_all_parts() {
        let mut b = CdagBuilder::new();
        let a = b.add_input("a");
        let z = b.add_op("a*2", &[a]);
        b.tag_output(z);
        let g = b.build().unwrap();
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph cdag {"));
        assert!(dot.contains("v0 [label=\"a\""));
        assert!(dot.contains("fillcolor=lightblue"));
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("v0 -> v1;"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn quotes_escaped() {
        let mut b = CdagBuilder::new();
        b.add_input("say \"hi\"");
        let g = b.build().unwrap();
        assert!(to_dot(&g).contains("say \\\"hi\\\""));
    }

    #[test]
    fn highlight_appends_styles() {
        let mut b = CdagBuilder::new();
        let a = b.add_input("a");
        let g = b.build().unwrap();
        let dot = to_dot_highlight(&g, &[a]);
        assert!(dot.contains("fillcolor=salmon"));
        assert!(dot.ends_with("}\n"));
    }
}
