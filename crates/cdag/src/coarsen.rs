//! Cluster contraction: collapsing a disjoint cluster assignment into a
//! *super-vertex DAG* — the coarse graph the hierarchical analysis
//! pipeline navigates when the original CDAG is too large to sweep
//! directly.
//!
//! A [`CoarseDag`] keeps, per cluster, the annotations the pipeline
//! needs to reason about the contraction without re-touching the
//! original graph: vertex/edge counts, the *in-boundary* (vertices with
//! a predecessor outside the cluster) and *out-boundary* (vertices with
//! a successor outside the cluster) sizes, and input/output membership.
//!
//! # Determinism
//!
//! Super-vertex numbering is the caller's cluster numbering, verbatim —
//! no hashing, no renumbering. Clusterings produced by
//! `topological_clusters` (contiguous intervals of the deterministic
//! Kahn order) therefore yield bit-identical coarse graphs on every run
//! and at every thread count.
//!
//! # Soundness note (why the coarse graph is a *map*, not a *bound*)
//!
//! A min-cut wavefront computed on the coarse graph is **not** a sound
//! I/O lower bound for the original CDAG: a coarse path `A → B → C`
//! only certifies an original path when every intermediate cluster
//! internally connects its in-boundary to its out-boundary, and a
//! coarse "ancestor" cluster of an anchor mixes true ancestors with
//! incomparable vertices, so Lemma 2's computed/uncomputed wavefront
//! argument does not transfer. The hierarchical pipeline therefore uses
//! the coarse graph for *structure* (cluster diagnostics, provenance)
//! and derives its certified bound from Theorem 2 over the cluster
//! partition instead — see `pipeline::hierarchical` in `dmc-core`.

use crate::builder::CdagBuilder;
use crate::graph::{Cdag, VertexId};

/// Why a cluster assignment could not be contracted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoarsenError {
    /// `assignment.len()` differs from the graph's vertex count.
    AssignmentLength {
        /// Length of the assignment slice.
        got: usize,
        /// `|V|` of the graph.
        expected: usize,
    },
    /// A vertex was assigned a cluster index `>= num_clusters`.
    ClusterOutOfRange {
        /// The offending vertex.
        vertex: VertexId,
        /// Its out-of-range cluster index.
        cluster: usize,
        /// The declared cluster count.
        num_clusters: usize,
    },
    /// A declared cluster received no vertices (numbering must be
    /// contiguous `0..num_clusters` so super-vertex ids stay dense).
    EmptyCluster(usize),
    /// The quotient has a directed cycle — the assignment does not
    /// respect a topological order of the graph, so no super-vertex
    /// *DAG* exists. Clusterings built from contiguous intervals of a
    /// topological order can never trigger this.
    CyclicQuotient,
}

impl std::fmt::Display for CoarsenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoarsenError::AssignmentLength { got, expected } => {
                write!(f, "assignment covers {got} vertices, graph has {expected}")
            }
            CoarsenError::ClusterOutOfRange {
                vertex,
                cluster,
                num_clusters,
            } => write!(
                f,
                "vertex {vertex} assigned to cluster {cluster} (declared {num_clusters})"
            ),
            CoarsenError::EmptyCluster(c) => write!(f, "cluster {c} is empty"),
            CoarsenError::CyclicQuotient => {
                write!(
                    f,
                    "cluster quotient has a directed cycle (not a topological clustering)"
                )
            }
        }
    }
}

impl std::error::Error for CoarsenError {}

/// Per-cluster annotations of a [`CoarseDag`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterInfo {
    /// Number of original vertices in the cluster.
    pub vertices: usize,
    /// Number of original edges with both endpoints in the cluster.
    pub internal_edges: usize,
    /// Vertices of the cluster with at least one predecessor outside it.
    pub in_boundary: usize,
    /// Vertices of the cluster with at least one successor outside it.
    pub out_boundary: usize,
    /// Tagged inputs of the original graph inside the cluster.
    pub inputs: usize,
    /// Tagged outputs of the original graph inside the cluster.
    pub outputs: usize,
    /// Lowest original vertex id in the cluster (a stable handle for
    /// locating the cluster in the original graph).
    pub first_vertex: VertexId,
}

/// A cluster assignment contracted into a super-vertex DAG, with the
/// per-cluster annotations the hierarchical pipeline reports.
///
/// Super-vertex `k` of [`graph`](CoarseDag::graph) is cluster `k` of the
/// assignment; `graph` has one (deduplicated) edge `i → j` whenever some
/// original edge crosses from cluster `i` to cluster `j`. A super-vertex
/// is tagged input iff its cluster contains a tagged input and has no
/// coarse predecessor, and tagged output iff its cluster contains a
/// tagged output.
#[derive(Debug, Clone)]
pub struct CoarseDag {
    /// The contracted super-vertex DAG (`num_clusters` vertices).
    pub graph: Cdag,
    /// `cluster_of[v]` = super-vertex id of original vertex `v`.
    pub cluster_of: Vec<usize>,
    /// Per-cluster annotations, indexed by super-vertex id.
    pub clusters: Vec<ClusterInfo>,
    /// Original edges that cross clusters (before deduplication) — the
    /// communication volume the contraction hides.
    pub cut_edges: usize,
}

impl CoarseDag {
    /// Vertex count of the *original* graph.
    pub fn original_vertices(&self) -> usize {
        self.cluster_of.len()
    }
}

/// Contracts `assignment` (cluster index per vertex, contiguous
/// `0..num_clusters`) into a [`CoarseDag`].
///
/// Runs in `O(|V| + |E| + K log K)` and never clones the original
/// graph's payload, so it is safe at 10⁷–10⁸ vertices. Fails with
/// [`CoarsenError::CyclicQuotient`] when the assignment does not induce
/// a DAG on the clusters.
///
/// ```
/// use dmc_cdag::coarsen::coarsen;
/// use dmc_cdag::CdagBuilder;
///
/// let mut b = CdagBuilder::new();
/// let a = b.add_input("a");
/// let x = b.add_op("x", &[a]);
/// let y = b.add_op("y", &[x]);
/// b.tag_output(y);
/// let g = b.build().unwrap();
/// let coarse = coarsen(&g, &[0, 0, 1], 2).unwrap();
/// assert_eq!(coarse.graph.num_vertices(), 2);
/// assert_eq!(coarse.graph.num_edges(), 1);
/// assert_eq!(coarse.clusters[0].out_boundary, 1);
/// assert_eq!(coarse.clusters[1].outputs, 1);
/// ```
pub fn coarsen(
    g: &Cdag,
    assignment: &[usize],
    num_clusters: usize,
) -> Result<CoarseDag, CoarsenError> {
    let n = g.num_vertices();
    if assignment.len() != n {
        return Err(CoarsenError::AssignmentLength {
            got: assignment.len(),
            expected: n,
        });
    }
    let mut clusters = vec![
        ClusterInfo {
            vertices: 0,
            internal_edges: 0,
            in_boundary: 0,
            out_boundary: 0,
            inputs: 0,
            outputs: 0,
            first_vertex: VertexId(0),
        };
        num_clusters
    ];
    for v in g.vertices() {
        let c = assignment[v.index()];
        if c >= num_clusters {
            return Err(CoarsenError::ClusterOutOfRange {
                vertex: v,
                cluster: c,
                num_clusters,
            });
        }
        let info = &mut clusters[c];
        if info.vertices == 0 {
            info.first_vertex = v;
        }
        info.vertices += 1;
        if g.is_input(v) {
            info.inputs += 1;
        }
        if g.is_output(v) {
            info.outputs += 1;
        }
        if g.predecessors(v).iter().any(|p| assignment[p.index()] != c) {
            info.in_boundary += 1;
        }
        if g.successors(v).iter().any(|s| assignment[s.index()] != c) {
            info.out_boundary += 1;
        }
    }
    if let Some(c) = clusters.iter().position(|i| i.vertices == 0) {
        return Err(CoarsenError::EmptyCluster(c));
    }

    let mut cut_edges = 0usize;
    let mut coarse_edges: Vec<(usize, usize)> = Vec::new();
    for (u, v) in g.edges() {
        let (cu, cv) = (assignment[u.index()], assignment[v.index()]);
        if cu == cv {
            clusters[cu].internal_edges += 1;
        } else {
            cut_edges += 1;
            coarse_edges.push((cu, cv));
        }
    }
    coarse_edges.sort_unstable();
    coarse_edges.dedup();

    let mut has_pred = vec![false; num_clusters];
    for &(_, v) in &coarse_edges {
        has_pred[v] = true;
    }
    let mut b = CdagBuilder::with_capacity(num_clusters, coarse_edges.len());
    let first = b.add_vertices(num_clusters);
    debug_assert_eq!(first, VertexId(0));
    for (c, info) in clusters.iter().enumerate() {
        if info.inputs > 0 && !has_pred[c] {
            b.tag_input(VertexId(c as u32));
        }
        if info.outputs > 0 {
            b.tag_output(VertexId(c as u32));
        }
    }
    for &(cu, cv) in &coarse_edges {
        b.add_edge(VertexId(cu as u32), VertexId(cv as u32));
    }
    let graph = b.build().map_err(|_| CoarsenError::CyclicQuotient)?;
    Ok(CoarseDag {
        graph,
        cluster_of: assignment.to_vec(),
        clusters,
        cut_edges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo::topological_order;

    fn diamond() -> Cdag {
        let mut b = CdagBuilder::new();
        let a = b.add_input("a");
        let x = b.add_op("x", &[a]);
        let y = b.add_op("y", &[a]);
        let d = b.add_op("d", &[x, y]);
        b.tag_output(d);
        b.build().unwrap()
    }

    #[test]
    fn contracts_diamond_into_chain() {
        let g = diamond();
        let coarse = coarsen(&g, &[0, 0, 0, 1], 2).unwrap();
        assert_eq!(coarse.graph.num_vertices(), 2);
        assert_eq!(coarse.graph.num_edges(), 1);
        assert_eq!(coarse.cut_edges, 2); // x→d and y→d cross, deduped to one coarse edge
        assert_eq!(coarse.clusters[0].vertices, 3);
        assert_eq!(coarse.clusters[0].internal_edges, 2);
        assert_eq!(coarse.clusters[0].out_boundary, 2);
        assert_eq!(coarse.clusters[0].in_boundary, 0);
        assert_eq!(coarse.clusters[1].in_boundary, 1);
        assert_eq!(coarse.clusters[1].first_vertex, VertexId(3));
        // Input/output tags lift to the super-vertices.
        assert!(coarse.graph.is_input(VertexId(0)));
        assert!(coarse.graph.is_output(VertexId(1)));
    }

    #[test]
    fn input_tag_dropped_when_cluster_has_coarse_predecessor() {
        // Cluster 1 = {x, y, d} contains no input; cluster {a} feeds it.
        let g = diamond();
        let coarse = coarsen(&g, &[0, 1, 1, 1], 2).unwrap();
        assert!(coarse.graph.is_input(VertexId(0)));
        assert!(!coarse.graph.is_input(VertexId(1)));
    }

    #[test]
    fn cyclic_quotient_is_rejected() {
        let g = diamond();
        // {a, d} vs {x, y}: edges cross in both directions.
        assert_eq!(
            coarsen(&g, &[0, 1, 1, 0], 2).unwrap_err(),
            CoarsenError::CyclicQuotient
        );
    }

    #[test]
    fn bad_assignments_are_loud() {
        let g = diamond();
        assert!(matches!(
            coarsen(&g, &[0, 0, 0], 2).unwrap_err(),
            CoarsenError::AssignmentLength {
                got: 3,
                expected: 4
            }
        ));
        assert!(matches!(
            coarsen(&g, &[0, 0, 0, 5], 2).unwrap_err(),
            CoarsenError::ClusterOutOfRange { cluster: 5, .. }
        ));
        assert_eq!(
            coarsen(&g, &[0, 0, 0, 0], 2).unwrap_err(),
            CoarsenError::EmptyCluster(1)
        );
    }

    #[test]
    fn interval_clustering_of_topo_order_always_contracts() {
        // Any contiguous-interval clustering of a topological order has
        // an acyclic quotient: edges only go forward in the order.
        let g = diamond();
        let order = topological_order(&g);
        let mut assignment = vec![0usize; g.num_vertices()];
        for (pos, v) in order.iter().enumerate() {
            assignment[v.index()] = pos * 2 / order.len();
        }
        let coarse = coarsen(&g, &assignment, 2).unwrap();
        assert_eq!(coarse.graph.num_vertices(), 2);
        assert!(coarse.graph.num_edges() <= 1);
        let total: usize = coarse.clusters.iter().map(|c| c.vertices).sum();
        assert_eq!(total, g.num_vertices());
    }

    #[test]
    fn single_cluster_contracts_to_one_vertex() {
        let g = diamond();
        let coarse = coarsen(&g, &[0, 0, 0, 0], 1).unwrap();
        assert_eq!(coarse.graph.num_vertices(), 1);
        assert_eq!(coarse.graph.num_edges(), 0);
        assert_eq!(coarse.cut_edges, 0);
        assert_eq!(coarse.clusters[0].internal_edges, g.num_edges());
    }
}
