//! Convex cuts and schedule wavefronts (paper, Section 3.3).
//!
//! A *convex cut* `(S, T)` partitions the vertices such that there is no
//! edge from `T` back to `S` — equivalently `S` is predecessor-closed (an
//! order ideal of the DAG). A convex cut is exactly a point in time of some
//! sequential no-recomputation schedule: `S` is the set of already-fired
//! vertices. The *wavefront* of the cut is the set of fired vertices that
//! still have an unfired consumer — the live values that must be resident
//! somewhere, which is why the minimum wavefront through a vertex lower
//! bounds I/O (Lemma 2 in `dmc-core`).

use crate::bitset::BitSet;
use crate::flow::{vertex_min_cut, VertexCut, VertexCutOptions};
use crate::graph::{Cdag, VertexId};
use crate::reach::{ancestors, descendants};

/// A convex `(S, T)` cut of a CDAG, stored as the `S` side.
#[derive(Debug, Clone)]
pub struct ConvexCut {
    s_side: BitSet,
}

impl ConvexCut {
    /// Wraps an `S`-side bitset. Use [`ConvexCut::is_valid`] to check
    /// convexity if the provenance is untrusted.
    pub fn new(s_side: BitSet) -> Self {
        ConvexCut { s_side }
    }

    /// The minimal convex cut whose `S` side contains `x`:
    /// `S = {x} ∪ Anc(x)`.
    pub fn minimal_around(g: &Cdag, x: VertexId) -> Self {
        let mut s = ancestors(g, x);
        s.insert(x.index());
        ConvexCut { s_side: s }
    }

    /// The maximal convex cut whose `T` side contains everything forced
    /// after `x`: `T = Desc(x)`, `S = V \ Desc(x)`.
    pub fn maximal_around(g: &Cdag, x: VertexId) -> Self {
        let mut s = descendants(g, x);
        s.complement();
        ConvexCut { s_side: s }
    }

    /// The cut corresponding to a schedule prefix: `S` = first `k` vertices
    /// of `order`.
    pub fn from_prefix(g: &Cdag, prefix: &[VertexId]) -> Self {
        let mut s = BitSet::new(g.num_vertices());
        for &v in prefix {
            s.insert(v.index());
        }
        ConvexCut { s_side: s }
    }

    /// The `S` side.
    pub fn s_side(&self) -> &BitSet {
        &self.s_side
    }

    /// The `T` side (complement of `S`).
    pub fn t_side(&self) -> BitSet {
        let mut t = self.s_side.clone();
        t.complement();
        t
    }

    /// `true` if `v ∈ S`.
    pub fn in_s(&self, v: VertexId) -> bool {
        self.s_side.contains(v.index())
    }

    /// Checks convexity: no edge from `T` to `S` (equivalently `S` is
    /// predecessor-closed).
    pub fn is_valid(&self, g: &Cdag) -> bool {
        g.edges().all(|(u, v)| !self.in_s(v) || self.in_s(u))
    }

    /// The wavefront of this cut: vertices of `S` with at least one
    /// successor in `T`.
    pub fn wavefront(&self, g: &Cdag) -> Wavefront {
        let vertices: Vec<VertexId> = self
            .s_side
            .iter()
            .map(|i| VertexId(i as u32))
            .filter(|&v| g.successors(v).iter().any(|s| !self.in_s(*s)))
            .collect();
        Wavefront { vertices }
    }
}

/// The set of live values at a convex cut — see [`ConvexCut::wavefront`].
#[derive(Debug, Clone)]
pub struct Wavefront {
    /// Vertices in `S` with at least one successor in `T`.
    pub vertices: Vec<VertexId>,
}

impl Wavefront {
    /// Cardinality of the wavefront.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// `true` if the wavefront is empty.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }
}

/// A certified lower bound on the minimum wavefront through `x`.
#[derive(Debug, Clone)]
pub struct MinWavefront {
    /// The anchoring vertex.
    pub anchor: VertexId,
    /// Lower bound on `|W^min(x)|` (the min-cut value; exact up to the +1
    /// for `x` itself, see [`min_wavefront`]).
    pub size: usize,
    /// A witnessing minimum vertex cut.
    pub cut: VertexCut,
}

/// Computes the minimum cardinality wavefront induced by `x`,
/// `|W^min_G(x)|`, as a vertex min-cut between `{x} ∪ Anc(x)` and
/// `Desc(x)` (paper, §3.3 "Correspondence with Graph Min-cut").
///
/// The returned `size` is the max-flow value, and its relation to the true
/// `|W^min(x)|` splits exactly on whether `x` has descendants:
///
/// * **`Desc(x) ≠ ∅`: `|W^min(x)| = size`, exactly.** Every schedule
///   wavefront at the instant `x` fires is a separating set for the cut
///   problem (the last fired vertex on any `Anc(x) ∪ {x} → Desc(x)` path
///   has an unfired consumer, so it is in the wavefront), giving
///   `size ≤ |W^min(x)|`; conversely a schedule firing a minimum cut's
///   source side first realizes a wavefront of exactly `size` vertices.
/// * **`Desc(x) = ∅`: `|W^min(x)| = size + 1 = 1`.** The cut problem is
///   vacuous (`size = 0`), but every schedule wavefront at `x`'s firing
///   still contains `x` itself.
///
/// In both cases `size ≤ |W^min(x)|`, so `size` is always a *sound* value
/// to plug into Lemma 2.
pub fn min_wavefront(g: &Cdag, x: VertexId) -> MinWavefront {
    let mut sources = ancestors(g, x);
    sources.insert(x.index());
    let sinks = descendants(g, x);
    if sinks.is_empty() {
        return MinWavefront {
            anchor: x,
            size: 0,
            cut: VertexCut {
                size: 0,
                vertices: Vec::new(),
            },
        };
    }
    let cut = vertex_min_cut(
        g,
        &sources,
        &sinks,
        VertexCutOptions {
            sources_cuttable: true,
            sinks_cuttable: false,
        },
    )
    // dmc-lint: allow(s1) -- the flow network always admits a finite cut because every source vertex is cuttable by construction; pinned by cut property tests
    .expect("cut always exists when all source vertices are cuttable");
    MinWavefront {
        anchor: x,
        size: cut.size,
        cut,
    }
}

/// Computes `w^max_G = max_x |W^min_G(x)|` over the given anchor sample.
///
/// Passing all vertices gives the exact `w^max` of the paper; for large
/// CDAGs a stratified sample (e.g. one vertex per depth level) is the
/// intended usage and still yields a valid lower bound since every term is.
pub fn max_min_wavefront(g: &Cdag, anchors: &[VertexId]) -> Option<MinWavefront> {
    anchors
        .iter()
        .map(|&x| min_wavefront(g, x))
        .max_by_key(|w| w.size)
}

/// For each prefix of the schedule `order`, the size of the schedule
/// wavefront `W_P(x)` just after firing `order[k]`: the number of fired
/// vertices with an unfired successor, plus the just-fired vertex itself if
/// not already counted (Definition of schedule wavefront, §3.3).
///
/// Runs in `O(|V| + |E|)` by maintaining unfired-successor counts.
pub fn schedule_wavefront_sizes(g: &Cdag, order: &[VertexId]) -> Vec<usize> {
    let n = g.num_vertices();
    let mut remaining: Vec<u32> = (0..n)
        .map(|i| g.out_degree(VertexId(i as u32)) as u32)
        .collect();
    let mut fired = vec![false; n];
    let mut live = 0usize; // fired vertices with >= 1 unfired successor
    let mut out = Vec::with_capacity(order.len());
    for &x in order {
        fired[x.index()] = true;
        // Firing x retires one pending successor from each predecessor.
        for &p in g.predecessors(x) {
            remaining[p.index()] -= 1;
            if remaining[p.index()] == 0 && fired[p.index()] {
                live -= 1;
            }
        }
        if remaining[x.index()] > 0 {
            live += 1;
            out.push(live);
        } else {
            // W_P(x) = {x} ∪ live set; x contributes even with no consumer.
            out.push(live + 1);
        }
    }
    out
}

/// Maximum schedule wavefront over the whole schedule — the peak number of
/// simultaneously-live values, i.e. the minimum storage for this order.
pub fn peak_schedule_wavefront(g: &Cdag, order: &[VertexId]) -> usize {
    schedule_wavefront_sizes(g, order)
        .into_iter()
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CdagBuilder;
    use crate::topo::topological_order;

    fn diamond() -> Cdag {
        let mut b = CdagBuilder::new();
        let a = b.add_input("a");
        let x = b.add_op("b", &[a]);
        let y = b.add_op("c", &[a]);
        let d = b.add_op("d", &[x, y]);
        b.tag_output(d);
        b.build().unwrap()
    }

    #[test]
    fn minimal_cut_is_convex() {
        let g = diamond();
        for v in g.vertices() {
            let c = ConvexCut::minimal_around(&g, v);
            assert!(c.is_valid(&g), "minimal cut around {v} must be convex");
            assert!(c.in_s(v));
        }
    }

    #[test]
    fn maximal_cut_is_convex() {
        let g = diamond();
        for v in g.vertices() {
            let c = ConvexCut::maximal_around(&g, v);
            assert!(c.is_valid(&g));
            assert!(c.in_s(v));
        }
    }

    #[test]
    fn invalid_cut_detected() {
        let g = diamond();
        // S = {d} is not predecessor-closed.
        let c = ConvexCut::new(BitSet::from_indices(4, [3]));
        assert!(!c.is_valid(&g));
    }

    #[test]
    fn wavefront_of_prefix() {
        let g = diamond();
        // After firing a and b: both are live (a feeds c, b feeds d).
        let c = ConvexCut::from_prefix(&g, &[VertexId(0), VertexId(1)]);
        assert!(c.is_valid(&g));
        let w = c.wavefront(&g);
        assert_eq!(w.len(), 2);
        // After firing everything the wavefront is empty.
        let all = ConvexCut::from_prefix(&g, &topological_order(&g));
        assert!(all.wavefront(&g).is_empty());
    }

    #[test]
    fn min_wavefront_on_diamond() {
        let g = diamond();
        // Through b: sources {a, b}, sinks {d}. Cutting b alone does not
        // separate (path a -> c -> d), so the cut is {b, a} or {b, c}: 2.
        let w = min_wavefront(&g, VertexId(1));
        assert_eq!(w.size, 2);
        // Through d (no descendants): empty wavefront.
        let w = min_wavefront(&g, VertexId(3));
        assert_eq!(w.size, 0);
    }

    #[test]
    fn wide_fanout_wavefront() {
        // a feeds k independent consumers, each with a private sink: the
        // wavefront through a is 1 (cut a itself).
        let mut b = CdagBuilder::new();
        let a = b.add_input("a");
        for i in 0..5 {
            let m = b.add_op(format!("m{i}"), &[a]);
            let z = b.add_op(format!("z{i}"), &[m]);
            b.tag_output(z);
        }
        let g = b.build().unwrap();
        let w = min_wavefront(&g, a);
        assert_eq!(w.size, 1);
    }

    #[test]
    fn reduction_tree_wavefront_counts_disjoint_paths() {
        // k sources all reduced into one sum vertex, and the sum plus each
        // source also feeds a per-source continuation: through the sum the
        // min cut must sever every source's private path.
        let k = 6;
        let mut b = CdagBuilder::new();
        let srcs: Vec<_> = (0..k).map(|i| b.add_input(format!("s{i}"))).collect();
        let sum = b.add_op("sum", &srcs);
        for (i, &s) in srcs.iter().enumerate() {
            let c = b.add_op(format!("c{i}"), &[s, sum]);
            b.tag_output(c);
        }
        let g = b.build().unwrap();
        let w = min_wavefront(&g, sum);
        // Each source has a disjoint path s_i -> c_i, and sum -> c_i:
        // cut = {s_0..s_{k-1}, sum} = k + 1.
        assert_eq!(w.size, k + 1);
    }

    #[test]
    fn schedule_wavefronts_on_chain() {
        // x0 -> x1 -> x2 -> x3: every prefix has exactly one live value.
        let mut b = CdagBuilder::new();
        let mut prev = b.add_input("x0");
        for i in 1..4 {
            prev = b.add_op(format!("x{i}"), &[prev]);
        }
        b.tag_output(prev);
        let g = b.build().unwrap();
        let order = topological_order(&g);
        assert_eq!(schedule_wavefront_sizes(&g, &order), vec![1, 1, 1, 1]);
        assert_eq!(peak_schedule_wavefront(&g, &order), 1);
    }

    #[test]
    fn schedule_wavefronts_on_diamond() {
        let g = diamond();
        let order = vec![VertexId(0), VertexId(1), VertexId(2), VertexId(3)];
        // after a: {a}; after b: {a, b}; after c: {b, c}; after d: {d}.
        assert_eq!(schedule_wavefront_sizes(&g, &order), vec![1, 2, 2, 1]);
        assert_eq!(peak_schedule_wavefront(&g, &order), 2);
    }

    #[test]
    fn max_min_wavefront_picks_largest() {
        let g = diamond();
        let anchors: Vec<_> = g.vertices().collect();
        let w = max_min_wavefront(&g, &anchors).unwrap();
        assert_eq!(w.size, 2);
    }
}
