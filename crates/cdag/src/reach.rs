//! Ancestor/descendant reachability.
//!
//! The convex-cut machinery of the paper (Section 3.3) anchors each cut at a
//! vertex `x`: `Sx ⊇ {x} ∪ Anc(x)` and `Tx ⊇ Desc(x)`. These traversals are
//! the hot inner loop of the automated min-cut wavefront heuristic, so they
//! operate on bitsets and reuse scratch buffers where it matters.

use crate::bitset::BitSet;
use crate::graph::{Cdag, VertexId};

/// Set of strict ancestors of `v` (excluding `v` itself) as a bitset.
pub fn ancestors(g: &Cdag, v: VertexId) -> BitSet {
    closure(g, v, Direction::Backward)
}

/// Set of strict descendants of `v` (excluding `v` itself) as a bitset.
pub fn descendants(g: &Cdag, v: VertexId) -> BitSet {
    closure(g, v, Direction::Forward)
}

/// Scratch-reusing [`ancestors`]: clears and fills `out` (whose capacity
/// must be `|V|`) instead of allocating, reusing `stack` for the DFS.
pub fn ancestors_into(g: &Cdag, v: VertexId, out: &mut BitSet, stack: &mut Vec<VertexId>) {
    closure_into(g, v, Direction::Backward, out, stack)
}

/// Scratch-reusing [`descendants`]: clears and fills `out` (whose capacity
/// must be `|V|`) instead of allocating, reusing `stack` for the DFS.
pub fn descendants_into(g: &Cdag, v: VertexId, out: &mut BitSet, stack: &mut Vec<VertexId>) {
    closure_into(g, v, Direction::Forward, out, stack)
}

/// Set of all vertices reachable from any seed in `seeds` (following edges
/// forward), *including* the seeds.
pub fn forward_closure(g: &Cdag, seeds: &BitSet) -> BitSet {
    multi_closure(g, seeds, Direction::Forward)
}

/// Set of all vertices that can reach any seed in `seeds` (following edges
/// backward), *including* the seeds.
pub fn backward_closure(g: &Cdag, seeds: &BitSet) -> BitSet {
    multi_closure(g, seeds, Direction::Backward)
}

/// `true` if a directed path `u ⇝ v` exists (including `u == v`).
///
/// Allocates fresh scratch per call; use [`reaches_into`] in loops.
pub fn reaches(g: &Cdag, u: VertexId, v: VertexId) -> bool {
    let mut visited = BitSet::new(g.num_vertices());
    let mut stack = Vec::new();
    reaches_into(g, u, v, &mut visited, &mut stack)
}

/// Scratch-reusing [`reaches`]: clears and reuses `visited` (whose capacity
/// must be `|V|`) and `stack` instead of allocating per query, which matters
/// for callers probing many pairs in a loop.
pub fn reaches_into(
    g: &Cdag,
    u: VertexId,
    v: VertexId,
    visited: &mut BitSet,
    stack: &mut Vec<VertexId>,
) -> bool {
    assert_eq!(
        visited.capacity(),
        g.num_vertices(),
        "reaches scratch bitset must be sized to |V|"
    );
    if u == v {
        return true;
    }
    visited.clear();
    stack.clear();
    stack.push(u);
    visited.insert(u.index());
    while let Some(w) = stack.pop() {
        for &s in g.successors(w) {
            if s == v {
                return true;
            }
            if visited.insert(s.index()) {
                stack.push(s);
            }
        }
    }
    false
}

/// Word-parallel ancestor/descendant closures for a *batch* of anchors.
///
/// The per-anchor DFS in [`ancestors_into`]/[`descendants_into`] walks
/// `O(V + E)` pointer-chasing steps per anchor. When many anchors are
/// processed together (as the `WavefrontEngine` does), it is much cheaper to
/// give each vertex a row of `u64` words — one bit per anchor — and compute
/// *all* closures in two topological sweeps whose inner step is a word-wide
/// OR ([`crate::bitset::union_words`]): a reverse sweep propagates "reaches
/// anchor j" along successors, a forward sweep propagates "reached by anchor
/// j" along predecessors. Cost is `O((V + E) · ⌈B/64⌉)` word operations for
/// `B` anchors, i.e. the traversal is amortized across up to 64 anchors per
/// word.
pub struct BatchReach {
    /// `anc[v * stride + w]` bit `b`: vertex `v` reaches anchor `j = 64w + b`
    /// (including `v == x_j`), i.e. `v ∈ {x_j} ∪ Anc(x_j)`.
    anc: Vec<u64>,
    /// `desc[v * stride + w]` bit `b`: anchor `j = 64w + b` *strictly*
    /// reaches vertex `v` (the anchor's own bit is cleared after the sweep),
    /// i.e. `v ∈ Desc(x_j)` — the sink side of anchor `j`.
    desc: Vec<u64>,
    /// Source-frontier rows: bit `j` of `v` set iff `v` is a source of
    /// anchor `j` with at least one successor outside the source side.
    supply: Vec<u64>,
    /// Sink-frontier rows: bit `j` of `v` set iff `v` is a sink of anchor
    /// `j` with at least one predecessor outside the sink side.
    drain: Vec<u64>,
    /// Interior rows: bit `j` of `v` set iff `v` is a non-frontier source
    /// or sink of anchor `j`.
    blocked: Vec<u64>,
    /// Words per vertex row (`⌈anchors.len() / 64⌉` for the current batch).
    stride: usize,
    /// Anchors of the current batch, in bit order.
    anchors: Vec<VertexId>,
    /// Word-row accumulator reused across sweep steps.
    acc: Vec<u64>,
}

impl BatchReach {
    /// Creates an empty batch scratch; rows are sized lazily by [`compute`].
    ///
    /// [`compute`]: BatchReach::compute
    pub fn new() -> Self {
        BatchReach {
            anc: Vec::new(),
            desc: Vec::new(),
            supply: Vec::new(),
            drain: Vec::new(),
            blocked: Vec::new(),
            stride: 0,
            anchors: Vec::new(),
            acc: Vec::new(),
        }
    }

    /// Computes ancestor and descendant closures for every anchor in
    /// `anchors` over `g`, given a topological order of `g` (`order` must
    /// list every vertex, parents before children).
    ///
    /// # Panics
    /// Panics if `anchors` is empty or `order.len() != |V|`.
    pub fn compute(&mut self, g: &Cdag, order: &[VertexId], anchors: &[VertexId]) {
        let n = g.num_vertices();
        assert!(!anchors.is_empty(), "BatchReach needs at least one anchor");
        assert_eq!(order.len(), n, "order must cover every vertex");
        let stride = anchors.len().div_ceil(64);
        self.stride = stride;
        self.anchors.clear();
        self.anchors.extend_from_slice(anchors);
        self.anc.clear();
        self.anc.resize(n * stride, 0);
        self.desc.clear();
        self.desc.resize(n * stride, 0);
        self.acc.clear();
        self.acc.resize(stride, 0);
        for (j, x) in anchors.iter().enumerate() {
            self.anc[x.index() * stride + j / 64] |= 1u64 << (j % 64);
            self.desc[x.index() * stride + j / 64] |= 1u64 << (j % 64);
        }
        // Reverse sweep: v reaches x_j iff v == x_j or some successor does.
        for &v in order.iter().rev() {
            let vi = v.index() * stride;
            self.acc.copy_from_slice(&self.anc[vi..vi + stride]);
            for &s in g.successors(v) {
                let si = s.index() * stride;
                crate::bitset::union_words(&mut self.acc, &self.anc[si..si + stride]);
            }
            self.anc[vi..vi + stride].copy_from_slice(&self.acc);
        }
        // Forward sweep: x_j reaches v iff v == x_j or some predecessor is
        // reached.
        for &v in order {
            let vi = v.index() * stride;
            self.acc.copy_from_slice(&self.desc[vi..vi + stride]);
            for &p in g.predecessors(v) {
                let pi = p.index() * stride;
                crate::bitset::union_words(&mut self.acc, &self.desc[pi..pi + stride]);
            }
            self.desc[vi..vi + stride].copy_from_slice(&self.acc);
        }
        // Strip each anchor's own bit: `desc` rows become the strict sink
        // side `Desc(x_j)` (safe post-sweep; seeds were already propagated).
        for (j, x) in anchors.iter().enumerate() {
            self.desc[x.index() * stride + j / 64] &= !(1u64 << (j % 64));
        }
        // Role pass: classify each side's vertices into frontier vs
        // interior, again word-parallel across the batch. A source is
        // *frontier* iff some successor lies outside the source side (so
        // `~AND` over successor rows), a sink is frontier iff some
        // predecessor lies outside the sink side; everything else on a side
        // is interior. [`crate::flow::WarmCut::min_cut_roles`] relies on the
        // flow-equivalence of supplying/draining only the frontier while
        // blocking the interior outright.
        self.supply.clear();
        self.supply.resize(n * stride, 0);
        self.drain.clear();
        self.drain.resize(n * stride, 0);
        self.blocked.clear();
        self.blocked.resize(n * stride, 0);
        for v in g.vertices() {
            let vi = v.index() * stride;
            self.acc.fill(!0u64);
            for &s in g.successors(v) {
                let si = s.index() * stride;
                crate::bitset::intersect_words(&mut self.acc, &self.anc[si..si + stride]);
            }
            for w in 0..stride {
                let a = self.anc[vi + w];
                self.supply[vi + w] = a & !self.acc[w];
                self.blocked[vi + w] = a & self.acc[w];
            }
            self.acc.fill(!0u64);
            for &p in g.predecessors(v) {
                let pi = p.index() * stride;
                crate::bitset::intersect_words(&mut self.acc, &self.desc[pi..pi + stride]);
            }
            for w in 0..stride {
                let d = self.desc[vi + w];
                self.drain[vi + w] = d & !self.acc[w];
                self.blocked[vi + w] |= d & self.acc[w];
            }
        }
    }

    /// Anchors of the most recent [`compute`](BatchReach::compute) batch.
    pub fn anchors(&self) -> &[VertexId] {
        &self.anchors
    }

    /// Fills `out` (capacity `|V|`) with `{x_j} ∪ Anc(x_j)` — the source
    /// side of anchor `j`'s split network.
    ///
    /// # Panics
    /// Panics if `j` is out of range or `out` has the wrong capacity.
    pub fn fill_sources(&self, j: usize, out: &mut BitSet) {
        self.fill_column(&self.anc, j, out);
    }

    /// Fills `out` (capacity `|V|`) with the *strict* descendant set
    /// `Desc(x_j)` (the anchor itself excluded) — the sink side of anchor
    /// `j`'s split network.
    ///
    /// # Panics
    /// Panics if `j` is out of range or `out` has the wrong capacity.
    pub fn fill_sinks(&self, j: usize, out: &mut BitSet) {
        self.fill_column(&self.desc, j, out);
    }

    /// Fills `out` (capacity `|V|`) with anchor `j`'s *source frontier*: the
    /// sources with at least one successor outside the source side (always
    /// including the anchor itself when it has descendants). Feeding supply
    /// only here is flow-equivalent to supplying every source, because the
    /// source side has no in-edges from outside and every source reaches the
    /// anchor — so every source→sink path last leaves the source side at a
    /// frontier vertex.
    ///
    /// # Panics
    /// Panics if `j` is out of range or `out` has the wrong capacity.
    pub fn fill_supply(&self, j: usize, out: &mut BitSet) {
        self.fill_column(&self.supply, j, out);
    }

    /// Fills `out` (capacity `|V|`) with anchor `j`'s *sink frontier*: the
    /// sinks with at least one predecessor outside the sink side. Draining
    /// only here is flow-equivalent to draining every sink: the first sink
    /// on any source→sink path is a frontier sink, and sinks are uncuttable,
    /// so paths never need to continue past it. Empty iff the sink side is
    /// empty.
    ///
    /// # Panics
    /// Panics if `j` is out of range or `out` has the wrong capacity.
    pub fn fill_drain(&self, j: usize, out: &mut BitSet) {
        self.fill_column(&self.drain, j, out);
    }

    /// Fills `out` (capacity `|V|`) with anchor `j`'s *interior* vertices:
    /// sources whose successors all stay on the source side plus sinks whose
    /// predecessors are all sinks. The minimal canonical min-cut never
    /// passes through them, so the flow solver removes them from the network
    /// entirely (capacity-0 split arcs), shrinking every BFS phase to the
    /// active region around the cut.
    ///
    /// # Panics
    /// Panics if `j` is out of range or `out` has the wrong capacity.
    pub fn fill_blocked(&self, j: usize, out: &mut BitSet) {
        self.fill_column(&self.blocked, j, out);
    }

    /// Transposes column `j` of a packed row matrix into a vertex bitset.
    fn fill_column(&self, rows: &[u64], j: usize, out: &mut BitSet) {
        assert!(j < self.anchors.len(), "anchor index {j} out of batch");
        let n = rows.len() / self.stride.max(1);
        assert_eq!(out.capacity(), n, "output bitset must be sized to |V|");
        let (jw, jb) = (j / 64, j % 64);
        for block in 0..n.div_ceil(64) {
            let base = block * 64;
            let mut word = 0u64;
            for v in base..(base + 64).min(n) {
                word |= ((rows[v * self.stride + jw] >> jb) & 1) << (v - base);
            }
            out.set_block(block, word);
        }
    }
}

impl Default for BatchReach {
    fn default() -> Self {
        Self::new()
    }
}

#[derive(Clone, Copy)]
enum Direction {
    Forward,
    Backward,
}

fn neighbors(g: &Cdag, v: VertexId, dir: Direction) -> &[VertexId] {
    match dir {
        Direction::Forward => g.successors(v),
        Direction::Backward => g.predecessors(v),
    }
}

fn closure(g: &Cdag, v: VertexId, dir: Direction) -> BitSet {
    let mut out = BitSet::new(g.num_vertices());
    let mut stack = Vec::new();
    closure_into(g, v, dir, &mut out, &mut stack);
    out
}

fn closure_into(
    g: &Cdag,
    v: VertexId,
    dir: Direction,
    out: &mut BitSet,
    stack: &mut Vec<VertexId>,
) {
    assert_eq!(
        out.capacity(),
        g.num_vertices(),
        "closure scratch bitset must be sized to |V|"
    );
    out.clear();
    stack.clear();
    stack.push(v);
    while let Some(u) = stack.pop() {
        for &w in neighbors(g, u, dir) {
            if out.insert(w.index()) {
                stack.push(w);
            }
        }
    }
}

fn multi_closure(g: &Cdag, seeds: &BitSet, dir: Direction) -> BitSet {
    let mut out = BitSet::new(g.num_vertices());
    let mut stack: Vec<VertexId> = Vec::new();
    for s in seeds.iter() {
        let v = VertexId(s as u32);
        if out.insert(s) {
            stack.push(v);
        }
    }
    while let Some(u) = stack.pop() {
        for &w in neighbors(g, u, dir) {
            if out.insert(w.index()) {
                stack.push(w);
            }
        }
    }
    out
}

/// All-pairs reachability for small graphs: `result[u]` is the forward
/// closure of `{u}` including `u`. Quadratic memory — intended for the
/// exhaustive validators and tests, not production-size CDAGs.
pub fn all_pairs_reachability(g: &Cdag) -> Vec<BitSet> {
    let n = g.num_vertices();
    let order = crate::topo::topological_order(g);
    let mut reach: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
    // Process in reverse topological order so successors are complete.
    for &v in order.iter().rev() {
        let mut r = BitSet::new(n);
        r.insert(v.index());
        for &s in g.successors(v) {
            r.union_with(&reach[s.index()]);
        }
        reach[v.index()] = r;
    }
    reach
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CdagBuilder;

    fn diamond() -> Cdag {
        let mut b = CdagBuilder::new();
        let a = b.add_input("a");
        let x = b.add_op("b", &[a]);
        let y = b.add_op("c", &[a]);
        let d = b.add_op("d", &[x, y]);
        b.tag_output(d);
        b.build().unwrap()
    }

    #[test]
    fn ancestors_descendants_diamond() {
        let g = diamond();
        let (a, b, c, d) = (VertexId(0), VertexId(1), VertexId(2), VertexId(3));
        assert!(ancestors(&g, a).is_empty());
        assert_eq!(ancestors(&g, d).iter().count(), 3);
        assert_eq!(descendants(&g, a).iter().count(), 3);
        assert!(descendants(&g, d).is_empty());
        assert_eq!(ancestors(&g, b).iter().collect::<Vec<_>>(), vec![a.index()]);
        assert_eq!(
            descendants(&g, c).iter().collect::<Vec<_>>(),
            vec![d.index()]
        );
    }

    #[test]
    fn into_variants_match_and_reset_scratch() {
        let g = diamond();
        let mut out = BitSet::new(g.num_vertices());
        let mut stack = Vec::new();
        for v in g.vertices() {
            ancestors_into(&g, v, &mut out, &mut stack);
            assert_eq!(out, ancestors(&g, v), "ancestors_into({v})");
            descendants_into(&g, v, &mut out, &mut stack);
            assert_eq!(out, descendants(&g, v), "descendants_into({v})");
        }
    }

    #[test]
    fn reaches_works() {
        let g = diamond();
        let (a, b, c, d) = (VertexId(0), VertexId(1), VertexId(2), VertexId(3));
        assert!(reaches(&g, a, d));
        assert!(reaches(&g, a, a));
        assert!(!reaches(&g, d, a));
        assert!(!reaches(&g, b, c));
    }

    #[test]
    fn reaches_into_matches_reaches() {
        let g = diamond();
        let mut visited = BitSet::new(g.num_vertices());
        let mut stack = Vec::new();
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(
                    reaches_into(&g, u, v, &mut visited, &mut stack),
                    reaches(&g, u, v),
                    "mismatch for {u} -> {v}"
                );
            }
        }
    }

    #[test]
    fn batch_reach_matches_per_anchor_dfs() {
        // Chain with cross-links: enough vertices (> 64) that a full-graph
        // anchor batch needs two words per row, exercising the multi-word
        // union path.
        let mut b = CdagBuilder::new();
        let mut prev = b.add_input("i");
        let mut third = prev;
        for k in 1..90u32 {
            let v = if k % 3 == 0 {
                let v = b.add_op("op", &[prev, third]);
                third = v;
                v
            } else {
                b.add_op("op", &[prev])
            };
            prev = v;
        }
        b.tag_output(prev);
        let g = b.build().unwrap();
        let order = crate::topo::topological_order(&g);
        let anchors: Vec<VertexId> = g.vertices().collect();
        let mut batch = BatchReach::new();
        batch.compute(&g, &order, &anchors);
        let mut src = BitSet::new(g.num_vertices());
        let mut snk = BitSet::new(g.num_vertices());
        let mut expect = BitSet::new(g.num_vertices());
        let mut stack = Vec::new();
        for (j, &x) in anchors.iter().enumerate() {
            batch.fill_sources(j, &mut src);
            ancestors_into(&g, x, &mut expect, &mut stack);
            expect.insert(x.index());
            assert_eq!(src, expect, "sources of anchor {x}");
            batch.fill_sinks(j, &mut snk);
            descendants_into(&g, x, &mut expect, &mut stack);
            assert_eq!(snk, expect, "sinks of anchor {x}");
        }
    }

    #[test]
    fn batch_reach_roles_match_brute_force() {
        let mut b = CdagBuilder::new();
        let mut prev = b.add_input("i");
        let mut third = prev;
        for k in 1..70u32 {
            let v = if k % 4 == 0 {
                let v = b.add_op("op", &[prev, third]);
                third = v;
                v
            } else {
                b.add_op("op", &[prev])
            };
            prev = v;
        }
        b.tag_output(prev);
        let g = b.build().unwrap();
        let n = g.num_vertices();
        let order = crate::topo::topological_order(&g);
        let anchors: Vec<VertexId> = g.vertices().collect();
        let mut batch = BatchReach::new();
        batch.compute(&g, &order, &anchors);
        let mut got = BitSet::new(n);
        let mut sources = BitSet::new(n);
        let mut sinks = BitSet::new(n);
        let mut stack = Vec::new();
        for (j, &x) in anchors.iter().enumerate() {
            ancestors_into(&g, x, &mut sources, &mut stack);
            sources.insert(x.index());
            descendants_into(&g, x, &mut sinks, &mut stack);
            let mut supply = BitSet::new(n);
            let mut drain = BitSet::new(n);
            let mut blocked = BitSet::new(n);
            for v in sources.iter() {
                let frontier = g
                    .successors(VertexId(v as u32))
                    .iter()
                    .any(|s| !sources.contains(s.index()));
                if frontier {
                    supply.insert(v);
                } else {
                    blocked.insert(v);
                }
            }
            for v in sinks.iter() {
                let frontier = g
                    .predecessors(VertexId(v as u32))
                    .iter()
                    .any(|p| !sinks.contains(p.index()));
                if frontier {
                    drain.insert(v);
                } else {
                    blocked.insert(v);
                }
            }
            batch.fill_supply(j, &mut got);
            assert_eq!(got, supply, "supply of anchor {x}");
            batch.fill_drain(j, &mut got);
            assert_eq!(got, drain, "drain of anchor {x}");
            batch.fill_blocked(j, &mut got);
            assert_eq!(got, blocked, "blocked of anchor {x}");
        }
    }

    #[test]
    fn batch_reach_small_batch_single_word() {
        let g = diamond();
        let order = crate::topo::topological_order(&g);
        let mut batch = BatchReach::new();
        batch.compute(&g, &order, &[VertexId(0), VertexId(3)]);
        let mut s = BitSet::new(4);
        batch.fill_sources(0, &mut s);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0]);
        batch.fill_sinks(0, &mut s);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        batch.fill_sources(1, &mut s);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        batch.fill_sinks(1, &mut s);
        assert!(s.is_empty());
    }

    #[test]
    fn closures_include_seeds() {
        let g = diamond();
        let seeds = BitSet::from_indices(4, [1, 2]);
        let fwd = forward_closure(&g, &seeds);
        assert_eq!(fwd.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        let bwd = backward_closure(&g, &seeds);
        assert_eq!(bwd.iter().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn all_pairs_matches_reaches() {
        let g = diamond();
        let ap = all_pairs_reachability(&g);
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(
                    ap[u.index()].contains(v.index()),
                    reaches(&g, u, v),
                    "mismatch for {u} -> {v}"
                );
            }
        }
    }
}
