//! Ancestor/descendant reachability.
//!
//! The convex-cut machinery of the paper (Section 3.3) anchors each cut at a
//! vertex `x`: `Sx ⊇ {x} ∪ Anc(x)` and `Tx ⊇ Desc(x)`. These traversals are
//! the hot inner loop of the automated min-cut wavefront heuristic, so they
//! operate on bitsets and reuse scratch buffers where it matters.

use crate::bitset::BitSet;
use crate::graph::{Cdag, VertexId};

/// Set of strict ancestors of `v` (excluding `v` itself) as a bitset.
pub fn ancestors(g: &Cdag, v: VertexId) -> BitSet {
    closure(g, v, Direction::Backward)
}

/// Set of strict descendants of `v` (excluding `v` itself) as a bitset.
pub fn descendants(g: &Cdag, v: VertexId) -> BitSet {
    closure(g, v, Direction::Forward)
}

/// Scratch-reusing [`ancestors`]: clears and fills `out` (whose capacity
/// must be `|V|`) instead of allocating, reusing `stack` for the DFS.
pub fn ancestors_into(g: &Cdag, v: VertexId, out: &mut BitSet, stack: &mut Vec<VertexId>) {
    closure_into(g, v, Direction::Backward, out, stack)
}

/// Scratch-reusing [`descendants`]: clears and fills `out` (whose capacity
/// must be `|V|`) instead of allocating, reusing `stack` for the DFS.
pub fn descendants_into(g: &Cdag, v: VertexId, out: &mut BitSet, stack: &mut Vec<VertexId>) {
    closure_into(g, v, Direction::Forward, out, stack)
}

/// Set of all vertices reachable from any seed in `seeds` (following edges
/// forward), *including* the seeds.
pub fn forward_closure(g: &Cdag, seeds: &BitSet) -> BitSet {
    multi_closure(g, seeds, Direction::Forward)
}

/// Set of all vertices that can reach any seed in `seeds` (following edges
/// backward), *including* the seeds.
pub fn backward_closure(g: &Cdag, seeds: &BitSet) -> BitSet {
    multi_closure(g, seeds, Direction::Backward)
}

/// `true` if a directed path `u ⇝ v` exists (including `u == v`).
pub fn reaches(g: &Cdag, u: VertexId, v: VertexId) -> bool {
    if u == v {
        return true;
    }
    let mut visited = BitSet::new(g.num_vertices());
    let mut stack = vec![u];
    visited.insert(u.index());
    while let Some(w) = stack.pop() {
        for &s in g.successors(w) {
            if s == v {
                return true;
            }
            if visited.insert(s.index()) {
                stack.push(s);
            }
        }
    }
    false
}

#[derive(Clone, Copy)]
enum Direction {
    Forward,
    Backward,
}

fn neighbors(g: &Cdag, v: VertexId, dir: Direction) -> &[VertexId] {
    match dir {
        Direction::Forward => g.successors(v),
        Direction::Backward => g.predecessors(v),
    }
}

fn closure(g: &Cdag, v: VertexId, dir: Direction) -> BitSet {
    let mut out = BitSet::new(g.num_vertices());
    let mut stack = Vec::new();
    closure_into(g, v, dir, &mut out, &mut stack);
    out
}

fn closure_into(
    g: &Cdag,
    v: VertexId,
    dir: Direction,
    out: &mut BitSet,
    stack: &mut Vec<VertexId>,
) {
    assert_eq!(
        out.capacity(),
        g.num_vertices(),
        "closure scratch bitset must be sized to |V|"
    );
    out.clear();
    stack.clear();
    stack.push(v);
    while let Some(u) = stack.pop() {
        for &w in neighbors(g, u, dir) {
            if out.insert(w.index()) {
                stack.push(w);
            }
        }
    }
}

fn multi_closure(g: &Cdag, seeds: &BitSet, dir: Direction) -> BitSet {
    let mut out = BitSet::new(g.num_vertices());
    let mut stack: Vec<VertexId> = Vec::new();
    for s in seeds.iter() {
        let v = VertexId(s as u32);
        if out.insert(s) {
            stack.push(v);
        }
    }
    while let Some(u) = stack.pop() {
        for &w in neighbors(g, u, dir) {
            if out.insert(w.index()) {
                stack.push(w);
            }
        }
    }
    out
}

/// All-pairs reachability for small graphs: `result[u]` is the forward
/// closure of `{u}` including `u`. Quadratic memory — intended for the
/// exhaustive validators and tests, not production-size CDAGs.
pub fn all_pairs_reachability(g: &Cdag) -> Vec<BitSet> {
    let n = g.num_vertices();
    let order = crate::topo::topological_order(g);
    let mut reach: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
    // Process in reverse topological order so successors are complete.
    for &v in order.iter().rev() {
        let mut r = BitSet::new(n);
        r.insert(v.index());
        for &s in g.successors(v) {
            r.union_with(&reach[s.index()]);
        }
        reach[v.index()] = r;
    }
    reach
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CdagBuilder;

    fn diamond() -> Cdag {
        let mut b = CdagBuilder::new();
        let a = b.add_input("a");
        let x = b.add_op("b", &[a]);
        let y = b.add_op("c", &[a]);
        let d = b.add_op("d", &[x, y]);
        b.tag_output(d);
        b.build().unwrap()
    }

    #[test]
    fn ancestors_descendants_diamond() {
        let g = diamond();
        let (a, b, c, d) = (VertexId(0), VertexId(1), VertexId(2), VertexId(3));
        assert!(ancestors(&g, a).is_empty());
        assert_eq!(ancestors(&g, d).iter().count(), 3);
        assert_eq!(descendants(&g, a).iter().count(), 3);
        assert!(descendants(&g, d).is_empty());
        assert_eq!(ancestors(&g, b).iter().collect::<Vec<_>>(), vec![a.index()]);
        assert_eq!(
            descendants(&g, c).iter().collect::<Vec<_>>(),
            vec![d.index()]
        );
    }

    #[test]
    fn into_variants_match_and_reset_scratch() {
        let g = diamond();
        let mut out = BitSet::new(g.num_vertices());
        let mut stack = Vec::new();
        for v in g.vertices() {
            ancestors_into(&g, v, &mut out, &mut stack);
            assert_eq!(out, ancestors(&g, v), "ancestors_into({v})");
            descendants_into(&g, v, &mut out, &mut stack);
            assert_eq!(out, descendants(&g, v), "descendants_into({v})");
        }
    }

    #[test]
    fn reaches_works() {
        let g = diamond();
        let (a, b, c, d) = (VertexId(0), VertexId(1), VertexId(2), VertexId(3));
        assert!(reaches(&g, a, d));
        assert!(reaches(&g, a, a));
        assert!(!reaches(&g, d, a));
        assert!(!reaches(&g, b, c));
    }

    #[test]
    fn closures_include_seeds() {
        let g = diamond();
        let seeds = BitSet::from_indices(4, [1, 2]);
        let fwd = forward_closure(&g, &seeds);
        assert_eq!(fwd.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        let bwd = backward_closure(&g, &seeds);
        assert_eq!(bwd.iter().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn all_pairs_matches_reaches() {
        let g = diamond();
        let ap = all_pairs_reachability(&g);
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(
                    ap[u.index()].contains(v.index()),
                    reaches(&g, u, v),
                    "mismatch for {u} -> {v}"
                );
            }
        }
    }
}
