//! Minimum dominator-set cardinalities (Hong–Kung S-partition, condition P3).
//!
//! A *dominator set* `D` of a vertex set `V_i` is a set of vertices such
//! that every path from the CDAG inputs `I` to a vertex of `V_i` contains a
//! vertex of `D` (Definition 3 of the paper). Condition P3 of an
//! S-partition requires some dominator of size ≤ S. The minimum dominator
//! cardinality is a vertex min-cut between `I` and `V_i` where the cut may
//! pass through vertices of `I` and of `V_i` themselves.

use crate::bitset::BitSet;
use crate::flow::{vertex_min_cut, VertexCut, VertexCutOptions};
use crate::graph::{Cdag, VertexId};

/// Computes a minimum-cardinality dominator set of `set` with respect to the
/// tagged inputs of `g`.
///
/// Every `I → set` path must pass through the returned vertices. Vertices of
/// `set` reachable from no input need no domination; if `set` is disjoint
/// from all input-reachable vertices the empty dominator is returned.
pub fn min_dominator(g: &Cdag, set: &BitSet) -> VertexCut {
    min_dominator_from(g, g.inputs(), set)
}

/// As [`min_dominator`] but with an explicit source set instead of the
/// CDAG's tagged inputs.
pub fn min_dominator_from(g: &Cdag, sources: &BitSet, set: &BitSet) -> VertexCut {
    vertex_min_cut(
        g,
        sources,
        set,
        VertexCutOptions {
            sources_cuttable: true,
            sinks_cuttable: true,
        },
    )
    // dmc-lint: allow(s1) -- every sink vertex is cuttable in the dominator network, so a finite min cut always exists; pinned by dominator tests
    .expect("dominator cut always finite: every sink vertex is cuttable")
}

/// Checks that `dom` dominates `set`: removing `dom` leaves no `I → set`
/// path. `O(|V| + |E|)` validation helper used in partition certification.
pub fn is_dominator(g: &Cdag, sources: &BitSet, set: &BitSet, dom: &[VertexId]) -> bool {
    crate::flow::is_separating_vertex_set(g, sources, set, dom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CdagBuilder;

    /// 2x2 matrix-multiply-like funnel: 4 inputs, 2 products each consuming
    /// 2 inputs, 1 sum consuming both products.
    fn funnel() -> Cdag {
        let mut b = CdagBuilder::new();
        let a0 = b.add_input("a0");
        let a1 = b.add_input("a1");
        let b0 = b.add_input("b0");
        let b1 = b.add_input("b1");
        let p0 = b.add_op("p0", &[a0, b0]);
        let p1 = b.add_op("p1", &[a1, b1]);
        let s = b.add_op("s", &[p0, p1]);
        b.tag_output(s);
        b.build().unwrap()
    }

    #[test]
    fn dominator_of_sum_is_two_products_or_itself() {
        let g = funnel();
        let set = BitSet::from_indices(7, [6]); // {s}
        let d = min_dominator(&g, &set);
        // {s} itself dominates (size 1).
        assert_eq!(d.size, 1);
        assert!(is_dominator(&g, g.inputs(), &set, &d.vertices));
    }

    #[test]
    fn dominator_of_products_pair() {
        let g = funnel();
        let set = BitSet::from_indices(7, [4, 5]); // {p0, p1}
        let d = min_dominator(&g, &set);
        // Either {p0, p1} or any 2-element separator; 4 inputs needed
        // otherwise, so minimum is 2.
        assert_eq!(d.size, 2);
        assert!(is_dominator(&g, g.inputs(), &set, &d.vertices));
    }

    #[test]
    fn unreachable_set_has_empty_dominator() {
        let mut b = CdagBuilder::new();
        let _i = b.add_input("i");
        let free = b.add_vertex("free"); // no predecessors, not an input
        let z = b.add_op("z", &[free]);
        b.tag_output(z);
        let g = b.build().unwrap();
        let set = BitSet::from_indices(3, [z.index()]);
        let d = min_dominator(&g, &set);
        assert_eq!(d.size, 0, "no input reaches z, so ∅ dominates");
    }

    #[test]
    fn dominator_bounded_by_inputs_and_by_set() {
        let g = funnel();
        // Dominator of everything reachable: at most |I| (cut all inputs)
        // and at most |set|.
        let all: BitSet = BitSet::full(7);
        let d = min_dominator(&g, &all);
        assert!(d.size <= g.num_inputs());
        assert!(is_dominator(&g, g.inputs(), &all, &d.vertices));
    }
}
