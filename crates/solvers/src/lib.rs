//! # dmc-solvers — numerical substrate
//!
//! Executable counterparts of the algorithms whose CDAGs the paper
//! analyzes (Section 5): the iterative linear solvers and the model
//! problem that motivates them.
//!
//! * [`vector`] — dense vector kernels (dot, axpy, norms), with
//!   crossbeam-parallel variants for large vectors;
//! * [`csr`] — compressed-sparse-row matrices and SpMV;
//! * [`grid`] — d-dimensional grid Laplacians / heat operators, both as
//!   explicit CSR matrices and matrix-free stencil application;
//! * [`tridiag`] — the Thomas algorithm for tridiagonal systems
//!   (Equation 11 of Section 5.1);
//! * [`cg`] — Conjugate Gradient (Figure 3);
//! * [`gmres`] — restarted GMRES with modified Gram–Schmidt and Givens
//!   rotations (Figure 4);
//! * [`jacobi`] — (weighted) Jacobi iteration and raw stencil sweeps
//!   (Section 5.4);
//! * [`heat`] — the 1-D heat-equation driver of Section 5.1 / Figure 2:
//!   Crank–Nicolson time stepping over the tridiagonal system.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cg;
pub mod csr;
pub mod fft;
pub mod gmres;
pub mod grid;
pub mod heat;
pub mod jacobi;
pub mod tridiag;
pub mod vector;
