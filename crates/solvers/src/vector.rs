//! Dense vector kernels.
//!
//! Sequential versions for small vectors plus scoped-thread parallel
//! variants used by the larger benchmark problems. The parallel variants
//! split into contiguous chunks (good locality, no false sharing on
//! writes) and are exact — reductions sum per-chunk partials in chunk
//! order, so results are deterministic for a fixed thread count.

/// Dot product `⟨x, y⟩`.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// `y ← y + alpha·x` (axpy).
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y ← x + beta·y` (xpby — the CG direction update).
pub fn xpby(x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = xi + beta * *yi;
    }
}

/// Euclidean norm `‖x‖₂`.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// `x ← alpha·x`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Maximum absolute difference between two vectors.
pub fn max_abs_diff(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    x.iter()
        .zip(y)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

/// Threshold below which the parallel variants fall back to sequential.
const PAR_THRESHOLD: usize = 1 << 15;

/// Parallel dot product over `threads` scoped workers. Per-chunk partials
/// are merged in chunk-index order via [`dmc_cdag::fanout::fan_out_indexed`],
/// so the floating-point sum is bit-identical to the single-threaded
/// chunked sum at any worker count (lint rule S2).
pub fn par_dot(x: &[f64], y: &[f64], threads: usize) -> f64 {
    assert_eq!(x.len(), y.len());
    if threads <= 1 || x.len() < PAR_THRESHOLD {
        return dot(x, y);
    }
    let chunk = x.len().div_ceil(threads);
    dmc_cdag::fanout::fan_out_indexed(
        threads,
        threads,
        || (),
        |_, i| {
            let lo = (i * chunk).min(x.len());
            let hi = ((i + 1) * chunk).min(x.len());
            dot(&x[lo..hi], &y[lo..hi])
        },
    )
    .into_iter()
    .sum()
}

/// Parallel axpy over `threads` scoped workers.
pub fn par_axpy(alpha: f64, x: &[f64], y: &mut [f64], threads: usize) {
    assert_eq!(x.len(), y.len());
    if threads <= 1 || x.len() < PAR_THRESHOLD {
        return axpy(alpha, x, y);
    }
    let chunk = x.len().div_ceil(threads);
    // dmc-lint: allow(s2) -- no merge exists: workers write disjoint &mut slices of y in place, so the result is independent of scheduling order by construction
    std::thread::scope(|scope| {
        let mut rest = &mut y[..];
        let mut offset = 0usize;
        for _ in 0..threads {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            let xs = &x[offset..offset + take];
            scope.spawn(move || {
                axpy(alpha, xs, head);
            });
            rest = tail;
            offset += take;
            if rest.is_empty() {
                break;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_axpy_norm() {
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![4.0, 5.0, 6.0];
        assert_eq!(dot(&x, &y), 32.0);
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![6.0, 9.0, 12.0]);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn xpby_matches_formula() {
        let x = vec![1.0, 1.0];
        let mut y = vec![10.0, 20.0];
        xpby(&x, 0.5, &mut y);
        assert_eq!(y, vec![6.0, 11.0]);
    }

    #[test]
    fn scale_and_diff() {
        let mut x = vec![1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, vec![-3.0, 6.0]);
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.5, 0.0]), 2.0);
    }

    #[test]
    fn parallel_matches_sequential() {
        let n = 100_000;
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).cos()).collect();
        let seq = dot(&x, &y);
        for t in [2usize, 4, 7] {
            let par = par_dot(&x, &y, t);
            assert!((par - seq).abs() < 1e-9 * seq.abs().max(1.0), "t={t}");
        }
        let mut y1 = y.clone();
        let mut y2 = y.clone();
        axpy(1.5, &x, &mut y1);
        par_axpy(1.5, &x, &mut y2, 4);
        assert_eq!(max_abs_diff(&y1, &y2), 0.0);
    }

    /// Regression for routing `par_dot` through `fan_out_indexed` (lint
    /// rule S2): the parallel result is bit-identical to the sequential
    /// chunk-ordered sum — not merely within tolerance — at every thread
    /// count, because partials are merged in chunk-index order.
    #[test]
    fn par_dot_merge_is_bitwise_chunk_ordered() {
        let n = 1usize << 16;
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.73).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.29).cos()).collect();
        for t in [2usize, 3, 8] {
            let chunk = n.div_ceil(t);
            let expected: f64 = (0..t)
                .map(|i| {
                    let lo = (i * chunk).min(n);
                    let hi = ((i + 1) * chunk).min(n);
                    dot(&x[lo..hi], &y[lo..hi])
                })
                .sum();
            assert_eq!(par_dot(&x, &y, t).to_bits(), expected.to_bits(), "t={t}");
        }
    }

    #[test]
    fn parallel_small_falls_back() {
        let x = vec![1.0; 10];
        let y = vec![2.0; 10];
        assert_eq!(par_dot(&x, &y, 8), 20.0);
    }
}
