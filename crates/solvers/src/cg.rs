//! Conjugate Gradient (Hestenes–Stiefel), the pseudocode of the paper's
//! Figure 3, over any operator given as a closure `y ← A·x`.

use crate::vector::{axpy, dot, norm2, xpby};

/// Convergence/work statistics of a CG solve.
#[derive(Debug, Clone)]
pub struct CgResult {
    /// The approximate solution.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final residual norm `‖b − Ax‖₂`.
    pub residual_norm: f64,
    /// Residual norm after each iteration.
    pub history: Vec<f64>,
    /// `true` if the tolerance was reached within the iteration cap.
    pub converged: bool,
}

/// Solves `A·x = b` for a symmetric positive-definite operator.
///
/// * `apply_a(x, y)` computes `y ← A·x`;
/// * `x0` is the initial guess;
/// * stops when `‖r‖₂ ≤ tol·‖b‖₂` or after `max_iter` iterations.
pub fn cg<F>(apply_a: F, b: &[f64], x0: &[f64], tol: f64, max_iter: usize) -> CgResult
where
    F: Fn(&[f64], &mut [f64]),
{
    let n = b.len();
    assert_eq!(x0.len(), n);
    let mut x = x0.to_vec();
    let mut v = vec![0.0; n];
    // r = b − A x.
    apply_a(&x, &mut v);
    let mut r: Vec<f64> = b.iter().zip(&v).map(|(bi, vi)| bi - vi).collect();
    let mut p = r.clone();
    let b_norm = norm2(b).max(f64::MIN_POSITIVE);
    let mut rr = dot(&r, &r);
    let mut history = Vec::new();
    let mut iterations = 0;

    while iterations < max_iter {
        let res = rr.sqrt();
        history.push(res);
        if res <= tol * b_norm {
            return CgResult {
                x,
                iterations,
                residual_norm: res,
                history,
                converged: true,
            };
        }
        apply_a(&p, &mut v); // v = A p
        let pv = dot(&p, &v);
        assert!(pv > 0.0, "operator is not positive definite (p·Ap = {pv})");
        let alpha = rr / pv;
        axpy(alpha, &p, &mut x); // x += α p
        axpy(-alpha, &v, &mut r); // r −= α v
        let rr_new = dot(&r, &r);
        let beta = rr_new / rr;
        xpby(&r, beta, &mut p); // p = r + β p
        rr = rr_new;
        iterations += 1;
    }
    let res = rr.sqrt();
    history.push(res);
    CgResult {
        x,
        iterations,
        residual_norm: res,
        history,
        converged: res <= tol * b_norm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridOperator;
    use crate::vector::max_abs_diff;

    #[test]
    fn solves_identity_instantly() {
        let b = vec![3.0, -1.0, 2.0];
        let r = cg(|x, y| y.copy_from_slice(x), &b, &[0.0; 3], 1e-12, 10);
        assert!(r.converged);
        assert!(max_abs_diff(&r.x, &b) < 1e-10);
        assert!(r.iterations <= 2);
    }

    #[test]
    fn solves_1d_laplacian() {
        let op = GridOperator::new(32, 1);
        let b = op.manufactured_rhs();
        let r = cg(|x, y| op.apply(x, y), &b, &vec![0.0; op.len()], 1e-10, 200);
        assert!(r.converged, "residual {}", r.residual_norm);
        // Verify: A x ≈ b.
        let mut ax = vec![0.0; op.len()];
        op.apply(&r.x, &mut ax);
        assert!(max_abs_diff(&ax, &b) < 1e-7);
    }

    #[test]
    fn solves_3d_poisson() {
        let op = GridOperator::new(8, 3);
        let b = op.manufactured_rhs();
        let r = cg(|x, y| op.apply(x, y), &b, &vec![0.0; op.len()], 1e-9, 500);
        assert!(r.converged);
        let mut ax = vec![0.0; op.len()];
        op.apply(&r.x, &mut ax);
        assert!(max_abs_diff(&ax, &b) < 1e-6);
    }

    #[test]
    fn cg_converges_in_at_most_n_iterations() {
        // Exact-arithmetic CG terminates in n steps; allow slack for
        // floating point.
        let op = GridOperator::new(10, 1);
        let b = op.manufactured_rhs();
        let r = cg(|x, y| op.apply(x, y), &b, &[0.0; 10], 1e-12, 30);
        assert!(r.converged);
        assert!(r.iterations <= 15, "{} iterations", r.iterations);
    }

    #[test]
    fn residual_history_is_recorded() {
        let op = GridOperator::new(16, 1);
        let b = op.generic_rhs();
        let r = cg(|x, y| op.apply(x, y), &b, &[0.0; 16], 1e-10, 100);
        assert_eq!(r.history.len(), r.iterations + 1);
        assert!(r.history.last().unwrap() < r.history.first().unwrap());
    }

    #[test]
    fn honest_about_non_convergence() {
        let op = GridOperator::new(64, 2);
        let b = op.generic_rhs();
        let r = cg(|x, y| op.apply(x, y), &b, &vec![0.0; op.len()], 1e-14, 2);
        assert!(!r.converged);
        assert_eq!(r.iterations, 2);
    }
}
