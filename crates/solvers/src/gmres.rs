//! Restarted GMRES with modified Gram–Schmidt and Givens rotations — the
//! pseudocode of the paper's Figure 4.

use crate::vector::{dot, norm2};

/// Convergence/work statistics of a GMRES solve.
#[derive(Debug, Clone)]
pub struct GmresResult {
    /// The approximate solution.
    pub x: Vec<f64>,
    /// Total inner iterations performed (Krylov vectors built).
    pub iterations: usize,
    /// Number of restarts taken.
    pub restarts: usize,
    /// Final residual norm estimate.
    pub residual_norm: f64,
    /// Residual estimate after each inner iteration.
    pub history: Vec<f64>,
    /// `true` if the tolerance was reached.
    pub converged: bool,
}

/// Solves `A·x = b` with GMRES(m) for a general (possibly non-symmetric)
/// operator.
///
/// * `apply_a(x, y)` computes `y ← A·x`;
/// * `m` is the Krylov dimension between restarts;
/// * stops when the Givens-estimated residual `≤ tol·‖b‖₂`, or after
///   `max_restarts` outer cycles.
pub fn gmres<F>(
    apply_a: F,
    b: &[f64],
    x0: &[f64],
    m: usize,
    tol: f64,
    max_restarts: usize,
) -> GmresResult
where
    F: Fn(&[f64], &mut [f64]),
{
    let n = b.len();
    assert!(m >= 1 && n >= 1);
    assert_eq!(x0.len(), n);
    let b_norm = norm2(b).max(f64::MIN_POSITIVE);
    let mut x = x0.to_vec();
    let mut history = Vec::new();
    let mut total_iters = 0usize;
    let mut scratch = vec![0.0; n];

    for restart in 0..=max_restarts {
        // r0 = b − A x.
        apply_a(&x, &mut scratch);
        let r0: Vec<f64> = b.iter().zip(&scratch).map(|(bi, vi)| bi - vi).collect();
        let beta = norm2(&r0);
        if beta <= tol * b_norm {
            return GmresResult {
                x,
                iterations: total_iters,
                restarts: restart,
                residual_norm: beta,
                history,
                converged: true,
            };
        }
        // Krylov basis V and Hessenberg H (column-major, m+1 rows used).
        let mut basis: Vec<Vec<f64>> = Vec::with_capacity(m + 1);
        basis.push(r0.iter().map(|v| v / beta).collect());
        // Hessenberg H as h[row][col].
        let mut h = vec![vec![0.0f64; m]; m + 2];
        // Givens rotation state and transformed rhs g.
        let mut cs = vec![0.0f64; m];
        let mut sn = vec![0.0f64; m];
        let mut g = vec![0.0f64; m + 1];
        g[0] = beta;
        let mut k_done = 0usize;

        for k in 0..m {
            // w = A v_k, orthogonalized against the basis (MGS).
            apply_a(&basis[k], &mut scratch);
            let mut w = scratch.clone();
            for (j, vj) in basis.iter().enumerate() {
                let hjk = dot(&w, vj);
                h[j][k] = hjk;
                for (wi, vji) in w.iter_mut().zip(vj) {
                    *wi -= hjk * vji;
                }
            }
            let hk1 = norm2(&w);
            h[k + 1][k] = hk1;
            // Apply the accumulated Givens rotations to column k.
            for j in 0..k {
                let t = cs[j] * h[j][k] + sn[j] * h[j + 1][k];
                h[j + 1][k] = -sn[j] * h[j][k] + cs[j] * h[j + 1][k];
                h[j][k] = t;
            }
            // New rotation annihilating h[k+1][k].
            let denom = (h[k][k] * h[k][k] + hk1 * hk1).sqrt();
            if denom < f64::MIN_POSITIVE {
                cs[k] = 1.0;
                sn[k] = 0.0;
            } else {
                cs[k] = h[k][k] / denom;
                sn[k] = hk1 / denom;
            }
            h[k][k] = cs[k] * h[k][k] + sn[k] * hk1;
            h[k + 1][k] = 0.0;
            g[k + 1] = -sn[k] * g[k];
            g[k] *= cs[k];
            total_iters += 1;
            k_done = k + 1;
            let res_est = g[k + 1].abs();
            history.push(res_est);
            if res_est <= tol * b_norm || hk1 < f64::MIN_POSITIVE {
                break;
            }
            basis.push(w.iter().map(|v| v / hk1).collect());
        }

        // Back-substitute y from the triangularized H, update x.
        let k = k_done;
        let mut y = vec![0.0f64; k];
        for i in (0..k).rev() {
            let mut acc = g[i];
            for j in (i + 1)..k {
                acc -= h[i][j] * y[j];
            }
            assert!(h[i][i].abs() > 0.0, "singular Hessenberg at {i}");
            y[i] = acc / h[i][i];
        }
        for (j, yj) in y.iter().enumerate() {
            for (xi, vji) in x.iter_mut().zip(&basis[j]) {
                *xi += yj * vji;
            }
        }
        let res_est = g[k].abs();
        if res_est <= tol * b_norm {
            return GmresResult {
                x,
                iterations: total_iters,
                restarts: restart,
                residual_norm: res_est,
                history,
                converged: true,
            };
        }
    }
    // Final true residual.
    apply_a(&x, &mut scratch);
    let res = b
        .iter()
        .zip(&scratch)
        .map(|(bi, vi)| (bi - vi) * (bi - vi))
        .sum::<f64>()
        .sqrt();
    GmresResult {
        x,
        iterations: total_iters,
        restarts: max_restarts,
        residual_norm: res,
        history,
        converged: res <= tol * b_norm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrMatrix;
    use crate::grid::GridOperator;
    use crate::vector::max_abs_diff;

    #[test]
    fn solves_identity() {
        let b = vec![1.0, 2.0, 3.0];
        let r = gmres(|x, y| y.copy_from_slice(x), &b, &[0.0; 3], 3, 1e-12, 5);
        assert!(r.converged);
        assert!(max_abs_diff(&r.x, &b) < 1e-10);
    }

    #[test]
    fn solves_spd_laplacian() {
        let op = GridOperator::new(24, 1);
        let b = op.generic_rhs();
        let r = gmres(|x, y| op.apply(x, y), &b, &[0.0; 24], 24, 1e-10, 4);
        assert!(r.converged, "residual {}", r.residual_norm);
        let mut ax = vec![0.0; 24];
        op.apply(&r.x, &mut ax);
        assert!(max_abs_diff(&ax, &b) < 1e-7);
    }

    #[test]
    fn solves_nonsymmetric_system() {
        // Upwind-ish convection-diffusion: asymmetric tridiagonal.
        let n = 20;
        let mut triplets = Vec::new();
        for i in 0..n {
            triplets.push((i, i, 3.0));
            if i > 0 {
                triplets.push((i, i - 1, -1.5));
            }
            if i + 1 < n {
                triplets.push((i, i + 1, -0.5));
            }
        }
        let a = CsrMatrix::from_triplets(n, n, triplets);
        assert!(!a.is_symmetric());
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).cos()).collect();
        let b = a.apply(&x_true);
        let r = gmres(|x, y| a.spmv(x, y), &b, &vec![0.0; n], n, 1e-12, 3);
        assert!(r.converged);
        assert!(max_abs_diff(&r.x, &x_true) < 1e-8);
    }

    #[test]
    fn restarting_still_converges() {
        let op = GridOperator::new(30, 1);
        let b = op.generic_rhs();
        // Tiny Krylov space m = 5 with many restarts.
        let r = gmres(|x, y| op.apply(x, y), &b, &vec![0.0; 30], 5, 1e-8, 200);
        assert!(r.converged, "residual {}", r.residual_norm);
        assert!(r.restarts > 0);
    }

    #[test]
    fn history_monotone_within_cycle() {
        // The Givens residual estimate is non-increasing inside one cycle.
        let op = GridOperator::new(16, 1);
        let b = op.generic_rhs();
        let r = gmres(|x, y| op.apply(x, y), &b, &[0.0; 16], 16, 1e-12, 1);
        for w in r.history.windows(2) {
            assert!(w[1] <= w[0] * (1.0 + 1e-9), "{} > {}", w[1], w[0]);
        }
    }

    #[test]
    fn honest_about_non_convergence() {
        let op = GridOperator::new(40, 2);
        let b = op.generic_rhs();
        let r = gmres(|x, y| op.apply(x, y), &b, &vec![0.0; op.len()], 2, 1e-14, 1);
        assert!(!r.converged);
    }
}
