//! The 1-D heat-equation model problem (Section 5.1, Figure 2).
//!
//! `∂u/∂t = ∂²u/∂x²` on a unit bar with zero-temperature (Dirichlet)
//! boundaries, discretized with grid spacing `h = 1/(n+1)` and time step
//! `k`, using the Crank–Nicolson scheme of Equation 11:
//!
//! ```text
//! −a/2·U(i−1,m+1) + (1+a)·U(i,m+1) − a/2·U(i+1,m+1)
//!   = a/2·U(i−1,m) + (1−a)·U(i,m) + a/2·U(i+1,m),     a = k/h²
//! ```
//!
//! Each step solves the tridiagonal system with the Thomas algorithm. The
//! module also provides the analytic separation-of-variables solution for
//! validation.

use crate::tridiag::Tridiagonal;

/// Configuration of the discretized bar.
#[derive(Debug, Clone, Copy)]
pub struct HeatProblem {
    /// Interior grid points `n` (grid spacing `h = 1/(n+1)`).
    pub n: usize,
    /// Time step `k`.
    pub dt: f64,
}

impl HeatProblem {
    /// Creates a problem; `a = dt/h²` is unrestricted thanks to
    /// Crank–Nicolson's unconditional stability.
    pub fn new(n: usize, dt: f64) -> Self {
        assert!(n >= 1 && dt > 0.0);
        HeatProblem { n, dt }
    }

    /// Grid spacing `h`.
    pub fn h(&self) -> f64 {
        1.0 / (self.n as f64 + 1.0)
    }

    /// The mesh ratio `a = k/h²` of Equation 11.
    pub fn mesh_ratio(&self) -> f64 {
        self.dt / (self.h() * self.h())
    }

    /// Coordinates of the interior grid points.
    pub fn grid(&self) -> Vec<f64> {
        (1..=self.n).map(|i| i as f64 * self.h()).collect()
    }

    /// The left-hand-side matrix of Equation 11.
    pub fn lhs_matrix(&self) -> Tridiagonal {
        let a = self.mesh_ratio();
        Tridiagonal::constant(self.n, -a / 2.0, 1.0 + a, -a / 2.0)
    }

    /// The right-hand side `b(·, m)` for the current field `u`.
    pub fn rhs(&self, u: &[f64]) -> Vec<f64> {
        assert_eq!(u.len(), self.n);
        let a = self.mesh_ratio();
        (0..self.n)
            .map(|i| {
                let left = if i > 0 { u[i - 1] } else { 0.0 };
                let right = if i + 1 < self.n { u[i + 1] } else { 0.0 };
                a / 2.0 * left + (1.0 - a) * u[i] + a / 2.0 * right
            })
            .collect()
    }

    /// Advances `u` by one Crank–Nicolson step.
    pub fn step(&self, u: &[f64]) -> Vec<f64> {
        self.lhs_matrix().solve(&self.rhs(u))
    }

    /// Advances `u0` by `steps` time steps.
    pub fn run(&self, u0: &[f64], steps: usize) -> Vec<f64> {
        let mut u = u0.to_vec();
        for _ in 0..steps {
            u = self.step(&u);
        }
        u
    }

    /// Analytic solution at time `t` for the initial condition
    /// `u(x, 0) = sin(π x)`: `u(x, t) = e^{−π²t}·sin(π x)`.
    pub fn analytic_sine_mode(&self, t: f64) -> Vec<f64> {
        let pi = std::f64::consts::PI;
        self.grid()
            .into_iter()
            .map(|x| (-pi * pi * t).exp() * (pi * x).sin())
            .collect()
    }

    /// The `sin(π x)` initial condition matching
    /// [`HeatProblem::analytic_sine_mode`].
    pub fn sine_initial_condition(&self) -> Vec<f64> {
        let pi = std::f64::consts::PI;
        self.grid().into_iter().map(|x| (pi * x).sin()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::max_abs_diff;

    #[test]
    fn matches_analytic_solution() {
        let p = HeatProblem::new(63, 1e-4);
        let u0 = p.sine_initial_condition();
        let steps = 200;
        let u = p.run(&u0, steps);
        let exact = p.analytic_sine_mode(steps as f64 * p.dt);
        let err = max_abs_diff(&u, &exact);
        assert!(err < 2e-4, "max error {err}");
    }

    #[test]
    fn heat_decays_monotonically() {
        let p = HeatProblem::new(31, 1e-3);
        let mut u = p.sine_initial_condition();
        let mut prev_max = f64::INFINITY;
        for _ in 0..10 {
            u = p.step(&u);
            let cur_max = u.iter().cloned().fold(0.0, f64::max);
            assert!(cur_max < prev_max);
            prev_max = cur_max;
        }
    }

    #[test]
    fn boundaries_stay_cold() {
        // Dirichlet: the solution decays everywhere; no artificial heat
        // enters from the boundary rows.
        let p = HeatProblem::new(9, 1e-3);
        let u = p.run(&[1.0; 9], 100);
        assert!(u.iter().all(|&v| (0.0..1.0).contains(&v)));
        // Edge points cool fastest.
        assert!(u[0] < u[4]);
    }

    #[test]
    fn mesh_ratio_formula() {
        let p = HeatProblem::new(9, 0.01);
        // h = 0.1, a = 0.01/0.01 = 1.
        assert!((p.mesh_ratio() - 1.0).abs() < 1e-12);
        assert_eq!(p.grid().len(), 9);
    }

    #[test]
    fn large_timestep_is_stable() {
        // Crank–Nicolson is unconditionally stable: a = 40 doesn't blow up.
        let p = HeatProblem::new(19, 0.1);
        assert!(p.mesh_ratio() > 10.0);
        let u = p.run(&p.sine_initial_condition(), 50);
        assert!(u.iter().all(|v| v.abs() < 1.0));
    }
}
