//! (Weighted) Jacobi iteration and raw stencil sweeps (Section 5.4).

use crate::csr::CsrMatrix;

/// Result of a Jacobi iterative solve.
#[derive(Debug, Clone)]
pub struct JacobiResult {
    /// The approximate solution.
    pub x: Vec<f64>,
    /// Sweeps performed.
    pub iterations: usize,
    /// Final residual norm.
    pub residual_norm: f64,
    /// `true` if the tolerance was reached.
    pub converged: bool,
}

/// Solves `A·x = b` by weighted Jacobi:
/// `x ← x + ω·D⁻¹·(b − A·x)`, with `ω = 1` the classic method.
pub fn jacobi_solve(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    omega: f64,
    tol: f64,
    max_iter: usize,
) -> JacobiResult {
    let n = a.rows();
    assert_eq!(b.len(), n);
    assert_eq!(x0.len(), n);
    let diag = a.diagonal();
    assert!(
        diag.iter().all(|d| d.abs() > 0.0),
        "Jacobi requires a nonzero diagonal"
    );
    let b_norm = crate::vector::norm2(b).max(f64::MIN_POSITIVE);
    let mut x = x0.to_vec();
    let mut ax = vec![0.0; n];
    for it in 0..max_iter {
        a.spmv(&x, &mut ax);
        let mut res_sq = 0.0;
        for i in 0..n {
            let r = b[i] - ax[i];
            res_sq += r * r;
            x[i] += omega * r / diag[i];
        }
        let res = res_sq.sqrt();
        if res <= tol * b_norm {
            return JacobiResult {
                x,
                iterations: it + 1,
                residual_norm: res,
                converged: true,
            };
        }
    }
    a.spmv(&x, &mut ax);
    let res = b
        .iter()
        .zip(&ax)
        .map(|(bi, vi)| (bi - vi) * (bi - vi))
        .sum::<f64>()
        .sqrt();
    JacobiResult {
        x,
        iterations: max_iter,
        residual_norm: res,
        converged: res <= tol * b_norm,
    }
}

/// One explicit 9-point (2-D Moore) smoothing sweep with uniform weights —
/// the raw stencil computation whose CDAG Theorem 10 analyzes. Boundary
/// points average over their in-grid neighbourhood.
pub fn stencil_sweep_2d(u: &[f64], n: usize, out: &mut [f64]) {
    assert_eq!(u.len(), n * n);
    assert_eq!(out.len(), n * n);
    for j in 0..n {
        for i in 0..n {
            let mut acc = 0.0;
            let mut count = 0.0;
            for dj in -1i64..=1 {
                for di in -1i64..=1 {
                    let (ii, jj) = (i as i64 + di, j as i64 + dj);
                    if ii >= 0 && jj >= 0 && (ii as usize) < n && (jj as usize) < n {
                        acc += u[jj as usize * n + ii as usize];
                        count += 1.0;
                    }
                }
            }
            out[j * n + i] = acc / count;
        }
    }
}

/// Runs `t` stencil sweeps ping-ponging two buffers; returns the final
/// field.
pub fn stencil_iterate_2d(u0: &[f64], n: usize, t: usize) -> Vec<f64> {
    let mut a = u0.to_vec();
    let mut b = vec![0.0; u0.len()];
    for _ in 0..t {
        stencil_sweep_2d(&a, n, &mut b);
        std::mem::swap(&mut a, &mut b);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridOperator;
    use crate::vector::max_abs_diff;

    #[test]
    fn jacobi_converges_on_diagonally_dominant() {
        // Laplacian + 2I is strongly diagonally dominant: Jacobi converges.
        let op = GridOperator::new(8, 2);
        let base = op.to_csr();
        let n = op.len();
        let mut triplets: Vec<(usize, usize, f64)> = Vec::new();
        for r in 0..n {
            for (c, v) in base.row(r) {
                triplets.push((r, c, v));
            }
            triplets.push((r, r, 2.0));
        }
        let a = CsrMatrix::from_triplets(n, n, triplets);
        let x_true: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) - 3.0).collect();
        let b = a.apply(&x_true);
        let r = jacobi_solve(&a, &b, &vec![0.0; n], 1.0, 1e-10, 2000);
        assert!(r.converged, "residual {}", r.residual_norm);
        assert!(max_abs_diff(&r.x, &x_true) < 1e-7);
    }

    #[test]
    fn weighted_jacobi_converges_on_laplacian() {
        // Plain Laplacian: ω = 2/3 damps the high frequencies.
        let op = GridOperator::new(6, 1);
        let a = op.to_csr();
        let b = op.manufactured_rhs();
        let r = jacobi_solve(&a, &b, &[0.0; 6], 2.0 / 3.0, 1e-8, 5000);
        assert!(r.converged, "residual {}", r.residual_norm);
    }

    #[test]
    fn sweep_preserves_constants() {
        let n = 6;
        let u = vec![5.0; n * n];
        let mut out = vec![0.0; n * n];
        stencil_sweep_2d(&u, n, &mut out);
        assert!(max_abs_diff(&u, &out) < 1e-14);
    }

    #[test]
    fn sweep_smooths_spike() {
        let n = 5;
        let mut u = vec![0.0; n * n];
        u[2 * n + 2] = 9.0;
        let after = stencil_iterate_2d(&u, n, 1);
        // The spike spreads to its 9-point neighbourhood.
        assert!((after[2 * n + 2] - 1.0).abs() < 1e-12);
        assert!(after[n + 1] > 0.0);
        assert_eq!(after[0], 0.0);
        // Repeated smoothing flattens toward the mean.
        let later = stencil_iterate_2d(&u, n, 50);
        let spread = later.iter().cloned().fold(f64::MIN, f64::max)
            - later.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 0.2, "spread {spread}");
    }

    #[test]
    fn non_convergence_reported() {
        let op = GridOperator::new(16, 1);
        let a = op.to_csr();
        let b = op.manufactured_rhs();
        let r = jacobi_solve(&a, &b, &[0.0; 16], 1.0, 1e-12, 3);
        assert!(!r.converged);
        assert_eq!(r.iterations, 3);
    }
}
