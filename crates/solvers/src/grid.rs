//! d-dimensional grid operators.
//!
//! The discretized negative Laplacian with Dirichlet boundaries on an
//! `n^d` grid: `(Au)_i = 2d·u_i − Σ_nbr u_nbr`. Symmetric positive
//! definite — the standard CG test operator and the `A` of the paper's
//! Section 5 solvers. Provided both as an explicit [`CsrMatrix`] and as a
//! matrix-free stencil apply (the form the CDAG generators model).

use crate::csr::CsrMatrix;

/// Geometry of an `n^d` grid (periodic = false: Dirichlet boundaries).
#[derive(Debug, Clone, Copy)]
pub struct GridOperator {
    /// Extent along each dimension.
    pub n: usize,
    /// Dimension `d`.
    pub d: usize,
}

impl GridOperator {
    /// Creates the operator geometry.
    pub fn new(n: usize, d: usize) -> Self {
        assert!(n >= 1 && d >= 1);
        GridOperator { n, d }
    }

    /// Number of unknowns `n^d`.
    pub fn len(&self) -> usize {
        self.n.pow(self.d as u32)
    }

    /// Always false (kept for clippy's `len`-without-`is_empty` lint).
    pub fn is_empty(&self) -> bool {
        false
    }

    fn coords(&self, idx: usize) -> Vec<usize> {
        let mut c = Vec::with_capacity(self.d);
        let mut rest = idx;
        for _ in 0..self.d {
            c.push(rest % self.n);
            rest /= self.n;
        }
        c
    }

    fn index(&self, c: &[usize]) -> usize {
        c.iter().rev().fold(0, |acc, &x| acc * self.n + x)
    }

    /// Matrix-free apply: `y ← A·x` with `A = 2d·I − Σ shifts`.
    pub fn apply(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.len());
        assert_eq!(y.len(), self.len());
        let diag = 2.0 * self.d as f64;
        for i in 0..self.len() {
            let c = self.coords(i);
            let mut acc = diag * x[i];
            let mut nc = c.clone();
            for dim in 0..self.d {
                if c[dim] > 0 {
                    nc[dim] = c[dim] - 1;
                    acc -= x[self.index(&nc)];
                    nc[dim] = c[dim];
                }
                if c[dim] + 1 < self.n {
                    nc[dim] = c[dim] + 1;
                    acc -= x[self.index(&nc)];
                    nc[dim] = c[dim];
                }
            }
            y[i] = acc;
        }
    }

    /// Explicit CSR form of the same operator.
    pub fn to_csr(&self) -> CsrMatrix {
        let len = self.len();
        let mut triplets = Vec::with_capacity(len * (2 * self.d + 1));
        let diag = 2.0 * self.d as f64;
        for i in 0..len {
            triplets.push((i, i, diag));
            let c = self.coords(i);
            let mut nc = c.clone();
            for dim in 0..self.d {
                if c[dim] > 0 {
                    nc[dim] = c[dim] - 1;
                    triplets.push((i, self.index(&nc), -1.0));
                    nc[dim] = c[dim];
                }
                if c[dim] + 1 < self.n {
                    nc[dim] = c[dim] + 1;
                    triplets.push((i, self.index(&nc), -1.0));
                    nc[dim] = c[dim];
                }
            }
        }
        CsrMatrix::from_triplets(len, len, triplets)
    }

    /// A deterministic right-hand side with broad spectral content (mixed
    /// incommensurate frequencies) — *not* an eigenvector, so Krylov
    /// methods need genuinely many iterations.
    pub fn generic_rhs(&self) -> Vec<f64> {
        (0..self.len())
            .map(|i| 1.0 + (i as f64 * 0.7311).sin() + 0.5 * (i as f64 * 2.17).cos())
            .collect()
    }

    /// A smooth manufactured right-hand side (product of sines), handy for
    /// convergence tests with a known-nontrivial solution. Note this is an
    /// *eigenvector* of the discrete Laplacian — Krylov solvers converge on
    /// it in one iteration; use [`GridOperator::generic_rhs`] to exercise
    /// real convergence behaviour.
    pub fn manufactured_rhs(&self) -> Vec<f64> {
        (0..self.len())
            .map(|i| {
                let c = self.coords(i);
                c.iter()
                    .map(|&x| {
                        (std::f64::consts::PI * (x as f64 + 1.0) / (self.n as f64 + 1.0)).sin()
                    })
                    .product()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_matches_matrix_free() {
        for (n, d) in [(5usize, 1usize), (4, 2), (3, 3)] {
            let op = GridOperator::new(n, d);
            let a = op.to_csr();
            let x: Vec<f64> = (0..op.len()).map(|i| (i as f64 * 0.3).sin()).collect();
            let mut y1 = vec![0.0; op.len()];
            op.apply(&x, &mut y1);
            let y2 = a.apply(&x);
            let err = crate::vector::max_abs_diff(&y1, &y2);
            assert!(err < 1e-14, "n={n} d={d}: {err}");
        }
    }

    #[test]
    fn operator_is_symmetric() {
        let a = GridOperator::new(4, 2).to_csr();
        assert!(a.is_symmetric());
    }

    #[test]
    fn row_sums_zero_in_interior() {
        // Interior rows of the Laplacian sum to zero; boundary rows are
        // diagonally dominant.
        let op = GridOperator::new(5, 1);
        let a = op.to_csr();
        let ones = vec![1.0; 5];
        let y = a.apply(&ones);
        assert_eq!(y[2], 0.0);
        assert!(y[0] > 0.0 && y[4] > 0.0);
    }

    #[test]
    fn positive_definite_rayleigh() {
        // x'Ax > 0 for several random-ish x.
        let op = GridOperator::new(4, 2);
        let a = op.to_csr();
        for seed in 1..5 {
            let x: Vec<f64> = (0..op.len())
                .map(|i| ((i * seed) as f64 * 0.7).sin() + 0.1)
                .collect();
            let y = a.apply(&x);
            assert!(crate::vector::dot(&x, &y) > 0.0, "seed {seed}");
        }
    }

    #[test]
    fn nnz_count() {
        // 1-D, n = 5: 5 diag + 8 off-diag.
        assert_eq!(GridOperator::new(5, 1).to_csr().nnz(), 13);
    }
}
