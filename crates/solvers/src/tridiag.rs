//! Tridiagonal systems and the Thomas algorithm.
//!
//! Section 5.1 of the paper discretizes the 1-D heat equation into the
//! tridiagonal system of Equation 11; this module provides the direct
//! solver used by the heat driver and as a reference for the iterative
//! solvers.

/// A tridiagonal matrix stored as three diagonals.
#[derive(Debug, Clone, PartialEq)]
pub struct Tridiagonal {
    /// Sub-diagonal (length `n − 1`).
    pub lower: Vec<f64>,
    /// Main diagonal (length `n`).
    pub diag: Vec<f64>,
    /// Super-diagonal (length `n − 1`).
    pub upper: Vec<f64>,
}

impl Tridiagonal {
    /// Creates a constant-coefficient tridiagonal matrix
    /// `[lower, diag, upper]` of size `n` — e.g. the heat-equation matrix
    /// `[−a/2, 1+a, −a/2]` of Equation 11.
    pub fn constant(n: usize, lower: f64, diag: f64, upper: f64) -> Self {
        assert!(n >= 1);
        Tridiagonal {
            lower: vec![lower; n - 1],
            diag: vec![diag; n],
            upper: vec![upper; n - 1],
        }
    }

    /// Size `n`.
    pub fn len(&self) -> usize {
        self.diag.len()
    }

    /// `true` when the system is empty.
    pub fn is_empty(&self) -> bool {
        self.diag.is_empty()
    }

    /// `y ← T·x`.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        let n = self.len();
        assert_eq!(x.len(), n);
        (0..n)
            .map(|i| {
                let mut acc = self.diag[i] * x[i];
                if i > 0 {
                    acc += self.lower[i - 1] * x[i - 1];
                }
                if i + 1 < n {
                    acc += self.upper[i] * x[i + 1];
                }
                acc
            })
            .collect()
    }

    /// Solves `T·x = b` by the Thomas algorithm (LU without pivoting —
    /// valid for the diagonally-dominant systems arising from the heat
    /// equation). `O(n)` time, destroys nothing.
    ///
    /// # Panics
    /// Panics on a zero pivot (the matrix must be non-singular and
    /// factorizable without pivoting).
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.len();
        assert_eq!(b.len(), n);
        let mut c = vec![0.0; n]; // modified upper
        let mut d = vec![0.0; n]; // modified rhs
        let mut denom = self.diag[0];
        assert!(denom.abs() > 1e-300, "zero pivot at row 0");
        if n > 1 {
            c[0] = self.upper[0] / denom;
        }
        d[0] = b[0] / denom;
        for i in 1..n {
            denom = self.diag[i] - self.lower[i - 1] * c[i - 1];
            assert!(denom.abs() > 1e-300, "zero pivot at row {i}");
            if i + 1 < n {
                c[i] = self.upper[i] / denom;
            }
            d[i] = (b[i] - self.lower[i - 1] * d[i - 1]) / denom;
        }
        let mut x = d;
        for i in (0..n - 1).rev() {
            let next = x[i + 1];
            x[i] -= c[i] * next;
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::max_abs_diff;

    #[test]
    fn solves_small_system() {
        // [2 1 0; 1 3 1; 0 1 2] x = [3, 5, 3] -> x = [1, 1, 1].
        let t = Tridiagonal {
            lower: vec![1.0, 1.0],
            diag: vec![2.0, 3.0, 2.0],
            upper: vec![1.0, 1.0],
        };
        let x = t.solve(&[3.0, 5.0, 3.0]);
        assert!(max_abs_diff(&x, &[1.0, 1.0, 1.0]) < 1e-12);
    }

    #[test]
    fn solve_then_apply_roundtrips() {
        let n = 64;
        let t = Tridiagonal::constant(n, -0.5, 2.0, -0.5);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        let x = t.solve(&b);
        let back = t.apply(&x);
        assert!(max_abs_diff(&back, &b) < 1e-10);
    }

    #[test]
    fn one_by_one_system() {
        let t = Tridiagonal::constant(1, 0.0, 4.0, 0.0);
        assert_eq!(t.solve(&[8.0]), vec![2.0]);
    }

    #[test]
    fn heat_matrix_shape() {
        // Equation 11: [−a/2, 1+a, −a/2].
        let a = 0.4;
        let t = Tridiagonal::constant(5, -a / 2.0, 1.0 + a, -a / 2.0);
        assert_eq!(t.len(), 5);
        assert_eq!(t.lower.len(), 4);
        // Row sums of interior rows: 1 + a − a = 1.
        let applied = t.apply(&[1.0; 5]);
        assert!((applied[2] - 1.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "zero pivot")]
    fn singular_detected() {
        let t = Tridiagonal::constant(2, 0.0, 0.0, 0.0);
        let _ = t.solve(&[1.0, 1.0]);
    }
}
