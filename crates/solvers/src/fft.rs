//! Iterative radix-2 complex FFT — the executable counterpart of the
//! butterfly CDAG in `dmc-kernels::fft` (the kernel family Savage and
//! Ranjan–Savage–Zubair derive sharpened I/O bounds for).

/// A complex number as a bare (re, im) pair — no external dependency.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Constructs `re + i·im`.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^{iθ}`.
    pub fn cis(theta: f64) -> Self {
        Complex::new(theta.cos(), theta.sin())
    }

    /// Squared magnitude.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;

    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;

    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;

    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

/// In-place iterative radix-2 decimation-in-time FFT.
/// `inverse = true` computes the unscaled inverse transform (divide by `n`
/// afterwards to invert exactly, as [`ifft`] does).
pub fn fft_in_place(x: &mut [Complex], inverse: bool) {
    let n = x.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            x.swap(i, j);
        }
    }
    // Butterfly stages.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = x[start + k];
                let v = x[start + k + len / 2] * w;
                x[start + k] = u + v;
                x[start + k + len / 2] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

/// Forward FFT (allocating).
pub fn fft(x: &[Complex]) -> Vec<Complex> {
    let mut y = x.to_vec();
    fft_in_place(&mut y, false);
    y
}

/// Exact inverse FFT (allocating, includes the `1/n` scaling).
pub fn ifft(x: &[Complex]) -> Vec<Complex> {
    let mut y = x.to_vec();
    fft_in_place(&mut y, true);
    let scale = 1.0 / x.len() as f64;
    for v in &mut y {
        v.re *= scale;
        v.im *= scale;
    }
    y
}

/// Naive `O(n²)` DFT used as the test oracle.
pub fn dft_naive(x: &[Complex]) -> Vec<Complex> {
    let n = x.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::default();
            for (j, &v) in x.iter().enumerate() {
                let w = Complex::cis(-2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64);
                acc = acc + v * w;
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_err(a: &[Complex], b: &[Complex]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).norm_sq().sqrt())
            .fold(0.0, f64::max)
    }

    fn signal(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
            .collect()
    }

    #[test]
    fn delta_transforms_to_constant() {
        let mut x = vec![Complex::default(); 8];
        x[0] = Complex::new(1.0, 0.0);
        let y = fft(&x);
        for v in y {
            assert!((v.re - 1.0).abs() < 1e-12 && v.im.abs() < 1e-12);
        }
    }

    #[test]
    fn matches_naive_dft() {
        for n in [2usize, 4, 8, 16, 64] {
            let x = signal(n);
            let err = max_err(&fft(&x), &dft_naive(&x));
            assert!(err < 1e-9, "n={n}: err {err}");
        }
    }

    #[test]
    fn round_trip_inverts() {
        let x = signal(256);
        let err = max_err(&ifft(&fft(&x)), &x);
        assert!(err < 1e-11, "{err}");
    }

    #[test]
    fn parseval_energy_conserved() {
        let x = signal(128);
        let y = fft(&x);
        let ex: f64 = x.iter().map(|v| v.norm_sq()).sum();
        let ey: f64 = y.iter().map(|v| v.norm_sq()).sum::<f64>() / 128.0;
        assert!((ex - ey).abs() < 1e-9 * ex);
    }

    #[test]
    fn linearity() {
        let a = signal(32);
        let b: Vec<Complex> = signal(32)
            .iter()
            .map(|v| *v * Complex::new(0.0, 2.0))
            .collect();
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let lhs = fft(&sum);
        let rhs: Vec<Complex> = fft(&a).iter().zip(&fft(&b)).map(|(x, y)| *x + *y).collect();
        assert!(max_err(&lhs, &rhs) < 1e-10);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let mut x = vec![Complex::default(); 12];
        fft_in_place(&mut x, false);
    }

    #[test]
    fn flop_count_matches_cdag_size() {
        // The butterfly CDAG of dmc-kernels has n·log2(n) compute
        // vertices; our implementation performs exactly n/2·log2(n)
        // butterflies (each = 2 CDAG vertices).
        let n = 64usize;
        let stages = n.trailing_zeros() as usize;
        let butterflies = n / 2 * stages;
        assert_eq!(2 * butterflies, n * stages);
    }
}
