//! Compressed-sparse-row matrices.

/// A CSR sparse matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from `(row, col, value)` triplets. Duplicate
    /// entries are summed.
    pub fn from_triplets(rows: usize, cols: usize, mut triplets: Vec<(usize, usize, f64)>) -> Self {
        for &(r, c, _) in &triplets {
            assert!(r < rows && c < cols, "triplet ({r},{c}) out of bounds");
        }
        triplets.sort_unstable_by_key(|&(r, c, _)| (r, c));
        // Sum duplicates.
        let mut dedup: Vec<(usize, usize, f64)> = Vec::with_capacity(triplets.len());
        for (r, c, v) in triplets {
            match dedup.last_mut() {
                Some((lr, lc, lv)) if *lr == r && *lc == c => *lv += v,
                _ => dedup.push((r, c, v)),
            }
        }
        let mut row_ptr = vec![0usize; rows + 1];
        for &(r, _, _) in &dedup {
            row_ptr[r + 1] += 1;
        }
        for i in 0..rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let (col_idx, values) = dedup.into_iter().map(|(_, c, v)| (c, v)).unzip();
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        Self::from_triplets(n, n, (0..n).map(|i| (i, i, 1.0)).collect())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The `(col, value)` entries of row `r`.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (s, e) = (self.row_ptr[r], self.row_ptr[r + 1]);
        self.col_idx[s..e]
            .iter()
            .copied()
            .zip(self.values[s..e].iter().copied())
    }

    /// `y ← A·x`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols);
        assert_eq!(y.len(), self.rows);
        for (r, out) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (c, v) in self.row(r) {
                acc += v * x[c];
            }
            *out = acc;
        }
    }

    /// Allocating SpMV.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.spmv(x, &mut y);
        y
    }

    /// Extracts the diagonal (0.0 for missing entries).
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.rows)
            .map(|r| {
                self.row(r)
                    .find(|&(c, _)| c == r)
                    .map(|(_, v)| v)
                    .unwrap_or(0.0)
            })
            .collect()
    }

    /// `true` if the matrix equals its transpose (exact comparison).
    pub fn is_symmetric(&self) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                let vt = self
                    .row(c)
                    .find(|&(cc, _)| cc == r)
                    .map(|(_, v)| v)
                    .unwrap_or(0.0);
                if (v - vt).abs() > 0.0 {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_spmv() {
        // [2 1 0; 0 3 0; 1 0 4]
        let a = CsrMatrix::from_triplets(
            3,
            3,
            vec![
                (0, 0, 2.0),
                (0, 1, 1.0),
                (1, 1, 3.0),
                (2, 0, 1.0),
                (2, 2, 4.0),
            ],
        );
        assert_eq!(a.nnz(), 5);
        let y = a.apply(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![4.0, 6.0, 13.0]);
    }

    #[test]
    fn duplicates_summed() {
        let a = CsrMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 0, 2.0)]);
        assert_eq!(a.nnz(), 1);
        assert_eq!(a.apply(&[1.0, 0.0]), vec![3.0, 0.0]);
    }

    #[test]
    fn identity_is_identity() {
        let i = CsrMatrix::identity(4);
        let x = vec![1.0, -2.0, 3.5, 0.0];
        assert_eq!(i.apply(&x), x);
        assert!(i.is_symmetric());
    }

    #[test]
    fn diagonal_extraction() {
        let a = CsrMatrix::from_triplets(2, 2, vec![(0, 1, 5.0), (1, 1, 7.0)]);
        assert_eq!(a.diagonal(), vec![0.0, 7.0]);
    }

    #[test]
    fn symmetry_detection() {
        let sym = CsrMatrix::from_triplets(
            2,
            2,
            vec![(0, 0, 2.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 2.0)],
        );
        assert!(sym.is_symmetric());
        let asym = CsrMatrix::from_triplets(2, 2, vec![(0, 1, 1.0)]);
        assert!(!asym.is_symmetric());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bounds_checked() {
        let _ = CsrMatrix::from_triplets(2, 2, vec![(2, 0, 1.0)]);
    }
}
