// Fixture: S2 true positive — a raw scoped fan-out with a
// scheduling-order merge.
pub fn sum_parallel(xs: &[u64]) -> u64 {
    let mut total = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = xs.chunks(8).map(|c| scope.spawn(move || c.iter().sum::<u64>())).collect();
        for h in handles {
            total += h.join().unwrap();
        }
    });
    total
}
