// Fixture: D2 true positives — ambient time and entropy.
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn wall() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

pub fn roll() -> u64 {
    let mut rng = thread_rng();
    rng.next()
}
