// Fixture: D3 true negatives — total_cmp everywhere.
pub fn worst(xs: &mut [f64]) -> Option<f64> {
    xs.sort_by(f64::total_cmp);
    xs.last().copied()
}

pub fn best(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().max_by(|a, b| a.total_cmp(b))
}
