// Fixture: S2 true negative — the blessed index-ordered fan-out shape.
pub fn sum_parallel(xs: &[u64], workers: usize) -> u64 {
    dmc_cdag::fanout::fan_out_indexed(xs.len(), workers, || (), |_, i| xs[i])
        .into_iter()
        .sum()
}
