// Fixture: D1 true positives — hash collections in library code.
use std::collections::{HashMap, HashSet};

pub fn merge(counts: HashMap<usize, u64>) -> Vec<(usize, u64)> {
    let mut out: Vec<(usize, u64)> = counts.into_iter().collect(); // order leaks!
    out
}

pub fn members() -> HashSet<u32> {
    HashSet::new()
}
