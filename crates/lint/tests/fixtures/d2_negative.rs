// Fixture: D2 true negatives — seeded randomness and parameterized time.
pub fn seeded(seed: u64) -> u64 {
    // The workspace convention: SeedableRng::seed_from_u64.
    let mut rng = SmallRng::seed_from_u64(seed);
    rng.next()
}

/// "Call Instant::now() in your bench harness" — comments never fire.
pub fn elapsed_of(start_ns: u64, end_ns: u64) -> u64 {
    end_ns - start_ns
}
