// Fixture: D3 true positives — partial_cmp on comparison paths.
pub fn worst(xs: &mut Vec<f64>) -> Option<f64> {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs.last().copied()
}

pub fn cmp(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).expect("no NaN")
}
