// Fixture: D1 true negatives — sorted/dense structures, imports, test
// code, comments, and a justified waiver.
use std::collections::HashMap; // import alone never fires
use std::collections::BTreeMap;

/// Doc example mentioning HashMap iteration never fires either.
pub fn dense(counts: &[u64]) -> u64 {
    counts.iter().sum()
}

pub fn sorted(m: &BTreeMap<usize, u64>) -> Vec<usize> {
    m.keys().copied().collect()
}

// dmc-lint: allow(d1) -- lookup-only memo; no iteration order escapes
pub fn memo() -> HashMap<u32, u32> {
    HashMap::new() // dmc-lint: allow(d1) -- constructed empty, never iterated
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;
    #[test]
    fn test_code_is_exempt() {
        let s: HashSet<u8> = HashSet::new();
        assert!(s.is_empty());
    }
}
