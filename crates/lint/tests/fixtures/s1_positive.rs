// Fixture: S1 true positives — panicking escape hatches in library code.
pub fn first(xs: &[u64]) -> u64 {
    *xs.first().unwrap()
}

pub fn must(o: Option<u64>) -> u64 {
    o.expect("caller promised")
}

pub fn nope() -> ! {
    panic!("unhandled case")
}

pub fn later() -> u64 {
    todo!()
}
