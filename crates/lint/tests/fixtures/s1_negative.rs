// Fixture: S1 true negatives — error returns, fallbacks, asserts,
// waived invariants, and test code.
pub fn first(xs: &[u64]) -> Option<u64> {
    xs.first().copied()
}

pub fn fallback(o: Option<u64>) -> u64 {
    o.unwrap_or(0).max(o.unwrap_or_else(|| 1)).max(o.unwrap_or_default())
}

pub fn checked(xs: &[u64]) -> u64 {
    assert!(!xs.is_empty(), "precondition: nonempty");
    xs[0]
}

pub fn waived(xs: &[u64]) -> u64 {
    // dmc-lint: allow(s1) -- len checked by every caller; asserted above in checked()
    *xs.first().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v = vec![1u64];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
