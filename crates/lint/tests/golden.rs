//! Golden-file tests: each rule gets a true-positive and a true-negative
//! fixture under `tests/fixtures/`. Positives pin the exact (rule, line)
//! set so a rule that drifts (stops firing, or fires somewhere new) fails
//! loudly; negatives pin zero violations plus the waiver accounting.
//!
//! Fixtures are loaded with `include_str!`, so the tests are independent
//! of the working directory. The fixture directory itself is excluded
//! from workspace lints (`engine::in_scope`) — it exists to violate the
//! rules on purpose.

use dmc_lint::engine::lint_source;
use dmc_lint::rules::all_rules;
use dmc_lint::Rule;

/// Runs `src` under the subset of rules named in `filter`.
fn run(src: &str, filter: &[&str]) -> (Vec<(String, u32)>, usize, usize) {
    let rules: Vec<Box<dyn Rule>> = all_rules()
        .into_iter()
        .filter(|r| filter.contains(&r.id()))
        .collect();
    let (violations, used, unused) = lint_source("fixture.rs", src, &rules);
    (
        violations.into_iter().map(|v| (v.rule, v.line)).collect(),
        used,
        unused.len(),
    )
}

#[test]
fn d1_true_positives() {
    let (v, _, _) = run(include_str!("fixtures/d1_positive.rs"), &["D1"]);
    assert_eq!(
        v,
        vec![
            ("D1".to_string(), 4),
            ("D1".to_string(), 9),
            ("D1".to_string(), 10),
        ]
    );
}

#[test]
fn d1_true_negatives_with_waivers_honored() {
    let (v, used, unused) = run(include_str!("fixtures/d1_negative.rs"), &["D1"]);
    assert_eq!(v, vec![]);
    assert_eq!(used, 2, "both waivers must suppress something");
    assert_eq!(unused, 0);
}

#[test]
fn d2_true_positives() {
    let (v, _, _) = run(include_str!("fixtures/d2_positive.rs"), &["D2"]);
    assert_eq!(
        v,
        vec![
            ("D2".to_string(), 3),
            ("D2".to_string(), 7),
            ("D2".to_string(), 11),
        ]
    );
}

#[test]
fn d2_true_negatives() {
    let (v, used, unused) = run(include_str!("fixtures/d2_negative.rs"), &["D2"]);
    assert_eq!((v, used, unused), (vec![], 0, 0));
}

#[test]
fn d3_true_positives() {
    let (v, _, _) = run(include_str!("fixtures/d3_positive.rs"), &["D3"]);
    assert_eq!(v, vec![("D3".to_string(), 3), ("D3".to_string(), 8)]);
}

#[test]
fn d3_true_negatives() {
    let (v, used, unused) = run(include_str!("fixtures/d3_negative.rs"), &["D3"]);
    assert_eq!((v, used, unused), (vec![], 0, 0));
}

#[test]
fn s1_true_positives() {
    let (v, _, _) = run(include_str!("fixtures/s1_positive.rs"), &["S1"]);
    assert_eq!(
        v,
        vec![
            ("S1".to_string(), 3),
            ("S1".to_string(), 7),
            ("S1".to_string(), 11),
            ("S1".to_string(), 15),
        ]
    );
}

#[test]
fn s1_true_negatives_with_waiver_honored() {
    let (v, used, unused) = run(include_str!("fixtures/s1_negative.rs"), &["S1"]);
    assert_eq!(v, vec![]);
    assert_eq!(used, 1);
    assert_eq!(unused, 0);
}

#[test]
fn s2_true_positive() {
    let (v, _, _) = run(include_str!("fixtures/s2_positive.rs"), &["S2"]);
    assert_eq!(v, vec![("S2".to_string(), 5)]);
}

#[test]
fn s2_true_negative() {
    let (v, used, unused) = run(include_str!("fixtures/s2_negative.rs"), &["S2"]);
    assert_eq!((v, used, unused), (vec![], 0, 0));
}

/// Re-introducing a violation next to a fixture's waiver keeps failing:
/// a waiver covers exactly one line, not a region.
#[test]
fn waivers_do_not_leak_beyond_their_line() {
    let src = format!(
        "{}\npub fn fresh(o: Option<u8>) -> u8 {{ o.unwrap() }}\n",
        include_str!("fixtures/s1_negative.rs")
    );
    let (v, _, _) = run(&src, &["S1"]);
    assert_eq!(v.len(), 1, "appended violation must surface: {v:?}");
}

/// Deleting a waiver whose violation remains turns the fixture red — the
/// drift direction the CI gate guards against.
#[test]
fn deleting_a_waiver_resurfaces_the_violation() {
    let stripped: String = include_str!("fixtures/s1_negative.rs")
        .lines()
        .map(|l| match l.find("// dmc-lint:") {
            Some(i) => l[..i].to_string(),
            None => l.to_string(),
        })
        .collect::<Vec<_>>()
        .join("\n");
    let (v, _, _) = run(&stripped, &["S1"]);
    assert_eq!(v, vec![("S1".to_string(), 18)]);
}
