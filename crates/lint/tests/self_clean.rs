//! The self-test of the acceptance criteria: `repro lint` on this
//! workspace is clean — zero un-waived violations, zero unused waivers —
//! and the waiver inventory is actually exercised.

use dmc_lint::lint_workspace;
use std::path::Path;

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_is_lint_clean() {
    let report = lint_workspace(&workspace_root(), None).expect("lint pass runs");
    assert!(
        report.violations.is_empty(),
        "un-waived violations:\n{}",
        report.render_text()
    );
    assert!(
        report.unused_waivers.is_empty(),
        "stale waivers:\n{}",
        report.render_text()
    );
    assert_eq!(report.exit_code(), 0);
    // The pass actually covered the workspace and the waiver inventory is
    // live: every rule ran, dozens of files were scanned, and at least
    // one waiver per rule family is being honored somewhere.
    assert_eq!(report.rules_run, vec!["D1", "D2", "D3", "S1", "S2"]);
    // 89 files as of the serve-daemon PR (crates/serve added 5 library
    // sources); the floor trails the real count so deleting a whole
    // crate's worth of coverage fails loudly.
    assert!(report.files_scanned >= 85, "{} files", report.files_scanned);
    assert!(report.waivers_used >= 10, "{} waivers", report.waivers_used);
}

#[test]
fn rules_filter_subsets_are_clean_too() {
    for filter in ["d1", "d2,d3", "s1,s2"] {
        let report = lint_workspace(&workspace_root(), Some(filter)).expect("lint pass runs");
        assert_eq!(
            report.exit_code(),
            0,
            "--rules {filter}:\n{}",
            report.render_text()
        );
    }
}

#[test]
fn json_report_of_the_workspace_is_stable() {
    let a = lint_workspace(&workspace_root(), None).expect("lint pass runs");
    let b = lint_workspace(&workspace_root(), None).expect("lint pass runs");
    assert_eq!(
        serde::json::to_string(&a),
        serde::json::to_string(&b),
        "report must be byte-identical across runs"
    );
    assert!(serde::json::to_string(&a).contains("\"clean\":true"));
}
