//! Property tests for the lossless lexer: `render(tokenize(s)) == s`.
//!
//! Two generators: (1) fully arbitrary character soup — the lexer is
//! total, so even garbage must round-trip byte-for-byte; (2) structured
//! Rust-flavored snippets that concentrate probability mass on the
//! constructs rules care about (strings with escapes, raw strings,
//! nested comments, lifetimes vs char literals, waiver comments).

use dmc_lint::lexer::{render, tokenize, TokenKind};
use proptest::prelude::*;

/// Character soup heavy on lexer metacharacters.
fn arb_soup() -> impl Strategy<Value = String> {
    const PALETTE: [char; 24] = [
        '"', '\'', '\\', '/', '*', '#', 'r', 'b', '_', 'a', '9', '.', '!', '(', ')', '{', '}',
        '\n', ' ', ':', '<', '>', 'é', 'λ',
    ];
    (0usize..64).prop_flat_map(|len| {
        proptest::collection::vec(0usize..PALETTE.len(), len)
            .prop_map(|ix| ix.into_iter().map(|i| PALETTE[i]).collect())
    })
}

/// Rust-flavored snippets, concatenated.
fn arb_snippets() -> impl Strategy<Value = String> {
    const SNIPPETS: [&str; 18] = [
        "fn f(x: u64) -> u64 { x + 1 }\n",
        "let s = \"str with \\\" escape and \\\\ backslash\";",
        "let r = r#\"raw \" with quote\"#;",
        "let b = b\"bytes\"; let c = b'x';",
        "/* outer /* nested */ comment */",
        "// dmc-lint: allow(d1, s1) -- justified waiver\n",
        "let life: &'static str = \"x\";",
        "let ch = '\\n'; let ch2 = 'q';",
        "m.get(&k).copied().unwrap_or(0);",
        "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\n",
        "let n = 1_000.5e-3f64;",
        "let h: HashMap<u32, u32> = HashMap::new();",
        "std::thread::scope(|s| {});",
        "let r#match = 0;",
        "println!(\"{}\", 'a');",
        "for i in 0..10 {}\n",
        "let t = a.partial_cmp(&b);",
        "\t\n  \n",
    ];
    (1usize..12).prop_flat_map(|len| {
        proptest::collection::vec(0usize..SNIPPETS.len(), len)
            .prop_map(|ix| ix.into_iter().map(|i| SNIPPETS[i]).collect())
    })
}

proptest! {
    #[test]
    fn soup_roundtrips(src in arb_soup()) {
        prop_assert_eq!(render(&tokenize(&src)), src);
    }

    #[test]
    fn snippets_roundtrip_and_lex_deterministically(src in arb_snippets()) {
        prop_assert_eq!(render(&tokenize(&src)), src.clone());
        let toks = tokenize(&src);
        prop_assert_eq!(&toks, &tokenize(&src));
        // Positions advance monotonically in (line, col) order.
        let mut last = (0u32, 0u32);
        for t in &toks {
            prop_assert!(
                t.line > last.0 || (t.line == last.0 && t.col > last.1),
                "positions must advance: {:?} after {:?}",
                (t.line, t.col),
                last
            );
            last = (t.line, t.col);
        }
    }

    #[test]
    fn string_and_comment_tokens_never_split(src in arb_snippets()) {
        // A string/comment token's text must carry its delimiter — i.e.
        // rule-relevant identifiers can never leak out of literals.
        for t in tokenize(&src) {
            match t.kind {
                TokenKind::Str => prop_assert!(
                    t.text.starts_with('"') || t.text.starts_with('r') || t.text.starts_with('b')
                ),
                TokenKind::LineComment => prop_assert!(t.text.starts_with("//")),
                TokenKind::BlockComment => prop_assert!(t.text.starts_with("/*")),
                _ => {}
            }
        }
    }
}
