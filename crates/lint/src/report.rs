//! Deterministic lint reports: stable ordering, text and JSON renderings,
//! and the CLI exit-code policy.

use serde::json::Value;
use serde::Serialize;
use std::fmt;

/// How a rule hit is classified.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Blocks the build: exit code 1 from `repro lint`.
    Deny,
    /// Advisory only (no shipped rule uses this yet; it exists so future
    /// rules can ride the same engine without an exit-code change).
    Warn,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Deny => write!(f, "deny"),
            Severity::Warn => write!(f, "warn"),
        }
    }
}

/// One un-waived rule hit.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule id (`"D1"`, …, or `"W0"` for malformed waivers).
    pub rule: String,
    /// Severity of the rule.
    pub severity: Severity,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

/// A waiver that suppressed nothing — stale justifications are reported
/// (exit code 2) so the waiver inventory always matches reality.
#[derive(Debug, Clone)]
pub struct UnusedWaiver {
    /// Workspace-relative path.
    pub file: String,
    /// Line of the waiver comment.
    pub line: u32,
    /// The rules it named.
    pub rules: Vec<String>,
}

/// The outcome of linting a file set.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Uppercase ids of the rules that ran.
    pub rules_run: Vec<String>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Un-waived violations, sorted by (file, line, col, rule).
    pub violations: Vec<Violation>,
    /// Waivers that suppressed at least one violation.
    pub waivers_used: usize,
    /// Waivers that suppressed nothing, sorted by (file, line).
    pub unused_waivers: Vec<UnusedWaiver>,
}

impl LintReport {
    /// Canonical ordering for deterministic output.
    pub fn sort(&mut self) {
        self.violations.sort_by(|a, b| {
            (&a.file, a.line, a.col, &a.rule).cmp(&(&b.file, b.line, b.col, &b.rule))
        });
        self.unused_waivers
            .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    }

    /// `true` when there is nothing to report.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.unused_waivers.is_empty()
    }

    /// CLI exit-code policy: violations trump unused waivers.
    ///
    /// * `1` — at least one un-waived violation;
    /// * `2` — clean of violations but some waiver is stale;
    /// * `0` — clean.
    pub fn exit_code(&self) -> i32 {
        if !self.violations.is_empty() {
            1
        } else if !self.unused_waivers.is_empty() {
            2
        } else {
            0
        }
    }

    /// Renders the human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "dmc-lint: {} file(s), rules [{}]\n",
            self.files_scanned,
            self.rules_run.join(", ")
        ));
        for v in &self.violations {
            out.push_str(&format!(
                "{}:{}:{}: {} [{}]: {}\n",
                v.file, v.line, v.col, v.severity, v.rule, v.message
            ));
        }
        for w in &self.unused_waivers {
            out.push_str(&format!(
                "{}:{}: unused waiver [{}]: suppresses nothing -- delete it or fix the drift\n",
                w.file,
                w.line,
                w.rules.join(", ")
            ));
        }
        out.push_str(&format!(
            "{} violation(s), {} waiver(s) honored, {} unused waiver(s)\n",
            self.violations.len(),
            self.waivers_used,
            self.unused_waivers.len()
        ));
        out
    }
}

impl Serialize for Violation {
    fn to_json(&self) -> Value {
        Value::object([
            ("file", Value::String(self.file.clone())),
            ("line", Value::UInt(self.line as u64)),
            ("col", Value::UInt(self.col as u64)),
            ("rule", Value::String(self.rule.clone())),
            ("severity", Value::String(self.severity.to_string())),
            ("message", Value::String(self.message.clone())),
        ])
    }
}

impl Serialize for UnusedWaiver {
    fn to_json(&self) -> Value {
        Value::object([
            ("file", Value::String(self.file.clone())),
            ("line", Value::UInt(self.line as u64)),
            (
                "rules",
                Value::Array(self.rules.iter().cloned().map(Value::String).collect()),
            ),
        ])
    }
}

impl Serialize for LintReport {
    fn to_json(&self) -> Value {
        Value::object([
            (
                "rules_run",
                Value::Array(self.rules_run.iter().cloned().map(Value::String).collect()),
            ),
            ("files_scanned", Value::UInt(self.files_scanned as u64)),
            (
                "violations",
                Value::Array(self.violations.iter().map(|v| v.to_json()).collect()),
            ),
            ("waivers_used", Value::UInt(self.waivers_used as u64)),
            (
                "unused_waivers",
                Value::Array(self.unused_waivers.iter().map(|w| w.to_json()).collect()),
            ),
            ("clean", Value::Bool(self.is_clean())),
            ("exit_code", Value::Int(self.exit_code() as i64)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(file: &str, line: u32, rule: &str) -> Violation {
        Violation {
            file: file.into(),
            line,
            col: 1,
            rule: rule.into(),
            severity: Severity::Deny,
            message: "m".into(),
        }
    }

    #[test]
    fn exit_codes_follow_policy() {
        let mut r = LintReport::default();
        assert_eq!(r.exit_code(), 0);
        r.unused_waivers.push(UnusedWaiver {
            file: "a.rs".into(),
            line: 1,
            rules: vec!["D1".into()],
        });
        assert_eq!(r.exit_code(), 2);
        r.violations.push(v("a.rs", 2, "S1"));
        assert_eq!(r.exit_code(), 1, "violations trump unused waivers");
    }

    #[test]
    fn ordering_is_canonical() {
        let mut r = LintReport::default();
        r.violations.push(v("b.rs", 1, "D1"));
        r.violations.push(v("a.rs", 9, "S1"));
        r.violations.push(v("a.rs", 9, "D1"));
        r.sort();
        let order: Vec<_> = r
            .violations
            .iter()
            .map(|v| (v.file.clone(), v.line, v.rule.clone()))
            .collect();
        assert_eq!(
            order,
            vec![
                ("a.rs".to_string(), 9, "D1".to_string()),
                ("a.rs".to_string(), 9, "S1".to_string()),
                ("b.rs".to_string(), 1, "D1".to_string()),
            ]
        );
    }

    #[test]
    fn json_is_parseable_shape() {
        let mut r = LintReport {
            rules_run: vec!["D1".into()],
            ..LintReport::default()
        };
        r.violations.push(v("a.rs", 1, "D1"));
        let s = serde::json::to_string(&r);
        assert!(s.contains("\"violations\":[{\"file\":\"a.rs\""));
        assert!(s.contains("\"exit_code\":1"));
    }
}
