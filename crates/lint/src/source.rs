//! Per-file analysis context: token stream, test-code exemption map, and
//! waiver extraction.
//!
//! # Waiver syntax
//!
//! ```text
//! // dmc-lint: allow(s1) -- why this site cannot actually panic
//! // dmc-lint: allow(d1, s1) -- one comment may waive several rules
//! ```
//!
//! A waiver written as a *trailing* comment covers violations on its own
//! line; a waiver on a line of its own covers the next source line. Every
//! waiver must carry a non-empty justification after `--` — a bare
//! `allow(...)` is itself reported (rule `W0`), as is a waiver naming an
//! unknown rule. Waivers that suppress nothing are reported separately so
//! stale justifications cannot accumulate (exit code 2 in the CLI).

use crate::lexer::{self, Token, TokenKind};

/// A parsed `// dmc-lint: allow(...) -- ...` comment.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Uppercased rule ids this waiver names (e.g. `["D1", "S1"]`).
    pub rules: Vec<String>,
    /// The justification text after `--` (trimmed; never empty for a
    /// well-formed waiver).
    pub justification: String,
    /// Line the comment sits on.
    pub line: u32,
    /// The line whose violations this waiver suppresses.
    pub covers_line: u32,
}

/// A malformed waiver comment (missing justification or unparsable rule
/// list) — reported as a `W0` violation by the engine.
#[derive(Debug, Clone)]
pub struct BadWaiver {
    /// Line the comment sits on.
    pub line: u32,
    /// What is wrong with it.
    pub reason: String,
}

/// One file prepared for rule checking.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes (stable across
    /// platforms, used for report ordering).
    pub rel_path: String,
    /// The full lossless token stream.
    pub tokens: Vec<Token>,
    /// `exempt[i]` — token `i` sits inside `#[cfg(test)]` / `#[test]`
    /// code and is invisible to rules.
    pub exempt: Vec<bool>,
    /// Well-formed waivers found in the file.
    pub waivers: Vec<Waiver>,
    /// Malformed waiver comments.
    pub bad_waivers: Vec<BadWaiver>,
}

impl SourceFile {
    /// Lexes and prepares `source` (read from `rel_path`).
    pub fn parse(rel_path: &str, source: &str) -> SourceFile {
        let tokens = lexer::tokenize(source);
        let exempt = mark_test_regions(&tokens);
        let (waivers, bad_waivers) = extract_waivers(&tokens);
        SourceFile {
            rel_path: rel_path.replace('\\', "/"),
            tokens,
            exempt,
            waivers,
            bad_waivers,
        }
    }

    /// Indices of non-trivia, non-exempt tokens, in source order — the
    /// stream rules pattern-match on.
    pub fn code_indices(&self) -> Vec<usize> {
        (0..self.tokens.len())
            .filter(|&i| !self.tokens[i].is_trivia() && !self.exempt[i])
            .collect()
    }
}

/// Marks every token covered by a `#[cfg(test)]`- or `#[test]`-attributed
/// item (the attribute itself, any stacked attributes after it, and the
/// item body through its matching `}` or `;`).
///
/// This is a token-level approximation of item scope: it tracks bracket
/// depth, not grammar, which is exact for the attribute forms this
/// workspace uses (`#[cfg(test)] mod tests { .. }`, `#[test] fn .. { .. }`).
fn mark_test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut exempt = vec![false; tokens.len()];
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_trivia())
        .collect();
    let mut k = 0usize;
    while k < code.len() {
        if let Some(attr_end) = match_test_attribute(tokens, &code, k) {
            // Found `#[cfg(test)]` / `#[test]` starting at code[k] and
            // ending (inclusive) at code[attr_end]. Skip any further
            // stacked attributes, then consume the item.
            let mut j = attr_end + 1;
            while j < code.len() && tokens[code[j]].text == "#" {
                j = skip_attribute(tokens, &code, j);
            }
            // Item body: everything through the first `;` at depth 0 or
            // the matching `}` of the first `{`.
            let mut depth = 0usize;
            let mut end = j;
            while end < code.len() {
                match tokens[code[end]].text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            break;
                        }
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
                end += 1;
            }
            let lo = code[k];
            let hi = code[end.min(code.len() - 1)];
            for slot in exempt.iter_mut().take(hi + 1).skip(lo) {
                *slot = true;
            }
            k = end + 1;
        } else {
            k += 1;
        }
    }
    exempt
}

/// If `code[k]` starts a `#[test]`-like or `#[cfg(..test..)]` attribute,
/// returns the code index of its closing `]`.
fn match_test_attribute(tokens: &[Token], code: &[usize], k: usize) -> Option<usize> {
    if tokens[code[k]].text != "#" || code.get(k + 1).is_none_or(|&i| tokens[i].text != "[") {
        return None;
    }
    let close = find_matching(tokens, code, k + 1, "[", "]")?;
    let inner: Vec<&str> = code[k + 2..close]
        .iter()
        .map(|&i| tokens[i].text.as_str())
        .collect();
    let is_test = match inner.first() {
        Some(&"test") => inner.len() == 1,
        Some(&"cfg") => inner.contains(&"test"),
        _ => false,
    };
    is_test.then_some(close)
}

/// Skips one `#[...]` attribute starting at `code[k]`; returns the code
/// index just past its `]` (or `k + 1` if the shape is unexpected).
fn skip_attribute(tokens: &[Token], code: &[usize], k: usize) -> usize {
    match find_matching(tokens, code, k + 1, "[", "]") {
        Some(close) => close + 1,
        None => k + 1,
    }
}

/// Index of the `close` matching the `open` at `code[start]`.
fn find_matching(
    tokens: &[Token],
    code: &[usize],
    start: usize,
    open: &str,
    close: &str,
) -> Option<usize> {
    if tokens[*code.get(start)?].text != open {
        return None;
    }
    let mut depth = 0usize;
    for (j, &i) in code.iter().enumerate().skip(start) {
        if tokens[i].text == open {
            depth += 1;
        } else if tokens[i].text == close {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Pulls waivers out of the comment tokens.
fn extract_waivers(tokens: &[Token]) -> (Vec<Waiver>, Vec<BadWaiver>) {
    let mut waivers = Vec::new();
    let mut bad = Vec::new();
    // Last non-trivia line seen before each token, to classify trailing
    // vs standalone comments.
    let mut last_code_line = 0u32;
    for t in tokens {
        if !t.is_trivia() {
            last_code_line = t.line;
            continue;
        }
        if t.kind != TokenKind::LineComment {
            continue;
        }
        let body = t.text.trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("dmc-lint:") else {
            continue;
        };
        match parse_allow(rest.trim()) {
            Ok((rules, justification)) => {
                let trailing = last_code_line == t.line;
                waivers.push(Waiver {
                    rules,
                    justification,
                    line: t.line,
                    covers_line: if trailing { t.line } else { t.line + 1 },
                });
            }
            Err(reason) => bad.push(BadWaiver {
                line: t.line,
                reason,
            }),
        }
    }
    (waivers, bad)
}

/// Parses `allow(d1, s2) -- justification`.
fn parse_allow(s: &str) -> Result<(Vec<String>, String), String> {
    let Some(rest) = s.strip_prefix("allow") else {
        return Err("expected `allow(<rules>) -- <justification>`".to_string());
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err("expected `(` after `allow`".to_string());
    };
    let Some((list, after)) = rest.split_once(')') else {
        return Err("unclosed rule list in `allow(...)`".to_string());
    };
    let rules: Vec<String> = list
        .split(',')
        .map(|r| r.trim().to_ascii_uppercase())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return Err("empty rule list in `allow(...)`".to_string());
    }
    let after = after.trim_start();
    let Some(justification) = after.strip_prefix("--") else {
        return Err("missing `-- <justification>` after `allow(...)`".to_string());
    };
    let justification = justification.trim().to_string();
    if justification.is_empty() {
        return Err("empty justification after `--`".to_string());
    }
    Ok((rules, justification))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_is_exempt() {
        let src = "fn lib() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\nfn tail() {}\n";
        let f = SourceFile::parse("a.rs", src);
        let visible: Vec<&str> = f
            .code_indices()
            .into_iter()
            .map(|i| f.tokens[i].text.as_str())
            .collect();
        assert!(visible.contains(&"lib"));
        assert!(visible.contains(&"tail"));
        assert!(!visible.contains(&"tests"));
        assert_eq!(visible.iter().filter(|t| **t == "unwrap").count(), 1);
    }

    #[test]
    fn stacked_attributes_and_test_fns_are_exempt() {
        let src =
            "#[test]\n#[should_panic(expected = \"boom\")]\nfn t() { z.unwrap(); }\nfn lib() {}\n";
        let f = SourceFile::parse("a.rs", src);
        let visible: Vec<&str> = f
            .code_indices()
            .into_iter()
            .map(|i| f.tokens[i].text.as_str())
            .collect();
        assert!(!visible.contains(&"unwrap"));
        assert!(visible.contains(&"lib"));
    }

    #[test]
    fn waiver_parsing_trailing_and_standalone() {
        let src = "let a = m.get(&k); // dmc-lint: allow(s1) -- guarded above\n\
                   // dmc-lint: allow(d1, s2) -- membership only\n\
                   let b = 0;\n";
        let f = SourceFile::parse("a.rs", src);
        assert_eq!(f.waivers.len(), 2);
        assert_eq!(f.waivers[0].rules, vec!["S1"]);
        assert_eq!(f.waivers[0].covers_line, 1);
        assert_eq!(f.waivers[1].rules, vec!["D1", "S2"]);
        assert_eq!(f.waivers[1].covers_line, 3);
        assert_eq!(f.waivers[1].justification, "membership only");
    }

    #[test]
    fn malformed_waivers_are_reported() {
        for bad in [
            "// dmc-lint: allow(d1)",
            "// dmc-lint: allow(d1) --",
            "// dmc-lint: allow() -- x",
            "// dmc-lint: deny(d1) -- x",
        ] {
            let f = SourceFile::parse("a.rs", bad);
            assert_eq!(f.bad_waivers.len(), 1, "{bad}");
            assert!(f.waivers.is_empty(), "{bad}");
        }
    }
}
