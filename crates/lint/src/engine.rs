//! The lint driver: file discovery, rule dispatch, waiver matching, and
//! unused-waiver accounting.
//!
//! # Scope
//!
//! The pass enforces the determinism contract on **library code**: the
//! facade `src/` tree and every `crates/*/src/` tree (binaries under
//! `src/bin/` included). Integration tests, benches, and examples are
//! exempt wholesale — they neither feed reports nor run in production —
//! as are `#[cfg(test)]` regions inside library files. The `vendor/`
//! stand-ins are skipped (they mirror crates.io APIs verbatim), along
//! with `target/` and this crate's own `tests/fixtures/` corpus of
//! deliberate violations.

use crate::report::{LintReport, Severity, UnusedWaiver, Violation};
use crate::rules::{all_rules, is_known_rule, Rule};
use crate::source::SourceFile;
use std::path::Path;

/// Errors from [`lint_workspace`].
#[derive(Debug)]
pub enum LintError {
    /// A requested rule id does not exist.
    UnknownRule(String),
    /// Filesystem trouble while walking or reading sources.
    Io(String),
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintError::UnknownRule(r) => write!(
                f,
                "unknown rule '{r}'; known rules: d1 d2 d3 s1 s2 (see `repro lint` docs)"
            ),
            LintError::Io(e) => write!(f, "lint I/O error: {e}"),
        }
    }
}

/// Selects the rules to run from a comma-separated filter (`"d1,s2"`);
/// `None` runs everything.
fn select_rules(filter: Option<&str>) -> Result<Vec<Box<dyn Rule>>, LintError> {
    let rules = all_rules();
    let Some(filter) = filter else {
        return Ok(rules);
    };
    let wanted: Vec<String> = filter
        .split(',')
        .map(|s| s.trim().to_ascii_uppercase())
        .filter(|s| !s.is_empty())
        .collect();
    for w in &wanted {
        if !is_known_rule(w) {
            return Err(LintError::UnknownRule(w.clone()));
        }
    }
    Ok(rules
        .into_iter()
        .filter(|r| wanted.iter().any(|w| w == r.id()))
        .collect())
}

/// Lints one source string against `rules`, resolving waivers.
///
/// Returns the un-waived violations, the number of waivers honored, and
/// the unused waivers. This is the per-file kernel behind
/// [`lint_workspace`]; the golden-fixture tests drive it directly.
pub fn lint_source(
    rel_path: &str,
    source: &str,
    rules: &[Box<dyn Rule>],
) -> (Vec<Violation>, usize, Vec<UnusedWaiver>) {
    let file = SourceFile::parse(rel_path, source);
    let mut raw: Vec<Violation> = Vec::new();
    for rule in rules {
        rule.check(&file, &mut raw);
    }
    // Malformed waivers are violations in their own right (pseudo-rule
    // W0) — a waiver that does not parse must not silently suppress.
    for bad in &file.bad_waivers {
        raw.push(Violation {
            file: file.rel_path.clone(),
            line: bad.line,
            col: 1,
            rule: "W0".to_string(),
            severity: Severity::Deny,
            message: format!(
                "malformed dmc-lint waiver ({}); syntax: \
                 `// dmc-lint: allow(<rules>) -- <justification>`",
                bad.reason
            ),
        });
    }
    // Unknown rule ids inside otherwise well-formed waivers are W0 too:
    // a typo like allow(d9) must not count as coverage.
    for w in &file.waivers {
        for r in &w.rules {
            if !is_known_rule(r) {
                raw.push(Violation {
                    file: file.rel_path.clone(),
                    line: w.line,
                    col: 1,
                    rule: "W0".to_string(),
                    severity: Severity::Deny,
                    message: format!("waiver names unknown rule '{r}'"),
                });
            }
        }
    }
    // Match violations to waivers. A waiver is honored if it suppressed
    // at least one violation of a rule it names; unused-ness is only
    // meaningful for rules that actually ran (a d1 waiver is not "stale"
    // under `--rules s1`).
    let active: Vec<&str> = rules.iter().map(|r| r.id()).collect();
    let mut used = vec![false; file.waivers.len()];
    let mut violations = Vec::new();
    for v in raw {
        let waived = file.waivers.iter().enumerate().find(|(_, w)| {
            v.rule != "W0" && w.covers_line == v.line && w.rules.iter().any(|r| r == &v.rule)
        });
        match waived {
            Some((i, _)) => used[i] = true,
            None => violations.push(v),
        }
    }
    let mut unused = Vec::new();
    for (i, w) in file.waivers.iter().enumerate() {
        let relevant = w.rules.iter().any(|r| active.iter().any(|a| a == r));
        if !used[i] && relevant {
            unused.push(UnusedWaiver {
                file: file.rel_path.clone(),
                line: w.line,
                rules: w.rules.clone(),
            });
        }
    }
    (violations, used.iter().filter(|u| **u).count(), unused)
}

/// `true` for the library-source files the contract covers.
fn in_scope(rel: &str) -> bool {
    let rel = rel.replace('\\', "/");
    if !rel.ends_with(".rs") {
        return false;
    }
    // Vendored API stand-ins, build products, and the deliberate-violation
    // fixture corpus are out of scope.
    if rel.starts_with("vendor/") || rel.starts_with("target/") || rel.contains("/fixtures/") {
        return false;
    }
    // Library trees only: `src/…` and `crates/<name>/src/…`.
    rel.starts_with("src/") || (rel.starts_with("crates/") && rel.split('/').nth(2) == Some("src"))
}

/// Recursively collects in-scope `.rs` files under `root`, sorted by
/// relative path for deterministic report order.
fn collect_files(root: &Path) -> Result<Vec<String>, LintError> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = std::fs::read_dir(&dir)
            .map_err(|e| LintError::Io(format!("{}: {e}", dir.display())))?;
        for entry in entries {
            let entry = entry.map_err(|e| LintError::Io(e.to_string()))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with('.') {
                continue;
            }
            if path.is_dir() {
                // Prune the big out-of-scope trees instead of walking them.
                if name == "target" || name == "vendor" {
                    continue;
                }
                stack.push(path);
            } else if let Ok(rel) = path.strip_prefix(root) {
                let rel = rel.to_string_lossy().replace('\\', "/");
                if in_scope(&rel) {
                    out.push(rel);
                }
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Runs the lint pass over the workspace rooted at `root`.
///
/// `rules_filter` is the CLI's `--rules` value (comma-separated ids,
/// case-insensitive); `None` runs the full catalog. The returned report
/// is fully deterministic: files are visited in sorted order and
/// violations are canonically sorted.
///
/// ```
/// let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
/// let report = dmc_lint::lint_workspace(&root, None).unwrap();
/// assert!(report.files_scanned > 0);
/// ```
pub fn lint_workspace(root: &Path, rules_filter: Option<&str>) -> Result<LintReport, LintError> {
    let rules = select_rules(rules_filter)?;
    let mut report = LintReport {
        rules_run: rules.iter().map(|r| r.id().to_string()).collect(),
        ..LintReport::default()
    };
    for rel in collect_files(root)? {
        let path = root.join(&rel);
        let source = std::fs::read_to_string(&path)
            .map_err(|e| LintError::Io(format!("{}: {e}", path.display())))?;
        let (violations, used, unused) = lint_source(&rel, &source, &rules);
        report.files_scanned += 1;
        report.violations.extend(violations);
        report.waivers_used += used;
        report.unused_waivers.extend(unused);
    }
    report.sort();
    Ok(report)
}

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]` — how `repro lint` finds its scan root without
/// a flag.
pub fn find_workspace_root(start: &Path) -> Option<std::path::PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules() -> Vec<Box<dyn Rule>> {
        all_rules()
    }

    #[test]
    fn waiver_suppresses_same_line_violation() {
        let src = "fn f(o: Option<u8>) { o.unwrap(); } // dmc-lint: allow(s1) -- test invariant\n";
        let (v, used, unused) = lint_source("a.rs", src, &rules());
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(used, 1);
        assert!(unused.is_empty());
    }

    #[test]
    fn standalone_waiver_covers_next_line_only() {
        let src = "// dmc-lint: allow(s1) -- covered\nfn f(o: Option<u8>) { o.unwrap(); }\n\
                   fn g(o: Option<u8>) { o.unwrap(); }\n";
        let (v, used, _) = lint_source("a.rs", src, &rules());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
        assert_eq!(used, 1);
    }

    #[test]
    fn waiver_for_wrong_rule_does_not_suppress() {
        let src = "fn f(o: Option<u8>) { o.unwrap(); } // dmc-lint: allow(d1) -- wrong rule\n";
        let (v, used, unused) = lint_source("a.rs", src, &rules());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "S1");
        assert_eq!(used, 0);
        assert_eq!(unused.len(), 1);
    }

    #[test]
    fn malformed_and_unknown_rule_waivers_are_w0() {
        let src = "// dmc-lint: allow(s1)\nfn a() {}\n// dmc-lint: allow(d9) -- typo\nfn b() {}\n";
        let (v, _, _) = lint_source("a.rs", src, &rules());
        let w0: Vec<_> = v.iter().filter(|v| v.rule == "W0").collect();
        assert_eq!(w0.len(), 2, "{v:?}");
    }

    #[test]
    fn rules_filter_limits_scope_and_unused_accounting() {
        let src = "fn f(m: &std::collections::HashMap<u8, u8>) { m.len(); }\n\
                   fn g(o: Option<u8>) { o.unwrap(); } // dmc-lint: allow(s1) -- inert under d1\n";
        let only_d1 = select_rules(Some("d1")).unwrap();
        let (v, used, unused) = lint_source("a.rs", src, &only_d1);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "D1");
        // The s1 waiver neither fires nor counts as stale when S1 is off.
        assert_eq!(used, 0);
        assert!(unused.is_empty());
    }

    #[test]
    fn unknown_rule_filter_is_an_error() {
        assert!(matches!(
            select_rules(Some("d1,zz")),
            Err(LintError::UnknownRule(_))
        ));
    }

    #[test]
    fn scope_covers_library_trees_only() {
        assert!(in_scope("src/lib.rs"));
        assert!(in_scope("crates/cdag/src/engine.rs"));
        assert!(in_scope("crates/bench/src/bin/repro.rs"));
        assert!(!in_scope("crates/cdag/tests/proptests.rs"));
        assert!(!in_scope("crates/bench/benches/mincut.rs"));
        assert!(!in_scope("examples/quickstart.rs"));
        assert!(!in_scope("tests/pipeline.rs"));
        assert!(!in_scope("vendor/serde/src/lib.rs"));
        assert!(!in_scope("crates/lint/tests/fixtures/s1_positive.rs"));
        assert!(!in_scope("README.md"));
    }
}
